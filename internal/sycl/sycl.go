// Package sycl is a SYCL-2020-shaped host API over the execution-model
// simulator (internal/gpu). It is the migration target of the paper: device
// selection collapses to a selector object, kernels are Go closures
// submitted through a queue, host/device data movement happens through
// buffers and accessors, and resource lifetimes are managed by the runtime
// (buffer destruction writes data back to the host) instead of explicit
// releases. The eight logical programming steps of Table I, and the SYCL
// sides of the migration-path Tables II–VI, map one-to-one onto this API:
//
//	Table I   — Selector / NewQueue / NewBufferFrom / Submit+ParallelFor /
//	            accessors / Event / implicit destruction
//	Table II  — NewBuffer[T](ws), NewBufferFrom(host), Buffer.Destroy
//	Table III — AccessRange + CopyFromDevice / CopyToDevice with offsets
//	Table IV  — NDItem.GetGlobalID / GetGroup / GetLocalRange / Barrier
//	Table V   — AtomicRef.FetchAdd via AtomicInc
//	Table VI  — Queue.Submit(func(h)) { h.ParallelFor(NDRange, body) }
//
// Submission is genuinely asynchronous: each command group runs on its own
// goroutine once the accessor-declared dependencies (read-after-write,
// write-after-read, write-after-write per buffer) have settled, which is how
// a conforming SYCL runtime schedules its implicit task graph.
package sycl

import (
	"errors"
	"fmt"
	"sync"

	"casoffinder/internal/gpu"
	"casoffinder/internal/obs"
)

// Frontend errors.
var (
	// ErrNoDevice is returned when a selector matches no device.
	ErrNoDevice = errors.New("sycl: no device matches selector")
	// ErrBufferDestroyed marks accessor creation or data access after
	// Buffer.Destroy.
	ErrBufferDestroyed = errors.New("sycl: buffer has been destroyed")
	// ErrInvalidAccessRange marks a ranged accessor outside the buffer.
	ErrInvalidAccessRange = errors.New("sycl: accessor range out of bounds")
	// ErrNoAction marks a command group that neither copies nor launches.
	ErrNoAction = errors.New("sycl: command group defines no action")
	// ErrHandlerReuse marks use of a handler outside its Submit call.
	ErrHandlerReuse = errors.New("sycl: handler used outside its command group")
)

// DeviceSelector picks one device from the available candidates — the SYCL
// device selector class of Table I, which "searches a device of a user's
// provided preference (e.g., GPU) at runtime".
type DeviceSelector interface {
	Select(candidates []*gpu.Device) (*gpu.Device, error)
}

// GPUSelector prefers the device with the most compute units, modelling
// sycl::gpu_selector_v choosing the strongest accelerator.
type GPUSelector struct{}

// Select returns the candidate with the most compute units.
func (GPUSelector) Select(candidates []*gpu.Device) (*gpu.Device, error) {
	var best *gpu.Device
	for _, d := range candidates {
		if best == nil || d.Spec().ComputeUnits() > best.Spec().ComputeUnits() {
			best = d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: gpu_selector over %d candidates", ErrNoDevice, len(candidates))
	}
	return best, nil
}

// NameSelector picks the device with the given short name.
type NameSelector struct {
	Name string
}

// Select returns the candidate whose spec name equals Name.
func (s NameSelector) Select(candidates []*gpu.Device) (*gpu.Device, error) {
	for _, d := range candidates {
		if d.Spec().Name == s.Name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("%w: name %q", ErrNoDevice, s.Name)
}

// DefaultSelector picks the first available device, like
// sycl::default_selector_v.
type DefaultSelector struct{}

// Select returns the first candidate.
func (DefaultSelector) Select(candidates []*gpu.Device) (*gpu.Device, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: default_selector with no devices", ErrNoDevice)
	}
	return candidates[0], nil
}

// AsyncError is an asynchronous SYCL exception: an error raised by a
// command group after Submit returned, surfaced on the event, on
// Queue.Wait, and — when one is installed — through the queue's async
// handler. It is the simulator's sycl::exception for the async_handler
// path the paper contrasts with OpenCL's per-call error codes.
type AsyncError struct {
	// Op names the command group that failed (the kernel name, or the
	// copy/alloc operation).
	Op string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *AsyncError) Error() string {
	return fmt.Sprintf("sycl: async exception in %s: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *AsyncError) Unwrap() error { return e.Err }

// AsyncHandler receives asynchronous exceptions, mirroring the
// sycl::async_handler a queue is constructed with. Handlers run on the
// command group's completion goroutine and must be safe for concurrent
// calls.
type AsyncHandler func(*AsyncError)

// Queue encapsulates a device command queue — step 2 of the SYCL column of
// Table I. Command groups submitted to it execute asynchronously, ordered
// only by their buffer access dependencies.
type Queue struct {
	dev *gpu.Device

	mu      sync.Mutex
	events  []*Event
	handler AsyncHandler
}

// SetAsyncHandler installs the queue's asynchronous exception handler.
// Every command-group error raised after Submit returns is delivered to it
// (in addition to surfacing on the event and Queue.Wait), the way a SYCL
// runtime invokes the async_handler at wait_and_throw points.
func (q *Queue) SetAsyncHandler(h AsyncHandler) {
	q.mu.Lock()
	q.handler = h
	q.mu.Unlock()
}

// deliverAsync routes a command-group error to the installed handler,
// marking the delivery on the device's trace track.
func (q *Queue) deliverAsync(op string, err error) {
	q.mu.Lock()
	h := q.handler
	q.mu.Unlock()
	if h == nil || err == nil {
		return
	}
	ae, ok := err.(*AsyncError)
	if !ok {
		ae = &AsyncError{Op: op, Err: err}
	}
	q.dev.Instant("async-exception", obs.Attr{Key: "op", Value: ae.Op})
	h(ae)
}

// NewQueue selects a device from the candidates and builds a queue for it.
func NewQueue(sel DeviceSelector, candidates ...*gpu.Device) (*Queue, error) {
	if sel == nil {
		sel = DefaultSelector{}
	}
	dev, err := sel.Select(candidates)
	if err != nil {
		return nil, err
	}
	return &Queue{dev: dev}, nil
}

// Device returns the queue's device.
func (q *Queue) Device() *gpu.Device { return q.dev }

// Wait blocks until every command group submitted so far has completed,
// returning the first error encountered (queue::wait_and_throw).
func (q *Queue) Wait() error {
	q.mu.Lock()
	events := make([]*Event, len(q.events))
	copy(events, q.events)
	q.mu.Unlock()
	var first error
	for _, e := range events {
		if err := e.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Event tracks the completion of one command group — the SYCL event class
// of Table I.
type Event struct {
	done  chan struct{}
	err   error
	stats *gpu.Stats
}

func newEvent() *Event { return &Event{done: make(chan struct{})} }

func (e *Event) complete(stats *gpu.Stats, err error) {
	e.stats = stats
	e.err = err
	close(e.done)
}

// Wait blocks until the command group completes and returns its error.
// Asynchronous errors surface here, modelling SYCL's async handler.
func (e *Event) Wait() error {
	<-e.done
	return e.err
}

// Stats returns the launch statistics of a kernel command group (nil for
// copies), after the event completes.
func (e *Event) Stats() *gpu.Stats {
	<-e.done
	return e.stats
}
