package sycl

import (
	"errors"
	"testing"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
)

func TestUSMKinds(t *testing.T) {
	q := newTestQueue(t)
	for _, kind := range []USMKind{USMDevice, USMHost, USMShared} {
		u, err := Malloc[int32](q, kind, 16)
		if err != nil {
			t.Fatalf("Malloc(%v): %v", kind, err)
		}
		if u.Kind() != kind || u.Len() != 16 {
			t.Errorf("allocation metadata wrong: %v %d", u.Kind(), u.Len())
		}
		if err := u.Free(); err != nil {
			t.Fatal(err)
		}
	}
	if USMDevice.String() != "device" || USMHost.String() != "host" || USMShared.String() != "shared" {
		t.Error("kind strings wrong")
	}
}

func TestUSMDeviceBudget(t *testing.T) {
	q := newTestQueue(t)
	before := q.Device().AllocatedBytes()
	u, err := Malloc[int64](q, USMDevice, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Device().AllocatedBytes() - before; got != 8*1024 {
		t.Errorf("device budget charged %d bytes, want %d", got, 8*1024)
	}
	if err := u.Free(); err != nil {
		t.Fatal(err)
	}
	if q.Device().AllocatedBytes() != before {
		t.Error("Free did not return device bytes")
	}
	// Host memory is not charged to the device.
	h, err := Malloc[int64](q, USMHost, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if q.Device().AllocatedBytes() != before {
		t.Error("host USM charged to device budget")
	}
	if err := h.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestUSMOOM(t *testing.T) {
	q := newTestQueue(t) // MI100: 32 GiB
	if _, err := Malloc[int64](q, USMDevice, 1<<33); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Errorf("oversized USM = %v, want ErrOutOfMemory", err)
	}
	if _, err := Malloc[int32](q, USMShared, -1); err == nil {
		t.Error("negative size accepted")
	}
}

// TestUSMKernelRoundTrip is the USM flavour of the §III.E kernel launch:
// memcpy in, kernel over the pointers, memcpy out, ordered by explicit
// events.
func TestUSMKernelRoundTrip(t *testing.T) {
	q := newTestQueue(t)
	const n = 512
	in, err := Malloc[int32](q, USMDevice, n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Malloc[int32](q, USMShared, n)
	if err != nil {
		t.Fatal(err)
	}
	host := make([]int32, n)
	for i := range host {
		host[i] = int32(i)
	}

	up := MemcpyToUSM(q, in, host)
	inData, err := in.Slice()
	if err != nil {
		t.Fatal(err)
	}
	outData, err := out.Slice()
	if err != nil {
		t.Fatal(err)
	}
	kernelEv := q.SubmitUSMKernel("usm_scale", gpu.R1(n), gpu.R1(64), []*Event{up}, func(it *NDItem) {
		gid := it.GetGlobalID(0)
		outData[gid] = inData[gid] * 3
	})
	if err := kernelEv.Wait(); err != nil {
		t.Fatal(err)
	}
	got := make([]int32, n)
	if err := MemcpyFromUSM(q, got, out).Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i*3) {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*3)
		}
	}
	if err := in.Free(); err != nil {
		t.Fatal(err)
	}
	if err := out.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestUSMMemset(t *testing.T) {
	q := newTestQueue(t)
	u, err := Malloc[uint16](q, USMShared, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := Memset(q, u, 7).Wait(); err != nil {
		t.Fatal(err)
	}
	data, err := u.Slice()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != 7 {
			t.Fatalf("data[%d] = %d after memset", i, v)
		}
	}
}

// TestUSMCopyOrdering: two writes to the same allocation must apply in
// submission order even though both run asynchronously.
func TestUSMCopyOrdering(t *testing.T) {
	q := newTestQueue(t)
	u, err := Malloc[int32](q, USMShared, 1024)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]int32, 1024)
	second := make([]int32, 1024)
	for i := range first {
		first[i] = 1
		second[i] = 2
	}
	MemcpyToUSM(q, u, first)
	MemcpyToUSM(q, u, second)
	got := make([]int32, 1024)
	if err := MemcpyFromUSM(q, got, u).Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2 {
			t.Fatalf("got[%d] = %d, want the second write", i, v)
		}
	}
}

func TestUSMUseAfterFree(t *testing.T) {
	q := newTestQueue(t)
	u, err := Malloc[int32](q, USMDevice, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Free(); err != nil {
		t.Fatal(err)
	}
	if err := u.Free(); !errors.Is(err, ErrUSMFreed) {
		t.Errorf("double free = %v, want ErrUSMFreed", err)
	}
	if _, err := u.Slice(); !errors.Is(err, ErrUSMFreed) {
		t.Errorf("Slice after free = %v, want ErrUSMFreed", err)
	}
	if err := MemcpyToUSM(q, u, make([]int32, 8)).Wait(); !errors.Is(err, ErrUSMFreed) {
		t.Errorf("memcpy after free = %v, want ErrUSMFreed", err)
	}
}

func TestUSMMemcpySizeErrors(t *testing.T) {
	q := newTestQueue(t)
	u, err := Malloc[int32](q, USMShared, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := MemcpyToUSM(q, u, make([]int32, 8)).Wait(); err == nil {
		t.Error("oversized memcpy accepted")
	}
	if err := MemcpyFromUSM(q, make([]int32, 2), u).Wait(); err == nil {
		t.Error("undersized destination accepted")
	}
}

func TestSubmitUSMKernelDependencyFailure(t *testing.T) {
	q := newTestQueue(t)
	failed := newEvent()
	failed.complete(nil, errors.New("upstream failure"))
	ev := q.SubmitUSMKernel("k", gpu.R1(64), gpu.R1(64), []*Event{failed}, func(it *NDItem) {})
	if err := ev.Wait(); err == nil {
		t.Error("kernel after failed dependency should fail")
	}
	ev = q.SubmitUSMKernel("k", gpu.R1(64), gpu.R1(64), []*Event{nil}, func(it *NDItem) {})
	if err := ev.Wait(); err == nil {
		t.Error("nil dependency accepted")
	}
}

func TestUSMOnDifferentDevices(t *testing.T) {
	q1, err := NewQueue(DefaultSelector{}, gpu.New(device.RadeonVII()))
	if err != nil {
		t.Fatal(err)
	}
	u, err := Malloc[byte](q1, USMDevice, 12<<30) // 12 of 16 GiB
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Malloc[byte](q1, USMDevice, 8<<30); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Errorf("second oversized alloc = %v, want OOM", err)
	}
	if err := u.Free(); err != nil {
		t.Fatal(err)
	}
}
