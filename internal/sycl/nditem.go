package sycl

import "casoffinder/internal/gpu"

// FenceSpace selects the memory scope of a barrier, as in
// access::fence_space (Table IV).
type FenceSpace int

// Fence spaces.
const (
	LocalSpace FenceSpace = iota + 1
	GlobalSpace
	GlobalAndLocalSpace
)

// NDItem encapsulates a work-item's coordinates within its work-group and
// ND-range — the SYCL nd_item class of Table IV. Method names follow the
// SYCL spelling so the migration contrast with the OpenCL index functions
// is visible at the call site:
//
//	get_global_id(0)              -> item.GetGlobalID(0)
//	get_group_id(0)               -> item.GetGroup(0)
//	get_local_size(0)             -> item.GetLocalRange(0)
//	barrier(CLK_LOCAL_MEM_FENCE)  -> item.Barrier(sycl.LocalSpace)
type NDItem struct {
	it *gpu.Item
}

// GetGlobalID returns the global index in dimension d.
func (n *NDItem) GetGlobalID(d int) int { return n.it.GlobalID(d) }

// GetLocalID returns the index within the work-group.
func (n *NDItem) GetLocalID(d int) int { return n.it.LocalID(d) }

// GetGroup returns the work-group index in dimension d.
func (n *NDItem) GetGroup(d int) int { return n.it.GroupID(d) }

// GetLocalRange returns the work-group size in dimension d.
func (n *NDItem) GetLocalRange(d int) int { return n.it.LocalRange(d) }

// GetGlobalRange returns the ND-range extent in dimension d.
func (n *NDItem) GetGlobalRange(d int) int { return n.it.GlobalRange(d) }

// GetGroupRange returns the number of work-groups in dimension d.
func (n *NDItem) GetGroupRange(d int) int { return n.it.GroupRange(d) }

// Barrier synchronises the work-group; the fence space is accepted for
// fidelity with Table IV (the simulator's barrier is sequentially
// consistent, which satisfies every space).
func (n *NDItem) Barrier(space FenceSpace) { n.it.Barrier() }

// Item exposes the underlying simulator work-item so kernel bodies shared
// with the OpenCL frontend can be called from a SYCL lambda, the
// minimal-code-change migration style §III.E describes.
func (n *NDItem) Item() *gpu.Item { return n.it }
