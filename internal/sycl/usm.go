package sycl

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"casoffinder/internal/fault"
	"casoffinder/internal/gpu"
)

// Unified shared memory (USM) is the second memory-management abstraction
// §III.A describes: "a pointer-based approach that allows for easier
// integration with existing C/C++ programs". The paper's migration uses
// buffers; USM is provided for completeness and exercised by tests. USM
// allocations are plain Go slices charged against the device budget, freed
// explicitly, and moved with queue Memcpy/Memset command groups that join
// the same implicit task graph as buffer accesses (each allocation carries
// its own dependency state).

// USMKind distinguishes the three USM allocation flavours.
type USMKind int

// USM allocation kinds.
const (
	// USMDevice memory is accessible only inside kernels.
	USMDevice USMKind = iota + 1
	// USMHost memory lives on the host but is device-readable.
	USMHost
	// USMShared memory migrates between host and device on demand.
	USMShared
)

func (k USMKind) String() string {
	switch k {
	case USMDevice:
		return "device"
	case USMHost:
		return "host"
	case USMShared:
		return "shared"
	default:
		return fmt.Sprintf("USMKind(%d)", int(k))
	}
}

// ErrUSMFreed marks use of a freed USM allocation.
var ErrUSMFreed = errors.New("sycl: use of freed USM allocation")

// USM is one unified-shared-memory allocation of element type T.
type USM[T any] struct {
	mu    sync.Mutex
	data  []T
	kind  USMKind
	alloc *gpu.Allocation
	freed bool
	deps  depState
}

// Malloc allocates n elements of USM of the given kind on the queue's
// device (sycl::malloc_device / malloc_host / malloc_shared).
func Malloc[T any](q *Queue, kind USMKind, n int) (*USM[T], error) {
	if n < 0 {
		return nil, fmt.Errorf("sycl: negative USM size %d", n)
	}
	if in := q.dev.Faults(); in != nil && in.Fire(fault.SiteSYCLUSM) {
		return nil, fault.Errorf(fault.SiteSYCLUSM, fault.Transient,
			"sycl: USM %s allocation of %d elements: injected allocation failure", kind, n)
	}
	var zero T
	size := int64(n) * int64(reflect.TypeOf(zero).Size())
	var alloc *gpu.Allocation
	if kind == USMDevice || kind == USMShared {
		a, err := q.dev.Alloc(gpu.GlobalMem, size)
		if err != nil {
			return nil, fmt.Errorf("sycl: USM %s allocation: %w", kind, err)
		}
		alloc = a
	}
	return &USM[T]{data: make([]T, n), kind: kind, alloc: alloc}, nil
}

// Len returns the allocation length in elements.
func (u *USM[T]) Len() int { return len(u.data) }

// Kind returns the allocation kind.
func (u *USM[T]) Kind() USMKind { return u.kind }

// Slice returns the underlying storage for use inside kernels. Unlike
// buffer accessors, USM carries no implicit dependency information: the
// caller orders kernels against copies with explicit event waits, exactly
// the trade-off the paper notes when contrasting USM with buffers.
func (u *USM[T]) Slice() ([]T, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.freed {
		return nil, ErrUSMFreed
	}
	return u.data, nil
}

// Free releases the allocation (sycl::free). It waits for submitted
// copies on this allocation to complete first.
func (u *USM[T]) Free() error {
	for _, e := range u.deps.settled() {
		if err := e.Wait(); err != nil {
			return fmt.Errorf("sycl: waiting for work on USM allocation: %w", err)
		}
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.freed {
		return ErrUSMFreed
	}
	u.freed = true
	u.data = nil
	if u.alloc != nil {
		return u.alloc.Free()
	}
	return nil
}

func (u *USM[T]) live() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.freed {
		return ErrUSMFreed
	}
	return nil
}

// MemcpyToUSM copies host data into a USM allocation
// (queue.memcpy(dst, src, bytes)). The returned event completes when the
// copy has run; copies on the same allocation are ordered.
func MemcpyToUSM[T any](q *Queue, dst *USM[T], src []T) *Event {
	return usmCommand(q, dst, true, func() error {
		if len(src) > len(dst.data) {
			return fmt.Errorf("sycl: memcpy source %d exceeds USM allocation %d", len(src), len(dst.data))
		}
		copy(dst.data, src)
		return nil
	})
}

// MemcpyFromUSM copies a USM allocation into host memory.
func MemcpyFromUSM[T any](q *Queue, dst []T, src *USM[T]) *Event {
	return usmCommand(q, src, false, func() error {
		if len(dst) < len(src.data) {
			return fmt.Errorf("sycl: memcpy destination %d smaller than USM allocation %d", len(dst), len(src.data))
		}
		copy(dst, src.data)
		return nil
	})
}

// Memset fills a USM allocation with a value (queue.fill).
func Memset[T any](q *Queue, dst *USM[T], value T) *Event {
	return usmCommand(q, dst, true, func() error {
		for i := range dst.data {
			dst.data[i] = value
		}
		return nil
	})
}

// usmCommand schedules one asynchronous operation on a USM allocation,
// ordered against prior operations on the same allocation.
func usmCommand[T any](q *Queue, u *USM[T], write bool, op func() error) *Event {
	ev := newEvent()
	q.mu.Lock()
	q.events = append(q.events, ev)
	q.mu.Unlock()
	if err := u.live(); err != nil {
		ev.complete(nil, err)
		return ev
	}
	deps := u.deps.acquire(ev, write)
	go func() {
		for _, d := range deps {
			if err := d.Wait(); err != nil {
				ev.complete(nil, fmt.Errorf("sycl: dependency failed: %w", err))
				return
			}
		}
		ev.complete(nil, op())
	}()
	return ev
}

// SubmitUSMKernel launches a kernel that reads and writes USM allocations.
// deps are the events the launch must wait for (the explicit ordering USM
// requires in place of accessor-derived dependencies); the usual local
// accessors are available through the handler.
func (q *Queue) SubmitUSMKernel(name string, global, local gpu.Range, deps []*Event, body func(it *NDItem)) *Event {
	return q.Submit(func(h *Handler) error {
		for _, d := range deps {
			if d == nil {
				return errors.New("sycl: nil dependency event")
			}
			if err := d.Wait(); err != nil {
				return fmt.Errorf("sycl: dependency failed: %w", err)
			}
		}
		return h.ParallelFor(name, global, local, body)
	})
}
