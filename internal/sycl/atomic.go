package sycl

import "casoffinder/internal/gpu"

// MemoryOrder is the ordering constraint of an atomic reference
// (memory_order::relaxed in Table V).
type MemoryOrder int

// Memory orders.
const (
	Relaxed MemoryOrder = iota + 1
	AcqRel
	SeqCst
)

// MemoryScope is the set of work-items an atomic synchronises with
// (memory_scope::device in Table V).
type MemoryScope int

// Memory scopes.
const (
	WorkGroupScope MemoryScope = iota + 1
	DeviceScope
	SystemScope
)

// AddressSpace is the address space of the referenced object
// (access::address_space::global_space in Table V).
type AddressSpace int

// Address spaces.
const (
	GlobalAddressSpace AddressSpace = iota + 1
	LocalAddressSpace
)

// AtomicRef is a reference through which a memory location is updated
// atomically — the SYCL atomic_ref class of Table V, instantiated with the
// ordering, scope and address space of the referenced object. The simulator
// implements every combination with sequentially consistent host atomics,
// which satisfies the relaxed ordering the application requests.
type AtomicRef struct {
	it    *gpu.Item
	p     *uint32
	order MemoryOrder
	scope MemoryScope
	space AddressSpace
}

// NewAtomicRef builds an atomic reference to *p.
func NewAtomicRef(it *NDItem, p *uint32, order MemoryOrder, scope MemoryScope, space AddressSpace) AtomicRef {
	return AtomicRef{it: it.Item(), p: p, order: order, scope: scope, space: space}
}

// FetchAdd atomically adds v and returns the previous value.
func (a AtomicRef) FetchAdd(v uint32) uint32 {
	return a.it.AtomicAddUint32(a.p, v)
}

// AtomicInc is the migration helper of Table V:
//
//	template<typename T> T atomic_inc(T &val) {
//	  atomic_ref<T, memory_order::relaxed, memory_scope::device,
//	             access::address_space::global_space> obj(val);
//	  return obj.fetch_add((T)1);
//	}
//
// It replaces the OpenCL atomic_inc() built-in in the application kernels.
func AtomicInc(it *NDItem, val *uint32) uint32 {
	return NewAtomicRef(it, val, Relaxed, DeviceScope, GlobalAddressSpace).FetchAdd(1)
}
