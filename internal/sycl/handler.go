package sycl

import (
	"context"
	"fmt"
	"reflect"

	"casoffinder/internal/fault"
	"casoffinder/internal/gpu"
)

// bufAccess records one accessor registration for dependency analysis.
type bufAccess struct {
	buf   bufferLike
	write bool
}

// Handler is the SYCL command-group handler (cgh). A command group function
// receives it, creates accessors, and sets exactly one action: a kernel
// launch (ParallelFor, Table VI) or a copy (CopyToDevice / CopyFromDevice,
// Table III). The handler is only valid during its Submit call.
type Handler struct {
	q      *Queue
	ctx    context.Context
	usable bool

	accesses []bufAccess
	locals   []func() any
	ldsBytes int

	opName string
	action func(dev *gpu.Device) (*gpu.Stats, error)
}

func (h *Handler) useable() error {
	if !h.usable {
		return ErrHandlerReuse
	}
	return nil
}

func (h *Handler) registerAccess(buf bufferLike, mode AccessMode) {
	h.accesses = append(h.accesses, bufAccess{buf: buf, write: mode.writes()})
}

func (h *Handler) setAction(a func(dev *gpu.Device) (*gpu.Stats, error)) error {
	if err := h.useable(); err != nil {
		return err
	}
	if h.action != nil {
		return fmt.Errorf("sycl: command group already has an action")
	}
	h.action = a
	return nil
}

// ParallelFor launches a kernel over an nd_range — the SYCL side of
// Table VI: h.parallel_for(nd_range<1>(gws, lws), [=](nd_item<1> it)
// { finder(it, ...) }). The name labels the launch in the device log.
func (h *Handler) ParallelFor(name string, global, local gpu.Range, body func(it *NDItem)) error {
	if body == nil {
		return fmt.Errorf("sycl: nil kernel body")
	}
	locals := h.locals
	lds := h.ldsBytes
	lctx := h.ctx
	h.opName = name
	return h.setAction(func(dev *gpu.Device) (*gpu.Stats, error) {
		return dev.Launch(gpu.LaunchSpec{
			Name:   name,
			Global: global,
			Local:  local,
			Kernel: func(g *gpu.Group) gpu.WorkItemFunc {
				shared := make([]any, len(locals))
				for i, mk := range locals {
					shared[i] = mk()
				}
				g.SetLocals(shared)
				return func(it *gpu.Item) {
					nd := NDItem{it: it}
					body(&nd)
				}
			},
			LDSBytesPerWG: lds,
			Ctx:           lctx,
		})
	})
}

// ParallelForPhases launches a kernel whose body is split at its barrier
// points, one function per phase, through the simulator's cooperative
// scheduler: all work-items of a group run each phase sequentially on one
// worker, with an implicit work-group barrier between phases and zero
// per-item goroutines. It is the SYCL frontend's counterpart of a compiler
// that statically resolves the kernel's barrier structure; ParallelFor
// remains for bodies whose barriers cannot be split out. Local-accessor
// storage is allocated once per worker and reused across that worker's
// groups, so phases must write local memory before reading it, exactly as
// on a real device.
func (h *Handler) ParallelForPhases(name string, global, local gpu.Range, phases []func(it *NDItem)) error {
	if len(phases) == 0 {
		return fmt.Errorf("sycl: no kernel phases")
	}
	for _, ph := range phases {
		if ph == nil {
			return fmt.Errorf("sycl: nil kernel phase")
		}
	}
	locals := h.locals
	lds := h.ldsBytes
	lctx := h.ctx
	h.opName = name
	return h.setAction(func(dev *gpu.Device) (*gpu.Stats, error) {
		return dev.Launch(gpu.LaunchSpec{
			Name:   name,
			Global: global,
			Local:  local,
			Phases: func(g *gpu.Group) []gpu.WorkItemFunc {
				shared := make([]any, len(locals))
				for i, mk := range locals {
					shared[i] = mk()
				}
				g.SetLocals(shared)
				// One NDItem per worker: the phases of a group run
				// sequentially, so the wrapper can be reused without
				// allocating per work-item.
				nd := new(NDItem)
				out := make([]gpu.WorkItemFunc, len(phases))
				for i, ph := range phases {
					ph := ph
					out[i] = func(it *gpu.Item) {
						nd.it = it
						ph(nd)
					}
				}
				return out
			},
			LDSBytesPerWG: lds,
			Ctx:           lctx,
		})
	})
}

// CopyFromDevice copies an accessor's range into host memory — the first
// row of Table III (cgh.copy(deviceAccessor, hostPtr)).
func CopyFromDevice[T any](h *Handler, dst []T, src *Accessor[T]) error {
	if len(dst) < src.Len() {
		return fmt.Errorf("%w: host destination holds %d of %d elements",
			ErrInvalidAccessRange, len(dst), src.Len())
	}
	return h.setAction(func(dev *gpu.Device) (*gpu.Stats, error) {
		copy(dst[:src.Len()], src.Slice())
		return nil, nil
	})
}

// CopyToDevice copies host memory into an accessor's range — the second row
// of Table III (cgh.copy(hostPtr, deviceAccessor)).
func CopyToDevice[T any](h *Handler, dst *Accessor[T], src []T) error {
	if !dst.Mode().writes() {
		return fmt.Errorf("sycl: copy destination accessor is read-only")
	}
	if len(src) < dst.Len() {
		return fmt.Errorf("%w: host source holds %d of %d elements",
			ErrInvalidAccessRange, len(src), dst.Len())
	}
	return h.setAction(func(dev *gpu.Device) (*gpu.Stats, error) {
		copy(dst.Slice(), src[:dst.Len()])
		return nil, nil
	})
}

// Copy copies one device accessor's range into another — the
// buffer-to-buffer form of Table III (cgh.copy(srcAccessor, dstAccessor)).
// The copy stays on the device: it crosses no host boundary, so it has no
// readback fault surface and costs no PCIe traffic.
func Copy[T any](h *Handler, dst, src *Accessor[T]) error {
	if !dst.Mode().writes() {
		return fmt.Errorf("sycl: copy destination accessor is read-only")
	}
	if dst.Len() < src.Len() {
		return fmt.Errorf("%w: copy destination holds %d of %d elements",
			ErrInvalidAccessRange, dst.Len(), src.Len())
	}
	return h.setAction(func(dev *gpu.Device) (*gpu.Stats, error) {
		copy(dst.Slice(), src.Slice())
		return nil, nil
	})
}

// LocalAccessor is shared local memory declared in a command group — the
// SYCL replacement for an OpenCL __local kernel argument (§III.E). Each
// work-group gets its own storage.
type LocalAccessor[T any] struct {
	index int
}

// NewLocalAccessor declares n elements of work-group-local storage.
func NewLocalAccessor[T any](h *Handler, n int) (*LocalAccessor[T], error) {
	if err := h.useable(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("sycl: local accessor needs a positive size, got %d", n)
	}
	idx := len(h.locals)
	h.locals = append(h.locals, func() any { return make([]T, n) })
	var zero T
	h.ldsBytes += n * int(reflect.TypeOf(zero).Size())
	return &LocalAccessor[T]{index: idx}, nil
}

// Slice returns the calling work-group's storage.
func (la *LocalAccessor[T]) Slice(it *NDItem) []T {
	return it.it.Group().Local(la.index).([]T)
}

// Submit runs a command-group function and schedules its action — the SYCL
// queue submit of Tables III and VI. The returned event completes when the
// action has run; buffer-access dependencies order it against previously
// submitted groups. Errors returned by the command-group function, or
// raised asynchronously by the action, surface on the event (and on
// Queue.Wait) and are delivered to the queue's async handler, mirroring
// SYCL's async exception machinery.
func (q *Queue) Submit(cg func(h *Handler) error) *Event {
	return q.SubmitCtx(nil, cg)
}

// SubmitCtx is Submit with a launch-bounding context: kernels launched by
// the command group carry ctx into the simulator, so an injected hang
// blocks on it until the caller's watchdog cancels instead of wedging the
// queue. A nil ctx keeps the plain Submit contract.
func (q *Queue) SubmitCtx(ctx context.Context, cg func(h *Handler) error) *Event {
	ev := newEvent()
	q.mu.Lock()
	q.events = append(q.events, ev)
	q.mu.Unlock()

	h := &Handler{q: q, ctx: ctx, usable: true}
	if err := cg(h); err != nil {
		ev.complete(nil, err)
		return ev
	}
	h.usable = false
	if h.action == nil {
		ev.complete(nil, ErrNoAction)
		return ev
	}
	op := h.opName
	if op == "" {
		op = "command-group"
	}

	// The async-exception fault site fires synchronously at submission so
	// the per-site event sequence depends only on submission order, which
	// the engines keep deterministic. The failure itself stays
	// asynchronous in character: it surfaces on the event and through the
	// installed handler, never as a Submit return value.
	if in := q.dev.Faults(); in != nil && in.Fire(fault.SiteSYCLAsync) {
		err := fault.New(fault.SiteSYCLAsync, fault.Transient,
			&AsyncError{Op: op, Err: fmt.Errorf("injected asynchronous exception")})
		ev.complete(nil, err)
		q.deliverAsync(op, err)
		return ev
	}

	// Register this event in each touched buffer's dependency state, in
	// submission order, and collect what it must wait for.
	var deps []*Event
	buffers := make([]bufferLike, 0, len(h.accesses))
	for _, a := range h.accesses {
		deps = append(deps, a.buf.state().acquire(ev, a.write)...)
		buffers = append(buffers, a.buf)
		if a.write {
			if marker, ok := a.buf.(interface{ markWritten() }); ok {
				marker.markWritten()
			}
		}
	}

	go func() {
		for _, d := range deps {
			if err := d.Wait(); err != nil {
				err = fmt.Errorf("sycl: dependency failed: %w", err)
				ev.complete(nil, err)
				q.deliverAsync(op, err)
				return
			}
		}
		for _, b := range buffers {
			if err := b.ensureAlloc(q.dev); err != nil {
				ev.complete(nil, err)
				q.deliverAsync(op, err)
				return
			}
		}
		stats, err := h.action(q.dev)
		ev.complete(stats, err)
		if err != nil {
			q.deliverAsync(op, err)
		}
	}()
	return ev
}
