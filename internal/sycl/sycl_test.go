package sycl

import (
	"errors"
	"testing"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
)

func newTestQueue(t *testing.T) *Queue {
	t.Helper()
	q, err := NewQueue(DefaultSelector{}, gpu.New(device.MI100(), gpu.WithWorkers(4)))
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}
	return q
}

func TestSelectors(t *testing.T) {
	rvii := gpu.New(device.RadeonVII())
	mi100 := gpu.New(device.MI100())
	devs := []*gpu.Device{rvii, mi100}

	got, err := (GPUSelector{}).Select(devs)
	if err != nil || got != mi100 {
		t.Errorf("GPUSelector picked %v, %v; want MI100 (most CUs)", got, err)
	}
	got, err = (DefaultSelector{}).Select(devs)
	if err != nil || got != rvii {
		t.Errorf("DefaultSelector picked %v, %v; want first", got, err)
	}
	got, err = (NameSelector{Name: "RVII"}).Select(devs)
	if err != nil || got != rvii {
		t.Errorf("NameSelector picked %v, %v", got, err)
	}
	if _, err := (NameSelector{Name: "H100"}).Select(devs); !errors.Is(err, ErrNoDevice) {
		t.Errorf("NameSelector(unknown) = %v, want ErrNoDevice", err)
	}
	if _, err := (GPUSelector{}).Select(nil); !errors.Is(err, ErrNoDevice) {
		t.Errorf("GPUSelector(none) = %v, want ErrNoDevice", err)
	}
	if _, err := NewQueue(nil); !errors.Is(err, ErrNoDevice) {
		t.Errorf("NewQueue(no devices) = %v, want ErrNoDevice", err)
	}
}

// TestSubmitParallelFor drives the SYCL side of Table VI: a buffer, a
// command group with accessors and a local accessor, a parallel_for over an
// nd_range, and an event wait.
func TestSubmitParallelFor(t *testing.T) {
	q := newTestQueue(t)
	const n = 1024
	host := make([]int32, n)
	for i := range host {
		host[i] = int32(i)
	}
	in, err := NewBufferFrom(host)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewBuffer[int32](n)
	if err != nil {
		t.Fatal(err)
	}

	ev := q.Submit(func(h *Handler) error {
		inAcc, err := Access(h, in, Read)
		if err != nil {
			return err
		}
		outAcc, err := Access(h, out, Write)
		if err != nil {
			return err
		}
		staging, err := NewLocalAccessor[int32](h, 256)
		if err != nil {
			return err
		}
		return h.ParallelFor("scale", gpu.R1(n), gpu.R1(256), func(it *NDItem) {
			gid := it.GetGlobalID(0)
			li := it.GetLocalID(0)
			s := staging.Slice(it)
			s[li] = inAcc.Slice()[gid]
			it.Barrier(LocalSpace)
			outAcc.Slice()[gid] = s[li] * 2
		})
	})
	if err := ev.Wait(); err != nil {
		t.Fatalf("event: %v", err)
	}
	if ev.Stats() == nil || ev.Stats().WorkItems != n {
		t.Errorf("stats = %+v", ev.Stats())
	}
	got, err := out.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i*2) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}

// TestImplicitDependencies checks RAW ordering between command groups: a
// kernel writing a buffer must complete before a later kernel reading it
// runs, with no explicit wait in between.
func TestImplicitDependencies(t *testing.T) {
	q := newTestQueue(t)
	const n = 256
	a, _ := NewBuffer[int32](n)
	b, _ := NewBuffer[int32](n)

	// Group 1: a[i] = i.
	q.Submit(func(h *Handler) error {
		acc, err := Access(h, a, Write)
		if err != nil {
			return err
		}
		return h.ParallelFor("fill", gpu.R1(n), gpu.R1(64), func(it *NDItem) {
			acc.Slice()[it.GetGlobalID(0)] = int32(it.GetGlobalID(0))
		})
	})
	// Group 2: b[i] = a[i] + 1 (depends on group 1 through buffer a).
	q.Submit(func(h *Handler) error {
		ra, err := Access(h, a, Read)
		if err != nil {
			return err
		}
		wb, err := Access(h, b, Write)
		if err != nil {
			return err
		}
		return h.ParallelFor("inc", gpu.R1(n), gpu.R1(64), func(it *NDItem) {
			gid := it.GetGlobalID(0)
			wb.Slice()[gid] = ra.Slice()[gid] + 1
		})
	})
	// Group 3: a[i] = 0 (WAR against group 2's read of a).
	q.Submit(func(h *Handler) error {
		acc, err := Access(h, a, Write)
		if err != nil {
			return err
		}
		return h.ParallelFor("clear", gpu.R1(n), gpu.R1(64), func(it *NDItem) {
			acc.Slice()[it.GetGlobalID(0)] = 0
		})
	})
	if err := q.Wait(); err != nil {
		t.Fatalf("queue wait: %v", err)
	}
	gotB, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range gotB {
		if v != int32(i+1) {
			t.Fatalf("b[%d] = %d, want %d (RAW/WAR ordering broken)", i, v, i+1)
		}
	}
	gotA, _ := a.Snapshot()
	for i, v := range gotA {
		if v != 0 {
			t.Fatalf("a[%d] = %d, want 0", i, v)
		}
	}
}

// TestTableIIICopies exercises the ranged-accessor copy commands of
// Table III in both directions.
func TestTableIIICopies(t *testing.T) {
	q := newTestQueue(t)
	buf, _ := NewBuffer[uint32](16)

	src := []uint32{10, 11, 12, 13}
	ev := q.Submit(func(h *Handler) error {
		acc, err := AccessRange(h, buf, Write, 4, 8)
		if err != nil {
			return err
		}
		return CopyToDevice(h, acc, src)
	})
	if err := ev.Wait(); err != nil {
		t.Fatalf("write copy: %v", err)
	}

	dst := make([]uint32, 6)
	ev = q.Submit(func(h *Handler) error {
		acc, err := AccessRange(h, buf, Read, 6, 7)
		if err != nil {
			return err
		}
		return CopyFromDevice(h, dst, acc)
	})
	if err := ev.Wait(); err != nil {
		t.Fatalf("read copy: %v", err)
	}
	want := []uint32{0, 10, 11, 12, 13, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

// TestBufferWriteBack verifies the §III.A destruction semantics: Destroy
// waits for outstanding work and copies contents back to host memory.
func TestBufferWriteBack(t *testing.T) {
	q := newTestQueue(t)
	host := []int32{1, 2, 3, 4}
	buf, _ := NewBufferFrom(host)
	q.Submit(func(h *Handler) error {
		acc, err := Access(h, buf, ReadWrite)
		if err != nil {
			return err
		}
		return h.ParallelFor("square", gpu.R1(4), gpu.R1(4), func(it *NDItem) {
			v := acc.Slice()[it.GetGlobalID(0)]
			acc.Slice()[it.GetGlobalID(0)] = v * v
		})
	})
	// No explicit wait: Destroy must wait for the kernel itself.
	if err := buf.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	want := []int32{1, 4, 9, 16}
	for i := range want {
		if host[i] != want[i] {
			t.Errorf("host[%d] = %d, want %d", i, host[i], want[i])
		}
	}
	// Destruction is idempotent, unlike an OpenCL double release.
	if err := buf.Destroy(); err != nil {
		t.Errorf("second Destroy: %v", err)
	}
}

func TestBufferNoWriteBackWhenUnwritten(t *testing.T) {
	q := newTestQueue(t)
	host := []int32{5, 6}
	buf, _ := NewBufferFrom(host)
	dst := make([]int32, 2)
	ev := q.Submit(func(h *Handler) error {
		acc, err := Access(h, buf, Read)
		if err != nil {
			return err
		}
		return CopyFromDevice(h, dst, acc)
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	host[0] = 99 // host mutation after construction
	if err := buf.Destroy(); err != nil {
		t.Fatal(err)
	}
	if host[0] != 99 {
		t.Error("read-only buffer overwrote host memory on destruction")
	}
}

func TestUseAfterDestroy(t *testing.T) {
	q := newTestQueue(t)
	buf, _ := NewBuffer[int32](8)
	if err := buf.Destroy(); err != nil {
		t.Fatal(err)
	}
	ev := q.Submit(func(h *Handler) error {
		_, err := Access(h, buf, Read)
		return err
	})
	if err := ev.Wait(); !errors.Is(err, ErrBufferDestroyed) {
		t.Errorf("access after destroy = %v, want ErrBufferDestroyed", err)
	}
	if _, err := buf.Snapshot(); !errors.Is(err, ErrBufferDestroyed) {
		t.Errorf("snapshot after destroy = %v, want ErrBufferDestroyed", err)
	}
}

func TestAccessRangeErrors(t *testing.T) {
	q := newTestQueue(t)
	buf, _ := NewBuffer[int32](8)
	ev := q.Submit(func(h *Handler) error {
		_, err := AccessRange(h, buf, Read, 6, 4)
		if !errors.Is(err, ErrInvalidAccessRange) {
			t.Errorf("overlong range = %v", err)
		}
		_, err = AccessRange(h, buf, Read, -1, 0)
		if !errors.Is(err, ErrInvalidAccessRange) {
			t.Errorf("negative count = %v", err)
		}
		acc, err := Access(h, buf, Read)
		if err != nil {
			return err
		}
		return CopyFromDevice(h, make([]int32, 8), acc)
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCommandGroupErrors(t *testing.T) {
	q := newTestQueue(t)
	// No action.
	ev := q.Submit(func(h *Handler) error { return nil })
	if err := ev.Wait(); !errors.Is(err, ErrNoAction) {
		t.Errorf("empty group = %v, want ErrNoAction", err)
	}
	// Two actions.
	buf, _ := NewBuffer[int32](4)
	ev = q.Submit(func(h *Handler) error {
		acc, err := Access(h, buf, Write)
		if err != nil {
			return err
		}
		if err := CopyToDevice(h, acc, make([]int32, 4)); err != nil {
			return err
		}
		return h.ParallelFor("extra", gpu.R1(4), gpu.R1(4), func(it *NDItem) {})
	})
	if err := ev.Wait(); err == nil {
		t.Error("double action = nil error")
	}
	// Command-group function error propagates to the event.
	wantErr := errors.New("boom")
	ev = q.Submit(func(h *Handler) error { return wantErr })
	if err := ev.Wait(); !errors.Is(err, wantErr) {
		t.Errorf("cg error = %v, want boom", err)
	}
	// Handler escaping its command group is rejected.
	var escaped *Handler
	ev = q.Submit(func(h *Handler) error {
		escaped = h
		acc, err := Access(h, buf, Write)
		if err != nil {
			return err
		}
		return CopyToDevice(h, acc, make([]int32, 4))
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := Access(escaped, buf, Read); !errors.Is(err, ErrHandlerReuse) {
		t.Errorf("escaped handler = %v, want ErrHandlerReuse", err)
	}
}

// TestAsyncErrorOnQueueWait verifies launch-time errors surface on
// Queue.Wait, like SYCL's async handler.
func TestAsyncErrorOnQueueWait(t *testing.T) {
	q := newTestQueue(t)
	buf, _ := NewBuffer[int32](100)
	q.Submit(func(h *Handler) error {
		acc, err := Access(h, buf, Write)
		if err != nil {
			return err
		}
		// 100 % 64 != 0: invalid nd_range surfaces asynchronously.
		return h.ParallelFor("bad", gpu.R1(100), gpu.R1(64), func(it *NDItem) {
			acc.Slice()[it.GetGlobalID(0)] = 1
		})
	})
	if err := q.Wait(); !errors.Is(err, gpu.ErrLocalSize) {
		t.Errorf("Queue.Wait = %v, want ErrLocalSize", err)
	}
}

func TestAtomicRefTableV(t *testing.T) {
	q := newTestQueue(t)
	var counter uint32
	cbuf, _ := NewBufferFrom([]uint32{0}) // slot store
	out, _ := NewBuffer[uint32](512)
	_ = cbuf
	ev := q.Submit(func(h *Handler) error {
		acc, err := Access(h, out, Write)
		if err != nil {
			return err
		}
		return h.ParallelFor("atomics", gpu.R1(512), gpu.R1(64), func(it *NDItem) {
			old := AtomicInc(it, &counter)
			acc.Slice()[old] = uint32(it.GetGlobalID(0))
		})
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if counter != 512 {
		t.Fatalf("counter = %d, want 512", counter)
	}
	got, _ := out.Snapshot()
	seen := make(map[uint32]bool)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("value %d stored twice: atomic slots not unique", v)
		}
		seen[v] = true
	}
	if ev.Stats().AtomicOps != 512 {
		t.Errorf("AtomicOps = %d, want 512", ev.Stats().AtomicOps)
	}
}

func TestConstantBuffer(t *testing.T) {
	q := newTestQueue(t)
	pat, err := NewConstantBuffer([]byte("NGG"))
	if err != nil {
		t.Fatal(err)
	}
	ev := q.Submit(func(h *Handler) error {
		acc, err := Access(h, pat, Read)
		if err != nil {
			return err
		}
		if !acc.Constant() {
			t.Error("accessor should report constant target")
		}
		return h.ParallelFor("touch", gpu.R1(4), gpu.R1(4), func(it *NDItem) {
			it.Item().LoadConstant()
			_ = acc.Slice()[0]
		})
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	if ev.Stats().ConstantLoadOps != 4 {
		t.Errorf("ConstantLoadOps = %d", ev.Stats().ConstantLoadOps)
	}
	// Writing a constant buffer is rejected.
	ev = q.Submit(func(h *Handler) error {
		_, err := Access(h, pat, Write)
		return err
	})
	if err := ev.Wait(); err == nil {
		t.Error("write access to constant buffer = nil error")
	}
}

func TestNDItemNames(t *testing.T) {
	q := newTestQueue(t)
	buf, _ := NewBuffer[int32](128)
	ev := q.Submit(func(h *Handler) error {
		acc, err := Access(h, buf, Write)
		if err != nil {
			return err
		}
		return h.ParallelFor("names", gpu.R1(128), gpu.R1(32), func(it *NDItem) {
			// Table IV: group*localRange + localID == globalID.
			if it.GetGroup(0)*it.GetLocalRange(0)+it.GetLocalID(0) != it.GetGlobalID(0) {
				t.Error("nd_item coordinate identity broken")
			}
			if it.GetGlobalRange(0) != 128 || it.GetGroupRange(0) != 4 {
				t.Error("nd_item ranges wrong")
			}
			acc.Slice()[it.GetGlobalID(0)] = 1
		})
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceOOMSurfacesOnEvent(t *testing.T) {
	q := newTestQueue(t) // MI100: 32 GiB
	big, err := NewBuffer[int64](1 << 33)
	if err != nil {
		t.Fatal(err)
	}
	ev := q.Submit(func(h *Handler) error {
		acc, err := Access(h, big, Write)
		if err != nil {
			return err
		}
		return h.ParallelFor("oom", gpu.R1(64), gpu.R1(64), func(it *NDItem) {
			_ = acc
		})
	})
	if err := ev.Wait(); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Errorf("oversized buffer = %v, want ErrOutOfMemory", err)
	}
}

func TestNewBufferErrors(t *testing.T) {
	if _, err := NewBuffer[int32](-1); err == nil {
		t.Error("negative size = nil error")
	}
}

func TestProgrammingStepCounts(t *testing.T) {
	if got := len(ProgrammingSteps()); got != 8 {
		t.Errorf("SYCL steps = %d, want 8 (Table I)", got)
	}
}

// TestCrossQueueBufferDependencies: two queues on the same device sharing a
// buffer are still ordered by the buffer's dependency state.
func TestCrossQueueBufferDependencies(t *testing.T) {
	dev := gpu.New(device.MI60(), gpu.WithWorkers(4))
	q1, err := NewQueue(DefaultSelector{}, dev)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQueue(DefaultSelector{}, dev)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := NewBuffer[int32](256)
	q1.Submit(func(h *Handler) error {
		acc, err := Access(h, buf, Write)
		if err != nil {
			return err
		}
		return h.ParallelFor("fill", gpu.R1(256), gpu.R1(64), func(it *NDItem) {
			acc.Slice()[it.GetGlobalID(0)] = 7
		})
	})
	ev := q2.Submit(func(h *Handler) error {
		acc, err := Access(h, buf, ReadWrite)
		if err != nil {
			return err
		}
		return h.ParallelFor("inc", gpu.R1(256), gpu.R1(64), func(it *NDItem) {
			acc.Slice()[it.GetGlobalID(0)]++
		})
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
	got, err := buf.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 8 {
			t.Fatalf("buf[%d] = %d, want 8 (cross-queue ordering broken)", i, v)
		}
	}
}

func TestAccessorMetadata(t *testing.T) {
	q := newTestQueue(t)
	buf, _ := NewBuffer[int32](16)
	ev := q.Submit(func(h *Handler) error {
		acc, err := AccessRange(h, buf, ReadWrite, 4, 8)
		if err != nil {
			return err
		}
		if acc.Len() != 4 || acc.Offset() != 8 || acc.Mode() != ReadWrite {
			t.Errorf("accessor metadata: len=%d off=%d mode=%v", acc.Len(), acc.Offset(), acc.Mode())
		}
		if acc.Constant() {
			t.Error("plain buffer reported constant")
		}
		return CopyToDevice(h, acc, make([]int32, 4))
	})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
}
