package sycl

// ProgrammingSteps returns the logical steps of writing a SYCL program, as
// enumerated in the paper's Table I: the first three OpenCL steps collapse
// into a device selector, program/kernel management collapses into a lambda
// submitted to a queue, transfers become implicit via accessors, and
// releases are handled by destructors.
func ProgrammingSteps() []string {
	return []string{
		"Device selector class (DeviceSelector)",
		"Queue class (NewQueue)",
		"Buffer class (NewBuffer / NewBufferFrom)",
		"Lambda expressions (command-group function with kernel body)",
		"Submit a SYCL kernel to a queue (Queue.Submit + Handler.ParallelFor)",
		"Implicit transfers via accessors (Access / AccessRange / Copy*)",
		"Event class (Event.Wait / Queue.Wait)",
		"Implicit release via destructors (Buffer.Destroy write-back)",
	}
}
