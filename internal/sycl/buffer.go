package sycl

import (
	"fmt"
	"reflect"
	"sync"

	"casoffinder/internal/fault"
	"casoffinder/internal/gpu"
)

// depState serialises conflicting commands on one buffer. Submitting a
// command group that writes a buffer makes it depend on the buffer's last
// writer and all readers since (WAW, WAR); a reading group depends on the
// last writer only (RAW). This is the implicit task graph a SYCL runtime
// derives from accessors.
type depState struct {
	mu        sync.Mutex
	lastWrite *Event
	readers   []*Event
}

// acquire registers ev as the next access and returns the events it must
// wait for.
func (ds *depState) acquire(ev *Event, write bool) []*Event {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	var deps []*Event
	if ds.lastWrite != nil {
		deps = append(deps, ds.lastWrite)
	}
	if write {
		deps = append(deps, ds.readers...)
		ds.lastWrite = ev
		ds.readers = nil
	} else {
		ds.readers = append(ds.readers, ev)
	}
	return deps
}

// settled returns the events an outside observer (buffer destruction, host
// snapshot) must wait for: the last writer and all readers.
func (ds *depState) settled() []*Event {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	deps := make([]*Event, 0, len(ds.readers)+1)
	if ds.lastWrite != nil {
		deps = append(deps, ds.lastWrite)
	}
	deps = append(deps, ds.readers...)
	return deps
}

// bufferLike is the type-erased view of Buffer[T] the handler scheduler
// uses.
type bufferLike interface {
	state() *depState
	ensureAlloc(dev *gpu.Device) error
	live() error
}

// Buffer is a SYCL buffer of element type T — step 3 of the SYCL column of
// Table I and the right column of Table II. The runtime owns its storage:
// there is no explicit release; Destroy (the analogue of the buffer going
// out of scope in C++) waits for outstanding work and writes the contents
// back to the host slice the buffer was constructed over.
type Buffer[T any] struct {
	mu        sync.Mutex
	length    int
	data      []T // materialised lazily for sized constructors
	host      []T // write-back target; nil for sized constructors
	written   bool
	destroyed bool
	alloc     *gpu.Allocation
	kind      gpu.MemKind
	deps      depState
}

// NewBuffer constructs a buffer of ws zero elements —
// "buffer<T, D> d (WS)" in Table II. The initial content is unspecified in
// SYCL; the simulator zeroes it. Storage is materialised when the buffer is
// first used on a device, after the device memory budget admits it.
func NewBuffer[T any](ws int) (*Buffer[T], error) {
	if ws < 0 {
		return nil, fmt.Errorf("sycl: negative buffer size %d", ws)
	}
	return &Buffer[T]{length: ws, kind: gpu.GlobalMem}, nil
}

// NewBufferFrom constructs a buffer initialised from, and owning, the host
// slice for the buffer's lifetime — "buffer<T, D> d (h, WS)" in Table II.
// Destroy copies the (possibly modified) contents back to host.
func NewBufferFrom[T any](host []T) (*Buffer[T], error) {
	b := &Buffer[T]{length: len(host), data: make([]T, len(host)), host: host, kind: gpu.GlobalMem}
	copy(b.data, host)
	return b, nil
}

// NewConstantBuffer constructs a read-only buffer that kernels access
// through the constant address space (the "constant_buffer" access target
// the paper uses for the finder kernel's pattern argument).
func NewConstantBuffer[T any](host []T) (*Buffer[T], error) {
	b, err := NewBufferFrom(host)
	if err != nil {
		return nil, err
	}
	b.kind = gpu.ConstantMem
	return b, nil
}

// Len returns the buffer length in elements.
func (b *Buffer[T]) Len() int { return b.length }

func (b *Buffer[T]) state() *depState { return &b.deps }

func (b *Buffer[T]) live() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.destroyed {
		return ErrBufferDestroyed
	}
	return nil
}

// ensureAlloc lazily charges the buffer against the device memory budget on
// first use, the way a SYCL runtime materialises device storage when a
// kernel first needs it.
func (b *Buffer[T]) ensureAlloc(dev *gpu.Device) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.destroyed {
		return ErrBufferDestroyed
	}
	if b.alloc != nil {
		return nil
	}
	var zero T
	size := int64(b.length) * int64(reflect.TypeOf(zero).Size())
	alloc, err := dev.Alloc(b.kind, size)
	if err != nil {
		return fmt.Errorf("sycl: materialising buffer on %s: %w", dev.Spec().Name, err)
	}
	b.alloc = alloc
	if b.data == nil {
		b.data = make([]T, b.length)
	}
	return nil
}

func (b *Buffer[T]) materialize() {
	b.mu.Lock()
	if b.data == nil {
		b.data = make([]T, b.length)
	}
	b.mu.Unlock()
}

func (b *Buffer[T]) markWritten() {
	b.mu.Lock()
	b.written = true
	b.mu.Unlock()
}

// Destroy ends the buffer's lifetime: it waits until all submitted work on
// the buffer has completed, copies the contents back to the host memory the
// buffer was constructed over (if any work wrote to it), and returns the
// device storage. It reproduces the destruction semantics §III.A describes
// and is idempotent, unlike an OpenCL double release. Like the SYCL buffer
// destructor it does not throw for failed producers: a dependent command
// group's error was already delivered on its event and to the queue's
// asynchronous handler, so the wait here is a completion barrier only.
func (b *Buffer[T]) Destroy() error {
	for _, e := range b.deps.settled() {
		_ = e.Wait()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.destroyed {
		return nil
	}
	b.destroyed = true
	if b.host != nil && b.written && b.data != nil {
		copy(b.host, b.data)
	}
	if b.alloc != nil {
		if err := b.alloc.Free(); err != nil {
			return err
		}
		b.alloc = nil
	}
	return nil
}

// Snapshot waits for all outstanding work on the buffer and returns a copy
// of its contents — a host accessor in SYCL terms.
func (b *Buffer[T]) Snapshot() ([]T, error) {
	return b.SnapshotRange(0, b.length)
}

// SnapshotRange waits for all outstanding work on the buffer and returns a
// copy of n elements starting at element offset — a ranged host accessor,
// reading back only the window the host needs.
func (b *Buffer[T]) SnapshotRange(offset, n int) ([]T, error) {
	for _, e := range b.deps.settled() {
		if err := e.Wait(); err != nil {
			return nil, fmt.Errorf("sycl: waiting for work on buffer: %w", err)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.destroyed {
		return nil, ErrBufferDestroyed
	}
	if offset < 0 || n < 0 || offset+n > b.length {
		return nil, fmt.Errorf("%w: snapshot [%d, %d) of %d",
			ErrInvalidAccessRange, offset, offset+n, b.length)
	}
	out := make([]T, n)
	if b.data != nil { // data may be nil (never materialised): zeros
		copy(out, b.data[offset:offset+n])
	}
	// Readback corruption strikes the host copy only, after the device
	// contents were read: the buffer itself stays intact, as when a bus
	// flips bits on the way back. Only materialised device buffers are
	// eligible — a never-used buffer has no device traffic to corrupt.
	if b.alloc != nil {
		if in := b.alloc.Device().Faults(); in != nil && in.Fire(fault.SiteReadback) {
			fault.CorruptAny(any(out))
		}
	}
	return out, nil
}

// AccessMode says how a kernel or copy uses an accessor (read, write or
// both) — the sycl_read / sycl_write / sycl_read_write short names the
// paper uses.
type AccessMode int

// Access modes.
const (
	Read AccessMode = 1 << iota
	Write
	ReadWrite AccessMode = Read | Write
)

func (m AccessMode) reads() bool  { return m&Read != 0 }
func (m AccessMode) writes() bool { return m&Write != 0 }

// Accessor indicates where and how buffer data is accessed (§III.A). It is
// created inside a command group via Access or AccessRange and hands the
// kernel a typed window onto the buffer.
type Accessor[T any] struct {
	buf    *Buffer[T]
	mode   AccessMode
	offset int
	length int
}

// Slice returns the accessor's window of the buffer data, materialising the
// host-side storage of a sized buffer on first access (the device-side
// budget is still charged when the owning command group runs).
func (a *Accessor[T]) Slice() []T {
	a.buf.materialize()
	return a.buf.data[a.offset : a.offset+a.length]
}

// Len returns the accessor range length.
func (a *Accessor[T]) Len() int { return a.length }

// Offset returns the accessor offset within the buffer.
func (a *Accessor[T]) Offset() int { return a.offset }

// Mode returns the access mode.
func (a *Accessor[T]) Mode() AccessMode { return a.mode }

// Constant reports whether the accessor targets the constant address space.
func (a *Accessor[T]) Constant() bool { return a.buf.kind == gpu.ConstantMem }

// Access creates an accessor covering the whole buffer —
// buf.get_access<mode>(cgh) in SYCL.
func Access[T any](h *Handler, buf *Buffer[T], mode AccessMode) (*Accessor[T], error) {
	return AccessRange(h, buf, mode, buf.Len(), 0)
}

// AccessRange creates a ranged accessor of count elements starting at
// offset — the ranged accessors of Table III.
func AccessRange[T any](h *Handler, buf *Buffer[T], mode AccessMode, count, offset int) (*Accessor[T], error) {
	if err := h.useable(); err != nil {
		return nil, err
	}
	if err := buf.live(); err != nil {
		return nil, err
	}
	if offset < 0 || count < 0 || offset+count > buf.Len() {
		return nil, fmt.Errorf("%w: [%d, %d) of %d", ErrInvalidAccessRange, offset, offset+count, buf.Len())
	}
	if buf.kind == gpu.ConstantMem && mode.writes() {
		return nil, fmt.Errorf("sycl: constant buffer cannot be written")
	}
	h.registerAccess(buf, mode)
	return &Accessor[T]{buf: buf, mode: mode, offset: offset, length: count}, nil
}
