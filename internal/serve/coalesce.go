// Cross-request guide coalescing: the production form of the pipeline's
// multi-pattern batching (pipeline.BatchComparer, ~3.2x over independent
// passes). Concurrent requests that share a coalescing key — (genome,
// PAM pattern, chunk budget) — are merged during a short batching window
// into one genome pass whose request carries every member's guides
// back-to-back; the demultiplexer routes each hit to its owner, rewriting
// the merged query index back into the member's own index space.
//
// Identity contract: the pipeline emits hits grouped by chunk in chunk
// order and sorted by (query, seq, pos, dir) within each chunk, and member
// queries occupy a contiguous merged-index range, so filtering a member's
// hits out of the merged stream preserves exactly the order the member
// would have seen running alone. Per-request output is therefore
// byte-identical to an uncoalesced run (coalesce_test.go pins this under
// -race); a batching window only ever trades a bounded latency delay for
// fewer genome passes.
//
// Failure attribution: one merged pass serves several requests, so a
// degraded pass (retries, failovers, quarantined chunks) degrades every
// member — each sees the pass's resilience report in its trailer, and a
// quarantined chunk's missing region is missing from every member's
// stream. A member whose own client dies mid-pass is marked gone and the
// pass carries on for the rest; only when every member is gone is the pass
// cancelled.
package serve

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
)

// DefaultCoalesceWindow is the batching window when the server config does
// not choose one: long enough for concurrent arrivals to meet, short
// enough to be invisible next to a genome pass.
const DefaultCoalesceWindow = 2 * time.Millisecond

// DefaultCoalesceMaxGuides seals a batch early once the merged request
// carries this many guides.
const DefaultCoalesceMaxGuides = 512

// errAllMembersGone aborts a pass whose every member has departed.
var errAllMembersGone = errors.New("serve: every coalesced member left")

// passFunc runs one genome pass: a pipeline stream of req over the named
// resident genome, returning the pass's resilience report (nil when the
// engine ran clean or carries no resilience policy).
type passFunc func(ctx context.Context, genome string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error)

// coalKey identifies requests that may share one genome pass. Mismatch
// budgets are per-guide and ride along inside the merged request, so they
// do not partition batches.
type coalKey struct {
	genome     string
	pattern    string
	chunkBytes int
}

// coalMember is one request's seat in a batch.
type coalMember struct {
	queries []pipeline.Query
	emit    func(pipeline.Hit) error
	// off is the member's first query index in the merged request; set at
	// seal, immutable afterwards.
	off int
	// err records the member's first emit failure; gone marks a departed
	// client. Both are guarded by the batch mutex and stop forwarding.
	err  error
	gone bool
}

// coalBatch collects members for one key until sealed, then runs the merged
// pass exactly once.
type coalBatch struct {
	key     coalKey
	members []*coalMember
	guides  int
	sealed  bool
	timer   *time.Timer

	// mu guards the forwarding state (member err/gone, live, cancel) from
	// seal onwards; the coalescer mutex guards everything before.
	mu     sync.Mutex
	live   int
	cancel context.CancelFunc

	done   chan struct{}
	report *pipeline.Report
	err    error
}

// coalescer groups concurrent joins into batches per key.
type coalescer struct {
	window    time.Duration
	maxGuides int
	run       passFunc
	metrics   *obs.Metrics

	mu      sync.Mutex
	pending map[coalKey]*coalBatch
}

// newCoalescer builds a coalescer; window <= 0 disables batching entirely
// (every Join runs its own pass).
func newCoalescer(window time.Duration, maxGuides int, run passFunc, m *obs.Metrics) *coalescer {
	if maxGuides <= 0 {
		maxGuides = DefaultCoalesceMaxGuides
	}
	return &coalescer{
		window:    window,
		maxGuides: maxGuides,
		run:       run,
		metrics:   m,
		pending:   make(map[coalKey]*coalBatch),
	}
}

// Join submits one request and streams its hits through emit. It blocks
// until the request's pass completes (or ctx ends) and returns the pass's
// resilience report, the pass error, and the member's own emit error.
func (c *coalescer) Join(ctx context.Context, genomeName string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error, error) {
	if c.window <= 0 {
		rep, err := c.run(ctx, genomeName, req, emit)
		c.metrics.Count(obs.MetricServeBatches, 1)
		return rep, err, nil
	}
	key := coalKey{genome: genomeName, pattern: req.Pattern, chunkBytes: req.ChunkBytes}
	m := &coalMember{queries: req.Queries, emit: emit}

	c.mu.Lock()
	b := c.pending[key]
	if b == nil {
		b = &coalBatch{key: key, done: make(chan struct{})}
		c.pending[key] = b
		b.timer = time.AfterFunc(c.window, func() { c.seal(b) })
	}
	b.members = append(b.members, m)
	b.guides += len(m.queries)
	b.mu.Lock()
	b.live++
	b.mu.Unlock()
	full := b.guides >= c.maxGuides
	c.mu.Unlock()
	if full {
		c.seal(b)
	}

	select {
	case <-b.done:
		b.mu.Lock()
		rep, perr, merr := b.report, b.err, m.err
		b.mu.Unlock()
		return rep, perr, merr
	case <-ctx.Done():
		// The client is gone; the batch runs on for the others, cancelled
		// only when the last member departs.
		b.mu.Lock()
		m.gone = true
		b.live--
		if b.live == 0 && b.cancel != nil {
			b.cancel()
		}
		merr := m.err
		b.mu.Unlock()
		return nil, ctx.Err(), merr
	}
}

// seal closes a batch to new members and runs its merged pass. Safe to call
// more than once (timer expiry and the max-guides trigger can race); only
// the first call wins.
func (c *coalescer) seal(b *coalBatch) {
	c.mu.Lock()
	if b.sealed {
		c.mu.Unlock()
		return
	}
	b.sealed = true
	if c.pending[b.key] == b {
		delete(c.pending, b.key)
	}
	if b.timer != nil {
		b.timer.Stop()
	}
	merged := &pipeline.Request{Pattern: b.key.pattern, ChunkBytes: b.key.chunkBytes}
	offs := make([]int, len(b.members))
	for i, m := range b.members {
		m.off = len(merged.Queries)
		offs[i] = m.off
		merged.Queries = append(merged.Queries, m.queries...)
	}
	c.mu.Unlock()

	c.metrics.Count(obs.MetricServeBatches, 1)
	if len(b.members) > 1 {
		c.metrics.Count(obs.MetricServeCoalesced, int64(len(b.members)))
	}

	passCtx, cancel := context.WithCancel(context.Background())
	b.mu.Lock()
	b.cancel = cancel
	if b.live == 0 {
		cancel()
	}
	b.mu.Unlock()

	go func() {
		defer cancel()
		var rep *pipeline.Report
		var err error
		func() {
			// The merged pass runs outside any handler goroutine, so an
			// engine panic here would crash the daemon and leave b.done
			// unclosed, hanging every member. Convert it to the pass error
			// instead; each member's trailer path reports it as a 500.
			defer func() {
				if rec := recover(); rec != nil {
					c.metrics.Count(obs.MetricServePanics, 1)
					err = apiErrorf(http.StatusInternalServerError, "panic",
						"internal error during genome pass")
				}
			}()
			rep, err = c.run(passCtx, b.key.genome, merged, func(h pipeline.Hit) error {
				return b.forward(offs, h)
			})
		}()
		if errors.Is(err, errAllMembersGone) {
			err = context.Canceled
		}
		b.mu.Lock()
		b.report, b.err = rep, err
		b.mu.Unlock()
		close(b.done)
	}()
}

// forward demultiplexes one merged hit to its owning member, rewriting the
// query index into the member's own space. A member that errored or left
// is skipped; the pass is aborted only when no member is listening at all.
func (b *coalBatch) forward(offs []int, h pipeline.Hit) error {
	// The member whose range holds h.QueryIndex is the last offset <= it.
	i := sort.SearchInts(offs, h.QueryIndex+1) - 1
	m := b.members[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.live == 0 {
		return errAllMembersGone
	}
	if m.gone || m.err != nil {
		return nil
	}
	h.QueryIndex -= m.off
	if err := m.emit(h); err != nil {
		m.err = err
	}
	return nil
}
