// Wire protocol of the search service: the request JSON accepted by
// POST /search, the typed error envelope every non-streaming failure is
// reported through, and the NDJSON trailer object that terminates every
// streamed response. The decoder is deliberately strict — unknown fields,
// trailing garbage, out-of-range numbers and malformed guides all come back
// as typed 400s, never panics (FuzzDecodeRequest pins that) — because the
// daemon faces untrusted callers where the CLI faced a local input file.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"casoffinder/internal/fault"
	"casoffinder/internal/pipeline"
)

// Request priorities, ordered so a larger value is more important. The
// admission controller sheds the newest lowest-priority work first.
const (
	PriorityLow    = 0
	PriorityNormal = 1
	PriorityHigh   = 2
)

// SearchRequest is the JSON body of POST /search.
type SearchRequest struct {
	// Genome names the resident genome to scan. Optional when the server
	// holds exactly one.
	Genome string `json:"genome,omitempty"`
	// Pattern is the PAM scaffold, as in the input-file format.
	Pattern string `json:"pattern"`
	// Guides are the queries to compare at every PAM-compatible site.
	Guides []Guide `json:"guides"`
	// ChunkBytes optionally bounds one staged chunk (0 = server default).
	ChunkBytes int `json:"chunk_bytes,omitempty"`
	// Priority is "high", "normal" (default) or "low"; under overload the
	// admission controller sheds the newest lowest-priority work first.
	Priority string `json:"priority,omitempty"`
	// TimeoutMs is the per-request deadline in milliseconds (0 = none);
	// expiry while queued is a 429, expiry mid-stream a deadline trailer.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// NoCoalesce opts this request out of cross-request guide coalescing;
	// its output is byte-identical either way, so the knob exists for
	// latency isolation, not correctness.
	NoCoalesce bool `json:"no_coalesce,omitempty"`
}

// Guide is one query guide with its mismatch budget.
type Guide struct {
	Guide         string `json:"guide"`
	MaxMismatches int    `json:"max_mismatches"`
}

// Trailer is the final NDJSON object of every streamed response. Done
// reports whether the search ran to completion; Degraded whether it strayed
// from the clean path (retries, failovers, watchdog kills or quarantined
// chunks — the counts follow). A response is only ever missing its trailer
// when the client went away first.
type Trailer struct {
	Done          bool       `json:"done"`
	Hits          int64      `json:"hits"`
	Degraded      bool       `json:"degraded"`
	Retries       int64      `json:"retries,omitempty"`
	Failovers     int64      `json:"failovers,omitempty"`
	WatchdogKills int64      `json:"watchdog_kills,omitempty"`
	Quarantined   int        `json:"quarantined,omitempty"`
	Error         *ErrorBody `json:"error,omitempty"`
}

// ErrorBody is the machine-readable error payload, both in the error
// envelope of a non-streaming failure and in the trailer of a stream that
// failed mid-flight.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// APIError is a typed request failure with the HTTP status it maps to.
type APIError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *APIError) Error() string { return fmt.Sprintf("serve: %s: %s", e.Code, e.Message) }

// apiErrorf builds an APIError.
func apiErrorf(status int, code, format string, args ...any) *APIError {
	return &APIError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// writeAPIError renders the error envelope with its status code and, for
// backpressure rejections, the Retry-After hint.
func writeAPIError(w http.ResponseWriter, e *APIError, retryAfter int) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	}
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(struct {
		Error ErrorBody `json:"error"`
	}{ErrorBody{Code: e.Code, Message: e.Message}})
}

// countingReader counts the bytes a decoder consumed, so admission can
// account the request's cost without buffering the body twice.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// DecodeRequest reads and validates one search request. Every failure is an
// *APIError: malformed JSON, unknown fields, trailing data and oversized
// bodies map to 400/413; semantic mistakes (bad PAM codes, mismatched guide
// lengths, negative budgets, unknown priorities) map to 400 with the
// validation message. On success it returns the wire request, the compiled
// pipeline request (pattern and guides upper-cased like the input-file
// parser) and the number of body bytes consumed.
func DecodeRequest(r io.Reader, lim Limits) (*SearchRequest, *pipeline.Request, int64, *APIError) {
	cr := &countingReader{r: r}
	dec := json.NewDecoder(cr)
	dec.DisallowUnknownFields()
	var sreq SearchRequest
	if err := dec.Decode(&sreq); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, nil, cr.n, apiErrorf(http.StatusRequestEntityTooLarge, "too-large",
				"request body exceeds %d bytes", mbe.Limit)
		}
		return nil, nil, cr.n, apiErrorf(http.StatusBadRequest, "bad-json", "decoding request: %v", err)
	}
	// A second document (or trailing garbage) after the request object is a
	// malformed request, not ignorable slack.
	if err := ensureEOF(dec); err != nil {
		return nil, nil, cr.n, err
	}
	if _, err := ParsePriority(sreq.Priority); err != nil {
		return nil, nil, cr.n, err
	}
	if sreq.TimeoutMs < 0 {
		return nil, nil, cr.n, apiErrorf(http.StatusBadRequest, "bad-timeout", "timeout_ms %d is negative", sreq.TimeoutMs)
	}
	if lim.MaxGuides > 0 && len(sreq.Guides) > lim.MaxGuides {
		return nil, nil, cr.n, apiErrorf(http.StatusBadRequest, "too-many-guides",
			"%d guides exceed the per-request limit of %d", len(sreq.Guides), lim.MaxGuides)
	}
	preq := &pipeline.Request{
		Pattern:    strings.ToUpper(sreq.Pattern),
		ChunkBytes: sreq.ChunkBytes,
	}
	for _, g := range sreq.Guides {
		preq.Queries = append(preq.Queries, pipeline.Query{
			Guide:         strings.ToUpper(g.Guide),
			MaxMismatches: g.MaxMismatches,
		})
	}
	if err := preq.Validate(); err != nil {
		return nil, nil, cr.n, apiErrorf(http.StatusBadRequest, "bad-request", "%v", err)
	}
	return &sreq, preq, cr.n, nil
}

// ensureEOF rejects trailing content after the decoded document.
func ensureEOF(dec *json.Decoder) *APIError {
	if _, err := dec.Token(); err != io.EOF {
		return apiErrorf(http.StatusBadRequest, "bad-json", "trailing data after request object")
	}
	return nil
}

// ParsePriority maps the wire priority to its admission level.
func ParsePriority(s string) (int, *APIError) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	default:
		return 0, apiErrorf(http.StatusBadRequest, "bad-priority",
			"unknown priority %q (want high, normal or low)", s)
	}
}

// errorBodyOf maps a pass error to the trailer/envelope error body and the
// HTTP status it would take when nothing has been streamed yet. The mapping
// is the failure-mode table of DESIGN.md §14: client deadlines are 504,
// cancellations have no body (the client is gone), everything else is an
// internal error — fault-classed errors keep their site in the code so a
// caller can tell a device loss from a corrupt artifact.
func errorBodyOf(err error) (int, *ErrorBody) {
	switch {
	case err == nil:
		return http.StatusOK, nil
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, &ErrorBody{Code: "deadline", Message: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return 0, nil
	}
	var fe *fault.Error
	if errors.As(err, &fe) {
		return http.StatusInternalServerError, &ErrorBody{Code: "fault:" + string(fe.Site), Message: err.Error()}
	}
	return http.StatusInternalServerError, &ErrorBody{Code: "internal", Message: err.Error()}
}
