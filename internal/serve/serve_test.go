package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/search"
)

// stubEngine is a controllable engine for admission and lifecycle tests: it
// can block until released, signal stream starts, emit canned hits or panic.
type stubEngine struct {
	block    chan struct{} // non-nil: Stream waits for close or ctx
	started  chan struct{} // non-nil: receives one token per Stream call
	hits     []pipeline.Hit
	panicMsg string
}

func (e *stubEngine) Name() string { return "stub" }

func (e *stubEngine) Run(asm *genome.Assembly, req *search.Request) ([]search.Hit, error) {
	return search.Collect(context.Background(), e, asm, req)
}

func (e *stubEngine) Stream(ctx context.Context, asm *genome.Assembly, req *search.Request, emit func(search.Hit) error) error {
	if e.panicMsg != "" {
		panic(e.panicMsg)
	}
	if e.started != nil {
		select {
		case e.started <- struct{}{}:
		default:
		}
	}
	if e.block != nil {
		select {
		case <-e.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, h := range e.hits {
		if err := emit(h); err != nil {
			return err
		}
	}
	return nil
}

// newTestServer builds a ready server over the planted test assembly and an
// httptest front end.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Engine:  &search.CPU{},
		Genomes: map[string]*genome.Assembly{"test": testAssembly()},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postSearch sends one search request and returns the response.
func postSearch(t *testing.T, ts *httptest.Server, body string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/search", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// readStream splits an NDJSON response into hit lines and the trailer.
func readStream(t *testing.T, resp *http.Response) ([]string, Trailer) {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	var tr Trailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil {
		t.Fatalf("last line is not a trailer: %v\nbody: %s", err, data)
	}
	return lines[:len(lines)-1], tr
}

// errorCode decodes the error envelope of a non-streaming failure.
func errorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	var env struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("response is not an error envelope: %v", err)
	}
	return env.Error.Code
}

const searchBody = `{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}]}`

func TestSearchStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postSearch(t, ts, searchBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	hits, tr := readStream(t, resp)
	if !tr.Done || tr.Degraded {
		t.Errorf("trailer = %+v, want done and not degraded", tr)
	}
	if tr.Hits != int64(len(hits)) || len(hits) == 0 {
		t.Fatalf("trailer counts %d hits, body has %d", tr.Hits, len(hits))
	}
	var hit struct {
		Guide string `json:"guide"`
		Seq   string `json:"seq"`
		Pos   int    `json:"pos"`
		Dir   string `json:"dir"`
	}
	if err := json.Unmarshal([]byte(hits[0]), &hit); err != nil {
		t.Fatal(err)
	}
	if hit.Guide != "GATTACAGTANNN" || hit.Seq != "chr1" || hit.Pos != 4 || hit.Dir != "+" {
		t.Errorf("hit = %+v, want the planted chr1:4 site", hit)
	}
}

func TestSearchRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Limits.MaxGuides = 2; c.Limits.MaxBodyBytes = 512 })
	tests := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed json", `{"pattern":`, 400, "bad-json"},
		{"unknown field", `{"pattern":"NNNNNNNNNNNGG","guides":[],"fast":true}`, 400, "bad-json"},
		{"trailing data", searchBody + `{"again":1}`, 400, "bad-json"},
		{"no guides", `{"pattern":"NNNNNNNNNNNGG","guides":[]}`, 400, "bad-request"},
		{"bad pam code", `{"pattern":"NNNNNNNNNNNG!","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}]}`, 400, "bad-request"},
		{"guide length mismatch", `{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GAT","max_mismatches":1}]}`, 400, "bad-request"},
		{"negative mismatches", `{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":-1}]}`, 400, "bad-request"},
		{"bad priority", `{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}],"priority":"urgent"}`, 400, "bad-priority"},
		{"negative timeout", `{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}],"timeout_ms":-5}`, 400, "bad-timeout"},
		{"too many guides", `{"pattern":"NNNNNNNNNNNGG","guides":[` +
			strings.Repeat(`{"guide":"GATTACAGTANNN","max_mismatches":1},`, 2) +
			`{"guide":"GATTACAGTANNN","max_mismatches":1}]}`, 400, "too-many-guides"},
		{"oversized body", `{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}],"priority":"` +
			strings.Repeat("x", 600) + `"}`, 413, "too-large"},
		{"unknown genome", `{"genome":"hg38",` + searchBody[1:], 404, "unknown-genome"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp := postSearch(t, ts, tt.body, nil)
			if resp.StatusCode != tt.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tt.status)
			}
			if code := errorCode(t, resp); code != tt.code {
				t.Errorf("code = %q, want %q", code, tt.code)
			}
		})
	}
}

func TestSearchMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search = %d, want 405", resp.StatusCode)
	}
}

func TestGenomeRequiredWithSeveralResident(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Genomes["other"] = testAssembly()
	})
	resp := postSearch(t, ts, searchBody, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "genome-required" {
		t.Errorf("code = %q, want genome-required", code)
	}
	resp = postSearch(t, ts, `{"genome":"other",`+searchBody[1:], nil)
	if _, tr := readStream(t, resp); !tr.Done {
		t.Errorf("named-genome request failed: %+v", tr)
	}
}

func TestQuotaRejectsWithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Limits.QuotaRate = 0.5
		c.Limits.QuotaBurst = 1
	})
	hdr := map[string]string{"X-API-Key": "alice"}
	if resp := postSearch(t, ts, searchBody, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("burst request: %d", resp.StatusCode)
	}
	resp := postSearch(t, ts, searchBody, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if code := errorCode(t, resp); code != "rejected:quota" {
		t.Errorf("code = %q, want rejected:quota", code)
	}
	// A different tenant is unaffected.
	if resp := postSearch(t, ts, searchBody, map[string]string{"X-API-Key": "bob"}); resp.StatusCode != http.StatusOK {
		t.Errorf("other tenant rejected: %d", resp.StatusCode)
	}
}

// TestRetryAfterIsCeiling pins the header arithmetic: the advertised
// Retry-After is the ceiling of the rejection's hint in whole seconds. The
// old rendering truncated and added one, so the default 1s hint went out as
// "2" — every shed client backed off twice as long as the daemon asked.
func TestRetryAfterIsCeiling(t *testing.T) {
	for _, tt := range []struct {
		d    time.Duration
		want int
	}{
		{time.Second, 1}, // the default hint: the regression case
		{time.Millisecond, 1},
		{0, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2*time.Second + time.Nanosecond, 3},
	} {
		if got := retryAfterSeconds(tt.d); got != tt.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

// TestRejectionAdvertisesExactRetryAfter drives the regression end to end:
// a shed request under the default 1s hint must see Retry-After: 1 on the
// wire, not 2.
func TestRejectionAdvertisesExactRetryAfter(t *testing.T) {
	eng := &stubEngine{block: make(chan struct{}), started: make(chan struct{}, 8)}
	s, ts := newTestServer(t, func(c *Config) {
		c.Engine = eng
		c.Limits.MaxInflight = 1
		c.Limits.MaxQueue = 1
		c.Limits.RetryAfter = time.Second
	})

	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ { // fill the running slot and the queue
		go func() {
			resp := postSearch(t, ts, searchBody, nil)
			io.Copy(io.Discard, resp.Body)
			done <- struct{}{}
		}()
	}
	<-eng.started // the first request holds the engine
	waitQueued(t, s.adm, 1)

	resp := postSearch(t, ts, searchBody, nil) // over capacity: shed
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q (a 1s hint must not round up to 2)", got, "1")
	}
	io.Copy(io.Discard, resp.Body)
	close(eng.block)
	<-done
	<-done
}

// TestBurstSheds is the overload acceptance check: 3x over capacity, the
// excess sheds with 429 + Retry-After while everything admitted completes;
// the queue never grows past its bound.
func TestBurstSheds(t *testing.T) {
	eng := &stubEngine{
		block: make(chan struct{}),
		hits:  []pipeline.Hit{{QueryIndex: 0, SeqName: "chr1", Pos: 4, Dir: '+', Site: "GATTACAGTACGG"}},
	}
	s, ts := newTestServer(t, func(c *Config) {
		c.Engine = eng
		c.Metrics = obs.NewMetrics()
		c.Limits.MaxInflight = 1
		c.Limits.MaxQueue = 2
	})
	const capacity = 3 // 1 running + 2 queued
	const burst = 3 * capacity

	// NoCoalesce keeps each request on its own pass so the burst really
	// contends for slots.
	body := `{"no_coalesce":true,` + searchBody[1:]
	type outcome struct {
		status int
		retry  string
		tr     Trailer
	}
	results := make(chan outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", strings.NewReader(body))
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Errorf("request: %v", err)
				return
			}
			defer resp.Body.Close()
			o := outcome{status: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
			if resp.StatusCode == http.StatusOK {
				_, o.tr = readStream(t, resp)
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			results <- o
		}()
	}
	// Give the burst time to contend, then let the admitted requests run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := s.cfg.Metrics.Counter(obs.L(obs.MetricServeShed, "reason", "queue-full")); v >= burst-capacity {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("burst never shed")
		}
		time.Sleep(time.Millisecond)
	}
	close(eng.block)
	wg.Wait()
	close(results)

	ok, shed := 0, 0
	for o := range results {
		switch o.status {
		case http.StatusOK:
			ok++
			if !o.tr.Done {
				t.Errorf("admitted request did not complete: %+v", o.tr)
			}
		case http.StatusTooManyRequests:
			shed++
			if o.retry == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", o.status)
		}
	}
	if ok != capacity || shed != burst-capacity {
		t.Errorf("burst: %d ok, %d shed; want %d ok, %d shed", ok, shed, capacity, burst-capacity)
	}
	if depth := s.cfg.Metrics.GaugeValue(obs.MetricServeQueueDepth); depth != 0 {
		t.Errorf("queue depth %v after drain, want 0", depth)
	}
}

// TestDegradedDeviceLossCompletes is the resilience acceptance check: a
// seeded device loss mid-request fails over to the CPU; the response
// completes with every hit and a degraded trailer — never a dropped
// connection or a 5xx.
func TestDegradedDeviceLossCompletes(t *testing.T) {
	dev := gpu.New(device.MI100())
	dev.SetFaults(fault.NewInjector(fault.Plan{Seed: 42, Rate: 1, Site: fault.SiteCLDeviceLost}))
	res := &pipeline.Resilience{Seed: 42}
	eng := &search.SimCL{Device: dev, Resilience: res}
	s, ts := newTestServer(t, func(c *Config) {
		c.Engine = eng
		c.SerializePasses = true
		c.Metrics = obs.NewMetrics()
	})
	res.OnReport = s.ReportSink()

	resp := postSearch(t, ts, searchBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degradation must not fail the request)", resp.StatusCode)
	}
	hits, tr := readStream(t, resp)
	if len(hits) == 0 || !strings.Contains(hits[0], `"pos":4`) {
		t.Errorf("failover lost the planted hit: %v", hits)
	}
	if !tr.Done || !tr.Degraded || tr.Failovers == 0 {
		t.Errorf("trailer = %+v, want done, degraded, failovers > 0", tr)
	}
	if got := s.cfg.Metrics.Counter(obs.L(obs.MetricServeRequests, "status", "degraded")); got != 1 {
		t.Errorf("degraded request count = %d, want 1", got)
	}
}

// TestCoalescedRequestsOverHTTP drives coalescing through the full HTTP
// path: concurrent identical-key requests share a pass and each response is
// byte-identical to its uncoalesced twin.
func TestCoalescedRequestsOverHTTP(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, func(c *Config) {
		c.Metrics = m
		c.CoalesceWindow = 100 * time.Millisecond
	})
	bodies := []string{
		`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}]}`,
		`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"ACGTACGTACNNN","max_mismatches":1}]}`,
	}
	solo := make([]string, len(bodies))
	for i, body := range bodies {
		resp := postSearch(t, ts, `{"no_coalesce":true,`+body[1:], nil)
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = string(data)
	}
	if m.Counter(obs.MetricServeCoalesced) != 0 {
		t.Fatal("no_coalesce requests still coalesced")
	}

	got := make([]string, len(bodies))
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postSearch(t, ts, body, nil)
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got[i] = string(data)
		}()
	}
	wg.Wait()
	for i := range bodies {
		if got[i] != solo[i] {
			t.Errorf("request %d: coalesced response differs from uncoalesced:\n%q\nvs\n%q", i, got[i], solo[i])
		}
	}
	if m.Counter(obs.MetricServeCoalesced) != int64(len(bodies)) {
		t.Errorf("coalesced counter = %d, want %d (requests did not share a pass)",
			m.Counter(obs.MetricServeCoalesced), len(bodies))
	}
}

// TestPanicIsolation: a panicking pass costs that request a 500 and nothing
// else — the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	eng := &stubEngine{panicMsg: "kernel walked off the genome"}
	s, ts := newTestServer(t, func(c *Config) {
		c.Engine = eng
		c.Metrics = obs.NewMetrics()
	})
	resp := postSearch(t, ts, `{"no_coalesce":true,`+searchBody[1:], nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "panic" {
		t.Errorf("code = %q, want panic", code)
	}
	if got := s.cfg.Metrics.Counter(obs.MetricServePanics); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	// The server survives: health stays green and a healthy engine serves.
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v / %v", resp, err)
	}
	eng.panicMsg = ""
	if resp := postSearch(t, ts, `{"no_coalesce":true,`+searchBody[1:], nil); resp.StatusCode != http.StatusOK {
		t.Errorf("request after panic = %d, want 200", resp.StatusCode)
	}
}

// TestPanicIsolationCoalesced: the merged pass runs in the coalescer's own
// goroutine, outside any handler's recover — a panic there must still turn
// into a typed 500 for every batch member (not a daemon crash or a hung
// batch), and the daemon keeps serving afterwards.
func TestPanicIsolationCoalesced(t *testing.T) {
	eng := &stubEngine{panicMsg: "kernel walked off the genome"}
	s, ts := newTestServer(t, func(c *Config) {
		c.Engine = eng
		c.Metrics = obs.NewMetrics()
		c.CoalesceWindow = 50 * time.Millisecond
	})

	const members = 2
	statuses := make([]int, members)
	codes := make([]string, members)
	var wg sync.WaitGroup
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", strings.NewReader(searchBody))
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Errorf("member %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			var env struct {
				Error ErrorBody `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Errorf("member %d: response is not an error envelope: %v", i, err)
				return
			}
			codes[i] = env.Error.Code
		}()
	}
	wg.Wait()
	for i := 0; i < members; i++ {
		if statuses[i] != http.StatusInternalServerError || codes[i] != "panic" {
			t.Errorf("member %d: status %d code %q, want 500 panic", i, statuses[i], codes[i])
		}
	}
	if got := s.cfg.Metrics.Counter(obs.MetricServePanics); got == 0 {
		t.Error("panic counter = 0, want > 0")
	}
	// The daemon survives: a healthy engine serves the next coalesced pass.
	eng.panicMsg = ""
	if resp := postSearch(t, ts, searchBody, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("request after coalesced panic = %d, want 200", resp.StatusCode)
	}
}

// TestAdmitCancellationCountsCanceled: a client that gives up while queued is
// a cancellation, not a rejection — the shed/reject metrics must not inflate.
func TestAdmitCancellationCountsCanceled(t *testing.T) {
	eng := &stubEngine{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := newTestServer(t, func(c *Config) {
		c.Engine = eng
		c.Metrics = obs.NewMetrics()
		c.Limits.MaxInflight = 1
	})
	body := `{"no_coalesce":true,` + searchBody[1:]

	// Occupy the only slot.
	first := make(chan struct{})
	go func() {
		defer close(first)
		resp, err := ts.Client().Post(ts.URL+"/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Errorf("slot holder: %v", err)
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()
	<-eng.started

	// Queue a second request and cancel its client while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan struct{})
	go func() {
		defer close(queued)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search", strings.NewReader(body))
		if _, err := ts.Client().Do(req); err == nil {
			t.Error("cancelled request returned without error")
		}
	}()
	waitQueued(t, s.adm, 1)
	cancel()
	<-queued

	deadline := time.Now().Add(5 * time.Second)
	for s.cfg.Metrics.Counter(obs.L(obs.MetricServeRequests, "status", statusCanceled)) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("canceled request never counted as canceled")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.cfg.Metrics.Counter(obs.L(obs.MetricServeRequests, "status", statusRejected)); got != 0 {
		t.Errorf("rejected count = %d, want 0 (cancellation is not a rejection)", got)
	}

	close(eng.block)
	<-first
}

func TestReadyzGatesTraffic(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.SetReady(false)
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while not ready = %d, want 503", resp.StatusCode)
	}
	if resp := postSearch(t, ts, searchBody, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("search while not ready = %d, want 503", resp.StatusCode)
	}
	s.SetReady(true)
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz while ready = %d, want 200", resp.StatusCode)
	}
}

// TestGracefulDrain: drain lets the in-flight stream finish and flush its
// trailer while new arrivals bounce with 503s.
func TestGracefulDrain(t *testing.T) {
	eng := &stubEngine{
		block:   make(chan struct{}),
		started: make(chan struct{}, 1),
		hits:    []pipeline.Hit{{QueryIndex: 0, SeqName: "chr1", Pos: 4, Dir: '+', Site: "GATTACAGTACGG"}},
	}
	s, ts := newTestServer(t, func(c *Config) { c.Engine = eng })

	type result struct {
		status int
		tr     Trailer
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/search", "application/json",
			strings.NewReader(`{"no_coalesce":true,`+searchBody[1:]))
		if err != nil {
			t.Errorf("in-flight request: %v", err)
			inflight <- result{}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var tr Trailer
		lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
		json.Unmarshal([]byte(lines[len(lines)-1]), &tr)
		inflight <- result{status: resp.StatusCode, tr: tr}
	}()
	<-eng.started // the stream is running and blocked

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain must refuse new work immediately...
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postSearch(t, ts, searchBody, nil)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server still admits searches")
		}
		time.Sleep(time.Millisecond)
	}
	// ...while the in-flight stream completes untouched.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) before the in-flight stream finished", err)
	default:
	}
	close(eng.block)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-inflight
	if r.status != http.StatusOK || !r.tr.Done || r.tr.Hits != 1 {
		t.Errorf("in-flight request during drain: status %d, trailer %+v; want a completed stream", r.status, r.tr)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Metrics = obs.NewMetrics() })
	postSearch(t, ts, searchBody, nil)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`casoffinderd_requests_total{status="ok"} 1`,
		"casoffinderd_batches_total",
		"# TYPE casoffinderd_requests_total counter",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q:\n%s", want, data)
		}
	}
}

// TestRequestTimeoutTrailer: a per-request deadline expiring mid-stream
// still terminates the stream with a trailer naming the deadline.
func TestRequestTimeoutTrailer(t *testing.T) {
	eng := &stubEngine{block: make(chan struct{})} // blocks until ctx expires
	_, ts := newTestServer(t, func(c *Config) { c.Engine = eng })
	resp := postSearch(t, ts, `{"timeout_ms":50,"no_coalesce":true,`+searchBody[1:], nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (deadline before any hit streamed)", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != "deadline" {
		t.Errorf("code = %q, want deadline", code)
	}
}

// TestNewConfigValidation covers the constructor's refusals.
func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a config without an engine")
	}
	if _, err := New(Config{Engine: &search.CPU{}}); err == nil {
		t.Error("New accepted a config without genomes")
	}
	if _, err := New(Config{
		Engine:        &search.CPU{},
		Genomes:       map[string]*genome.Assembly{"a": testAssembly()},
		DefaultGenome: "missing",
	}); err == nil {
		t.Error("New accepted a default genome that is not resident")
	}
}

// TestWarmupSetsNothingButRuns: warmup must run a pass end to end on the
// real engine without touching the resident genomes.
func TestWarmupRuns(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if err := s.Warmup(context.Background()); err != nil {
		t.Fatalf("warmup: %v", err)
	}
}

func ExampleServer() {
	asm := testAssembly()
	s, _ := New(Config{
		Engine:  &search.CPU{},
		Genomes: map[string]*genome.Assembly{"toy": asm},
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/search", "application/json",
		strings.NewReader(`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":0}]}`))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	fmt.Println(resp.Status)
	// Output: 200 OK
}
