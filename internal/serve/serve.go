// Package serve is casoffinderd: the off-target search service. It keeps
// genome artifacts and engines resident across requests — the two wins the
// one-shot CLI throws away on every run (the artifact subsystem's ~37x
// time-to-first-hit, the batch comparer's ~3.2x multi-pattern pass) — and
// wraps them in production-grade request robustness:
//
//   - admission control: a bounded queue with per-tenant token-bucket
//     quotas, an admitted-bytes budget and deadline-aware rejection; under
//     overload the newest lowest-priority work sheds with 429 + Retry-After
//     instead of queueing unboundedly (admission.go);
//   - cross-request guide coalescing: concurrent requests sharing (genome,
//     pattern, chunk budget) merge into one genome pass and demultiplex
//     back to byte-identical per-request streams (coalesce.go);
//   - per-request lifecycle robustness: context deadlines threaded into
//     Engine.Stream, panic isolation per request, graceful degradation —
//     a pass that retried, failed over or quarantined chunks completes
//     with a degraded trailer rather than a dropped connection — and a
//     drain path that finishes in-flight streams before exit;
//   - SLO observability: /metrics (Prometheus text), /healthz, /readyz
//     (ready only once genomes are resident and engines warmed), and a
//     span per request phase on the shared obs.Tracer.
//
// Responses stream as NDJSON: one hit object per line (the stable
// pipeline.Hit field set plus the resolved guide) terminated by exactly one
// Trailer object.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"casoffinder/internal/genome"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/search"
)

// Config assembles a Server.
type Config struct {
	// Engine executes genome passes. The CPU engine streams concurrently;
	// the simulator engines share mutable device state, so set
	// SerializePasses with them.
	Engine search.Engine
	// SerializePasses runs at most one genome pass at a time. Required for
	// the simulator engines and for resilience-report capture.
	SerializePasses bool
	// Genomes are the resident assemblies, by request name.
	Genomes map[string]*genome.Assembly
	// DefaultGenome resolves requests that omit the genome field; empty
	// with a single genome means that genome.
	DefaultGenome string
	// Limits bounds admission; zero fields take the package defaults.
	Limits Limits
	// CoalesceWindow is the guide-coalescing batching window; 0 means
	// DefaultCoalesceWindow, negative disables coalescing.
	CoalesceWindow time.Duration
	// CoalesceMaxGuides seals a batch early (0 = default).
	CoalesceMaxGuides int
	// Metrics and Trace receive the service's counters and request spans;
	// nil disables each at zero cost.
	Metrics *obs.Metrics
	Trace   *obs.Tracer

	// now overrides the clock in tests.
	now func() time.Time
}

// Server is the HTTP search service.
type Server struct {
	cfg     Config
	lim     Limits
	adm     *admission
	coal    *coalescer
	metrics *obs.Metrics

	// engineMu serializes passes when the engine demands it and makes the
	// resilience-report slot race-free.
	engineMu sync.Mutex
	reportMu sync.Mutex
	report   *pipeline.Report

	ready    atomic.Bool
	draining atomic.Bool
	// drainMu makes the accepting check and the inflight.Add atomic with
	// respect to Drain, so no request slips in after Drain flipped draining
	// and started waiting on a zero counter.
	drainMu  sync.Mutex
	inflight sync.WaitGroup
	reqSeq   atomic.Int64
}

// New builds a Server. The genomes must already be loaded (for artifacts,
// mmapped); readiness still waits for Warmup.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("serve: config needs an engine")
	}
	if len(cfg.Genomes) == 0 {
		return nil, errors.New("serve: config needs at least one genome")
	}
	if cfg.DefaultGenome == "" && len(cfg.Genomes) == 1 {
		for name := range cfg.Genomes {
			cfg.DefaultGenome = name
		}
	}
	if cfg.DefaultGenome != "" && cfg.Genomes[cfg.DefaultGenome] == nil {
		return nil, fmt.Errorf("serve: default genome %q is not loaded", cfg.DefaultGenome)
	}
	if cfg.CoalesceWindow == 0 {
		cfg.CoalesceWindow = DefaultCoalesceWindow
	}
	s := &Server{cfg: cfg, lim: cfg.Limits.withDefaults(), metrics: cfg.Metrics}
	s.adm = newAdmission(s.lim, cfg.now, cfg.Metrics)
	s.coal = newCoalescer(cfg.CoalesceWindow, cfg.CoalesceMaxGuides, s.runPass, cfg.Metrics)
	return s, nil
}

// ReportSink returns the callback to install as the engine's
// Resilience.OnReport, so degraded passes surface in response trailers.
func (s *Server) ReportSink() func(*pipeline.Report) {
	return func(rep *pipeline.Report) {
		s.reportMu.Lock()
		s.report = rep
		s.reportMu.Unlock()
	}
}

// takeReport claims the report of the pass that just ran.
func (s *Server) takeReport() *pipeline.Report {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	rep := s.report
	s.report = nil
	return rep
}

// runPass executes one genome pass — the coalescer's passFunc.
func (s *Server) runPass(ctx context.Context, genomeName string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error) {
	asm := s.cfg.Genomes[genomeName]
	if asm == nil {
		return nil, apiErrorf(http.StatusNotFound, "unknown-genome", "no resident genome named %q", genomeName)
	}
	if s.cfg.SerializePasses {
		s.engineMu.Lock()
		defer s.engineMu.Unlock()
	}
	s.takeReport() // clear any stale slot
	err := s.cfg.Engine.Stream(ctx, asm, req, emit)
	rep := s.takeReport()
	if rep == nil {
		var pe *pipeline.PartialError
		if errors.As(err, &pe) {
			rep = pe.Report
		}
	}
	return rep, err
}

// Warmup resolves everything first-request latency would otherwise pay:
// the engine's kernel tuning (and for the simulator engines, program
// builds) via one tiny synthetic pass. The resident genomes were loaded —
// and artifact payloads mapped — at construction. Call SetReady after.
func (s *Server) Warmup(ctx context.Context) error {
	seq := &genome.Sequence{Name: "warmup", Data: make([]byte, 64)}
	for i := range seq.Data {
		seq.Data[i] = "ACGT"[i%4]
	}
	asm := &genome.Assembly{Name: "warmup", Sequences: []*genome.Sequence{seq}}
	req := &pipeline.Request{
		Pattern: "NNNNNNNNNNNGG",
		Queries: []pipeline.Query{{Guide: "NNNNNNNNNNNNN", MaxMismatches: 0}},
	}
	if s.cfg.SerializePasses {
		s.engineMu.Lock()
		defer s.engineMu.Unlock()
	}
	return s.cfg.Engine.Stream(ctx, asm, req, func(pipeline.Hit) error { return nil })
}

// SetReady flips /readyz; the daemon calls it after Warmup succeeds.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Genomes lists the resident genome names, sorted.
func (s *Server) Genomes() []string {
	names := make([]string, 0, len(s.cfg.Genomes))
	for name := range s.cfg.Genomes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.WritePrometheus(w)
	})
	return mux
}

// Drain stops admission and waits for in-flight streams: queued requests
// shed with 503 + Retry-After, running passes finish and flush their
// trailers. Returns ctx.Err() if the drain deadline expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.ready.Store(false) // readiness fails first so balancers stop routing
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	s.adm.Drain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// status labels for the terminal request counter.
const (
	statusOK       = "ok"
	statusDegraded = "degraded"
	statusRejected = "rejected"
	statusError    = "error"
	statusCanceled = "canceled"
)

// finish counts a request's terminal outcome.
func (s *Server) finish(status string) {
	s.metrics.Count(obs.L(obs.MetricServeRequests, "status", status), 1)
}

// handleSearch is POST /search: decode → admit → (coalesce →) pass → demux
// → trailer. Every exit path either writes a typed error envelope (before
// streaming) or a trailer object (after), and a per-request panic is
// isolated to a 500 for that request alone.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	reqID := int(s.reqSeq.Add(1))
	started := false
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.Count(obs.MetricServePanics, 1)
			s.finish(statusError)
			s.cfg.Trace.Instant("serve", "panic", reqID,
				obs.Attr{Key: "panic", Value: fmt.Sprint(rec)})
			if !started {
				writeAPIError(w, apiErrorf(http.StatusInternalServerError, "panic",
					"internal error handling request"), 0)
			}
		}
	}()

	if r.Method != http.MethodPost {
		writeAPIError(w, apiErrorf(http.StatusMethodNotAllowed, "method", "POST /search"), 0)
		return
	}
	s.drainMu.Lock()
	if !s.ready.Load() || s.draining.Load() {
		s.drainMu.Unlock()
		s.finish(statusRejected)
		code := "not-ready"
		if s.draining.Load() {
			code = "draining"
		}
		writeAPIError(w, apiErrorf(http.StatusServiceUnavailable, code, "server is not accepting searches"), 1)
		return
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	defer s.inflight.Done()

	body := http.MaxBytesReader(w, r.Body, s.lim.MaxBodyBytes)
	sreq, preq, cost, apiErr := DecodeRequest(body, s.lim)
	if apiErr != nil {
		s.finish(statusRejected)
		writeAPIError(w, apiErr, 0)
		return
	}
	genomeName := sreq.Genome
	if genomeName == "" {
		genomeName = s.cfg.DefaultGenome
	}
	if genomeName == "" {
		s.finish(statusRejected)
		writeAPIError(w, apiErrorf(http.StatusBadRequest, "genome-required",
			"several genomes are resident (%v); name one", s.Genomes()), 0)
		return
	}
	if s.cfg.Genomes[genomeName] == nil {
		s.finish(statusRejected)
		writeAPIError(w, apiErrorf(http.StatusNotFound, "unknown-genome",
			"no resident genome named %q (have %v)", genomeName, s.Genomes()), 0)
		return
	}
	tenant := r.Header.Get("X-API-Key")
	if tenant == "" {
		tenant = "anonymous"
	}
	priority, _ := ParsePriority(sreq.Priority) // validated by DecodeRequest

	ctx := r.Context()
	var deadline time.Time
	if sreq.TimeoutMs > 0 {
		d := time.Duration(sreq.TimeoutMs) * time.Millisecond
		deadline = time.Now().Add(d)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	if cost <= 0 {
		cost = 1
	}
	// Charge admission for what the pass will actually pin, not just what
	// came over the wire: the body bytes plus the hit-arena provisioning
	// its chunks claim on the device. A 200-byte request carrying 100
	// guides is device-expensive; body bytes alone would let a burst of
	// them sail under MaxInflightBytes.
	cost += search.ArenaCostEstimate(preq.ChunkBytes, len(preq.Queries))

	// Admission: quota, byte budget, bounded queue with shedding.
	tk := newTicket(tenant, priority, cost, deadline)
	t0 := time.Now()
	if err := s.adm.Admit(ctx, tk); err != nil {
		var rej *RejectError
		if errors.As(err, &rej) {
			s.finish(statusRejected)
			s.cfg.Trace.Instant("serve", "reject", reqID,
				obs.Attr{Key: "reason", Value: rej.Reason})
			writeAPIError(w, apiErrorf(rej.Status, "rejected:"+rej.Reason,
				"request rejected (%s); retry after %v", rej.Reason, rej.RetryAfter),
				retryAfterSeconds(rej.RetryAfter))
			return
		}
		// The client's context ended while queued and admission let the
		// cancellation through: nothing useful left to write.
		s.finish(statusCanceled)
		return
	}
	defer s.adm.Release(tk)
	s.cfg.Trace.Complete("serve", "admit", reqID, t0, time.Since(t0),
		obs.Attr{Key: "tenant", Value: tenant})

	// Stream. From the first hit on, failures become trailers, never
	// status rewrites or dropped connections.
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	var hits int64
	emit := func(h pipeline.Hit) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		if err := search.WriteHitJSON(bw, preq, h); err != nil {
			return err
		}
		hits++
		if err := bw.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	tRun := time.Now()
	var rep *pipeline.Report
	var passErr, emitErr error
	if sreq.NoCoalesce {
		rep, passErr = s.runPass(ctx, genomeName, preq, emit)
	} else {
		rep, passErr, emitErr = s.coal.Join(ctx, genomeName, preq, emit)
	}
	s.metrics.Observe(obs.MetricServeStreamSeconds, time.Since(tRun).Seconds())
	s.metrics.Count(obs.MetricServeHits, hits)
	s.cfg.Trace.Complete("serve", "stream", reqID, tRun, time.Since(tRun),
		obs.Attr{Key: "hits", Value: strconv.FormatInt(hits, 10)})

	if emitErr != nil && !errors.Is(emitErr, context.DeadlineExceeded) {
		// Our own write to this client failed: the connection is gone and
		// there is nowhere to put a trailer.
		s.finish(statusCanceled)
		return
	}
	s.writeOutcome(w, bw, started, hits, rep, firstErr(emitErr, passErr))
}

// retryAfterSeconds renders a rejection's hint as the whole-seconds
// Retry-After header value: the ceiling of the duration, floored at one
// second (RFC 9110 allows zero, but a zero hint invites an immediate retry
// of a request we just shed). Truncate-plus-one is not a ceiling — it
// rendered the default 1s hint as "2", silently doubling every advertised
// backoff and halving the daemon's recovery throughput under burst.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// firstErr prefers the member's own terminal condition (a deadline that
// fired inside emit) over the shared pass outcome.
func firstErr(emitErr, passErr error) error {
	if emitErr != nil {
		return emitErr
	}
	return passErr
}

// writeOutcome terminates the response: a trailer when the stream started
// (or completed cleanly), a typed error envelope when nothing was written
// yet and the pass failed outright.
func (s *Server) writeOutcome(w http.ResponseWriter, bw *bufio.Writer, started bool, hits int64, rep *pipeline.Report, passErr error) {
	degraded := rep != nil && rep.Degraded()
	var pe *pipeline.PartialError
	partial := errors.As(passErr, &pe)

	if passErr == nil || partial {
		// Clean or gracefully degraded: both complete with done:true. A
		// quarantined chunk is reported, never a dropped request.
		tr := Trailer{Done: true, Hits: hits, Degraded: degraded || partial}
		if rep != nil {
			tr.Retries, tr.Failovers, tr.WatchdogKills = rep.Retries, rep.Failovers, rep.WatchdogKills
			tr.Quarantined = len(rep.Quarantined)
		}
		if tr.Degraded {
			s.metrics.Count(obs.MetricServeDegraded, 1)
			s.finish(statusDegraded)
		} else {
			s.finish(statusOK)
		}
		s.writeTrailer(w, bw, started, http.StatusOK, tr)
		return
	}

	status, body := errorBodyOf(passErr)
	if body == nil { // cancellation: client is gone
		s.finish(statusCanceled)
		return
	}
	s.finish(statusError)
	var ae *APIError
	if errors.As(passErr, &ae) {
		status, body = ae.Status, &ErrorBody{Code: ae.Code, Message: ae.Message}
	}
	s.writeTrailer(w, bw, started, status, Trailer{Done: false, Hits: hits, Degraded: degraded, Error: body})
}

// writeTrailer emits the final NDJSON object. When nothing streamed yet the
// status code is still ours to choose; afterwards the trailer itself is the
// only channel, so it rides on the already-open 200 stream.
func (s *Server) writeTrailer(w http.ResponseWriter, bw *bufio.Writer, started bool, status int, tr Trailer) {
	if !started {
		if tr.Error != nil && status != http.StatusOK {
			writeAPIError(w, &APIError{Status: status, Code: tr.Error.Code, Message: tr.Error.Message}, 0)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		return
	}
	bw.Write(data)
	bw.WriteByte('\n')
	bw.Flush()
}
