package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for the admission tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// wantReject asserts an admission error is a rejection with the reason.
func wantReject(t *testing.T, err error, status int, reason string) *RejectError {
	t.Helper()
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want a *RejectError(%s)", err, reason)
	}
	if rej.Status != status || rej.Reason != reason {
		t.Fatalf("rejected with (%d, %s), want (%d, %s)", rej.Status, rej.Reason, status, reason)
	}
	return rej
}

// queueLen reads the controller's queue depth.
func queueLen(a *admission) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// waitQueued polls until the queue holds n tickets.
func waitQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for queueLen(a) != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d tickets (at %d)", n, queueLen(a))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQuotaTokenBucket(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(Limits{QuotaRate: 1, QuotaBurst: 2}.withDefaults(), clk.now, nil)
	ctx := context.Background()

	// The burst admits two back to back; the third is over quota with an
	// exact refill hint.
	for i := 0; i < 2; i++ {
		tk := newTicket("alice", PriorityNormal, 1, time.Time{})
		if err := a.Admit(ctx, tk); err != nil {
			t.Fatalf("burst request %d rejected: %v", i, err)
		}
		defer a.Release(tk)
	}
	rej := wantReject(t, a.Admit(ctx, newTicket("alice", PriorityNormal, 1, time.Time{})),
		http.StatusTooManyRequests, "quota")
	if rej.RetryAfter <= 0 || rej.RetryAfter > time.Second {
		t.Errorf("quota Retry-After = %v, want a refill wait within 1s", rej.RetryAfter)
	}

	// Quotas are per tenant: bob is unaffected by alice's burst.
	tk := newTicket("bob", PriorityNormal, 1, time.Time{})
	if err := a.Admit(ctx, tk); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	a.Release(tk)

	// A refill interval later, alice is welcome again.
	clk.advance(time.Second)
	tk = newTicket("alice", PriorityNormal, 1, time.Time{})
	if err := a.Admit(ctx, tk); err != nil {
		t.Fatalf("post-refill request rejected: %v", err)
	}
	a.Release(tk)
}

func TestByteBudgetRejection(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(Limits{MaxInflightBytes: 100}.withDefaults(), clk.now, nil)
	ctx := context.Background()
	big := newTicket("a", PriorityNormal, 60, time.Time{})
	if err := a.Admit(ctx, big); err != nil {
		t.Fatalf("first 60-byte request rejected: %v", err)
	}
	wantReject(t, a.Admit(ctx, newTicket("b", PriorityNormal, 60, time.Time{})),
		http.StatusTooManyRequests, "bytes")
	a.Release(big)
	// With the budget free again the same request is admitted.
	tk := newTicket("b", PriorityNormal, 60, time.Time{})
	if err := a.Admit(ctx, tk); err != nil {
		t.Fatalf("post-release request rejected: %v", err)
	}
	a.Release(tk)
}

// TestShedNewestLowestPriority: with the queue full, a high-priority arrival
// evicts the newest strictly-lower-priority waiter; an equal-priority
// arrival is itself shed.
func TestShedNewestLowestPriority(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(Limits{MaxInflight: 1, MaxQueue: 2}.withDefaults(), clk.now, nil)
	ctx := context.Background()

	holder := newTicket("h", PriorityNormal, 1, time.Time{})
	if err := a.Admit(ctx, holder); err != nil {
		t.Fatal(err)
	}

	// Two low-priority waiters fill the queue; lowOldErr enqueued first.
	lowOld := newTicket("old", PriorityLow, 1, time.Time{})
	lowNew := newTicket("new", PriorityLow, 1, time.Time{})
	errs := make(map[*ticket]chan error)
	for i, tk := range []*ticket{lowOld, lowNew} {
		ch := make(chan error, 1)
		errs[tk] = ch
		go func() { ch <- a.Admit(ctx, tk) }()
		waitQueued(t, a, i+1)
		clk.advance(time.Millisecond) // distinct enqueue times
	}

	// Equal priority cannot claim a victim: the arrival sheds.
	wantReject(t, a.Admit(ctx, newTicket("eq", PriorityLow, 1, time.Time{})),
		http.StatusTooManyRequests, "queue-full")

	// A normal-priority arrival evicts the NEWEST low waiter.
	norm := newTicket("n", PriorityNormal, 1, time.Time{})
	normCh := make(chan error, 1)
	go func() { normCh <- a.Admit(ctx, norm) }()
	wantReject(t, <-errs[lowNew], http.StatusTooManyRequests, "shed")

	// Releasing the holder dispatches by priority: norm before lowOld.
	a.Release(holder)
	if err := <-normCh; err != nil {
		t.Fatalf("priority waiter rejected: %v", err)
	}
	select {
	case err := <-errs[lowOld]:
		t.Fatalf("old low-priority waiter resolved early: %v", err)
	default:
	}
	a.Release(norm)
	if err := <-errs[lowOld]; err != nil {
		t.Fatalf("surviving low-priority waiter rejected: %v", err)
	}
	a.Release(lowOld)
}

// TestDeadlineAwareRejection: a deadline that already passed refuses
// immediately, and one that expires while queued sheds the waiter rather
// than dispatching a doomed request.
func TestDeadlineAwareRejection(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(Limits{MaxInflight: 1}.withDefaults(), clk.now, nil)
	ctx := context.Background()

	expired := newTicket("t", PriorityNormal, 1, clk.now().Add(-time.Second))
	wantReject(t, a.Admit(ctx, expired), http.StatusTooManyRequests, "deadline")

	holder := newTicket("h", PriorityNormal, 1, time.Time{})
	if err := a.Admit(ctx, holder); err != nil {
		t.Fatal(err)
	}
	defer a.Release(holder)
	// The queued ticket's deadline timer runs on the real clock; give it a
	// short real deadline.
	queued := newTicket("q", PriorityNormal, 1, clk.now().Add(30*time.Millisecond))
	wantReject(t, a.Admit(ctx, queued), http.StatusTooManyRequests, "deadline")
	if queueLen(a) != 0 {
		t.Errorf("expired ticket still queued")
	}
}

// TestAdmitContextCancellation: a caller that gives up while queued is
// removed from the queue and gets its context error back.
func TestAdmitContextCancellation(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(Limits{MaxInflight: 1}.withDefaults(), clk.now, nil)
	holder := newTicket("h", PriorityNormal, 1, time.Time{})
	if err := a.Admit(context.Background(), holder); err != nil {
		t.Fatal(err)
	}
	defer a.Release(holder)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.Admit(ctx, newTicket("q", PriorityNormal, 1, time.Time{})) }()
	waitQueued(t, a, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if queueLen(a) != 0 {
		t.Errorf("cancelled ticket still queued")
	}
}

// enqueue plants a ticket directly in the controller's queue, bypassing
// Admit's blocking select, so tests can race withdraw against eviction and
// dispatch deterministically.
func enqueue(a *admission, tk *ticket) {
	a.mu.Lock()
	tk.queued = true
	tk.enqueued = a.now()
	a.queue = append(a.queue, tk)
	a.qBytes += tk.cost
	a.mu.Unlock()
}

// TestWithdrawDistinguishesShedFromGrant: a ticket that left the queue by
// eviction must surface its shed rejection from withdraw — not read as "slot
// granted", which would let the caller run past MaxInflight and drive the
// admission counters negative on Release. Only a dispatched ticket reports a
// granted slot.
func TestWithdrawDistinguishesShedFromGrant(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(Limits{MaxInflight: 1}.withDefaults(), clk.now, nil)
	holder := newTicket("h", PriorityNormal, 1, time.Time{})
	if err := a.Admit(context.Background(), holder); err != nil {
		t.Fatal(err)
	}

	// Evicted ticket: withdraw reports the shed, never a grant.
	shedTk := newTicket("shed", PriorityLow, 1, time.Time{})
	enqueue(a, shedTk)
	a.mu.Lock()
	a.evictLocked(0)
	a.mu.Unlock()
	withdrawn, rej := a.withdraw(shedTk)
	if withdrawn || rej == nil {
		t.Fatalf("withdraw(evicted) = (%v, %v), want (false, shed rejection)", withdrawn, rej)
	}

	// Drained ticket: same contract.
	drainTk := newTicket("drained", PriorityNormal, 1, time.Time{})
	enqueue(a, drainTk)
	a.Drain()
	withdrawn, rej = a.withdraw(drainTk)
	if withdrawn || rej == nil || rej.Status != http.StatusServiceUnavailable {
		t.Fatalf("withdraw(drained) = (%v, %v), want (false, 503 rejection)", withdrawn, rej)
	}
	a.mu.Lock()
	a.draining = false
	a.mu.Unlock()

	// Dispatched ticket: withdraw reports a granted slot (nil rejection).
	grantTk := newTicket("granted", PriorityNormal, 1, time.Time{})
	enqueue(a, grantTk)
	a.Release(holder) // frees the slot and dispatches grantTk
	withdrawn, rej = a.withdraw(grantTk)
	if withdrawn || rej != nil {
		t.Fatalf("withdraw(dispatched) = (%v, %v), want (false, nil = slot held)", withdrawn, rej)
	}
	a.Release(grantTk)

	// The bounds survived the whole dance: everything released, nothing
	// negative, so a fresh request is admitted on the fast path.
	a.mu.Lock()
	inflight, runBytes, qBytes := a.inflight, a.runBytes, a.qBytes
	a.mu.Unlock()
	if inflight != 0 || runBytes != 0 || qBytes != 0 {
		t.Fatalf("controller state after releases: inflight=%d runBytes=%d qBytes=%d, want all 0",
			inflight, runBytes, qBytes)
	}
}

// TestDrainShedsQueue: drain refuses new arrivals and sheds every waiter
// with 503s, leaving only the running requests to finish.
func TestDrainShedsQueue(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(Limits{MaxInflight: 1}.withDefaults(), clk.now, nil)
	holder := newTicket("h", PriorityNormal, 1, time.Time{})
	if err := a.Admit(context.Background(), holder); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- a.Admit(context.Background(), newTicket("q", PriorityNormal, 1, time.Time{})) }()
	waitQueued(t, a, 1)

	a.Drain()
	wantReject(t, <-errc, http.StatusServiceUnavailable, "draining")
	wantReject(t, a.Admit(context.Background(), newTicket("late", PriorityHigh, 1, time.Time{})),
		http.StatusServiceUnavailable, "draining")
	a.Release(holder)
}
