package serve

import (
	"net/http"
	"strings"
	"testing"
)

// FuzzDecodeRequest hammers the daemon's untrusted-input boundary: whatever
// bytes arrive, the decoder must return either a compiled, valid pipeline
// request or a typed 4xx — never panic, and never let an invalid request
// through to an engine. Registered in `make fuzz-regress`; the seed corpus
// replays on every plain `go test`.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}]}`)
	f.Add(`{"genome":"hg38","pattern":"NNNNNNNNNNNRG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":2}],"priority":"high","timeout_ms":250,"chunk_bytes":4096,"no_coalesce":true}`)
	f.Add(`{"pattern":`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`"just a string"`)
	f.Add(`{"pattern":"NNNNNNNNNNNGG","guides":[],"fast":true}`)
	f.Add(`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GAT","max_mismatches":1}]}`)
	f.Add(`{"pattern":"NNNNNNNNNNNG!","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}]}`)
	f.Add(`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":-3}]}`)
	f.Add(`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}],"priority":"turbo"}`)
	f.Add(`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}],"timeout_ms":-1}`)
	f.Add(`{"pattern":"NNNNNNNNNNNGG","guides":[{"guide":"GATTACAGTANNN","max_mismatches":1}]}{"pattern":"NN"}`)
	f.Add(`{"pattern":"nnnnnnnnnnngg","guides":[{"guide":"gattacagtannn","max_mismatches":0}]}`)
	f.Add(strings.Repeat(`{"guides":[`, 64))

	lim := Limits{MaxGuides: 8}.withDefaults()
	f.Fuzz(func(t *testing.T, body string) {
		sreq, preq, n, apiErr := DecodeRequest(strings.NewReader(body), lim)
		if n < 0 || n > int64(len(body)) {
			t.Fatalf("consumed %d bytes of a %d-byte body", n, len(body))
		}
		if apiErr != nil {
			if sreq != nil || preq != nil {
				t.Fatal("decoder returned both a request and an error")
			}
			if apiErr.Status != http.StatusBadRequest {
				// Without http.MaxBytesReader in front, every refusal here
				// is the caller's fault, never ours.
				t.Fatalf("status %d for %q, want 400", apiErr.Status, body)
			}
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("untyped rejection %+v for %q", apiErr, body)
			}
			return
		}
		if sreq == nil || preq == nil {
			t.Fatal("no error and no request")
		}
		// Anything the decoder lets through must already satisfy the
		// pipeline's own validation — engines never re-check.
		if err := preq.Validate(); err != nil {
			t.Fatalf("decoder admitted an invalid request (%v): %q", err, body)
		}
		if len(preq.Queries) > lim.MaxGuides {
			t.Fatalf("decoder admitted %d guides over the %d limit", len(preq.Queries), lim.MaxGuides)
		}
		if _, err := ParsePriority(sreq.Priority); err != nil {
			t.Fatalf("decoder admitted priority %q", sreq.Priority)
		}
		if sreq.TimeoutMs < 0 {
			t.Fatal("decoder admitted a negative timeout")
		}
	})
}
