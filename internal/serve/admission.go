// Admission control: the bounded front door of the daemon. Every request
// passes three gates before it may touch an engine — a per-tenant token
// bucket (keyed by API key), a byte budget over everything admitted but not
// yet finished, and a bounded queue whose overflow policy sheds the newest
// lowest-priority work first. Rejections are always explicit 429/503s with a
// Retry-After hint; nothing ever queues unboundedly, so a 3x-overcapacity
// burst costs bounded memory and the requests that are admitted keep their
// latency.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"casoffinder/internal/obs"
)

// Limits bounds the daemon's intake. The zero value of each field selects
// the documented default; quotas are off unless QuotaRate is set.
type Limits struct {
	// MaxInflight bounds the requests executing genome passes concurrently.
	MaxInflight int
	// MaxQueue bounds the requests waiting for an execution slot; arrivals
	// beyond it shed (see Admit).
	MaxQueue int
	// MaxInflightBytes bounds the summed request cost (body bytes) across
	// everything admitted — queued or running.
	MaxInflightBytes int64
	// MaxBodyBytes caps one request body (413 beyond it).
	MaxBodyBytes int64
	// MaxGuides caps the guides of one request (400 beyond it).
	MaxGuides int
	// QuotaRate and QuotaBurst shape the per-tenant token bucket: tokens
	// refill at QuotaRate per second up to QuotaBurst, one token per
	// request. QuotaRate 0 disables quotas.
	QuotaRate  float64
	QuotaBurst float64
	// RetryAfter is the hint attached to queue-pressure rejections (quota
	// rejections compute the exact refill wait instead).
	RetryAfter time.Duration
}

// Default limits.
const (
	DefaultMaxInflight      = 4
	DefaultMaxQueue         = 64
	DefaultMaxInflightBytes = 64 << 20
	DefaultMaxBodyBytes     = 1 << 20
	DefaultMaxGuides        = 256
	DefaultQuotaBurst       = 8
	DefaultRetryAfter       = time.Second
)

// withDefaults resolves zero fields to the package defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxInflight <= 0 {
		l.MaxInflight = DefaultMaxInflight
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = DefaultMaxQueue
	}
	if l.MaxInflightBytes <= 0 {
		l.MaxInflightBytes = DefaultMaxInflightBytes
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if l.MaxGuides <= 0 {
		l.MaxGuides = DefaultMaxGuides
	}
	if l.QuotaRate > 0 && l.QuotaBurst <= 0 {
		l.QuotaBurst = DefaultQuotaBurst
	}
	if l.RetryAfter <= 0 {
		l.RetryAfter = DefaultRetryAfter
	}
	return l
}

// RejectError is an admission refusal: the HTTP status (429 under load, 503
// while draining), the shed reason and the Retry-After hint.
type RejectError struct {
	Status     int
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: rejected (%s), retry after %v", e.Reason, e.RetryAfter)
}

// ticket is one request's admission state.
type ticket struct {
	tenant   string
	priority int
	cost     int64
	deadline time.Time // zero = none
	enqueued time.Time

	// admit is closed when a slot is granted; shed receives the rejection
	// when the ticket is evicted from the queue instead.
	admit chan struct{}
	shed  chan *RejectError
	// queued marks the ticket as still sitting in the queue slice; guarded
	// by the admission mutex.
	queued bool
}

// newTicket builds a ticket for one request.
func newTicket(tenant string, priority int, cost int64, deadline time.Time) *ticket {
	return &ticket{
		tenant:   tenant,
		priority: priority,
		cost:     cost,
		deadline: deadline,
		admit:    make(chan struct{}),
		shed:     make(chan *RejectError, 1),
	}
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills the bucket to now and claims one token, returning 0 on
// success or the wait until the next token otherwise.
func (b *bucket) take(rate, burst float64, now time.Time) time.Duration {
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return wait
}

// admission is the controller. All state sits behind one mutex; the queue is
// small by construction (MaxQueue), so linear scans are fine.
type admission struct {
	lim     Limits
	now     func() time.Time
	metrics *obs.Metrics

	mu       sync.Mutex
	tenants  map[string]*bucket
	queue    []*ticket
	inflight int
	runBytes int64 // cost of running requests
	qBytes   int64 // cost of queued requests
	draining bool
}

// newAdmission builds a controller for resolved limits.
func newAdmission(lim Limits, now func() time.Time, m *obs.Metrics) *admission {
	if now == nil {
		now = time.Now
	}
	return &admission{lim: lim, now: now, metrics: m, tenants: make(map[string]*bucket)}
}

// gaugesLocked mirrors the controller state into the registry.
func (a *admission) gaugesLocked() {
	a.metrics.Gauge(obs.MetricServeQueueDepth, float64(len(a.queue)))
	a.metrics.Gauge(obs.MetricServeInflight, float64(a.inflight))
	a.metrics.Gauge(obs.MetricServeInflightBytes, float64(a.runBytes+a.qBytes))
}

// reject counts and builds a refusal.
func (a *admission) reject(status int, reason string, retryAfter time.Duration) *RejectError {
	a.metrics.Count(obs.L(obs.MetricServeShed, "reason", reason), 1)
	return &RejectError{Status: status, Reason: reason, RetryAfter: retryAfter}
}

// Admit runs the three gates for one ticket and blocks until the request
// holds an execution slot, is shed, or its context/deadline gives out.
// A nil return means the slot is held and Release must be called.
func (a *admission) Admit(ctx context.Context, tk *ticket) error {
	a.mu.Lock()
	if a.draining {
		defer a.mu.Unlock()
		return a.reject(http.StatusServiceUnavailable, "draining", a.lim.RetryAfter)
	}
	now := a.now()
	// Gate 1: per-tenant quota.
	if a.lim.QuotaRate > 0 {
		b := a.tenants[tk.tenant]
		if b == nil {
			b = &bucket{tokens: a.lim.QuotaBurst, last: now}
			a.tenants[tk.tenant] = b
		}
		if wait := b.take(a.lim.QuotaRate, a.lim.QuotaBurst, now); wait > 0 {
			defer a.mu.Unlock()
			return a.reject(http.StatusTooManyRequests, "quota", wait)
		}
	}
	// Gate 2: a deadline that already passed can never be met; refuse it
	// before it costs a queue slot.
	if !tk.deadline.IsZero() && !now.Before(tk.deadline) {
		defer a.mu.Unlock()
		return a.reject(http.StatusTooManyRequests, "deadline", a.lim.RetryAfter)
	}
	// Fast path: an idle slot with no queue ahead of us.
	if a.inflight < a.lim.MaxInflight && len(a.queue) == 0 &&
		a.runBytes+tk.cost <= a.lim.MaxInflightBytes {
		a.inflight++
		a.runBytes += tk.cost
		a.gaugesLocked()
		a.mu.Unlock()
		return nil
	}
	// Gate 3: bounded queue with load shedding. Over either limit, the
	// newest strictly-lower-priority queued request is evicted to make
	// room; when no such victim exists (or evicting one is not enough),
	// the arrival itself is shed.
	overQueue := len(a.queue) >= a.lim.MaxQueue
	overBytes := a.runBytes+a.qBytes+tk.cost > a.lim.MaxInflightBytes
	if overQueue || overBytes {
		vi := a.victimLocked(tk.priority)
		fits := vi >= 0 &&
			a.runBytes+a.qBytes-a.queue[vi].cost+tk.cost <= a.lim.MaxInflightBytes
		if !fits {
			defer a.mu.Unlock()
			reason := "queue-full"
			if !overQueue {
				reason = "bytes"
			}
			return a.reject(http.StatusTooManyRequests, reason, a.lim.RetryAfter)
		}
		a.evictLocked(vi)
	}
	tk.enqueued = now
	tk.queued = true
	a.queue = append(a.queue, tk)
	a.qBytes += tk.cost
	a.gaugesLocked()
	a.mu.Unlock()

	var deadlineC <-chan time.Time
	if !tk.deadline.IsZero() {
		t := time.NewTimer(tk.deadline.Sub(now))
		defer t.Stop()
		deadlineC = t.C
	}
	select {
	case <-tk.admit:
		a.metrics.Observe(obs.MetricServeQueueSeconds, a.now().Sub(tk.enqueued).Seconds())
		return nil
	case rej := <-tk.shed:
		return rej
	case <-deadlineC:
		// Deadline-aware rejection: the budget ran out while still queued,
		// so the client is told to back off rather than handed a doomed
		// stream. If dispatch raced us, keep the slot; if a shed raced us,
		// the rejection wins.
		if withdrawn, rej := a.withdraw(tk); !withdrawn {
			if rej != nil {
				return rej
			}
			return nil
		}
		return a.reject(http.StatusTooManyRequests, "deadline", a.lim.RetryAfter)
	case <-ctx.Done():
		if withdrawn, rej := a.withdraw(tk); !withdrawn {
			if rej != nil {
				return rej
			}
			return nil
		}
		return ctx.Err()
	}
}

// withdraw removes a waiting ticket from the queue. withdrawn reports whether
// the ticket was still queued; when false the ticket already left the queue
// another way, and rej disambiguates how: non-nil means it was shed (evicted
// or drained, so the caller holds nothing), nil means dispatchLocked granted
// it a slot the caller now owns and must Release. Both departures happen
// under a.mu — the eviction buffers its rejection on tk.shed before the lock
// is released — so once we hold the lock the channel state is settled.
func (a *admission) withdraw(tk *ticket) (withdrawn bool, rej *RejectError) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !tk.queued {
		select {
		case r := <-tk.shed:
			return false, r
		default:
			return false, nil
		}
	}
	for i, q := range a.queue {
		if q == tk {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
	tk.queued = false
	a.qBytes -= tk.cost
	a.gaugesLocked()
	return true, nil
}

// victimLocked picks the shed victim for an arrival at the given priority:
// the lowest-priority queued ticket, newest first among equals, and only if
// strictly lower-priority than the arrival. Returns -1 when every queued
// ticket is at least as important.
func (a *admission) victimLocked(arriving int) int {
	vi := -1
	for i, q := range a.queue {
		if q.priority >= arriving {
			continue
		}
		if vi < 0 || q.priority < a.queue[vi].priority ||
			(q.priority == a.queue[vi].priority && !q.enqueued.Before(a.queue[vi].enqueued)) {
			vi = i
		}
	}
	return vi
}

// evictLocked sheds the queued ticket at index i.
func (a *admission) evictLocked(i int) {
	tk := a.queue[i]
	a.queue = append(a.queue[:i], a.queue[i+1:]...)
	tk.queued = false
	a.qBytes -= tk.cost
	tk.shed <- a.reject(http.StatusTooManyRequests, "shed", a.lim.RetryAfter)
}

// Release frees a held slot and dispatches as many waiters as now fit.
func (a *admission) Release(tk *ticket) {
	a.mu.Lock()
	a.inflight--
	a.runBytes -= tk.cost
	a.dispatchLocked()
	a.gaugesLocked()
	a.mu.Unlock()
}

// dispatchLocked grants slots to waiting tickets: highest priority first,
// oldest first within a priority. Moving a ticket from queued to running
// never changes the admitted byte total, so only the slot bound gates it.
func (a *admission) dispatchLocked() {
	for len(a.queue) > 0 && a.inflight < a.lim.MaxInflight {
		best := 0
		for i, q := range a.queue[1:] {
			if q.priority > a.queue[best].priority {
				best = i + 1
			}
		}
		tk := a.queue[best]
		a.queue = append(a.queue[:best], a.queue[best+1:]...)
		tk.queued = false
		a.qBytes -= tk.cost
		a.runBytes += tk.cost
		a.inflight++
		close(tk.admit)
	}
}

// Drain flips the controller into shutdown mode: every queued ticket is shed
// with a 503 and every later Admit refuses immediately. Running requests are
// untouched — the caller waits for them separately.
func (a *admission) Drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	for _, tk := range a.queue {
		tk.queued = false
		a.qBytes -= tk.cost
		tk.shed <- a.reject(http.StatusServiceUnavailable, "draining", a.lim.RetryAfter)
	}
	a.queue = nil
	a.gaugesLocked()
}
