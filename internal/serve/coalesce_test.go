package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/search"
)

// testAssembly plants two perfect NGG sites: GATTACAGTA+CGG at chr1:4 and
// ACGTACGTAC+AGG at chr1:21.
func testAssembly() *genome.Assembly {
	seq := "TTTTGATTACAGTACGGTTTTACGTACGTACAGGTTTTTTTTTTTTTT"
	return &genome.Assembly{Name: "test", Sequences: []*genome.Sequence{
		{Name: "chr1", Data: []byte(seq)},
	}}
}

const testPattern = "NNNNNNNNNNNGG"

// memberRequest builds a single-pattern request over the given guides.
func memberRequest(guides ...pipeline.Query) *pipeline.Request {
	return &pipeline.Request{Pattern: testPattern, Queries: guides}
}

// jsonEmit returns an emit function encoding hits exactly as the server
// streams them, against the member's own request.
func jsonEmit(buf *bytes.Buffer, req *pipeline.Request) func(pipeline.Hit) error {
	return func(h pipeline.Hit) error { return search.WriteHitJSON(buf, req, h) }
}

// soloNDJSON runs one member alone on the engine and returns its encoded
// stream: the golden the coalesced stream must match byte for byte.
func soloNDJSON(t *testing.T, eng search.Engine, asm *genome.Assembly, req *pipeline.Request) string {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Stream(context.Background(), asm, req, jsonEmit(&buf, req)); err != nil {
		t.Fatalf("solo stream: %v", err)
	}
	return buf.String()
}

// cpuPass adapts the CPU engine to a passFunc (no resilience reports).
func cpuPass(asm *genome.Assembly) passFunc {
	eng := &search.CPU{}
	return func(ctx context.Context, _ string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error) {
		return nil, eng.Stream(ctx, asm, req, emit)
	}
}

// TestCoalescedByteIdentical is the coalescer's core contract: concurrent
// members sharing one pass see exactly the bytes they would have seen
// running alone, and the batch really did collapse to one pass.
func TestCoalescedByteIdentical(t *testing.T) {
	asm := testAssembly()
	cpu := &search.CPU{}
	members := []*pipeline.Request{
		memberRequest(pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 1}),
		memberRequest(pipeline.Query{Guide: "ACGTACGTACNNN", MaxMismatches: 1}),
		memberRequest(pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 0}),
		memberRequest(
			pipeline.Query{Guide: "ACGTACGTACNNN", MaxMismatches: 2},
			pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 2},
		),
	}
	golden := make([]string, len(members))
	for i, req := range members {
		golden[i] = soloNDJSON(t, cpu, asm, req)
		if golden[i] == "" {
			t.Fatalf("member %d found no hits; the equivalence check would be vacuous", i)
		}
	}

	var passes sync.Map // passCount via metrics registry instead
	m := obs.NewMetrics()
	run := cpuPass(asm)
	counted := func(ctx context.Context, g string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error) {
		passes.Store(req, true)
		return run(ctx, g, req, emit)
	}
	c := newCoalescer(200*time.Millisecond, 0, counted, m)

	bufs := make([]bytes.Buffer, len(members))
	var wg sync.WaitGroup
	for i, req := range members {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, perr, merr := c.Join(context.Background(), "test", req, jsonEmit(&bufs[i], req))
			if perr != nil || merr != nil {
				t.Errorf("member %d: pass err %v, member err %v", i, perr, merr)
			}
			if rep != nil && rep.Degraded() {
				t.Errorf("member %d: unexpected degraded report", i)
			}
		}()
	}
	wg.Wait()

	for i := range members {
		if got := bufs[i].String(); got != golden[i] {
			t.Errorf("member %d coalesced stream differs from solo run:\n%s\nvs\n%s", i, got, golden[i])
		}
	}
	n := 0
	passes.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Errorf("%d passes ran, want 1 (members did not coalesce)", n)
	}
	if got := m.Counter(obs.MetricServeCoalesced); got != int64(len(members)) {
		t.Errorf("coalesced counter = %d, want %d", got, len(members))
	}
}

// TestCoalescedDegradedPass seeds a certain device-lost fault under the
// merged pass: the resilient executor fails the batch over to the CPU, every
// member's stream stays byte-identical to a clean solo run, and every member
// sees the shared degraded report — fault attribution covers the whole
// batch, because the missing device served the whole batch.
func TestCoalescedDegradedPass(t *testing.T) {
	asm := testAssembly()
	cpu := &search.CPU{}
	members := []*pipeline.Request{
		memberRequest(pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 1}),
		memberRequest(pipeline.Query{Guide: "ACGTACGTACNNN", MaxMismatches: 1}),
	}
	golden := make([]string, len(members))
	for i, req := range members {
		golden[i] = soloNDJSON(t, cpu, asm, req)
	}

	dev := gpu.New(device.MI100())
	dev.SetFaults(fault.NewInjector(fault.Plan{Seed: 42, Rate: 1, Site: fault.SiteCLDeviceLost}))
	res := &pipeline.Resilience{Seed: 42}
	eng := &search.SimCL{Device: dev, Resilience: res}

	// Mirror Server.runPass: serialize passes and capture the report the
	// resilient executor publishes through the sink.
	var mu sync.Mutex
	var slot *pipeline.Report
	res.OnReport = func(rep *pipeline.Report) {
		mu.Lock()
		slot = rep
		mu.Unlock()
	}
	var engineMu sync.Mutex
	run := func(ctx context.Context, _ string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error) {
		engineMu.Lock()
		defer engineMu.Unlock()
		mu.Lock()
		slot = nil
		mu.Unlock()
		err := eng.Stream(ctx, asm, req, emit)
		mu.Lock()
		defer mu.Unlock()
		return slot, err
	}
	c := newCoalescer(200*time.Millisecond, 0, run, nil)

	bufs := make([]bytes.Buffer, len(members))
	reps := make([]*pipeline.Report, len(members))
	var wg sync.WaitGroup
	for i, req := range members {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, perr, merr := c.Join(context.Background(), "test", req, jsonEmit(&bufs[i], req))
			if perr != nil || merr != nil {
				t.Errorf("member %d: pass err %v, member err %v", i, perr, merr)
			}
			reps[i] = rep
		}()
	}
	wg.Wait()

	for i := range members {
		if got := bufs[i].String(); got != golden[i] {
			t.Errorf("member %d degraded stream differs from clean solo run:\n%s\nvs\n%s", i, got, golden[i])
		}
		if reps[i] == nil || !reps[i].Degraded() {
			t.Errorf("member %d: report %+v, want the shared degraded report", i, reps[i])
		}
	}
	if reps[0] != reps[1] {
		t.Errorf("members saw different reports (%p vs %p); attribution should share the pass's", reps[0], reps[1])
	}
}

// TestCoalesceKeyPartitioning: different patterns (or chunk budgets) must
// not merge — a batch may only carry requests one pass can serve.
func TestCoalesceKeyPartitioning(t *testing.T) {
	asm := testAssembly()
	m := obs.NewMetrics()
	c := newCoalescer(100*time.Millisecond, 0, cpuPass(asm), m)
	reqA := memberRequest(pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 1})
	reqB := &pipeline.Request{Pattern: "NNNNNNNNNNNRG", Queries: []pipeline.Query{{Guide: "GATTACAGTANNN", MaxMismatches: 1}}}
	var wg sync.WaitGroup
	for _, req := range []*pipeline.Request{reqA, reqB} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			if _, perr, merr := c.Join(context.Background(), "test", req, jsonEmit(&buf, req)); perr != nil || merr != nil {
				t.Errorf("join: %v / %v", perr, merr)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter(obs.MetricServeBatches); got != 2 {
		t.Errorf("batches = %d, want 2 (distinct keys must not share a pass)", got)
	}
	if got := m.Counter(obs.MetricServeCoalesced); got != 0 {
		t.Errorf("coalesced = %d, want 0", got)
	}
}

// TestCoalesceMemberDeparture: one member's client dies mid-batch; the
// survivor still gets its full byte-identical stream, and the departed
// member's error is the cancellation, not a pass failure.
func TestCoalesceMemberDeparture(t *testing.T) {
	asm := testAssembly()
	cpu := &search.CPU{}
	stay := memberRequest(pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 1})
	leave := memberRequest(pipeline.Query{Guide: "ACGTACGTACNNN", MaxMismatches: 1})
	golden := soloNDJSON(t, cpu, asm, stay)

	// Hold the pass at the gate until the leaving member is gone, so the
	// departure happens deterministically mid-batch.
	gate := make(chan struct{})
	run := cpuPass(asm)
	gated := func(ctx context.Context, g string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error) {
		<-gate
		return run(ctx, g, req, emit)
	}
	c := newCoalescer(50*time.Millisecond, 0, gated, nil)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var stayBuf, leaveBuf bytes.Buffer
	wg.Add(2)
	go func() {
		defer wg.Done()
		rep, perr, merr := c.Join(context.Background(), "test", stay, jsonEmit(&stayBuf, stay))
		if perr != nil || merr != nil || (rep != nil && rep.Degraded()) {
			t.Errorf("staying member: rep %+v, pass err %v, member err %v", rep, perr, merr)
		}
	}()
	go func() {
		defer wg.Done()
		_, perr, _ := c.Join(ctx, "test", leave, jsonEmit(&leaveBuf, leave))
		if !errors.Is(perr, context.Canceled) {
			t.Errorf("departed member: err %v, want context.Canceled", perr)
		}
		close(gate)
	}()
	// Let both members join the batch, then kill one before the pass runs.
	time.Sleep(10 * time.Millisecond)
	cancel()
	wg.Wait()

	if got := stayBuf.String(); got != golden {
		t.Errorf("survivor stream differs from solo run:\n%s\nvs\n%s", got, golden)
	}
	if strings.Contains(leaveBuf.String(), "ACGTACGTAC") {
		// Hits may or may not have flushed before departure, but none may
		// arrive after the member was marked gone; with the gated pass none
		// should arrive at all.
		t.Errorf("departed member still received hits: %q", leaveBuf.String())
	}
}

// TestCoalesceAllGoneCancelsPass: when every member departs, the pass's
// context is cancelled rather than scanning a genome nobody wants.
func TestCoalesceAllGoneCancelsPass(t *testing.T) {
	started := make(chan struct{})
	canceled := make(chan struct{})
	run := func(ctx context.Context, _ string, _ *pipeline.Request, _ func(pipeline.Hit) error) (*pipeline.Report, error) {
		close(started)
		<-ctx.Done()
		close(canceled)
		return nil, ctx.Err()
	}
	c := newCoalescer(10*time.Millisecond, 0, run, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := memberRequest(pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 1})
		c.Join(ctx, "test", req, func(pipeline.Hit) error { return nil })
	}()
	<-started
	cancel()
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("pass context never cancelled after the last member left")
	}
	<-done
}

// TestCoalesceWindowDisabled: a non-positive window degenerates to one pass
// per request with no batching machinery in the path.
func TestCoalesceWindowDisabled(t *testing.T) {
	asm := testAssembly()
	m := obs.NewMetrics()
	c := newCoalescer(-1, 0, cpuPass(asm), m)
	req := memberRequest(pipeline.Query{Guide: "GATTACAGTANNN", MaxMismatches: 1})
	var buf bytes.Buffer
	if _, perr, merr := c.Join(context.Background(), "test", req, jsonEmit(&buf, req)); perr != nil || merr != nil {
		t.Fatalf("join: %v / %v", perr, merr)
	}
	if golden := soloNDJSON(t, &search.CPU{}, asm, req); buf.String() != golden {
		t.Errorf("solo-path stream differs:\n%s\nvs\n%s", buf.String(), golden)
	}
	if got := m.Counter(obs.MetricServeBatches); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
}
