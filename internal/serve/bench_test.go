package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"casoffinder/internal/genome"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/search"
)

// benchAssembly builds a deterministic pseudo-random genome large enough
// that a pass dominates the coalescer's bookkeeping.
func benchAssembly(bases int) *genome.Assembly {
	data := make([]byte, bases)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		data[i] = "ACGT"[x&3]
	}
	return &genome.Assembly{Name: "bench", Sequences: []*genome.Sequence{
		{Name: "chr1", Data: data},
	}}
}

// benchGuides derives n distinct pattern-shaped guides from the assembly so
// every member's scan does comparable work.
func benchGuides(asm *genome.Assembly, n int) []pipeline.Query {
	data := asm.Sequences[0].Data
	guides := make([]pipeline.Query, n)
	for i := range guides {
		g := make([]byte, 13)
		copy(g, data[i*257:i*257+11])
		g[11], g[12] = 'N', 'N'
		guides[i] = pipeline.Query{Guide: string(g), MaxMismatches: 3}
	}
	return guides
}

// BenchmarkCoalesce measures the daemon's cross-request coalescing win: N
// concurrent single-guide requests served as one merged genome pass
// (coalesced) versus one pass each (independent). The coalesced/independent
// ns/op ratio is the headline; the gate in BENCH_serve.json holds both rows.
func BenchmarkCoalesce(b *testing.B) {
	asm := benchAssembly(1 << 20)
	eng := &search.CPU{}
	const members = 8
	guides := benchGuides(asm, members)
	run := func(ctx context.Context, _ string, req *pipeline.Request, emit func(pipeline.Hit) error) (*pipeline.Report, error) {
		return nil, eng.Stream(ctx, asm, req, emit)
	}
	reqs := make([]*pipeline.Request, members)
	for i := range reqs {
		reqs[i] = &pipeline.Request{Pattern: "NNNNNNNNNNNGG", Queries: []pipeline.Query{guides[i]}}
	}
	sink := func(pipeline.Hit) error { return nil }

	for _, mode := range []struct {
		name   string
		window time.Duration
	}{
		{"independent", -1},                  // solo path: one pass per member
		{"coalesced", 10 * time.Millisecond}, // members merge into one pass
	} {
		b.Run(fmt.Sprintf("%s/members=%d", mode.name, members), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := newCoalescer(mode.window, 0, run, nil)
				var wg sync.WaitGroup
				for _, req := range reqs {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, perr, merr := c.Join(context.Background(), "bench", req, sink); perr != nil || merr != nil {
							b.Errorf("join: %v / %v", perr, merr)
						}
					}()
				}
				wg.Wait()
			}
		})
	}
}
