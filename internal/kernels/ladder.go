// Package kernels holds the two device kernels of the Cas-OFFinder
// application — "finder", which selects candidate sites containing a
// protospacer-adjacent motif (PAM), and "comparer" (the paper's Listing 1),
// which counts mismatched bases between a guide pattern and each candidate
// site — as Go functions over the execution-model simulator. Both the
// OpenCL-style and SYCL-style frontends execute these same bodies, which is
// what lets the reproduction test the paper's implicit claim that the
// migration is behaviour-preserving.
//
// The comparer comes in five variants: the baseline of Listing 1 plus the
// paper's cumulative optimizations opt1-opt4 (§IV.B). All variants are
// functionally identical; they differ in the memory traffic they generate
// (which the Item counters record) and, through internal/isa, in register
// pressure and occupancy.
package kernels

import "casoffinder/internal/genome"

// ladderOrder is the evaluation order of the degenerate-base comparison
// ladder in Listing 1: the kernel tests the pattern character against each
// code in turn, so the number of conditions (and shared-local-memory reads
// of l_comp[k]) evaluated for one position equals the character's ladder
// position. 'N' does not appear: N positions are excluded from the index
// arrays on the host.
var ladderOrder = []byte("RYSWKMBDHVACGT")

// ladderPos returns how many ladder terms the kernel evaluates for pattern
// code c (its 1-based ladder position, or the full ladder length for a code
// that matches no term).
var ladderPos = func() [256]int {
	var t [256]int
	for i := range t {
		t[i] = len(ladderOrder)
	}
	for i, c := range ladderOrder {
		t[c] = i + 1
		t[c|0x20] = i + 1
	}
	return t
}()

// mismatch reports whether the genome base fails to match the pattern code,
// with the semantics of the Listing 1 ladder (see genome.Matches).
func mismatch(patternCode, base byte) bool { return !genome.Matches(patternCode, base) }

// aluPerTerm is the arithmetic cost accounted per evaluated ladder term
// (a comparison on the pattern character plus one on the genome base).
const aluPerTerm = 2
