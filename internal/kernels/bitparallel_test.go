package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"casoffinder/internal/baseline"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
)

func TestAllVariantsIncludesBitParallel(t *testing.T) {
	all := AllVariants()
	if len(all) != len(Variants())+1 {
		t.Fatalf("AllVariants has %d entries, want %d", len(all), len(Variants())+1)
	}
	if all[len(all)-1] != BitParallel {
		t.Errorf("last variant = %s, want bitparallel", all[len(all)-1])
	}
	if BitParallel.String() != "bitparallel" {
		t.Errorf("String() = %q", BitParallel)
	}
	if ComparerKernelName(BitParallel) != "comparer_bitparallel" {
		t.Errorf("kernel name = %q", ComparerKernelName(BitParallel))
	}
	if !BitParallel.CooperativeFetch() {
		t.Error("bitparallel should stage cooperatively like opt3+")
	}
	if _, ok := CLSource()["comparer_bitparallel"]; !ok {
		t.Error("CLSource does not register comparer_bitparallel")
	}
}

// TestBitParallelFunctionallyIdentical: the SWAR comparer variant returns
// exactly the baseline variant's hits — the word-parallel accounting must
// not change a single result.
func TestBitParallelFunctionallyIdentical(t *testing.T) {
	dev := gpu.New(device.MI100(), gpu.WithWorkers(4))
	rng := rand.New(rand.NewSource(19))
	seq := make([]byte, 4096)
	alphabet := []byte("ACGTACGTACGTACGTN")
	for i := range seq {
		seq[i] = alphabet[rng.Intn(len(alphabet))]
	}
	const pattern, guide = "NNNNNNNNNNNNNNNNNNNNNGG", "GGCCGACCTGTCGCTGACGCNNN"
	site := []byte("GGCCGACCTGTCGCTGACGCTGG")
	for s := 0; s < 12; s++ {
		mutated := append([]byte(nil), site...)
		for m := 0; m < s%5; m++ {
			mutated[rng.Intn(20)] = "ACGT"[rng.Intn(4)]
		}
		if s%3 == 0 {
			genome.ReverseComplement(mutated)
		}
		copy(seq[64+s*320:], mutated)
	}
	ref, _, _ := runPipeline(t, dev, seq, pattern, guide, 4, Base, 64)
	if len(ref) == 0 {
		t.Fatal("expected hits from the randomized genome")
	}
	got, _, _ := runPipeline(t, dev, seq, pattern, guide, 4, BitParallel, 64)
	if !hitsEqual(got, ref) {
		t.Errorf("bitparallel: %d hits != base %d hits", len(got), len(ref))
	}
}

// TestBitParallelPropertyVsBaseline: random genomes, guides and thresholds
// against the naive reference, SWAR variant only.
func TestBitParallelPropertyVsBaseline(t *testing.T) {
	dev := gpu.New(device.RadeonVII(), gpu.WithWorkers(4))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(900)
		seq := make([]byte, n)
		alphabet := []byte("ACGTacgtN")
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		glen := 4 + rng.Intn(8)
		pattern := make([]byte, glen+2)
		guide := make([]byte, glen+2)
		for i := 0; i < glen; i++ {
			pattern[i] = 'N'
			guide[i] = "ACGT"[rng.Intn(4)]
		}
		pattern[glen], pattern[glen+1] = 'G', 'G'
		guide[glen], guide[glen+1] = 'N', 'N'
		maxMM := rng.Intn(4)
		want, err := baseline.Search(genome.Upper(seq), pattern, guide, maxMM)
		if err != nil {
			return false
		}
		got, _, _ := runPipeline(t, dev, seq, string(pattern), string(guide), maxMM, BitParallel, 32)
		return hitsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBitParallelTraffic pins the variant's cost-model story: fewer global
// load operations than opt4, each load wider on average (the packed text
// and unknown words replace byte-per-base reads), with atomics unchanged.
func TestBitParallelTraffic(t *testing.T) {
	dev := gpu.New(device.MI60(), gpu.WithWorkers(4))
	rng := rand.New(rand.NewSource(7))
	seq := make([]byte, 8192)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	const pattern, guide = "NNNNNNNNNNNNNNNNNNNNNGG", "GGCCGACCTGTCGCTGACGCNNN"
	_, _, opt4 := runPipeline(t, dev, seq, pattern, guide, 4, Opt4, 64)
	_, _, bp := runPipeline(t, dev, seq, pattern, guide, 4, BitParallel, 64)
	if !(bp.GlobalLoadOps < opt4.GlobalLoadOps) {
		t.Errorf("bitparallel should cut global load ops: opt4 %d, bitparallel %d",
			opt4.GlobalLoadOps, bp.GlobalLoadOps)
	}
	opt4Width := float64(opt4.GlobalLoadBytes) / float64(opt4.GlobalLoadOps)
	bpWidth := float64(bp.GlobalLoadBytes) / float64(bp.GlobalLoadOps)
	if !(bpWidth > opt4Width) {
		t.Errorf("bitparallel loads should be wider on average: opt4 %.2f B/op, bitparallel %.2f B/op",
			opt4Width, bpWidth)
	}
	if bp.AtomicOps != opt4.AtomicOps {
		t.Errorf("bitparallel changed atomics: %d vs %d", bp.AtomicOps, opt4.AtomicOps)
	}
}
