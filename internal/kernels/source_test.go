package kernels

import (
	"sort"
	"testing"

	"casoffinder/internal/baseline"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/alloc"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/opencl"
)

// clEnv builds the OpenCL object stack over one simulated device.
func clEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue, *opencl.Program) {
	t.Helper()
	p := opencl.NewPlatform("ROCm", "AMD", gpu.New(device.MI60(), gpu.WithWorkers(4)))
	devs, err := p.GetDevices(opencl.DeviceTypeGPU)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := opencl.CreateContext(devs...)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgramWithSource(CLSource())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build("-O3"); err != nil {
		t.Fatal(err)
	}
	return ctx, q, prog
}

// TestCLSourceEndToEnd runs the finder and comparer through the full OpenCL
// host path (buffers, SetArg, enqueue, read back) and checks the hits
// against the reference.
func TestCLSourceEndToEnd(t *testing.T) {
	ctx, q, prog := clEnv(t)
	seq := genome.Upper([]byte("ACCGATTACAGGTTTGATTACAAGCCGATTACAGGACGTCCTGTAATCGG"))
	const patternStr, guideStr = "NNNNNNNGG", "GATTACANN"
	const maxMM = 1

	pat, err := NewPatternPair([]byte(patternStr))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := NewPatternPair([]byte(guideStr))
	if err != nil {
		t.Fatal(err)
	}
	sites := len(seq) - pat.PatternLen + 1

	chrBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	patBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemUseConstant|opencl.MemCopyHostPtr, len(pat.Codes), pat.Codes)
	if err != nil {
		t.Fatal(err)
	}
	patIdxBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(pat.Index), pat.Index)
	if err != nil {
		t.Fatal(err)
	}
	const wg = 64
	gws := (sites + wg - 1) / wg * wg
	fLayout := alloc.WorstCase(gws/wg, wg)
	lociBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, fLayout.Slots(), nil)
	if err != nil {
		t.Fatal(err)
	}
	flagsBuf, err := opencl.CreateBuffer[byte](ctx, opencl.MemReadWrite, fLayout.Slots(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// One arena state stack, reused by the finder and the comparer: the
	// comparer's group tables are never larger here.
	cursorBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	countBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, fLayout.Groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	pageBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadWrite|opencl.MemCopyHostPtr, fLayout.Groups, alloc.UnsetPages(fLayout.Groups))
	if err != nil {
		t.Fatal(err)
	}
	ovfBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	resetArena := func(groups int) {
		t.Helper()
		if _, err := opencl.EnqueueWriteBuffer(q, cursorBuf, true, 0, 1, []uint32{0}); err != nil {
			t.Fatal(err)
		}
		if _, err := opencl.EnqueueWriteBuffer(q, ovfBuf, true, 0, 1, []uint32{0}); err != nil {
			t.Fatal(err)
		}
		if _, err := opencl.EnqueueWriteBuffer(q, countBuf, true, 0, groups, make([]uint32, groups)); err != nil {
			t.Fatal(err)
		}
		if _, err := opencl.EnqueueWriteBuffer(q, pageBuf, true, 0, groups, alloc.UnsetPages(groups)); err != nil {
			t.Fatal(err)
		}
	}
	readArena := func(groups, pageSlots, pages int) *alloc.Geometry {
		t.Helper()
		ovf := make([]uint32, 1)
		if _, err := opencl.EnqueueReadBuffer(q, ovfBuf, true, 0, 1, ovf); err != nil {
			t.Fatal(err)
		}
		if ovf[0] != 0 {
			t.Fatalf("worst-case arena overflowed %d entries", ovf[0])
		}
		cursor := make([]uint32, 1)
		if _, err := opencl.EnqueueReadBuffer(q, cursorBuf, true, 0, 1, cursor); err != nil {
			t.Fatal(err)
		}
		count := make([]uint32, groups)
		if _, err := opencl.EnqueueReadBuffer(q, countBuf, true, 0, groups, count); err != nil {
			t.Fatal(err)
		}
		pageOf := make([]uint32, groups)
		if _, err := opencl.EnqueueReadBuffer(q, pageBuf, true, 0, groups, pageOf); err != nil {
			t.Fatal(err)
		}
		geo, err := alloc.Decode(cursor[0], count, pageOf, pageSlots, pages)
		if err != nil {
			t.Fatal(err)
		}
		return geo
	}

	finder, err := prog.CreateKernel("finder")
	if err != nil {
		t.Fatal(err)
	}
	finderArgs := []any{
		chrBuf, patBuf, patIdxBuf,
		int32(pat.PatternLen), uint32(sites),
		lociBuf, flagsBuf,
		int32(fLayout.PageSlots), int32(fLayout.Pages),
		cursorBuf, countBuf, pageBuf, ovfBuf,
	}
	for i, a := range finderArgs {
		if err := finder.SetArg(i, a); err != nil {
			t.Fatalf("finder arg %d: %v", i, err)
		}
	}
	if err := finder.SetArgLocal(FinderArgLocalPat, 2*pat.PatternLen); err != nil {
		t.Fatal(err)
	}
	if err := finder.SetArgLocal(FinderArgLocalPatIndex, 4*2*pat.PatternLen); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRangeKernel(finder, gws, 0); err != nil {
		t.Fatalf("finder enqueue: %v", err)
	}

	fgeo := readArena(fLayout.Groups, fLayout.PageSlots, fLayout.Pages)
	n := fgeo.Total
	if n == 0 {
		t.Fatal("finder found no candidate sites")
	}
	lociStrided := make([]uint32, fLayout.Slots())
	if _, err := opencl.EnqueueReadBuffer(q, lociBuf, true, 0, len(lociStrided), lociStrided); err != nil {
		t.Fatal(err)
	}
	flagsStrided := make([]byte, fLayout.Slots())
	if _, err := opencl.EnqueueReadBuffer(q, flagsBuf, true, 0, len(flagsStrided), flagsStrided); err != nil {
		t.Fatal(err)
	}
	loci := alloc.Gather(fgeo, lociStrided, []uint32(nil))
	flags := alloc.Gather(fgeo, flagsStrided, []byte(nil))
	cLociBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, n, loci)
	if err != nil {
		t.Fatal(err)
	}
	cFlagsBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, n, flags)
	if err != nil {
		t.Fatal(err)
	}

	compBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(gd.Codes), gd.Codes)
	if err != nil {
		t.Fatal(err)
	}
	compIdxBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(gd.Index), gd.Index)
	if err != nil {
		t.Fatal(err)
	}
	cgws := (n + wg - 1) / wg * wg
	cLayout := alloc.WorstCase(cgws/wg, 2*wg)
	mmLociBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemWriteOnly, cLayout.Slots(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mmCountBuf, err := opencl.CreateBuffer[uint16](ctx, opencl.MemWriteOnly, cLayout.Slots(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dirBuf, err := opencl.CreateBuffer[byte](ctx, opencl.MemWriteOnly, cLayout.Slots(), nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, variant := range Variants() {
		// Reset the arena between variants.
		resetArena(cLayout.Groups)
		comparer, err := prog.CreateKernel(ComparerKernelName(variant))
		if err != nil {
			t.Fatal(err)
		}
		comparerArgs := []any{
			uint32(n), chrBuf, cLociBuf, mmLociBuf,
			compBuf, compIdxBuf,
			int32(gd.PatternLen), uint16(maxMM),
			cFlagsBuf, mmCountBuf, dirBuf,
			int32(cLayout.PageSlots), int32(cLayout.Pages),
			cursorBuf, countBuf, pageBuf, ovfBuf,
		}
		for i, a := range comparerArgs {
			if err := comparer.SetArg(i, a); err != nil {
				t.Fatalf("%s arg %d: %v", variant, i, err)
			}
		}
		if err := comparer.SetArgLocal(ComparerArgLocalComp, 2*gd.PatternLen); err != nil {
			t.Fatal(err)
		}
		if err := comparer.SetArgLocal(ComparerArgLocalCompIndex, 4*2*gd.PatternLen); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueNDRangeKernel(comparer, cgws, wg); err != nil {
			t.Fatalf("%s enqueue: %v", variant, err)
		}

		cgeo := readArena(cLayout.Groups, cLayout.PageSlots, cLayout.Pages)
		mmStrided := make([]uint32, cLayout.Slots())
		if _, err := opencl.EnqueueReadBuffer(q, mmLociBuf, true, 0, len(mmStrided), mmStrided); err != nil {
			t.Fatal(err)
		}
		cntStrided := make([]uint16, cLayout.Slots())
		if _, err := opencl.EnqueueReadBuffer(q, mmCountBuf, true, 0, len(cntStrided), cntStrided); err != nil {
			t.Fatal(err)
		}
		dirStrided := make([]byte, cLayout.Slots())
		if _, err := opencl.EnqueueReadBuffer(q, dirBuf, true, 0, len(dirStrided), dirStrided); err != nil {
			t.Fatal(err)
		}
		mmLoci := alloc.Gather(cgeo, mmStrided, []uint32(nil))
		mmCount := alloc.Gather(cgeo, cntStrided, []uint16(nil))
		dirs := alloc.Gather(cgeo, dirStrided, []byte(nil))
		got := make([]baseline.Hit, cgeo.Total)
		for i := range got {
			got[i] = baseline.Hit{Pos: int(mmLoci[i]), Dir: dirs[i], Mismatches: int(mmCount[i])}
		}
		sort.Slice(got, func(i, j int) bool {
			if got[i].Pos != got[j].Pos {
				return got[i].Pos < got[j].Pos
			}
			return got[i].Dir < got[j].Dir
		})
		want, err := baseline.Search(seq, []byte(patternStr), []byte(guideStr), maxMM)
		if err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(got, want) {
			t.Errorf("variant %s via OpenCL: hits = %+v, want %+v", variant, got, want)
		}
		if err := comparer.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCLSourceArgTypeErrors checks the builders reject mistyped arguments.
func TestCLSourceArgTypeErrors(t *testing.T) {
	ctx, q, prog := clEnv(t)
	finder, err := prog.CreateKernel("finder")
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadOnly, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 wants a byte buffer; give it a uint32 one.
	args := []any{
		wrong, wrong, wrong, int32(3), uint32(1),
		wrong, wrong, int32(4), int32(1),
		wrong, wrong, wrong, wrong,
	}
	for i, a := range args {
		if err := finder.SetArg(i, a); err != nil {
			t.Fatal(err)
		}
	}
	if err := finder.SetArgLocal(FinderArgLocalPat, 6); err != nil {
		t.Fatal(err)
	}
	if err := finder.SetArgLocal(FinderArgLocalPatIndex, 24); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRangeKernel(finder, 64, 64); err == nil {
		t.Error("mistyped kernel arguments accepted")
	}
}
