package kernels

import (
	"sort"
	"testing"

	"casoffinder/internal/baseline"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/opencl"
)

// clEnv builds the OpenCL object stack over one simulated device.
func clEnv(t *testing.T) (*opencl.Context, *opencl.CommandQueue, *opencl.Program) {
	t.Helper()
	p := opencl.NewPlatform("ROCm", "AMD", gpu.New(device.MI60(), gpu.WithWorkers(4)))
	devs, err := p.GetDevices(opencl.DeviceTypeGPU)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := opencl.CreateContext(devs...)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgramWithSource(CLSource())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build("-O3"); err != nil {
		t.Fatal(err)
	}
	return ctx, q, prog
}

// TestCLSourceEndToEnd runs the finder and comparer through the full OpenCL
// host path (buffers, SetArg, enqueue, read back) and checks the hits
// against the reference.
func TestCLSourceEndToEnd(t *testing.T) {
	ctx, q, prog := clEnv(t)
	seq := genome.Upper([]byte("ACCGATTACAGGTTTGATTACAAGCCGATTACAGGACGTCCTGTAATCGG"))
	const patternStr, guideStr = "NNNNNNNGG", "GATTACANN"
	const maxMM = 1

	pat, err := NewPatternPair([]byte(patternStr))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := NewPatternPair([]byte(guideStr))
	if err != nil {
		t.Fatal(err)
	}
	sites := len(seq) - pat.PatternLen + 1

	chrBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	patBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemUseConstant|opencl.MemCopyHostPtr, len(pat.Codes), pat.Codes)
	if err != nil {
		t.Fatal(err)
	}
	patIdxBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(pat.Index), pat.Index)
	if err != nil {
		t.Fatal(err)
	}
	lociBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, sites, nil)
	if err != nil {
		t.Fatal(err)
	}
	flagsBuf, err := opencl.CreateBuffer[byte](ctx, opencl.MemReadWrite, sites, nil)
	if err != nil {
		t.Fatal(err)
	}
	countBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	finder, err := prog.CreateKernel("finder")
	if err != nil {
		t.Fatal(err)
	}
	finderArgs := []any{
		chrBuf, patBuf, patIdxBuf,
		int32(pat.PatternLen), uint32(sites),
		lociBuf, flagsBuf, countBuf,
	}
	for i, a := range finderArgs {
		if err := finder.SetArg(i, a); err != nil {
			t.Fatalf("finder arg %d: %v", i, err)
		}
	}
	if err := finder.SetArgLocal(FinderArgLocalPat, 2*pat.PatternLen); err != nil {
		t.Fatal(err)
	}
	if err := finder.SetArgLocal(FinderArgLocalPatIndex, 4*2*pat.PatternLen); err != nil {
		t.Fatal(err)
	}
	gws := (sites + 63) / 64 * 64
	if _, err := q.EnqueueNDRangeKernel(finder, gws, 0); err != nil {
		t.Fatalf("finder enqueue: %v", err)
	}

	countHost := make([]uint32, 1)
	if _, err := opencl.EnqueueReadBuffer(q, countBuf, true, 0, 1, countHost); err != nil {
		t.Fatal(err)
	}
	n := int(countHost[0])
	if n == 0 {
		t.Fatal("finder found no candidate sites")
	}

	compBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(gd.Codes), gd.Codes)
	if err != nil {
		t.Fatal(err)
	}
	compIdxBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(gd.Index), gd.Index)
	if err != nil {
		t.Fatal(err)
	}
	mmLociBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemWriteOnly, 2*n, nil)
	if err != nil {
		t.Fatal(err)
	}
	mmCountBuf, err := opencl.CreateBuffer[uint16](ctx, opencl.MemWriteOnly, 2*n, nil)
	if err != nil {
		t.Fatal(err)
	}
	dirBuf, err := opencl.CreateBuffer[byte](ctx, opencl.MemWriteOnly, 2*n, nil)
	if err != nil {
		t.Fatal(err)
	}
	entryBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, variant := range Variants() {
		// Reset the entry counter between variants.
		if _, err := opencl.EnqueueWriteBuffer(q, entryBuf, true, 0, 1, []uint32{0}); err != nil {
			t.Fatal(err)
		}
		comparer, err := prog.CreateKernel(ComparerKernelName(variant))
		if err != nil {
			t.Fatal(err)
		}
		comparerArgs := []any{
			uint32(n), chrBuf, lociBuf, mmLociBuf,
			compBuf, compIdxBuf,
			int32(gd.PatternLen), uint16(maxMM),
			flagsBuf, mmCountBuf, dirBuf, entryBuf,
		}
		for i, a := range comparerArgs {
			if err := comparer.SetArg(i, a); err != nil {
				t.Fatalf("%s arg %d: %v", variant, i, err)
			}
		}
		if err := comparer.SetArgLocal(ComparerArgLocalComp, 2*gd.PatternLen); err != nil {
			t.Fatal(err)
		}
		if err := comparer.SetArgLocal(ComparerArgLocalCompIndex, 4*2*gd.PatternLen); err != nil {
			t.Fatal(err)
		}
		cgws := (n + 63) / 64 * 64
		if _, err := q.EnqueueNDRangeKernel(comparer, cgws, 64); err != nil {
			t.Fatalf("%s enqueue: %v", variant, err)
		}

		entries := make([]uint32, 1)
		if _, err := opencl.EnqueueReadBuffer(q, entryBuf, true, 0, 1, entries); err != nil {
			t.Fatal(err)
		}
		e := int(entries[0])
		mmLoci := make([]uint32, e)
		mmCount := make([]uint16, e)
		dirs := make([]byte, e)
		if _, err := opencl.EnqueueReadBuffer(q, mmLociBuf, true, 0, e, mmLoci); err != nil {
			t.Fatal(err)
		}
		if _, err := opencl.EnqueueReadBuffer(q, mmCountBuf, true, 0, e, mmCount); err != nil {
			t.Fatal(err)
		}
		if _, err := opencl.EnqueueReadBuffer(q, dirBuf, true, 0, e, dirs); err != nil {
			t.Fatal(err)
		}
		got := make([]baseline.Hit, e)
		for i := range got {
			got[i] = baseline.Hit{Pos: int(mmLoci[i]), Dir: dirs[i], Mismatches: int(mmCount[i])}
		}
		sort.Slice(got, func(i, j int) bool {
			if got[i].Pos != got[j].Pos {
				return got[i].Pos < got[j].Pos
			}
			return got[i].Dir < got[j].Dir
		})
		want, err := baseline.Search(seq, []byte(patternStr), []byte(guideStr), maxMM)
		if err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(got, want) {
			t.Errorf("variant %s via OpenCL: hits = %+v, want %+v", variant, got, want)
		}
		if err := comparer.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCLSourceArgTypeErrors checks the builders reject mistyped arguments.
func TestCLSourceArgTypeErrors(t *testing.T) {
	ctx, q, prog := clEnv(t)
	finder, err := prog.CreateKernel("finder")
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadOnly, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 wants a byte buffer; give it a uint32 one.
	args := []any{
		wrong, wrong, wrong, int32(3), uint32(1),
		wrong, wrong, wrong,
	}
	for i, a := range args {
		if err := finder.SetArg(i, a); err != nil {
			t.Fatal(err)
		}
	}
	if err := finder.SetArgLocal(FinderArgLocalPat, 6); err != nil {
		t.Fatal(err)
	}
	if err := finder.SetArgLocal(FinderArgLocalPatIndex, 24); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRangeKernel(finder, 64, 64); err == nil {
		t.Error("mistyped kernel arguments accepted")
	}
}
