package kernels

import (
	"errors"
	"fmt"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu/alloc"
)

// Flag values written by the finder and consumed by the comparer: which
// strand(s) of a candidate site carry the PAM.
const (
	// FlagBoth marks a site whose PAM matches on both strands.
	FlagBoth byte = 0
	// FlagForward marks a forward-strand (+) PAM match.
	FlagForward byte = 1
	// FlagReverse marks a reverse-strand (-) PAM match.
	FlagReverse byte = 2
)

// Directions reported per off-target entry.
const (
	DirForward byte = '+'
	DirReverse byte = '-'
)

// ErrBadPattern marks a pattern the host-side preparation rejects.
var ErrBadPattern = errors.New("kernels: invalid pattern")

// PatternPair is the host-prepared device view of one search or comparison
// pattern: the forward pattern and its reverse complement, each of length
// PatternLen, concatenated ("plen × 2 ... two patterns" in §IV.B), plus the
// -1-terminated index arrays listing the non-N positions the kernels
// actually test.
type PatternPair struct {
	// Codes holds 2*PatternLen IUPAC codes: forward in [0, PatternLen),
	// reverse complement in [PatternLen, 2*PatternLen).
	Codes []byte
	// Index holds 2*PatternLen entries; Index[0:PatternLen] lists the
	// positions of non-N forward codes terminated by -1, likewise
	// Index[PatternLen:] for the reverse complement.
	Index []int32
	// PatternLen is the length of one pattern.
	PatternLen int
}

// NewPatternPair uppercases and validates pattern, builds its reverse
// complement, and derives both index arrays.
func NewPatternPair(pattern []byte) (*PatternPair, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadPattern)
	}
	fwd := genome.Upper(pattern)
	if err := genome.Validate(fwd); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPattern, err)
	}
	plen := len(fwd)
	rev := genome.ReverseComplemented(fwd)
	p := &PatternPair{
		Codes:      make([]byte, 2*plen),
		Index:      make([]int32, 2*plen),
		PatternLen: plen,
	}
	copy(p.Codes[:plen], fwd)
	copy(p.Codes[plen:], rev)
	fillIndex := func(dst []int32, codes []byte) {
		n := 0
		for i, c := range codes {
			if c != 'N' {
				dst[n] = int32(i)
				n++
			}
		}
		if n < len(dst) {
			dst[n] = -1
		}
	}
	fillIndex(p.Index[:plen], fwd)
	fillIndex(p.Index[plen:], rev)
	return p, nil
}

// LocalBytes returns the shared-local-memory footprint of staging the codes
// and index arrays per work-group, for occupancy accounting.
func (p *PatternPair) LocalBytes() int {
	return len(p.Codes) + 4*len(p.Index)
}

// validateArena checks the output arena bound into a kernel launch against
// the data arrays it indexes: outs holds the length of every page-strided
// entry array, which must cover every provisioned slot.
func validateArena(kernel string, a *alloc.Device, outs ...int) error {
	switch {
	case a == nil:
		return fmt.Errorf("kernels: %s: nil output arena", kernel)
	case a.PageSlots < 1:
		return fmt.Errorf("kernels: %s: arena page of %d slots", kernel, a.PageSlots)
	case a.Pages < 1:
		return fmt.Errorf("kernels: %s: arena of %d pages", kernel, a.Pages)
	case a.Cursor == nil || a.Overflow == nil:
		return fmt.Errorf("kernels: %s: arena missing cursor or overflow counter", kernel)
	case len(a.Count) < 1 || len(a.PageOf) != len(a.Count):
		return fmt.Errorf("kernels: %s: arena group tables of %d counters and %d pages",
			kernel, len(a.Count), len(a.PageOf))
	}
	slots := a.Pages * a.PageSlots
	for _, n := range outs {
		if n < slots {
			return fmt.Errorf("kernels: %s: output array of %d smaller than the %d arena slots", kernel, n, slots)
		}
	}
	return nil
}

// FinderArgs are the arguments of the finder kernel: it scans every
// candidate position of a chunk for the PAM pattern and compacts matching
// loci (and their strand flags) into pages of the output arena, claimed
// per work-group through the arena's atomic page cursor.
type FinderArgs struct {
	// Chr is the chunk sequence, body plus overlap. Soft-masked lower-case
	// bases are accepted; the IUPAC match tables fold case.
	Chr []byte
	// Pattern is the PAM search pattern pair.
	Pattern *PatternPair
	// Sites is the number of candidate site starts (the chunk body).
	Sites int
	// Loci receives the matching positions, page-strided by the arena;
	// capacity must cover every provisioned arena slot.
	Loci []uint32
	// Flags receives the strand flag per matching position, parallel to
	// Loci.
	Flags []byte
	// Arena is the output sub-allocator: work-items claim one slot per
	// emitted entry; exhaustion is counted in Arena.Overflow and the host
	// grows and relaunches.
	Arena *alloc.Device
}

func (a *FinderArgs) validate() error {
	switch {
	case a.Pattern == nil:
		return errors.New("kernels: finder: nil pattern")
	case a.Sites < 0 || a.Sites+a.Pattern.PatternLen-1 > len(a.Chr):
		return fmt.Errorf("kernels: finder: %d sites of length %d exceed chunk of %d",
			a.Sites, a.Pattern.PatternLen, len(a.Chr))
	}
	return validateArena("finder", a.Arena, len(a.Loci), len(a.Flags))
}

// ComparerArgs are the arguments of the comparer kernel (Listing 1): for
// each candidate locus it counts mismatches between the guide pattern and
// the reference, on the strands the finder flagged, and compacts entries
// whose mismatch count is within the threshold.
type ComparerArgs struct {
	// Chr is the chunk sequence the loci index into.
	Chr []byte
	// Loci are the candidate positions produced by the finder.
	Loci []uint32
	// Flags are the strand flags parallel to Loci.
	Flags []byte
	// LociCount is the number of valid entries in Loci/Flags.
	LociCount uint32
	// Guide is the guide comparison pattern pair ("comp"/"comp_index").
	Guide *PatternPair
	// Threshold is the maximum mismatch count reported.
	Threshold uint16
	// MMLoci, MMCount and Direction receive one entry per reported site,
	// page-strided by the arena; capacity must cover every provisioned
	// arena slot.
	MMLoci    []uint32
	MMCount   []uint16
	Direction []byte
	// Arena is the output sub-allocator replacing the flat "entrycount"
	// cursor of Listing 1: work-items claim one slot per passing entry.
	Arena *alloc.Device
}

func (a *ComparerArgs) validate() error {
	switch {
	case a.Guide == nil:
		return errors.New("kernels: comparer: nil guide")
	case int(a.LociCount) > len(a.Loci) || int(a.LociCount) > len(a.Flags):
		return fmt.Errorf("kernels: comparer: count %d exceeds loci arrays", a.LociCount)
	}
	return validateArena("comparer", a.Arena, len(a.MMLoci), len(a.MMCount), len(a.Direction))
}
