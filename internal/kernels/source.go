package kernels

import (
	"fmt"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/alloc"
	"casoffinder/internal/opencl"
)

// Argument-slot helpers for the OpenCL builder functions.

func memSlice[T any](args []any, i int) ([]T, error) {
	m, ok := args[i].(*opencl.Mem)
	if !ok {
		return nil, fmt.Errorf("kernels: argument %d: want *opencl.Mem, got %T", i, args[i])
	}
	s, err := opencl.Slice[T](m)
	if err != nil {
		return nil, fmt.Errorf("kernels: argument %d: %w", i, err)
	}
	return s, nil
}

func scalar[T any](args []any, i int) (T, error) {
	v, ok := args[i].(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("kernels: argument %d: want %T, got %T", i, zero, args[i])
	}
	return v, nil
}

func localSlots(args []any, i int, elemBytes int) (int, error) {
	l, ok := args[i].(gpu.LocalArg)
	if !ok {
		return 0, fmt.Errorf("kernels: argument %d: want __local size, got %T", i, args[i])
	}
	if l.Bytes%elemBytes != 0 {
		return 0, fmt.Errorf("kernels: argument %d: local size %d not a multiple of %d", i, l.Bytes, elemBytes)
	}
	return l.Bytes / elemBytes, nil
}

// Finder argument-slot order for the OpenCL frontend, following the kernel
// signature of Table VI with the flat count buffer replaced by the output
// arena's state (page geometry scalars, page cursor, per-group counters and
// page table, overflow counter).
const (
	FinderArgChr = iota
	FinderArgPat
	FinderArgPatIndex
	FinderArgPatternLen
	FinderArgSites
	FinderArgLoci
	FinderArgFlags
	FinderArgPageSlots
	FinderArgPages
	FinderArgPageCursor
	FinderArgGroupCount
	FinderArgGroupPage
	FinderArgOverflow
	FinderArgLocalPat
	FinderArgLocalPatIndex
	finderNumArgs
)

// Comparer argument-slot order for the OpenCL frontend, following the
// signature of Listing 1 with the "entrycount" cursor replaced by the
// output arena's state.
const (
	ComparerArgLociCount = iota
	ComparerArgChr
	ComparerArgLoci
	ComparerArgMMLoci
	ComparerArgComp
	ComparerArgCompIndex
	ComparerArgPatternLen
	ComparerArgThreshold
	ComparerArgFlags
	ComparerArgMMCount
	ComparerArgDirection
	ComparerArgPageSlots
	ComparerArgPages
	ComparerArgPageCursor
	ComparerArgGroupCount
	ComparerArgGroupPage
	ComparerArgOverflow
	ComparerArgLocalComp
	ComparerArgLocalCompIndex
	comparerNumArgs
)

// arenaSlots parses the six arena argument slots starting at base: the
// page-size and page-count scalars, then the cursor, group-counter,
// group-page and overflow buffers.
func arenaSlots(kernel string, args []any, base int) (*alloc.Device, error) {
	pageSlots, err := scalar[int32](args, base)
	if err != nil {
		return nil, err
	}
	pages, err := scalar[int32](args, base+1)
	if err != nil {
		return nil, err
	}
	cursor, err := memSlice[uint32](args, base+2)
	if err != nil {
		return nil, err
	}
	count, err := memSlice[uint32](args, base+3)
	if err != nil {
		return nil, err
	}
	pageOf, err := memSlice[uint32](args, base+4)
	if err != nil {
		return nil, err
	}
	overflow, err := memSlice[uint32](args, base+5)
	if err != nil {
		return nil, err
	}
	if len(cursor) < 1 || len(overflow) < 1 {
		return nil, fmt.Errorf("kernels: %s: empty arena cursor or overflow buffer", kernel)
	}
	return &alloc.Device{
		PageSlots: int(pageSlots),
		Pages:     int(pages),
		Cursor:    &cursor[0],
		Count:     count,
		PageOf:    pageOf,
		Overflow:  &overflow[0],
	}, nil
}

// ComparerKernelName returns the registry name of a comparer variant
// ("comparer" for the baseline, "comparer_optN" for the optimizations).
func ComparerKernelName(v ComparerVariant) string {
	if v == Base {
		return "comparer"
	}
	return "comparer_" + v.String()
}

// CLSource returns the OpenCL program source registry holding the finder
// and every comparer variant, keyed by kernel name. It is the argument to
// Context.CreateProgramWithSource, standing in for the application's
// OpenCL C source string. Every kernel carries both contracts: the legacy
// goroutine-per-item Build and the cooperative BuildPhases the frontend
// prefers.
func CLSource() opencl.Source {
	src := opencl.Source{
		"finder": {
			NumArgs:     finderNumArgs,
			Build:       buildFinder,
			BuildPhases: buildFinderPhases,
		},
	}
	for _, v := range AllVariants() {
		src[ComparerKernelName(v)] = opencl.KernelBuilder{
			NumArgs:     comparerNumArgs,
			Build:       buildComparer(v),
			BuildPhases: buildComparerPhases(v),
		}
	}
	return src
}

// finderSlots parses and validates the finder's bound argument slots,
// returning the kernel arguments and the element counts of the two local
// staging arrays.
func finderSlots(args []any) (fa *FinderArgs, lPatN, lIdxN int, err error) {
	chr, err := memSlice[byte](args, FinderArgChr)
	if err != nil {
		return nil, 0, 0, err
	}
	pat, err := memSlice[byte](args, FinderArgPat)
	if err != nil {
		return nil, 0, 0, err
	}
	patIndex, err := memSlice[int32](args, FinderArgPatIndex)
	if err != nil {
		return nil, 0, 0, err
	}
	plen, err := scalar[int32](args, FinderArgPatternLen)
	if err != nil {
		return nil, 0, 0, err
	}
	sites, err := scalar[uint32](args, FinderArgSites)
	if err != nil {
		return nil, 0, 0, err
	}
	loci, err := memSlice[uint32](args, FinderArgLoci)
	if err != nil {
		return nil, 0, 0, err
	}
	flags, err := memSlice[byte](args, FinderArgFlags)
	if err != nil {
		return nil, 0, 0, err
	}
	arena, err := arenaSlots("finder", args, FinderArgPageSlots)
	if err != nil {
		return nil, 0, 0, err
	}
	lPatN, err = localSlots(args, FinderArgLocalPat, 1)
	if err != nil {
		return nil, 0, 0, err
	}
	lIdxN, err = localSlots(args, FinderArgLocalPatIndex, 4)
	if err != nil {
		return nil, 0, 0, err
	}
	fa = &FinderArgs{
		Chr: chr,
		Pattern: &PatternPair{
			Codes:      pat,
			Index:      patIndex,
			PatternLen: int(plen),
		},
		Sites: int(sites),
		Loci:  loci,
		Flags: flags,
		Arena: arena,
	}
	if err := fa.validate(); err != nil {
		return nil, 0, 0, err
	}
	return fa, lPatN, lIdxN, nil
}

func buildFinder(args []any) (gpu.GroupKernel, error) {
	fa, lPatN, lIdxN, err := finderSlots(args)
	if err != nil {
		return nil, err
	}
	return func(g *gpu.Group) gpu.WorkItemFunc {
		lPat := make([]byte, lPatN)
		lPatIndex := make([]int32, lIdxN)
		return func(it *gpu.Item) {
			Finder(it, fa, lPat, lPatIndex)
		}
	}, nil
}

func buildFinderPhases(args []any) (gpu.PhaseKernel, error) {
	fa, lPatN, lIdxN, err := finderSlots(args)
	if err != nil {
		return nil, err
	}
	return func(g *gpu.Group) []gpu.WorkItemFunc {
		// Allocated once per worker and reused across groups; FinderStage
		// overwrites the staging arrays before FinderScan reads them.
		lPat := make([]byte, lPatN)
		lPatIndex := make([]int32, lIdxN)
		return []gpu.WorkItemFunc{
			func(it *gpu.Item) { FinderStage(it, fa, lPat, lPatIndex) },
			func(it *gpu.Item) { FinderScan(it, fa, lPat, lPatIndex) },
		}
	}, nil
}

// comparerSlots parses and validates the comparer's bound argument slots,
// returning the kernel arguments and the element counts of the two local
// staging arrays.
func comparerSlots(args []any) (ca *ComparerArgs, lCompN, lIdxN int, err error) {
	lociCount, err := scalar[uint32](args, ComparerArgLociCount)
	if err != nil {
		return nil, 0, 0, err
	}
	chr, err := memSlice[byte](args, ComparerArgChr)
	if err != nil {
		return nil, 0, 0, err
	}
	loci, err := memSlice[uint32](args, ComparerArgLoci)
	if err != nil {
		return nil, 0, 0, err
	}
	mmLoci, err := memSlice[uint32](args, ComparerArgMMLoci)
	if err != nil {
		return nil, 0, 0, err
	}
	comp, err := memSlice[byte](args, ComparerArgComp)
	if err != nil {
		return nil, 0, 0, err
	}
	compIndex, err := memSlice[int32](args, ComparerArgCompIndex)
	if err != nil {
		return nil, 0, 0, err
	}
	plen, err := scalar[int32](args, ComparerArgPatternLen)
	if err != nil {
		return nil, 0, 0, err
	}
	threshold, err := scalar[uint16](args, ComparerArgThreshold)
	if err != nil {
		return nil, 0, 0, err
	}
	flags, err := memSlice[byte](args, ComparerArgFlags)
	if err != nil {
		return nil, 0, 0, err
	}
	mmCount, err := memSlice[uint16](args, ComparerArgMMCount)
	if err != nil {
		return nil, 0, 0, err
	}
	direction, err := memSlice[byte](args, ComparerArgDirection)
	if err != nil {
		return nil, 0, 0, err
	}
	arena, err := arenaSlots("comparer", args, ComparerArgPageSlots)
	if err != nil {
		return nil, 0, 0, err
	}
	lCompN, err = localSlots(args, ComparerArgLocalComp, 1)
	if err != nil {
		return nil, 0, 0, err
	}
	lIdxN, err = localSlots(args, ComparerArgLocalCompIndex, 4)
	if err != nil {
		return nil, 0, 0, err
	}
	ca = &ComparerArgs{
		Chr:       chr,
		Loci:      loci,
		Flags:     flags,
		LociCount: lociCount,
		Guide: &PatternPair{
			Codes:      comp,
			Index:      compIndex,
			PatternLen: int(plen),
		},
		Threshold: threshold,
		MMLoci:    mmLoci,
		MMCount:   mmCount,
		Direction: direction,
		Arena:     arena,
	}
	if err := ca.validate(); err != nil {
		return nil, 0, 0, err
	}
	return ca, lCompN, lIdxN, nil
}

func buildComparer(v ComparerVariant) func(args []any) (gpu.GroupKernel, error) {
	return func(args []any) (gpu.GroupKernel, error) {
		ca, lCompN, lIdxN, err := comparerSlots(args)
		if err != nil {
			return nil, err
		}
		body := Comparer(v)
		return func(g *gpu.Group) gpu.WorkItemFunc {
			lComp := make([]byte, lCompN)
			lCompIndex := make([]int32, lIdxN)
			return func(it *gpu.Item) {
				body(it, ca, lComp, lCompIndex)
			}
		}, nil
	}
}

func buildComparerPhases(v ComparerVariant) func(args []any) (gpu.PhaseKernel, error) {
	return func(args []any) (gpu.PhaseKernel, error) {
		ca, lCompN, lIdxN, err := comparerSlots(args)
		if err != nil {
			return nil, err
		}
		phases := ComparerPhases(v)
		return func(g *gpu.Group) []gpu.WorkItemFunc {
			// Allocated once per worker and reused across groups; the stage
			// phase overwrites both arrays before the compare phase reads.
			lComp := make([]byte, lCompN)
			lCompIndex := make([]int32, lIdxN)
			return []gpu.WorkItemFunc{
				func(it *gpu.Item) { phases[0](it, ca, lComp, lCompIndex) },
				func(it *gpu.Item) { phases[1](it, ca, lComp, lCompIndex) },
			}
		}, nil
	}
}
