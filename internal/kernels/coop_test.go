package kernels

import (
	"math/rand"
	"sort"
	"testing"

	"casoffinder/internal/baseline"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/alloc"
	"casoffinder/internal/gpu/device"
)

// runPipelinePhases is runPipeline's cooperative twin: the finder and the
// comparer launch through the phase contract (LaunchSpec.Phases), with the
// local staging arrays allocated once per worker and the implicit
// inter-phase barrier replacing Item.Barrier.
func runPipelinePhases(t *testing.T, dev *gpu.Device, seq []byte, pattern, guide string, maxMM int, v ComparerVariant, wg int) ([]baseline.Hit, *gpu.Stats, *gpu.Stats) {
	t.Helper()
	pat, err := NewPatternPair([]byte(pattern))
	if err != nil {
		t.Fatalf("pattern: %v", err)
	}
	gd, err := NewPatternPair([]byte(guide))
	if err != nil {
		t.Fatalf("guide: %v", err)
	}
	chr := seq // cooperative path scans in place; tables fold case
	sites := len(chr) - pat.PatternLen + 1
	if sites < 0 {
		sites = 0
	}

	gws := (sites + wg - 1) / wg * wg
	if gws == 0 {
		gws = wg
	}
	farena := alloc.NewHost(alloc.WorstCase(gws/wg, wg))
	fa := &FinderArgs{
		Chr:     chr,
		Pattern: pat,
		Sites:   sites,
		Loci:    make([]uint32, farena.Layout.Slots()),
		Flags:   make([]byte, farena.Layout.Slots()),
		Arena:   farena.Device(),
	}
	fStats, err := dev.Launch(gpu.LaunchSpec{
		Name:   "finder",
		Global: gpu.R1(gws),
		Local:  gpu.R1(wg),
		Phases: func(g *gpu.Group) []gpu.WorkItemFunc {
			lPat := make([]byte, 2*pat.PatternLen)
			lIdx := make([]int32, 2*pat.PatternLen)
			return []gpu.WorkItemFunc{
				func(it *gpu.Item) { FinderStage(it, fa, lPat, lIdx) },
				func(it *gpu.Item) { FinderScan(it, fa, lPat, lIdx) },
			}
		},
	})
	if err != nil {
		t.Fatalf("finder phases launch: %v", err)
	}
	fgeo, err := farena.Decode()
	if err != nil {
		t.Fatalf("finder arena decode: %v", err)
	}
	loci := alloc.Gather(fgeo, fa.Loci, []uint32(nil))
	flags := alloc.Gather(fgeo, fa.Flags, []byte(nil))
	count := uint32(fgeo.Total)

	cgws := (int(count) + wg - 1) / wg * wg
	if cgws == 0 {
		cgws = wg
	}
	carena := alloc.NewHost(alloc.WorstCase(cgws/wg, 2*wg))
	ca := &ComparerArgs{
		Chr:       chr,
		Loci:      loci,
		Flags:     flags,
		LociCount: count,
		Guide:     gd,
		Threshold: uint16(maxMM),
		MMLoci:    make([]uint32, carena.Layout.Slots()),
		MMCount:   make([]uint16, carena.Layout.Slots()),
		Direction: make([]byte, carena.Layout.Slots()),
		Arena:     carena.Device(),
	}
	phases := ComparerPhases(v)
	cStats, err := dev.Launch(gpu.LaunchSpec{
		Name:   ComparerKernelName(v),
		Global: gpu.R1(cgws),
		Local:  gpu.R1(wg),
		Phases: func(g *gpu.Group) []gpu.WorkItemFunc {
			lComp := make([]byte, 2*gd.PatternLen)
			lIdx := make([]int32, 2*gd.PatternLen)
			return []gpu.WorkItemFunc{
				func(it *gpu.Item) { phases[0](it, ca, lComp, lIdx) },
				func(it *gpu.Item) { phases[1](it, ca, lComp, lIdx) },
			}
		},
	})
	if err != nil {
		t.Fatalf("comparer phases launch: %v", err)
	}
	cgeo, err := carena.Decode()
	if err != nil {
		t.Fatalf("comparer arena decode: %v", err)
	}
	mmLoci := alloc.Gather(cgeo, ca.MMLoci, []uint32(nil))
	mmCount := alloc.Gather(cgeo, ca.MMCount, []uint16(nil))
	dirs := alloc.Gather(cgeo, ca.Direction, []byte(nil))

	hits := make([]baseline.Hit, 0, cgeo.Total)
	for i := 0; i < cgeo.Total; i++ {
		hits = append(hits, baseline.Hit{
			Pos:        int(mmLoci[i]),
			Dir:        dirs[i],
			Mismatches: int(mmCount[i]),
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Pos != hits[j].Pos {
			return hits[i].Pos < hits[j].Pos
		}
		return hits[i].Dir < hits[j].Dir
	})
	return hits, fStats, cStats
}

// TestCooperativeMatchesLegacy is the scheduler-equivalence property: for
// the finder and every comparer variant, the cooperative phase-split launch
// must produce exactly the hits of the legacy goroutine-per-item launch,
// with identical Stats — barrier executions included, because the timing
// model prices launches off those counters. The workload exercises the
// barrier-dependent LDS staging (leader or cooperative fetch, depending on
// the variant).
func TestCooperativeMatchesLegacy(t *testing.T) {
	dev := gpu.New(device.MI100(), gpu.WithWorkers(4))
	rng := rand.New(rand.NewSource(99))
	seq := make([]byte, 8192)
	alphabet := []byte("ACGTacgtACGTN")
	for i := range seq {
		seq[i] = alphabet[rng.Intn(len(alphabet))]
	}
	const pattern, guide = "NNNNNNNNNNNNNNNNNNNNNGG", "GGCCGACCTGTCGCTGACGCNNN"
	site := []byte("GGCCGACCTGTCGCTGACGCTGG")
	for s := 0; s < 16; s++ {
		mutated := append([]byte(nil), site...)
		for m := 0; m < s%5; m++ {
			mutated[rng.Intn(20)] = "ACGT"[rng.Intn(4)]
		}
		copy(seq[128+s*480:], mutated)
	}
	for _, v := range Variants() {
		t.Run(v.String(), func(t *testing.T) {
			wantHits, wantF, wantC := runPipeline(t, dev, seq, pattern, guide, 4, v, 64)
			gotHits, gotF, gotC := runPipelinePhases(t, dev, seq, pattern, guide, 4, v, 64)
			if len(wantHits) == 0 {
				t.Fatal("workload should produce hits")
			}
			if !hitsEqual(gotHits, wantHits) {
				t.Errorf("cooperative hits diverge: got %d, want %d", len(gotHits), len(wantHits))
			}
			if *gotF != *wantF {
				t.Errorf("finder stats diverge:\ncoop   = %+v\nlegacy = %+v", *gotF, *wantF)
			}
			if *gotC != *wantC {
				t.Errorf("comparer %s stats diverge:\ncoop   = %+v\nlegacy = %+v", v, *gotC, *wantC)
			}
		})
	}
}
