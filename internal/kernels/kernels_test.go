package kernels

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"casoffinder/internal/baseline"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/alloc"
	"casoffinder/internal/gpu/device"
)

func TestNewPatternPair(t *testing.T) {
	p, err := NewPatternPair([]byte("NNAGGn"))
	if err != nil {
		t.Fatalf("NewPatternPair: %v", err)
	}
	if p.PatternLen != 6 {
		t.Fatalf("PatternLen = %d", p.PatternLen)
	}
	if string(p.Codes[:6]) != "NNAGGN" {
		t.Errorf("forward codes = %q", p.Codes[:6])
	}
	if string(p.Codes[6:]) != "NCCTNN" {
		t.Errorf("reverse codes = %q", p.Codes[6:])
	}
	// Forward non-N positions: 2, 3, 4 then -1.
	wantFwd := []int32{2, 3, 4, -1}
	for i, w := range wantFwd {
		if p.Index[i] != w {
			t.Errorf("fwd index[%d] = %d, want %d", i, p.Index[i], w)
		}
	}
	// Reverse non-N positions: 1, 2, 3 then -1.
	wantRev := []int32{1, 2, 3, -1}
	for i, w := range wantRev {
		if p.Index[6+i] != w {
			t.Errorf("rev index[%d] = %d, want %d", i, p.Index[6+i], w)
		}
	}
	if p.LocalBytes() != 12+4*12 {
		t.Errorf("LocalBytes = %d", p.LocalBytes())
	}
}

func TestNewPatternPairAllN(t *testing.T) {
	p, err := NewPatternPair([]byte("NNN"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Index[0] != -1 || p.Index[3] != -1 {
		t.Error("all-N pattern should have empty index arrays")
	}
}

func TestNewPatternPairErrors(t *testing.T) {
	if _, err := NewPatternPair(nil); err == nil {
		t.Error("empty pattern = nil error")
	}
	if _, err := NewPatternPair([]byte("ACX")); err == nil {
		t.Error("invalid code = nil error")
	}
}

func TestVariantNames(t *testing.T) {
	want := []string{"base", "opt1", "opt2", "opt3", "opt4"}
	for i, v := range Variants() {
		if v.String() != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v, want[i])
		}
	}
	if ComparerKernelName(Base) != "comparer" {
		t.Errorf("ComparerKernelName(Base) = %q", ComparerKernelName(Base))
	}
	if ComparerKernelName(Opt3) != "comparer_opt3" {
		t.Errorf("ComparerKernelName(Opt3) = %q", ComparerKernelName(Opt3))
	}
	if Base.CooperativeFetch() || Opt2.CooperativeFetch() {
		t.Error("base/opt2 should not report cooperative fetch")
	}
	if !Opt3.CooperativeFetch() || !Opt4.CooperativeFetch() {
		t.Error("opt3/opt4 should report cooperative fetch")
	}
}

// runPipeline executes the finder then the given comparer variant on one
// chunk through the raw simulator, returning sorted hits.
func runPipeline(t *testing.T, dev *gpu.Device, seq []byte, pattern, guide string, maxMM int, v ComparerVariant, wg int) ([]baseline.Hit, *gpu.Stats, *gpu.Stats) {
	t.Helper()
	pat, err := NewPatternPair([]byte(pattern))
	if err != nil {
		t.Fatalf("pattern: %v", err)
	}
	gd, err := NewPatternPair([]byte(guide))
	if err != nil {
		t.Fatalf("guide: %v", err)
	}
	chr := genome.Upper(seq)
	sites := len(chr) - pat.PatternLen + 1
	if sites < 0 {
		sites = 0
	}

	gws := (sites + wg - 1) / wg * wg
	if gws == 0 {
		gws = wg
	}
	farena := alloc.NewHost(alloc.WorstCase(gws/wg, wg))
	fa := &FinderArgs{
		Chr:     chr,
		Pattern: pat,
		Sites:   sites,
		Loci:    make([]uint32, farena.Layout.Slots()),
		Flags:   make([]byte, farena.Layout.Slots()),
		Arena:   farena.Device(),
	}
	if err := fa.validate(); err != nil {
		t.Fatalf("finder args: %v", err)
	}
	fStats, err := dev.Launch(gpu.LaunchSpec{
		Name:   "finder",
		Global: gpu.R1(gws),
		Local:  gpu.R1(wg),
		Kernel: func(g *gpu.Group) gpu.WorkItemFunc {
			lPat := make([]byte, 2*pat.PatternLen)
			lIdx := make([]int32, 2*pat.PatternLen)
			return func(it *gpu.Item) { Finder(it, fa, lPat, lIdx) }
		},
	})
	if err != nil {
		t.Fatalf("finder launch: %v", err)
	}
	if farena.Overflow[0] != 0 {
		t.Fatalf("worst-case finder arena overflowed %d entries", farena.Overflow[0])
	}
	fgeo, err := farena.Decode()
	if err != nil {
		t.Fatalf("finder arena decode: %v", err)
	}
	loci := alloc.Gather(fgeo, fa.Loci, []uint32(nil))
	flags := alloc.Gather(fgeo, fa.Flags, []byte(nil))
	count := uint32(fgeo.Total)

	cgws := (int(count) + wg - 1) / wg * wg
	if cgws == 0 {
		cgws = wg
	}
	carena := alloc.NewHost(alloc.WorstCase(cgws/wg, 2*wg))
	ca := &ComparerArgs{
		Chr:       chr,
		Loci:      loci,
		Flags:     flags,
		LociCount: count,
		Guide:     gd,
		Threshold: uint16(maxMM),
		MMLoci:    make([]uint32, carena.Layout.Slots()),
		MMCount:   make([]uint16, carena.Layout.Slots()),
		Direction: make([]byte, carena.Layout.Slots()),
		Arena:     carena.Device(),
	}
	if err := ca.validate(); err != nil {
		t.Fatalf("comparer args: %v", err)
	}
	body := Comparer(v)
	cStats, err := dev.Launch(gpu.LaunchSpec{
		Name:   ComparerKernelName(v),
		Global: gpu.R1(cgws),
		Local:  gpu.R1(wg),
		Kernel: func(g *gpu.Group) gpu.WorkItemFunc {
			lComp := make([]byte, 2*gd.PatternLen)
			lIdx := make([]int32, 2*gd.PatternLen)
			return func(it *gpu.Item) { body(it, ca, lComp, lIdx) }
		},
	})
	if err != nil {
		t.Fatalf("comparer launch: %v", err)
	}
	if carena.Overflow[0] != 0 {
		t.Fatalf("worst-case comparer arena overflowed %d entries", carena.Overflow[0])
	}
	cgeo, err := carena.Decode()
	if err != nil {
		t.Fatalf("comparer arena decode: %v", err)
	}
	mmLoci := alloc.Gather(cgeo, ca.MMLoci, []uint32(nil))
	mmCount := alloc.Gather(cgeo, ca.MMCount, []uint16(nil))
	dirs := alloc.Gather(cgeo, ca.Direction, []byte(nil))

	hits := make([]baseline.Hit, 0, cgeo.Total)
	for i := 0; i < cgeo.Total; i++ {
		hits = append(hits, baseline.Hit{
			Pos:        int(mmLoci[i]),
			Dir:        dirs[i],
			Mismatches: int(mmCount[i]),
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Pos != hits[j].Pos {
			return hits[i].Pos < hits[j].Pos
		}
		return hits[i].Dir < hits[j].Dir
	})
	return hits, fStats, cStats
}

func hitsEqual(a, b []baseline.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPipelineMatchesBaseline(t *testing.T) {
	dev := gpu.New(device.MI60(), gpu.WithWorkers(4))
	seq := []byte("ACCGATTACAGGTTTGATTACAAGCCNNGATTACAGGACGTCCTGTAATCGG")
	const pattern, guide = "NNNNNNNGG", "GATTACANN"
	want, err := baseline.Search(genome.Upper(seq), []byte(pattern), []byte(guide), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test sequence should produce baseline hits")
	}
	got, _, _ := runPipeline(t, dev, seq, pattern, guide, 1, Base, 16)
	if !hitsEqual(got, want) {
		t.Errorf("pipeline hits = %+v, want %+v", got, want)
	}
}

// TestVariantsFunctionallyIdentical verifies the paper's premise that the
// optimizations do not change results: every comparer variant returns the
// same hits on a randomized genome.
func TestVariantsFunctionallyIdentical(t *testing.T) {
	dev := gpu.New(device.MI100(), gpu.WithWorkers(4))
	rng := rand.New(rand.NewSource(42))
	seq := make([]byte, 4096)
	alphabet := []byte("ACGTACGTACGTACGTN") // mostly concrete, some N
	for i := range seq {
		seq[i] = alphabet[rng.Intn(len(alphabet))]
	}
	const pattern, guide = "NNNNNNNNNNNNNNNNNNNNNGG", "GGCCGACCTGTCGCTGACGCNNN"
	// Plant approximate sites: the guide with 0-4 mutations plus an NGG PAM,
	// on both strands.
	site := []byte("GGCCGACCTGTCGCTGACGCTGG")
	for s := 0; s < 12; s++ {
		mutated := append([]byte(nil), site...)
		for m := 0; m < s%5; m++ {
			mutated[rng.Intn(20)] = "ACGT"[rng.Intn(4)]
		}
		if s%3 == 0 {
			genome.ReverseComplement(mutated)
		}
		copy(seq[64+s*320:], mutated)
	}
	ref, _, _ := runPipeline(t, dev, seq, pattern, guide, 4, Base, 64)
	if len(ref) == 0 {
		t.Fatal("expected hits from the randomized genome")
	}
	for _, v := range Variants()[1:] {
		got, _, _ := runPipeline(t, dev, seq, pattern, guide, 4, v, 64)
		if !hitsEqual(got, ref) {
			t.Errorf("variant %s: %d hits != base %d hits", v, len(got), len(ref))
		}
	}
}

// TestPipelinePropertyVsBaseline is the main correctness property: for
// random genomes, guides and thresholds, the two-kernel pipeline agrees
// with the naive reference, for every variant.
func TestPipelinePropertyVsBaseline(t *testing.T) {
	dev := gpu.New(device.RadeonVII(), gpu.WithWorkers(4))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(900)
		seq := make([]byte, n)
		alphabet := []byte("ACGTacgtN")
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		glen := 4 + rng.Intn(8)
		pam := []byte{"ACGTRYN"[rng.Intn(7)], 'G', 'G'}[:1+rng.Intn(2)]
		pattern := make([]byte, glen+len(pam))
		guide := make([]byte, glen+len(pam))
		for i := 0; i < glen; i++ {
			pattern[i] = 'N'
			guide[i] = "ACGT"[rng.Intn(4)]
		}
		for i, c := range pam {
			pattern[glen+i] = c
			guide[glen+i] = 'N'
		}
		maxMM := rng.Intn(4)
		want, err := baseline.Search(genome.Upper(seq), pattern, guide, maxMM)
		if err != nil {
			return false
		}
		v := Variants()[rng.Intn(len(Variants()))]
		got, _, _ := runPipeline(t, dev, seq, string(pattern), string(guide), maxMM, v, 32)
		return hitsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVariantTrafficOrdering pins the cost model: each optimization must
// reduce the traffic it targets, matching the paper's description of
// opt1 (fewer aliasing reloads), opt2 (registered global reads), and
// opt4 (registered LDS reads).
func TestVariantTrafficOrdering(t *testing.T) {
	dev := gpu.New(device.MI60(), gpu.WithWorkers(4))
	rng := rand.New(rand.NewSource(7))
	seq := make([]byte, 8192)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	const pattern, guide = "NNNNNNNNNNNNNNNNNNNNNGG", "GGCCGACCTGTCGCTGACGCNNN"
	stats := make(map[ComparerVariant]*gpu.Stats)
	for _, v := range Variants() {
		_, _, cs := runPipeline(t, dev, seq, pattern, guide, 4, v, 64)
		stats[v] = cs
	}
	// Global load ops strictly decrease base -> opt1 -> opt2; opt2 == opt3
	// (cooperative fetch moves the same loads, it does not remove them).
	if !(stats[Base].GlobalLoadOps > stats[Opt1].GlobalLoadOps) {
		t.Errorf("opt1 should cut global loads: base %d, opt1 %d",
			stats[Base].GlobalLoadOps, stats[Opt1].GlobalLoadOps)
	}
	if !(stats[Opt1].GlobalLoadOps > stats[Opt2].GlobalLoadOps) {
		t.Errorf("opt2 should cut global loads: opt1 %d, opt2 %d",
			stats[Opt1].GlobalLoadOps, stats[Opt2].GlobalLoadOps)
	}
	if stats[Opt2].GlobalLoadOps != stats[Opt3].GlobalLoadOps {
		t.Errorf("opt3 should not change global load count: %d vs %d",
			stats[Opt2].GlobalLoadOps, stats[Opt3].GlobalLoadOps)
	}
	// LDS loads drop sharply at opt4.
	if !(stats[Opt4].LocalLoadOps < stats[Opt3].LocalLoadOps*2/3) {
		t.Errorf("opt4 should cut LDS loads: opt3 %d, opt4 %d",
			stats[Opt3].LocalLoadOps, stats[Opt4].LocalLoadOps)
	}
	// All variants do the same ALU work and atomics.
	for _, v := range Variants()[1:] {
		if stats[v].ALUOps != stats[Base].ALUOps {
			t.Errorf("variant %s changed ALU ops: %d vs %d", v, stats[v].ALUOps, stats[Base].ALUOps)
		}
		if stats[v].AtomicOps != stats[Base].AtomicOps {
			t.Errorf("variant %s changed atomics: %d vs %d", v, stats[v].AtomicOps, stats[Base].AtomicOps)
		}
	}
}

func TestFinderFlagsBothStrands(t *testing.T) {
	dev := gpu.New(device.MI60(), gpu.WithWorkers(2))
	// CCNGG window: pattern NGG forward matches at pos 2 (NGG); reverse
	// complement of NGG is CCN, matching at pos 0.
	seq := []byte("CCAGG")
	pat, err := NewPatternPair([]byte("NGG"))
	if err != nil {
		t.Fatal(err)
	}
	arena := alloc.NewHost(alloc.WorstCase(1, 4))
	fa := &FinderArgs{
		Chr:     seq,
		Pattern: pat,
		Sites:   3,
		Loci:    make([]uint32, arena.Layout.Slots()),
		Flags:   make([]byte, arena.Layout.Slots()),
		Arena:   arena.Device(),
	}
	_, err = dev.Launch(gpu.LaunchSpec{
		Name: "finder", Global: gpu.R1(4), Local: gpu.R1(4),
		Kernel: func(g *gpu.Group) gpu.WorkItemFunc {
			lPat := make([]byte, 6)
			lIdx := make([]int32, 6)
			return func(it *gpu.Item) { Finder(it, fa, lPat, lIdx) }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	geo, err := arena.Decode()
	if err != nil {
		t.Fatal(err)
	}
	loci := alloc.Gather(geo, fa.Loci, []uint32(nil))
	flags := alloc.Gather(geo, fa.Flags, []byte(nil))
	got := map[uint32]byte{}
	for i, l := range loci {
		got[l] = flags[i]
	}
	if got[0] != FlagReverse {
		t.Errorf("pos 0 flag = %v, want reverse (CCA matches CCN)", got[0])
	}
	if got[2] != FlagForward {
		t.Errorf("pos 2 flag = %v, want forward (AGG matches NGG)", got[2])
	}
}

func TestArgsValidate(t *testing.T) {
	pat, _ := NewPatternPair([]byte("NGG"))
	fArena := alloc.NewHost(alloc.WorstCase(1, 6))
	okF := FinderArgs{Chr: []byte("ACGTACGT"), Pattern: pat, Sites: 6,
		Loci: make([]uint32, 6), Flags: make([]byte, 6), Arena: fArena.Device()}
	if err := okF.validate(); err != nil {
		t.Errorf("valid finder args rejected: %v", err)
	}
	bad := okF
	bad.Sites = 7 // 7+3-1 > 8
	if err := bad.validate(); err == nil {
		t.Error("oversized site count accepted")
	}
	bad = okF
	bad.Loci = nil
	if err := bad.validate(); err == nil {
		t.Error("short loci accepted")
	}
	bad = okF
	bad.Arena = nil
	if err := bad.validate(); err == nil {
		t.Error("nil arena accepted")
	}
	bad = okF
	badArena := *fArena.Device()
	badArena.PageOf = badArena.PageOf[:0]
	bad.Arena = &badArena
	if err := bad.validate(); err == nil {
		t.Error("mismatched arena group tables accepted")
	}
	bad = okF
	bad.Pattern = nil
	if err := bad.validate(); err == nil {
		t.Error("nil pattern accepted")
	}

	cArena := alloc.NewHost(alloc.WorstCase(1, 4))
	okC := ComparerArgs{Chr: []byte("ACGT"), Loci: make([]uint32, 4), Flags: make([]byte, 4),
		LociCount: 2, Guide: pat, MMLoci: make([]uint32, 4), MMCount: make([]uint16, 4),
		Direction: make([]byte, 4), Arena: cArena.Device()}
	if err := okC.validate(); err != nil {
		t.Errorf("valid comparer args rejected: %v", err)
	}
	badC := okC
	badC.LociCount = 5
	if err := badC.validate(); err == nil {
		t.Error("loci overflow accepted")
	}
	badC = okC
	badC.MMLoci = make([]uint32, 3)
	if err := badC.validate(); err == nil {
		t.Error("short output accepted")
	}
	badC = okC
	badC.Arena = nil
	if err := badC.validate(); err == nil {
		t.Error("nil arena accepted")
	}
	badC = okC
	badC.Guide = nil
	if err := badC.validate(); err == nil {
		t.Error("nil guide accepted")
	}
}

func TestLadderPos(t *testing.T) {
	if ladderPos['R'] != 1 {
		t.Errorf("R at ladder position %d, want 1", ladderPos['R'])
	}
	if ladderPos['T'] != len(ladderOrder) {
		t.Errorf("T at ladder position %d, want %d", ladderPos['T'], len(ladderOrder))
	}
	if ladderPos['r'] != ladderPos['R'] {
		t.Error("ladder position not case-insensitive")
	}
	if ladderPos['N'] != len(ladderOrder) {
		t.Error("codes outside the ladder should cost the full ladder")
	}
}

func TestLocalBytesHelpers(t *testing.T) {
	if FinderLocalBytes(23) != 2*23+4*2*23 {
		t.Errorf("FinderLocalBytes = %d", FinderLocalBytes(23))
	}
	if ComparerLocalBytes(23) != 2*23+4*2*23 {
		t.Errorf("ComparerLocalBytes = %d", ComparerLocalBytes(23))
	}
}
