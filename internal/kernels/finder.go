package kernels

import "casoffinder/internal/gpu"

// Finder is the "search" kernel: one work-item per candidate site start,
// selecting the sites that contain the PAM sequence on either strand
// (§II.A). The first work-item of each group stages the pattern pair and
// its index arrays into shared local memory (the kernel's __constant
// pattern argument in OpenCL, a constant_buffer accessor in SYCL), a
// barrier publishes them, then every item tests its site and compacts
// matches through an atomic cursor.
//
// lPat and lPatIndex are the work-group-local staging arrays ("l_pat",
// "l_pat_index" in Table VI), each of length 2*PatternLen.
func Finder(it *gpu.Item, a *FinderArgs, lPat []byte, lPatIndex []int32) {
	FinderStage(it, a, lPat, lPatIndex)
	it.Barrier()
	FinderScan(it, a, lPat, lPatIndex)
}

// FinderStage is the finder body up to its barrier: the group leader
// stages the pattern pair and index arrays into shared local memory. It is
// phase 0 of the kernel under the cooperative scheduler.
func FinderStage(it *gpu.Item, a *FinderArgs, lPat []byte, lPatIndex []int32) {
	plen := a.Pattern.PatternLen
	i := it.GlobalID(0)
	li := i - it.GroupID(0)*it.LocalRange(0)
	it.ALU(2)

	if li == 0 {
		for k := 0; k < plen*2; k++ {
			lPat[k] = a.Pattern.Codes[k]
			lPatIndex[k] = a.Pattern.Index[k]
			it.LoadConstant()
			it.LoadConstant()
			it.StoreLocalN(2)
		}
	}
}

// FinderScan is the finder body after its barrier: test the item's site on
// both strands and compact matches through the atomic cursor. It is phase 1
// of the kernel under the cooperative scheduler; running FinderStage and
// FinderScan through gpu.LaunchSpec.Phases is equivalent — in results and
// in every Stats counter — to running Finder under the blocking contract.
func FinderScan(it *gpu.Item, a *FinderArgs, lPat []byte, lPatIndex []int32) {
	plen := a.Pattern.PatternLen
	i := it.GlobalID(0)

	if i >= a.Sites {
		it.Branch(true)
		return
	}

	match := func(offset int) bool {
		for j := 0; j < plen; j++ {
			k := lPatIndex[offset+j]
			it.LoadLocal()
			if k == -1 {
				it.Branch(false)
				break
			}
			code := lPat[offset+int(k)]
			terms := ladderPos[code]
			it.LoadLocalN(1 + terms)
			it.LoadGlobal(1) // chr[i+k]
			it.ALU(aluPerTerm*terms + 2)
			it.Branch(true)
			if mismatch(code, a.Chr[i+int(k)]) {
				return false
			}
		}
		return true
	}

	fwd := match(0)
	rev := match(plen)
	var flag byte
	switch {
	case fwd && rev:
		flag = FlagBoth
	case fwd:
		flag = FlagForward
	case rev:
		flag = FlagReverse
	default:
		it.Branch(true)
		return
	}
	slot := a.Arena.Claim(it)
	if slot < 0 {
		// Arena exhausted: the drop is counted in Arena.Overflow and the
		// host grows the arena and relaunches, so no site is ever lost.
		it.Branch(true)
		return
	}
	a.Loci[slot] = uint32(i)
	a.Flags[slot] = flag
	it.StoreGlobal(4)
	it.StoreGlobal(1)
}

// FinderLocalBytes returns the shared-local-memory bytes one work-group of
// the finder uses for a pattern of length plen.
func FinderLocalBytes(plen int) int { return 2*plen + 4*2*plen }
