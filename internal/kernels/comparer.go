package kernels

import (
	"fmt"

	"casoffinder/internal/gpu"
)

// ComparerVariant selects between the baseline comparer of Listing 1 and
// the paper's cumulative optimizations (§IV.B). All variants compute
// identical results; they differ in the memory traffic the compiler would
// emit for them, which the simulator accounts through the Item counters,
// and in the register pressure internal/isa derives for them.
type ComparerVariant int

// Comparer variants, cumulative in the paper's order.
const (
	// Base is the kernel exactly as migrated (Listing 1).
	Base ComparerVariant = iota
	// Opt1 adds __restrict to every pointer argument, letting the compiler
	// remove reloads it previously kept for potential aliasing: the flag
	// test reads flag[i] once per branch and loci[i] is hoisted out of each
	// comparison loop.
	Opt1
	// Opt2 explicitly stages loci[i] and flag[i] in registers before the
	// comparison loops: one global read of each per work-item.
	Opt2
	// Opt3 fetches the pattern and index arrays from global to shared
	// local memory cooperatively — every work-item of the group
	// participates instead of only the first.
	Opt3
	// Opt4 additionally stages each pattern character read from shared
	// local memory in a register, halving LDS traffic but raising register
	// pressure enough to cost a wave of occupancy (Table X).
	Opt4
	// BitParallel replaces the per-base ladder with the SWAR word core:
	// the chunk is read as 2-bit packed words (32 bases plus an
	// unknown-lane word per load) and each pattern word is tested with
	// precompiled lane masks — equality planes, mask folds and one
	// popcount. Fewer, wider global loads and a shorter inner loop, paid
	// for with more live registers; it extends the paper's Table X
	// trade-off one step past Opt4.
	BitParallel
)

// Variants lists the paper's comparer variants in cumulative order — the
// five rows of Table X. BitParallel is this repository's extension and is
// deliberately excluded; AllVariants includes it.
func Variants() []ComparerVariant { return []ComparerVariant{Base, Opt1, Opt2, Opt3, Opt4} }

// AllVariants lists every comparer variant the kernels build: the paper's
// five plus the SWAR BitParallel extension.
func AllVariants() []ComparerVariant { return append(Variants(), BitParallel) }

func (v ComparerVariant) String() string {
	switch v {
	case Base:
		return "base"
	case Opt1:
		return "opt1"
	case Opt2:
		return "opt2"
	case Opt3:
		return "opt3"
	case Opt4:
		return "opt4"
	case BitParallel:
		return "bitparallel"
	default:
		return fmt.Sprintf("ComparerVariant(%d)", int(v))
	}
}

// CooperativeFetch reports whether the variant stages patterns into local
// memory with all work-items (opt3 and later) rather than the group leader
// alone; the timing model charges leader-only staging as a serialised
// prefix on the group's critical path.
func (v ComparerVariant) CooperativeFetch() bool { return v >= Opt3 }

// comparerCosts encodes the compiler-visible differences between variants:
// how often the kernel re-reads flag[i] and loci[i] from global memory and
// whether the ladder re-reads l_comp[k] from local memory per term.
type comparerCosts struct {
	flagLoads    int  // global reads of flag[i] per work-item
	lociPerIter  bool // loci[i] re-read on every comparison iteration
	lociPerHalf  bool // loci[i] read once per strand loop (hoisted)
	ldsPerTerm   bool // l_comp[k] read once per evaluated ladder term
	coopPrefetch bool // all items stage the pattern arrays
	wordParallel bool // SWAR core: two wide loads per 32-base pattern word
}

func (v ComparerVariant) costs() comparerCosts {
	switch v {
	case Base:
		return comparerCosts{flagLoads: 4, lociPerIter: true, ldsPerTerm: true}
	case Opt1:
		return comparerCosts{flagLoads: 2, lociPerHalf: true, ldsPerTerm: true}
	case Opt2:
		return comparerCosts{flagLoads: 1, ldsPerTerm: true}
	case Opt3:
		return comparerCosts{flagLoads: 1, ldsPerTerm: true, coopPrefetch: true}
	case BitParallel:
		return comparerCosts{flagLoads: 1, coopPrefetch: true, wordParallel: true}
	default: // Opt4
		return comparerCosts{flagLoads: 1, coopPrefetch: true}
	}
}

// ComparerFunc is the shape of one comparer body or phase: the work-item,
// the kernel arguments, and the work-group-local staging arrays ("l_comp",
// "l_comp_index"), each of length 2*PatternLen.
type ComparerFunc func(it *gpu.Item, a *ComparerArgs, lComp []byte, lCompIndex []int32)

// Comparer returns the kernel body for the variant under the blocking
// contract: staging, a real barrier, then comparison.
func Comparer(v ComparerVariant) ComparerFunc {
	c := v.costs()
	return func(it *gpu.Item, a *ComparerArgs, lComp []byte, lCompIndex []int32) {
		comparerStage(it, a, lComp, lCompIndex, c)
		it.Barrier()
		comparerCompare(it, a, lComp, lCompIndex, c)
	}
}

// ComparerPhases returns the variant's body split at its single barrier
// point for the cooperative scheduler: phase 0 stages the pattern tables
// into local memory, phase 1 runs the comparison. Running them through
// gpu.LaunchSpec.Phases is equivalent — in results and in every Stats
// counter — to running Comparer under the blocking contract.
func ComparerPhases(v ComparerVariant) [2]ComparerFunc {
	c := v.costs()
	return [2]ComparerFunc{
		func(it *gpu.Item, a *ComparerArgs, lComp []byte, lCompIndex []int32) {
			comparerStage(it, a, lComp, lCompIndex, c)
		},
		func(it *gpu.Item, a *ComparerArgs, lComp []byte, lCompIndex []int32) {
			comparerCompare(it, a, lComp, lCompIndex, c)
		},
	}
}

// ComparerLocalBytes returns the shared-local-memory bytes one work-group
// of the comparer uses for a guide pattern of length plen.
func ComparerLocalBytes(plen int) int { return 2*plen + 4*2*plen }

// comparerStage is L1-L8 of Listing 1 with the per-variant cost model
// applied: compute the local index and stage comp and comp_index into
// shared local memory (cooperatively for opt3+, leader-only before).
func comparerStage(it *gpu.Item, a *ComparerArgs, lComp []byte, lCompIndex []int32, c comparerCosts) {
	plen := a.Guide.PatternLen
	i := it.GlobalID(0)
	li := i - it.GroupID(0)*it.LocalRange(0) // L1 of Listing 1
	it.ALU(2)

	// L2-L8: stage comp and comp_index into shared local memory.
	if c.coopPrefetch {
		wg := it.LocalRange(0)
		for k := li; k < plen*2; k += wg {
			lComp[k] = a.Guide.Codes[k]
			lCompIndex[k] = a.Guide.Index[k]
			it.LoadGlobal(1)
			it.LoadGlobal(4)
			it.StoreLocalN(2)
		}
	} else if li == 0 {
		for k := 0; k < plen*2; k++ {
			lComp[k] = a.Guide.Codes[k]
			lCompIndex[k] = a.Guide.Index[k]
			it.LoadGlobal(1)
			it.LoadGlobal(4)
			it.StoreLocalN(2)
		}
	}
}

// comparerCompare is L9-L42 of Listing 1, after the barrier: for each
// flagged strand walk the guide's index array, counting mismatches with
// early exit past the threshold, and compact passing entries through the
// atomic entry counter.
func comparerCompare(it *gpu.Item, a *ComparerArgs, lComp []byte, lCompIndex []int32, c comparerCosts) {
	plen := a.Guide.PatternLen
	i := it.GlobalID(0)

	if uint32(i) >= a.LociCount {
		it.Branch(true)
		return
	}

	flag := a.Flags[i]
	it.LoadGlobal(1)
	for r := 1; r < c.flagLoads; r++ {
		it.LoadGlobalRedundant(1)
	}
	locus := int(a.Loci[i])
	if !c.lociPerIter && !c.lociPerHalf {
		it.LoadGlobal(4) // opt2+: loci[i] registered once per item
	}

	// compareStrand walks one half of the index array (L9-L24 forward,
	// L26-L42 reverse). offset selects the strand; pattern characters live
	// at lComp[k+offset] and reference characters at chr[locus+k].
	firstLociRead := true
	readLocus := func() {
		if firstLociRead {
			it.LoadGlobal(4)
			firstLociRead = false
			return
		}
		it.LoadGlobalRedundant(4)
	}

	compareStrand := func(offset int) (uint16, bool) {
		if c.lociPerHalf {
			readLocus() // opt1: loci[i] hoisted out of the loop
		}
		var mm uint16
		for j := 0; j < plen; j++ {
			k := lCompIndex[offset+j]
			it.LoadLocal()
			if k == -1 {
				it.Branch(false)
				break
			}
			code := lComp[offset+int(k)]
			terms := ladderPos[code]
			if c.ldsPerTerm {
				it.LoadLocalN(terms)
			} else {
				it.LoadLocal() // opt4: one LDS read, then a register
			}
			if c.lociPerIter {
				readLocus() // base: loci[i] reloaded per iteration
			}
			it.LoadGlobal(1) // chr[loci[i]+k]
			it.ALU(aluPerTerm*terms + 2)
			it.Branch(true)
			if mismatch(code, a.Chr[locus+int(k)]) {
				mm++
				if mm > a.Threshold {
					it.Branch(true)
					return mm, false
				}
			}
		}
		return mm, true
	}

	// The bit-parallel variant swaps the per-base ladder for the SWAR word
	// loop: per 32-base pattern word it issues two 8-byte global loads (the
	// 2-bit packed text word and the unknown-lane word) and reads the five
	// precompiled mask words from local memory, then a fixed ALU sequence —
	// four equality planes, four mask folds, the bad-lane combine and a
	// popcount — scores every base of the word at once. The mismatch
	// arithmetic below stays byte-wise so results are bit-identical to the
	// other variants; only the accounted traffic changes: ~1/16th the
	// global load ops of a byte-per-base walk, each 8× wider, and the
	// threshold early-exit moves to word granularity.
	if c.wordParallel {
		compareStrand = func(offset int) (uint16, bool) {
			var mm uint16
			j := 0
			for base := 0; base < plen; base += 32 {
				start := j
				for j < plen {
					k := lCompIndex[offset+j]
					it.LoadLocal()
					if k == -1 || int(k) >= base+32 {
						break
					}
					j++
				}
				if j > start {
					it.LoadGlobalN(2, 8) // packed text word + unknown lanes
					it.LoadLocalN(5)     // lane word + four accumulator masks
					it.ALU(18)
					it.Branch(true)
					for jj := start; jj < j; jj++ {
						k := lCompIndex[offset+jj]
						if mismatch(lComp[offset+int(k)], a.Chr[locus+int(k)]) {
							mm++
						}
					}
					if mm > a.Threshold {
						it.Branch(true)
						return mm, false
					}
				}
				if j >= plen || lCompIndex[offset+j] == -1 {
					break
				}
			}
			return mm, true
		}
	}

	// store compacts one passing entry (L19-L23 / L36-L40) through the
	// output arena. An exhausted arena drops the entry — counted in
	// Arena.Overflow, recovered by the host's grow-and-relaunch.
	store := func(mm uint16, dir byte) {
		slot := a.Arena.Claim(it)
		if slot < 0 {
			it.Branch(true)
			return
		}
		a.MMCount[slot] = mm
		a.Direction[slot] = dir
		a.MMLoci[slot] = uint32(locus)
		if c.lociPerIter {
			readLocus() // base: mm_loci[slot] = loci[i] reloads again
		}
		it.StoreGlobal(2)
		it.StoreGlobal(1)
		it.StoreGlobal(4)
	}

	if flag == FlagBoth || flag == FlagForward {
		it.Branch(true)
		if mm, ok := compareStrand(0); ok && mm <= a.Threshold {
			store(mm, DirForward)
		}
	}
	if flag == FlagBoth || flag == FlagReverse {
		it.Branch(true)
		if mm, ok := compareStrand(plen); ok && mm <= a.Threshold {
			store(mm, DirReverse)
		}
	}
}
