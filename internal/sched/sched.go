// Package sched is the work-stealing multi-device executor: it runs the
// chunks of one compiled pipeline plan across a fleet of backends (one per
// simulated GPU), replacing both the static even split of the original
// MultiSYCL engine and the serial per-chunk loop of the resilient pipeline
// for multi-device topologies (DESIGN.md §11).
//
// Topology. Every device owns a deque seeded with a contiguous span of the
// chunk plan, sized proportionally to the device's cost-model weight
// (ShardCounts), so an MI100 starts with more genome than a Radeon VII. A
// device worker pops its own deque from the front; when it runs dry it
// steals half the tail of the most loaded deque. All deques share one
// mutex — chunk counts are modest (hundreds, not millions) and each task
// spans a simulated kernel launch, so contention is negligible and the
// single lock keeps eviction/redistribution trivially race-free.
//
// Resilience is device-level, not chunk-level. With a Policy set, a chunk
// that fails transiently retries on its owning device with the policy's
// deterministic backoff; a chunk that exhausts the budget (or fails
// fatally, or returns corrupted data) evicts the device — its remaining
// deque redistributes to the survivors — and only a fully evicted fleet
// routes the stranded chunks through the policy's fallback backend, one at
// a time in chunk order. With Static set, stealing and eviction are off:
// every device keeps its initial shard and failed chunks fail over
// individually (the pre-scheduler behaviour, kept as the benchmark
// baseline). A nil Policy keeps the pipeline's fail-fast contract.
//
// Determinism contract. Chunk indices are assigned at plan time and the
// collector reorders settled chunks back into plan order before emitting,
// exactly like the single-backend topologies — so the hit stream is
// byte-identical to a serial run no matter which device ran which chunk or
// how the steal schedule interleaved. Steal and eviction *counts* are
// scheduling artifacts and deliberately not deterministic; per-device
// fault-injection schedules stay deterministic because each backend is
// driven by exactly one goroutine.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
)

// Device is one fleet slot: a named backend factory with a scheduling
// weight. Open is called lazily, on the slot's worker goroutine, the first
// time the slot has a task — eagerly at start when its initial shard is
// non-empty — so an idle slot costs nothing.
type Device struct {
	// Name labels the slot's trace track, queue-depth gauge and report row.
	Name string
	// Weight sizes the initial shard; non-positive weights fall back to an
	// even split across the fleet.
	Weight float64
	// Open builds the slot's backend for the compiled plan.
	Open func(plan *pipeline.Plan) (pipeline.Backend, error)
}

// DeviceReport is the per-slot accounting of one run.
type DeviceReport struct {
	// Name is the slot name.
	Name string
	// Chunks counts the chunks this slot settled successfully.
	Chunks int
	// Steals counts the steal operations this slot performed as the thief.
	Steals int
	// Evicted reports whether the slot was evicted, and EvictErr why.
	Evicted  bool
	EvictErr string
}

// Report extends the pipeline resilience report with the scheduler's
// steal/eviction accounting. The embedded Report fields keep their
// meanings; Failovers counts chunks settled (or quarantined) on the
// fallback arm.
type Report struct {
	pipeline.Report
	// Steals counts steal operations across the fleet.
	Steals int64
	// Evictions counts devices evicted from the fleet.
	Evictions int64
	// Devices holds one row per fleet slot, in slot order.
	Devices []DeviceReport
}

// Executor runs pipeline plans across a device fleet. It implements
// pipeline.Executor.
type Executor struct {
	// Devices is the fleet; at least one slot is required.
	Devices []Device
	// Policy enables device-level resilience (see the package comment).
	// Nil means fail-fast: the first chunk error aborts the run.
	Policy *pipeline.Resilience
	// Static disables stealing and eviction, pinning every chunk to its
	// cost-model shard with per-chunk failover.
	Static bool
	// Trace and Metrics observe the run; phase spans land on each slot's
	// Name track, scheduler events (steal, evict, failover, quarantine)
	// as instants, and deque depths as per-device gauges.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	// Track prefixes the scheduler's own trace rows (collector, fallback
	// arm); empty means "sched".
	Track string
	// OnReport, when set, receives the run report exactly once, after the
	// last chunk settles.
	OnReport func(*Report)
}

func (x *Executor) track() string {
	if x.Track != "" {
		return x.Track
	}
	return "sched"
}

// ShardCounts splits n chunks across len(weights) deques proportionally to
// the weights, rounding by largest remainder so no shard deviates from its
// exact proportional share by a full chunk — in particular the remainder of
// an even split spreads one chunk at a time across the fleet instead of
// piling onto the last device (the old static-split skew). Non-positive or
// non-finite weights fall back to an even split.
func ShardCounts(n int, weights []float64) []int {
	k := len(weights)
	counts := make([]int, k)
	if n <= 0 || k == 0 {
		return counts
	}
	sum := 0.0
	usable := true
	for _, w := range weights {
		if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
			usable = false
			break
		}
		sum += w
	}
	if !usable || sum <= 0 || math.IsInf(sum, 0) {
		for i := range counts {
			counts[i] = n / k
		}
		for i := 0; i < n%k; i++ {
			counts[i]++
		}
		return counts
	}
	type share struct {
		i    int
		frac float64
	}
	shares := make([]share, k)
	rem := n
	for i, w := range weights {
		exact := float64(n) * w / sum
		counts[i] = int(exact)
		rem -= counts[i]
		shares[i] = share{i: i, frac: exact - float64(counts[i])}
	}
	sort.SliceStable(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
	for j := 0; j < rem; j++ {
		counts[shares[j%k].i]++
	}
	return counts
}

// task is one chunk's scheduling state; it moves between deques by value.
type task struct {
	index    int
	ch       *genome.Chunk
	attempts int
	lastErr  error
}

// settled is one chunk's terminal result, sent to the collector.
type settled struct {
	index       int
	hits        []pipeline.Hit
	quarantined bool
}

// run is the shared state of one Execute call.
type run struct {
	x        *Executor
	plan     *pipeline.Plan
	ctx      context.Context
	cancel   context.CancelFunc
	observed bool

	mu          sync.Mutex
	cond        *sync.Cond
	deques      [][]task
	seeded      []bool
	evicted     []bool
	orphans     []task
	outstanding int
	failed      bool
	firstErr    error
	closeErr    error
	rep         *Report

	// fbMu serialises the fallback arm: the backend is shared and serial
	// execution keeps failover deterministic (one chunk at a time, like
	// the serial resilient executor).
	fbMu       sync.Mutex
	fbOpened   bool
	fb         pipeline.Backend
	fbErr      error
	fbRenderer *pipeline.SiteRenderer

	results chan settled
	wg      sync.WaitGroup
}

// Execute implements pipeline.Executor.
func (x *Executor) Execute(ctx context.Context, plan *pipeline.Plan, asm *genome.Assembly, emit func(pipeline.Hit) error) error {
	if len(x.Devices) == 0 {
		return errors.New("sched: no devices")
	}
	chunks, err := plan.Chunker.Plan(asm)
	if err != nil {
		return err
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &run{
		x:           x,
		plan:        plan,
		ctx:         rctx,
		cancel:      cancel,
		observed:    x.Trace != nil || x.Metrics != nil,
		deques:      make([][]task, len(x.Devices)),
		seeded:      make([]bool, len(x.Devices)),
		evicted:     make([]bool, len(x.Devices)),
		outstanding: len(chunks),
		rep:         &Report{Devices: make([]DeviceReport, len(x.Devices))},
		fbRenderer:  &pipeline.SiteRenderer{},
		results:     make(chan settled, len(chunks)),
	}
	r.cond = sync.NewCond(&r.mu)

	// Seed each deque with its contiguous cost-model shard.
	weights := make([]float64, len(x.Devices))
	for i, d := range x.Devices {
		weights[i] = d.Weight
		r.rep.Devices[i].Name = r.deviceTrack(i)
	}
	counts := ShardCounts(len(chunks), weights)
	start := 0
	for i, c := range counts {
		r.seeded[i] = c > 0
		for k := start; k < start+c; k++ {
			r.deques[i] = append(r.deques[i], task{index: k, ch: chunks[k]})
		}
		start += c
		r.gaugeLocked(i)
	}

	for i := range x.Devices {
		r.wg.Add(1)
		go func(i int) {
			defer r.wg.Done()
			r.worker(i)
		}(i)
	}
	// Wake cond waiters on external cancellation; exits with the run.
	go func() {
		<-rctx.Done()
		r.cond.Broadcast()
	}()
	go func() {
		r.wg.Wait()
		r.drainOrphans()
		if r.fb != nil {
			r.foldClose(r.fb.Close())
		}
		close(r.results)
	}()

	r.collect(emit)

	sort.Slice(r.rep.Quarantined, func(a, b int) bool {
		return r.rep.Quarantined[a].Index < r.rep.Quarantined[b].Index
	})
	if x.OnReport != nil {
		x.OnReport(r.rep)
	}
	r.mu.Lock()
	ferr, cerr := r.firstErr, r.closeErr
	r.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if cerr != nil {
		return cerr
	}
	if len(r.rep.Quarantined) > 0 {
		return &pipeline.PartialError{Report: &r.rep.Report}
	}
	return nil
}

// collect reorders settled chunks back into plan order on the caller's
// goroutine and emits their hits — the same ordered-emit contract as the
// single-backend topologies. Quarantined chunks advance the cursor with no
// hits.
func (r *run) collect(emit func(pipeline.Hit) error) {
	x := r.x
	track := x.track() + "/collect"
	pending := make(map[int]settled)
	next := 0
	emitting := true
	for res := range r.results {
		pending[res.index] = res
		for {
			rec, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			chunk := next
			next++
			if !rec.quarantined && emitting {
				var t0 time.Time
				if r.observed {
					t0 = time.Now()
				}
				for _, h := range rec.hits {
					if err := r.ctx.Err(); err != nil {
						r.fail(err)
						emitting = false
						break
					}
					if err := emit(h); err != nil {
						r.fail(err)
						emitting = false
						break
					}
				}
				if r.observed {
					x.Trace.Complete(track, "emit", chunk, t0, time.Since(t0),
						obs.Attr{Key: "hits", Value: strconv.Itoa(len(rec.hits))})
					x.Metrics.Count(obs.MetricHits, int64(len(rec.hits)))
				}
			}
			x.Metrics.Count(obs.MetricPipelineChunks, 1)
		}
	}
}

// worker drives one device slot: open the backend when there is work, then
// settle tasks until the run is over for this slot.
func (r *run) worker(i int) {
	dev := &r.x.Devices[i]
	var be pipeline.Backend
	defer func() {
		if be != nil {
			r.foldClose(be.Close())
		}
	}()
	sr := &pipeline.SiteRenderer{}

	// Open eagerly when the initial shard was non-empty: per-run device
	// setup (pattern-table staging) then happens exactly once per seeded
	// slot regardless of how the steal schedule plays out — the shard
	// could already be stolen away by the time this worker starts — so
	// profile accounting stays deterministic. Slots seeded empty open
	// lazily on their first stolen task.
	if r.seeded[i] {
		var err error
		if be, err = dev.Open(r.plan); err != nil {
			r.deviceFailed(i, nil, fmt.Errorf("sched: opening device %s: %w", r.deviceTrack(i), err))
			return
		}
	}

	for {
		t, ok := r.next(i)
		if !ok {
			return
		}
		if be == nil {
			var err error
			if be, err = dev.Open(r.plan); err != nil {
				r.deviceFailed(i, &t, fmt.Errorf("sched: opening device %s: %w", r.deviceTrack(i), err))
				return
			}
		}
		hits, err := r.runTask(i, be, &t, sr)
		switch {
		case err == nil:
			r.settle(i, t, hits, false)
		case r.ctx.Err() != nil:
			return
		case r.x.Policy == nil:
			r.fail(fmt.Errorf("sched: device %s: %w", r.deviceTrack(i), err))
			return
		case r.x.Static:
			r.settleViaFallback(i, t, err)
		default:
			r.evict(i, &t, err)
			return
		}
	}
}

// next blocks until slot i has a task, stealing from the most loaded deque
// when its own runs dry, and reports false when the run is over for this
// slot: no task can ever arrive again, the run failed, or the context was
// cancelled.
func (r *run) next(i int) (task, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.failed || r.ctx.Err() != nil {
			return task{}, false
		}
		if d := r.deques[i]; len(d) > 0 {
			t := d[0]
			r.deques[i] = d[1:]
			r.gaugeLocked(i)
			return t, true
		}
		if r.outstanding == 0 {
			return task{}, false
		}
		if r.x.Static {
			// Static split: nothing ever refills an empty deque.
			return task{}, false
		}
		if r.stealLocked(i) {
			continue
		}
		r.cond.Wait()
	}
}

// stealLocked moves half the tail (rounded up) of the most loaded deque to
// slot i. Caller holds r.mu.
func (r *run) stealLocked(i int) bool {
	victim, best := -1, 0
	for j := range r.deques {
		if j != i && len(r.deques[j]) > best {
			victim, best = j, len(r.deques[j])
		}
	}
	if victim < 0 {
		return false
	}
	n := (best + 1) / 2
	d := r.deques[victim]
	stolen := d[len(d)-n:]
	r.deques[victim] = d[:len(d)-n]
	r.deques[i] = append(r.deques[i], stolen...)
	r.rep.Steals++
	r.rep.Devices[i].Steals++
	r.gaugeLocked(i)
	r.gaugeLocked(victim)
	r.x.Metrics.Count(obs.MetricSteals, 1)
	r.x.Trace.Instant(r.deviceTrack(i), "steal", stolen[0].index,
		obs.Attr{Key: "victim", Value: r.deviceTrack(victim)},
		obs.Attr{Key: "tasks", Value: strconv.Itoa(n)})
	// The thief's refilled deque is itself a steal target now.
	r.cond.Broadcast()
	return true
}

// runTask settles one task on slot i's backend: one attempt plus the
// policy's transient retry budget with its deterministic backoff — the same
// retry classification as the serial resilient executor's primary arm.
func (r *run) runTask(i int, be pipeline.Backend, t *task, sr *pipeline.SiteRenderer) ([]pipeline.Hit, error) {
	res := r.x.Policy
	for try := 0; ; try++ {
		hits, err := r.attemptOn(be, t, sr, r.deviceTrack(i))
		if err == nil {
			return hits, nil
		}
		if r.ctx.Err() != nil {
			return nil, r.ctx.Err()
		}
		if res == nil || fault.ClassOf(err) != fault.Transient || try >= res.RetryBudget() {
			return nil, err
		}
		r.mu.Lock()
		r.rep.Retries++
		r.mu.Unlock()
		r.x.Metrics.Count(obs.MetricRetries, 1)
		r.x.Trace.Instant(r.deviceTrack(i), "retry", t.index,
			obs.Attr{Key: "try", Value: strconv.Itoa(try + 1)},
			obs.Attr{Key: "error", Value: err.Error()})
		if serr := sleepCtx(r.ctx, res.RetryBackoff(t.index, try+1)); serr != nil {
			return nil, serr
		}
	}
}

// attemptOn runs one watchdog-guarded scan attempt of t on be, counting the
// attempt, the scan-latency sample and any watchdog kill.
func (r *run) attemptOn(be pipeline.Backend, t *task, sr *pipeline.SiteRenderer, track string) ([]pipeline.Hit, error) {
	o := pipeline.AttemptObs{Trace: r.x.Trace, Metrics: r.x.Metrics, Track: track}
	var wd time.Duration
	if r.x.Policy != nil {
		wd = r.x.Policy.Watchdog
	}
	var hits []pipeline.Hit
	var err error
	if r.observed {
		t0 := time.Now()
		hits, err = pipeline.Attempt(r.ctx, be, r.plan, t.index, t.ch, sr, wd, o)
		r.x.Metrics.Observe(obs.MetricScanSeconds, time.Since(t0).Seconds())
	} else {
		hits, err = pipeline.Attempt(r.ctx, be, r.plan, t.index, t.ch, sr, wd, o)
	}
	t.attempts++
	if err != nil {
		t.lastErr = err
		if pipeline.IsWatchdogKill(err) {
			r.mu.Lock()
			r.rep.WatchdogKills++
			r.mu.Unlock()
			r.x.Metrics.Count(obs.MetricWatchdogKills, 1)
		}
	}
	return hits, err
}

// deviceFailed handles a slot-level failure (backend open error, or an
// exhausted chunk in stealing mode): fail-fast without a policy, eviction
// with one. failed is the task in flight, if any.
func (r *run) deviceFailed(i int, failed *task, cause error) {
	if r.x.Policy == nil {
		r.fail(cause)
		return
	}
	r.evict(i, failed, cause)
}

// evict removes slot i from the fleet: the failed task plus the slot's
// unfinished deque move to the survivors round-robin — or to the orphan
// list for the fallback arm when no survivor is left (always, in Static
// mode, where chunks never migrate between devices).
func (r *run) evict(i int, failed *task, cause error) {
	r.mu.Lock()
	r.evicted[i] = true
	dr := &r.rep.Devices[i]
	dr.Evicted = true
	dr.EvictErr = cause.Error()
	r.rep.Evictions++
	var moved []task
	if failed != nil {
		moved = append(moved, *failed)
	}
	moved = append(moved, r.deques[i]...)
	r.deques[i] = nil
	var survivors []int
	if !r.x.Static {
		for j := range r.deques {
			if j != i && !r.evicted[j] {
				survivors = append(survivors, j)
			}
		}
	}
	if len(survivors) == 0 {
		r.orphans = append(r.orphans, moved...)
	} else {
		for k, mt := range moved {
			j := survivors[k%len(survivors)]
			r.deques[j] = append(r.deques[j], mt)
		}
		for _, j := range survivors {
			r.gaugeLocked(j)
		}
	}
	r.gaugeLocked(i)
	r.mu.Unlock()
	r.cond.Broadcast()
	r.x.Metrics.Count(obs.MetricEvictions, 1)
	index := -1
	if failed != nil {
		index = failed.index
	}
	r.x.Trace.Instant(r.deviceTrack(i), "evict", index,
		obs.Attr{Key: "error", Value: cause.Error()},
		obs.Attr{Key: "requeued", Value: strconv.Itoa(len(moved))})
}

// settle reports slot i's (or the fallback arm's, i < 0) terminal result
// for t to the collector.
func (r *run) settle(i int, t task, hits []pipeline.Hit, quarantined bool) {
	r.mu.Lock()
	r.rep.Chunks++
	if i >= 0 && !quarantined {
		r.rep.Devices[i].Chunks++
	}
	r.outstanding--
	r.mu.Unlock()
	r.cond.Broadcast()
	select {
	case r.results <- settled{index: t.index, hits: hits, quarantined: quarantined}:
	case <-r.ctx.Done():
	}
}

// quarantine records t as lost and settles it with no hits, advancing the
// collector's cursor past the gap.
func (r *run) quarantine(i int, t task, err error) {
	r.mu.Lock()
	r.rep.Quarantined = append(r.rep.Quarantined, pipeline.ChunkFailure{
		Index:    t.index,
		SeqName:  t.ch.SeqName,
		Start:    t.ch.Start,
		Body:     t.ch.Body,
		Attempts: t.attempts,
		Err:      err,
	})
	r.mu.Unlock()
	r.x.Metrics.Count(obs.MetricQuarantined, 1)
	r.x.Trace.Instant(r.x.track(), "quarantine", t.index,
		obs.Attr{Key: "error", Value: err.Error()})
	r.settle(i, t, nil, true)
}

// fallbackAttempt tries t once on the shared fallback backend, opening it
// on first use. ok is false when the policy has no fallback or it failed to
// open (err then carries the open error, if any).
func (r *run) fallbackAttempt(from string, t *task, cause error) (hits []pipeline.Hit, err error, ok bool) {
	r.fbMu.Lock()
	defer r.fbMu.Unlock()
	if !r.fbOpened {
		r.fbOpened = true
		if res := r.x.Policy; res != nil && res.Fallback != nil {
			fb, oerr := res.Fallback(r.plan)
			if oerr != nil {
				r.fbErr = fmt.Errorf("sched: opening fallback backend: %w", oerr)
			} else {
				r.fb = fb
				r.mu.Lock()
				r.rep.FallbackUsed = true
				r.mu.Unlock()
			}
		}
	}
	if r.fb == nil {
		return nil, r.fbErr, false
	}
	r.mu.Lock()
	r.rep.Failovers++
	r.mu.Unlock()
	r.x.Metrics.Count(obs.MetricFailovers, 1)
	r.x.Trace.Instant(from, "failover", t.index,
		obs.Attr{Key: "error", Value: cause.Error()})
	hits, err = r.attemptOn(r.fb, t, r.fbRenderer, r.x.track()+"/fallback")
	return hits, err, true
}

// settleViaFallback is the Static-mode per-chunk failover: the chunk that
// exhausted its device is re-staged on the shared fallback, quarantined if
// that fails too.
func (r *run) settleViaFallback(i int, t task, cause error) {
	hits, err, ok := r.fallbackAttempt(r.deviceTrack(i), &t, cause)
	if !ok {
		if err == nil {
			err = cause
		}
		r.quarantine(i, t, err)
		return
	}
	if err != nil {
		if r.ctx.Err() != nil {
			return
		}
		r.quarantine(i, t, err)
		return
	}
	r.settle(i, t, hits, false)
}

// drainOrphans settles the tasks stranded by a fully evicted fleet (or by
// a statically split device that could not open) on the fallback backend —
// strictly serially, in chunk order, like the serial resilient executor.
func (r *run) drainOrphans() {
	r.mu.Lock()
	orphans := r.orphans
	r.orphans = nil
	failed := r.failed
	r.mu.Unlock()
	if len(orphans) == 0 || failed || r.ctx.Err() != nil {
		return
	}
	sort.Slice(orphans, func(a, b int) bool { return orphans[a].index < orphans[b].index })
	track := r.x.track() + "/fallback"
	for _, t := range orphans {
		t := t
		cause := t.lastErr
		if cause == nil {
			cause = fault.Errorf(fault.SiteEviction, fault.Fatal,
				"sched: all %d devices evicted", len(r.x.Devices))
		}
		hits, err, ok := r.fallbackAttempt(track, &t, cause)
		if !ok {
			if err == nil {
				err = cause
			}
			r.quarantine(-1, t, err)
			continue
		}
		if err != nil {
			if r.ctx.Err() != nil {
				return
			}
			r.quarantine(-1, t, err)
			continue
		}
		r.settle(-1, t, hits, false)
	}
}

// fail records the run's first fatal error and cancels everything.
func (r *run) fail(err error) {
	r.mu.Lock()
	if !r.failed {
		r.failed = true
		r.firstErr = err
	}
	r.mu.Unlock()
	r.cancel()
	r.cond.Broadcast()
}

// foldClose folds a backend Close error without masking an earlier one.
func (r *run) foldClose(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	if r.closeErr == nil {
		r.closeErr = err
	}
	r.mu.Unlock()
}

// gaugeLocked publishes slot i's deque depth. Caller holds r.mu.
func (r *run) gaugeLocked(i int) {
	r.x.Metrics.Gauge(obs.L(obs.MetricDeviceQueueDepth, "device", r.deviceTrack(i)),
		float64(len(r.deques[i])))
}

// deviceTrack names slot i's trace track and report row.
func (r *run) deviceTrack(i int) string {
	if n := r.x.Devices[i].Name; n != "" {
		return n
	}
	return r.x.track() + "/dev" + strconv.Itoa(i)
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
