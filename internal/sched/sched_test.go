package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/pipeline"
)

// --- fake backend -----------------------------------------------------------

// fakeBackend is a minimal pipeline.Backend whose hits are a pure function
// of the chunk (one hit at the chunk's start position), so the emitted
// stream depends only on plan order, never on which device ran what.
type fakeBackend struct {
	// delay slows every Find, simulating a slow device.
	delay time.Duration
	// failFind, when set, decides the error of the n-th Find call (n
	// counts from 0) for the given chunk start.
	failFind func(start, call int) error
	// hangFind makes every Find block until its context is cancelled.
	hangFind bool
	// stageHook, when set, runs at the top of every Stage call.
	stageHook func()

	mu     sync.Mutex
	finds  int
	staged int
	closed int
}

func (b *fakeBackend) Stage(ctx context.Context, ch *genome.Chunk) (pipeline.Staged, error) {
	if b.stageHook != nil {
		b.stageHook()
	}
	b.mu.Lock()
	b.staged++
	b.mu.Unlock()
	return ch, nil
}

func (b *fakeBackend) Find(ctx context.Context, st pipeline.Staged) (int, error) {
	b.mu.Lock()
	call := b.finds
	b.finds++
	b.mu.Unlock()
	if b.hangFind {
		<-ctx.Done()
		return 0, ctx.Err()
	}
	if b.delay > 0 {
		select {
		case <-time.After(b.delay):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if b.failFind != nil {
		if err := b.failFind(st.(*genome.Chunk).Start, call); err != nil {
			return 0, err
		}
	}
	return 1, nil
}

func (b *fakeBackend) Compare(ctx context.Context, st pipeline.Staged, qi int) error { return nil }

func (b *fakeBackend) Drain(ctx context.Context, st pipeline.Staged, r *pipeline.SiteRenderer) ([]pipeline.Hit, error) {
	ch := st.(*genome.Chunk)
	return []pipeline.Hit{{
		QueryIndex: 0,
		SeqName:    ch.SeqName,
		Pos:        ch.Start,
		Dir:        '+',
		Site:       fmt.Sprintf("chunk@%d", ch.Start),
	}}, nil
}

func (b *fakeBackend) Close() error {
	b.mu.Lock()
	b.closed++
	b.mu.Unlock()
	return nil
}

// fatalAlways fails every Find with a fatal fault.
func fatalAlways(start, call int) error {
	return fault.Errorf(fault.SiteLaunch, fault.Fatal, "injected fatal at %d", start)
}

// --- plan/assembly fixtures -------------------------------------------------

// testPlan compiles a tiny all-N plan whose chunker cuts the assembly into
// ~nChunks chunks of 12 site positions each.
func testPlan(t *testing.T, nChunks int) (*pipeline.Plan, *genome.Assembly) {
	t.Helper()
	req := &pipeline.Request{
		Pattern:    "NNNNN",
		Queries:    []pipeline.Query{{Guide: "NNNNN", MaxMismatches: 5}},
		ChunkBytes: 16, // body = 16 - (5-1) = 12 positions per chunk
	}
	plan, err := pipeline.Compile(req)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	seqLen := 12*nChunks + 4
	data := make([]byte, seqLen)
	for i := range data {
		data[i] = "ACGT"[i%4]
	}
	asm := &genome.Assembly{Sequences: []*genome.Sequence{{Name: "chr1", Data: data}}}
	chunks, err := plan.Chunker.Plan(asm)
	if err != nil {
		t.Fatalf("chunk plan: %v", err)
	}
	if len(chunks) != nChunks {
		t.Fatalf("fixture produced %d chunks, want %d", len(chunks), nChunks)
	}
	return plan, asm
}

// runExec executes x over a fresh nChunks-fixture and returns the emitted
// hits, the report, and Execute's error.
func runExec(t *testing.T, x *Executor, nChunks int) ([]pipeline.Hit, *Report, error) {
	t.Helper()
	plan, asm := testPlan(t, nChunks)
	var rep *Report
	prev := x.OnReport
	x.OnReport = func(r *Report) {
		if rep != nil {
			t.Error("OnReport called twice")
		}
		rep = r
		if prev != nil {
			prev(r)
		}
	}
	var hits []pipeline.Hit
	err := x.Execute(context.Background(), plan, asm, func(h pipeline.Hit) error {
		hits = append(hits, h)
		return nil
	})
	if rep == nil {
		t.Fatal("OnReport never called")
	}
	return hits, rep, err
}

// wantOrdered asserts the hit stream is exactly one hit per chunk, in plan
// order — the determinism contract shared with the serial topologies.
func wantOrdered(t *testing.T, hits []pipeline.Hit, nChunks int) {
	t.Helper()
	if len(hits) != nChunks {
		t.Fatalf("got %d hits, want %d", len(hits), nChunks)
	}
	for i, h := range hits {
		if want := 12 * i; h.Pos != want {
			t.Fatalf("hit %d at pos %d, want %d (out-of-order emit)", i, h.Pos, want)
		}
	}
}

// --- ShardCounts ------------------------------------------------------------

func TestShardCountsProportional(t *testing.T) {
	cases := []struct {
		n       int
		weights []float64
		want    []int
	}{
		{10, []float64{1, 1}, []int{5, 5}},
		{8, []float64{3, 1}, []int{6, 2}},
		{7, []float64{2, 1}, []int{5, 2}},              // 4.67, 2.33 → remainder to the larger fraction
		{10, []float64{1, 1, 1, 1}, []int{3, 3, 2, 2}}, // remainder spreads round-robin
		{2, []float64{1, 1, 1, 1}, []int{1, 1, 0, 0}},
		{0, []float64{1, 1}, []int{0, 0}},
		{5, nil, nil},
	}
	for _, c := range cases {
		got := ShardCounts(c.n, c.weights)
		if len(c.weights) == 0 {
			if len(got) != 0 {
				t.Errorf("ShardCounts(%d, %v) = %v, want empty", c.n, c.weights, got)
			}
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("ShardCounts(%d, %v) = %v, want %v", c.n, c.weights, got, c.want)
		}
	}
}

// TestShardCountsRemainderNotSkewed pins the fix for the old static-split
// remainder bug: the last device used to absorb the entire remainder
// ([2,2,2,4] for 10 chunks over 4 equal devices); now the remainder spreads
// one chunk at a time.
func TestShardCountsRemainderNotSkewed(t *testing.T) {
	got := ShardCounts(10, []float64{1, 1, 1, 1})
	if fmt.Sprint(got) == fmt.Sprint([]int{2, 2, 2, 4}) {
		t.Fatal("remainder still piles onto the last shard (old skew)")
	}
	max, min := 0, 10
	for _, c := range got {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max-min > 1 {
		t.Fatalf("equal-weight shards deviate by more than one chunk: %v", got)
	}
}

func TestShardCountsBadWeights(t *testing.T) {
	// Zero, negative, NaN or infinite weights fall back to an even split.
	for _, weights := range [][]float64{
		{0, 0, 0},
		{-1, 2, 3},
		{1, 0, 1},
	} {
		got := ShardCounts(7, weights)
		if fmt.Sprint(got) != fmt.Sprint([]int{3, 2, 2}) {
			t.Errorf("ShardCounts(7, %v) = %v, want even split [3 2 2]", weights, got)
		}
	}
}

func TestShardCountsConserveTotal(t *testing.T) {
	for n := 0; n < 50; n++ {
		for _, weights := range [][]float64{{1}, {1, 2}, {5, 3, 2}, {0.3, 0.3, 0.3, 0.1}} {
			total := 0
			for _, c := range ShardCounts(n, weights) {
				total += c
			}
			if total != n {
				t.Fatalf("ShardCounts(%d, %v) loses chunks: total %d", n, weights, total)
			}
		}
	}
}

// --- Executor ---------------------------------------------------------------

func fleet(bes ...*fakeBackend) []Device {
	devs := make([]Device, len(bes))
	for i, be := range bes {
		be := be
		devs[i] = Device{
			Name:   fmt.Sprintf("dev%d", i),
			Weight: 1,
			Open:   func(*pipeline.Plan) (pipeline.Backend, error) { return be, nil },
		}
	}
	return devs
}

func TestExecutorOrderedEmit(t *testing.T) {
	// Three devices with staggered speeds: the emit order must still be
	// plan order, whatever the settle interleaving was.
	b0 := &fakeBackend{}
	b1 := &fakeBackend{delay: 200 * time.Microsecond}
	b2 := &fakeBackend{delay: 500 * time.Microsecond}
	x := &Executor{Devices: fleet(b0, b1, b2)}
	hits, rep, err := runExec(t, x, 12)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 12)
	if rep.Chunks != 12 {
		t.Errorf("report chunks = %d, want 12", rep.Chunks)
	}
	settled := 0
	for _, d := range rep.Devices {
		settled += d.Chunks
	}
	if settled != 12 {
		t.Errorf("per-device chunks sum to %d, want 12", settled)
	}
	if b0.closed != 1 || b1.closed != 1 || b2.closed != 1 {
		t.Errorf("backends closed %d/%d/%d times, want 1 each", b0.closed, b1.closed, b2.closed)
	}
}

func TestExecutorSteals(t *testing.T) {
	// One fast and one slow device, even initial split: the fast device
	// must drain its shard and then steal from the slow one's tail.
	fast := &fakeBackend{}
	slow := &fakeBackend{delay: 2 * time.Millisecond}
	x := &Executor{Devices: fleet(fast, slow)}
	hits, rep, err := runExec(t, x, 16)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 16)
	if rep.Steals == 0 {
		t.Error("fast device never stole from the slow one")
	}
	if rep.Devices[0].Chunks <= 8 {
		t.Errorf("fast device settled %d chunks, want > its initial shard of 8", rep.Devices[0].Chunks)
	}
}

func TestExecutorStaticNoSteal(t *testing.T) {
	fast := &fakeBackend{}
	slow := &fakeBackend{delay: 2 * time.Millisecond}
	x := &Executor{Devices: fleet(fast, slow), Static: true}
	hits, rep, err := runExec(t, x, 16)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 16)
	if rep.Steals != 0 {
		t.Errorf("static split stole %d times, want 0", rep.Steals)
	}
	if rep.Devices[0].Chunks != 8 || rep.Devices[1].Chunks != 8 {
		t.Errorf("static shards settled %d/%d, want the even 8/8 split",
			rep.Devices[0].Chunks, rep.Devices[1].Chunks)
	}
}

func TestExecutorWeightedShards(t *testing.T) {
	// A 3:1 weight ratio must show up in the static settle counts.
	b0, b1 := &fakeBackend{}, &fakeBackend{}
	devs := fleet(b0, b1)
	devs[0].Weight = 3
	x := &Executor{Devices: devs, Static: true}
	_, rep, err := runExec(t, x, 16)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rep.Devices[0].Chunks != 12 || rep.Devices[1].Chunks != 4 {
		t.Errorf("weighted shards settled %d/%d, want 12/4",
			rep.Devices[0].Chunks, rep.Devices[1].Chunks)
	}
}

func TestExecutorTransientRetries(t *testing.T) {
	// The first two Find calls fail transiently; the policy budget covers
	// them, so the run stays clean apart from the retry count.
	be := &fakeBackend{failFind: func(start, call int) error {
		if call < 2 {
			return fault.Errorf(fault.SiteCLEnqueue, fault.Transient, "flaky enqueue")
		}
		return nil
	}}
	x := &Executor{
		Devices: fleet(be),
		Policy:  &pipeline.Resilience{MaxRetries: 3, BackoffBase: time.Microsecond, BackoffMax: time.Microsecond},
	}
	hits, rep, err := runExec(t, x, 6)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 6)
	if rep.Retries != 2 {
		t.Errorf("retries = %d, want 2", rep.Retries)
	}
	if rep.Evictions != 0 || rep.Failovers != 0 {
		t.Errorf("clean retry run reports evictions=%d failovers=%d", rep.Evictions, rep.Failovers)
	}
}

func TestExecutorEvictionRedistributes(t *testing.T) {
	// Device 0 fails fatally on first touch: it must be evicted and its
	// whole shard — including the failed chunk — must finish on device 1.
	// The survivor waits at the gate until device 0 has a chunk in
	// flight, so the failure cannot be stolen away before it happens.
	var once sync.Once
	badStaged := make(chan struct{})
	bad := &fakeBackend{
		failFind:  fatalAlways,
		stageHook: func() { once.Do(func() { close(badStaged) }) },
	}
	good := &fakeBackend{stageHook: func() { <-badStaged }}
	x := &Executor{
		Devices: fleet(bad, good),
		Policy:  &pipeline.Resilience{MaxRetries: -1},
	}
	hits, rep, err := runExec(t, x, 10)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 10)
	if rep.Evictions != 1 || !rep.Devices[0].Evicted {
		t.Fatalf("evictions = %d, dev0 evicted = %v; want 1/true", rep.Evictions, rep.Devices[0].Evicted)
	}
	if rep.Devices[1].Evicted {
		t.Error("survivor marked evicted")
	}
	if rep.Devices[1].Chunks != 10 {
		t.Errorf("survivor settled %d chunks, want all 10", rep.Devices[1].Chunks)
	}
	if rep.Failovers != 0 {
		t.Errorf("failovers = %d, want 0 (survivor absorbed the shard)", rep.Failovers)
	}
	if !strings.Contains(rep.Devices[0].EvictErr, "injected fatal") {
		t.Errorf("eviction cause %q does not carry the fault", rep.Devices[0].EvictErr)
	}
}

func TestExecutorAllEvictedFallsBack(t *testing.T) {
	// Both devices die: every chunk must drain serially, in order, through
	// the policy's fallback backend.
	fb := &fakeBackend{}
	x := &Executor{
		Devices: fleet(&fakeBackend{failFind: fatalAlways}, &fakeBackend{failFind: fatalAlways}),
		Policy: &pipeline.Resilience{
			MaxRetries: -1,
			Fallback:   func(*pipeline.Plan) (pipeline.Backend, error) { return fb, nil },
		},
	}
	hits, rep, err := runExec(t, x, 8)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 8)
	if rep.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", rep.Evictions)
	}
	if !rep.FallbackUsed {
		t.Error("fallback not marked used")
	}
	if rep.Failovers != 8 {
		t.Errorf("failovers = %d, want one per stranded chunk (8)", rep.Failovers)
	}
	if fb.closed != 1 {
		t.Errorf("fallback closed %d times, want 1", fb.closed)
	}
}

func TestExecutorQuarantineWithoutFallback(t *testing.T) {
	// A dead fleet and no fallback: the run completes with every chunk
	// quarantined and a PartialError, not a hard failure.
	x := &Executor{
		Devices: fleet(&fakeBackend{failFind: fatalAlways}),
		Policy:  &pipeline.Resilience{MaxRetries: -1},
	}
	hits, rep, err := runExec(t, x, 5)
	var pe *pipeline.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("Execute: %v, want PartialError", err)
	}
	if len(hits) != 0 {
		t.Errorf("quarantined run emitted %d hits", len(hits))
	}
	if len(rep.Quarantined) != 5 {
		t.Fatalf("quarantined %d chunks, want 5", len(rep.Quarantined))
	}
	for i, q := range rep.Quarantined {
		if q.Index != i {
			t.Fatalf("quarantine list out of order: entry %d has index %d", i, q.Index)
		}
	}
	// The chunk that actually failed carries the fault; the stranded rest
	// carry the scheduler's eviction label.
	var fe *fault.Error
	if !errors.As(rep.Quarantined[1].Err, &fe) || fe.Site != fault.SiteEviction {
		t.Errorf("stranded chunk error %v, want site %s", rep.Quarantined[1].Err, fault.SiteEviction)
	}
}

func TestExecutorStaticFailover(t *testing.T) {
	// Static mode keeps the old per-chunk failover: the bad device's shard
	// fails over chunk by chunk, no eviction, no migration to device 1.
	fb := &fakeBackend{}
	good := &fakeBackend{}
	devs := fleet(&fakeBackend{failFind: fatalAlways}, good)
	x := &Executor{
		Devices: devs,
		Static:  true,
		Policy: &pipeline.Resilience{
			MaxRetries: -1,
			Fallback:   func(*pipeline.Plan) (pipeline.Backend, error) { return fb, nil },
		},
	}
	hits, rep, err := runExec(t, x, 10)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 10)
	if rep.Evictions != 0 {
		t.Errorf("static mode evicted %d devices, want 0", rep.Evictions)
	}
	if rep.Failovers != 5 {
		t.Errorf("failovers = %d, want 5 (device 0's shard)", rep.Failovers)
	}
	if rep.Devices[1].Chunks != 5 {
		t.Errorf("device 1 settled %d chunks, want its own 5", rep.Devices[1].Chunks)
	}
}

func TestExecutorWatchdogEvicts(t *testing.T) {
	// A hung device is reaped by the watchdog; with no retry budget the
	// kill evicts it and the survivor finishes the run. The survivor is
	// held at the gate until the hung device has a chunk in flight, so
	// the hang cannot be stolen away before it happens.
	var once sync.Once
	hungStaged := make(chan struct{})
	hung := &fakeBackend{
		hangFind:  true,
		stageHook: func() { once.Do(func() { close(hungStaged) }) },
	}
	good := &fakeBackend{stageHook: func() { <-hungStaged }}
	x := &Executor{
		Devices: fleet(hung, good),
		Policy:  &pipeline.Resilience{MaxRetries: -1, Watchdog: 5 * time.Millisecond},
	}
	hits, rep, err := runExec(t, x, 8)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 8)
	if rep.WatchdogKills == 0 {
		t.Error("hung device never watchdog-killed")
	}
	if rep.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", rep.Evictions)
	}
}

func TestExecutorFailFastWithoutPolicy(t *testing.T) {
	// Hold the healthy device at the gate until the failing one has a
	// chunk in flight, so the failure cannot be stolen away.
	var once sync.Once
	badStaged := make(chan struct{})
	bad := &fakeBackend{
		failFind:  fatalAlways,
		stageHook: func() { once.Do(func() { close(badStaged) }) },
	}
	x := &Executor{Devices: fleet(bad, &fakeBackend{stageHook: func() { <-badStaged }})}
	_, rep, err := runExec(t, x, 8)
	if err == nil {
		t.Fatal("Execute succeeded, want fail-fast error")
	}
	if !strings.Contains(err.Error(), "injected fatal") {
		t.Errorf("error %v does not carry the cause", err)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("fail-fast run quarantined %d chunks", len(rep.Quarantined))
	}
}

func TestExecutorOpenFailure(t *testing.T) {
	// A device whose backend cannot open is evicted like any other
	// failure; its shard migrates to the survivor.
	good := &fakeBackend{}
	devs := []Device{
		{Name: "broken", Weight: 1, Open: func(*pipeline.Plan) (pipeline.Backend, error) {
			return nil, errors.New("no such device")
		}},
		{Name: "ok", Weight: 1, Open: func(*pipeline.Plan) (pipeline.Backend, error) { return good, nil }},
	}
	x := &Executor{Devices: devs, Policy: &pipeline.Resilience{MaxRetries: -1}}
	hits, rep, err := runExec(t, x, 10)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantOrdered(t, hits, 10)
	if rep.Evictions != 1 || !rep.Devices[0].Evicted {
		t.Errorf("open failure did not evict: evictions=%d", rep.Evictions)
	}
	if rep.Devices[1].Chunks != 10 {
		t.Errorf("survivor settled %d chunks, want 10 (got: %+v)", rep.Devices[1].Chunks, rep.Devices)
	}
}

func TestExecutorNoDevices(t *testing.T) {
	x := &Executor{}
	plan, asm := testPlan(t, 1)
	err := x.Execute(context.Background(), plan, asm, func(pipeline.Hit) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "no devices") {
		t.Fatalf("Execute: %v, want no-devices error", err)
	}
}

func TestExecutorEmitError(t *testing.T) {
	x := &Executor{Devices: fleet(&fakeBackend{})}
	plan, asm := testPlan(t, 6)
	sentinel := errors.New("sink full")
	n := 0
	err := x.Execute(context.Background(), plan, asm, func(pipeline.Hit) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Execute: %v, want emit error", err)
	}
}

func TestExecutorContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	slow := &fakeBackend{delay: 5 * time.Millisecond}
	x := &Executor{Devices: fleet(slow)}
	plan, asm := testPlan(t, 10)
	done := make(chan error, 1)
	go func() {
		done <- x.Execute(ctx, plan, asm, func(pipeline.Hit) error { return nil })
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Execute: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not return after cancel")
	}
}
