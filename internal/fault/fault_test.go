package fault

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Fire(SiteLaunch) {
			t.Fatal("nil injector fired")
		}
	}
	if in.Log() != nil || in.Counts() != nil {
		t.Error("nil injector should have empty log and counts")
	}
	if NewInjector(Plan{Rate: 0}) != nil {
		t.Error("zero-rate plan should build a nil injector")
	}
}

func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 42, Rate: 0.3}
	run := func() []Event {
		in := NewInjector(plan)
		for i := 0; i < 200; i++ {
			in.Fire(SiteLaunch)
			in.Fire(SiteCLEnqueue)
			in.Fire(SiteSYCLAsync)
		}
		return in.Log()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 600 events fired nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same plan produced different logs:\n%v\nvs\n%v", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	schedule := func(seed uint64) []Event {
		in := NewInjector(Plan{Seed: seed, Rate: 0.2})
		for i := 0; i < 300; i++ {
			in.Fire(SiteLaunch)
		}
		return in.Log()
	}
	if reflect.DeepEqual(schedule(1), schedule(2)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestRateBounds(t *testing.T) {
	always := NewInjector(Plan{Seed: 7, Rate: 1})
	for i := 0; i < 50; i++ {
		if !always.Fire(SiteHang) {
			t.Fatal("rate 1 did not fire")
		}
	}
	// Rates above 1 clamp.
	clamped := NewInjector(Plan{Seed: 7, Rate: 2})
	if !clamped.Fire(SiteHang) {
		t.Error("rate 2 should clamp to always-fire")
	}
}

func TestRateApproximation(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, Rate: 0.1})
	const n = 5000
	fired := 0
	for i := 0; i < n; i++ {
		if in.Fire(SiteReadback) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("rate 0.1 fired %.3f of events", frac)
	}
}

func TestSiteFilter(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rate: 1, Site: SiteCLTransfer})
	if in.Fire(SiteLaunch) || in.Fire(SiteSYCLUSM) {
		t.Error("filtered sites fired")
	}
	if !in.Fire(SiteCLTransfer) {
		t.Error("selected site did not fire at rate 1")
	}
}

func TestAfterSkipsLeadingEvents(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rate: 1, After: 2})
	if in.Fire(SiteLaunch) || in.Fire(SiteLaunch) {
		t.Error("events before After fired")
	}
	if !in.Fire(SiteLaunch) {
		t.Error("event at After did not fire at rate 1")
	}
	log := in.Log()
	if len(log) != 1 || log[0].Seq != 2 {
		t.Errorf("log = %v, want one event with seq 2", log)
	}
}

func TestConcurrentFiringIsSafe(t *testing.T) {
	in := NewInjector(Plan{Seed: 11, Rate: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Fire(SiteLaunch)
			}
		}()
	}
	wg.Wait()
	counts := in.Counts()
	if counts[SiteLaunch] == 0 {
		t.Error("no events recorded under concurrency")
	}
}

func TestParseSite(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(string(s))
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSite("gpu.meltdown"); err == nil {
		t.Error("unknown site accepted")
	}
	if _, err := ParseSite(string(SiteWatchdog)); err == nil {
		t.Error("synthesised watchdog site should not be injectable")
	}
}

func TestClassOf(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		err  error
		want Class
	}{
		{New(SiteCLEnqueue, Transient, base), Transient},
		{New(SiteReadback, Corruption, base), Corruption},
		{New(SiteCLDeviceLost, Fatal, base), Fatal},
		{fmt.Errorf("wrapped: %w", New(SiteHang, Transient, base)), Transient},
		{context.DeadlineExceeded, Transient},
		{fmt.Errorf("op: %w", context.DeadlineExceeded), Transient},
		{base, Fatal},
		{nil, Fatal},
	}
	for _, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestErrorWrapping(t *testing.T) {
	sentinel := errors.New("opencl: enqueue failed")
	e := Errorf(SiteCLEnqueue, Transient, "launch 3: %w", sentinel)
	if !errors.Is(e, sentinel) {
		t.Error("Errorf broke the error chain")
	}
	var fe *Error
	if !errors.As(e, &fe) || fe.Site != SiteCLEnqueue {
		t.Error("errors.As failed to recover the fault error")
	}
	if s := e.Error(); s == "" || fe.Class.String() != "transient" {
		t.Errorf("bad rendering: %q / %q", s, fe.Class)
	}
}

func TestCorruptionHelpers(t *testing.T) {
	u32 := []uint32{0, 5, 100}
	CorruptU32(u32)
	for i, v := range u32 {
		if v < 1<<31 {
			t.Errorf("u32[%d] = %d not driven out of range", i, v)
		}
	}
	u16 := []uint16{1}
	CorruptU16(u16)
	if u16[0] != 1|1<<15 {
		t.Errorf("u16 = %d", u16[0])
	}
	b := []byte{'+'}
	CorruptBytes(b)
	if b[0] == '+' {
		t.Error("byte not corrupted")
	}
	CorruptAny(u32)
	if u32[0] != 0 {
		t.Error("CorruptAny should have flipped the MSB back")
	}
	CorruptAny([]int{1}) // unsupported type: no-op, no panic
}
