// Package fault is a seeded, deterministic fault-injection layer for the
// simulated runtimes. The paper's central migration concern is how the two
// programming models surface runtime failure — OpenCL's per-call cl_int
// error codes versus SYCL's synchronous and asynchronous exception handlers
// (§III) — but a simulator that only ever succeeds cannot exercise either
// side. An Injector, threaded through internal/gpu and sampled by the
// opencl and sycl frontends, makes named fault sites fail on a seeded
// schedule so that every failure, retry and failover replays byte-identically
// under the same Plan.
//
// Determinism does not come from wall-clock or scheduler state: each site
// keeps its own event counter, and the decision for the n-th event at a site
// is a pure hash of (seed, site, n). As long as the per-site event order is
// deterministic — true for the simulator engines, whose single scan worker
// and single stager serialise every enqueue — the whole fault schedule is.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Site names one injectable fault point in the simulated stack. The prefix
// states the layer that fires it.
type Site string

// Fault sites.
const (
	// SiteLaunch fails a kernel launch outright (gpu.Device.Launch returns
	// an error before any work-group runs).
	SiteLaunch Site = "gpu.launch"
	// SiteHang makes a kernel launch hang — the launch blocks until its
	// context is cancelled, modelling a wedged work-group that only a
	// watchdog deadline can reap.
	SiteHang Site = "gpu.hang"
	// SiteReadback corrupts a device-to-host readback (MSB flips in the
	// returned elements), modelling corrupted global memory.
	SiteReadback Site = "gpu.readback"
	// SiteCLEnqueue makes a clEnqueueNDRangeKernel-style call return an
	// error code.
	SiteCLEnqueue Site = "opencl.enqueue"
	// SiteCLTransfer makes a clEnqueueRead/WriteBuffer-style transfer
	// return an error code.
	SiteCLTransfer Site = "opencl.transfer"
	// SiteCLDeviceLost marks the device lost at enqueue time; the error is
	// fatal and poisons the owning context (every later call on it fails).
	SiteCLDeviceLost Site = "opencl.device-lost"
	// SiteSYCLAsync delivers an asynchronous exception on a SYCL command
	// group: the event completes with the error and the queue's async
	// handler receives it.
	SiteSYCLAsync Site = "sycl.async"
	// SiteSYCLUSM fails a USM allocation (sycl::malloc_device returning
	// null).
	SiteSYCLUSM Site = "sycl.usm"
	// SiteWatchdog is not injected: it labels errors the pipeline's
	// watchdog synthesises when a backend call exceeds its deadline.
	SiteWatchdog Site = "pipeline.watchdog"
	// SiteEviction is not injected either: it labels the errors the
	// multi-device scheduler synthesises when it quarantines chunks
	// stranded by a fully evicted fleet.
	SiteEviction Site = "sched.evict"
	// SiteArtifact is not injected either: it labels corruption the search
	// layer detects in a persistent genome artifact's precomputed PAM
	// shards (entries outside the chunk geometry, impossible strand bits).
	SiteArtifact Site = "genome.artifact"
	// SiteDeadline is not injected either: it labels a request-scoped
	// deadline expiring (the CLI's -timeout flag, the server's per-request
	// deadlines) — distinct from SiteWatchdog, which bounds a single
	// backend phase rather than the whole run. The class is Fatal from the
	// run's point of view: the caller chose the budget, retrying inside it
	// cannot help.
	SiteDeadline Site = "client.deadline"
	// SiteArena is not injected: it labels the hit-buffer arena. Class
	// Overflow marks an under-provisioned arena whose launch dropped
	// entries (the host grows the arena and relaunches); class Corruption
	// marks arena geometry that came back from the device impossible
	// (page cursor past the provisioned pages, page fills beyond any
	// legal overshoot) even at worst-case provisioning.
	SiteArena Site = "gpu.arena"
)

// Sites lists the injectable sites, for flag validation and fault-matrix
// sweeps. SiteWatchdog and SiteEviction are synthesised, never injected, so
// they are not listed.
func Sites() []Site {
	return []Site{
		SiteLaunch, SiteHang, SiteReadback,
		SiteCLEnqueue, SiteCLTransfer, SiteCLDeviceLost,
		SiteSYCLAsync, SiteSYCLUSM,
	}
}

// ParseSite validates a site name from a flag.
func ParseSite(s string) (Site, error) {
	for _, site := range Sites() {
		if string(site) == s {
			return site, nil
		}
	}
	return "", fmt.Errorf("fault: unknown site %q (want one of %v)", s, Sites())
}

// Class is the error taxonomy the resilient pipeline acts on.
type Class int

// Error classes.
const (
	// Transient faults are expected to clear on retry: failed enqueues and
	// transfers, hung launches reaped by the watchdog, async exceptions,
	// allocation pressure.
	Transient Class = iota + 1
	// Corruption marks data that came back from the device damaged; the
	// chunk must be re-verified on an independent backend, never retried
	// blindly on the same one.
	Corruption
	// Fatal faults take the backend down for good (device lost, poisoned
	// context); the only recovery is failover.
	Fatal
	// Overflow marks a launch whose output arena was too small for the
	// observed hit density: no data is damaged and the device is healthy —
	// the recovery is deterministic (grow the arena, relaunch) and must
	// not consume the transient-retry budget or trigger failover.
	Overflow
)

func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Corruption:
		return "data-corruption"
	case Fatal:
		return "fatal"
	case Overflow:
		return "arena-overflow"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Error tags an underlying error with the fault site it came from and its
// class. The frontends wrap their existing sentinel errors (opencl.Err*,
// sycl.AsyncError) in it so errors.Is/As keep working while the pipeline
// dispatches on the class.
type Error struct {
	Site  Site
	Class Class
	Err   error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault[%s/%s]: %v", e.Site, e.Class, e.Err)
}

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// New wraps err with a site and class.
func New(site Site, class Class, err error) *Error {
	return &Error{Site: site, Class: class, Err: err}
}

// Errorf wraps a formatted error with a site and class.
func Errorf(site Site, class Class, format string, args ...any) *Error {
	return &Error{Site: site, Class: class, Err: fmt.Errorf(format, args...)}
}

// ClassOf classifies an arbitrary error for the retry/failover state
// machine: a wrapped *Error states its class directly; a deadline from a
// watchdog context is transient (the work may succeed on retry); anything
// unrecognised is fatal, so unknown failures never loop.
func ClassOf(err error) Class {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Class
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Transient
	}
	return Fatal
}

// Plan configures an Injector. The zero Plan injects nothing.
type Plan struct {
	// Seed drives every decision; the same Seed replays the same schedule.
	Seed uint64
	// Rate is the per-event firing probability in [0, 1].
	Rate float64
	// Site restricts injection to one site; empty means every site is
	// eligible.
	Site Site
	// After skips the first After eligible events per site before the Rate
	// applies, so a fault can be aimed mid-run (e.g. at the second launch).
	After int
}

// Event is one fired fault: the site and its per-site sequence number. Same
// plan, same run → same events.
type Event struct {
	Site Site
	Seq  int
}

// Injector decides, deterministically, whether each fault site fires. A nil
// *Injector is valid and never fires, so the runtimes thread it without
// nil-checks on the hot path.
type Injector struct {
	plan Plan

	mu  sync.Mutex
	seq map[Site]int
	log []Event
}

// NewInjector builds an injector for the plan. Plans with Rate <= 0 return
// nil: no injector, zero overhead.
func NewInjector(plan Plan) *Injector {
	if plan.Rate <= 0 {
		return nil
	}
	if plan.Rate > 1 {
		plan.Rate = 1
	}
	return &Injector{plan: plan, seq: make(map[Site]int)}
}

// Fire reports whether the next event at site should fail, advancing the
// site's event counter either way.
func (in *Injector) Fire(site Site) bool {
	if in == nil {
		return false
	}
	if in.plan.Site != "" && in.plan.Site != site {
		return false
	}
	in.mu.Lock()
	seq := in.seq[site]
	in.seq[site] = seq + 1
	fired := seq >= in.plan.After && in.decide(site, seq)
	if fired {
		in.log = append(in.log, Event{Site: site, Seq: seq})
	}
	in.mu.Unlock()
	return fired
}

// decide is the pure decision function: hash (seed, site, seq) to [0, 1) and
// compare against the rate.
func (in *Injector) decide(site Site, seq int) bool {
	x := in.plan.Seed
	for _, b := range []byte(site) {
		x = (x ^ uint64(b)) * 0x100000001b3
	}
	x ^= uint64(seq) * 0x9E3779B97F4A7C15
	// splitmix64 finaliser.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < in.plan.Rate
}

// Log returns the fired events sorted by (site, seq). Per-site order is
// append order; the cross-site sort removes any scheduler-dependent
// interleaving, so two runs with the same plan produce identical logs.
func (in *Injector) Log() []Event {
	return in.LogSince(0)
}

// Mark returns a cursor over the fired-event log: the number of events fired
// so far. Pass it to LogSince to read only the events fired after the mark.
// A nil injector marks 0.
func (in *Injector) Mark() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.log)
}

// LogSince returns the events fired after mark (a cursor from Mark), sorted
// by (site, seq) like Log. It lets a reused engine attribute to each run its
// own fault delta rather than the injector's cumulative history.
func (in *Injector) LogSince(mark int) []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if mark < 0 {
		mark = 0
	}
	if mark > len(in.log) {
		mark = len(in.log)
	}
	out := make([]Event, len(in.log)-mark)
	copy(out, in.log[mark:])
	in.mu.Unlock()
	SortEvents(out)
	return out
}

// SortEvents sorts a fault-event slice by (site, seq), the canonical order of
// Log and of Profile.FaultLog.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].Site != events[j].Site {
			return events[i].Site < events[j].Site
		}
		return events[i].Seq < events[j].Seq
	})
}

// Counts returns the number of fired events per site.
func (in *Injector) Counts() map[Site]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]int64)
	for _, e := range in.log {
		out[e.Site]++
	}
	return out
}

// Jitter hashes (seed, a, b) to a deterministic value in [0.5, 1.0), the
// scale factor the resilient pipeline applies to its exponential backoff:
// reproducible like everything else in the fault schedule, but still spread
// enough that distinct chunks never retry in lockstep.
func Jitter(seed, a, b uint64) float64 {
	x := seed ^ a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F
	// splitmix64 finaliser.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return 0.5 + float64(x>>11)/(1<<54)
}

// Corruption model: readback corruption flips the most-significant bit of
// every element, which is loud by design — a corrupted locus or counter
// lands far outside any valid range, so the frontends' bounds validation
// detects it and classifies the chunk for CPU re-verification. Silent
// in-range corruption would need checksummed transfers; DESIGN.md §9 notes
// the boundary.

// CorruptU32 flips the MSB of every element in place.
func CorruptU32(s []uint32) {
	for i := range s {
		s[i] ^= 1 << 31
	}
}

// CorruptU16 flips the MSB of every element in place.
func CorruptU16(s []uint16) {
	for i := range s {
		s[i] ^= 1 << 15
	}
}

// CorruptBytes flips the MSB of every byte in place.
func CorruptBytes(s []byte) {
	for i := range s {
		s[i] ^= 1 << 7
	}
}

// CorruptAny corrupts the element types the frontends read back; other
// types are left untouched.
func CorruptAny(data any) {
	switch s := data.(type) {
	case []uint32:
		CorruptU32(s)
	case []uint16:
		CorruptU16(s)
	case []byte:
		CorruptBytes(s)
	}
}
