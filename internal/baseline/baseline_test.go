package baseline

import (
	"testing"
)

func TestSearchExactSite(t *testing.T) {
	// Guide GATTACA followed by PAM GG, embedded at position 3.
	//          0123456789...
	seq := []byte("ACCGATTACAGGTTT")
	pattern := []byte("NNNNNNNGG") // 7 guide positions + GG PAM
	guide := []byte("GATTACANN")
	hits, err := Search(seq, pattern, guide, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %+v, want exactly 1", hits)
	}
	if hits[0].Pos != 3 || hits[0].Dir != '+' || hits[0].Mismatches != 0 {
		t.Errorf("hit = %+v", hits[0])
	}
}

func TestSearchReverseStrand(t *testing.T) {
	// Forward site: GATTACA+GG at pos 0 -> reverse complement is
	// CC TGTAATC; embed that so only the '-' strand hits.
	seq := []byte("TTCCTGTAATCTT")
	pattern := []byte("NNNNNNNGG")
	guide := []byte("GATTACANN")
	hits, err := Search(seq, pattern, guide, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %+v, want 1", hits)
	}
	if hits[0].Dir != '-' || hits[0].Pos != 2 {
		t.Errorf("hit = %+v, want pos 2 dir '-'", hits[0])
	}
}

func TestSearchMismatchThreshold(t *testing.T) {
	seq := []byte("ACCGATTACAGGTTT")
	pattern := []byte("NNNNNNNGG")
	for _, tt := range []struct {
		guide string
		maxMM int
		want  int // hits
	}{
		{"GATTACANN", 0, 1},
		{"GATTAGANN", 0, 0}, // 1 mismatch, threshold 0
		{"GATTAGANN", 1, 1},
		{"CATTAGANN", 1, 0}, // 2 mismatches
		{"CATTAGANN", 2, 1},
	} {
		hits, err := Search(seq, pattern, []byte(tt.guide), tt.maxMM)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != tt.want {
			t.Errorf("guide %s maxMM %d: %d hits, want %d", tt.guide, tt.maxMM, len(hits), tt.want)
		}
		if tt.want == 1 && tt.maxMM > 0 && len(hits) == 1 {
			if hits[0].Mismatches > tt.maxMM {
				t.Errorf("guide %s: reported %d mismatches over threshold", tt.guide, hits[0].Mismatches)
			}
		}
	}
}

func TestSearchDegeneratePAM(t *testing.T) {
	// NRG PAM: R matches A or G.
	pattern := []byte("NNNNRG")
	guide := []byte("ACGTNN")
	for _, tt := range []struct {
		seq  string
		want int
	}{
		{"ACGTAG", 1}, // NAG accepted by NRG
		{"ACGTGG", 1}, // NGG accepted
		{"ACGTCG", 0}, // NCG rejected
		{"ACGTTG", 0},
	} {
		hits, err := Search([]byte(tt.seq), pattern, guide, 0)
		if err != nil {
			t.Fatal(err)
		}
		fwd := 0
		for _, h := range hits {
			if h.Dir == '+' {
				fwd++
			}
		}
		if fwd != tt.want {
			t.Errorf("seq %s: %d forward hits, want %d", tt.seq, fwd, tt.want)
		}
	}
}

func TestSearchSoftMaskedSequence(t *testing.T) {
	hits, err := Search([]byte("accgattacaggttt"), []byte("NNNNNNNGG"), []byte("GATTACANN"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("soft-masked sequence: %d hits, want 1", len(hits))
	}
}

func TestSearchNInGenomeNeverMatches(t *testing.T) {
	hits, err := Search([]byte("ACCGATTNCAGGTTT"), []byte("NNNNNNNGG"), []byte("GATTACANN"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("N in genome matched: %+v", hits)
	}
	// But allowed as a mismatch under a looser threshold.
	hits, err = Search([]byte("ACCGATTNCAGGTTT"), []byte("NNNNNNNGG"), []byte("GATTACANN"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Mismatches != 1 {
		t.Errorf("N as mismatch: %+v", hits)
	}
}

func TestSearchPalindromicSiteBothStrands(t *testing.T) {
	// Pattern NN (PAM-free), guide NN: every position matches both strands.
	hits, err := Search([]byte("ACGT"), []byte("NN"), []byte("NN"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 positions x 2 strands.
	if len(hits) != 6 {
		t.Errorf("%d hits, want 6", len(hits))
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search([]byte("ACGT"), []byte("NN"), []byte("NNN"), 0); err == nil {
		t.Error("length mismatch = nil error")
	}
	if _, err := Search([]byte("ACGT"), nil, nil, 0); err == nil {
		t.Error("empty pattern = nil error")
	}
}

func TestSearchShortSequence(t *testing.T) {
	hits, err := Search([]byte("AC"), []byte("NNNNN"), []byte("NNNNN"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("sequence shorter than pattern produced hits: %+v", hits)
	}
}

func TestSearchSortedOutput(t *testing.T) {
	hits, err := Search([]byte("GGGGGGGGGG"), []byte("NGG"), []byte("GNN"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Pos < hits[i-1].Pos ||
			(hits[i].Pos == hits[i-1].Pos && hits[i].Dir < hits[i-1].Dir) {
			t.Fatal("output not sorted by (pos, dir)")
		}
	}
}
