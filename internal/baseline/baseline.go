// Package baseline is the reference implementation of the off-target
// search: a direct, single-threaded scan with no chunking, no device
// frontend and no cost accounting. Every other engine — the simulator-backed
// OpenCL and SYCL paths and the parallel CPU engine — is tested for result
// equality against it, and it doubles as the "plain CPU" comparator the
// benchmark harness reports alongside the device engines.
package baseline

import (
	"fmt"
	"sort"

	"casoffinder/internal/genome"
)

// Hit is one candidate off-target site.
type Hit struct {
	// Pos is the 0-based site start within the searched sequence.
	Pos int
	// Dir is '+' for a forward-strand site, '-' for reverse.
	Dir byte
	// Mismatches is the number of guide positions that mismatch.
	Mismatches int
}

// Search scans seq for sites compatible with the PAM pattern and counts
// guide mismatches, returning every site whose mismatch count is at most
// maxMismatches, on both strands. pattern and guide must have equal length;
// 'N' positions in either are wildcards (the pattern carries N at guide
// positions, the guide carries N at PAM positions, as in the Cas-OFFinder
// input format). seq is case-folded; pattern and guide are expected
// upper-case.
func Search(seq, pattern, guide []byte, maxMismatches int) ([]Hit, error) {
	if len(pattern) != len(guide) {
		return nil, fmt.Errorf("baseline: pattern length %d != guide length %d", len(pattern), len(guide))
	}
	if len(pattern) == 0 {
		return nil, fmt.Errorf("baseline: empty pattern")
	}
	plen := len(pattern)
	patRev := genome.ReverseComplemented(pattern)
	guideRev := genome.ReverseComplemented(guide)

	var hits []Hit
	for pos := 0; pos+plen <= len(seq); pos++ {
		window := seq[pos : pos+plen]
		if matches(pattern, window) {
			if mm, ok := mismatches(guide, window, maxMismatches); ok {
				hits = append(hits, Hit{Pos: pos, Dir: '+', Mismatches: mm})
			}
		}
		if matches(patRev, window) {
			if mm, ok := mismatches(guideRev, window, maxMismatches); ok {
				hits = append(hits, Hit{Pos: pos, Dir: '-', Mismatches: mm})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Pos != hits[j].Pos {
			return hits[i].Pos < hits[j].Pos
		}
		return hits[i].Dir < hits[j].Dir
	})
	return hits, nil
}

// matches reports whether every non-N pattern position matches the window.
func matches(pattern, window []byte) bool {
	for i, c := range pattern {
		if c == 'N' {
			continue
		}
		b := window[i]
		if b >= 'a' && b <= 'z' {
			b &^= 0x20
		}
		if !genome.Matches(c, b) {
			return false
		}
	}
	return true
}

// mismatches counts mismatching non-N guide positions, giving up once the
// count exceeds maxMM (mirroring the kernel's early exit).
func mismatches(guide, window []byte, maxMM int) (int, bool) {
	mm := 0
	for i, c := range guide {
		if c == 'N' {
			continue
		}
		b := window[i]
		if b >= 'a' && b <= 'z' {
			b &^= 0x20
		}
		if !genome.Matches(c, b) {
			mm++
			if mm > maxMM {
				return mm, false
			}
		}
	}
	return mm, true
}
