package gpu

import (
	"fmt"
	"sync"
)

// MemKind distinguishes the address spaces of the abstract memory model.
type MemKind int

// Address spaces, following the paper's Fig. 1.
const (
	// GlobalMem is device global memory, visible to all work-items.
	GlobalMem MemKind = iota + 1
	// ConstantMem stores values constant across work-items.
	ConstantMem
)

// Allocation is one region of simulated device memory. The simulator tracks
// only sizes and lifetimes — the actual data lives in ordinary Go slices
// owned by the runtime frontends — but allocations enforce the device
// global-memory budget and catch use-after-release.
type Allocation struct {
	dev   *Device
	kind  MemKind
	bytes int64
	freed bool
	mu    sync.Mutex
}

// Bytes returns the allocation size.
func (a *Allocation) Bytes() int64 { return a.bytes }

// Device returns the device the allocation was reserved on; the runtime
// frontends use it to reach the device's fault injector at readback time.
func (a *Allocation) Device() *Device { return a.dev }

// Kind returns the address space of the allocation.
func (a *Allocation) Kind() MemKind { return a.kind }

// Released reports whether Free has been called.
func (a *Allocation) Released() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.freed
}

// Use marks the allocation as touched by a command; it fails after Free,
// modelling the OpenCL use-after-clReleaseMemObject error.
func (a *Allocation) Use() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return fmt.Errorf("%w (%d bytes)", ErrFreed, a.bytes)
	}
	return nil
}

// Free returns the allocation's bytes to the device budget. Freeing twice is
// an error, matching CL_INVALID_MEM_OBJECT from a double release.
func (a *Allocation) Free() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return fmt.Errorf("%w: double free of %d bytes", ErrFreed, a.bytes)
	}
	a.freed = true
	a.dev.release(a.bytes)
	return nil
}

// Alloc reserves bytes of device memory of the given kind. It fails with
// ErrOutOfMemory when the request exceeds the remaining device budget,
// modelling CL_MEM_OBJECT_ALLOCATION_FAILURE.
func (d *Device) Alloc(kind MemKind, bytes int64) (*Allocation, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("gpu: negative allocation size %d", bytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.allocated+bytes > d.spec.GlobalMemBytes {
		return nil, fmt.Errorf("%w: %d requested, %d of %d in use",
			ErrOutOfMemory, bytes, d.allocated, d.spec.GlobalMemBytes)
	}
	d.allocated += bytes
	return &Allocation{dev: d, kind: kind, bytes: bytes}, nil
}

func (d *Device) release(bytes int64) {
	d.mu.Lock()
	d.allocated -= bytes
	d.mu.Unlock()
}

// AllocatedBytes returns the bytes currently reserved on the device.
func (d *Device) AllocatedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}
