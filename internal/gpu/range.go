// Package gpu implements the functional execution-model simulator that
// stands in for an OpenCL/SYCL device in this reproduction (see DESIGN.md).
//
// The model follows the paper's §II.B abstract memory model: a kernel runs
// as many work-items organised into work-groups over an N-dimensional range;
// work-items in a group share a low-latency local memory and synchronise
// with barriers; all work-items see a device global memory and a read-only
// constant memory; atomics serialise concurrent updates to a location.
//
// Kernels are Go closures. A launch supplies a GroupKernel factory that is
// invoked once per work-group — plain Go variables it creates play the role
// of shared local memory — and returns the per-work-item body. Work-items of
// a group execute concurrently (true barrier semantics) while groups are
// distributed over a host worker pool. Every launch produces a Stats record
// of the memory traffic and instruction mix the timing model consumes.
package gpu

import (
	"errors"
	"fmt"
)

// MaxDims is the maximum ND-range dimensionality, as in OpenCL and SYCL.
const MaxDims = 3

// Range is the size of an ND-range or work-group in up to three dimensions.
// The zero value is invalid; construct with R1, R2 or R3.
type Range struct {
	dims  int
	sizes [MaxDims]int
}

// R1 returns a one-dimensional range.
func R1(x int) Range { return Range{dims: 1, sizes: [MaxDims]int{x, 1, 1}} }

// R2 returns a two-dimensional range.
func R2(x, y int) Range { return Range{dims: 2, sizes: [MaxDims]int{x, y, 1}} }

// R3 returns a three-dimensional range.
func R3(x, y, z int) Range { return Range{dims: 3, sizes: [MaxDims]int{x, y, z}} }

// Dims returns the dimensionality (1, 2 or 3; 0 for the zero value).
func (r Range) Dims() int { return r.dims }

// Size returns the extent in dimension d, or 1 beyond the range's
// dimensionality (matching get_global_size semantics).
func (r Range) Size(d int) int {
	if d < 0 || d >= MaxDims {
		return 1
	}
	if d >= r.dims {
		return 1
	}
	return r.sizes[d]
}

// Total returns the product of all extents.
func (r Range) Total() int {
	if r.dims == 0 {
		return 0
	}
	t := 1
	for d := 0; d < r.dims; d++ {
		t *= r.sizes[d]
	}
	return t
}

func (r Range) String() string {
	switch r.dims {
	case 1:
		return fmt.Sprintf("{%d}", r.sizes[0])
	case 2:
		return fmt.Sprintf("{%d,%d}", r.sizes[0], r.sizes[1])
	case 3:
		return fmt.Sprintf("{%d,%d,%d}", r.sizes[0], r.sizes[1], r.sizes[2])
	default:
		return "{invalid}"
	}
}

// Errors reported by launch validation and the memory allocator.
var (
	// ErrInvalidRange marks a zero or negative ND-range.
	ErrInvalidRange = errors.New("gpu: invalid ND-range")
	// ErrLocalSize marks a local size that does not divide the global size
	// in some dimension (a SYCL nd_range requirement the paper quotes:
	// "work-groups whose size must divide the ND-Range size in each
	// dimension").
	ErrLocalSize = errors.New("gpu: local size does not divide global size")
	// ErrWorkGroupTooLarge marks a work-group beyond the device limit.
	ErrWorkGroupTooLarge = errors.New("gpu: work-group size exceeds device limit")
	// ErrOutOfMemory marks an allocation beyond the device global memory.
	ErrOutOfMemory = errors.New("gpu: out of device memory")
	// ErrFreed marks use of a released allocation.
	ErrFreed = errors.New("gpu: use of released allocation")
)

// checkNDRange validates a (global, local) pair against the device limits.
func checkNDRange(global, local Range, maxWG int) error {
	if global.Dims() == 0 || global.Total() <= 0 {
		return fmt.Errorf("%w: global %v", ErrInvalidRange, global)
	}
	if local.Dims() == 0 || local.Total() <= 0 {
		return fmt.Errorf("%w: local %v", ErrInvalidRange, local)
	}
	if global.Dims() != local.Dims() {
		return fmt.Errorf("%w: global %v and local %v differ in dimensionality",
			ErrInvalidRange, global, local)
	}
	for d := 0; d < global.Dims(); d++ {
		if global.Size(d) <= 0 || local.Size(d) <= 0 {
			return fmt.Errorf("%w: non-positive extent in dimension %d", ErrInvalidRange, d)
		}
		if global.Size(d)%local.Size(d) != 0 {
			return fmt.Errorf("%w: dimension %d: %d %% %d != 0",
				ErrLocalSize, d, global.Size(d), local.Size(d))
		}
	}
	if local.Total() > maxWG {
		return fmt.Errorf("%w: %d > %d", ErrWorkGroupTooLarge, local.Total(), maxWG)
	}
	return nil
}
