// Package device holds the specifications of the simulated AMD GPUs the
// paper evaluates (Table VII) together with the microarchitectural constants
// the occupancy and timing models need. The three devices — Radeon VII,
// Instinct MI60 and Instinct MI100 — are GCN (Vega 20) and CDNA 1 parts
// sharing a 64-lane wavefront and a 4-SIMD compute unit.
package device

import (
	"fmt"
	"sort"
)

// Spec describes one simulated GPU. The first block of fields reproduces
// Table VII of the paper; the second block holds derived or
// microarchitectural constants used by the occupancy and timing models.
type Spec struct {
	// Name is the short device name used throughout the paper
	// ("RVII", "MI60", "MI100").
	Name string
	// Marketing is the full product name.
	Marketing string

	// Table VII columns.
	GlobalMemBytes int64   // device global memory
	GPUClockMHz    int     // shader clock
	MemClockMHz    int     // memory clock
	Cores          int     // stream processors
	L2CacheBytes   int64   // last-level cache
	PeakBWGBs      float64 // peak memory bandwidth, GB/s

	// Microarchitectural constants.
	WavefrontSize    int // lanes per wavefront (64 on GCN/CDNA)
	SIMDsPerCU       int // SIMD units per compute unit
	MaxWavesPerSIMD  int // hardware wave slots per SIMD
	VGPRBudget       int // model VGPR capacity per SIMD lane slot (see Occupancy)
	SGPRBudget       int // model SGPR capacity per SIMD
	VGPRGranularity  int // VGPR allocation granularity
	SGPRGranularity  int // SGPR allocation granularity
	LDSPerCUBytes    int // shared local memory per compute unit
	MaxWorkGroupSize int // largest launchable work-group
	// MemLatencyCycles is the unloaded global-memory read latency used by
	// the latency-hiding term of the timing model.
	MemLatencyCycles int
}

// ComputeUnits returns the number of compute units (Cores / WavefrontSize).
func (s Spec) ComputeUnits() int { return s.Cores / s.WavefrontSize }

// ClockHz returns the shader clock in Hz.
func (s Spec) ClockHz() float64 { return float64(s.GPUClockMHz) * 1e6 }

// MaxWavesPerCU returns the hardware wave-slot limit per compute unit.
func (s Spec) MaxWavesPerCU() int { return s.MaxWavesPerSIMD * s.SIMDsPerCU }

func (s Spec) String() string {
	return fmt.Sprintf("%s (%d CUs @ %d MHz, %d GiB, %.0f GB/s)",
		s.Name, s.ComputeUnits(), s.GPUClockMHz, s.GlobalMemBytes>>30, s.PeakBWGBs)
}

func vega(name, marketing string, memGiB int64, gpuMHz, memMHz, cores int, bw float64) Spec {
	return Spec{
		Name:             name,
		Marketing:        marketing,
		GlobalMemBytes:   memGiB << 30,
		GPUClockMHz:      gpuMHz,
		MemClockMHz:      memMHz,
		Cores:            cores,
		L2CacheBytes:     8 << 20,
		PeakBWGBs:        bw,
		WavefrontSize:    64,
		SIMDsPerCU:       4,
		MaxWavesPerSIMD:  10,
		VGPRBudget:       800,
		SGPRBudget:       3200,
		VGPRGranularity:  8,
		SGPRGranularity:  16,
		LDSPerCUBytes:    64 << 10,
		MaxWorkGroupSize: 1024,
		MemLatencyCycles: 350,
	}
}

// RadeonVII returns the Radeon VII (Vega 20) spec from Table VII.
func RadeonVII() Spec { return vega("RVII", "AMD Radeon VII", 16, 1800, 1000, 3840, 1024) }

// MI60 returns the Instinct MI60 (Vega 20) spec from Table VII.
func MI60() Spec { return vega("MI60", "AMD Instinct MI60", 32, 1800, 1000, 4096, 1024) }

// MI100 returns the Instinct MI100 (CDNA 1) spec from Table VII.
func MI100() Spec {
	s := vega("MI100", "AMD Instinct MI100", 32, 1502, 1200, 7680, 1228)
	s.MemLatencyCycles = 320
	return s
}

// All returns the evaluated devices in the paper's presentation order.
func All() []Spec { return []Spec{RadeonVII(), MI60(), MI100()} }

// ByName looks a device up by its short name, case-sensitively.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range All() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("device: unknown device %q (have %v)", name, names)
}

func roundUp(v, gran int) int {
	if gran <= 1 {
		return v
	}
	return (v + gran - 1) / gran * gran
}

// KernelResources are the per-kernel resource demands that bound occupancy.
type KernelResources struct {
	VGPRs         int // vector registers per work-item
	SGPRs         int // scalar registers per wavefront
	LDSBytesPerWG int // shared local memory per work-group
	WorkGroupSize int // work-items per work-group
}

// Occupancy returns the achievable waves per SIMD (the metric Table X
// reports, 10 at best) for a kernel with the given resource usage.
//
// The rule is a calibrated model of the GCN/CDNA allocation constraints:
// wave slots are limited by the hardware maximum, by vector-register file
// capacity (VGPRs are allocated per lane in VGPRGranularity steps out of a
// per-slot budget), by scalar-register file capacity, and by how many
// work-groups the compute unit's shared local memory can hold. The budget
// constants in Spec are chosen so that the model reproduces the paper's
// measured occupancies (64/57 VGPRs -> 10 waves, 82 VGPRs -> 9 waves).
func (s Spec) Occupancy(k KernelResources) int {
	waves := s.MaxWavesPerSIMD
	if k.VGPRs > 0 {
		if byVGPR := s.VGPRBudget / roundUp(k.VGPRs, s.VGPRGranularity); byVGPR < waves {
			waves = byVGPR
		}
	}
	if k.SGPRs > 0 {
		if bySGPR := s.SGPRBudget / roundUp(k.SGPRs, s.SGPRGranularity); bySGPR < waves {
			waves = bySGPR
		}
	}
	if k.LDSBytesPerWG > 0 && k.WorkGroupSize > 0 {
		groupsPerCU := s.LDSPerCUBytes / k.LDSBytesPerWG
		wavesPerGroup := (k.WorkGroupSize + s.WavefrontSize - 1) / s.WavefrontSize
		byLDS := groupsPerCU * wavesPerGroup / s.SIMDsPerCU
		if byLDS < waves {
			waves = byLDS
		}
	}
	if waves < 0 {
		waves = 0
	}
	return waves
}
