package device

import (
	"strings"
	"testing"
)

// TestTableVII pins the registry to the paper's Table VII values.
func TestTableVII(t *testing.T) {
	tests := []struct {
		spec   Spec
		memGiB int64
		gpuMHz int
		memMHz int
		cores  int
		l2MiB  int64
		peakBW float64
	}{
		{RadeonVII(), 16, 1800, 1000, 3840, 8, 1024},
		{MI60(), 32, 1800, 1000, 4096, 8, 1024},
		{MI100(), 32, 1502, 1200, 7680, 8, 1228},
	}
	for _, tt := range tests {
		s := tt.spec
		if s.GlobalMemBytes != tt.memGiB<<30 {
			t.Errorf("%s: mem = %d GiB, want %d", s.Name, s.GlobalMemBytes>>30, tt.memGiB)
		}
		if s.GPUClockMHz != tt.gpuMHz || s.MemClockMHz != tt.memMHz {
			t.Errorf("%s: clocks = %d/%d, want %d/%d", s.Name, s.GPUClockMHz, s.MemClockMHz, tt.gpuMHz, tt.memMHz)
		}
		if s.Cores != tt.cores {
			t.Errorf("%s: cores = %d, want %d", s.Name, s.Cores, tt.cores)
		}
		if s.L2CacheBytes != tt.l2MiB<<20 {
			t.Errorf("%s: L2 = %d, want %d MiB", s.Name, s.L2CacheBytes, tt.l2MiB)
		}
		if s.PeakBWGBs != tt.peakBW {
			t.Errorf("%s: BW = %v, want %v", s.Name, s.PeakBWGBs, tt.peakBW)
		}
	}
}

func TestComputeUnits(t *testing.T) {
	if got := RadeonVII().ComputeUnits(); got != 60 {
		t.Errorf("RVII CUs = %d, want 60", got)
	}
	if got := MI60().ComputeUnits(); got != 64 {
		t.Errorf("MI60 CUs = %d, want 64", got)
	}
	if got := MI100().ComputeUnits(); got != 120 {
		t.Errorf("MI100 CUs = %d, want 120", got)
	}
}

func TestByName(t *testing.T) {
	for _, want := range All() {
		got, err := ByName(want.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.Name, err)
		}
		if got.Cores != want.Cores {
			t.Errorf("ByName(%q) returned wrong spec", want.Name)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Error("ByName(unknown) = nil error")
	}
}

func TestString(t *testing.T) {
	s := MI100().String()
	for _, part := range []string{"MI100", "120 CUs", "1502 MHz", "32 GiB"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q missing %q", s, part)
		}
	}
}

// TestOccupancyPaperPoints pins the occupancy model to the register counts
// the paper measured for the comparer kernel variants (Table X, with the
// swapped row labels corrected per DESIGN.md): 64 VGPRs -> 10 waves,
// 57 -> 10, 82 -> 9.
func TestOccupancyPaperPoints(t *testing.T) {
	tests := []struct {
		vgprs, sgprs, want int
	}{
		{64, 22, 10}, // base, opt1, opt2
		{57, 10, 10}, // opt3
		{82, 10, 9},  // opt4
	}
	for _, spec := range All() {
		for _, tt := range tests {
			got := spec.Occupancy(KernelResources{
				VGPRs: tt.vgprs, SGPRs: tt.sgprs,
				LDSBytesPerWG: 256, WorkGroupSize: 256,
			})
			if got != tt.want {
				t.Errorf("%s: Occupancy(v=%d s=%d) = %d, want %d",
					spec.Name, tt.vgprs, tt.sgprs, got, tt.want)
			}
		}
	}
}

func TestOccupancyMonotonicInVGPRs(t *testing.T) {
	spec := MI60()
	prev := spec.MaxWavesPerSIMD + 1
	for v := 8; v <= 512; v += 8 {
		occ := spec.Occupancy(KernelResources{VGPRs: v})
		if occ > prev {
			t.Fatalf("occupancy increased with more VGPRs: %d VGPRs -> %d (prev %d)", v, occ, prev)
		}
		prev = occ
	}
	if prev >= spec.MaxWavesPerSIMD {
		t.Error("512 VGPRs should not sustain maximum occupancy")
	}
}

func TestOccupancyLDSConstraint(t *testing.T) {
	spec := RadeonVII()
	// 32 KiB of LDS per 256-item work-group: only two groups (8 waves)
	// fit a CU, i.e. 2 waves per SIMD.
	got := spec.Occupancy(KernelResources{
		VGPRs: 8, SGPRs: 8, LDSBytesPerWG: 32 << 10, WorkGroupSize: 256,
	})
	if got != 2 {
		t.Errorf("LDS-bound occupancy = %d, want 2", got)
	}
}

func TestOccupancyZeroResources(t *testing.T) {
	spec := MI100()
	if got := spec.Occupancy(KernelResources{}); got != spec.MaxWavesPerSIMD {
		t.Errorf("unconstrained occupancy = %d, want %d", got, spec.MaxWavesPerSIMD)
	}
}

func TestOccupancyHugeLDS(t *testing.T) {
	spec := MI100()
	got := spec.Occupancy(KernelResources{LDSBytesPerWG: 128 << 10, WorkGroupSize: 256})
	if got != 0 {
		t.Errorf("occupancy with oversized LDS = %d, want 0", got)
	}
}

func TestMaxWavesPerCU(t *testing.T) {
	if got := MI60().MaxWavesPerCU(); got != 40 {
		t.Errorf("MaxWavesPerCU = %d, want 40", got)
	}
}
