package gpu

import "fmt"

// Stats aggregates the observable work of one kernel launch. Kernel bodies
// report their memory traffic and instruction mix through the Item counting
// methods; the executor merges per-item counts into one record per launch.
// The timing model (internal/timing) turns a Stats record plus a device spec
// and an occupancy into estimated kernel time.
type Stats struct {
	// Launch shape.
	WorkItems  int64
	WorkGroups int64

	// Device global memory traffic, split into operations (transactions
	// before coalescing) and bytes.
	GlobalLoadOps   int64
	GlobalLoadBytes int64
	// RedundantLoadOps is the subset of GlobalLoadOps that re-read an
	// address already fetched by the same work-item (the reloads a
	// compiler emits without __restrict or explicit registering); they hit
	// the cache hierarchy rather than DRAM.
	RedundantLoadOps int64
	GlobalStoreOps   int64
	GlobalStoreBytes int64

	// Constant-memory reads (broadcast-friendly, cheap when uniform).
	ConstantLoadOps int64

	// Shared local memory traffic.
	LocalLoadOps  int64
	LocalStoreOps int64

	// Atomic read-modify-write operations on global memory.
	AtomicOps int64

	// Work-group barrier executions (per work-item).
	Barriers int64

	// ALU operations explicitly accounted by kernel bodies (comparisons,
	// address arithmetic bundles).
	ALUOps int64

	// Branches and the subset whose outcome diverged within a wavefront
	// (approximated by the kernel body's own accounting).
	Branches          int64
	DivergentBranches int64
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.WorkItems += o.WorkItems
	s.WorkGroups += o.WorkGroups
	s.GlobalLoadOps += o.GlobalLoadOps
	s.GlobalLoadBytes += o.GlobalLoadBytes
	s.RedundantLoadOps += o.RedundantLoadOps
	s.GlobalStoreOps += o.GlobalStoreOps
	s.GlobalStoreBytes += o.GlobalStoreBytes
	s.ConstantLoadOps += o.ConstantLoadOps
	s.LocalLoadOps += o.LocalLoadOps
	s.LocalStoreOps += o.LocalStoreOps
	s.AtomicOps += o.AtomicOps
	s.Barriers += o.Barriers
	s.ALUOps += o.ALUOps
	s.Branches += o.Branches
	s.DivergentBranches += o.DivergentBranches
}

// GlobalBytes returns total global-memory bytes moved.
func (s *Stats) GlobalBytes() int64 { return s.GlobalLoadBytes + s.GlobalStoreBytes }

func (s *Stats) String() string {
	return fmt.Sprintf(
		"items=%d groups=%d gld=%d(%dB) gst=%d(%dB) cld=%d lld=%d lst=%d atom=%d barrier=%d alu=%d br=%d/%d",
		s.WorkItems, s.WorkGroups,
		s.GlobalLoadOps, s.GlobalLoadBytes, s.GlobalStoreOps, s.GlobalStoreBytes,
		s.ConstantLoadOps, s.LocalLoadOps, s.LocalStoreOps,
		s.AtomicOps, s.Barriers, s.ALUOps, s.DivergentBranches, s.Branches)
}
