package gpu

import (
	"fmt"
	"sync"
)

// LocalArg marks an OpenCL-style __local kernel argument — the result of
// clSetKernelArg with a size and a NULL pointer. Kernel builders turn it
// into per-group shared storage.
type LocalArg struct {
	Bytes int
}

// LaunchSpec describes one kernel launch: the kernel name (for the launch
// log), the ND-range decomposition, and the group-kernel factory.
type LaunchSpec struct {
	Name   string
	Global Range
	Local  Range
	Kernel GroupKernel
	// LDSBytesPerWG declares how much shared local memory each work-group
	// uses; it is carried into the launch record for the occupancy model
	// and validated against the device limit.
	LDSBytesPerWG int
}

// launchState is the per-launch context shared by all groups.
type launchState struct {
	dev    *Device
	global Range
	local  Range
}

// Launch executes the kernel over the ND-range and returns the aggregated
// access statistics. Work-groups are distributed over the device's host
// worker pool; the work-items of each group run concurrently so that
// barriers have their real semantics. Launch blocks until the kernel
// completes (the frontends add their own asynchronous-queue semantics on
// top).
func (d *Device) Launch(spec LaunchSpec) (*Stats, error) {
	if spec.Kernel == nil {
		return nil, fmt.Errorf("gpu: launch %q: nil kernel", spec.Name)
	}
	if err := checkNDRange(spec.Global, spec.Local, d.spec.MaxWorkGroupSize); err != nil {
		return nil, fmt.Errorf("gpu: launch %q: %w", spec.Name, err)
	}
	if spec.LDSBytesPerWG > d.spec.LDSPerCUBytes {
		return nil, fmt.Errorf("gpu: launch %q: %d bytes of local memory exceed the %d-byte CU limit",
			spec.Name, spec.LDSBytesPerWG, d.spec.LDSPerCUBytes)
	}

	ls := &launchState{dev: d, global: spec.Global, local: spec.Local}
	var gridDim [MaxDims]int
	numGroups := 1
	for dim := 0; dim < MaxDims; dim++ {
		gridDim[dim] = spec.Global.Size(dim) / spec.Local.Size(dim)
		numGroups *= gridDim[dim]
	}
	groupSize := spec.Local.Total()

	workers := d.workers
	if workers > numGroups {
		workers = numGroups
	}
	if workers < 1 {
		workers = 1
	}

	var (
		total   Stats
		totalMu sync.Mutex
		wg      sync.WaitGroup
	)
	groupCh := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local Stats
			items := make([]Item, groupSize)
			for linear := range groupCh {
				g := &Group{
					launch:  ls,
					linear:  linear,
					barrier: newBarrier(groupSize),
				}
				// Decompose the linear group index; dimension 0 varies
				// fastest, matching OpenCL's enumeration.
				rem := linear
				for dim := 0; dim < MaxDims; dim++ {
					g.id[dim] = rem % gridDim[dim]
					rem /= gridDim[dim]
				}
				body := spec.Kernel(g)
				var itemWG sync.WaitGroup
				itemWG.Add(groupSize)
				for li := 0; li < groupSize; li++ {
					it := &items[li]
					*it = Item{group: g}
					rem := li
					for dim := 0; dim < MaxDims; dim++ {
						it.localID[dim] = rem % spec.Local.Size(dim)
						rem /= spec.Local.Size(dim)
						it.globalID[dim] = g.id[dim]*spec.Local.Size(dim) + it.localID[dim]
					}
					go func() {
						defer itemWG.Done()
						body(it)
					}()
				}
				itemWG.Wait()
				local.WorkGroups++
				for li := range items {
					local.Add(&items[li].stats)
				}
			}
			totalMu.Lock()
			total.Add(&local)
			totalMu.Unlock()
		}()
	}
	for gid := 0; gid < numGroups; gid++ {
		groupCh <- gid
	}
	close(groupCh)
	wg.Wait()

	total.WorkItems = int64(spec.Global.Total())
	d.recordLaunch(spec.Name, &total)
	return &total, nil
}
