package gpu

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/obs"
)

// LocalArg marks an OpenCL-style __local kernel argument — the result of
// clSetKernelArg with a size and a NULL pointer. Kernel builders turn it
// into per-group shared storage.
type LocalArg struct {
	Bytes int
}

// LaunchSpec describes one kernel launch: the kernel name (for the launch
// log), the ND-range decomposition, and the kernel under one of two
// contracts. Exactly one of Kernel or Phases must be set.
type LaunchSpec struct {
	Name   string
	Global Range
	Local  Range
	// Kernel is the legacy goroutine-per-item contract: the work-items of
	// each group run concurrently, so Item.Barrier has its real blocking
	// semantics. Use it for kernels with barriers that cannot be expressed
	// as phases.
	Kernel GroupKernel
	// Phases is the cooperative contract: the kernel body is split at its
	// barrier points and the scheduler runs each phase for every work-item
	// of a group sequentially on one worker, with zero per-item goroutines.
	// See PhaseKernel for the local-memory reuse semantics.
	Phases PhaseKernel
	// BarrierFree declares that Kernel never calls Item.Barrier, letting
	// the scheduler run its work-items sequentially on the owning worker
	// (the cooperative path) while keeping the legacy fresh-locals-per-group
	// factory semantics. A kernel that breaks the declaration by calling
	// Barrier makes the launch fail instead of deadlocking.
	BarrierFree bool
	// LDSBytesPerWG declares how much shared local memory each work-group
	// uses; it is carried into the launch record for the occupancy model
	// and validated against the device limit.
	LDSBytesPerWG int
	// Ctx, when set, bounds the launch: an injected hang blocks on it until
	// the caller's watchdog cancels, instead of wedging the process. A nil
	// Ctx keeps the historical synchronous contract (and converts injected
	// hangs into immediate launch failures, so nothing can block forever).
	Ctx context.Context
}

// launchState is the per-launch context shared by all groups.
type launchState struct {
	dev    *Device
	global Range
	local  Range
}

// inlineLaunchItems bounds the cooperative launches that run entirely on
// the calling goroutine: below this many work-items the work is dominated
// by scheduling overhead, so spawning workers would cost more than it buys.
const inlineLaunchItems = 2048

// Launch executes the kernel over the ND-range and returns the aggregated
// access statistics. Work-groups are distributed over the device's host
// worker pool; each worker claims groups from an atomic cursor. Under the
// cooperative contract (Phases, or Kernel with BarrierFree) the work-items
// of a group run sequentially on the owning worker with pooled per-worker
// state and no per-item goroutines; under the legacy Kernel contract each
// work-item gets its own goroutine so barriers keep their real blocking
// semantics. Launch blocks until the kernel completes (the frontends add
// their own asynchronous-queue semantics on top).
func (d *Device) Launch(spec LaunchSpec) (*Stats, error) {
	if d.obsTrace == nil && d.obsMetrics == nil {
		return d.launch(&spec)
	}
	// The clock starts before fault injection so a hung launch's span covers
	// the time it sat wedged until the watchdog reaped it.
	t0 := time.Now()
	stats, err := d.launch(&spec)
	dur := time.Since(t0)
	attrs := []obs.Attr{{Key: "kernel", Value: spec.Name}}
	if stats != nil {
		attrs = append(attrs,
			obs.Attr{Key: "work_items", Value: strconv.FormatInt(stats.WorkItems, 10)},
			obs.Attr{Key: "work_groups", Value: strconv.FormatInt(stats.WorkGroups, 10)})
	} else {
		attrs = append(attrs, obs.Attr{Key: "error", Value: err.Error()})
	}
	d.obsTrace.Complete(d.obsTrack, "launch:"+spec.Name, -1, t0, dur, attrs...)
	d.obsMetrics.Observe(obs.L(obs.MetricKernelLaunchSeconds, "kernel", spec.Name), dur.Seconds())
	d.obsMetrics.Count(obs.L(obs.MetricKernelLaunches, "kernel", spec.Name), 1)
	return stats, err
}

// launch is the uninstrumented launch body.
func (d *Device) launch(spec *LaunchSpec) (*Stats, error) {
	if err := d.injectLaunchFault(spec); err != nil {
		return nil, err
	}
	if spec.Kernel == nil && spec.Phases == nil {
		return nil, fmt.Errorf("gpu: launch %q: nil kernel", spec.Name)
	}
	if spec.Kernel != nil && spec.Phases != nil {
		return nil, fmt.Errorf("gpu: launch %q: both Kernel and Phases set", spec.Name)
	}
	if err := checkNDRange(spec.Global, spec.Local, d.spec.MaxWorkGroupSize); err != nil {
		return nil, fmt.Errorf("gpu: launch %q: %w", spec.Name, err)
	}
	if spec.LDSBytesPerWG > d.spec.LDSPerCUBytes {
		return nil, fmt.Errorf("gpu: launch %q: %d bytes of local memory exceed the %d-byte CU limit",
			spec.Name, spec.LDSBytesPerWG, d.spec.LDSPerCUBytes)
	}

	ls := &launchState{dev: d, global: spec.Global, local: spec.Local}
	var gridDim [MaxDims]int
	numGroups := 1
	for dim := 0; dim < MaxDims; dim++ {
		gridDim[dim] = spec.Global.Size(dim) / spec.Local.Size(dim)
		numGroups *= gridDim[dim]
	}
	groupSize := spec.Local.Total()

	workers := d.workers
	if workers > numGroups {
		workers = numGroups
	}
	if workers < 1 {
		workers = 1
	}
	cooperative := spec.Phases != nil || spec.BarrierFree
	if cooperative && numGroups*groupSize <= inlineLaunchItems {
		workers = 1
	}

	var total Stats
	var err error
	if cooperative {
		err = d.runCooperative(spec, ls, gridDim, numGroups, groupSize, workers, &total)
	} else {
		err = d.runConcurrent(spec, ls, gridDim, numGroups, groupSize, workers, &total)
	}
	if err != nil {
		return nil, fmt.Errorf("gpu: launch %q: %w", spec.Name, err)
	}
	total.WorkItems = int64(spec.Global.Total())
	d.recordLaunch(spec.Name, &total)
	return &total, nil
}

// injectLaunchFault samples the device's fault injector at the two kernel
// fault sites. A launch fault fails fast, before any work-group runs. A
// hang fault parks the launch on the spec's context — the simulated kernel
// is wedged and only the caller's watchdog deadline can reap it; launches
// submitted without a context degrade the hang to an immediate failure so
// an unwatched launch can never block forever.
func (d *Device) injectLaunchFault(spec *LaunchSpec) error {
	in := d.faults
	if in == nil {
		return nil
	}
	if in.Fire(fault.SiteLaunch) {
		return fault.Errorf(fault.SiteLaunch, fault.Transient,
			"gpu: launch %q: injected launch failure", spec.Name)
	}
	if in.Fire(fault.SiteHang) {
		if spec.Ctx == nil {
			return fault.Errorf(fault.SiteHang, fault.Transient,
				"gpu: launch %q: injected hang with no launch context", spec.Name)
		}
		<-spec.Ctx.Done()
		return fault.Errorf(fault.SiteHang, fault.Transient,
			"gpu: launch %q: hung work-group cancelled: %w", spec.Name, spec.Ctx.Err())
	}
	return nil
}

// coopWorker is the pooled per-worker execution state of the cooperative
// scheduler: one Group and one Item per local index, reused across every
// group the worker executes, all counting into one shared Stats shard.
type coopWorker struct {
	group *Group
	items []Item
}

func newCoopWorker(ls *launchState, groupSize int, stats *Stats, local Range) *coopWorker {
	w := &coopWorker{
		group: &Group{launch: ls},
		items: make([]Item, groupSize),
	}
	for li := range w.items {
		it := &w.items[li]
		it.group = w.group
		it.stats = stats
		rem := li
		for dim := 0; dim < MaxDims; dim++ {
			it.localID[dim] = rem % local.Size(dim)
			rem /= local.Size(dim)
		}
	}
	return w
}

// target repoints the worker's group and items at the given linear group.
func (w *coopWorker) target(linear int, gridDim [MaxDims]int, local Range) {
	g := w.group
	g.linear = linear
	rem := linear
	for dim := 0; dim < MaxDims; dim++ {
		g.id[dim] = rem % gridDim[dim]
		rem /= gridDim[dim]
	}
	for li := range w.items {
		it := &w.items[li]
		for dim := 0; dim < MaxDims; dim++ {
			it.globalID[dim] = g.id[dim]*local.Size(dim) + it.localID[dim]
		}
	}
}

// runCooperative executes the launch under the cooperative contract: each
// worker claims groups from the shared cursor and runs all work-items of a
// group sequentially, phase by phase. The boundary between two phases is
// the work-group barrier: because phase k runs to completion for every item
// before phase k+1 starts, all pre-barrier memory effects are visible after
// it, and the scheduler accounts one barrier execution per item per
// boundary exactly as the blocking path would.
func (d *Device) runCooperative(spec *LaunchSpec, ls *launchState, gridDim [MaxDims]int, numGroups, groupSize, workers int, total *Stats) error {
	var next atomic.Int64
	workerStats := make([]Stats, workers)
	errs := make([]error, workers)

	run := func(wi int) {
		defer func() {
			if r := recover(); r != nil {
				errs[wi] = fmt.Errorf("work-group kernel panicked: %v", r)
			}
		}()
		ws := &workerStats[wi]
		w := newCoopWorker(ls, groupSize, ws, spec.Local)
		var phases []WorkItemFunc
		if spec.Phases != nil {
			// The factory runs once per worker: local memory it allocates is
			// reused by every group the worker executes, matching the
			// uninitialized-at-group-start semantics of device LDS.
			phases = spec.Phases(w.group)
			if len(phases) == 0 {
				errs[wi] = fmt.Errorf("phase kernel returned no phases")
				return
			}
		}
		for {
			linear := int(next.Add(1)) - 1
			if linear >= numGroups {
				return
			}
			w.target(linear, gridDim, spec.Local)
			if spec.Phases != nil {
				for pi, phase := range phases {
					if pi > 0 {
						// Implicit work-group barrier between phases: every
						// item of the group executes it.
						ws.Barriers += int64(groupSize)
					}
					for li := range w.items {
						phase(&w.items[li])
					}
				}
			} else {
				w.group.locals = nil
				body := spec.Kernel(w.group) // fresh per group: legacy locals
				for li := range w.items {
					body(&w.items[li])
				}
			}
			ws.WorkGroups++
		}
	}

	if workers == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers - 1)
		for wi := 1; wi < workers; wi++ {
			go func(wi int) {
				defer wg.Done()
				run(wi)
			}(wi)
		}
		run(0)
		wg.Wait()
	}
	for wi := range workerStats {
		total.Add(&workerStats[wi])
		if errs[wi] != nil {
			return errs[wi]
		}
	}
	return nil
}

// runConcurrent executes the launch under the legacy contract: one
// goroutine per work-item per group, so Item.Barrier blocks for real.
// Group, barrier and item state are still pooled per worker and the stats
// shards are merged without a mutex.
func (d *Device) runConcurrent(spec *LaunchSpec, ls *launchState, gridDim [MaxDims]int, numGroups, groupSize, workers int, total *Stats) error {
	var next atomic.Int64
	workerStats := make([]Stats, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			ws := &workerStats[wi]
			g := &Group{launch: ls, barrier: newBarrier(groupSize)}
			items := make([]Item, groupSize)
			itemStats := make([]Stats, groupSize)
			for {
				linear := int(next.Add(1)) - 1
				if linear >= numGroups {
					return
				}
				g.linear = linear
				g.locals = nil
				rem := linear
				for dim := 0; dim < MaxDims; dim++ {
					g.id[dim] = rem % gridDim[dim]
					rem /= gridDim[dim]
				}
				body := spec.Kernel(g)
				var itemWG sync.WaitGroup
				itemWG.Add(groupSize)
				for li := 0; li < groupSize; li++ {
					it := &items[li]
					itemStats[li] = Stats{}
					it.group = g
					it.stats = &itemStats[li]
					rem := li
					for dim := 0; dim < MaxDims; dim++ {
						it.localID[dim] = rem % spec.Local.Size(dim)
						rem /= spec.Local.Size(dim)
						it.globalID[dim] = g.id[dim]*spec.Local.Size(dim) + it.localID[dim]
					}
					go func() {
						defer itemWG.Done()
						body(it)
					}()
				}
				itemWG.Wait()
				ws.WorkGroups++
				for li := range itemStats {
					ws.Add(&itemStats[li])
				}
			}
		}(wi)
	}
	wg.Wait()
	for wi := range workerStats {
		total.Add(&workerStats[wi])
	}
	return nil
}
