package gpu

import (
	"errors"
	"testing"

	"casoffinder/internal/gpu/device"
)

func TestAllocBudget(t *testing.T) {
	d := New(device.RadeonVII()) // 16 GiB
	a, err := d.Alloc(GlobalMem, 10<<30)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if d.AllocatedBytes() != 10<<30 {
		t.Errorf("AllocatedBytes = %d", d.AllocatedBytes())
	}
	if _, err := d.Alloc(GlobalMem, 7<<30); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-budget alloc error = %v, want ErrOutOfMemory", err)
	}
	if err := a.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if d.AllocatedBytes() != 0 {
		t.Errorf("AllocatedBytes after free = %d", d.AllocatedBytes())
	}
	b, err := d.Alloc(GlobalMem, 7<<30)
	if err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocKinds(t *testing.T) {
	d := New(device.MI60())
	g, err := d.Alloc(GlobalMem, 100)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Alloc(ConstantMem, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind() != GlobalMem || c.Kind() != ConstantMem {
		t.Error("Kind mismatch")
	}
	if g.Bytes() != 100 {
		t.Errorf("Bytes = %d", g.Bytes())
	}
}

func TestUseAfterFree(t *testing.T) {
	d := New(device.MI60())
	a, err := d.Alloc(GlobalMem, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Use(); err != nil {
		t.Errorf("Use before free: %v", err)
	}
	if a.Released() {
		t.Error("Released before free")
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if !a.Released() {
		t.Error("Released after free = false")
	}
	if err := a.Use(); !errors.Is(err, ErrFreed) {
		t.Errorf("Use after free = %v, want ErrFreed", err)
	}
	if err := a.Free(); !errors.Is(err, ErrFreed) {
		t.Errorf("double Free = %v, want ErrFreed", err)
	}
}

func TestAllocNegative(t *testing.T) {
	d := New(device.MI60())
	if _, err := d.Alloc(GlobalMem, -1); err == nil {
		t.Error("negative alloc = nil error")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{WorkItems: 1, GlobalLoadOps: 2, GlobalLoadBytes: 8, AtomicOps: 3, Branches: 4, DivergentBranches: 1}
	b := Stats{WorkItems: 10, GlobalLoadOps: 20, GlobalLoadBytes: 80, AtomicOps: 30, Branches: 40, DivergentBranches: 10}
	a.Add(&b)
	if a.WorkItems != 11 || a.GlobalLoadOps != 22 || a.GlobalLoadBytes != 88 ||
		a.AtomicOps != 33 || a.Branches != 44 || a.DivergentBranches != 11 {
		t.Errorf("Add result: %+v", a)
	}
}

func TestItemCounterHelpers(t *testing.T) {
	d := New(device.MI60(), WithWorkers(1))
	stats, err := d.Launch(LaunchSpec{
		Name: "counters", Global: R1(4), Local: R1(4),
		Kernel: func(g *Group) WorkItemFunc {
			g.SetLocals([]any{make([]int32, 4)})
			return func(it *Item) {
				if it.Group() != g {
					t.Error("Item.Group mismatch")
				}
				if s, ok := g.Local(0).([]int32); !ok || len(s) != 4 {
					t.Error("Group.Local wrong")
				}
				it.LoadGlobalN(3, 4)
				it.LoadGlobalRedundant(4)
				it.LoadLocalN(5)
				it.StoreLocalN(2)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GlobalLoadOps != 4*(3+1) || stats.GlobalLoadBytes != 4*(12+4) {
		t.Errorf("global loads: %d ops %d bytes", stats.GlobalLoadOps, stats.GlobalLoadBytes)
	}
	if stats.RedundantLoadOps != 4 {
		t.Errorf("redundant = %d", stats.RedundantLoadOps)
	}
	if stats.LocalLoadOps != 20 || stats.LocalStoreOps != 8 {
		t.Errorf("local: %d/%d", stats.LocalLoadOps, stats.LocalStoreOps)
	}
	if d.Spec().Name != "MI60" {
		t.Error("Device.Spec")
	}
}
