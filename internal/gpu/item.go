package gpu

import "sync/atomic"

// Group is the work-group context handed to a GroupKernel factory. Go
// variables created inside the factory are shared by all work-items of the
// group, playing the role of OpenCL __local / SYCL local-accessor memory.
type Group struct {
	launch  *launchState
	id      [MaxDims]int
	linear  int
	barrier *barrier
	locals  []any
}

// SetLocals attaches per-group shared storage created by a kernel factory;
// the SYCL frontend uses it to back local accessors. It must be called from
// the GroupKernel factory, before any work-item of the group runs.
func (g *Group) SetLocals(ls []any) { g.locals = ls }

// Local returns the i'th shared-storage object set by SetLocals.
func (g *Group) Local(i int) any { return g.locals[i] }

// ID returns the group's index in dimension d (get_group_id).
func (g *Group) ID(d int) int {
	if d < 0 || d >= MaxDims {
		return 0
	}
	return g.id[d]
}

// Linear returns the group's linearized index.
func (g *Group) Linear() int { return g.linear }

// LocalRange returns the work-group extent in dimension d.
func (g *Group) LocalRange(d int) int { return g.launch.local.Size(d) }

// Device returns the device executing the group.
func (g *Group) Device() *Device { return g.launch.dev }

// WorkItemFunc is the per-work-item kernel body.
type WorkItemFunc func(it *Item)

// GroupKernel is invoked once per work-group; its closure state is the
// group's shared local memory, and the returned body runs once per
// work-item.
type GroupKernel func(g *Group) WorkItemFunc

// PhaseKernel is the cooperative scheduler's kernel contract: the kernel
// body split at its barrier points. The returned phases run in order, each
// executed for every work-item of the group before the next starts, which
// gives the inter-phase boundary exactly the semantics of a work-group
// barrier without blocking any goroutine.
//
// Unlike GroupKernel, the factory is invoked once per executing worker, not
// once per group: the Group it receives is re-targeted at each group the
// worker runs, and any local-memory storage the factory allocates is reused
// across those groups. That matches real devices, where shared local memory
// is uninitialized at group start — phases must write local memory before
// reading it, as the paper's staging loops do.
type PhaseKernel func(g *Group) []WorkItemFunc

// Item is the execution context of one work-item: its coordinates in the
// ND-range, the group barrier, and the access counters that feed the launch
// Stats. It corresponds to the OpenCL built-in index functions and the SYCL
// nd_item class contrasted in the paper's Table IV.
//
// Under the cooperative scheduler all items of a worker share one Stats
// shard (they run sequentially, so the unsynchronized counters are safe);
// under the legacy scheduler each concurrent item counts into its own.
type Item struct {
	group    *Group
	localID  [MaxDims]int
	globalID [MaxDims]int
	stats    *Stats
}

// Group returns the work-group context of the item.
func (it *Item) Group() *Group { return it.group }

// GlobalID returns the work-item's global index in dimension d
// (get_global_id / nd_item::get_global_id).
func (it *Item) GlobalID(d int) int {
	if d < 0 || d >= MaxDims {
		return 0
	}
	return it.globalID[d]
}

// LocalID returns the index within the work-group (get_local_id).
func (it *Item) LocalID(d int) int {
	if d < 0 || d >= MaxDims {
		return 0
	}
	return it.localID[d]
}

// GroupID returns the work-group index (get_group_id / nd_item::get_group).
func (it *Item) GroupID(d int) int { return it.group.ID(d) }

// LocalRange returns the work-group size in dimension d
// (get_local_size / nd_item::get_local_range).
func (it *Item) LocalRange(d int) int { return it.group.launch.local.Size(d) }

// GlobalRange returns the ND-range extent in dimension d (get_global_size).
func (it *Item) GlobalRange(d int) int { return it.group.launch.global.Size(d) }

// GroupRange returns the number of work-groups in dimension d.
func (it *Item) GroupRange(d int) int {
	l := it.group.launch
	if d >= l.global.Dims() {
		return 1
	}
	return l.global.Size(d) / l.local.Size(d)
}

// Barrier synchronises all work-items of the group
// (barrier(CLK_LOCAL_MEM_FENCE) / nd_item::barrier(local_space)). Under the
// cooperative scheduler there is no blocking barrier — barriers are the
// boundaries between phases — so a kernel that was declared barrier-free
// (or phase-structured) yet calls Barrier fails the launch instead of
// deadlocking.
func (it *Item) Barrier() {
	it.stats.Barriers++
	if it.group.barrier == nil {
		panic("gpu: Item.Barrier called under the cooperative scheduler; " +
			"split the kernel at its barriers with LaunchSpec.Phases instead of declaring it BarrierFree")
	}
	it.group.barrier.wait()
}

// Counting hooks. Kernel bodies call these alongside their ordinary Go
// memory accesses so the launch Stats reflect the traffic a real device
// would see; the optimization variants of the comparer kernel differ mainly
// in which of these they execute.

// LoadGlobal accounts one global-memory read of n bytes.
func (it *Item) LoadGlobal(n int) {
	it.stats.GlobalLoadOps++
	it.stats.GlobalLoadBytes += int64(n)
}

// StoreGlobal accounts one global-memory write of n bytes.
func (it *Item) StoreGlobal(n int) {
	it.stats.GlobalStoreOps++
	it.stats.GlobalStoreBytes += int64(n)
}

// LoadGlobalRedundant accounts one global read that re-fetches an address
// this work-item already loaded (served from cache on a real device).
func (it *Item) LoadGlobalRedundant(n int) {
	it.stats.GlobalLoadOps++
	it.stats.GlobalLoadBytes += int64(n)
	it.stats.RedundantLoadOps++
}

// LoadGlobalN accounts ops global-memory reads of elemBytes each.
func (it *Item) LoadGlobalN(ops, elemBytes int) {
	it.stats.GlobalLoadOps += int64(ops)
	it.stats.GlobalLoadBytes += int64(ops) * int64(elemBytes)
}

// LoadLocalN accounts n shared-local-memory reads.
func (it *Item) LoadLocalN(n int) { it.stats.LocalLoadOps += int64(n) }

// StoreLocalN accounts n shared-local-memory writes.
func (it *Item) StoreLocalN(n int) { it.stats.LocalStoreOps += int64(n) }

// LoadConstant accounts one constant-memory read.
func (it *Item) LoadConstant() { it.stats.ConstantLoadOps++ }

// LoadLocal accounts one shared-local-memory read.
func (it *Item) LoadLocal() { it.stats.LocalLoadOps++ }

// StoreLocal accounts one shared-local-memory write.
func (it *Item) StoreLocal() { it.stats.LocalStoreOps++ }

// ALU accounts n arithmetic operations.
func (it *Item) ALU(n int) { it.stats.ALUOps += int64(n) }

// Branch accounts one branch; diverged marks intra-wavefront divergence.
func (it *Item) Branch(diverged bool) {
	it.stats.Branches++
	if diverged {
		it.stats.DivergentBranches++
	}
}

// AtomicIncUint32 performs the atomic increment of Table V — the only
// atomic the application's kernels use — returning the previous value. The
// update is a real atomic on host memory, so concurrent work-items get
// unique slots exactly as on a device.
func (it *Item) AtomicIncUint32(p *uint32) uint32 {
	it.stats.AtomicOps++
	return atomic.AddUint32(p, 1) - 1
}

// AtomicAddUint32 adds delta and returns the previous value.
func (it *Item) AtomicAddUint32(p *uint32, delta uint32) uint32 {
	it.stats.AtomicOps++
	return atomic.AddUint32(p, delta) - delta
}

// AtomicLoadUint32 performs an atomic read. The hit-buffer arena's claim
// protocol reads the group's published page with it: under the legacy
// concurrent contract the page is written by a racing work-item of the same
// group, so a plain load would be a data race on the host.
func (it *Item) AtomicLoadUint32(p *uint32) uint32 {
	it.stats.AtomicOps++
	return atomic.LoadUint32(p)
}

// AtomicStoreUint32 performs an atomic write. The arena's claiming item
// publishes the group's page with it.
func (it *Item) AtomicStoreUint32(p *uint32, v uint32) {
	it.stats.AtomicOps++
	atomic.StoreUint32(p, v)
}
