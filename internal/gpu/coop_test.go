package gpu

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"casoffinder/internal/gpu/device"
)

// TestPhasesLeaderPrefetch is the cooperative-contract port of
// TestBarrierLeaderPrefetch: the leader item stages shared local memory in
// phase 0, the implicit inter-phase barrier publishes it, and phase 1 reads
// it back. The range is sized past the inline-launch threshold so several
// workers race over the groups.
func TestPhasesLeaderPrefetch(t *testing.T) {
	d := testDevice(t)
	const groups, local = 128, 64
	results := make([]int32, groups*local)
	_, err := d.Launch(LaunchSpec{
		Name:   "prefetch_phases",
		Global: R1(groups * local),
		Local:  R1(local),
		Phases: func(g *Group) []WorkItemFunc {
			shared := make([]int32, local) // reused across the worker's groups
			return []WorkItemFunc{
				func(it *Item) {
					if it.LocalID(0) == 0 {
						base := int32(it.GroupID(0) * 1000)
						for k := range shared {
							shared[k] = base + int32(k)
						}
					}
				},
				func(it *Item) {
					results[it.GlobalID(0)] = shared[it.LocalID(0)]
				},
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for gid, v := range results {
		if want := int32((gid/local)*1000 + gid%local); v != want {
			t.Fatalf("item %d read %d, want %d (phase barrier visibility broken)", gid, v, want)
		}
	}
}

// TestBarrierFreeCoverage checks that the cooperative path taken by
// BarrierFree kernels still visits every global ID exactly once, with
// enough items to spill past the inline-launch threshold.
func TestBarrierFreeCoverage(t *testing.T) {
	d := testDevice(t)
	const global, local = 8192, 64
	seen := make([]int32, global)
	_, err := d.Launch(LaunchSpec{
		Name:   "cover_coop",
		Global: R1(global),
		Local:  R1(local),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) {
				gid := it.GlobalID(0)
				if gid != it.GroupID(0)*it.LocalRange(0)+it.LocalID(0) {
					t.Errorf("item %d: coordinate mismatch", gid)
				}
				seen[gid]++ // unique index per item: no race
			}
		},
		BarrierFree: true,
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("global ID %d visited %d times", i, n)
		}
	}
}

// TestBarrierFreeFreshLocals checks that a BarrierFree kernel keeps the
// legacy factory contract: the factory runs per group and SetLocals storage
// is not leaked between groups.
func TestBarrierFreeFreshLocals(t *testing.T) {
	d := testDevice(t)
	const groups, local = 64, 64
	var stale atomic.Int32
	_, err := d.Launch(LaunchSpec{
		Name:   "fresh_locals",
		Global: R1(groups * local),
		Local:  R1(local),
		Kernel: func(g *Group) WorkItemFunc {
			if g.locals != nil {
				stale.Add(1)
			}
			g.SetLocals([]any{make([]int32, local)})
			return func(it *Item) {
				buf := it.Group().Local(0).([]int32)
				buf[it.LocalID(0)] = int32(it.GlobalID(0))
			}
		},
		BarrierFree: true,
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if n := stale.Load(); n != 0 {
		t.Errorf("%d groups saw stale locals from a previous group", n)
	}
}

// TestBarrierFreeViolation checks that a kernel declared BarrierFree that
// calls Item.Barrier anyway fails the launch instead of deadlocking.
func TestBarrierFreeViolation(t *testing.T) {
	d := testDevice(t)
	_, err := d.Launch(LaunchSpec{
		Name:   "liar",
		Global: R1(64),
		Local:  R1(64),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) { it.Barrier() }
		},
		BarrierFree: true,
	})
	if err == nil {
		t.Fatal("Launch = nil error, want barrier-misuse failure")
	}
	if !strings.Contains(err.Error(), "Barrier") {
		t.Errorf("error %q does not mention the barrier misuse", err)
	}
}

// TestPhaseBarrierViolation checks the same for a phase body: phases are
// split at barriers, so calling Item.Barrier inside one is a bug.
func TestPhaseBarrierViolation(t *testing.T) {
	d := testDevice(t)
	_, err := d.Launch(LaunchSpec{
		Name:   "phase_liar",
		Global: R1(64),
		Local:  R1(64),
		Phases: func(g *Group) []WorkItemFunc {
			return []WorkItemFunc{func(it *Item) { it.Barrier() }}
		},
	})
	if err == nil {
		t.Fatal("Launch = nil error, want barrier-misuse failure")
	}
}

// TestPhasesStatsParity runs the same counting kernel under the legacy
// blocking contract and as a two-phase cooperative kernel and requires the
// aggregated Stats to be identical, barrier counts included — the timing
// model prices launches off these counters, so the scheduler switch must
// not change them.
func TestPhasesStatsParity(t *testing.T) {
	d := testDevice(t)
	const global, local = 4096, 64
	stage := func(it *Item) {
		it.ALU(2)
		it.LoadGlobal(4)
		it.StoreLocal()
	}
	scan := func(it *Item) {
		it.LoadLocal()
		it.Branch(it.GlobalID(0)%2 == 0)
		it.StoreGlobal(4)
	}
	legacy, err := d.Launch(LaunchSpec{
		Name:   "parity_legacy",
		Global: R1(global),
		Local:  R1(local),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) {
				stage(it)
				it.Barrier()
				scan(it)
			}
		},
	})
	if err != nil {
		t.Fatalf("legacy Launch: %v", err)
	}
	coop, err := d.Launch(LaunchSpec{
		Name:   "parity_coop",
		Global: R1(global),
		Local:  R1(local),
		Phases: func(g *Group) []WorkItemFunc {
			return []WorkItemFunc{stage, scan}
		},
	})
	if err != nil {
		t.Fatalf("cooperative Launch: %v", err)
	}
	if *legacy != *coop {
		t.Errorf("stats diverge:\nlegacy = %+v\ncoop   = %+v", *legacy, *coop)
	}
	if coop.Barriers != global {
		t.Errorf("coop Barriers = %d, want %d (one per item per phase boundary)", coop.Barriers, global)
	}
}

// TestPhaseFactoryPerWorker checks the PhaseKernel contract: the factory
// runs once per worker, not once per group, so its local allocations are
// pooled across groups.
func TestPhaseFactoryPerWorker(t *testing.T) {
	const workers = 4
	d := New(device.MI100(), WithWorkers(workers))
	const groups, local = 256, 64
	var calls atomic.Int32
	_, err := d.Launch(LaunchSpec{
		Name:   "factory_count",
		Global: R1(groups * local),
		Local:  R1(local),
		Phases: func(g *Group) []WorkItemFunc {
			calls.Add(1)
			return []WorkItemFunc{func(it *Item) {}}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if n := int(calls.Load()); n < 1 || n > workers {
		t.Errorf("factory ran %d times, want between 1 and %d (once per worker)", n, workers)
	}
}

// TestPhasesAtomicCompaction reruns the comparer's output-compaction idiom
// under the cooperative scheduler.
func TestPhasesAtomicCompaction(t *testing.T) {
	d := testDevice(t)
	const n = 8192
	var count uint32
	slots := make([]int32, n)
	_, err := d.Launch(LaunchSpec{
		Name:   "compact_coop",
		Global: R1(n),
		Local:  R1(128),
		Phases: func(g *Group) []WorkItemFunc {
			return []WorkItemFunc{func(it *Item) {
				if it.GlobalID(0)%3 == 0 {
					old := it.AtomicIncUint32(&count)
					slots[old] = int32(it.GlobalID(0))
				}
			}}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	want := uint32((n + 2) / 3)
	if count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
	seen := make(map[int32]bool)
	for i := uint32(0); i < count; i++ {
		v := slots[i]
		if v%3 != 0 || seen[v] {
			t.Fatalf("slot %d holds bad or duplicate item %d", i, v)
		}
		seen[v] = true
	}
}

// TestLaunchSpecValidation covers the cooperative-contract launch errors.
func TestLaunchSpecValidation(t *testing.T) {
	d := testDevice(t)
	nop := func(g *Group) WorkItemFunc { return func(it *Item) {} }
	onePhase := func(g *Group) []WorkItemFunc { return []WorkItemFunc{func(it *Item) {}} }
	t.Run("both contracts", func(t *testing.T) {
		_, err := d.Launch(LaunchSpec{Name: "k", Global: R1(64), Local: R1(64), Kernel: nop, Phases: onePhase})
		if err == nil {
			t.Fatal("Launch accepted both Kernel and Phases")
		}
	})
	t.Run("no phases returned", func(t *testing.T) {
		_, err := d.Launch(LaunchSpec{
			Name: "k", Global: R1(64 * 64), Local: R1(64),
			Phases: func(g *Group) []WorkItemFunc { return nil },
		})
		if err == nil {
			t.Fatal("Launch accepted an empty phase list")
		}
	})
}

// TestConcurrentCooperativeLaunches stresses the cooperative scheduler with
// parallel launches the way the out-of-order frontends drive it.
func TestConcurrentCooperativeLaunches(t *testing.T) {
	d := New(device.MI100(), WithWorkers(4))
	const launchers = 8
	var wg sync.WaitGroup
	results := make([][]int32, launchers)
	wg.Add(launchers)
	for l := 0; l < launchers; l++ {
		go func(l int) {
			defer wg.Done()
			out := make([]int32, 4096)
			_, err := d.Launch(LaunchSpec{
				Name:   "stress_coop",
				Global: R1(4096),
				Local:  R1(64),
				Phases: func(g *Group) []WorkItemFunc {
					shared := make([]int32, 64)
					return []WorkItemFunc{
						func(it *Item) {
							if it.LocalID(0) == 0 {
								for k := range shared {
									shared[k] = int32(l * 1000)
								}
							}
						},
						func(it *Item) {
							out[it.GlobalID(0)] = shared[it.LocalID(0)] + int32(it.GlobalID(0))
						},
					}
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[l] = out
		}(l)
	}
	wg.Wait()
	for l, out := range results {
		for i, v := range out {
			if v != int32(l*1000+i) {
				t.Fatalf("launcher %d: out[%d] = %d, want %d", l, i, v, l*1000+i)
			}
		}
	}
}
