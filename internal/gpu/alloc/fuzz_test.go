package alloc

import (
	"encoding/binary"
	"errors"
	"testing"

	"casoffinder/internal/fault"
)

// FuzzArenaDecode hammers the arena readback boundary — the one place a
// corrupted (or maliciously crafted) device buffer crosses back into host
// control flow. Whatever claim-state bytes arrive, Decode must return
// either a typed SiteArena corruption fault or a geometry that is safe to
// gather from: totals bounded by the arena, every claimed page owned by
// exactly one group, no entry range outside the data buffer. It must never
// panic and never hand back geometry that would missize the entry copy.
// The seed corpus encodes the overflow/corruption taxonomy from
// TestDecodeRejectsCorruption; `make fuzz-regress` grows it.
func FuzzArenaDecode(f *testing.F) {
	np, po := NoPage, PageOverflow
	seed := func(cursor uint32, count, pageOf []uint32) {
		raw := make([]byte, 0, 4+4*len(count)+4*len(pageOf))
		raw = binary.LittleEndian.AppendUint32(raw, cursor)
		for _, c := range count {
			raw = binary.LittleEndian.AppendUint32(raw, c)
		}
		for _, p := range pageOf {
			raw = binary.LittleEndian.AppendUint32(raw, p)
		}
		f.Add(uint16(len(count)), raw)
	}
	// Clean shapes: idle, one full page, sparse claims.
	seed(0, []uint32{0, 0}, []uint32{np, np})
	seed(1, []uint32{64, 0}, []uint32{0, np})
	seed(2, []uint32{5, 9, 0}, []uint32{1, 0, np})
	// Overflow shapes: a group past its page, cursor past the arena.
	seed(1, []uint32{70, 0}, []uint32{0, np})
	seed(4, []uint32{64, 64}, []uint32{0, po})
	// The corruption taxonomy.
	seed(5, []uint32{0, 0}, []uint32{np, np}) // cursor past pages
	seed(0, []uint32{3, 0}, []uint32{np, np}) // emitted without a page
	seed(1, []uint32{64, 1}, []uint32{po, 0}) // overflow page, zero counter
	seed(1, []uint32{1, 1}, []uint32{0, 3})   // page past cursor
	seed(1, []uint32{65, 0}, []uint32{0, np}) // counter past page size
	seed(1, []uint32{0, 0}, []uint32{0, np})  // claimed without emitting
	seed(2, []uint32{1, 1}, []uint32{0, 0})   // page claimed twice
	seed(2, []uint32{1, 0}, []uint32{0, np})  // claimed pages unowned

	const pageSlots, maxPages = 64, 8
	f.Fuzz(func(t *testing.T, groups uint16, raw []byte) {
		g := int(groups%64) + 1
		if len(raw) < 4+8*g {
			return
		}
		cursor := binary.LittleEndian.Uint32(raw)
		count := make([]uint32, g)
		pageOf := make([]uint32, g)
		for i := 0; i < g; i++ {
			count[i] = binary.LittleEndian.Uint32(raw[4+4*i:])
			pageOf[i] = binary.LittleEndian.Uint32(raw[4+4*g+4*i:])
		}
		geo, err := Decode(cursor, count, pageOf, pageSlots, maxPages)
		if err != nil {
			var fe *fault.Error
			if !errors.As(err, &fe) || fe.Site != fault.SiteArena {
				t.Fatalf("decode rejection is not a SiteArena fault: %v", err)
			}
			return
		}
		// Admitted geometry must be safe to gather from: pages 0..Claimed-1
		// each carry a count inside the page, and Total is their sum — the
		// exact size of the compacted copy the backends enqueue.
		if geo.Claimed < 0 || geo.Claimed > maxPages || geo.Claimed > g {
			t.Fatalf("claimed %d pages of %d with %d groups", geo.Claimed, maxPages, g)
		}
		if geo.PageSlots != pageSlots || len(geo.Counts) != geo.Claimed {
			t.Fatalf("geometry %+v does not match %d claimed pages of %d slots",
				geo, geo.Claimed, pageSlots)
		}
		total := 0
		for page, n := range geo.Counts {
			if n < 1 || n > pageSlots {
				t.Fatalf("page %d count %d outside (0, %d]", page, n, pageSlots)
			}
			total += n
		}
		if total != geo.Total {
			t.Fatalf("Total %d != sum of page counts %d", geo.Total, total)
		}
		data := make([]uint32, maxPages*pageSlots)
		if got := Gather(geo, data, nil); len(got) != geo.Total {
			t.Fatalf("Gather returned %d entries for Total %d", len(got), geo.Total)
		}
	})
}
