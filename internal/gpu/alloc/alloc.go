// Package alloc is the device-side hit-buffer arena: a page-based
// sub-allocator that lets kernels compact an unpredictable number of output
// entries into an arena provisioned for the *observed* hit density instead
// of the worst case ("Dynamic Memory Management on GPUs with SYCL" shape,
// specialised to the append-only output pattern of the finder and comparer).
//
// The arena is a flat slot array cut into fixed-size pages. Pages are sized
// so one work-group's maximum output fits in one page (PageSlots >= max
// entries per item × work-group size), so each group claims at most one
// page: the group's first emitting work-item takes a page from the global
// atomic page cursor and publishes it to the group's page table, and every
// emission takes its slot offset from the group's emission counter. When the
// cursor runs past the provisioned pages the claim bumps an overflow counter
// and drops the write — the host reads the counter back, grows the arena on
// a bounded doubling schedule capped at the worst-case layout, and
// relaunches, so no entry is ever lost end to end.
//
// Under the one-page-per-group invariant the worst-case layout of one page
// per work-group can never overflow, which is what makes the doubling
// schedule terminate: growth is capped at a provably sufficient size, and
// overflow observed *at* that size can only mean corrupted arena state. The
// claim protocol is also schedule-deterministic: every emission costs one
// atomic add plus one atomic read (or, for the one claiming item per group,
// one cursor add and one publish store), so launch Stats are identical
// under the cooperative and legacy contracts.
package alloc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"casoffinder/internal/fault"
	"casoffinder/internal/gpu"
)

const (
	// NoPage marks a group that has not claimed a page yet.
	NoPage = ^uint32(0)
	// PageOverflow marks a group whose page claim found the arena
	// exhausted; its siblings drop their entries without touching the
	// cursor.
	PageOverflow = ^uint32(0) - 1
)

// Layout is the host-side shape of one launch's arena.
type Layout struct {
	// PageSlots is the number of entry slots per page. It must be at least
	// the maximum number of entries one work-group can emit (max entries
	// per item × work-group size) for the worst-case no-overflow guarantee
	// to hold.
	PageSlots int
	// Pages is the number of provisioned pages.
	Pages int
	// Groups is the number of work-groups in the launch; the group state
	// tables have one entry per group.
	Groups int
}

// WorstCase returns the layout that can never overflow: one page per
// work-group, with pages holding a full group's maximum output.
func WorstCase(groups, pageSlots int) Layout {
	if groups < 1 {
		groups = 1
	}
	return Layout{PageSlots: pageSlots, Pages: groups, Groups: groups}
}

// SizedPages returns a layout provisioning pages pages directly, clamped to
// [one page, the worst case for groups]. Because every emitting group claims
// exactly one page regardless of how few entries it writes, provisioning is
// a prediction of *emitting groups*, not of entries — this is the
// constructor the density predictors use.
func SizedPages(pages, groups, pageSlots int) Layout {
	l := WorstCase(groups, pageSlots)
	if pages < 1 {
		pages = 1
	}
	if pages < l.Pages {
		l.Pages = pages
	}
	return l
}

// Grow returns the next layout of the bounded doubling schedule: double the
// pages, capped at the worst case. ok is false when l is already at the
// cap, i.e. overflow at this size is impossible without corruption.
func Grow(l Layout) (next Layout, ok bool) {
	worst := WorstCase(l.Groups, l.PageSlots)
	if l.Pages >= worst.Pages {
		return l, false
	}
	l.Pages *= 2
	if l.Pages > worst.Pages {
		l.Pages = worst.Pages
	}
	return l, true
}

// Slots is the total entry capacity of the layout.
func (l Layout) Slots() int { return l.Pages * l.PageSlots }

// DataBytes is the size of the arena's entry storage for entries of
// entryBytes bytes each — the output provisioning the dynamic arena
// shrinks relative to worst-case allocation.
func (l Layout) DataBytes(entryBytes int) int64 {
	return int64(l.Slots()) * int64(entryBytes)
}

// MetaBytes is the size of the arena's bookkeeping state: the per-group
// emission counters and page table, the page cursor and the overflow
// counter.
func (l Layout) MetaBytes() int64 {
	return 8*int64(l.Groups) + 4 + 4
}

// Device is the device-visible arena state bound into one kernel launch.
// Count, PageOf, Cursor and Overflow alias device buffers; kernels allocate
// slots through Claim and never touch the state directly.
type Device struct {
	// PageSlots is the entry capacity of one page.
	PageSlots int
	// Pages is the number of provisioned pages.
	Pages int
	// Cursor is the global page-claim cursor.
	Cursor *uint32
	// Count holds one emission counter per work-group; the counter value
	// is the entry's slot offset within the group's page.
	Count []uint32
	// PageOf holds the page claimed by each work-group — NoPage before the
	// group's first emission, PageOverflow when the claim failed.
	PageOf []uint32
	// Overflow counts entries dropped because every page was claimed.
	Overflow *uint32
}

// Claim allocates one output slot for the calling work-item, returning -1
// when the arena is exhausted (the drop is counted in Overflow; the host
// grows the arena and relaunches). The group's first emitting item claims
// the group's single page from the global cursor and publishes it; every
// later emission is one atomic add on the group counter and one atomic read
// of the published page, making the accounted traffic independent of how
// the scheduler interleaves work-items.
func (d *Device) Claim(it *gpu.Item) int {
	g := it.GroupID(0)
	off := it.AtomicIncUint32(&d.Count[g])
	if int(off) >= d.PageSlots {
		// Only reachable when the host sized pages below the group's
		// maximum output, violating the one-page-per-group invariant;
		// dropped defensively rather than corrupting a neighbour page.
		it.AtomicIncUint32(d.Overflow)
		return -1
	}
	if off == 0 {
		page := it.AtomicIncUint32(d.Cursor)
		if int(page) >= d.Pages {
			it.AtomicStoreUint32(&d.PageOf[g], PageOverflow)
			it.AtomicIncUint32(d.Overflow)
			return -1
		}
		it.AtomicStoreUint32(&d.PageOf[g], page)
		return int(page) * d.PageSlots
	}
	page := it.AtomicLoadUint32(&d.PageOf[g])
	for page == NoPage {
		// The claiming sibling has taken offset 0 but not published yet;
		// a device would replay the dependent read, so the spin is not
		// separately costed. Under sequential (cooperative or inline)
		// execution the claimer always runs first and the loop never spins.
		page = atomic.LoadUint32(&d.PageOf[g])
	}
	if page == PageOverflow {
		it.AtomicIncUint32(d.Overflow)
		return -1
	}
	return int(page)*d.PageSlots + int(off)
}

// Geometry is the decoded result of one launch: which pages were claimed
// and how many valid entries each holds.
type Geometry struct {
	// PageSlots mirrors the layout's page capacity.
	PageSlots int
	// Claimed is the number of pages the launch claimed.
	Claimed int
	// Counts holds the valid entry count of each claimed page.
	Counts []int
	// Total is the sum of Counts.
	Total int
}

// Decode validates the arena state read back from a completed,
// non-overflowed launch — the page cursor and the per-group counters and
// page table — and returns its geometry. Impossible state (a cursor past
// the provisioned pages, a group counter beyond the page size, a page
// claimed by two groups, or an emitting group without a page) is rejected
// as fault.SiteArena corruption: readback bit-flips must never size the
// entry gather.
func Decode(cursor uint32, count, pageOf []uint32, pageSlots, pages int) (*Geometry, error) {
	if len(count) != len(pageOf) {
		return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
			"alloc: %d group counters but %d group pages", len(count), len(pageOf))
	}
	if int64(cursor) > int64(pages) {
		return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
			"alloc: page cursor %d exceeds %d provisioned pages", cursor, pages)
	}
	g := &Geometry{PageSlots: pageSlots, Claimed: int(cursor), Counts: make([]int, cursor)}
	owned := 0
	for grp, p := range pageOf {
		n := count[grp]
		switch {
		case p == NoPage:
			if n != 0 {
				return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
					"alloc: group %d emitted %d entries without a page", grp, n)
			}
		case p == PageOverflow:
			return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
				"alloc: group %d overflowed but the overflow counter read zero", grp)
		case int64(p) >= int64(cursor):
			return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
				"alloc: group %d holds page %d past cursor %d", grp, p, cursor)
		case int64(n) > int64(pageSlots):
			return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
				"alloc: group %d counter %d exceeds page size %d", grp, n, pageSlots)
		case n == 0:
			return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
				"alloc: group %d claimed page %d without emitting", grp, p)
		case g.Counts[p] != 0:
			return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
				"alloc: page %d claimed by two groups", p)
		default:
			g.Counts[p] = int(n)
			g.Total += int(n)
			owned++
		}
	}
	if owned != g.Claimed {
		return nil, fault.Errorf(fault.SiteArena, fault.Corruption,
			"alloc: cursor claimed %d pages but %d groups own one", g.Claimed, owned)
	}
	return g, nil
}

// Gather appends the valid entries of every claimed page from the
// page-strided device array src to dst, in page order.
func Gather[T any](g *Geometry, src, dst []T) []T {
	for p := 0; p < g.Claimed; p++ {
		base := p * g.PageSlots
		dst = append(dst, src[base:base+g.Counts[p]]...)
	}
	return dst
}

// Host is a host-allocated arena: the backing arrays plus the Device view
// over them, for single-launch callers (tests, the isa model's probes) that
// do not stage the state through a frontend's buffers.
type Host struct {
	Layout   Layout
	Cursor   []uint32
	Count    []uint32
	PageOf   []uint32
	Overflow []uint32
}

// NewHost allocates a zeroed arena for the layout with the page table
// cleared to NoPage.
func NewHost(l Layout) *Host {
	return &Host{
		Layout:   l,
		Cursor:   make([]uint32, 1),
		Count:    make([]uint32, l.Groups),
		PageOf:   UnsetPages(l.Groups),
		Overflow: make([]uint32, 1),
	}
}

// Device returns the kernel-visible view of the arena.
func (h *Host) Device() *Device {
	return &Device{
		PageSlots: h.Layout.PageSlots,
		Pages:     h.Layout.Pages,
		Cursor:    &h.Cursor[0],
		Count:     h.Count,
		PageOf:    h.PageOf,
		Overflow:  &h.Overflow[0],
	}
}

// Reset clears the arena for relaunch.
func (h *Host) Reset() {
	h.Cursor[0] = 0
	h.Overflow[0] = 0
	for i := range h.Count {
		h.Count[i] = 0
	}
	for i := range h.PageOf {
		h.PageOf[i] = NoPage
	}
}

// Decode decodes the host arena's own state after a launch.
func (h *Host) Decode() (*Geometry, error) {
	return Decode(h.Cursor[0], h.Count, h.PageOf, h.Layout.PageSlots, h.Layout.Pages)
}

// UnsetPages returns a host slice of n NoPage entries, the initial contents
// of a page-table device buffer.
func UnsetPages(n int) []uint32 {
	pages := make([]uint32, n)
	for i := range pages {
		pages[i] = NoPage
	}
	return pages
}

// Predictor tracks an exponentially weighted moving average of output
// density across launches, seeding each chunk's arena from the chunks
// before it. Because provisioning is page-granular (every emitting group
// claims one page however few entries it writes), callers feed it page
// claims per work-group — Observe(groups, pagesClaimed) — and read
// predictions in pages; the same mechanics serve any per-unit rate. It is
// safe for concurrent use.
type Predictor struct {
	mu     sync.Mutex
	alpha  float64
	margin float64
	rate   float64
	seeded bool
}

// NewPredictor returns a predictor starting at initial entries-per-unit.
// alpha is the EWMA weight of the newest observation; margin is the safety
// factor applied to predictions (headroom against density variance between
// neighbouring chunks).
func NewPredictor(alpha, margin, initial float64) *Predictor {
	return &Predictor{alpha: alpha, margin: margin, rate: initial}
}

// Predict returns the provisioning estimate for units scanned units:
// ceil(rate × units × margin), at least 1.
func (p *Predictor) Predict(units int) int {
	p.mu.Lock()
	rate := p.rate
	p.mu.Unlock()
	n := int(math.Ceil(rate * float64(units) * p.margin))
	if n < 1 {
		n = 1
	}
	return n
}

// Observe folds one completed launch's observed density into the average.
// The first observation replaces the configured prior entirely.
func (p *Predictor) Observe(units, entries int) {
	if units <= 0 {
		return
	}
	obs := float64(entries) / float64(units)
	p.mu.Lock()
	if !p.seeded {
		p.rate = obs
		p.seeded = true
	} else {
		p.rate += p.alpha * (obs - p.rate)
	}
	p.mu.Unlock()
}

// Rate returns the current entries-per-unit estimate.
func (p *Predictor) Rate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rate
}

// String renders the layout for error messages and logs.
func (l Layout) String() string {
	return fmt.Sprintf("%d pages × %d slots (%d groups)", l.Pages, l.PageSlots, l.Groups)
}
