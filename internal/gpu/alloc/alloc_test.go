package alloc

import (
	"errors"
	"sort"
	"testing"

	"casoffinder/internal/fault"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
)

func testDevice() *gpu.Device {
	return gpu.New(device.MI100(), gpu.WithWorkers(4))
}

func TestLayoutConstructors(t *testing.T) {
	w := WorstCase(10, 64)
	if w.Pages != 10 || w.PageSlots != 64 || w.Groups != 10 {
		t.Fatalf("WorstCase(10, 64) = %+v", w)
	}
	if w.Slots() != 640 || w.DataBytes(5) != 3200 {
		t.Errorf("Slots = %d, DataBytes(5) = %d", w.Slots(), w.DataBytes(5))
	}
	if w.MetaBytes() != 8*10+8 {
		t.Errorf("MetaBytes = %d, want %d", w.MetaBytes(), 8*10+8)
	}
	if z := WorstCase(0, 64); z.Pages != 1 || z.Groups != 1 {
		t.Errorf("WorstCase clamps zero groups to one: %+v", z)
	}

	// SizedPages clamps to [1, worst case].
	if s := SizedPages(3, 10, 64); s.Pages != 3 || s.Groups != 10 {
		t.Errorf("SizedPages(3) = %+v", s)
	}
	if s := SizedPages(0, 10, 64); s.Pages != 1 {
		t.Errorf("SizedPages(0) = %+v, want one page", s)
	}
	if s := SizedPages(99, 10, 64); s.Pages != 10 {
		t.Errorf("SizedPages(99) = %+v, want worst-case cap", s)
	}
}

// TestGrowDoublesToWorstCase pins the bounded doubling schedule: every Grow
// doubles, the cap is the worst case, and growth at the cap reports ok=false
// — the invariant that makes the overflow-retry loop terminate.
func TestGrowDoublesToWorstCase(t *testing.T) {
	l := SizedPages(1, 13, 64)
	var trail []int
	for {
		next, ok := Grow(l)
		if !ok {
			break
		}
		if next.Pages <= l.Pages {
			t.Fatalf("Grow did not grow: %d -> %d", l.Pages, next.Pages)
		}
		l = next
		trail = append(trail, l.Pages)
		if len(trail) > 10 {
			t.Fatalf("doubling schedule did not terminate: %v", trail)
		}
	}
	want := []int{2, 4, 8, 13}
	if len(trail) != len(want) {
		t.Fatalf("growth trail = %v, want %v", trail, want)
	}
	for i := range want {
		if trail[i] != want[i] {
			t.Fatalf("growth trail = %v, want %v", trail, want)
		}
	}
	if _, ok := Grow(l); ok {
		t.Error("Grow at the worst case reported ok")
	}
}

// TestClaimCompactsSparseEmissions launches a kernel where only a minority
// of groups emit, into an arena provisioned below one-page-per-group, and
// checks the full round trip: no overflow, Decode geometry matches the
// emission pattern, and Gather recovers exactly the emitted values.
func TestClaimCompactsSparseEmissions(t *testing.T) {
	const (
		groups    = 16
		wg        = 64
		pageSlots = wg
	)
	// Groups 3, 7 and 11 emit: every 4th item in group 3 and 11, every item
	// in group 7.
	emits := func(group, local int) bool {
		switch group {
		case 3, 11:
			return local%4 == 0
		case 7:
			return true
		}
		return false
	}
	layout := SizedPages(4, groups, pageSlots)
	h := NewHost(layout)
	data := make([]uint32, layout.Slots())
	dev := h.Device()
	if _, err := testDevice().Launch(gpu.LaunchSpec{
		Name:   "emit",
		Global: gpu.R1(groups * wg),
		Local:  gpu.R1(wg),
		Kernel: func(g *gpu.Group) gpu.WorkItemFunc {
			return func(it *gpu.Item) {
				if !emits(it.GroupID(0), it.LocalID(0)) {
					return
				}
				slot := dev.Claim(it)
				if slot < 0 {
					return
				}
				data[slot] = uint32(it.GlobalID(0))
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if h.Overflow[0] != 0 {
		t.Fatalf("overflow = %d on a sufficient arena", h.Overflow[0])
	}
	geo, err := h.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if geo.Claimed != 3 {
		t.Fatalf("claimed %d pages, want 3 (one per emitting group)", geo.Claimed)
	}
	wantTotal := wg/4 + wg + wg/4
	if geo.Total != wantTotal {
		t.Fatalf("decoded %d entries, want %d", geo.Total, wantTotal)
	}
	got := Gather(geo, data, nil)
	var want []uint32
	for g := 0; g < groups; g++ {
		for l := 0; l < wg; l++ {
			if emits(g, l) {
				want = append(want, uint32(g*wg+l))
			}
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("gathered %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry set diverges at %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// TestClaimOverflowGrowRetry drives the full host loop the backends run:
// an under-provisioned launch overflows (counted, entries dropped, no
// corruption), the layout doubles, and the retried launch at a sufficient
// size recovers every entry.
func TestClaimOverflowGrowRetry(t *testing.T) {
	const (
		groups    = 8
		wg        = 32
		pageSlots = wg
	)
	layout := SizedPages(1, groups, pageSlots) // every group emits: 8 needed
	d := testDevice()
	for attempt := 0; ; attempt++ {
		if attempt > 8 {
			t.Fatal("grow-retry loop did not terminate")
		}
		h := NewHost(layout)
		data := make([]uint32, layout.Slots())
		dev := h.Device()
		if _, err := d.Launch(gpu.LaunchSpec{
			Name:   "emit-all",
			Global: gpu.R1(groups * wg),
			Local:  gpu.R1(wg),
			Kernel: func(g *gpu.Group) gpu.WorkItemFunc {
				return func(it *gpu.Item) {
					if slot := dev.Claim(it); slot >= 0 {
						data[slot] = uint32(it.GlobalID(0)) + 1
					}
				}
			},
		}); err != nil {
			t.Fatal(err)
		}
		if h.Overflow[0] == 0 {
			geo, err := h.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if geo.Total != groups*wg {
				t.Fatalf("recovered %d entries, want %d", geo.Total, groups*wg)
			}
			for _, v := range Gather(geo, data, nil) {
				if v == 0 {
					t.Fatal("gathered an unwritten slot")
				}
			}
			if attempt == 0 {
				t.Fatal("one page for eight emitting groups did not overflow")
			}
			return
		}
		next, ok := Grow(layout)
		if !ok {
			t.Fatalf("overflow at the worst case (%v)", layout)
		}
		layout = next
	}
}

// TestClaimDeterministicTotals runs the same dense launch twice under the
// concurrent scheduler: the atomic traffic and decoded totals must not
// depend on interleaving.
func TestClaimDeterministicTotals(t *testing.T) {
	const groups, wg = 8, 64
	layout := WorstCase(groups, wg)
	run := func() (int64, int) {
		h := NewHost(layout)
		dev := h.Device()
		stats, err := testDevice().Launch(gpu.LaunchSpec{
			Name:   "emit",
			Global: gpu.R1(groups * wg),
			Local:  gpu.R1(wg),
			Kernel: func(g *gpu.Group) gpu.WorkItemFunc {
				return func(it *gpu.Item) {
					if it.GlobalID(0)%3 == 0 {
						dev.Claim(it)
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		geo, err := h.Decode()
		if err != nil {
			t.Fatal(err)
		}
		return stats.AtomicOps, geo.Total
	}
	a1, t1 := run()
	a2, t2 := run()
	if a1 != a2 || t1 != t2 {
		t.Errorf("runs diverged: atomics %d vs %d, totals %d vs %d", a1, a2, t1, t2)
	}
}

// TestDecodeRejectsCorruption feeds Decode every impossible-state shape a
// corrupted readback could produce; each must come back as SiteArena
// corruption, never as geometry that would missize the entry gather.
func TestDecodeRejectsCorruption(t *testing.T) {
	const pageSlots, pages = 64, 4
	np, po := NoPage, PageOverflow
	cases := []struct {
		name   string
		cursor uint32
		count  []uint32
		pageOf []uint32
	}{
		{"mismatched tables", 0, []uint32{0}, []uint32{np, np}},
		{"cursor past pages", 5, []uint32{0, 0}, []uint32{np, np}},
		{"emitted without a page", 0, []uint32{3, 0}, []uint32{np, np}},
		{"overflow page with zero counter", 1, []uint32{64, 1}, []uint32{po, 0}},
		{"page past cursor", 1, []uint32{1, 1}, []uint32{0, 3}},
		{"counter past page size", 1, []uint32{65, 0}, []uint32{0, np}},
		{"claimed without emitting", 1, []uint32{0, 0}, []uint32{0, np}},
		{"page claimed twice", 2, []uint32{1, 1}, []uint32{0, 0}},
		{"claimed pages unowned", 2, []uint32{1, 0}, []uint32{0, np}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode(tt.cursor, tt.count, tt.pageOf, pageSlots, pages)
			if err == nil {
				t.Fatal("corrupt state decoded")
			}
			var fe *fault.Error
			if !errors.As(err, &fe) || fe.Site != fault.SiteArena || fe.Class != fault.Corruption {
				t.Fatalf("err = %v, want SiteArena corruption", err)
			}
		})
	}

	// The clean shape those cases mutate decodes fine.
	geo, err := Decode(2, []uint32{5, 9, 0}, []uint32{1, 0, np}, pageSlots, pages)
	if err != nil {
		t.Fatalf("clean state rejected: %v", err)
	}
	if geo.Claimed != 2 || geo.Total != 14 || geo.Counts[0] != 9 || geo.Counts[1] != 5 {
		t.Errorf("geometry = %+v", geo)
	}
}

func TestHostReset(t *testing.T) {
	h := NewHost(SizedPages(2, 4, 8))
	h.Cursor[0], h.Overflow[0] = 2, 1
	h.Count[1], h.PageOf[1] = 3, 0
	h.Reset()
	if h.Cursor[0] != 0 || h.Overflow[0] != 0 || h.Count[1] != 0 || h.PageOf[1] != NoPage {
		t.Errorf("Reset left state: %+v", h)
	}
}

func TestPredictor(t *testing.T) {
	p := NewPredictor(0.3, 1.5, 1.0)
	// Prior rate 1.0 with margin 1.5: 10 units -> 15 pages.
	if got := p.Predict(10); got != 15 {
		t.Errorf("prior Predict(10) = %d, want 15", got)
	}
	// The first observation replaces the prior outright.
	p.Observe(10, 2)
	if r := p.Rate(); r != 0.2 {
		t.Errorf("rate after first observation = %v, want 0.2", r)
	}
	if got := p.Predict(10); got != 3 {
		t.Errorf("Predict(10) = %d, want ceil(0.2*10*1.5) = 3", got)
	}
	// Later observations fold in with the EWMA weight.
	p.Observe(10, 10)
	if r := p.Rate(); r < 0.43 || r > 0.45 {
		t.Errorf("rate after EWMA fold = %v, want 0.2 + 0.3*(1.0-0.2) = 0.44", r)
	}
	// Predictions never drop below one page, and zero-unit observations
	// are ignored rather than dividing by zero.
	p.Observe(0, 100)
	if got := NewPredictor(0.3, 1.5, 0).Predict(10); got != 1 {
		t.Errorf("zero-rate Predict = %d, want the one-page floor", got)
	}
}
