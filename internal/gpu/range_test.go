package gpu

import (
	"errors"
	"testing"
)

func TestRangeConstructors(t *testing.T) {
	tests := []struct {
		r     Range
		dims  int
		sizes [3]int
		total int
	}{
		{R1(7), 1, [3]int{7, 1, 1}, 7},
		{R2(4, 5), 2, [3]int{4, 5, 1}, 20},
		{R3(2, 3, 4), 3, [3]int{2, 3, 4}, 24},
	}
	for _, tt := range tests {
		if tt.r.Dims() != tt.dims {
			t.Errorf("%v: Dims = %d, want %d", tt.r, tt.r.Dims(), tt.dims)
		}
		for d := 0; d < 3; d++ {
			if tt.r.Size(d) != tt.sizes[d] {
				t.Errorf("%v: Size(%d) = %d, want %d", tt.r, d, tt.r.Size(d), tt.sizes[d])
			}
		}
		if tt.r.Total() != tt.total {
			t.Errorf("%v: Total = %d, want %d", tt.r, tt.r.Total(), tt.total)
		}
	}
}

func TestRangeZeroValue(t *testing.T) {
	var r Range
	if r.Dims() != 0 || r.Total() != 0 {
		t.Errorf("zero Range: Dims=%d Total=%d", r.Dims(), r.Total())
	}
	if r.String() != "{invalid}" {
		t.Errorf("zero Range String = %q", r.String())
	}
}

func TestRangeSizeOutOfBounds(t *testing.T) {
	r := R2(3, 4)
	if r.Size(-1) != 1 || r.Size(2) != 1 || r.Size(99) != 1 {
		t.Error("out-of-range dimension should report extent 1")
	}
}

func TestCheckNDRange(t *testing.T) {
	tests := []struct {
		name          string
		global, local Range
		wantErr       error
	}{
		{"ok 1d", R1(1024), R1(256), nil},
		{"ok 2d", R2(64, 64), R2(8, 8), nil},
		{"ok 3d", R3(8, 8, 8), R3(2, 2, 2), nil},
		{"zero global", Range{}, R1(1), ErrInvalidRange},
		{"zero local", R1(64), Range{}, ErrInvalidRange},
		{"dim mismatch", R2(64, 64), R1(8), ErrInvalidRange},
		{"not dividing", R1(100), R1(256), ErrLocalSize},
		{"not dividing dim 1", R2(64, 63), R2(8, 8), ErrLocalSize},
		{"too large wg", R1(4096), R1(2048), ErrWorkGroupTooLarge},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := checkNDRange(tt.global, tt.local, 1024)
			if tt.wantErr == nil {
				if err != nil {
					t.Errorf("checkNDRange = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("checkNDRange = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestRangeString(t *testing.T) {
	if s := R3(1, 2, 3).String(); s != "{1,2,3}" {
		t.Errorf("String = %q", s)
	}
	if s := R1(5).String(); s != "{5}" {
		t.Errorf("String = %q", s)
	}
}
