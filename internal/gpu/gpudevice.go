package gpu

import (
	"runtime"
	"sync"

	"casoffinder/internal/fault"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/obs"
)

// Device is one simulated GPU: a spec from the Table VII registry, a
// global-memory budget, a host worker pool that stands in for the compute
// units, and a log of every kernel launch with its access statistics (the
// simulator's equivalent of a profiler, used to identify the hotspot kernel
// as the paper does in §IV.B).
type Device struct {
	spec    device.Spec
	workers int
	faults  *fault.Injector

	// Observability sinks, attached by SetObs before work is submitted and
	// then read without locking on the launch path. Both are nil-safe, so
	// an unobserved device pays one pointer check per launch.
	obsTrace   *obs.Tracer
	obsMetrics *obs.Metrics
	obsTrack   string

	mu        sync.Mutex
	allocated int64
	launches  []LaunchRecord
}

// LaunchRecord is one entry of the device's launch log.
type LaunchRecord struct {
	Name  string
	Stats Stats
}

// Option configures a Device.
type Option func(*Device)

// WithWorkers sets the number of host goroutines that execute work-groups
// concurrently. The default is runtime.NumCPU().
func WithWorkers(n int) Option {
	return func(d *Device) {
		if n > 0 {
			d.workers = n
		}
	}
}

// New creates a simulated device with the given spec.
func New(spec device.Spec, opts ...Option) *Device {
	d := &Device{spec: spec, workers: runtime.NumCPU()}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Spec returns the device specification.
func (d *Device) Spec() device.Spec { return d.spec }

// WithFaults attaches a fault injector at construction time.
func WithFaults(in *fault.Injector) Option {
	return func(d *Device) { d.faults = in }
}

// SetFaults attaches (or, with nil, removes) the device's fault injector.
// It must be called before work is submitted; the injector is then read
// without locking on the launch path.
func (d *Device) SetFaults(in *fault.Injector) { d.faults = in }

// Faults returns the device's fault injector; nil means no injection. The
// runtime frontends sample it for their own fault sites (enqueue errors,
// readback corruption, async exceptions) so one seeded schedule covers the
// whole simulated stack.
func (d *Device) Faults() *fault.Injector { return d.faults }

// SetObs attaches the run's observability sinks: every kernel launch is
// recorded as a span on the given trace track and into the per-kernel
// latency histogram. Like SetFaults it must be called before work is
// submitted; an empty track defaults to "gpu:<device name>". Pass nils to
// detach.
func (d *Device) SetObs(t *obs.Tracer, m *obs.Metrics, track string) {
	if track == "" {
		track = "gpu:" + d.spec.Name
	}
	d.obsTrace, d.obsMetrics, d.obsTrack = t, m, track
}

// Trace returns the attached tracer; nil means launches are untraced.
func (d *Device) Trace() *obs.Tracer { return d.obsTrace }

// Instant records a run-scoped instant marker on the device's trace track;
// the frontends use it for events without a duration (a lost device, an
// async exception). No-op when no tracer is attached.
func (d *Device) Instant(name string, attrs ...obs.Attr) {
	d.obsTrace.Instant(d.obsTrack, name, -1, attrs...)
}

// Metrics returns the attached metrics registry; nil means unmetered.
func (d *Device) Metrics() *obs.Metrics { return d.obsMetrics }

func (d *Device) recordLaunch(name string, s *Stats) {
	d.mu.Lock()
	d.launches = append(d.launches, LaunchRecord{Name: name, Stats: *s})
	d.mu.Unlock()
}

// LaunchLog returns a copy of the launch history.
func (d *Device) LaunchLog() []LaunchRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]LaunchRecord, len(d.launches))
	copy(out, d.launches)
	return out
}

// ResetLaunchLog clears the launch history.
func (d *Device) ResetLaunchLog() {
	d.mu.Lock()
	d.launches = nil
	d.mu.Unlock()
}

// ProfileByKernel aggregates the launch log per kernel name, the simulator's
// stand-in for a profiler run.
func (d *Device) ProfileByKernel() map[string]Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]Stats)
	for _, rec := range d.launches {
		agg := out[rec.Name]
		agg.Add(&rec.Stats)
		out[rec.Name] = agg
	}
	return out
}
