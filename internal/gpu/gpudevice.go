package gpu

import (
	"runtime"
	"sync"

	"casoffinder/internal/gpu/device"
)

// Device is one simulated GPU: a spec from the Table VII registry, a
// global-memory budget, a host worker pool that stands in for the compute
// units, and a log of every kernel launch with its access statistics (the
// simulator's equivalent of a profiler, used to identify the hotspot kernel
// as the paper does in §IV.B).
type Device struct {
	spec    device.Spec
	workers int

	mu        sync.Mutex
	allocated int64
	launches  []LaunchRecord
}

// LaunchRecord is one entry of the device's launch log.
type LaunchRecord struct {
	Name  string
	Stats Stats
}

// Option configures a Device.
type Option func(*Device)

// WithWorkers sets the number of host goroutines that execute work-groups
// concurrently. The default is runtime.NumCPU().
func WithWorkers(n int) Option {
	return func(d *Device) {
		if n > 0 {
			d.workers = n
		}
	}
}

// New creates a simulated device with the given spec.
func New(spec device.Spec, opts ...Option) *Device {
	d := &Device{spec: spec, workers: runtime.NumCPU()}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Spec returns the device specification.
func (d *Device) Spec() device.Spec { return d.spec }

func (d *Device) recordLaunch(name string, s *Stats) {
	d.mu.Lock()
	d.launches = append(d.launches, LaunchRecord{Name: name, Stats: *s})
	d.mu.Unlock()
}

// LaunchLog returns a copy of the launch history.
func (d *Device) LaunchLog() []LaunchRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]LaunchRecord, len(d.launches))
	copy(out, d.launches)
	return out
}

// ResetLaunchLog clears the launch history.
func (d *Device) ResetLaunchLog() {
	d.mu.Lock()
	d.launches = nil
	d.mu.Unlock()
}

// ProfileByKernel aggregates the launch log per kernel name, the simulator's
// stand-in for a profiler run.
func (d *Device) ProfileByKernel() map[string]Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]Stats)
	for _, rec := range d.launches {
		agg := out[rec.Name]
		agg.Add(&rec.Stats)
		out[rec.Name] = agg
	}
	return out
}
