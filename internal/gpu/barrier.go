package gpu

import "sync"

// barrier is a reusable synchronization barrier for the work-items of one
// executing work-group. It implements the semantics the paper describes in
// §II.B: a barrier "ensures that all work-items have finished an operation
// before using the result of that operation", and memory operations
// performed before the barrier are visible after it (the mutex hand-off
// provides the happens-before edge).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all parties have called wait, then releases them
// together. The barrier is reusable: a new generation starts as soon as the
// previous one completes.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
