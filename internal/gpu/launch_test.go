package gpu

import (
	"errors"
	"sync"
	"testing"

	"casoffinder/internal/gpu/device"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	return New(device.MI100(), WithWorkers(4))
}

// TestLaunchCoversGlobalIDs checks that every global ID in a 1-D range is
// visited exactly once and that local/group coordinates are consistent.
func TestLaunchCoversGlobalIDs(t *testing.T) {
	d := testDevice(t)
	const global, local = 1024, 64
	seen := make([]int32, global)
	var bad sync.Map
	_, err := d.Launch(LaunchSpec{
		Name:   "cover",
		Global: R1(global),
		Local:  R1(local),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) {
				gid := it.GlobalID(0)
				if gid != it.GroupID(0)*it.LocalRange(0)+it.LocalID(0) {
					bad.Store(gid, "coordinate mismatch")
				}
				if it.GlobalRange(0) != global || it.LocalRange(0) != local {
					bad.Store(gid, "range mismatch")
				}
				if it.GroupRange(0) != global/local {
					bad.Store(gid, "group range mismatch")
				}
				seen[gid]++ // unique index per item: no race
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	bad.Range(func(k, v any) bool {
		t.Errorf("item %v: %v", k, v)
		return true
	})
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("global ID %d visited %d times", i, n)
		}
	}
}

func TestLaunch3D(t *testing.T) {
	d := testDevice(t)
	const x, y, z = 8, 6, 4
	seen := make([]int32, x*y*z)
	_, err := d.Launch(LaunchSpec{
		Name:   "cover3d",
		Global: R3(x, y, z),
		Local:  R3(4, 3, 2),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) {
				idx := it.GlobalID(0) + x*(it.GlobalID(1)+y*it.GlobalID(2))
				seen[idx]++
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("linear ID %d visited %d times", i, n)
		}
	}
}

// TestBarrierLeaderPrefetch reproduces the exact pattern of the paper's
// kernels: the first work-item of each group fills shared local memory, a
// barrier follows, then every item reads the shared data. Without correct
// barrier semantics some item would observe zeros.
func TestBarrierLeaderPrefetch(t *testing.T) {
	d := testDevice(t)
	const groups, local = 32, 64
	results := make([]int32, groups*local)
	_, err := d.Launch(LaunchSpec{
		Name:   "prefetch",
		Global: R1(groups * local),
		Local:  R1(local),
		Kernel: func(g *Group) WorkItemFunc {
			shared := make([]int32, local) // work-group local memory
			return func(it *Item) {
				li := it.GlobalID(0) - it.GroupID(0)*it.LocalRange(0)
				if li == 0 {
					for k := range shared {
						shared[k] = int32(100 + k)
					}
				}
				it.Barrier()
				results[it.GlobalID(0)] = shared[li]
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for gid, v := range results {
		if want := int32(100 + gid%local); v != want {
			t.Fatalf("item %d read %d, want %d (barrier visibility broken)", gid, v, want)
		}
	}
}

// TestBarrierMultiplePhases stresses barrier reuse within one group.
func TestBarrierMultiplePhases(t *testing.T) {
	d := testDevice(t)
	const local, phases = 32, 5
	counter := make([]int32, phases)
	var mu sync.Mutex
	_, err := d.Launch(LaunchSpec{
		Name:   "phases",
		Global: R1(local),
		Local:  R1(local),
		Kernel: func(g *Group) WorkItemFunc {
			progress := make([]int32, phases)
			return func(it *Item) {
				for p := 0; p < phases; p++ {
					mu.Lock()
					progress[p]++
					mu.Unlock()
					it.Barrier()
					// After the barrier every item must see all arrivals.
					mu.Lock()
					if progress[p] != local {
						counter[p]++
					}
					mu.Unlock()
					it.Barrier()
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for p, bad := range counter {
		if bad != 0 {
			t.Errorf("phase %d: %d items saw incomplete arrivals", p, bad)
		}
	}
}

// TestAtomicCompaction verifies that atomic increments hand out unique,
// dense slots — the output-compaction idiom of the comparer kernel.
func TestAtomicCompaction(t *testing.T) {
	d := testDevice(t)
	const n = 2048
	var count uint32
	slots := make([]int32, n)
	_, err := d.Launch(LaunchSpec{
		Name:   "compact",
		Global: R1(n),
		Local:  R1(128),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) {
				if it.GlobalID(0)%3 == 0 { // a third of the items "match"
					old := it.AtomicIncUint32(&count)
					slots[old] = int32(it.GlobalID(0))
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	want := uint32((n + 2) / 3)
	if count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
	seen := make(map[int32]bool)
	for i := uint32(0); i < count; i++ {
		v := slots[i]
		if v%3 != 0 {
			t.Fatalf("slot %d holds non-matching item %d", i, v)
		}
		if seen[v] {
			t.Fatalf("item %d stored twice", v)
		}
		seen[v] = true
	}
}

func TestAtomicAdd(t *testing.T) {
	d := testDevice(t)
	var sum uint32
	_, err := d.Launch(LaunchSpec{
		Name:   "add",
		Global: R1(256),
		Local:  R1(64),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) { it.AtomicAddUint32(&sum, 2) }
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if sum != 512 {
		t.Errorf("sum = %d, want 512", sum)
	}
}

func TestLaunchStats(t *testing.T) {
	d := testDevice(t)
	const global, local = 512, 64
	stats, err := d.Launch(LaunchSpec{
		Name:   "stats",
		Global: R1(global),
		Local:  R1(local),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) {
				it.LoadGlobal(4)
				it.LoadGlobal(1)
				it.StoreGlobal(4)
				it.LoadConstant()
				it.LoadLocal()
				it.StoreLocal()
				it.ALU(3)
				it.Branch(true)
				it.Branch(false)
				it.Barrier()
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	n := int64(global)
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"WorkItems", stats.WorkItems, n},
		{"WorkGroups", stats.WorkGroups, global / local},
		{"GlobalLoadOps", stats.GlobalLoadOps, 2 * n},
		{"GlobalLoadBytes", stats.GlobalLoadBytes, 5 * n},
		{"GlobalStoreOps", stats.GlobalStoreOps, n},
		{"GlobalStoreBytes", stats.GlobalStoreBytes, 4 * n},
		{"ConstantLoadOps", stats.ConstantLoadOps, n},
		{"LocalLoadOps", stats.LocalLoadOps, n},
		{"LocalStoreOps", stats.LocalStoreOps, n},
		{"ALUOps", stats.ALUOps, 3 * n},
		{"Branches", stats.Branches, 2 * n},
		{"DivergentBranches", stats.DivergentBranches, n},
		{"Barriers", stats.Barriers, n},
		{"GlobalBytes", stats.GlobalBytes(), 9 * n},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if stats.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestLaunchErrors(t *testing.T) {
	d := testDevice(t)
	nop := func(g *Group) WorkItemFunc { return func(it *Item) {} }
	tests := []struct {
		name    string
		spec    LaunchSpec
		wantErr error
	}{
		{"nil kernel", LaunchSpec{Name: "k", Global: R1(64), Local: R1(64)}, nil},
		{"bad divide", LaunchSpec{Name: "k", Global: R1(100), Local: R1(64), Kernel: nop}, ErrLocalSize},
		{"oversized group", LaunchSpec{Name: "k", Global: R1(4096), Local: R1(4096), Kernel: nop}, ErrWorkGroupTooLarge},
		{"zero range", LaunchSpec{Name: "k", Kernel: nop}, ErrInvalidRange},
		{"huge lds", LaunchSpec{Name: "k", Global: R1(64), Local: R1(64), Kernel: nop, LDSBytesPerWG: 1 << 20}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := d.Launch(tt.spec)
			if err == nil {
				t.Fatal("Launch = nil error, want failure")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("Launch error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestLaunchLogAndProfile(t *testing.T) {
	d := testDevice(t)
	kernel := func(loads int) GroupKernel {
		return func(g *Group) WorkItemFunc {
			return func(it *Item) {
				for i := 0; i < loads; i++ {
					it.LoadGlobal(4)
				}
			}
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Launch(LaunchSpec{Name: "finder", Global: R1(64), Local: R1(64), Kernel: kernel(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Launch(LaunchSpec{Name: "comparer", Global: R1(64), Local: R1(64), Kernel: kernel(10)}); err != nil {
		t.Fatal(err)
	}
	log := d.LaunchLog()
	if len(log) != 4 {
		t.Fatalf("launch log has %d entries, want 4", len(log))
	}
	prof := d.ProfileByKernel()
	if got := prof["finder"].GlobalLoadOps; got != 3*64 {
		t.Errorf("finder loads = %d, want %d", got, 3*64)
	}
	if got := prof["comparer"].GlobalLoadOps; got != 10*64 {
		t.Errorf("comparer loads = %d, want %d", got, 10*64)
	}
	d.ResetLaunchLog()
	if len(d.LaunchLog()) != 0 {
		t.Error("ResetLaunchLog did not clear the log")
	}
}

func TestGroupContext(t *testing.T) {
	d := testDevice(t)
	const groups = 8
	linears := make([]int32, groups)
	_, err := d.Launch(LaunchSpec{
		Name:   "groups",
		Global: R1(groups * 16),
		Local:  R1(16),
		Kernel: func(g *Group) WorkItemFunc {
			if g.Device() != d {
				t.Error("Group.Device mismatch")
			}
			if g.LocalRange(0) != 16 {
				t.Errorf("Group.LocalRange = %d", g.LocalRange(0))
			}
			if g.ID(0) != g.Linear() {
				t.Errorf("1-D group: ID(0)=%d != Linear()=%d", g.ID(0), g.Linear())
			}
			linears[g.Linear()]++
			return func(it *Item) {}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	for i, n := range linears {
		if n != 1 {
			t.Errorf("group %d instantiated %d times", i, n)
		}
	}
}

func TestItemOutOfRangeDims(t *testing.T) {
	d := testDevice(t)
	_, err := d.Launch(LaunchSpec{
		Name:   "dims",
		Global: R1(4),
		Local:  R1(4),
		Kernel: func(g *Group) WorkItemFunc {
			return func(it *Item) {
				if it.GlobalID(5) != 0 || it.LocalID(-1) != 0 || it.GroupID(7) != 0 {
					t.Error("out-of-range dims should be 0")
				}
				if it.GlobalRange(2) != 1 || it.GroupRange(2) != 1 {
					t.Error("out-of-range range dims should be 1")
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

// TestConcurrentLaunches stresses the device with parallel kernel launches
// from many goroutines; the launch log and results must stay consistent.
func TestConcurrentLaunches(t *testing.T) {
	d := New(device.MI100(), WithWorkers(4))
	const launchers = 8
	var wg sync.WaitGroup
	results := make([][]int32, launchers)
	wg.Add(launchers)
	for l := 0; l < launchers; l++ {
		go func(l int) {
			defer wg.Done()
			out := make([]int32, 512)
			_, err := d.Launch(LaunchSpec{
				Name:   "stress",
				Global: R1(512),
				Local:  R1(64),
				Kernel: func(g *Group) WorkItemFunc {
					return func(it *Item) {
						out[it.GlobalID(0)] = int32(l*1000 + it.GlobalID(0))
					}
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[l] = out
		}(l)
	}
	wg.Wait()
	for l, out := range results {
		for i, v := range out {
			if v != int32(l*1000+i) {
				t.Fatalf("launcher %d: out[%d] = %d", l, i, v)
			}
		}
	}
	if got := len(d.LaunchLog()); got != launchers {
		t.Errorf("launch log has %d entries, want %d", got, launchers)
	}
}

// TestConcurrentAlloc stresses the memory accounting with parallel
// allocate/free cycles.
func TestConcurrentAlloc(t *testing.T) {
	d := New(device.RadeonVII())
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a, err := d.Alloc(GlobalMem, 1<<20)
				if err != nil {
					t.Error(err)
					return
				}
				if err := a.Free(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.AllocatedBytes() != 0 {
		t.Errorf("leaked %d bytes", d.AllocatedBytes())
	}
}
