// Per-device chunk-cost estimation for the work-stealing scheduler
// (internal/sched): how long one staged chunk of the search costs on a
// given device, composed from the same roofline terms as KernelSeconds over
// synthetic per-site access statistics. The scheduler divides a fixed chunk
// count proportionally to 1/Seconds, so only the cross-device ratios
// matter; the synthetic stats only need the right shape — a coalesced
// single-pass finder and a scattered per-candidate comparer (the §IV.B
// hotspot) — not calibrated magnitudes.

package timing

import "casoffinder/internal/gpu"

// DefaultCandidateRate is the assumed fraction of chunk positions that
// survive the PAM prefilter when the caller has no measured rate.
const DefaultCandidateRate = 0.05

// estimateDefaultChunkBytes sizes the synthetic chunk when the caller
// passes no budget; it matches the pipeline's default staging budget.
const estimateDefaultChunkBytes = 1 << 20

// ChunkEstimate models the cost of one staged chunk on one device.
type ChunkEstimate struct {
	// Finder and Comparer carry the launch contexts of the two kernels on
	// the device (spec, occupancy, register pressure, scatter — built the
	// same way internal/bench costs measured runs, from internal/isa).
	Finder   KernelConfig
	Comparer KernelConfig
	// PatternLen and Queries describe the search; non-positive values mean
	// a 23-base pattern and one guide.
	PatternLen int
	Queries    int
	// CandidateRate is the PAM survival fraction; non-positive means
	// DefaultCandidateRate.
	CandidateRate float64
}

// launchGroups is the work-group count of a launch over n items.
func launchGroups(n int64, cfg KernelConfig) int64 {
	wg := int64(cfg.WorkGroupSize)
	if wg <= 0 {
		wg = 256
	}
	return (n + wg - 1) / wg
}

// Seconds estimates the full cost of one chunkBytes-sized chunk: the finder
// pass over every position, the comparer over the surviving candidates on
// both strands per query, plus the per-chunk host and transfer overhead.
func (e ChunkEstimate) Seconds(chunkBytes int) float64 {
	if chunkBytes <= 0 {
		chunkBytes = estimateDefaultChunkBytes
	}
	plen := int64(e.PatternLen)
	if plen <= 0 {
		plen = 23
	}
	q := int64(e.Queries)
	if q <= 0 {
		q = 1
	}
	rate := e.CandidateRate
	if rate <= 0 {
		rate = DefaultCandidateRate
	}

	// Finder: one work-item per position, a coalesced sequential window
	// read plus a constant-cache scaffold fetch and a few ALU ops.
	sites := int64(chunkBytes)
	finder := gpu.Stats{
		WorkItems:       sites,
		WorkGroups:      launchGroups(sites, e.Finder),
		GlobalLoadOps:   2 * sites,
		ConstantLoadOps: sites,
		ALUOps:          10 * sites,
		Branches:        2 * sites,
	}

	// Comparer: each surviving candidate window is re-read base by base on
	// both strands — the scattered dependent loads that make this kernel
	// the hotspot and the latency term the dominant cross-device ratio.
	cand := int64(rate * float64(sites))
	if cand < 1 {
		cand = 1
	}
	loads := 2 * cand * plen
	comparer := gpu.Stats{
		WorkItems:     cand * q,
		WorkGroups:    launchGroups(cand, e.Comparer) * q,
		GlobalLoadOps: loads * q,
		LocalLoadOps:  loads * q,
		ALUOps:        4 * loads * q,
		Branches:      loads * q,
	}

	return KernelSeconds(e.Finder, &finder) +
		KernelSeconds(e.Comparer, &comparer) +
		hostPerChunkSec +
		float64(chunkBytes)*(1/hostStageBytesPerSec+1/pcieBytesPerSec)
}
