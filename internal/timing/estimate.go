// Per-device chunk-cost estimation for the work-stealing scheduler
// (internal/sched): how long one staged chunk of the search costs on a
// given device, composed from the same roofline terms as KernelSeconds over
// synthetic per-site access statistics. The scheduler divides a fixed chunk
// count proportionally to 1/Seconds, so only the cross-device ratios
// matter; the synthetic stats only need the right shape — a coalesced
// single-pass finder and a scattered per-candidate comparer (the §IV.B
// hotspot) — not calibrated magnitudes.

package timing

import (
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
)

// DefaultCandidateRate is the assumed fraction of chunk positions that
// survive the PAM prefilter when the caller has no measured rate.
const DefaultCandidateRate = 0.05

// estimateDefaultChunkBytes sizes the synthetic chunk when the caller
// passes no budget; it matches the pipeline's default staging budget.
const estimateDefaultChunkBytes = 1 << 20

// ChunkEstimate models the cost of one staged chunk on one device.
type ChunkEstimate struct {
	// Finder and Comparer carry the launch contexts of the two kernels on
	// the device (spec, occupancy, register pressure, scatter — built the
	// same way internal/bench costs measured runs, from internal/isa).
	Finder   KernelConfig
	Comparer KernelConfig
	// PatternLen and Queries describe the search; non-positive values mean
	// a 23-base pattern and one guide.
	PatternLen int
	Queries    int
	// CandidateRate is the PAM survival fraction; non-positive means
	// DefaultCandidateRate.
	CandidateRate float64
}

// launchGroups is the work-group count of a launch over n items.
func launchGroups(n int64, cfg KernelConfig) int64 {
	wg := int64(cfg.WorkGroupSize)
	if wg <= 0 {
		wg = 256
	}
	return (n + wg - 1) / wg
}

// EffectiveWaves converts a resource-limited occupancy (waves per SIMD,
// from device.Spec.Occupancy) into the effective wave parallelism a launch
// with the given work-group size sustains. Two effects the flat occupancy
// number hides:
//
//   - wave-slot granularity: a work-group occupies ceil(wg/wavefront) wave
//     slots that must co-reside on one compute unit, so a CU with
//     occ*SIMDsPerCU slots holds only floor(slots/wavesPerGroup) whole
//     groups — at wg=512 a 9-wave occupancy really runs 8 waves per SIMD;
//   - lane fill: a work-group whose size is not a wavefront multiple pads
//     its last wave with idle lanes that still consume a slot.
//
// Non-positive occWaves means the hardware maximum; non-positive wgSize
// means the standard 256-item group. A group too large for the slot budget
// still runs — alone — so the result is never below one group's waves.
func EffectiveWaves(spec device.Spec, occWaves, wgSize int) float64 {
	wave := spec.WavefrontSize
	if wave <= 0 {
		wave = 64
	}
	simds := spec.SIMDsPerCU
	if simds <= 0 {
		simds = 1
	}
	if wgSize <= 0 {
		wgSize = 256
	}
	occ := occWaves
	if occ <= 0 {
		occ = spec.MaxWavesPerSIMD
	}
	wavesPerGroup := (wgSize + wave - 1) / wave
	groups := occ * simds / wavesPerGroup
	if groups < 1 {
		groups = 1
	}
	fill := float64(wgSize) / float64(wavesPerGroup*wave)
	return float64(groups*wavesPerGroup) / float64(simds) * fill
}

// Seconds estimates the full cost of one chunkBytes-sized chunk: the finder
// pass over every position, the comparer over the surviving candidates on
// both strands per query, plus the per-chunk host and transfer overhead.
// Kernel terms are evaluated at the work-group-corrected effective
// occupancy (EffectiveWaves), so the estimate separates candidate
// work-group sizes instead of flattening them.
func (e ChunkEstimate) Seconds(chunkBytes int) float64 {
	finder, comparer, host := e.Parts(chunkBytes)
	return finder + comparer + host
}

// Parts decomposes the estimate into its finder-kernel, comparer-kernel and
// host/transfer terms; Seconds is their sum. They are exposed separately so
// the autotuner's calibration pass can swap the analytic comparer term —
// the §IV.B hotspot it actually measures — for a measured one without
// re-deriving the rest.
func (e ChunkEstimate) Parts(chunkBytes int) (finderSec, comparerSec, hostSec float64) {
	if chunkBytes <= 0 {
		chunkBytes = estimateDefaultChunkBytes
	}
	plen := int64(e.PatternLen)
	if plen <= 0 {
		plen = 23
	}
	q := int64(e.Queries)
	if q <= 0 {
		q = 1
	}
	rate := e.CandidateRate
	if rate <= 0 {
		rate = DefaultCandidateRate
	}

	// Finder: one work-item per position, a coalesced sequential window
	// read plus a constant-cache scaffold fetch and a few ALU ops.
	sites := int64(chunkBytes)
	cand := int64(rate * float64(sites))
	if cand < 1 {
		cand = 1
	}
	finder := gpu.Stats{
		WorkItems:       sites,
		WorkGroups:      launchGroups(sites, e.Finder),
		GlobalLoadOps:   2 * sites,
		ConstantLoadOps: sites,
		ALUOps:          10 * sites,
		Branches:        2 * sites,
	}
	// Hit-buffer arena claims: each surviving candidate bumps its group's
	// entry counter, and each emitting group's leader claims a page (cursor
	// bump plus page publish). The term is occupancy-independent in the
	// roofline, so it shifts all candidates at one work-group size equally.
	finder.AtomicOps = cand + 2*finder.WorkGroups

	// Comparer: each surviving candidate window is re-read base by base on
	// both strands — the scattered dependent loads that make this kernel
	// the hotspot and the latency term the dominant cross-device ratio.
	loads := 2 * cand * plen
	comparer := gpu.Stats{
		WorkItems:     cand * q,
		WorkGroups:    launchGroups(cand, e.Comparer) * q,
		GlobalLoadOps: loads * q,
		LocalLoadOps:  loads * q,
		ALUOps:        4 * loads * q,
		Branches:      loads * q,
	}
	// Arena claims on the hit path, same shape as the finder's.
	comparer.AtomicOps = cand*q + 2*comparer.WorkGroups

	return KernelSeconds(e.Finder.withEffectiveWaves(), &finder),
		KernelSeconds(e.Comparer.withEffectiveWaves(), &comparer),
		hostPerChunkSec + float64(chunkBytes)*(1/hostStageBytesPerSec+1/pcieBytesPerSec)
}
