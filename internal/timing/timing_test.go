package timing

import (
	"testing"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/isa"
	"casoffinder/internal/kernels"
)

// comparerish returns stats shaped like a comparer launch over n items.
func comparerish(n int64) gpu.Stats {
	return gpu.Stats{
		WorkItems:        n,
		WorkGroups:       n / 256,
		GlobalLoadOps:    22 * n,
		RedundantLoadOps: 11 * n,
		GlobalLoadBytes:  30 * n,
		GlobalStoreBytes: 7 * n,
		LocalLoadOps:     70 * n,
		LocalStoreOps:    n / 2,
		AtomicOps:        n / 100,
		Barriers:         n,
		ALUOps:           200 * n,
		Branches:         40 * n,
	}
}

func baseCfg() KernelConfig {
	return KernelConfig{
		Spec:                device.MI60(),
		OccupancyWaves:      10,
		VGPRs:               64,
		WorkGroupSize:       256,
		LeaderPrefetch:      true,
		PrefetchOpsPerGroup: 92,
		ScatterFactor:       1.0,
	}
}

func TestKernelSecondsPositiveAndLinear(t *testing.T) {
	cfg := baseCfg()
	s1 := comparerish(1 << 20)
	s2 := comparerish(1 << 21)
	t1 := KernelSeconds(cfg, &s1)
	t2 := KernelSeconds(cfg, &s2)
	if t1 <= 0 {
		t.Fatalf("KernelSeconds = %v, want > 0", t1)
	}
	if ratio := t2 / t1; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling work scaled time by %.2f, want ~2", ratio)
	}
}

func TestOccupancyLowersTime(t *testing.T) {
	s := comparerish(1 << 20)
	high := baseCfg()
	low := baseCfg()
	low.OccupancyWaves = 5
	if KernelSeconds(low, &s) <= KernelSeconds(high, &s) {
		t.Error("halving occupancy should increase latency-bound time")
	}
}

func TestRegisterPressurePenalty(t *testing.T) {
	s := comparerish(1 << 20)
	lean := baseCfg()
	fat := baseCfg()
	fat.VGPRs = 82
	fat.OccupancyWaves = 9
	ratio := KernelSeconds(fat, &s) / KernelSeconds(lean, &s)
	// The opt4 regression of Fig. 2: time nearly doubles.
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("opt4-like pressure ratio = %.2f, want ~2", ratio)
	}
}

func TestLeaderPrefetchCost(t *testing.T) {
	s := comparerish(1 << 20)
	leader := baseCfg()
	coop := baseCfg()
	coop.LeaderPrefetch = false
	bl := KernelBreakdown(leader, &s)
	bc := KernelBreakdown(coop, &s)
	if bl.Leader <= 0 {
		t.Error("leader staging term missing")
	}
	if bc.Leader != 0 {
		t.Error("cooperative staging should have no leader term")
	}
	if bl.Total() <= bc.Total() {
		t.Error("leader staging should cost time")
	}
}

func TestScatterFactor(t *testing.T) {
	s := comparerish(1 << 20)
	scattered := baseCfg()
	coalesced := baseCfg()
	coalesced.ScatterFactor = 0.02
	ts := KernelBreakdown(scattered, &s)
	tc := KernelBreakdown(coalesced, &s)
	if tc.Latency >= ts.Latency/10 {
		t.Errorf("coalesced latency %.3f not much below scattered %.3f", tc.Latency, ts.Latency)
	}
}

func TestRedundantLoadsDiscounted(t *testing.T) {
	cfg := baseCfg()
	unique := comparerish(1 << 20)
	unique.RedundantLoadOps = 0
	mixed := comparerish(1 << 20) // half the loads redundant
	tu := KernelSeconds(cfg, &unique)
	tm := KernelSeconds(cfg, &mixed)
	if tm >= tu {
		t.Error("redundant loads should cost less than unique loads")
	}
}

func TestSmallerGroupsCostMore(t *testing.T) {
	// Same total work split into 4x more groups (the OpenCL runtime's
	// 64-item groups vs SYCL's 256): dispatch + leader staging grow.
	big := comparerish(1 << 20)
	small := big
	small.WorkGroups *= 4
	cfg := baseCfg()
	if KernelSeconds(cfg, &small) <= KernelSeconds(cfg, &big) {
		t.Error("more groups for the same work should cost time")
	}
}

func TestBreakdownTotalComposition(t *testing.T) {
	b := Breakdown{Compute: 1, Bandwidth: 3, Latency: 2, Leader: 0.5, Group: 0.25}
	if got := b.Total(); got != 3+2+0.5+0.25 {
		t.Errorf("Total = %v", got)
	}
	b.Compute = 5
	if got := b.Total(); got != 5+2+0.5+0.25 {
		t.Errorf("Total with compute roof = %v", got)
	}
}

func TestKernelTimeDuration(t *testing.T) {
	s := comparerish(1 << 16)
	if KernelTime(baseCfg(), &s) <= 0 {
		t.Error("KernelTime should be positive")
	}
}

func TestDefaultOccupancy(t *testing.T) {
	cfg := baseCfg()
	cfg.OccupancyWaves = 0 // defaults to the device maximum
	s := comparerish(1 << 18)
	withMax := baseCfg()
	withMax.OccupancyWaves = withMax.Spec.MaxWavesPerSIMD
	if KernelSeconds(cfg, &s) != KernelSeconds(withMax, &s) {
		t.Error("zero occupancy should default to device maximum")
	}
}

func TestHostSeconds(t *testing.T) {
	h := HostCounters{BytesStaged: 3_100_000_000, BytesRead: 50_000_000, Chunks: 7, Entries: 10_000}
	sec := HostSeconds(h)
	if sec <= 0 {
		t.Fatal("HostSeconds <= 0")
	}
	// Staging should dominate for genome-scale inputs.
	stageOnly := HostSeconds(HostCounters{BytesStaged: h.BytesStaged})
	if stageOnly < sec*0.8 {
		t.Errorf("staging %.2f should dominate host time %.2f", stageOnly, sec)
	}
	// Host time must be in the paper's plausible range (its elapsed times
	// are 41-71 s with kernels at 50-80%).
	if sec < 5 || sec > 40 {
		t.Errorf("host time for one assembly = %.1f s, out of plausible range", sec)
	}
}

func TestScaleStats(t *testing.T) {
	s := comparerish(1000)
	scaled := ScaleStats(s, 2.5)
	if scaled.GlobalLoadOps != int64(float64(s.GlobalLoadOps)*2.5) {
		t.Errorf("GlobalLoadOps = %d", scaled.GlobalLoadOps)
	}
	if scaled.RedundantLoadOps != int64(float64(s.RedundantLoadOps)*2.5) {
		t.Errorf("RedundantLoadOps = %d", scaled.RedundantLoadOps)
	}
	if scaled.WorkItems != 2500 || scaled.Barriers != 2500 {
		t.Error("linear fields not scaled")
	}
}

func TestScaleHost(t *testing.T) {
	h := ScaleHost(HostCounters{BytesStaged: 100, BytesRead: 10, Chunks: 4, Entries: 7}, 3)
	if h.BytesStaged != 300 || h.BytesRead != 30 || h.Chunks != 12 || h.Entries != 21 {
		t.Errorf("ScaleHost = %+v", h)
	}
}

// TestBitParallelTradeoff models the SWAR comparer against opt4 with each
// variant's real compiled footprint (internal/isa): the word core issues a
// fraction of the global load ops, each 8 bytes wide, so the latency and
// bandwidth terms collapse and the estimate falls well below opt4's — but
// the extra register pressure is charged too, and the same SWAR traffic at
// opt4's pressure would be faster still.
func TestBitParallelTradeoff(t *testing.T) {
	spec := device.MI60()
	opt4m := isa.ComparerMetrics(kernels.Opt4, spec, 23)
	bpm := isa.ComparerMetrics(kernels.BitParallel, spec, 23)
	if bpm.VGPRs <= pressureKneeVGPRs {
		t.Fatalf("bitparallel VGPRs %d below the pressure knee %d; the trade-off is free",
			bpm.VGPRs, pressureKneeVGPRs)
	}

	n := int64(1 << 20)
	opt4 := comparerish(n)
	// SWAR-shaped traffic: ~1/5th the global load ops at 8 bytes each (two
	// wide words per 32 bases replace byte-per-base reads, nothing left to
	// reload), and local reads per word instead of per ladder term.
	bp := opt4
	bp.GlobalLoadOps = 3 * n
	bp.RedundantLoadOps = 0
	bp.GlobalLoadBytes = 17 * n
	bp.LocalLoadOps = 12 * n
	bp.ALUOps = 120 * n

	cfg4 := baseCfg()
	cfg4.LeaderPrefetch = false // both variants stage cooperatively
	cfg4.VGPRs = opt4m.VGPRs
	cfg4.OccupancyWaves = opt4m.Occupancy
	cfgB := cfg4
	cfgB.VGPRs = bpm.VGPRs
	cfgB.OccupancyWaves = bpm.Occupancy

	t4 := KernelSeconds(cfg4, &opt4)
	tb := KernelSeconds(cfgB, &bp)
	if tb >= t4*0.6 {
		t.Errorf("bitparallel estimate %.4f not well below opt4's %.4f", tb, t4)
	}
	lean := cfgB
	lean.VGPRs = opt4m.VGPRs
	if tl := KernelSeconds(lean, &bp); tl >= tb {
		t.Errorf("register pressure should cost time: %.4f at %d VGPRs vs %.4f at %d",
			tb, cfgB.VGPRs, tl, lean.VGPRs)
	}
}

// TestDevicesOrdering: MI100 (more CUs, more bandwidth) must be faster than
// RVII/MI60 on identical work, matching the paper's device ordering.
func TestDevicesOrdering(t *testing.T) {
	s := comparerish(1 << 20)
	times := map[string]float64{}
	for _, spec := range device.All() {
		cfg := baseCfg()
		cfg.Spec = spec
		times[spec.Name] = KernelSeconds(cfg, &s)
	}
	if times["MI100"] >= times["MI60"] || times["MI100"] >= times["RVII"] {
		t.Errorf("MI100 should be fastest: %v", times)
	}
}
