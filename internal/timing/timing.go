// Package timing is the analytic performance model of the reproduction: it
// converts the access statistics a simulated kernel launch produces
// (internal/gpu.Stats) plus a device specification (Table VII) into
// estimated execution time, and models the host side of the Cas-OFFinder
// pipeline (chunk staging, transfers, result collection) so full elapsed
// times can be reported.
//
// The model is a calibrated roofline with latency terms:
//
//		T_kernel = max(T_compute, T_bandwidth) + T_latency + T_leader + T_group
//
//	  - T_compute: ALU, branch and LDS work at the device's issue rate;
//	  - T_bandwidth: global traffic against peak bandwidth, with scattered
//	    loads charged an effective transaction size;
//	  - T_latency: dependent global loads limited by the memory-level
//	    parallelism the achieved occupancy sustains — this term makes
//	    occupancy matter, reproducing the opt4 regression of Fig. 2, and is
//	    scaled by a register-pressure penalty once a kernel's VGPR demand
//	    exceeds the pressure knee;
//	  - T_leader: the serialised shared-local-memory staging performed by
//	    work-group leaders (removed by the cooperative fetch of opt3);
//	  - T_group: per-work-group dispatch overhead, which penalises the
//	    runtime-chosen 64-item groups of the OpenCL program against the
//	    SYCL program's 256 (the Table VIII gap).
//
// Absolute constants are calibrated so full-genome projections land at the
// paper's scale (tens of seconds per assembly); the reproduced quantities
// are the ratios (SYCL/OpenCL speedups, opt1-opt4 deltas).
package timing

import (
	"time"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
)

// Model constants (calibrated; see package comment).
const (
	cyclesPerALU      = 1.0
	cyclesPerBranch   = 1.5
	cyclesPerLDSRead  = 2.0
	cyclesPerLDSWrite = 2.0
	cyclesPerBarrier  = 32.0

	// loadTransactionBytes charges each scattered global load an effective
	// line fraction (candidate sites share cache lines only partially).
	loadTransactionBytes = 16.0
	// constantLoadBytes: uniform constant fetches broadcast across a wave
	// and hit the constant cache.
	constantLoadBytes = 0.5
	// bandwidthEfficiency derates peak HBM bandwidth.
	bandwidthEfficiency = 0.75

	// missesPerWave is the effective memory-level parallelism one resident
	// wave sustains for scattered accesses. It is far below 1 because a
	// diverged wave's scattered load fans out into up to 64 distinct cache
	// lines that the memory system drains with limited parallelism;
	// calibrated so full-genome comparer projections land at the paper's
	// scale.
	missesPerWave = 0.048
	// redundantLoadFactor discounts reloads of already-fetched addresses:
	// they hit L1/L2 instead of DRAM.
	redundantLoadFactor = 0.3
	// cyclesPerAtomic charges global atomics at the L2 combining
	// throughput (one per CU per this many cycles): single-counter
	// increments coalesce in the cache, they do not pay DRAM latency.
	cyclesPerAtomic = 32.0

	// pressureKneeVGPRs and pressureSlope model scheduler/register-bank
	// stalls once vector-register demand exceeds the knee: the latency
	// term is multiplied by 1 + slope*(VGPRs-knee). Calibrated against the
	// near-2x opt4 regression of Fig. 2.
	pressureKneeVGPRs = 66
	pressureSlope     = 0.0444

	// groupLaunchCycles is the per-work-group dispatch cost.
	groupLaunchCycles = 5000.0
)

// KernelConfig carries the launch context the Stats record alone does not:
// which device ran, at what occupancy and register pressure (from
// internal/isa for the comparer variants), and whether shared-local staging
// was serialised on the group leader.
type KernelConfig struct {
	Spec device.Spec
	// OccupancyWaves is the achieved waves per SIMD (1..MaxWavesPerSIMD).
	OccupancyWaves int
	// VGPRs is the kernel's vector-register demand, for the pressure term.
	VGPRs int
	// WorkGroupSize is the launch local size.
	WorkGroupSize int
	// LeaderPrefetch marks kernels whose local-memory staging is done by
	// the group leader alone (finder, and comparer before opt3).
	LeaderPrefetch bool
	// PrefetchOpsPerGroup is the number of staging loads per work-group.
	PrefetchOpsPerGroup int
	// ScatterFactor scales the cost of global loads by their access
	// pattern: 1.0 for the comparer's scattered site reads, near 0 for the
	// finder's perfectly coalesced sequential scan (adjacent work-items
	// read adjacent bytes). This is why the comparer dominates kernel time
	// (~98%, §IV.B) despite similar operation counts.
	ScatterFactor float64
	// WaveSlots, when positive, overrides OccupancyWaves with a fractional
	// effective wave count: the resource-limited occupancy corrected for
	// work-group wave-slot granularity and partial-wave lane fill (see
	// EffectiveWaves). ChunkEstimate fills it from WorkGroupSize.
	WaveSlots float64
}

func (c KernelConfig) scatter() float64 {
	if c.ScatterFactor <= 0 {
		return 1.0
	}
	return c.ScatterFactor
}

func (c KernelConfig) occupancy() float64 {
	if c.WaveSlots > 0 {
		return c.WaveSlots
	}
	occ := c.OccupancyWaves
	if occ <= 0 {
		occ = c.Spec.MaxWavesPerSIMD
	}
	return float64(occ)
}

// withEffectiveWaves returns c with WaveSlots derived from its integral
// occupancy and work-group size, unless the caller already set it.
func (c KernelConfig) withEffectiveWaves() KernelConfig {
	if c.WaveSlots <= 0 {
		c.WaveSlots = EffectiveWaves(c.Spec, c.OccupancyWaves, c.WorkGroupSize)
	}
	return c
}

// Breakdown decomposes one kernel-time estimate into its model terms.
type Breakdown struct {
	Compute   float64
	Bandwidth float64
	Latency   float64
	Leader    float64
	Group     float64
}

// Total composes the terms: max(compute, bandwidth) + latency + leader +
// group.
func (b Breakdown) Total() float64 {
	roof := b.Compute
	if b.Bandwidth > roof {
		roof = b.Bandwidth
	}
	return roof + b.Latency + b.Leader + b.Group
}

// KernelSeconds estimates the kernel execution time in seconds.
func KernelSeconds(cfg KernelConfig, s *gpu.Stats) float64 {
	return KernelBreakdown(cfg, s).Total()
}

// KernelBreakdown estimates the kernel time term by term.
func KernelBreakdown(cfg KernelConfig, s *gpu.Stats) Breakdown {
	spec := cfg.Spec
	clock := spec.ClockHz()
	lanes := float64(spec.Cores)
	cus := float64(spec.ComputeUnits())
	occ := cfg.occupancy()

	// Compute roof: ALU + branches + LDS, issued across all lanes.
	computeCycles := float64(s.ALUOps)*cyclesPerALU +
		float64(s.Branches)*cyclesPerBranch +
		float64(s.LocalLoadOps)*cyclesPerLDSRead +
		float64(s.LocalStoreOps)*cyclesPerLDSWrite +
		float64(s.Barriers)*cyclesPerBarrier
	tCompute := computeCycles / (lanes * clock)

	// Bandwidth roof: scattered loads are charged an effective
	// transaction, stores their bytes, constant fetches almost nothing.
	uniqueLoads := float64(s.GlobalLoadOps - s.RedundantLoadOps)
	effBytes := (uniqueLoads+redundantLoadFactor*float64(s.RedundantLoadOps))*loadTransactionBytes*cfg.scatter() +
		float64(s.GlobalStoreBytes) +
		float64(s.AtomicOps)*loadTransactionBytes +
		float64(s.ConstantLoadOps)*constantLoadBytes
	tBandwidth := effBytes / (spec.PeakBWGBs * 1e9 * bandwidthEfficiency)

	// Latency term: dependent misses limited by memory-level parallelism.
	mlp := cus * float64(spec.SIMDsPerCU) * occ * missesPerWave
	latencyOps := (uniqueLoads + redundantLoadFactor*float64(s.RedundantLoadOps)) * cfg.scatter()
	pressure := 1.0
	if cfg.VGPRs > pressureKneeVGPRs {
		pressure += pressureSlope * float64(cfg.VGPRs-pressureKneeVGPRs)
	}
	tLatency := latencyOps*float64(spec.MemLatencyCycles)*pressure/(clock*mlp) +
		float64(s.AtomicOps)*cyclesPerAtomic/(clock*cus)

	// Leader staging: serialised dependent loads on one lane per group
	// while the rest of the group idles at the barrier; the penalty factor
	// covers the uncached staging reads and the serialised LDS writes.
	const ldsStagingPenalty = 8.0
	var tLeader float64
	if cfg.LeaderPrefetch && s.WorkGroups > 0 {
		serialCycles := float64(s.WorkGroups) * float64(cfg.PrefetchOpsPerGroup) *
			float64(spec.MemLatencyCycles) * ldsStagingPenalty
		tLeader = serialCycles / (clock * cus * float64(spec.SIMDsPerCU) * occ)
	}

	// Dispatch overhead per group.
	tGroup := float64(s.WorkGroups) * groupLaunchCycles / (clock * cus)

	return Breakdown{
		Compute:   tCompute,
		Bandwidth: tBandwidth,
		Latency:   tLatency,
		Leader:    tLeader,
		Group:     tGroup,
	}
}

// KernelTime is KernelSeconds as a duration.
func KernelTime(cfg KernelConfig, s *gpu.Stats) time.Duration {
	return time.Duration(KernelSeconds(cfg, s) * float64(time.Second))
}

// Host-side model constants.
const (
	// hostStageBytesPerSec covers reading a chunk out of the parsed
	// assembly, case-folding it and preparing the staging buffer.
	hostStageBytesPerSec = 0.21e9
	// pcieBytesPerSec is the host-device interconnect rate.
	pcieBytesPerSec = 12e9
	// hostPerChunkSec is fixed per-chunk overhead (buffer management,
	// kernel argument setup, queue round-trips).
	hostPerChunkSec = 120e-6
	// hostPerEntrySec covers collecting one result entry, re-deriving its
	// site sequence and formatting the output line.
	hostPerEntrySec = 1.1e-6
)

// HostCounters summarise the host side of one run (from search.Profile).
type HostCounters struct {
	BytesStaged int64
	BytesRead   int64
	Chunks      int64
	Entries     int64
}

// HostSeconds estimates the non-kernel part of the elapsed time: staging,
// transfers in both directions, per-chunk overhead and result collection.
func HostSeconds(h HostCounters) float64 {
	return float64(h.BytesStaged)/hostStageBytesPerSec +
		float64(h.BytesStaged+h.BytesRead)/pcieBytesPerSec +
		float64(h.Chunks)*hostPerChunkSec +
		float64(h.Entries)*hostPerEntrySec
}

// ScaleStats linearly scales every counter of s by f, projecting a run on a
// scaled-down synthetic assembly to the full-size one it models.
func ScaleStats(s gpu.Stats, f float64) gpu.Stats {
	scale := func(v int64) int64 { return int64(float64(v) * f) }
	return gpu.Stats{
		WorkItems:         scale(s.WorkItems),
		WorkGroups:        scale(s.WorkGroups),
		GlobalLoadOps:     scale(s.GlobalLoadOps),
		GlobalLoadBytes:   scale(s.GlobalLoadBytes),
		RedundantLoadOps:  scale(s.RedundantLoadOps),
		GlobalStoreOps:    scale(s.GlobalStoreOps),
		GlobalStoreBytes:  scale(s.GlobalStoreBytes),
		ConstantLoadOps:   scale(s.ConstantLoadOps),
		LocalLoadOps:      scale(s.LocalLoadOps),
		LocalStoreOps:     scale(s.LocalStoreOps),
		AtomicOps:         scale(s.AtomicOps),
		Barriers:          scale(s.Barriers),
		ALUOps:            scale(s.ALUOps),
		Branches:          scale(s.Branches),
		DivergentBranches: scale(s.DivergentBranches),
	}
}

// ScaleHost linearly scales host counters by f.
func ScaleHost(h HostCounters, f float64) HostCounters {
	return HostCounters{
		BytesStaged: int64(float64(h.BytesStaged) * f),
		BytesRead:   int64(float64(h.BytesRead) * f),
		Chunks:      int64(float64(h.Chunks) * f),
		Entries:     int64(float64(h.Entries) * f),
	}
}
