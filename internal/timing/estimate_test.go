package timing

import (
	"testing"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
)

// --- ScaleStats / ScaleHost edge cases --------------------------------------

func fullStats() gpu.Stats {
	return gpu.Stats{
		WorkItems:         1000,
		WorkGroups:        4,
		GlobalLoadOps:     2000,
		GlobalLoadBytes:   8000,
		RedundantLoadOps:  300,
		GlobalStoreOps:    100,
		GlobalStoreBytes:  400,
		ConstantLoadOps:   1000,
		LocalLoadOps:      500,
		LocalStoreOps:     240,
		AtomicOps:         60,
		Barriers:          12,
		ALUOps:            9000,
		Branches:          1500,
		DivergentBranches: 72,
	}
}

func TestScaleStatsZeroFactor(t *testing.T) {
	got := ScaleStats(fullStats(), 0)
	if got != (gpu.Stats{}) {
		t.Errorf("ScaleStats(s, 0) = %+v, want all-zero stats", got)
	}
}

func TestScaleStatsIdentity(t *testing.T) {
	s := fullStats()
	if got := ScaleStats(s, 1); got != s {
		t.Errorf("ScaleStats(s, 1) = %+v, want s unchanged", got)
	}
}

func TestScaleStatsFractionalRoundTrip(t *testing.T) {
	// Scaling down by 1/f and back up by f must reproduce every counter
	// exactly when the counters are multiples of f — the projection
	// contract the calibration harness relies on.
	s := fullStats()
	down := ScaleStats(s, 0.25)
	if down.WorkItems != 250 || down.GlobalLoadOps != 500 || down.AtomicOps != 15 {
		t.Fatalf("ScaleStats(s, 0.25) = %+v, want exact quarters", down)
	}
	if up := ScaleStats(down, 4); up != s {
		t.Errorf("round trip = %+v, want original %+v", up, s)
	}
}

func TestScaleStatsTruncates(t *testing.T) {
	// Fractional results truncate toward zero (int64 conversion), they do
	// not round: 3 * 0.5 = 1, not 2.
	s := gpu.Stats{WorkItems: 3}
	if got := ScaleStats(s, 0.5); got.WorkItems != 1 {
		t.Errorf("ScaleStats({3}, 0.5).WorkItems = %d, want 1 (truncation)", got.WorkItems)
	}
}

func TestScaleHostZeroFactor(t *testing.T) {
	h := HostCounters{BytesStaged: 1 << 20, BytesRead: 4096, Chunks: 7, Entries: 99}
	if got := ScaleHost(h, 0); got != (HostCounters{}) {
		t.Errorf("ScaleHost(h, 0) = %+v, want zero counters", got)
	}
}

func TestScaleHostFractionalRoundTrip(t *testing.T) {
	h := HostCounters{BytesStaged: 1 << 20, BytesRead: 4096, Chunks: 8, Entries: 96}
	down := ScaleHost(h, 0.5)
	if down.Chunks != 4 || down.Entries != 48 {
		t.Fatalf("ScaleHost(h, 0.5) = %+v, want exact halves", down)
	}
	if up := ScaleHost(down, 2); up != h {
		t.Errorf("round trip = %+v, want original %+v", up, h)
	}
	if HostSeconds(down)*2-HostSeconds(h) > 1e-12 {
		t.Errorf("HostSeconds does not scale linearly: %g vs %g", HostSeconds(down)*2, HostSeconds(h))
	}
}

// --- KernelSeconds monotonicity across Table VII ----------------------------

// comparerConfig builds the scattered dependent-load launch shape of the
// comparer kernel (the §IV.B hotspot) on one device.
func comparerConfig(spec device.Spec) KernelConfig {
	return KernelConfig{
		Spec:           spec,
		OccupancyWaves: 4,
		VGPRs:          48,
		WorkGroupSize:  256,
		ScatterFactor:  1.0,
	}
}

// comparerStats is a fixed scattered workload: per-candidate dependent
// window reads, the latency-bound regime where device differences dominate.
func comparerStats() *gpu.Stats {
	const loads = 2 << 20
	return &gpu.Stats{
		WorkItems:     1 << 16,
		WorkGroups:    1 << 8,
		GlobalLoadOps: loads,
		LocalLoadOps:  loads,
		ALUOps:        4 * loads,
		Branches:      loads,
	}
}

// TestKernelSecondsDeviceMonotonic pins the Table VII ordering on the
// scattered comparer workload: the Radeon VII (60 CUs) is slower than the
// MI60 (64 CUs, same clock and latency), which is slower than the MI100
// (120 CUs at a lower latency) — the ordering the scheduler's shard weights
// are derived from.
func TestKernelSecondsDeviceMonotonic(t *testing.T) {
	stats := comparerStats()
	rvii := KernelSeconds(comparerConfig(device.RadeonVII()), stats)
	mi60 := KernelSeconds(comparerConfig(device.MI60()), stats)
	mi100 := KernelSeconds(comparerConfig(device.MI100()), stats)
	if !(rvii > mi60 && mi60 > mi100) {
		t.Fatalf("device ordering broken: RVII %.6gs, MI60 %.6gs, MI100 %.6gs (want RVII > MI60 > MI100)",
			rvii, mi60, mi100)
	}
	if mi100 <= 0 {
		t.Fatalf("MI100 estimate %.6g, want positive", mi100)
	}
}

// --- ChunkEstimate ----------------------------------------------------------

func chunkEstimate(spec device.Spec) ChunkEstimate {
	finder := comparerConfig(spec)
	finder.ScatterFactor = 0.02
	finder.LeaderPrefetch = true
	finder.PrefetchOpsPerGroup = 4 * 23
	return ChunkEstimate{Finder: finder, Comparer: comparerConfig(spec), PatternLen: 23, Queries: 1}
}

func TestChunkEstimateDeviceMonotonic(t *testing.T) {
	// The per-chunk estimate must preserve the Table VII ordering — it is
	// the scheduler's shard weight (1/Seconds), so an inversion would
	// seed the slowest device with the most work.
	rvii := chunkEstimate(device.RadeonVII()).Seconds(1 << 20)
	mi60 := chunkEstimate(device.MI60()).Seconds(1 << 20)
	mi100 := chunkEstimate(device.MI100()).Seconds(1 << 20)
	if !(rvii > mi60 && mi60 > mi100) {
		t.Fatalf("chunk-cost ordering broken: RVII %.6gs, MI60 %.6gs, MI100 %.6gs", rvii, mi60, mi100)
	}
}

func TestChunkEstimateGrowsWithChunkSize(t *testing.T) {
	e := chunkEstimate(device.MI60())
	small, large := e.Seconds(1<<16), e.Seconds(1<<20)
	if !(large > small) {
		t.Fatalf("estimate not increasing in chunk size: %d bytes → %.6gs, %d bytes → %.6gs",
			1<<16, small, 1<<20, large)
	}
	if small <= 0 {
		t.Fatalf("estimate %.6g, want positive", small)
	}
}

// --- Work-group size accounting ---------------------------------------------

// TestEffectiveWaves pins the wave-slot model: exact-fit sizes keep the
// resource-limited occupancy, groups wider than the remaining slot budget
// lose waves to granularity, and non-wavefront-multiple groups lose lanes
// to fill.
func TestEffectiveWaves(t *testing.T) {
	spec := device.RadeonVII() // 64-lane waves, 4 SIMDs/CU
	cases := []struct {
		occ, wg int
		want    float64
	}{
		{9, 64, 9},    // one wave per group: granularity can't bind
		{9, 256, 9},   // 36 slots / 4 waves-per-group = 9 whole groups
		{9, 512, 8},   // 36 slots / 8 = 4 groups: a wave per SIMD lost
		{9, 96, 6.75}, // 18 groups of 2 waves, but 96/128 lane fill
		{10, 256, 10}, // the maximum survives an exact fit
		{4, 1024, 4},  // 16 slots = exactly one 16-wave group
	}
	for _, c := range cases {
		if got := EffectiveWaves(spec, c.occ, c.wg); got != c.want {
			t.Errorf("EffectiveWaves(occ=%d, wg=%d) = %v, want %v", c.occ, c.wg, got, c.want)
		}
	}
	if got := EffectiveWaves(spec, 0, 0); got != 10 {
		t.Errorf("EffectiveWaves defaults = %v, want the 10-wave maximum", got)
	}
}

// TestChunkEstimateWGSizeMonotonic: while the work-group size fits the
// occupancy's slot budget exactly (occ=4 divides every candidate), larger
// groups amortise per-group dispatch and leader staging, so the chunk
// estimate must strictly decrease from 64 to 512 on every device.
func TestChunkEstimateWGSizeMonotonic(t *testing.T) {
	for _, spec := range device.All() {
		prev := 0.0
		for i, wg := range []int{512, 256, 128, 64} {
			e := chunkEstimate(spec)
			e.Finder.WorkGroupSize = wg
			e.Comparer.WorkGroupSize = wg
			got := e.Seconds(1 << 20)
			if i > 0 && !(got > prev) {
				t.Errorf("%s: estimate at wg=%d (%.6gs) not above wg=%d — WG size flattened",
					spec.Name, wg, got, wg*2)
			}
			prev = got
		}
	}
}

// TestEffectiveWavesGranularityPenalty: with the group count held fixed,
// the latency term must penalise work-group sizes that waste wave slots —
// a 512-item group drops a 9-wave occupancy to 8, and a 96-item group
// fills only 3/4 of its second wave.
func TestEffectiveWavesGranularityPenalty(t *testing.T) {
	cfg := comparerConfig(device.RadeonVII())
	cfg.OccupancyWaves = 9
	stats := comparerStats()
	at := func(wg int) float64 {
		c := cfg
		c.WorkGroupSize = wg
		return KernelSeconds(c.withEffectiveWaves(), stats)
	}
	if !(at(512) > at(256)) {
		t.Errorf("wg=512 (%.6gs) not slower than wg=256 (%.6gs) at 9 waves", at(512), at(256))
	}
	if !(at(96) > at(128)) {
		t.Errorf("wg=96 (%.6gs) not slower than wg=128 (%.6gs): lane fill ignored", at(96), at(128))
	}
}

func TestChunkEstimatePartsSum(t *testing.T) {
	e := chunkEstimate(device.MI60())
	f, c, h := e.Parts(1 << 20)
	if f <= 0 || c <= 0 || h <= 0 {
		t.Fatalf("Parts = (%.6g, %.6g, %.6g), want all positive", f, c, h)
	}
	if sum, got := f+c+h, e.Seconds(1<<20); sum != got {
		t.Errorf("Parts sum %.12g != Seconds %.12g", sum, got)
	}
	if c < f {
		t.Errorf("comparer term %.6g below finder term %.6g; the §IV.B hotspot shape is lost", c, f)
	}
}

func TestChunkEstimateDefaults(t *testing.T) {
	// Zero-valued knobs fall back to defaults rather than producing a
	// zero or negative cost.
	e := ChunkEstimate{Finder: comparerConfig(device.MI100()), Comparer: comparerConfig(device.MI100())}
	if got := e.Seconds(0); got <= 0 {
		t.Fatalf("zero-config estimate %.6g, want positive default", got)
	}
	// More queries cost more comparer time.
	eq := chunkEstimate(device.MI100())
	eq.Queries = 4
	if eq.Seconds(1<<20) <= chunkEstimate(device.MI100()).Seconds(1<<20) {
		t.Error("4-query estimate not larger than 1-query estimate")
	}
}
