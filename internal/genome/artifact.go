package genome

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"strings"
	"unsafe"
)

// An Artifact is a genome assembly in its search-ready form, persisted so
// that repeated runs (or a resident server) skip the FASTA parse, the 2-bit
// pack and the word-view derivation that otherwise dominate cold start. One
// artifact bundles, per sequence:
//
//   - the raw sequence bytes exactly as loaded (site rendering and the
//     simulator engines stage these, so artifact-backed output stays
//     byte-identical to a FASTA-backed run);
//   - the 32-bases-per-uint64 packed code words and Morton-spread
//     unknown-lane words in WordView layout, padding word included, so a
//     word view over any chunk window is a slice header away;
//   - optionally a sorted shard of PAM-candidate positions precomputed for
//     one scaffold pattern with the SWAR 32-wide prefilter, letting the
//     scan engines skip candidate finding entirely.
//
// The on-disk encoding is designed for O(header) loads: a fixed-width,
// checksummed, endianness-tagged header names absolute section offsets and
// the payload is reinterpreted in place as []byte / []uint64 slices — no
// per-base work happens between mapping the file and the first kernel
// launch (LoadArtifact memory-maps on unix, so the payload is not even
// read until the engines walk it).
// The payload carries its own checksum, verified on demand by Verify rather
// than at load (a load-time payload sweep would reintroduce the O(genome)
// cost the artifact exists to remove).
type Artifact struct {
	name       string
	pattern    string // upper-cased scaffold the PAM shards index; "" = none
	patternLen int
	seqs       []artifactSeq
	data       []byte // backing file image for loaded artifacts (nil when built in memory)
	headerLen  int
	payloadSum uint64
	asm        *Assembly    // lazily built, aliasing the payload
	close      func() error // unmaps a LoadArtifact mapping; nil otherwise
}

// artifactSeq is one sequence's resident state: metadata plus zero-copy
// views into the payload (or, for freshly built artifacts, the slices the
// builder produced).
type artifactSeq struct {
	name string
	desc string
	raw  []byte
	view WordView
	pam  []uint64
}

// PAM shard entries pack one candidate as position<<2 | strand bits.
const (
	// PAMFwd marks a candidate whose forward-strand scaffold matched.
	PAMFwd = 1 << 0
	// PAMRev marks a candidate whose reverse-strand scaffold matched.
	PAMRev = 1 << 1
)

// artifactMagic opens every artifact file.
const artifactMagic = "CASOFART"

// ArtifactVersion is the current format version. Readers refuse any other.
const ArtifactVersion = 1

// artifactEndianTag is written in the builder's native byte order; a reader
// whose native order decodes it differently must not reinterpret the
// payload words.
const artifactEndianTag uint32 = 0x01020304

// fixedHeaderLen is the byte length of the fixed header prefix (magic,
// version, endian tag, header length, header checksum, payload checksum,
// pattern length, sequence count).
const fixedHeaderLen = 8 + 4 + 4 + 8 + 8 + 8 + 4 + 4

// ErrArtifactMagic is returned when the input does not start with the
// artifact magic — it is not an artifact file at all.
var ErrArtifactMagic = errors.New("genome: not a genome artifact (bad magic)")

// ErrArtifactEndian is returned when the artifact was built on a host with
// the opposite byte order: its payload words cannot be reinterpreted in
// place. Rebuild the artifact on (or for) the consuming host.
var ErrArtifactEndian = errors.New("genome: artifact built with opposite byte order; rebuild it on this host")

// ArtifactVersionError reports an artifact written by an incompatible
// format version.
type ArtifactVersionError struct {
	Got, Want uint32
}

// Error implements error.
func (e *ArtifactVersionError) Error() string {
	return fmt.Sprintf("genome: artifact format version %d (this build reads version %d)", e.Got, e.Want)
}

// ArtifactCorruptError reports an artifact whose structure or checksums do
// not hold together — a truncated file, a flipped bit, an offset pointing
// outside the file.
type ArtifactCorruptError struct {
	Reason string
}

// Error implements error.
func (e *ArtifactCorruptError) Error() string {
	return "genome: corrupt artifact: " + e.Reason
}

func corruptf(format string, args ...any) error {
	return &ArtifactCorruptError{Reason: fmt.Sprintf(format, args...)}
}

// DuplicateNameError reports two sequences sharing one name within an
// assembly. Name-keyed consumers (Assembly.Sequence, the artifact's
// per-sequence index) would silently resolve to the first record, so both
// LoadDir and BuildArtifact refuse the assembly instead.
type DuplicateNameError struct {
	Name string
}

// Error implements error.
func (e *DuplicateNameError) Error() string {
	return fmt.Sprintf("genome: duplicate sequence name %q in assembly", e.Name)
}

// checkUniqueNames returns a *DuplicateNameError when two sequences share a
// name.
func checkUniqueNames(seqs []*Sequence) error {
	seen := make(map[string]struct{}, len(seqs))
	for _, s := range seqs {
		if _, dup := seen[s.Name]; dup {
			return &DuplicateNameError{Name: s.Name}
		}
		seen[s.Name] = struct{}{}
	}
	return nil
}

// PAMFunc computes one sequence's sorted PAM-candidate shard from its word
// view: entries are pos<<2 | PAMFwd/PAMRev bits in ascending position
// order. The search layer supplies the SWAR prefilter as the
// implementation; the genome layer stays ignorant of pattern compilation.
type PAMFunc func(seqIndex int, v *WordView) []uint64

// BuildArtifact packs every sequence of asm into artifact form. pattern and
// patternLen describe the scaffold the optional PAM shards index (empty
// pattern: no shards, pamFor may be nil); pamFor is invoked once per
// sequence with its freshly built word view.
func BuildArtifact(asm *Assembly, pattern string, patternLen int, pamFor PAMFunc) (*Artifact, error) {
	if err := checkUniqueNames(asm.Sequences); err != nil {
		return nil, err
	}
	if pattern == "" {
		patternLen, pamFor = 0, nil
	}
	a := &Artifact{
		name:       asm.Name,
		pattern:    strings.ToUpper(pattern),
		patternLen: patternLen,
		seqs:       make([]artifactSeq, len(asm.Sequences)),
	}
	for i, seq := range asm.Sequences {
		p, err := Pack(seq.Data)
		if err != nil {
			return nil, fmt.Errorf("genome: artifact: sequence %s: %w", seq.Name, err)
		}
		s := &a.seqs[i]
		s.name, s.desc, s.raw = seq.Name, seq.Description, seq.Data
		p.WordView(&s.view)
		if pamFor != nil {
			s.pam = pamFor(i, &s.view)
		}
	}
	return a, nil
}

// Name returns the assembly name recorded in the artifact.
func (a *Artifact) Name() string { return a.name }

// Pattern returns the upper-cased scaffold pattern the PAM shards were
// built for, or "" when the artifact carries no PAM index.
func (a *Artifact) Pattern() string { return a.pattern }

// PatternLen returns the indexed scaffold's length in bases (0 without a
// PAM index).
func (a *Artifact) PatternLen() int { return a.patternLen }

// HasPAMIndex reports whether the artifact carries PAM shards built for the
// given scaffold pattern (compared case-insensitively).
func (a *Artifact) HasPAMIndex(pattern string) bool {
	return a.pattern != "" && strings.EqualFold(a.pattern, pattern)
}

// SeqCount returns the number of sequences.
func (a *Artifact) SeqCount() int { return len(a.seqs) }

// SeqName returns the name of sequence si.
func (a *Artifact) SeqName(si int) string { return a.seqs[si].name }

// SeqLen returns the base count of sequence si.
func (a *Artifact) SeqLen(si int) int { return a.seqs[si].view.n }

// TotalLen returns the summed length of all sequences.
func (a *Artifact) TotalLen() int64 {
	var n int64
	for i := range a.seqs {
		n += int64(a.seqs[i].view.n)
	}
	return n
}

// View returns the resident whole-sequence word view of sequence si. The
// view is shared and read-only; Window positions are absolute sequence
// coordinates.
func (a *Artifact) View(si int) *WordView { return &a.seqs[si].view }

// PAMCount returns the total number of precomputed PAM candidates.
func (a *Artifact) PAMCount() int64 {
	var n int64
	for i := range a.seqs {
		n += int64(len(a.seqs[i].pam))
	}
	return n
}

// PAMRange returns the PAM shard entries of sequence si whose positions lie
// in [lo, hi), in ascending position order. Entries are pos<<2 | PAMFwd /
// PAMRev. The slice aliases the resident shard — callers must not mutate it.
func (a *Artifact) PAMRange(si, lo, hi int) []uint64 {
	pam := a.seqs[si].pam
	from := sort.Search(len(pam), func(i int) bool { return int(pam[i]>>2) >= lo })
	to := from
	for to < len(pam) && int(pam[to]>>2) < hi {
		to++
	}
	return pam[from:to]
}

// Assembly returns the assembly view of the artifact: sequence Data aliases
// the resident payload (no copy), and the returned assembly links back to
// the artifact so engines can discover the resident views and shards via
// Assembly.Artifact. The assembly is built once and shared.
func (a *Artifact) Assembly() *Assembly {
	if a.asm != nil {
		return a.asm
	}
	asm := &Assembly{Name: a.name, art: a}
	asm.Sequences = make([]*Sequence, len(a.seqs))
	for i := range a.seqs {
		s := &a.seqs[i]
		asm.Sequences[i] = &Sequence{Name: s.name, Description: s.desc, Data: s.raw}
	}
	a.asm = asm
	return asm
}

// pad8 rounds n up to the next multiple of 8 so every payload section stays
// 8-byte aligned relative to the file start.
func pad8(n int) int { return (n + 7) &^ 7 }

// u64Bytes reinterprets a word slice as its backing bytes (native order).
func u64Bytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), 8*len(w))
}

// bytesU64 reinterprets b as n native-order words. When b is not 8-byte
// aligned (possible only if the backing buffer itself is misaligned, which
// the Go allocator never produces for os.ReadFile) the words are copied —
// correctness never depends on the zero-copy fast path.
func bytesU64(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.NativeEndian.Uint64(b[8*i:])
	}
	return out
}

// seqLayout is the encoder's per-sequence section plan.
type seqLayout struct {
	rawOff, wordsOff, unkOff, pamOff int
}

// appendStr appends a u32 length-prefixed string.
func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// encodeHeader serializes the header with the given section layout. The
// checksum fields are left zero; the caller patches them after the full
// image exists.
func (a *Artifact) encodeHeader(headerLen int, layout []seqLayout) []byte {
	h := make([]byte, 0, headerLen)
	h = append(h, artifactMagic...)
	h = binary.LittleEndian.AppendUint32(h, ArtifactVersion)
	h = binary.NativeEndian.AppendUint32(h, artifactEndianTag)
	h = binary.LittleEndian.AppendUint64(h, uint64(headerLen))
	h = binary.LittleEndian.AppendUint64(h, 0) // headerSum, patched
	h = binary.LittleEndian.AppendUint64(h, 0) // payloadSum, patched
	h = binary.LittleEndian.AppendUint32(h, uint32(a.patternLen))
	h = binary.LittleEndian.AppendUint32(h, uint32(len(a.seqs)))
	h = appendStr(h, a.name)
	h = appendStr(h, a.pattern)
	for i := range a.seqs {
		s := &a.seqs[i]
		h = appendStr(h, s.name)
		h = appendStr(h, s.desc)
		h = binary.LittleEndian.AppendUint64(h, uint64(s.view.n))
		var l seqLayout
		if layout != nil {
			l = layout[i]
		}
		h = binary.LittleEndian.AppendUint64(h, uint64(l.rawOff))
		h = binary.LittleEndian.AppendUint64(h, uint64(l.wordsOff))
		h = binary.LittleEndian.AppendUint64(h, uint64(l.unkOff))
		h = binary.LittleEndian.AppendUint64(h, uint64(l.pamOff))
		h = binary.LittleEndian.AppendUint64(h, uint64(len(s.pam)))
	}
	return h
}

// fnvSum hashes b with FNV-1a 64.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// headerSumOf hashes the header region with its own checksum field zeroed.
func headerSumOf(header []byte) uint64 {
	h := fnv.New64a()
	h.Write(header[:24])
	h.Write(make([]byte, 8))
	h.Write(header[32:])
	return h.Sum64()
}

// Encode serializes the artifact into one file image.
func (a *Artifact) Encode() []byte {
	// First pass sizes the header (offsets are fixed-width, so patching
	// real values later cannot change its length).
	headerLen := pad8(len(a.encodeHeader(0, nil)))
	layout := make([]seqLayout, len(a.seqs))
	off := headerLen
	for i := range a.seqs {
		s := &a.seqs[i]
		l := &layout[i]
		l.rawOff = off
		off = pad8(off + len(s.raw))
		l.wordsOff = off
		off += 8 * len(s.view.codes)
		l.unkOff = off
		off += 8 * len(s.view.unknown)
		l.pamOff = off
		off += 8 * len(s.pam)
	}
	img := make([]byte, off)
	copy(img, a.encodeHeader(headerLen, layout))
	for i := range a.seqs {
		s := &a.seqs[i]
		l := &layout[i]
		copy(img[l.rawOff:], s.raw)
		copy(img[l.wordsOff:], u64Bytes(s.view.codes))
		copy(img[l.unkOff:], u64Bytes(s.view.unknown))
		copy(img[l.pamOff:], u64Bytes(s.pam))
	}
	binary.LittleEndian.PutUint64(img[32:], fnvSum(img[headerLen:]))
	binary.LittleEndian.PutUint64(img[24:], headerSumOf(img[:headerLen]))
	return img
}

// WriteFile writes the encoded artifact to path.
func (a *Artifact) WriteFile(path string) error {
	if err := os.WriteFile(path, a.Encode(), 0o644); err != nil {
		return fmt.Errorf("genome: artifact: %w", err)
	}
	return nil
}

// headerReader walks the variable part of the header with bounds checks.
type headerReader struct {
	b   []byte
	pos int
}

func (r *headerReader) u32() (uint32, error) {
	if r.pos+4 > len(r.b) {
		return 0, corruptf("header field at %d overruns the %d-byte header", r.pos, len(r.b))
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *headerReader) u64() (uint64, error) {
	if r.pos+8 > len(r.b) {
		return 0, corruptf("header field at %d overruns the %d-byte header", r.pos, len(r.b))
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *headerReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) < 0 || r.pos+int(n) > len(r.b) {
		return "", corruptf("header string at %d (%d bytes) overruns the %d-byte header", r.pos, n, len(r.b))
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// ReadArtifact parses an artifact file image in place: the returned
// artifact's raw bytes, word views and PAM shards alias data, so the caller
// must not mutate it. Only the header is validated (magic, version,
// endianness, checksum, section bounds) — the load stays O(header) +
// O(sequences); run Verify to sweep the payload checksum.
func ReadArtifact(data []byte) (*Artifact, error) {
	if len(data) < fixedHeaderLen {
		return nil, corruptf("%d bytes is shorter than the %d-byte fixed header", len(data), fixedHeaderLen)
	}
	if string(data[:8]) != artifactMagic {
		return nil, ErrArtifactMagic
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ArtifactVersion {
		return nil, &ArtifactVersionError{Got: v, Want: ArtifactVersion}
	}
	switch tag := binary.NativeEndian.Uint32(data[12:]); tag {
	case artifactEndianTag:
	case 0x04030201:
		return nil, ErrArtifactEndian
	default:
		return nil, corruptf("unrecognized endianness tag %#x", tag)
	}
	headerLen64 := binary.LittleEndian.Uint64(data[16:])
	if headerLen64 < fixedHeaderLen || headerLen64 > uint64(len(data)) || headerLen64%8 != 0 {
		return nil, corruptf("header length %d outside [%d, %d] or unaligned", headerLen64, fixedHeaderLen, len(data))
	}
	headerLen := int(headerLen64)
	header := data[:headerLen]
	if got, want := binary.LittleEndian.Uint64(data[24:]), headerSumOf(header); got != want {
		return nil, corruptf("header checksum %#x does not match computed %#x", got, want)
	}
	a := &Artifact{
		data:       data,
		headerLen:  headerLen,
		payloadSum: binary.LittleEndian.Uint64(data[32:]),
		patternLen: int(binary.LittleEndian.Uint32(data[40:])),
	}
	nseq := int(binary.LittleEndian.Uint32(data[44:]))
	// Each sequence record occupies at least 56 header bytes (two empty
	// length-prefixed strings plus six fixed words), bounding nseq by the
	// header length before any allocation sized from it.
	const minSeqRecord = 4 + 4 + 6*8
	if nseq < 0 || nseq > (headerLen-fixedHeaderLen)/minSeqRecord {
		return nil, corruptf("sequence count %d cannot fit the %d-byte header", nseq, headerLen)
	}
	r := &headerReader{b: header, pos: fixedHeaderLen}
	var err error
	if a.name, err = r.str(); err != nil {
		return nil, err
	}
	if a.pattern, err = r.str(); err != nil {
		return nil, err
	}
	a.seqs = make([]artifactSeq, nseq)
	// section re-slices [off, off+size) after validating it sits inside the
	// payload region on an 8-byte boundary.
	section := func(what string, si int, off, size uint64) ([]byte, error) {
		end := off + size
		if off < headerLen64 || end < off || end > uint64(len(data)) || off%8 != 0 {
			return nil, corruptf("sequence %d %s section [%d, %d) outside the %d-byte payload", si, what, off, end, len(data))
		}
		return data[off:end:end], nil
	}
	for si := 0; si < nseq; si++ {
		s := &a.seqs[si]
		if s.name, err = r.str(); err != nil {
			return nil, err
		}
		if s.desc, err = r.str(); err != nil {
			return nil, err
		}
		seqLen, err := r.u64()
		if err != nil {
			return nil, err
		}
		if seqLen > math.MaxInt-64 {
			return nil, corruptf("sequence %d length %d is not addressable", si, seqLen)
		}
		rawOff, err := r.u64()
		if err != nil {
			return nil, err
		}
		wordsOff, err := r.u64()
		if err != nil {
			return nil, err
		}
		unkOff, err := r.u64()
		if err != nil {
			return nil, err
		}
		pamOff, err := r.u64()
		if err != nil {
			return nil, err
		}
		pamCount, err := r.u64()
		if err != nil {
			return nil, err
		}
		words := seqLen/32 + 1
		if seqLen%32 != 0 {
			words++
		}
		if s.raw, err = section("raw", si, rawOff, seqLen); err != nil {
			return nil, err
		}
		wordBytes, err := section("codes", si, wordsOff, 8*words)
		if err != nil {
			return nil, err
		}
		unkBytes, err := section("unknown", si, unkOff, 8*words)
		if err != nil {
			return nil, err
		}
		if pamCount > uint64(len(data))/8 {
			return nil, corruptf("sequence %d PAM shard count %d exceeds the file size", si, pamCount)
		}
		pamBytes, err := section("pam", si, pamOff, 8*pamCount)
		if err != nil {
			return nil, err
		}
		s.view = WordView{
			n:       int(seqLen),
			codes:   bytesU64(wordBytes, int(words)),
			unknown: bytesU64(unkBytes, int(words)),
		}
		s.pam = bytesU64(pamBytes, int(pamCount))
	}
	return a, nil
}

// LoadArtifact reads and parses the artifact at path. The load is
// O(header): on unix the file is memory-mapped read-only, so only the
// header pages are touched before the first kernel launch and the payload
// faults in lazily as the engines walk it; elsewhere the file is read whole.
// Either way the payload lands in the artifact's views without being
// scanned, copied or repacked. Call Close when done with a loaded artifact
// to release the mapping (safe to skip for process-lifetime loads).
func LoadArtifact(path string) (*Artifact, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("genome: artifact: %w", err)
	}
	a, err := ReadArtifact(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("genome: artifact %s: %w", path, err)
	}
	a.close = unmap
	return a, nil
}

// Close releases the file mapping behind a LoadArtifact-loaded artifact.
// Every view, sequence and assembly aliasing the artifact is invalid after
// Close. It is a no-op for built or byte-slice-backed artifacts.
func (a *Artifact) Close() error {
	if a.close == nil {
		return nil
	}
	unmap := a.close
	a.close = nil
	return unmap()
}

// Verify sweeps the payload checksum — the O(genome) integrity check that
// load deliberately skips. Freshly built (never encoded) artifacts verify
// trivially.
func (a *Artifact) Verify() error {
	if a.data == nil {
		return nil
	}
	if got := fnvSum(a.data[a.headerLen:]); got != a.payloadSum {
		return corruptf("payload checksum %#x does not match recorded %#x", got, a.payloadSum)
	}
	return nil
}

// Equal reports whether two artifacts carry identical assemblies, shards
// and metadata; the codec tests use it for round-trip checks.
func (a *Artifact) Equal(b *Artifact) bool {
	if a.name != b.name || a.pattern != b.pattern || a.patternLen != b.patternLen || len(a.seqs) != len(b.seqs) {
		return false
	}
	for i := range a.seqs {
		x, y := &a.seqs[i], &b.seqs[i]
		if x.name != y.name || x.desc != y.desc || !bytes.Equal(x.raw, y.raw) {
			return false
		}
		if x.view.n != y.view.n || !slicesEqualU64(x.view.codes, y.view.codes) ||
			!slicesEqualU64(x.view.unknown, y.view.unknown) || !slicesEqualU64(x.pam, y.pam) {
			return false
		}
	}
	return true
}

func slicesEqualU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
