package genome

import (
	"strings"
	"testing"
)

func TestComposeBasics(t *testing.T) {
	asm := &Assembly{Name: "t", Sequences: []*Sequence{
		{Name: "a", Data: []byte("ACGTacgtNNRY")},
		{Name: "b", Data: []byte("GGGG")},
	}}
	c := Compose(asm)
	if c.TotalBases != 16 || c.Sequences != 2 {
		t.Fatalf("totals: %+v", c)
	}
	if c.A != 2 || c.C != 2 || c.G != 6 || c.T != 2 {
		t.Errorf("base counts: A=%d C=%d G=%d T=%d", c.A, c.C, c.G, c.T)
	}
	if c.N != 2 || c.OtherIUPAC != 2 {
		t.Errorf("N=%d other=%d", c.N, c.OtherIUPAC)
	}
	if c.SoftMasked != 4 {
		t.Errorf("SoftMasked = %d", c.SoftMasked)
	}
	// GC = (2+6)/12 resolved.
	if gc := c.GC(); gc < 0.66 || gc > 0.67 {
		t.Errorf("GC = %v", gc)
	}
	if c.NFraction() != 2.0/16 {
		t.Errorf("NFraction = %v", c.NFraction())
	}
	if c.SoftMaskFraction() != 4.0/16 {
		t.Errorf("SoftMaskFraction = %v", c.SoftMaskFraction())
	}
	if !strings.Contains(c.String(), "2 sequences") {
		t.Errorf("String = %q", c.String())
	}
}

func TestComposeN50(t *testing.T) {
	mk := func(n int) *Sequence { return &Sequence{Name: "s", Data: make([]byte, n)} }
	asm := &Assembly{Sequences: []*Sequence{mk(10), mk(40), mk(20), mk(30)}}
	// Total 100; descending 40+30 = 70 >= 50 at length 30.
	if c := Compose(asm); c.N50 != 30 {
		t.Errorf("N50 = %d, want 30", c.N50)
	}
}

func TestComposeEmpty(t *testing.T) {
	c := Compose(&Assembly{})
	if c.GC() != 0 || c.NFraction() != 0 || c.SoftMaskFraction() != 0 || c.N50 != 0 {
		t.Errorf("empty composition: %+v", c)
	}
}

// TestComposeMatchesProfiles ties the generator and the analyzer together:
// generated assemblies must report the composition their profile requested.
func TestComposeMatchesProfiles(t *testing.T) {
	for _, p := range []Profile{HG19Like(300_000), HG38Like(300_000)} {
		asm, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		c := Compose(asm)
		if diff := c.GC() - p.GC; diff > 0.03 || diff < -0.03 {
			t.Errorf("%s: GC %.3f vs profile %.3f", p.Name, c.GC(), p.GC)
		}
		if diff := c.NFraction() - p.NFraction; diff > 0.03 || diff < -0.03 {
			t.Errorf("%s: N %.3f vs profile %.3f", p.Name, c.NFraction(), p.NFraction)
		}
		if c.OtherIUPAC != 0 {
			t.Errorf("%s: generator emitted ambiguity codes", p.Name)
		}
	}
}
