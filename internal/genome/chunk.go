package genome

import (
	"errors"
	"fmt"
)

// Chunk is one device-sized slice of a sequence. The Cas-OFFinder host
// program "divides the genome data into chunks that can fit the memory of a
// heterogeneous device" (paper §II.A); the finder kernel scans one chunk per
// launch. Data aliases the parent sequence — chunking copies nothing.
type Chunk struct {
	// SeqIndex and SeqName identify the parent record within the assembly.
	SeqIndex int
	SeqName  string
	// Start is the 0-based offset of Data[0] within the parent sequence.
	Start int
	// Data holds Body+Overlap bases: Body positions are the candidate site
	// starts owned by this chunk, and the trailing Overlap bases duplicate
	// the head of the next chunk so that sites straddling the boundary are
	// still fully readable.
	Data []byte
	// Body is the number of site-start positions this chunk owns.
	Body int
	// Overlap is the number of trailing read-only bases shared with the
	// next chunk (patternLen-1, or less at the end of a sequence).
	Overlap int
}

// ErrChunkTooSmall is returned when the chunk budget cannot hold even one
// pattern-length window.
var ErrChunkTooSmall = errors.New("genome: chunk size smaller than pattern length")

// Chunker plans how an assembly is staged into a bounded device memory.
type Chunker struct {
	// ChunkBytes is the maximum length of Chunk.Data. It models the device
	// global-memory budget reserved for sequence data.
	ChunkBytes int
	// PatternLen is the full pattern length (guide plus PAM); chunks overlap
	// by PatternLen-1 bases.
	PatternLen int
}

// Each calls fn for every chunk Plan would produce, in plan order, without
// materialising the whole plan: chunks are built one at a time, so a
// streaming consumer can stage chunk N+1 while chunk N is still being
// scanned. An error from fn stops the walk and is returned.
func (c *Chunker) Each(asm *Assembly, fn func(*Chunk) error) error {
	if c.PatternLen <= 0 {
		return fmt.Errorf("genome: invalid pattern length %d", c.PatternLen)
	}
	if c.ChunkBytes < c.PatternLen {
		return fmt.Errorf("%w: %d < %d", ErrChunkTooSmall, c.ChunkBytes, c.PatternLen)
	}
	overlap := c.PatternLen - 1
	body := c.ChunkBytes - overlap
	for si, seq := range asm.Sequences {
		n := len(seq.Data)
		if n < c.PatternLen {
			continue
		}
		// Positions 0 .. n-PatternLen are valid site starts.
		starts := n - c.PatternLen + 1
		for off := 0; off < starts; off += body {
			b := body
			if off+b > starts {
				b = starts - off
			}
			end := off + b + overlap
			if end > n {
				end = n
			}
			if err := fn(&Chunk{
				SeqIndex: si,
				SeqName:  seq.Name,
				Start:    off,
				Data:     seq.Data[off:end],
				Body:     b,
				Overlap:  end - (off + b),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Plan splits every sequence of the assembly into chunks, in assembly order.
// Sequences shorter than the pattern produce no chunks (they cannot contain
// a site).
func (c *Chunker) Plan(asm *Assembly) ([]*Chunk, error) {
	var chunks []*Chunk
	if err := c.Each(asm, func(ch *Chunk) error {
		chunks = append(chunks, ch)
		return nil
	}); err != nil {
		return nil, err
	}
	return chunks, nil
}

// CountChunks returns how many chunks Plan would produce without building
// them; the timing model uses it to cost host-side staging for full-scale
// assemblies that are never materialised.
func (c *Chunker) CountChunks(seqLens []int) (int, error) {
	if c.PatternLen <= 0 || c.ChunkBytes < c.PatternLen {
		return 0, ErrChunkTooSmall
	}
	body := c.ChunkBytes - (c.PatternLen - 1)
	total := 0
	for _, n := range seqLens {
		if n < c.PatternLen {
			continue
		}
		starts := n - c.PatternLen + 1
		total += (starts + body - 1) / body
	}
	return total, nil
}
