package genome

import (
	"bytes"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	p := HG19Like(50_000)
	a1, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a2, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a1.Sequences) != len(a2.Sequences) {
		t.Fatalf("non-deterministic sequence count: %d vs %d", len(a1.Sequences), len(a2.Sequences))
	}
	for i := range a1.Sequences {
		if !bytes.Equal(a1.Sequences[i].Data, a2.Sequences[i].Data) {
			t.Fatalf("sequence %d differs between identical generations", i)
		}
	}
}

func TestGenerateSize(t *testing.T) {
	for _, total := range []int{1, 100, 10_000, 123_457} {
		asm, err := Generate(HG38Like(total))
		if err != nil {
			t.Fatalf("Generate(%d): %v", total, err)
		}
		if got := asm.TotalLen(); got != int64(total) {
			t.Errorf("TotalLen = %d, want %d", got, total)
		}
	}
}

func TestGenerateValidCodes(t *testing.T) {
	asm, err := Generate(HG19Like(30_000))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, s := range asm.Sequences {
		if err := Validate(s.Data); err != nil {
			t.Errorf("sequence %s: %v", s.Name, err)
		}
	}
}

func TestGenerateProfileDifferences(t *testing.T) {
	const n = 400_000
	count := func(p Profile) (nFrac float64, gcFrac float64) {
		asm, err := Generate(p)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		var ns, gcs, resolved int
		for _, s := range asm.Sequences {
			for _, b := range s.Data {
				switch b &^ 0x20 {
				case 'N':
					ns++
				case 'G', 'C':
					gcs++
					resolved++
				default:
					resolved++
				}
			}
		}
		return float64(ns) / n, float64(gcs) / float64(resolved)
	}
	n19, gc19 := count(HG19Like(n))
	n38, gc38 := count(HG38Like(n))
	if n19 <= n38 {
		t.Errorf("hg19-like should carry more N gaps: %.4f vs %.4f", n19, n38)
	}
	for _, tc := range []struct {
		name     string
		got, cfg float64
	}{
		{"hg19 N", n19, HG19Like(n).NFraction},
		{"hg38 N", n38, HG38Like(n).NFraction},
		{"hg19 GC", gc19, HG19Like(n).GC},
		{"hg38 GC", gc38, HG38Like(n).GC},
	} {
		if diff := tc.got - tc.cfg; diff > 0.03 || diff < -0.03 {
			t.Errorf("%s fraction %.4f too far from configured %.4f", tc.name, tc.got, tc.cfg)
		}
	}
}

func TestGenerateChromosomeStructure(t *testing.T) {
	asm, err := Generate(HG19Like(240_000))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(asm.Sequences) != len(humanChromWeights) {
		t.Fatalf("got %d chromosomes, want %d", len(asm.Sequences), len(humanChromWeights))
	}
	// chr1 must be the largest, chr21 among the smallest.
	chr1 := asm.Sequence("chr1").Len()
	chr21 := asm.Sequence("chr21").Len()
	if chr1 <= chr21 {
		t.Errorf("chr1 (%d) should be larger than chr21 (%d)", chr1, chr21)
	}
}

func TestGenerateErrors(t *testing.T) {
	tests := []struct {
		name string
		p    Profile
	}{
		{"zero total", Profile{Name: "x", Chromosomes: humanChromWeights}},
		{"no chromosomes", Profile{Name: "x", TotalBases: 10}},
		{"bad GC", Profile{Name: "x", TotalBases: 10, Chromosomes: humanChromWeights, GC: 1.5}},
		{"bad N", Profile{Name: "x", TotalBases: 10, Chromosomes: humanChromWeights, NFraction: 1.0}},
		{"bad weight", Profile{Name: "x", TotalBases: 10, Chromosomes: []ChromSpec{{"c", 0}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.p); err == nil {
				t.Error("Generate = nil error, want failure")
			}
		})
	}
}

func TestProfileFullScale(t *testing.T) {
	// The projection targets must preserve hg38 > hg19 and both ~3 Gbp.
	h19, h38 := HG19Like(1), HG38Like(1)
	if h38.FullScaleBases <= h19.FullScaleBases {
		t.Error("hg38 full-scale size should exceed hg19")
	}
	if h19.FullScaleBases < 3_000_000_000 || h38.FullScaleBases > 3_400_000_000 {
		t.Error("full-scale sizes out of plausible human-genome range")
	}
}
