// Package genome provides the sequence substrate for the off-target search
// engine: IUPAC nucleotide-code semantics, FASTA input and output for
// single- and multi-sequence files, a 2-bit packed sequence codec, a genome
// chunker that splits assemblies into device-sized pieces, and a
// deterministic synthetic-assembly generator used in place of the UCSC
// hg19/hg38 downloads.
package genome

import "fmt"

// Mask is a 4-bit set over the concrete nucleotides. Bit 0 is A, bit 1 is C,
// bit 2 is G and bit 3 is T. An IUPAC degenerate code denotes the set of
// concrete bases whose bits are present in its mask.
type Mask uint8

// Concrete nucleotide masks.
const (
	MaskA Mask = 1 << iota
	MaskC
	MaskG
	MaskT

	// MaskNone is the empty set: a byte that is not a nucleotide code.
	MaskNone Mask = 0
	// MaskAny is the full set, the mask of the code 'N'.
	MaskAny Mask = MaskA | MaskC | MaskG | MaskT
)

// maskTable maps an upper-case ASCII byte to its IUPAC mask. Bytes that are
// not IUPAC nucleotide codes map to MaskNone.
var maskTable = func() [256]Mask {
	var t [256]Mask
	set := func(b byte, m Mask) {
		t[b] = m
		t[b|0x20] = m // lower case alias
	}
	set('A', MaskA)
	set('C', MaskC)
	set('G', MaskG)
	set('T', MaskT)
	set('U', MaskT) // RNA uracil pairs like thymine
	set('R', MaskA|MaskG)
	set('Y', MaskC|MaskT)
	set('S', MaskC|MaskG)
	set('W', MaskA|MaskT)
	set('K', MaskG|MaskT)
	set('M', MaskA|MaskC)
	set('B', MaskC|MaskG|MaskT)
	set('D', MaskA|MaskG|MaskT)
	set('H', MaskA|MaskC|MaskT)
	set('V', MaskA|MaskC|MaskG)
	set('N', MaskAny)
	return t
}()

// MaskOf returns the IUPAC mask of code b, or MaskNone if b is not a
// nucleotide code. Lower-case codes are accepted.
func MaskOf(b byte) Mask { return maskTable[b] }

// IsCode reports whether b is a valid IUPAC nucleotide code.
func IsCode(b byte) bool { return maskTable[b] != MaskNone }

// IsConcrete reports whether b denotes exactly one nucleotide (A, C, G, T or
// U, in either case).
func IsConcrete(b byte) bool {
	m := maskTable[b]
	return m != MaskNone && m&(m-1) == 0
}

// Matches reports whether a genome base matches a pattern code under the
// Cas-OFFinder convention:
//
//   - a concrete genome base matches if it is a member of the pattern code's
//     IUPAC set (so pattern 'N' matches everything, 'R' matches A and G, …);
//   - an ambiguous genome base (anything with more than one bit set,
//     including 'N') matches only a pattern 'N'. Unresolved assembly
//     positions must not be reported as plausible off-target sites under a
//     permissive pattern.
//   - a byte that is not a nucleotide code never matches.
func Matches(pattern, base byte) bool {
	pm, bm := maskTable[pattern], maskTable[base]
	if pm == MaskNone || bm == MaskNone {
		return false
	}
	if bm&(bm-1) != 0 { // ambiguous genome base
		return pm == MaskAny
	}
	return pm&bm != 0
}

// Mismatch reports the inverse of Matches; it mirrors the comparison ladder
// of the paper's Listing 1, which counts a position when the genome base is
// outside the pattern code's set.
func Mismatch(pattern, base byte) bool { return !Matches(pattern, base) }

// complementTable maps each IUPAC code to its complement (the code whose
// mask is the base-wise complement of the original's members: A<->T, C<->G).
var complementTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 'N' // placeholder, fixed below for valid codes only
	}
	pairs := map[byte]byte{
		'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C',
		'U': 'A',
		'R': 'Y', 'Y': 'R',
		'S': 'S', 'W': 'W',
		'K': 'M', 'M': 'K',
		'B': 'V', 'V': 'B',
		'D': 'H', 'H': 'D',
		'N': 'N',
	}
	for i := range t {
		b := byte(i)
		up := b &^ 0x20
		c, ok := pairs[up]
		if !ok {
			t[i] = b // non-codes pass through unchanged
			continue
		}
		if b >= 'a' && b <= 'z' {
			t[i] = c | 0x20
		} else {
			t[i] = c
		}
	}
	return t
}()

// Complement returns the IUPAC complement of code b. Bytes that are not
// nucleotide codes are returned unchanged; case is preserved.
func Complement(b byte) byte { return complementTable[b] }

// ReverseComplement reverses seq in place and complements every code.
func ReverseComplement(seq []byte) {
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = complementTable[seq[j]], complementTable[seq[i]]
	}
	if len(seq)%2 == 1 {
		mid := len(seq) / 2
		seq[mid] = complementTable[seq[mid]]
	}
}

// ReverseComplemented returns a new slice holding the reverse complement of
// seq, leaving seq untouched.
func ReverseComplemented(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = complementTable[b]
	}
	return out
}

// Validate checks that every byte of seq is an IUPAC nucleotide code and
// returns the offset and value of the first offender otherwise.
func Validate(seq []byte) error {
	for i, b := range seq {
		if maskTable[b] == MaskNone {
			return fmt.Errorf("genome: invalid nucleotide code %q at offset %d", b, i)
		}
	}
	return nil
}

// Upper returns seq with every nucleotide code folded to upper case, in a
// new slice. FASTA producers use lower case for soft-masked (repeat)
// regions; the search treats them like ordinary sequence.
func Upper(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		if b >= 'a' && b <= 'z' {
			b &^= 0x20
		}
		out[i] = b
	}
	return out
}
