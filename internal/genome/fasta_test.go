package genome

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFASTASingle(t *testing.T) {
	in := ">chr1 test sequence\nACGT\nACGT\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(seqs) != 1 {
		t.Fatalf("got %d sequences, want 1", len(seqs))
	}
	s := seqs[0]
	if s.Name != "chr1" || s.Description != "test sequence" {
		t.Errorf("header parsed as (%q, %q)", s.Name, s.Description)
	}
	if string(s.Data) != "ACGTACGT" {
		t.Errorf("Data = %q, want ACGTACGT", s.Data)
	}
	if s.Len() != 8 {
		t.Errorf("Len = %d, want 8", s.Len())
	}
}

func TestReadFASTAMulti(t *testing.T) {
	in := ">a\nAC\nGT\n\n>b second\nNNNN\n;comment\n>c\nacgt"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(seqs) != 3 {
		t.Fatalf("got %d sequences, want 3", len(seqs))
	}
	want := []struct{ name, data string }{{"a", "ACGT"}, {"b", "NNNN"}, {"c", "acgt"}}
	for i, w := range want {
		if seqs[i].Name != w.name || string(seqs[i].Data) != w.data {
			t.Errorf("seq %d = (%q, %q), want (%q, %q)", i, seqs[i].Name, seqs[i].Data, w.name, w.data)
		}
	}
}

func TestReadFASTACRLF(t *testing.T) {
	in := ">x\r\nACGT\r\nTTTT\r\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if string(seqs[0].Data) != "ACGTTTTT" {
		t.Errorf("Data = %q", seqs[0].Data)
	}
}

func TestReadFASTAErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"only blank", "\n\n"},
		{"data before header", "ACGT\n>x\nA\n"},
		{"invalid code", ">x\nAC!T\n"},
		{"empty header", ">\nACGT\n"},
		{"empty header spaces", ">   \nACGT\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadFASTA(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadFASTA(%q) = nil error, want failure", tt.in)
			}
		})
	}
	if _, err := ReadFASTA(strings.NewReader("")); !errors.Is(err, ErrEmptyFASTA) {
		t.Errorf("empty input error = %v, want ErrEmptyFASTA", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	seqs := []*Sequence{
		{Name: "chr1", Description: "first", Data: []byte("ACGTACGTACGTACGT")},
		{Name: "chr2", Data: []byte("NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN")},
		{Name: "chrM", Data: []byte("acgt")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs, 10); err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(got) != len(seqs) {
		t.Fatalf("round trip lost sequences: %d != %d", len(got), len(seqs))
	}
	for i := range seqs {
		if got[i].Name != seqs[i].Name || !bytes.Equal(got[i].Data, seqs[i].Data) {
			t.Errorf("sequence %d did not round-trip", i)
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"b.fa":       ">chrB\nGGGG\n",
		"a.fasta":    ">chrA\nAAAA\n",
		"notes.txt":  "not fasta",
		"c.fna":      ">chrC\nCCCC\n",
		"sub.hidden": "junk",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	asm, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	var names []string
	for _, s := range asm.Sequences {
		names = append(names, s.Name)
	}
	// Lexical file order: a.fasta, b.fa, c.fna.
	want := []string{"chrA", "chrB", "chrC"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("sequence order = %v, want %v", names, want)
	}
	if asm.TotalLen() != 12 {
		t.Errorf("TotalLen = %d, want 12", asm.TotalLen())
	}
	if asm.Sequence("chrB") == nil || asm.Sequence("nope") != nil {
		t.Error("Sequence lookup misbehaved")
	}
}

func TestLoadDirSingleFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "genome.fa")
	if err := os.WriteFile(path, []byte(">only\nACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	asm, err := LoadDir(path)
	if err != nil {
		t.Fatalf("LoadDir(file): %v", err)
	}
	if len(asm.Sequences) != 1 || asm.Sequences[0].Name != "only" {
		t.Errorf("unexpected assembly: %+v", asm)
	}
}

func TestLoadDirSingleFileNameNormalized(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{".fa", ".fasta", ".fna", ".FA"} {
		path := filepath.Join(dir, "chr1"+ext)
		if err := os.WriteFile(path, []byte(">only\nACGT\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		asm, err := LoadDir(path)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", path, err)
		}
		// Single-file loads must match what a directory load would name the
		// assembly: the bare stem, so artifact headers are stable across
		// both load paths.
		if asm.Name != "chr1" {
			t.Errorf("LoadDir(chr1%s).Name = %q, want chr1", ext, asm.Name)
		}
	}
}

func TestLoadDirDuplicateNames(t *testing.T) {
	// Across files: two chromosomes claiming one name used to load
	// silently, with Assembly.Sequence and every name-keyed consumer
	// resolving to whichever came first.
	dir := t.TempDir()
	for _, f := range []string{"a.fa", "b.fa"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte(">chrDup\nACGT\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var dup *DuplicateNameError
	if _, err := LoadDir(dir); !errors.As(err, &dup) {
		t.Fatalf("LoadDir(dup across files) = %v, want DuplicateNameError", err)
	} else if dup.Name != "chrDup" {
		t.Errorf("DuplicateNameError.Name = %q, want chrDup", dup.Name)
	}

	// Within one file too.
	path := filepath.Join(t.TempDir(), "genome.fa")
	if err := os.WriteFile(path, []byte(">x\nAC\n>x\nGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(path); !errors.As(err, &dup) {
		t.Fatalf("LoadDir(dup in file) = %v, want DuplicateNameError", err)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadDir(missing) = nil error")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("LoadDir(empty dir) = nil error")
	}
}

func TestWriteFASTAFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.fa")
	seqs := []*Sequence{{Name: "x", Data: []byte("ACGT")}}
	if err := WriteFASTAFile(path, seqs, 0); err != nil {
		t.Fatalf("WriteFASTAFile: %v", err)
	}
	got, err := ReadFASTAFile(path)
	if err != nil {
		t.Fatalf("ReadFASTAFile: %v", err)
	}
	if string(got[0].Data) != "ACGT" {
		t.Errorf("Data = %q", got[0].Data)
	}
}
