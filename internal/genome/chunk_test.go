package genome

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func asmOf(data ...string) *Assembly {
	a := &Assembly{Name: "test"}
	for i, d := range data {
		a.Sequences = append(a.Sequences, &Sequence{Name: string(rune('a' + i)), Data: []byte(d)})
	}
	return a
}

func TestChunkerSingleChunk(t *testing.T) {
	c := &Chunker{ChunkBytes: 100, PatternLen: 4}
	chunks, err := c.Plan(asmOf("ACGTACGTAC"))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1", len(chunks))
	}
	ch := chunks[0]
	if ch.Start != 0 || ch.Body != 7 || ch.Overlap != 3 || len(ch.Data) != 10 {
		t.Errorf("chunk = %+v", ch)
	}
}

func TestChunkerSplits(t *testing.T) {
	// 10 bases, pattern 3 -> 8 site starts. ChunkBytes 5 -> body 3 per chunk.
	c := &Chunker{ChunkBytes: 5, PatternLen: 3}
	chunks, err := c.Plan(asmOf("ACGTACGTAC"))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	wantStarts := []int{0, 3, 6}
	wantBodies := []int{3, 3, 2}
	for i, ch := range chunks {
		if ch.Start != wantStarts[i] || ch.Body != wantBodies[i] {
			t.Errorf("chunk %d: start=%d body=%d, want start=%d body=%d",
				i, ch.Start, ch.Body, wantStarts[i], wantBodies[i])
		}
		if len(ch.Data) > c.ChunkBytes {
			t.Errorf("chunk %d data %d exceeds budget %d", i, len(ch.Data), c.ChunkBytes)
		}
		// Every owned site start must have a full pattern window in Data.
		if ch.Body > 0 && ch.Body-1+c.PatternLen > len(ch.Data) {
			t.Errorf("chunk %d: last site %d lacks full window", i, ch.Body-1)
		}
	}
}

func TestChunkerSkipsShortSequences(t *testing.T) {
	c := &Chunker{ChunkBytes: 100, PatternLen: 5}
	chunks, err := c.Plan(asmOf("ACG", "ACGTACGT", "AC"))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(chunks) != 1 || chunks[0].SeqName != "b" {
		t.Errorf("chunks = %+v", chunks)
	}
}

func TestChunkerErrors(t *testing.T) {
	if _, err := (&Chunker{ChunkBytes: 3, PatternLen: 4}).Plan(asmOf("ACGTACGT")); !errors.Is(err, ErrChunkTooSmall) {
		t.Errorf("budget < pattern: err = %v, want ErrChunkTooSmall", err)
	}
	if _, err := (&Chunker{ChunkBytes: 10, PatternLen: 0}).Plan(asmOf("ACGT")); err == nil {
		t.Error("pattern 0: err = nil")
	}
}

// TestChunkerCoverageProperty: for random assemblies and budgets, the chunk
// bodies partition the valid site starts of every sequence exactly once, and
// every chunk window reads only in-bounds data that matches the source.
func TestChunkerCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plen := 2 + rng.Intn(20)
		budget := plen + rng.Intn(50)
		nseq := 1 + rng.Intn(4)
		asm := &Assembly{Name: "prop"}
		alphabet := []byte("ACGTN")
		for i := 0; i < nseq; i++ {
			n := rng.Intn(200)
			data := make([]byte, n)
			for j := range data {
				data[j] = alphabet[rng.Intn(len(alphabet))]
			}
			asm.Sequences = append(asm.Sequences, &Sequence{Name: string(rune('a' + i)), Data: data})
		}
		c := &Chunker{ChunkBytes: budget, PatternLen: plen}
		chunks, err := c.Plan(asm)
		if err != nil {
			return false
		}
		covered := make(map[int]map[int]int) // seq -> site start -> count
		for _, ch := range chunks {
			seq := asm.Sequences[ch.SeqIndex]
			if ch.SeqName != seq.Name {
				return false
			}
			if !bytes.Equal(ch.Data, seq.Data[ch.Start:ch.Start+len(ch.Data)]) {
				return false
			}
			if ch.Body-1+plen > len(ch.Data) {
				return false // owned site without a full window
			}
			m := covered[ch.SeqIndex]
			if m == nil {
				m = make(map[int]int)
				covered[ch.SeqIndex] = m
			}
			for s := 0; s < ch.Body; s++ {
				m[ch.Start+s]++
			}
		}
		for si, seq := range asm.Sequences {
			starts := len(seq.Data) - plen + 1
			if starts < 1 {
				if len(covered[si]) != 0 {
					return false
				}
				continue
			}
			if len(covered[si]) != starts {
				return false
			}
			for s := 0; s < starts; s++ {
				if covered[si][s] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEachMatchesPlan: the streaming iterator visits exactly the chunks
// Plan materialises, in the same order.
func TestEachMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		plen := 2 + rng.Intn(10)
		budget := plen + rng.Intn(30)
		asm := &Assembly{Name: "each"}
		for i := 0; i < 1+rng.Intn(3); i++ {
			n := rng.Intn(150)
			data := make([]byte, n)
			for j := range data {
				data[j] = "ACGTN"[rng.Intn(5)]
			}
			asm.Sequences = append(asm.Sequences, &Sequence{Name: string(rune('a' + i)), Data: data})
		}
		c := &Chunker{ChunkBytes: budget, PatternLen: plen}
		want, err := c.Plan(asm)
		if err != nil {
			t.Fatalf("Plan: %v", err)
		}
		var got []*Chunk
		if err := c.Each(asm, func(ch *Chunk) error {
			got = append(got, ch)
			return nil
		}); err != nil {
			t.Fatalf("Each: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("Each visited %d chunks, Plan produced %d", len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.SeqIndex != w.SeqIndex || g.Start != w.Start || g.Body != w.Body ||
				g.Overlap != w.Overlap || !bytes.Equal(g.Data, w.Data) {
				t.Fatalf("chunk %d: Each=%+v Plan=%+v", i, g, w)
			}
		}
	}
}

// TestEachStopsOnError: the first fn error aborts the walk and is returned
// verbatim, so a streaming consumer can cancel staging mid-assembly.
func TestEachStopsOnError(t *testing.T) {
	c := &Chunker{ChunkBytes: 5, PatternLen: 3}
	boom := errors.New("boom")
	visits := 0
	err := c.Each(asmOf("ACGTACGTAC"), func(ch *Chunk) error {
		visits++
		if visits == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if visits != 2 {
		t.Fatalf("visits = %d, want 2 (walk must stop at the error)", visits)
	}
	if err := c.Each(&Assembly{}, func(*Chunk) error { return boom }); err != nil {
		t.Fatalf("empty assembly: err = %v (fn must not be called)", err)
	}
}

func TestCountChunksMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		plen := 2 + rng.Intn(10)
		budget := plen + rng.Intn(30)
		var lens []int
		asm := &Assembly{Name: "x"}
		for i := 0; i < 1+rng.Intn(3); i++ {
			n := rng.Intn(120)
			lens = append(lens, n)
			asm.Sequences = append(asm.Sequences, &Sequence{
				Name: string(rune('a' + i)),
				Data: bytes.Repeat([]byte("A"), n),
			})
		}
		c := &Chunker{ChunkBytes: budget, PatternLen: plen}
		chunks, err := c.Plan(asm)
		if err != nil {
			t.Fatalf("Plan: %v", err)
		}
		count, err := c.CountChunks(lens)
		if err != nil {
			t.Fatalf("CountChunks: %v", err)
		}
		if count != len(chunks) {
			t.Fatalf("CountChunks = %d, Plan produced %d (plen=%d budget=%d lens=%v)",
				count, len(chunks), plen, budget, lens)
		}
	}
}

func TestCountChunksError(t *testing.T) {
	c := &Chunker{ChunkBytes: 2, PatternLen: 4}
	if _, err := c.CountChunks([]int{100}); !errors.Is(err, ErrChunkTooSmall) {
		t.Errorf("err = %v, want ErrChunkTooSmall", err)
	}
}
