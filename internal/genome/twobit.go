package genome

import "fmt"

// Packed is a 2-bit packed nucleotide sequence with a side bitmap marking
// positions whose original code was not a concrete base (N or another
// ambiguity code). Packing quarters the memory footprint of a chunk staged
// into simulated device memory and is the "2-bit sequence format"
// optimization the paper's related-work section attributes to the upstream
// authors.
type Packed struct {
	n       int
	codes   []byte // 4 bases per byte, little-endian within the byte
	unknown []byte // 1 bit per base; set when the source code was ambiguous
}

const (
	codeA = 0
	codeC = 1
	codeG = 2
	codeT = 3
)

var packTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xFF
	}
	set := func(b byte, c byte) { t[b] = c; t[b|0x20] = c }
	set('A', codeA)
	set('C', codeC)
	set('G', codeG)
	set('T', codeT)
	set('U', codeT)
	return t
}()

var unpackTable = [4]byte{'A', 'C', 'G', 'T'}

// Pack converts seq to packed form. Ambiguous IUPAC codes are stored as 'N'
// (code A with the unknown bit set); invalid bytes are an error.
func Pack(seq []byte) (*Packed, error) {
	p := &Packed{
		n:       len(seq),
		codes:   make([]byte, (len(seq)+3)/4),
		unknown: make([]byte, (len(seq)+7)/8),
	}
	if err := p.fill(seq); err != nil {
		return nil, err
	}
	return p, nil
}

// Repack refills p from seq, reusing the code and unknown buffers when they
// are large enough. Streaming scanners call it once per chunk so the hot
// path packs without allocating. On error p is left partially filled and
// must be repacked before use.
func (p *Packed) Repack(seq []byte) error {
	nc, nu := (len(seq)+3)/4, (len(seq)+7)/8
	if cap(p.codes) < nc {
		p.codes = make([]byte, nc)
	} else {
		p.codes = p.codes[:nc]
		clear(p.codes)
	}
	if cap(p.unknown) < nu {
		p.unknown = make([]byte, nu)
	} else {
		p.unknown = p.unknown[:nu]
		clear(p.unknown)
	}
	p.n = len(seq)
	return p.fill(seq)
}

// fill packs seq into the (zeroed, correctly sized) code and unknown
// buffers. The padding bits of the last unknown byte are set so positions
// past Len read as ambiguous rather than silently decoding the padding as
// 'A' — the word view depends on out-of-range lanes being marked unknown.
func (p *Packed) fill(seq []byte) error {
	for i, b := range seq {
		c := packTable[b]
		if c == 0xFF {
			if !IsCode(b) {
				return fmt.Errorf("genome: cannot pack invalid code %q at offset %d", b, i)
			}
			p.unknown[i>>3] |= 1 << (i & 7)
			c = codeA
		}
		p.codes[i>>2] |= c << ((i & 3) * 2)
	}
	if r := len(seq) & 7; r != 0 {
		p.unknown[len(p.unknown)-1] |= byte(0xFF) << uint(r)
	}
	return nil
}

// Len returns the number of bases.
func (p *Packed) Len() int { return p.n }

// Base returns the code at position i: 'A', 'C', 'G' or 'T' for concrete
// positions and 'N' for positions that were ambiguous in the source.
func (p *Packed) Base(i int) byte {
	if p.unknown[i>>3]&(1<<(i&7)) != 0 {
		return 'N'
	}
	return unpackTable[(p.codes[i>>2]>>((i&3)*2))&3]
}

// Code returns the 2-bit code (0..3 for A,C,G,T) at position i and whether
// the position held a concrete base; hot loops use it instead of Base to
// avoid reconstructing ASCII.
func (p *Packed) Code(i int) (byte, bool) {
	known := p.unknown[i>>3]&(1<<(i&7)) == 0
	return (p.codes[i>>2] >> ((i & 3) * 2)) & 3, known
}

// Known reports whether position i held a concrete base.
func (p *Packed) Known(i int) bool {
	return p.unknown[i>>3]&(1<<(i&7)) == 0
}

// Unpack expands the packed sequence back to ASCII codes. Ambiguity codes
// other than N do not round-trip: they come back as 'N'.
func (p *Packed) Unpack() []byte {
	out := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = p.Base(i)
	}
	return out
}

// RangeError reports a base range that does not lie within a packed
// sequence. It is the value AppendRange panics with and the error CheckRange
// returns, so callers working from untrusted coordinates — a hit locus read
// back from a simulated device, a user-supplied region — can validate with a
// typed error instead of recovering a panic.
type RangeError struct {
	From, To, Len int
}

// Error implements error.
func (e *RangeError) Error() string {
	return fmt.Sprintf("genome: range [%d,%d) out of range for %d bases", e.From, e.To, e.Len)
}

// CheckRange validates that [from, to) lies within [0, Len], returning a
// *RangeError describing the violation otherwise.
func (p *Packed) CheckRange(from, to int) error {
	if from < 0 || to < from || to > p.n {
		return &RangeError{From: from, To: to, Len: p.n}
	}
	return nil
}

// AppendRange appends bases [from, to) to dst as ASCII codes and returns the
// extended slice. The range must lie within [0, Len]; before this was
// enforced, a range that spilled past Len read the packing padding and
// silently appended 'A's. An out-of-range call is a programmer error and
// panics with a *RangeError; callers holding untrusted coordinates should
// screen them with CheckRange first.
func (p *Packed) AppendRange(dst []byte, from, to int) []byte {
	if err := p.CheckRange(from, to); err != nil {
		panic(err)
	}
	for i := from; i < to; i++ {
		dst = append(dst, p.Base(i))
	}
	return dst
}

// PackedBytes returns the memory footprint in bytes of the packed form
// (codes plus unknown bitmap).
func (p *Packed) PackedBytes() int { return len(p.codes) + len(p.unknown) }
