package genome_test

import (
	"fmt"
	"log"
	"strings"

	"casoffinder/internal/genome"
)

// ExampleMatches shows the IUPAC degenerate-base semantics of the comparer
// kernel's ladder.
func ExampleMatches() {
	fmt.Println(genome.Matches('N', 'A')) // N matches anything concrete
	fmt.Println(genome.Matches('R', 'G')) // R = A or G
	fmt.Println(genome.Matches('R', 'C'))
	fmt.Println(genome.Matches('A', 'N')) // unresolved genome base
	// Output:
	// true
	// true
	// false
	// false
}

// ExampleReverseComplemented flips a site to the other strand.
func ExampleReverseComplemented() {
	fmt.Println(string(genome.ReverseComplemented([]byte("GATTACAGG"))))
	// Output:
	// CCTGTAATC
}

// ExampleReadFASTA parses a multi-record FASTA stream.
func ExampleReadFASTA() {
	in := ">chr1 demo\nACGT\nACGT\n>chr2\nNNNN\n"
	seqs, err := genome.ReadFASTA(strings.NewReader(in))
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range seqs {
		fmt.Printf("%s: %d bases\n", s.Name, s.Len())
	}
	// Output:
	// chr1: 8 bases
	// chr2: 4 bases
}

// ExampleGenerate builds a deterministic synthetic assembly.
func ExampleGenerate() {
	asm, err := genome.Generate(genome.HG19Like(100_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d chromosomes, %d bases\n", asm.Name, len(asm.Sequences), asm.TotalLen())
	// Output:
	// hg19-like: 24 chromosomes, 100000 bases
}

// ExampleChunker plans device-sized chunks with pattern overlap.
func ExampleChunker() {
	asm := &genome.Assembly{Sequences: []*genome.Sequence{
		{Name: "chr1", Data: []byte("ACGTACGTACGTACGT")}, // 16 bases
	}}
	chunker := &genome.Chunker{ChunkBytes: 8, PatternLen: 3}
	chunks, err := chunker.Plan(asm)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range chunks {
		fmt.Printf("start %2d: %d owned sites, %d overlap\n", c.Start, c.Body, c.Overlap)
	}
	// Output:
	// start  0: 6 owned sites, 2 overlap
	// start  6: 6 owned sites, 2 overlap
	// start 12: 2 owned sites, 2 overlap
}
