package genome

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"

	"casoffinder/internal/fault"
)

// artifactFixture builds an assembly exercising the packing edge cases:
// word-boundary lengths, soft-masked lower case, N runs, non-N ambiguity
// codes (which survive only in the raw bytes, not the 2-bit planes) and a
// description string.
func artifactFixture() *Assembly {
	return &Assembly{
		Name: "fixture",
		Sequences: []*Sequence{
			{Name: "chr31", Data: []byte("ACGTACGTACGTACGTACGTACGTACGTACG")},                                  // 31: sub-word tail
			{Name: "chr32", Data: []byte("acgtacgtacgtacgtacgtacgtacgtacgt")},                                 // 32: exact word, soft-masked
			{Name: "chr33", Description: "with desc", Data: []byte("ACGTNNNNRYSWKMACGTACGTACGTACGTACG")},      // 33: ambiguity codes
			{Name: "chr96", Data: bytes.Repeat([]byte("ACGTTGCANNGATTACAGATTACAGATTACAn"), 3)},                // 96: multi-word
			{Name: "chrX", Data: []byte("GGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG")}, // 65
		},
	}
}

// buildFixtureArtifact packs the fixture with a synthetic PAM shard (every
// 7th position, alternating strand bits) so shard round-tripping and range
// queries have non-trivial data without depending on the search layer.
func buildFixtureArtifact(t *testing.T) *Artifact {
	t.Helper()
	art, err := BuildArtifact(artifactFixture(), "NNNNNNNNNNNNNNNNNNNNNRG", 23, func(si int, v *WordView) []uint64 {
		var pam []uint64
		for pos := 0; pos+23 <= v.Len(); pos += 7 {
			strand := uint64(PAMFwd)
			if pos%14 == 0 {
				strand = PAMRev
			}
			if pos%21 == 0 {
				strand = PAMFwd | PAMRev
			}
			pam = append(pam, uint64(pos)<<2|strand)
		}
		return pam
	})
	if err != nil {
		t.Fatalf("BuildArtifact: %v", err)
	}
	return art
}

func TestArtifactRoundTrip(t *testing.T) {
	art := buildFixtureArtifact(t)
	img := art.Encode()
	got, err := ReadArtifact(img)
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if !art.Equal(got) {
		t.Fatal("decoded artifact differs from the built one")
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("Verify on a clean image: %v", err)
	}
	if got.Name() != "fixture" || got.PatternLen() != 23 || !got.HasPAMIndex("nnnnnnnnnnnnnnnnnnnnnrg") {
		t.Errorf("metadata: name=%q plen=%d pattern=%q", got.Name(), got.PatternLen(), got.Pattern())
	}
	if got.HasPAMIndex("NNNNNNNNNNNNNNNNNNNNNGG") {
		t.Error("HasPAMIndex matched a different scaffold")
	}

	// The decoded word views must equal a fresh Pack+WordView derivation.
	asm := artifactFixture()
	for si, seq := range asm.Sequences {
		p, err := Pack(seq.Data)
		if err != nil {
			t.Fatal(err)
		}
		want := p.WordView(nil)
		have := got.View(si)
		if have.Len() != want.Len() || have.Words() != want.Words() {
			t.Fatalf("seq %d: view geometry %d/%d, want %d/%d", si, have.Len(), have.Words(), want.Len(), want.Words())
		}
		for pos := 0; pos < want.Len(); pos++ {
			hc, hu := have.Window(pos)
			wc, wu := want.Window(pos)
			if hc != wc || hu != wu {
				t.Fatalf("seq %d pos %d: Window = (%#x, %#x), want (%#x, %#x)", si, pos, hc, hu, wc, wu)
			}
		}
	}

	// The assembly view carries the raw bytes verbatim, aliases the loaded
	// image (zero copy) and links back to the artifact.
	dec := got.Assembly()
	if dec.Artifact() != got {
		t.Error("Assembly().Artifact() does not link back")
	}
	if dec.Name != "fixture" || len(dec.Sequences) != len(asm.Sequences) {
		t.Fatalf("assembly shape: %q, %d sequences", dec.Name, len(dec.Sequences))
	}
	for si, seq := range dec.Sequences {
		want := asm.Sequences[si]
		if seq.Name != want.Name || seq.Description != want.Description || !bytes.Equal(seq.Data, want.Data) {
			t.Errorf("seq %d did not round-trip", si)
		}
		if len(seq.Data) > 0 && &seq.Data[0] != &got.seqs[si].raw[0] {
			t.Errorf("seq %d: Data does not alias the artifact payload", si)
		}
	}
	if dec != got.Assembly() {
		t.Error("Assembly() is not memoized")
	}
}

func TestArtifactFileRoundTrip(t *testing.T) {
	art := buildFixtureArtifact(t)
	path := filepath.Join(t.TempDir(), "fixture.cart")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	if !art.Equal(got) {
		t.Fatal("file round trip lost data")
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if _, err := LoadArtifact(filepath.Join(t.TempDir(), "missing.cart")); err == nil {
		t.Error("LoadArtifact(missing) = nil error")
	}
}

func TestArtifactPAMRange(t *testing.T) {
	art := buildFixtureArtifact(t)
	for si := 0; si < art.SeqCount(); si++ {
		full := art.PAMRange(si, 0, art.SeqLen(si))
		for i := 1; i < len(full); i++ {
			if full[i]>>2 <= full[i-1]>>2 {
				t.Fatalf("seq %d: shard not strictly ascending at %d", si, i)
			}
		}
		// Adjacent windows must partition the full shard, mirroring how
		// chunk bodies tile a sequence.
		var joined []uint64
		for lo := 0; lo < art.SeqLen(si); lo += 10 {
			hi := lo + 10
			if hi > art.SeqLen(si) {
				hi = art.SeqLen(si)
			}
			joined = append(joined, art.PAMRange(si, lo, hi)...)
		}
		if len(joined) != len(full) {
			t.Fatalf("seq %d: windows joined to %d entries, full range has %d", si, len(joined), len(full))
		}
		for i := range full {
			if joined[i] != full[i] {
				t.Fatalf("seq %d entry %d: windows joined %#x, full %#x", si, i, joined[i], full[i])
			}
		}
	}
	if n := art.PAMCount(); n <= 0 {
		t.Fatalf("PAMCount = %d, want > 0", n)
	}
}

func TestBuildArtifactRejectsDuplicateNames(t *testing.T) {
	asm := &Assembly{Name: "dup", Sequences: []*Sequence{
		{Name: "chr1", Data: []byte("ACGT")},
		{Name: "chr1", Data: []byte("TTTT")},
	}}
	var dup *DuplicateNameError
	if _, err := BuildArtifact(asm, "", 0, nil); !errors.As(err, &dup) {
		t.Fatalf("BuildArtifact(dup) = %v, want DuplicateNameError", err)
	}
}

func TestArtifactCorruption(t *testing.T) {
	img := buildFixtureArtifact(t).Encode()

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		fault.CorruptBytes(bad[:8])
		if _, err := ReadArtifact(bad); !errors.Is(err, ErrArtifactMagic) {
			t.Fatalf("err = %v, want ErrArtifactMagic", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[8:], ArtifactVersion+1)
		binary.LittleEndian.PutUint64(bad[24:], headerSumOf(bad[:binary.LittleEndian.Uint64(bad[16:])]))
		var ve *ArtifactVersionError
		if _, err := ReadArtifact(bad); !errors.As(err, &ve) {
			t.Fatalf("err = %v, want ArtifactVersionError", err)
		} else if ve.Got != ArtifactVersion+1 || ve.Want != ArtifactVersion {
			t.Fatalf("version error %+v", ve)
		}
	})
	t.Run("endian", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[12], bad[13], bad[14], bad[15] = bad[15], bad[14], bad[13], bad[12]
		if _, err := ReadArtifact(bad); !errors.Is(err, ErrArtifactEndian) {
			t.Fatalf("err = %v, want ErrArtifactEndian", err)
		}
	})
	t.Run("header bit flips", func(t *testing.T) {
		// MSB-flip each header region in turn: every flip must be caught by
		// the header checksum (or field validation), never panic.
		headerLen := int(binary.LittleEndian.Uint64(img[16:]))
		for off := 16; off < headerLen; off += 16 {
			bad := append([]byte(nil), img...)
			end := off + 8
			if end > headerLen {
				end = headerLen
			}
			fault.CorruptBytes(bad[off:end])
			var ce *ArtifactCorruptError
			if _, err := ReadArtifact(bad); err == nil {
				t.Fatalf("flip at %d: accepted", off)
			} else if !errors.As(err, &ce) {
				t.Fatalf("flip at %d: err = %v, want ArtifactCorruptError", off, err)
			}
		}
	})
	t.Run("bad section offset", func(t *testing.T) {
		// Re-checksum after tampering, so only the bounds validation stands
		// between a hostile offset and an out-of-range slice.
		headerLen := binary.LittleEndian.Uint64(img[16:])
		for _, tamper := range []func([]byte, int){
			func(b []byte, off int) { binary.LittleEndian.PutUint64(b[off:], uint64(len(b))+8) }, // past EOF
			func(b []byte, off int) { binary.LittleEndian.PutUint64(b[off:], 0) },                // inside header
			func(b []byte, off int) { binary.LittleEndian.PutUint64(b[off:], headerLen+1) },      // unaligned
		} {
			bad := append([]byte(nil), img...)
			// First sequence record: name "chr31" (4+5), desc "" (4),
			// seqLen (8) → rawOff sits after the fixed header, the name and
			// pattern strings. Locate it by re-walking the header.
			r := &headerReader{b: bad[:headerLen], pos: fixedHeaderLen}
			r.str() // assembly name
			r.str() // pattern
			r.str() // seq name
			r.str() // seq desc
			r.u64() // seqLen
			tamper(bad, r.pos)
			binary.LittleEndian.PutUint64(bad[24:], headerSumOf(bad[:headerLen]))
			var ce *ArtifactCorruptError
			if _, err := ReadArtifact(bad); !errors.As(err, &ce) {
				t.Fatalf("tampered offset: err = %v, want ArtifactCorruptError", err)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 7, fixedHeaderLen - 1, fixedHeaderLen, len(img) / 2, len(img) - 1} {
			if a, err := ReadArtifact(img[:n]); err == nil {
				// A truncation that only loses payload bytes is caught by
				// the section bounds; header-only truncations by the length
				// checks. Either way, never a silent success.
				t.Fatalf("ReadArtifact(%d of %d bytes) = %v, nil error", n, len(img), a)
			}
		}
	})
	t.Run("payload flip", func(t *testing.T) {
		headerLen := int(binary.LittleEndian.Uint64(img[16:]))
		bad := append([]byte(nil), img...)
		fault.CorruptBytes(bad[headerLen : headerLen+8])
		a, err := ReadArtifact(bad)
		if err != nil {
			// Load is O(header) by design: payload damage is invisible until
			// Verify sweeps it.
			t.Fatalf("ReadArtifact after payload flip: %v (payload must not be scanned at load)", err)
		}
		var ce *ArtifactCorruptError
		if err := a.Verify(); !errors.As(err, &ce) {
			t.Fatalf("Verify = %v, want ArtifactCorruptError", err)
		}
	})
}

func FuzzArtifact(f *testing.F) {
	img := func() []byte {
		asm := &Assembly{Name: "fz", Sequences: []*Sequence{
			{Name: "a", Data: []byte("ACGTACGTacgtNNNNACGTACGTACGTACGTA")},
			{Name: "b", Data: []byte("GGGG")},
		}}
		art, err := BuildArtifact(asm, "NNGG", 4, func(si int, v *WordView) []uint64 {
			return []uint64{0<<2 | PAMFwd, 3<<2 | PAMRev}
		})
		if err != nil {
			f.Fatal(err)
		}
		return art.Encode()
	}()
	f.Add(img)
	f.Add(img[:len(img)-3])
	f.Add(img[:fixedHeaderLen])
	f.Add([]byte("CASOFART"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// ReadArtifact must never panic, and whatever it accepts must be
		// safe to traverse end to end.
		a, err := ReadArtifact(data)
		if err != nil {
			return
		}
		_ = a.Verify()
		asm := a.Assembly()
		for si := 0; si < a.SeqCount(); si++ {
			v := a.View(si)
			if v.Len() != len(asm.Sequences[si].Data) {
				t.Fatalf("seq %d: view length %d, raw length %d", si, v.Len(), len(asm.Sequences[si].Data))
			}
			if v.Len() > 0 {
				v.Window(0)
				v.Window(v.Len() - 1)
			}
			a.PAMRange(si, 0, v.Len())
		}
	})
}
