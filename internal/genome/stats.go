package genome

import (
	"fmt"
	"sort"
	"strings"
)

// Composition summarises an assembly's base content — the properties the
// synthetic profiles are calibrated against (GC content, unresolved
// fraction, soft-masked fraction) and basic contiguity statistics.
type Composition struct {
	TotalBases int64
	Sequences  int

	// Counts of resolved concrete bases (upper- or lower-case).
	A, C, G, T int64
	// N is the count of unresolved bases; OtherIUPAC counts the remaining
	// ambiguity codes.
	N          int64
	OtherIUPAC int64
	// SoftMasked counts lower-case (repeat-masked) bases.
	SoftMasked int64

	// N50 is the standard contiguity metric: the length of the shortest
	// sequence among the largest sequences that together cover half the
	// assembly.
	N50 int
}

// GC returns the G+C fraction of resolved bases.
func (c Composition) GC() float64 {
	resolved := c.A + c.C + c.G + c.T
	if resolved == 0 {
		return 0
	}
	return float64(c.C+c.G) / float64(resolved)
}

// NFraction returns the unresolved fraction of all bases.
func (c Composition) NFraction() float64 {
	if c.TotalBases == 0 {
		return 0
	}
	return float64(c.N) / float64(c.TotalBases)
}

// SoftMaskFraction returns the lower-case fraction of all bases.
func (c Composition) SoftMaskFraction() float64 {
	if c.TotalBases == 0 {
		return 0
	}
	return float64(c.SoftMasked) / float64(c.TotalBases)
}

func (c Composition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d sequences, %d bases: GC %.1f%%, N %.1f%%, soft-masked %.1f%%, N50 %d",
		c.Sequences, c.TotalBases, 100*c.GC(), 100*c.NFraction(), 100*c.SoftMaskFraction(), c.N50)
	return b.String()
}

// Compose computes the composition of an assembly.
func Compose(asm *Assembly) Composition {
	var c Composition
	c.Sequences = len(asm.Sequences)
	lengths := make([]int, 0, len(asm.Sequences))
	for _, seq := range asm.Sequences {
		lengths = append(lengths, len(seq.Data))
		c.TotalBases += int64(len(seq.Data))
		for _, raw := range seq.Data {
			if raw >= 'a' && raw <= 'z' {
				c.SoftMasked++
			}
			switch raw &^ 0x20 {
			case 'A':
				c.A++
			case 'C':
				c.C++
			case 'G':
				c.G++
			case 'T', 'U':
				c.T++
			case 'N':
				c.N++
			default:
				if IsCode(raw) {
					c.OtherIUPAC++
				}
			}
		}
	}
	// N50: accumulate lengths in descending order until half the total.
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	var acc int64
	for _, l := range lengths {
		acc += int64(l)
		if 2*acc >= c.TotalBases {
			c.N50 = l
			break
		}
	}
	return c
}
