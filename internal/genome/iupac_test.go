package genome

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskOf(t *testing.T) {
	tests := []struct {
		code byte
		want Mask
	}{
		{'A', MaskA},
		{'C', MaskC},
		{'G', MaskG},
		{'T', MaskT},
		{'U', MaskT},
		{'a', MaskA},
		{'t', MaskT},
		{'R', MaskA | MaskG},
		{'Y', MaskC | MaskT},
		{'S', MaskC | MaskG},
		{'W', MaskA | MaskT},
		{'K', MaskG | MaskT},
		{'M', MaskA | MaskC},
		{'B', MaskC | MaskG | MaskT},
		{'D', MaskA | MaskG | MaskT},
		{'H', MaskA | MaskC | MaskT},
		{'V', MaskA | MaskC | MaskG},
		{'N', MaskAny},
		{'n', MaskAny},
		{'X', MaskNone},
		{'>', MaskNone},
		{0, MaskNone},
		{' ', MaskNone},
	}
	for _, tt := range tests {
		if got := MaskOf(tt.code); got != tt.want {
			t.Errorf("MaskOf(%q) = %04b, want %04b", tt.code, got, tt.want)
		}
	}
}

func TestIsConcrete(t *testing.T) {
	for _, b := range []byte("ACGTUacgtu") {
		if !IsConcrete(b) {
			t.Errorf("IsConcrete(%q) = false, want true", b)
		}
	}
	for _, b := range []byte("RYSWKMBDHVNX. ") {
		if IsConcrete(b) {
			t.Errorf("IsConcrete(%q) = true, want false", b)
		}
	}
}

// TestMatchesTruthTable pins the degenerate-code comparison ladder of the
// paper's Listing 1: pattern R matches A/G (so C and T are mismatches),
// Y matches C/T, and so on.
func TestMatchesTruthTable(t *testing.T) {
	matchSets := map[byte]string{
		'A': "A", 'C': "C", 'G': "G", 'T': "T",
		'R': "AG", 'Y': "CT", 'S': "CG", 'W': "AT",
		'K': "GT", 'M': "AC",
		'B': "CGT", 'D': "AGT", 'H': "ACT", 'V': "ACG",
		'N': "ACGT",
	}
	concrete := []byte("ACGT")
	for pat, set := range matchSets {
		for _, base := range concrete {
			want := bytes.IndexByte([]byte(set), base) >= 0
			if got := Matches(pat, base); got != want {
				t.Errorf("Matches(%q, %q) = %v, want %v", pat, base, got, want)
			}
			if got := Mismatch(pat, base); got == Matches(pat, base) {
				t.Errorf("Mismatch(%q, %q) should be the negation of Matches", pat, base)
			}
		}
	}
}

func TestMatchesAmbiguousGenomeBase(t *testing.T) {
	// An unresolved genome base matches only a pattern N.
	for _, base := range []byte("NRYSWKMBDHV") {
		if !Matches('N', base) {
			t.Errorf("Matches('N', %q) = false, want true", base)
		}
		for _, pat := range []byte("ACGTRYSWKMBDHV") {
			if Matches(pat, base) {
				t.Errorf("Matches(%q, %q) = true, want false for ambiguous genome base", pat, base)
			}
		}
	}
}

func TestMatchesInvalidBytes(t *testing.T) {
	for _, pair := range [][2]byte{{'A', 'X'}, {'X', 'A'}, {'X', 'X'}, {0, 'G'}, {'N', '.'}} {
		if Matches(pair[0], pair[1]) {
			t.Errorf("Matches(%q, %q) = true, want false", pair[0], pair[1])
		}
	}
}

func TestComplementPairs(t *testing.T) {
	tests := []struct{ in, want byte }{
		{'A', 'T'}, {'T', 'A'}, {'C', 'G'}, {'G', 'C'},
		{'R', 'Y'}, {'Y', 'R'}, {'S', 'S'}, {'W', 'W'},
		{'K', 'M'}, {'M', 'K'}, {'B', 'V'}, {'V', 'B'},
		{'D', 'H'}, {'H', 'D'}, {'N', 'N'},
		{'a', 't'}, {'g', 'c'}, {'n', 'n'},
		{'>', '>'}, {' ', ' '},
	}
	for _, tt := range tests {
		if got := Complement(tt.in); got != tt.want {
			t.Errorf("Complement(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestComplementPreservesMaskSemantics checks that the complement of a code
// denotes exactly the complements of the bases the code denotes.
func TestComplementPreservesMaskSemantics(t *testing.T) {
	compBase := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
	for _, pat := range []byte("ACGTRYSWKMBDHVN") {
		for base, cbase := range compBase {
			if Matches(pat, base) != Matches(Complement(pat), cbase) {
				t.Errorf("Matches(%q,%q) != Matches(comp %q, comp %q)", pat, base, Complement(pat), cbase)
			}
		}
	}
}

func TestReverseComplement(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"AC", "GT"},
		{"GATTACA", "TGTAATC"},
		{"NGG", "CCN"},
		{"acgt", "acgt"},
		{"AAAcccGGG", "CCCgggTTT"},
	}
	for _, tt := range tests {
		got := ReverseComplemented([]byte(tt.in))
		if string(got) != tt.want {
			t.Errorf("ReverseComplemented(%q) = %q, want %q", tt.in, got, tt.want)
		}
		// In-place variant must agree.
		buf := []byte(tt.in)
		ReverseComplement(buf)
		if string(buf) != tt.want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", tt.in, buf, tt.want)
		}
	}
}

// TestReverseComplementInvolution is a property test: applying reverse
// complement twice restores any IUPAC sequence.
func TestReverseComplementInvolution(t *testing.T) {
	alphabet := []byte("ACGTRYSWKMBDHVNacgtn")
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := make([]byte, int(n))
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		twice := ReverseComplemented(ReverseComplemented(seq))
		return bytes.Equal(seq, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]byte("ACGTNryswkmbdhv")); err != nil {
		t.Errorf("Validate(valid) = %v, want nil", err)
	}
	if err := Validate([]byte("ACG!T")); err == nil {
		t.Error("Validate(invalid) = nil, want error")
	}
}

func TestUpper(t *testing.T) {
	got := Upper([]byte("acgtNnACGT"))
	if string(got) != "ACGTNNACGT" {
		t.Errorf("Upper = %q", got)
	}
	// Input must be untouched.
	in := []byte("acgt")
	_ = Upper(in)
	if string(in) != "acgt" {
		t.Error("Upper mutated its input")
	}
}
