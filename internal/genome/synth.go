package genome

import (
	"fmt"
	"math/rand"
)

// Profile parameterises the deterministic synthetic-assembly generator that
// stands in for the UCSC hg19/hg38 downloads (see DESIGN.md §1). The
// generator preserves the properties the search kernels are sensitive to:
// relative assembly sizes, the density of unresolved (N) regions, GC content
// (which sets the density of NGG protospacer-adjacent motifs and therefore
// the comparer-kernel load), and multi-record structure.
type Profile struct {
	// Name labels the assembly ("hg19-like", "hg38-like").
	Name string
	// Seed makes generation reproducible.
	Seed int64
	// Chromosomes lists record names and relative weights; each chromosome's
	// share of TotalBases is proportional to its weight.
	Chromosomes []ChromSpec
	// TotalBases is the generated assembly size.
	TotalBases int
	// FullScaleBases is the size of the real assembly the profile models;
	// the timing model projects measured per-base costs to this size.
	FullScaleBases int64
	// GC is the fraction of G+C among resolved bases.
	GC float64
	// NFraction is the fraction of bases inside unresolved (N) gaps;
	// hg19 carries noticeably more gap sequence than hg38.
	NFraction float64
	// MeanGapLen is the mean length of one N gap.
	MeanGapLen int
	// SoftMask is the fraction of resolved sequence emitted in lower case
	// (repeat-masked), exercising case folding in consumers.
	SoftMask float64
}

// ChromSpec names one synthetic chromosome and its relative size weight.
type ChromSpec struct {
	Name   string
	Weight float64
}

// humanChromWeights approximates the relative sizes of the 24 nuclear
// human chromosomes (chr1 ≈ 249 Mbp … chrY ≈ 57 Mbp).
var humanChromWeights = []ChromSpec{
	{"chr1", 249}, {"chr2", 242}, {"chr3", 198}, {"chr4", 190},
	{"chr5", 182}, {"chr6", 171}, {"chr7", 159}, {"chr8", 145},
	{"chr9", 138}, {"chr10", 134}, {"chr11", 135}, {"chr12", 133},
	{"chr13", 114}, {"chr14", 107}, {"chr15", 102}, {"chr16", 90},
	{"chr17", 83}, {"chr18", 80}, {"chr19", 59}, {"chr20", 64},
	{"chr21", 47}, {"chr22", 51}, {"chrX", 156}, {"chrY", 57},
}

// HG19Like returns a profile modelling the hg19 assembly scaled to
// totalBases generated bases. hg19 has more unresolved gap sequence and
// slightly less searchable content than hg38.
func HG19Like(totalBases int) Profile {
	return Profile{
		Name:           "hg19-like",
		Seed:           19,
		Chromosomes:    humanChromWeights,
		TotalBases:     totalBases,
		FullScaleBases: 3_101_804_739,
		GC:             0.409,
		NFraction:      0.075,
		MeanGapLen:     2500,
		SoftMask:       0.45,
	}
}

// HG38Like returns a profile modelling the hg38 assembly: ~3.5% larger than
// hg19 with most hg19 gaps resolved, so it carries proportionally more
// searchable sequence (and therefore more comparer-kernel work).
func HG38Like(totalBases int) Profile {
	return Profile{
		Name:        "hg38-like",
		Seed:        38,
		Chromosomes: humanChromWeights,
		TotalBases:  totalBases,
		// The UCSC hg38.fa download the paper uses bundles the primary
		// assembly with alternate-loci and patch contigs, which both grows
		// the input and duplicates PAM-dense sequence.
		FullScaleBases: 3_313_480_000,
		GC:             0.412,
		NFraction:      0.049,
		MeanGapLen:     1200,
		SoftMask:       0.47,
	}
}

// Generate builds the synthetic assembly described by the profile. The same
// profile always yields the same bytes.
func Generate(p Profile) (*Assembly, error) {
	if p.TotalBases <= 0 {
		return nil, fmt.Errorf("genome: profile %q: TotalBases must be positive", p.Name)
	}
	if len(p.Chromosomes) == 0 {
		return nil, fmt.Errorf("genome: profile %q: no chromosomes", p.Name)
	}
	if p.GC < 0 || p.GC > 1 || p.NFraction < 0 || p.NFraction >= 1 {
		return nil, fmt.Errorf("genome: profile %q: GC/NFraction out of range", p.Name)
	}
	var totalW float64
	for _, c := range p.Chromosomes {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("genome: profile %q: chromosome %s has non-positive weight", p.Name, c.Name)
		}
		totalW += c.Weight
	}
	rng := rand.New(rand.NewSource(p.Seed))
	asm := &Assembly{Name: p.Name}
	remaining := p.TotalBases
	for i, c := range p.Chromosomes {
		var n int
		if i == len(p.Chromosomes)-1 {
			n = remaining
		} else {
			n = int(float64(p.TotalBases) * c.Weight / totalW)
			if n > remaining {
				n = remaining
			}
		}
		remaining -= n
		if n <= 0 {
			continue
		}
		asm.Sequences = append(asm.Sequences, &Sequence{
			Name:        c.Name,
			Description: fmt.Sprintf("%s synthetic", p.Name),
			Data:        generateSeq(rng, n, p),
		})
	}
	return asm, nil
}

// generateSeq emits n bases: alternating runs of resolved sequence and N
// gaps sized so the expected gap fraction is p.NFraction.
func generateSeq(rng *rand.Rand, n int, p Profile) []byte {
	out := make([]byte, 0, n)
	meanGap := p.MeanGapLen
	if meanGap <= 0 {
		meanGap = 1000
	}
	// Expected resolved-run length between gaps so that
	// meanGap / (meanGap + meanRun) == NFraction.
	meanRun := n // no gaps when NFraction == 0
	if p.NFraction > 0 {
		meanRun = int(float64(meanGap)*(1-p.NFraction)/p.NFraction + 0.5)
		if meanRun < 1 {
			meanRun = 1
		}
	}
	// Shrink run lengths for short sequences so every record still
	// alternates between resolved runs and gaps many times; the gap/run
	// ratio (and so the expected N fraction) is preserved.
	if limit := n / 25; limit > 0 && meanRun > limit {
		scale := float64(limit) / float64(meanRun)
		meanRun = limit
		if meanGap = int(float64(meanGap) * scale); meanGap < 1 {
			meanGap = 1
		}
	}
	inGap := false
	for len(out) < n {
		var runLen int
		if inGap {
			runLen = 1 + int(rng.ExpFloat64()*float64(meanGap))
		} else {
			runLen = 1 + int(rng.ExpFloat64()*float64(meanRun))
		}
		if runLen > n-len(out) {
			runLen = n - len(out)
		}
		if inGap {
			for i := 0; i < runLen; i++ {
				out = append(out, 'N')
			}
		} else {
			soft := rng.Float64() < p.SoftMask
			for i := 0; i < runLen; i++ {
				b := randomBase(rng, p.GC)
				if soft {
					b |= 0x20
				}
				out = append(out, b)
				// Toggle soft-masking in sub-runs for realism.
				if rng.Float64() < 0.001 {
					soft = !soft
				}
			}
		}
		inGap = !inGap
	}
	return out
}

func randomBase(rng *rand.Rand, gc float64) byte {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return 'G'
		}
		return 'C'
	}
	if rng.Intn(2) == 0 {
		return 'A'
	}
	return 'T'
}
