//go:build !unix

package genome

import "os"

// mapFile on platforms without a memory-mapping path reads the whole file;
// the load is then O(file) instead of O(header), but the parsed artifact
// behaves identically.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	return data, nil, err
}
