package genome

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA checks the parser never panics and that everything it
// accepts round-trips through the writer.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">chr1\nACGT\n")
	f.Add(">a desc\nACGT\nNNNN\n>b\nacgt\n")
	f.Add(";comment\n>x\nRYSWKMBDHVN\n")
	f.Add(">\n")
	f.Add("ACGT\n")
	f.Add(">x\r\nAC\r\n")
	f.Fuzz(func(t *testing.T, in string) {
		seqs, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs, 60); err != nil {
			t.Fatalf("accepted input failed to write: %v", err)
		}
		again, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("written FASTA failed to parse: %v", err)
		}
		if len(again) != len(seqs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(seqs), len(again))
		}
		for i := range seqs {
			if seqs[i].Name != again[i].Name || !bytes.Equal(seqs[i].Data, again[i].Data) {
				t.Fatalf("record %d did not round-trip", i)
			}
		}
	})
}

// FuzzWordView checks the word view against the scalar accessors for
// arbitrary sequences: every window lane must agree with Code, and every
// lane at or past the end must be marked unknown.
func FuzzWordView(f *testing.F) {
	f.Add([]byte("ACGT"))
	f.Add([]byte("acgtnACGTN"))
	f.Add(bytes.Repeat([]byte("ACGTNRY"), 20))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		p, err := Pack(in)
		if err != nil {
			return
		}
		v := p.WordView(nil)
		n := p.Len()
		for pos := 0; pos < n; pos++ {
			code, unk := v.Window(pos)
			for lane := 0; lane < 32; lane++ {
				i := pos + lane
				laneUnk := unk>>(2*lane)&1 != 0
				if i >= n {
					if !laneUnk {
						t.Fatalf("Window(%d) lane %d past end not unknown", pos, lane)
					}
					continue
				}
				wantCode, wantKnown := p.Code(i)
				if laneUnk == wantKnown {
					t.Fatalf("Window(%d) lane %d unknown=%v, want known=%v", pos, lane, laneUnk, wantKnown)
				}
				if wantKnown && byte(code>>(2*lane)&3) != wantCode {
					t.Fatalf("Window(%d) lane %d wrong code", pos, lane)
				}
			}
		}
	})
}

// FuzzPack checks the 2-bit codec never panics and that valid sequences
// round-trip modulo ambiguity collapse.
func FuzzPack(f *testing.F) {
	f.Add([]byte("ACGT"))
	f.Add([]byte("acgtn"))
	f.Add([]byte("RYSWKMBDHV"))
	f.Add([]byte{})
	f.Add([]byte("AC-GT"))
	f.Fuzz(func(t *testing.T, in []byte) {
		p, err := Pack(in)
		if err != nil {
			return
		}
		out := p.Unpack()
		if len(out) != len(in) {
			t.Fatalf("length changed: %d -> %d", len(in), len(out))
		}
		for i := range in {
			want := in[i] &^ 0x20
			if want == 'U' {
				want = 'T'
			}
			if !IsConcrete(in[i]) {
				want = 'N'
			}
			if out[i] != want {
				t.Fatalf("position %d: %q -> %q, want %q", i, in[i], out[i], want)
			}
		}
	})
}
