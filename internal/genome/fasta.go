package genome

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Sequence is one record of a FASTA file: a name (the text after '>', up to
// the first whitespace), an optional free-form description, and the sequence
// bytes with line breaks removed.
type Sequence struct {
	Name        string
	Description string
	Data        []byte
}

// Len returns the number of bases in the sequence.
func (s *Sequence) Len() int { return len(s.Data) }

// Assembly is an ordered collection of sequences, e.g. the chromosomes of a
// genome build. Order is load order, which the chunker and the search engine
// preserve so that results are reported deterministically.
type Assembly struct {
	Name      string
	Sequences []*Sequence

	// art links back to the persistent artifact this assembly was
	// reconstructed from (nil for FASTA-loaded assemblies). Engines use it
	// to discover resident word views and PAM shards without any change to
	// their public surface.
	art *Artifact
}

// Artifact returns the persistent artifact backing this assembly, or nil
// when the assembly was parsed from FASTA.
func (a *Assembly) Artifact() *Artifact { return a.art }

// TotalLen returns the summed length of all sequences.
func (a *Assembly) TotalLen() int64 {
	var n int64
	for _, s := range a.Sequences {
		n += int64(len(s.Data))
	}
	return n
}

// Sequence returns the record with the given name, or nil.
func (a *Assembly) Sequence(name string) *Sequence {
	for _, s := range a.Sequences {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ErrEmptyFASTA is returned when an input contains no sequence records.
var ErrEmptyFASTA = errors.New("genome: FASTA input contains no sequences")

// ReadFASTA parses one FASTA stream, which may contain one or many records.
// Blank lines are ignored; sequence bytes are validated as IUPAC codes.
// Windows line endings are accepted.
func ReadFASTA(r io.Reader) ([]*Sequence, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var (
		seqs []*Sequence
		cur  *Sequence
		buf  bytes.Buffer
		line int
	)
	flush := func() {
		if cur != nil {
			cur.Data = append([]byte(nil), buf.Bytes()...)
			seqs = append(seqs, cur)
			buf.Reset()
		}
	}
	for {
		raw, err := br.ReadBytes('\n')
		line++
		if len(raw) > 0 {
			text := bytes.TrimRight(raw, "\r\n")
			switch {
			case len(text) == 0:
				// blank line, skip
			case text[0] == '>':
				flush()
				header := strings.TrimSpace(string(text[1:]))
				if header == "" {
					return nil, fmt.Errorf("genome: line %d: empty FASTA header", line)
				}
				name, desc, _ := strings.Cut(header, " ")
				cur = &Sequence{Name: name, Description: strings.TrimSpace(desc)}
			case text[0] == ';':
				// old-style comment line, skip
			default:
				if cur == nil {
					return nil, fmt.Errorf("genome: line %d: sequence data before first header", line)
				}
				for i, b := range text {
					if !IsCode(b) {
						return nil, fmt.Errorf("genome: line %d: invalid nucleotide code %q at column %d", line, b, i+1)
					}
				}
				buf.Write(text)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("genome: reading FASTA: %w", err)
		}
	}
	flush()
	if len(seqs) == 0 {
		return nil, ErrEmptyFASTA
	}
	return seqs, nil
}

// ReadFASTAFile parses the FASTA file at path.
func ReadFASTAFile(path string) ([]*Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("genome: %w", err)
	}
	defer f.Close()
	seqs, err := ReadFASTA(f)
	if err != nil {
		return nil, fmt.Errorf("genome: %s: %w", path, err)
	}
	return seqs, nil
}

// fastaExtensions are the file suffixes LoadDir recognises, matching the
// upstream Cas-OFFinder convention of pointing the tool at a directory of
// chromosome files.
var fastaExtensions = []string{".fa", ".fasta", ".fna"}

// LoadDir reads every FASTA file in dir (non-recursively) into one assembly.
// Files are visited in lexical order; records keep file order within a file.
// If dir itself names a FASTA file, it is loaded as a single-file assembly.
func LoadDir(dir string) (*Assembly, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("genome: %w", err)
	}
	asm := &Assembly{Name: filepath.Base(dir)}
	if !info.IsDir() {
		// Normalize single-file assembly names to the bare stem so the
		// name matches what a directory load of the same content would
		// produce (and artifact headers stay stable across both paths).
		for _, ext := range fastaExtensions {
			if strings.EqualFold(filepath.Ext(asm.Name), ext) {
				asm.Name = strings.TrimSuffix(asm.Name, filepath.Ext(asm.Name))
				break
			}
		}
		seqs, err := ReadFASTAFile(dir)
		if err != nil {
			return nil, err
		}
		asm.Sequences = seqs
		if err := checkUniqueNames(asm.Sequences); err != nil {
			return nil, err
		}
		return asm, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("genome: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		for _, want := range fastaExtensions {
			if ext == want {
				names = append(names, e.Name())
				break
			}
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("genome: no FASTA files (%s) in %s", strings.Join(fastaExtensions, ", "), dir)
	}
	for _, name := range names {
		seqs, err := ReadFASTAFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		asm.Sequences = append(asm.Sequences, seqs...)
	}
	if err := checkUniqueNames(asm.Sequences); err != nil {
		return nil, err
	}
	return asm, nil
}

// WriteFASTA writes the sequences to w with lines wrapped at width bases
// (60 if width <= 0).
func WriteFASTA(w io.Writer, seqs []*Sequence, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, s := range seqs {
		if s.Description != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.Name, s.Description)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.Name)
		}
		for off := 0; off < len(s.Data); off += width {
			end := off + width
			if end > len(s.Data) {
				end = len(s.Data)
			}
			bw.Write(s.Data[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes the sequences to the file at path.
func WriteFASTAFile(path string, seqs []*Sequence, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("genome: %w", err)
	}
	if err := WriteFASTA(f, seqs, width); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("genome: %w", err)
	}
	return nil
}
