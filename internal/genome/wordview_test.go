package genome

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomSeq(rng *rand.Rand, n int) []byte {
	alphabet := []byte("ACGTNacgtRY")
	seq := make([]byte, n)
	for i := range seq {
		seq[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return seq
}

// checkView verifies every lane of every window against the scalar Code
// accessors: in-range lanes carry the packed code and known bit, lanes at
// or past Len are marked unknown.
func checkView(t *testing.T, p *Packed, v *WordView) {
	t.Helper()
	n := p.Len()
	if v.Len() != n {
		t.Fatalf("view Len = %d, want %d", v.Len(), n)
	}
	if want := (n + 31) / 32; v.Words() != want {
		t.Fatalf("view Words = %d, want %d", v.Words(), want)
	}
	for pos := 0; pos < n; pos++ {
		code, unk := v.Window(pos)
		for lane := 0; lane < 32; lane++ {
			i := pos + lane
			laneUnk := unk>>(2*lane)&1 != 0
			if i >= n {
				if !laneUnk {
					t.Fatalf("Window(%d) lane %d (pos %d >= len %d) not unknown", pos, lane, i, n)
				}
				continue
			}
			wantCode, wantKnown := p.Code(i)
			if laneUnk == wantKnown {
				t.Fatalf("Window(%d) lane %d unknown=%v, want known=%v", pos, lane, laneUnk, wantKnown)
			}
			if wantKnown {
				if got := byte(code >> (2 * lane) & 3); got != wantCode {
					t.Fatalf("Window(%d) lane %d code=%d, want %d", pos, lane, got, wantCode)
				}
			}
		}
	}
}

// TestWordViewLengths is the word-boundary regression test: lengths that
// are not a multiple of 32 (and straddle the code-byte and unknown-byte
// boundaries) must still mark every tail lane unknown.
func TestWordViewLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 7, 8, 15, 31, 32, 33, 63, 64, 65, 83, 96, 127, 130} {
		seq := randomSeq(rng, n)
		p, err := Pack(seq)
		if err != nil {
			t.Fatalf("n=%d: Pack: %v", n, err)
		}
		checkView(t, p, p.WordView(nil))
	}
}

// TestWordViewReuse rebuilds one view over sequences of different lengths;
// shrinking then growing must not leak stale words into the new view.
func TestWordViewReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var v *WordView
	var p Packed
	for _, n := range []int{130, 31, 64, 1, 97} {
		seq := randomSeq(rng, n)
		if err := p.Repack(seq); err != nil {
			t.Fatalf("n=%d: Repack: %v", n, err)
		}
		v = p.WordView(v)
		checkView(t, &p, v)
	}
}

func TestRepackRoundTrip(t *testing.T) {
	var p Packed
	for _, in := range []string{"ACGTACGTACGTA", "NNN", "", "acgtRYacgt"} {
		if err := p.Repack([]byte(in)); err != nil {
			t.Fatalf("Repack(%q): %v", in, err)
		}
		fresh, err := Pack([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Unpack(), fresh.Unpack()) {
			t.Errorf("Repack(%q) unpacks to %q, want %q", in, p.Unpack(), fresh.Unpack())
		}
	}
	if err := p.Repack([]byte("AC-GT")); err == nil {
		t.Error("Repack(invalid) = nil error, want failure")
	}
}

// TestPackPaddingUnknown: the padding bits of the unknown bitmap are set at
// pack time, so an accidental read past Len decodes as 'N' instead of
// silently reporting the padding as a concrete 'A'.
func TestPackPaddingUnknown(t *testing.T) {
	p, err := Pack([]byte("ACGTA")) // 5 bases; bits 5..7 of the bitmap are padding
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if p.Known(i) {
			t.Errorf("Known(%d) = true on padding, want false", i)
		}
	}
}

func TestAppendRangeBounds(t *testing.T) {
	p, err := Pack([]byte("ACGTACGT"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 4}, {2, 9}, {5, 4}} {
		if _, ok := p.CheckRange(r[0], r[1]).(*RangeError); !ok {
			t.Errorf("CheckRange(%d, %d) did not return a *RangeError", r[0], r[1])
		}
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Errorf("AppendRange(%d, %d) did not panic", r[0], r[1])
					return
				}
				if _, ok := v.(*RangeError); !ok {
					t.Errorf("AppendRange(%d, %d) panicked with %T, want *RangeError", r[0], r[1], v)
				}
			}()
			p.AppendRange(nil, r[0], r[1])
		}()
	}
	if err := p.CheckRange(0, 8); err != nil {
		t.Errorf("CheckRange(0, 8) = %v, want nil", err)
	}
	// The full range is still fine.
	if got := p.AppendRange(nil, 0, 8); string(got) != "ACGTACGT" {
		t.Errorf("AppendRange(0, 8) = %q", got)
	}
}
