//go:build unix

package genome

import (
	"os"
	"syscall"
)

// mapFile returns the file's bytes, preferring a read-only private mapping so
// LoadArtifact touches only the header pages; the payload faults in lazily as
// the engines walk it. The second return is the unmap hook (nil when the
// bytes came from a plain read). Empty files and mmap failures fall back to
// os.ReadFile so every path produces the same error shapes downstream.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || int64(int(size)) != size || !fi.Mode().IsRegular() {
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
