package genome

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackConcrete(t *testing.T) {
	in := []byte("ACGTACGTACGTA") // odd length exercises partial final byte
	p, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if p.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(in))
	}
	if got := p.Unpack(); !bytes.Equal(got, in) {
		t.Errorf("Unpack = %q, want %q", got, in)
	}
	for i, b := range in {
		if p.Base(i) != b {
			t.Errorf("Base(%d) = %q, want %q", i, p.Base(i), b)
		}
		if !p.Known(i) {
			t.Errorf("Known(%d) = false, want true", i)
		}
	}
}

func TestPackAmbiguityCodes(t *testing.T) {
	in := []byte("ANRGt")
	p, err := Pack(in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	want := []byte("ANNGT") // ambiguity codes collapse to N; case folds
	if got := p.Unpack(); !bytes.Equal(got, want) {
		t.Errorf("Unpack = %q, want %q", got, want)
	}
	if p.Known(1) || p.Known(2) {
		t.Error("ambiguous positions reported as known")
	}
	if !p.Known(0) || !p.Known(3) || !p.Known(4) {
		t.Error("concrete positions reported as unknown")
	}
}

func TestPackInvalid(t *testing.T) {
	if _, err := Pack([]byte("AC-GT")); err == nil {
		t.Error("Pack(invalid) = nil error, want failure")
	}
}

func TestPackEmpty(t *testing.T) {
	p, err := Pack(nil)
	if err != nil {
		t.Fatalf("Pack(nil): %v", err)
	}
	if p.Len() != 0 || len(p.Unpack()) != 0 {
		t.Error("empty pack not empty")
	}
}

func TestAppendRange(t *testing.T) {
	p, err := Pack([]byte("ACGTNNGT"))
	if err != nil {
		t.Fatal(err)
	}
	got := p.AppendRange([]byte("x:"), 2, 6)
	if string(got) != "x:GTNN" {
		t.Errorf("AppendRange = %q, want x:GTNN", got)
	}
}

func TestPackedBytes(t *testing.T) {
	p, err := Pack(bytes.Repeat([]byte("ACGT"), 256)) // 1024 bases
	if err != nil {
		t.Fatal(err)
	}
	// 1024 bases -> 256 code bytes + 128 bitmap bytes.
	if got := p.PackedBytes(); got != 256+128 {
		t.Errorf("PackedBytes = %d, want %d", got, 256+128)
	}
}

// TestPackRoundTripProperty: packing any ACGTN string and unpacking restores
// it exactly (after case folding), for arbitrary lengths including the
// partial-byte tails.
func TestPackRoundTripProperty(t *testing.T) {
	alphabet := []byte("ACGTN")
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make([]byte, int(n)%4096)
		for i := range in {
			in[i] = alphabet[rng.Intn(len(alphabet))]
		}
		p, err := Pack(in)
		if err != nil {
			return false
		}
		return bytes.Equal(p.Unpack(), in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCode(t *testing.T) {
	p, err := Pack([]byte("ACGTN"))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		code  byte
		known bool
	}{{0, true}, {1, true}, {2, true}, {3, true}, {0, false}}
	for i, w := range want {
		code, known := p.Code(i)
		if code != w.code || known != w.known {
			t.Errorf("Code(%d) = (%d, %v), want (%d, %v)", i, code, known, w.code, w.known)
		}
	}
}
