package genome

import "encoding/binary"

// LaneMask has the low bit of every 2-bit base lane set. SWAR routines use
// it to broadcast a 2-bit code across a word and to collapse per-lane
// comparison planes into one bit per base.
const LaneMask = 0x5555555555555555

// WordView is a word-parallel view of a Packed sequence: 32 bases per
// uint64 (base i at bits 2·(i mod 32) and up), plus a parallel array of
// unknown lanes where bit 2·(i mod 32) is set when base i was ambiguous.
// Both arrays carry one padding word, and every lane at or past Len is
// marked unknown, so a shifted window load never needs a bounds branch and
// out-of-range lanes can never match a concrete pattern position.
type WordView struct {
	n       int
	codes   []uint64
	unknown []uint64
}

// WordView builds (or rebuilds, reusing reuse's buffers when non-nil) the
// word-parallel view of p. Scan workers keep one per scratch so the per-
// chunk rebuild allocates nothing once warm.
func (p *Packed) WordView(reuse *WordView) *WordView {
	v := reuse
	if v == nil {
		v = new(WordView)
	}
	dw := (p.n + 31) / 32
	words := dw + 1
	if cap(v.codes) < words {
		v.codes = make([]uint64, words)
	} else {
		v.codes = v.codes[:words]
	}
	if cap(v.unknown) < words {
		v.unknown = make([]uint64, words)
	} else {
		v.unknown = v.unknown[:words]
	}
	v.n = p.n
	for w := 0; w < dw; w++ {
		// The byte packing is little-endian within each byte, so a
		// little-endian 8-byte load lands base 32w+i exactly at lane i.
		off := w * 8
		var cw uint64
		if off+8 <= len(p.codes) {
			cw = binary.LittleEndian.Uint64(p.codes[off : off+8])
		} else {
			for j := off; j < len(p.codes); j++ {
				cw |= uint64(p.codes[j]) << (8 * uint(j-off))
			}
		}
		v.codes[w] = cw
		// The unknown bitmap is 1 bit per base; spread the 32 bits
		// covering this word onto the even (lane) bit positions.
		uoff := w * 4
		var ub uint32
		if uoff+4 <= len(p.unknown) {
			ub = binary.LittleEndian.Uint32(p.unknown[uoff : uoff+4])
		} else {
			for j := uoff; j < len(p.unknown); j++ {
				ub |= uint32(p.unknown[j]) << (8 * uint(j-uoff))
			}
		}
		v.unknown[w] = spread32(ub)
	}
	if r := p.n & 31; r != 0 {
		v.unknown[dw-1] |= LaneMask << (uint(r) * 2)
	}
	v.codes[dw] = 0
	v.unknown[dw] = LaneMask
	return v
}

// Len returns the number of bases the view covers.
func (v *WordView) Len() int { return v.n }

// Words returns the number of data words (excluding the padding word).
func (v *WordView) Words() int { return len(v.codes) - 1 }

// Window returns the 32-base window starting at pos as a code word and an
// unknown-lane word: lane i holds base pos+i. pos must be in [0, Len);
// lanes that fall at or past Len come back marked unknown.
func (v *WordView) Window(pos int) (code, unknown uint64) {
	w := pos >> 5
	sh := uint(pos&31) * 2
	code = v.codes[w] >> sh
	unknown = v.unknown[w] >> sh
	if sh != 0 {
		code |= v.codes[w+1] << (64 - sh)
		unknown |= v.unknown[w+1] << (64 - sh)
	}
	return code, unknown
}

// spread32 interleaves a zero bit after every bit of x, moving bit i of the
// unknown bitmap to lane position 2i.
func spread32(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}
