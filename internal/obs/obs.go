// Package obs is the run-wide observability layer: a span tracer whose log
// exports as Chrome trace-event JSON (openable in chrome://tracing and
// Perfetto) and a metrics registry whose counters, gauges and histograms
// dump as a Prometheus-style text page or a JSON snapshot. The paper's whole
// method rests on observing the run — profiling identifies the comparer as
// the hotspot (§IV.B) and per-kernel counters explain why each optimization
// helps (Tables VII–X) — and this package is the host-side equivalent: a
// timeline of every pipeline stage, kernel launch and resilience event, plus
// machine-readable rates the search.Profile totals can be cross-checked
// against.
//
// Disabled-path contract: both *Tracer and *Metrics are valid as nil
// receivers, and every recording method begins with a nil pointer check and
// no other work. Call sites that need a timestamp guard the time.Now() pair
// behind the same pointer check, so a run without -trace/-metrics executes
// no clock reads, no allocations and no locked sections — the benchmark gate
// (BenchmarkObsOverhead, BENCH_obs.json) holds the disabled path within 2%
// of the uninstrumented pipeline.
package obs

// Attr is one key/value annotation on a span, carried into the Chrome trace
// "args" object.
type Attr struct {
	Key   string
	Value string
}

// Metric names, shared by every layer that emits them so the Prometheus page
// and the JSON snapshot stay consistent. Names ending in _total are
// counters; _seconds names are histograms; the rest are gauges.
const (
	// Emitted by search.Profile mutators — these mirror the Profile fields
	// one-to-one, so a -metrics dump always agrees with the profile totals.
	MetricChunks          = "casoffinder_chunks_total"
	MetricStagedBytes     = "casoffinder_staged_bytes_total"
	MetricReadBytes       = "casoffinder_read_bytes_total"
	MetricCandidateSites  = "casoffinder_candidate_sites_total"
	MetricEntries         = "casoffinder_entries_total"
	MetricRetries         = "casoffinder_retries_total"
	MetricFailovers       = "casoffinder_failovers_total"
	MetricWatchdogKills   = "casoffinder_watchdog_kills_total"
	MetricQuarantined     = "casoffinder_quarantined_chunks_total"
	MetricAsyncExceptions = "casoffinder_async_exceptions_total"
	// MetricFaults carries a site="..." label per fault site.
	MetricFaults = "casoffinder_faults_total"

	// Hit-buffer arena counters (internal/gpu/alloc), also mirrored from
	// search.Profile mutators: bytes of arena entry storage provisioned,
	// pages claimed by kernels, and launches repeated after an arena
	// overflow (grow-and-retry).
	MetricArenaBytes     = "casoffinder_arena_bytes_total"
	MetricArenaPages     = "casoffinder_arena_page_claims_total"
	MetricArenaOverflows = "casoffinder_arena_overflow_retries_total"

	// Emitted by the pipeline topologies.
	MetricStageSeconds   = "casoffinder_stage_seconds"
	MetricScanSeconds    = "casoffinder_scan_seconds"
	MetricQueueOccupancy = "casoffinder_queue_occupancy"
	MetricHits           = "casoffinder_hits_total"
	MetricPipelineChunks = "casoffinder_pipeline_chunks_total"

	// Emitted by the gpu simulator's launch hook, labelled kernel="...".
	MetricKernelLaunchSeconds = "casoffinder_kernel_launch_seconds"
	MetricKernelLaunches      = "casoffinder_kernel_launches_total"

	// Emitted by the opencl frontend, labelled dir="read"|"write".
	MetricCLTransfers = "casoffinder_cl_transfers_total"

	// Emitted by the work-stealing multi-device scheduler (internal/sched).
	// MetricDeviceQueueDepth carries a device="..." label per deque.
	MetricSteals           = "casoffinder_steals_total"
	MetricEvictions        = "casoffinder_evictions_total"
	MetricDeviceQueueDepth = "casoffinder_device_queue_depth"

	// Emitted by search.Profile.addTune when the occupancy autotuner
	// (internal/tune) resolved a kernel selection for a device.
	// MetricTuneSelected carries a variant="..." label per selected
	// comparer variant.
	MetricTuneDecisions    = "casoffinder_tune_decisions_total"
	MetricTuneCandidates   = "casoffinder_tune_candidates_total"
	MetricTuneCalibrations = "casoffinder_tune_calibrations_total"
	MetricTuneSelected     = "casoffinder_tune_selected_total"

	// Emitted by the search-as-a-service daemon (internal/serve).
	// MetricServeRequests carries a status="..." label (the terminal request
	// outcome: ok, degraded, rejected, error, canceled);
	// MetricServeShed a reason="..." label (quota, queue-full, shed,
	// deadline, bytes, draining).
	MetricServeRequests      = "casoffinderd_requests_total"
	MetricServeShed          = "casoffinderd_shed_total"
	MetricServeQueueDepth    = "casoffinderd_queue_depth"
	MetricServeInflight      = "casoffinderd_inflight"
	MetricServeInflightBytes = "casoffinderd_inflight_bytes"
	MetricServeQueueSeconds  = "casoffinderd_queue_seconds"
	MetricServeStreamSeconds = "casoffinderd_stream_seconds"
	MetricServeBatches       = "casoffinderd_batches_total"
	MetricServeCoalesced     = "casoffinderd_coalesced_requests_total"
	MetricServeDegraded      = "casoffinderd_degraded_total"
	MetricServePanics        = "casoffinderd_panics_total"
	MetricServeHits          = "casoffinderd_hits_total"
)
