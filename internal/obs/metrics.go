package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// DefBuckets are the histogram upper bounds (seconds) used for every latency
// histogram: exponential decades from a microsecond to ten seconds, wide
// enough for both a simulated kernel launch and a watchdog-length stall.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// histogram is one labelled series: per-bucket counts (the last slot is the
// +Inf overflow), the running sum and the observation count.
type histogram struct {
	buckets []int64
	sum     float64
	count   int64
}

// Metrics is the run-wide metrics registry: counters, gauges and histograms
// keyed by their full Prometheus-style name (label set included — build
// labelled names with L). A nil *Metrics is valid and records nothing, so
// engines thread it unconditionally; every recording method begins with a
// pointer check. Recording is safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// L builds a labelled series name: L("x_total", "dir", "read") is
// `x_total{dir="read"}`. Label pairs must come in key, value order and keys
// should be ordered consistently at every call site, since the name is the
// map key.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Count adds delta to a counter.
func (m *Metrics) Count(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns a counter's current value (0 if never counted).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge sets a gauge to v.
func (m *Metrics) Gauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// GaugeAdd moves a gauge by delta (queue occupancy up on stage, down on
// drain).
func (m *Metrics) GaugeAdd(name string, delta float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] += delta
	m.mu.Unlock()
}

// GaugeValue returns a gauge's current value (0 if never set).
func (m *Metrics) GaugeValue(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Observe records one observation into a histogram with the default
// bucket bounds.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &histogram{buckets: make([]int64, len(DefBuckets)+1)}
		m.hists[name] = h
	}
	i := sort.SearchFloat64s(DefBuckets, v)
	h.buckets[i]++
	h.sum += v
	h.count++
	m.mu.Unlock()
}

// HistogramSnapshot is the JSON form of one histogram series. Buckets holds
// the per-bound counts (not cumulative); the final extra entry counts
// observations above the last bound.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot is the JSON form of the whole registry, written by the CLI next
// to the search.Profile so the two can be cross-checked offline.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry snapshots
// empty.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	for k, h := range m.hists {
		hs := HistogramSnapshot{
			Count:   h.count,
			Sum:     h.sum,
			Bounds:  DefBuckets,
			Buckets: make([]int64, len(h.buckets)),
		}
		copy(hs.Buckets, h.buckets)
		s.Histograms[k] = hs
	}
	return s
}

// splitSeries splits a full series name into its family and its label body:
// `x{a="b"}` → ("x", `a="b"`); an unlabelled name returns ("x", "").
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels rebuilds a series name from a family and label-body strings,
// dropping empties.
func joinLabels(family string, labels ...string) string {
	parts := labels[:0:0]
	for _, l := range labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	if len(parts) == 0 {
		return family
	}
	return family + "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry as a Prometheus text-exposition page:
// one # TYPE line per family, samples sorted by name, histograms expanded
// into cumulative _bucket/_sum/_count series with le labels merged into any
// existing label set.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()

	families := map[string]string{} // family → type
	for name := range s.Counters {
		f, _ := splitSeries(name)
		families[f] = "counter"
	}
	for name := range s.Gauges {
		f, _ := splitSeries(name)
		families[f] = "gauge"
	}
	for name := range s.Histograms {
		f, _ := splitSeries(name)
		families[f] = "histogram"
	}
	ordered := make([]string, 0, len(families))
	for f := range families {
		ordered = append(ordered, f)
	}
	sort.Strings(ordered)

	var b strings.Builder
	for _, fam := range ordered {
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, families[fam])
		switch families[fam] {
		case "counter":
			for _, name := range sortedSeries(s.Counters, fam) {
				fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
			}
		case "gauge":
			for _, name := range sortedSeries(s.Gauges, fam) {
				fmt.Fprintf(&b, "%s %g\n", name, s.Gauges[name])
			}
		case "histogram":
			for _, name := range sortedSeries(s.Histograms, fam) {
				h := s.Histograms[name]
				_, labels := splitSeries(name)
				var cum int64
				for i, bound := range h.Bounds {
					cum += h.Buckets[i]
					le := fmt.Sprintf(`le="%g"`, bound)
					fmt.Fprintf(&b, "%s %d\n", joinLabels(fam+"_bucket", labels, le), cum)
				}
				cum += h.Buckets[len(h.Bounds)]
				fmt.Fprintf(&b, "%s %d\n", joinLabels(fam+"_bucket", labels, `le="+Inf"`), cum)
				fmt.Fprintf(&b, "%s %g\n", joinLabels(fam+"_sum", labels), h.Sum)
				fmt.Fprintf(&b, "%s %d\n", joinLabels(fam+"_count", labels), h.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedSeries returns the series names of one family in sorted order.
func sortedSeries[V any](series map[string]V, family string) []string {
	var names []string
	for name := range series {
		if f, _ := splitSeries(name); f == family {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
