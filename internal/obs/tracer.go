package obs

import (
	"sync"
	"time"
)

// Span is one recorded event: a completed duration on a track, or (with
// Instant set) a zero-length marker. Chunk is the pipeline chunk index the
// span belongs to, or -1 for run-scoped spans; tracks group spans into
// timeline rows (one per pipeline worker or device).
type Span struct {
	Track    string
	Name     string
	Chunk    int
	Start    time.Time
	Duration time.Duration
	Instant  bool
	Attrs    []Attr
}

// Tracer accumulates spans for one run. A nil *Tracer is valid and records
// nothing — every method is a pointer check on the disabled path, so engines
// thread it unconditionally. Recording methods are safe for concurrent use.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTracer starts a tracer; its epoch (trace time zero) is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Complete records a finished span. The caller measures the interval itself
// (start from time.Now() before the work, dur from time.Since after), so a
// disabled tracer costs no clock reads at the call site.
func (t *Tracer) Complete(track, name string, chunk int, start time.Time, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Track: track, Name: name, Chunk: chunk, Start: start, Duration: dur, Attrs: attrs})
	t.mu.Unlock()
}

// Instant records a zero-length marker (a retry, a watchdog kill, an async
// exception) at the current time.
func (t *Tracer) Instant(track, name string, chunk int, attrs ...Attr) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Track: track, Name: name, Chunk: chunk, Start: now, Instant: true, Attrs: attrs})
	t.mu.Unlock()
}

// Len returns the number of recorded spans; 0 on a nil tracer.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}
