package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON the
// chrome://tracing and Perfetto UIs load): "X" complete events carry a
// microsecond timestamp and duration, "i" instant events a timestamp only,
// and "M" metadata events name the threads. Tracks map to thread IDs under
// one process, so each pipeline worker or device renders as its own row.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serialises the span log as Chrome trace-event JSON.
// Timestamps are microseconds since the tracer's epoch; nested spans (a
// find span inside its chunk span) nest by time containment, which both
// viewers render as stacked slices. Writing a nil tracer emits an empty but
// valid trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Deterministic track → tid assignment: first-appearance order in the
	// span log, which is itself deterministic for the serial resilient
	// executor and stable enough for the concurrent topology.
	tids := make(map[string]int)
	var tracks []string
	for _, s := range spans {
		if _, ok := tids[s.Track]; !ok {
			tids[s.Track] = len(tracks)
			tracks = append(tracks, s.Track)
		}
	}
	events := make([]chromeEvent, 0, len(spans)+len(tracks))
	for _, track := range tracks {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tids[track],
			Args:  map[string]any{"name": track},
		})
	}
	var epoch int64
	if t != nil {
		epoch = t.epoch.UnixNano()
	}
	body := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			TS:   float64(s.Start.UnixNano()-epoch) / 1e3,
			PID:  1,
			TID:  tids[s.Track],
			Args: map[string]any{},
		}
		if s.Chunk >= 0 {
			ev.Args["chunk"] = s.Chunk
		}
		for _, a := range s.Attrs {
			ev.Args[a.Key] = a.Value
		}
		if len(ev.Args) == 0 {
			ev.Args = nil
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			ev.Dur = float64(s.Duration.Nanoseconds()) / 1e3
			if ev.Dur <= 0 {
				// Zero-width complete events are invisible in the viewers;
				// give sub-microsecond spans a minimal visible width.
				ev.Dur = 0.001
			}
		}
		body = append(body, ev)
	}
	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	events = append(events, body...)

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
