package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilDisabledPathAllocatesNothing(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	start := time.Now()
	allocs := testing.AllocsPerRun(100, func() {
		tr.Complete("track", "stage", 3, start, time.Millisecond)
		tr.Instant("track", "retry", 3)
		_ = tr.Len()
		_ = tr.Spans()
		m.Count(MetricChunks, 1)
		m.Gauge(MetricQueueOccupancy, 2)
		m.GaugeAdd(MetricQueueOccupancy, 1)
		m.Observe(MetricStageSeconds, 1e-4)
		_ = m.Counter(MetricChunks)
		_ = m.GaugeValue(MetricQueueOccupancy)
	})
	if allocs != 0 {
		t.Fatalf("nil obs disabled path allocated %v times per run, want 0", allocs)
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer()
	start := time.Now()
	tr.Complete("w0", "stage", 0, start, 2*time.Millisecond, Attr{Key: "bytes", Value: "300"})
	tr.Complete("w1", "find", 1, start.Add(time.Millisecond), time.Millisecond)
	tr.Instant("w0", "retry", 1, Attr{Key: "try", Value: "2"})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	spans := tr.Spans()
	if spans[0].Name != "stage" || spans[0].Chunk != 0 || spans[0].Duration != 2*time.Millisecond {
		t.Fatalf("unexpected first span: %+v", spans[0])
	}
	if !spans[2].Instant || spans[2].Name != "retry" {
		t.Fatalf("unexpected instant span: %+v", spans[2])
	}
	// The returned slice is a copy: mutating it must not affect the tracer.
	spans[0].Name = "mutated"
	if tr.Spans()[0].Name != "stage" {
		t.Fatal("Spans() exposed internal storage")
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer()
	base := tr.epoch
	tr.Complete("pipe/stager", "stage", 0, base.Add(time.Millisecond), 2*time.Millisecond, Attr{Key: "bytes", Value: "128"})
	tr.Complete("pipe/worker0", "find", 0, base.Add(3*time.Millisecond), time.Millisecond)
	tr.Instant("pipe/resilient", "watchdog-kill", 0)
	tr.Complete("pipe/worker0", "tiny", 1, base.Add(5*time.Millisecond), 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete, instant int
	tracks := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			tracks[ev.Args["name"].(string)] = ev.TID
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		case "i":
			instant++
			if ev.Scope != "t" {
				t.Fatalf("instant event scope = %q, want t", ev.Scope)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if meta != 3 || complete != 3 || instant != 1 {
		t.Fatalf("event counts meta=%d complete=%d instant=%d, want 3/3/1", meta, complete, instant)
	}
	for _, track := range []string{"pipe/stager", "pipe/worker0", "pipe/resilient"} {
		if _, ok := tracks[track]; !ok {
			t.Fatalf("missing thread_name metadata for track %q (got %v)", track, tracks)
		}
	}
	// Body events must be time-ordered after the metadata block.
	var lastTS float64
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if ev.TS < lastTS {
			t.Fatalf("events not sorted by ts: %v after %v", ev.TS, lastTS)
		}
		lastTS = ev.TS
	}
}

func TestWriteChromeTraceNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace output invalid: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("nil trace output missing traceEvents")
	}
}

func TestLabelBuilder(t *testing.T) {
	if got := L("x_total"); got != "x_total" {
		t.Fatalf("L no labels = %q", got)
	}
	if got := L("x_total", "dir", "read"); got != `x_total{dir="read"}` {
		t.Fatalf("L one label = %q", got)
	}
	if got := L("x_total", "a", "1", "b", "2"); got != `x_total{a="1",b="2"}` {
		t.Fatalf("L two labels = %q", got)
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Count(MetricChunks, 3)
	m.Count(MetricChunks, 2)
	m.Count(L(MetricFaults, "site", "launch"), 1)
	m.Gauge(MetricQueueOccupancy, 2)
	m.GaugeAdd(MetricQueueOccupancy, -1)
	m.Observe(MetricStageSeconds, 5e-5) // le="0.0001" bucket
	m.Observe(MetricStageSeconds, 0.5)  // le="1" bucket
	m.Observe(MetricStageSeconds, 99)   // +Inf overflow

	if got := m.Counter(MetricChunks); got != 5 {
		t.Fatalf("Counter(chunks) = %d, want 5", got)
	}
	if got := m.GaugeValue(MetricQueueOccupancy); got != 1 {
		t.Fatalf("GaugeValue = %v, want 1", got)
	}

	snap := m.Snapshot()
	if snap.Counters[L(MetricFaults, "site", "launch")] != 1 {
		t.Fatalf("snapshot missing labelled counter: %+v", snap.Counters)
	}
	h, ok := snap.Histograms[MetricStageSeconds]
	if !ok {
		t.Fatalf("snapshot missing histogram: %+v", snap.Histograms)
	}
	if h.Count != 3 || h.Sum != 5e-5+0.5+99 {
		t.Fatalf("histogram count=%d sum=%v", h.Count, h.Sum)
	}
	if len(h.Buckets) != len(DefBuckets)+1 || h.Buckets[len(h.Buckets)-1] != 1 {
		t.Fatalf("histogram buckets = %v", h.Buckets)
	}
	// Snapshot must be a copy.
	snap.Counters[MetricChunks] = 999
	if m.Counter(MetricChunks) != 5 {
		t.Fatal("Snapshot exposed internal counter map")
	}

	// Snapshot JSON round-trips.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Count(MetricChunks, 4)
	m.Count(L(MetricCLTransfers, "dir", "read"), 2)
	m.Count(L(MetricCLTransfers, "dir", "write"), 3)
	m.Gauge(MetricQueueOccupancy, 1)
	// Power-of-two observations keep the float sum exact for the string match.
	m.Observe(L(MetricKernelLaunchSeconds, "kernel", "finder"), 0.0009765625) // 2^-10, le="0.001"
	m.Observe(L(MetricKernelLaunchSeconds, "kernel", "finder"), 0.001953125)  // 2^-9, le="0.01"

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE casoffinder_chunks_total counter\n",
		"casoffinder_chunks_total 4\n",
		"# TYPE casoffinder_cl_transfers_total counter\n",
		`casoffinder_cl_transfers_total{dir="read"} 2` + "\n",
		`casoffinder_cl_transfers_total{dir="write"} 3` + "\n",
		"# TYPE casoffinder_queue_occupancy gauge\n",
		"casoffinder_queue_occupancy 1\n",
		"# TYPE casoffinder_kernel_launch_seconds histogram\n",
		`casoffinder_kernel_launch_seconds_bucket{kernel="finder",le="0.01"} 2` + "\n",
		`casoffinder_kernel_launch_seconds_bucket{kernel="finder",le="+Inf"} 2` + "\n",
		`casoffinder_kernel_launch_seconds_sum{kernel="finder"} 0.0029296875` + "\n",
		`casoffinder_kernel_launch_seconds_count{kernel="finder"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The le="0.001" cumulative bucket holds only the first observation.
	if !strings.Contains(out, `casoffinder_kernel_launch_seconds_bucket{kernel="finder",le="0.001"} 1`+"\n") {
		t.Fatalf("cumulative bucket counts wrong:\n%s", out)
	}
	// Nil registry writes an empty page without error.
	var nilM *Metrics
	buf.Reset()
	if err := nilM.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}
