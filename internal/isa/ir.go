// Package isa models the compilation of the comparer kernel variants to a
// GCN/CDNA-style instruction set, standing in for the ROCm assembler and
// the ISA-level statistics the paper collects in Table X (§IV.B): total
// instruction bytes ("code length"), scalar and vector register usage, and
// the occupancy those registers permit.
//
// The model is a small but real pipeline: each kernel variant is emitted as
// an instruction stream with virtual registers (the emission differences —
// alias-guarded reloads, register promotion, cooperative fetch, LDS-read
// promotion — mirror what the paper's optimizations change in the generated
// code), a redundant-load-elimination pass implements the effect of
// __restrict, live intervals are computed over loop regions, and a
// linear-scan-style allocator reports the peak register demand that bounds
// occupancy. Absolute byte counts are calibrated to the paper's scale; the
// reproduced quantity is the shape: lengths fall monotonically base→opt4
// while opt4's vector-register demand crosses the occupancy threshold.
package isa

import "fmt"

// RegClass distinguishes scalar (wavefront-wide) from vector (per-lane)
// registers.
type RegClass int

// Register classes.
const (
	Scalar RegClass = iota + 1
	Vector
)

func (c RegClass) String() string {
	switch c {
	case Scalar:
		return "s"
	case Vector:
		return "v"
	default:
		return "?"
	}
}

// Reg is a virtual register.
type Reg struct {
	Class RegClass
	ID    int
}

func (r Reg) String() string { return fmt.Sprintf("%%%s%d", r.Class, r.ID) }

// Unit is the functional unit an instruction executes on; it determines the
// encoding size.
type Unit int

// Functional units.
const (
	SALU   Unit = iota + 1 // scalar ALU: 4-byte SOP encodings
	VALU                   // vector ALU: 4-byte VOP encodings
	SMEM                   // scalar memory: 8-byte loads of kernel arguments
	VMEM                   // vector (global) memory: 8-byte FLAT/MUBUF
	LDS                    // shared local memory: 8-byte DS
	BRANCH                 // 4-byte SOPP branches
	SYNC                   // 4-byte barriers and waitcnts
)

// encodingBytes returns the instruction size for a unit, following the
// GCN/CDNA encodings (VOP/SOP 4 bytes; FLAT, MUBUF, SMEM and DS 8 bytes).
func encodingBytes(u Unit) int {
	switch u {
	case SMEM, VMEM, LDS:
		return 8
	default:
		return 4
	}
}

// MemSpace tags memory instructions for the alias-analysis pass.
type MemSpace int

// Memory spaces.
const (
	NoSpace MemSpace = iota
	GlobalSpace
	LocalSpace
	ConstSpace
)

// Inst is one instruction.
type Inst struct {
	// Name is the mnemonic, for listings and tests.
	Name string
	// Unit fixes the encoding size.
	Unit Unit
	// Defs and Uses are the virtual registers written and read.
	Defs []Reg
	Uses []Reg
	// Space and Addr describe memory instructions: the address space and
	// the register holding the address, used by redundant-load elimination.
	Space MemSpace
	Addr  Reg
	// IsStore marks memory writes (they invalidate pending loads in the
	// same space unless the pointers are __restrict-qualified).
	IsStore bool
	// AliasGuarded marks a reload the compiler emitted only because it
	// could not prove the address unmodified; __restrict (opt1) licenses
	// the redundant-load-elimination pass to drop it.
	AliasGuarded bool
}

// Bytes returns the encoded size of the instruction.
func (i *Inst) Bytes() int { return encodingBytes(i.Unit) }

// Program is an emitted kernel: an instruction stream plus the loop regions
// needed for liveness.
type Program struct {
	Name  string
	Insts []*Inst
	// Loops are [begin, end) instruction index ranges; a register live
	// anywhere inside a loop is treated as live across the whole loop.
	Loops [][2]int

	nextID map[RegClass]int
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, nextID: map[RegClass]int{Scalar: 0, Vector: 0}}
}

// NewReg allocates a fresh virtual register.
func (p *Program) NewReg(c RegClass) Reg {
	id := p.nextID[c]
	p.nextID[c]++
	return Reg{Class: c, ID: id}
}

// Append adds an instruction and returns its index.
func (p *Program) Append(i *Inst) int {
	p.Insts = append(p.Insts, i)
	return len(p.Insts) - 1
}

// CodeBytes returns the total encoded size — the "code length" row of
// Table X.
func (p *Program) CodeBytes() int {
	n := 0
	for _, i := range p.Insts {
		n += i.Bytes()
	}
	return n
}

// CountUnit returns how many instructions execute on the unit.
func (p *Program) CountUnit(u Unit) int {
	n := 0
	for _, i := range p.Insts {
		if i.Unit == u {
			n++
		}
	}
	return n
}
