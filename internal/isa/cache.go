package isa

// Compilation memoization. The pseudo-GCN compiler is deterministic and its
// outputs are immutable once built — Allocate, Listing, CodeBytes and
// CountUnit only read the Program — so compilation is cached process-wide:
// one Program and one RegDemand per comparer variant (programs are
// device-independent), plus one Metrics row per (variant, device spec,
// pattern length, work-group size). The autotuner scores every variant at
// several work-group sizes per device at engine init, and MultiSYCL fleets
// construct one engine per slot; without the cache each of those paths
// would re-run emission and liveness analysis on identical kernels.
//
// Callers of CompileComparer/CompileFinder receive the shared cached
// Program and must treat it as read-only.

import (
	"sync"
	"sync/atomic"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// DefaultWorkGroupSize is the work-group size the plain Metrics entry
// points assume — the SYCL program's 256-item groups (§IV.A).
const DefaultWorkGroupSize = 256

type comparerMetricsKey struct {
	variant kernels.ComparerVariant
	spec    device.Spec
	plen    int
	wg      int
}

type finderMetricsKey struct {
	spec device.Spec
	plen int
	wg   int
}

var cache = struct {
	mu              sync.Mutex
	comparer        map[kernels.ComparerVariant]*Program
	comparerDemand  map[kernels.ComparerVariant]RegDemand
	finder          *Program
	finderDemand    RegDemand
	comparerMetrics map[comparerMetricsKey]Metrics
	finderMetrics   map[finderMetricsKey]Metrics
}{
	comparer:        make(map[kernels.ComparerVariant]*Program),
	comparerDemand:  make(map[kernels.ComparerVariant]RegDemand),
	comparerMetrics: make(map[comparerMetricsKey]Metrics),
	finderMetrics:   make(map[finderMetricsKey]Metrics),
}

// compileCount counts actual compiler invocations — cache misses, not
// CompileComparer/CompileFinder calls — for the recompilation regression
// test.
var compileCount atomic.Int64

// CompileCount returns the number of kernel compilations performed so far
// in this process. Memoization keeps it bounded by the number of distinct
// kernels (the comparer variants plus the finder), however many engines,
// fleet slots or tuner passes have been constructed.
func CompileCount() int64 { return compileCount.Load() }

func compileComparerLocked(v kernels.ComparerVariant) *Program {
	if p, ok := cache.comparer[v]; ok {
		return p
	}
	compileCount.Add(1)
	cfg := configFor(v)
	p := emitComparer(kernels.ComparerKernelName(v), cfg)
	if v >= kernels.Opt1 {
		p = EliminateGuardedReloads(p)
	}
	cache.comparer[v] = p
	return p
}

func comparerDemandLocked(v kernels.ComparerVariant) RegDemand {
	if d, ok := cache.comparerDemand[v]; ok {
		return d
	}
	d := Allocate(compileComparerLocked(v))
	cache.comparerDemand[v] = d
	return d
}

func compileFinderLocked() *Program {
	if cache.finder == nil {
		compileCount.Add(1)
		cache.finder = emitFinder()
		cache.finderDemand = Allocate(cache.finder)
	}
	return cache.finder
}

func finderDemandLocked() RegDemand {
	compileFinderLocked()
	return cache.finderDemand
}
