package isa

import (
	"testing"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// TestCompileMemoized: compilation results are shared — repeated
// CompileComparer/CompileFinder calls and metrics queries across devices
// and work-group sizes must not re-run the compiler. The process-wide
// compile count stays bounded by the number of distinct kernels (six
// comparer variants plus the finder) no matter how many engines or tuner
// passes preceded this test.
func TestCompileMemoized(t *testing.T) {
	p1 := CompileComparer(kernels.Opt3)
	p2 := CompileComparer(kernels.Opt3)
	if p1 != p2 {
		t.Error("CompileComparer(Opt3) returned distinct programs; memoization lost")
	}
	if f1, f2 := CompileFinder(), CompileFinder(); f1 != f2 {
		t.Error("CompileFinder returned distinct programs; memoization lost")
	}
	for _, v := range kernels.AllVariants() {
		CompileComparer(v)
	}
	warm := CompileCount()
	if limit := int64(len(kernels.AllVariants()) + 1); warm > limit {
		t.Errorf("compile count %d exceeds the %d distinct kernels", warm, limit)
	}

	// Every metrics row at every (device, wg) must come from the cached
	// programs: zero additional compilations.
	for _, spec := range device.All() {
		for _, wg := range []int{64, 128, 256, 512} {
			FinderMetricsAt(spec, 23, wg)
			for _, v := range kernels.AllVariants() {
				ComparerMetricsAt(v, spec, 23, wg)
			}
		}
	}
	if got := CompileCount(); got != warm {
		t.Errorf("metrics queries recompiled kernels: compile count %d -> %d", warm, got)
	}
}

// TestMetricsAtMatchesDefault: the wg-parameterised entry points at the
// default 256-item group reproduce the plain Table X rows exactly.
func TestMetricsAtMatchesDefault(t *testing.T) {
	spec := device.RadeonVII()
	for _, v := range kernels.AllVariants() {
		if ComparerMetricsAt(v, spec, 23, DefaultWorkGroupSize) != ComparerMetrics(v, spec, 23) {
			t.Errorf("%s: ComparerMetricsAt(256) diverges from ComparerMetrics", v)
		}
	}
	if FinderMetricsAt(spec, 23, DefaultWorkGroupSize) != FinderMetrics(spec, 23) {
		t.Error("FinderMetricsAt(256) diverges from FinderMetrics")
	}
}

// TestMetricsAtNoAllocWhenWarm: the memoized metrics path is the tuner's
// inner loop; once warm it must not allocate.
func TestMetricsAtNoAllocWhenWarm(t *testing.T) {
	spec := device.MI100()
	ComparerMetricsAt(kernels.Opt4, spec, 23, 128)
	FinderMetricsAt(spec, 23, 128)
	if avg := testing.AllocsPerRun(100, func() {
		ComparerMetricsAt(kernels.Opt4, spec, 23, 128)
	}); avg != 0 {
		t.Errorf("warm ComparerMetricsAt allocates %v per call", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		FinderMetricsAt(spec, 23, 128)
	}); avg != 0 {
		t.Errorf("warm FinderMetricsAt allocates %v per call", avg)
	}
}
