package isa

import (
	"strings"
	"testing"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

func TestEncodingSizes(t *testing.T) {
	tests := []struct {
		unit Unit
		want int
	}{
		{SALU, 4}, {VALU, 4}, {BRANCH, 4}, {SYNC, 4},
		{SMEM, 8}, {VMEM, 8}, {LDS, 8},
	}
	for _, tt := range tests {
		if got := encodingBytes(tt.unit); got != tt.want {
			t.Errorf("encodingBytes(%v) = %d, want %d", tt.unit, got, tt.want)
		}
	}
}

func TestProgramBasics(t *testing.T) {
	p := NewProgram("t")
	r1 := p.NewReg(Vector)
	r2 := p.NewReg(Vector)
	s1 := p.NewReg(Scalar)
	if r1 == r2 {
		t.Error("NewReg returned duplicate registers")
	}
	if r1.Class != Vector || s1.Class != Scalar {
		t.Error("register classes wrong")
	}
	p.Append(&Inst{Name: "v_mov", Unit: VALU, Defs: []Reg{r1}})
	p.Append(&Inst{Name: "global_load", Unit: VMEM, Defs: []Reg{r2}, Uses: []Reg{r1}})
	if p.CodeBytes() != 4+8 {
		t.Errorf("CodeBytes = %d", p.CodeBytes())
	}
	if p.CountUnit(VMEM) != 1 || p.CountUnit(VALU) != 1 || p.CountUnit(LDS) != 0 {
		t.Error("CountUnit wrong")
	}
	if r1.String() != "%v0" || s1.String() != "%s0" {
		t.Errorf("Reg.String: %s %s", r1, s1)
	}
}

func TestAllocateStraightLine(t *testing.T) {
	p := NewProgram("t")
	a := p.NewReg(Vector)
	bReg := p.NewReg(Vector)
	c := p.NewReg(Vector)
	// a and b live simultaneously; c reuses a dead slot.
	p.Append(&Inst{Name: "def_a", Unit: VALU, Defs: []Reg{a}})
	p.Append(&Inst{Name: "def_b", Unit: VALU, Defs: []Reg{bReg}})
	p.Append(&Inst{Name: "use_ab", Unit: VALU, Defs: []Reg{c}, Uses: []Reg{a, bReg}})
	p.Append(&Inst{Name: "use_c", Unit: VALU, Uses: []Reg{c}})
	d := Allocate(p)
	// Peak simultaneous: a, b, c at the use_ab instruction = 3.
	if d.VGPRs != 3+vgprReserve {
		t.Errorf("VGPRs = %d, want %d", d.VGPRs, 3+vgprReserve)
	}
	if d.SGPRs != sgprReserve {
		t.Errorf("SGPRs = %d, want %d", d.SGPRs, sgprReserve)
	}
}

func TestAllocateLoopExtension(t *testing.T) {
	p := NewProgram("t")
	pre := p.NewReg(Vector) // defined before the loop, used inside
	tmp := p.NewReg(Vector) // transient inside the loop
	p.Append(&Inst{Name: "def_pre", Unit: VALU, Defs: []Reg{pre}})
	begin := len(p.Insts)
	p.Append(&Inst{Name: "use_pre", Unit: VALU, Defs: []Reg{tmp}, Uses: []Reg{pre}})
	p.Append(&Inst{Name: "use_tmp", Unit: VALU, Uses: []Reg{tmp}})
	p.Append(&Inst{Name: "tail", Unit: SALU, Defs: []Reg{p.NewReg(Scalar)}})
	p.Append(&Inst{Name: "backedge", Unit: BRANCH})
	p.Loops = append(p.Loops, [2]int{begin, len(p.Insts)})

	ivs := liveIntervals(p)
	for _, iv := range ivs {
		if iv.reg == pre && iv.end != len(p.Insts)-1 {
			t.Errorf("pre-loop register not extended across loop: end=%d", iv.end)
		}
	}
}

func TestEliminateGuardedReloads(t *testing.T) {
	p := NewProgram("t")
	addr := p.NewReg(Vector)
	v1 := p.NewReg(Vector)
	v2 := p.NewReg(Vector)
	p.Append(&Inst{Name: "addr", Unit: VALU, Defs: []Reg{addr}})
	p.Append(&Inst{Name: "load", Unit: VMEM, Defs: []Reg{v1}, Uses: []Reg{addr}, Space: GlobalSpace, Addr: addr})
	p.Append(&Inst{Name: "reload", Unit: VMEM, Defs: []Reg{v2}, Uses: []Reg{addr}, Space: GlobalSpace, Addr: addr, AliasGuarded: true})
	p.Append(&Inst{Name: "use", Unit: VALU, Uses: []Reg{v2}})

	out := EliminateGuardedReloads(p)
	if len(out.Insts) != 3 {
		t.Fatalf("got %d instructions, want 3 (reload removed)", len(out.Insts))
	}
	last := out.Insts[2]
	if last.Uses[0] != v1 {
		t.Errorf("use not renamed to original load result: %v", last.Uses)
	}
}

func TestEliminateGuardedReloadsKeptAfterStore(t *testing.T) {
	p := NewProgram("t")
	addr := p.NewReg(Vector)
	val := p.NewReg(Vector)
	v1 := p.NewReg(Vector)
	v2 := p.NewReg(Vector)
	p.Append(&Inst{Name: "addr", Unit: VALU, Defs: []Reg{addr}})
	p.Append(&Inst{Name: "val", Unit: VALU, Defs: []Reg{val}})
	p.Append(&Inst{Name: "load", Unit: VMEM, Defs: []Reg{v1}, Uses: []Reg{addr}, Space: GlobalSpace, Addr: addr})
	p.Append(&Inst{Name: "store", Unit: VMEM, Uses: []Reg{addr, val}, Space: GlobalSpace, Addr: addr, IsStore: true})
	p.Append(&Inst{Name: "reload", Unit: VMEM, Defs: []Reg{v2}, Uses: []Reg{addr}, Space: GlobalSpace, Addr: addr, AliasGuarded: true})
	p.Append(&Inst{Name: "use", Unit: VALU, Uses: []Reg{v2}})
	out := EliminateGuardedReloads(p)
	if len(out.Insts) != len(p.Insts) {
		t.Error("reload after a same-address store must be kept")
	}
}

// TestTableXShape pins the reproduced Table X against the paper (with the
// row labels corrected per DESIGN.md): code length monotonically falls from
// ~6064 to ~3660 bytes, registers are flat until opt3 drops them and opt4
// raises vector pressure past the occupancy threshold.
func TestTableXShape(t *testing.T) {
	rows := TableX(device.MI100(), 23)
	if len(rows) != 5 {
		t.Fatalf("TableX returned %d rows", len(rows))
	}
	paper := []struct {
		code, sgpr, vgpr, occ int
	}{
		{6064, 22, 64, 10},
		{5852, 22, 64, 10},
		{5408, 22, 64, 10},
		{4408, 10, 57, 10},
		{3660, 10, 82, 9},
	}
	for i, row := range rows {
		p := paper[i]
		if diff := float64(row.CodeBytes-p.code) / float64(p.code); diff > 0.05 || diff < -0.05 {
			t.Errorf("%s: code length %d more than 5%% from paper's %d", row.Variant, row.CodeBytes, p.code)
		}
		if row.SGPRs != p.sgpr {
			t.Errorf("%s: SGPRs = %d, want %d", row.Variant, row.SGPRs, p.sgpr)
		}
		if row.VGPRs != p.vgpr {
			t.Errorf("%s: VGPRs = %d, want %d", row.Variant, row.VGPRs, p.vgpr)
		}
		if row.Occupancy != p.occ {
			t.Errorf("%s: occupancy = %d, want %d", row.Variant, row.Occupancy, p.occ)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CodeBytes >= rows[i-1].CodeBytes {
			t.Errorf("code length not strictly decreasing at %s", rows[i].Variant)
		}
	}
}

// TestTableXMechanisms checks that each optimization's measurable effect
// comes from the right mechanism, not just the total.
func TestTableXMechanisms(t *testing.T) {
	spec := device.MI60()
	base := ComparerMetrics(kernels.Base, spec, 23)
	opt1 := ComparerMetrics(kernels.Opt1, spec, 23)
	opt2 := ComparerMetrics(kernels.Opt2, spec, 23)
	opt3 := ComparerMetrics(kernels.Opt3, spec, 23)
	opt4 := ComparerMetrics(kernels.Opt4, spec, 23)

	// opt1: only VMEM instructions disappear (guarded reloads).
	if opt1.VMEMInsts >= base.VMEMInsts {
		t.Errorf("opt1 should remove VMEM reloads: %d vs %d", opt1.VMEMInsts, base.VMEMInsts)
	}
	if opt1.LDSInsts != base.LDSInsts {
		t.Errorf("opt1 changed LDS instructions: %d vs %d", opt1.LDSInsts, base.LDSInsts)
	}
	// opt2: more VMEM gone (in-loop loci/flag loads).
	if opt2.VMEMInsts >= opt1.VMEMInsts {
		t.Errorf("opt2 should remove in-loop loads: %d vs %d", opt2.VMEMInsts, opt1.VMEMInsts)
	}
	// opt3: the unrolled leader staging disappears (fewer LDS writes and
	// far fewer VMEM staging loads).
	if opt3.LDSInsts >= opt2.LDSInsts {
		t.Errorf("opt3 should shrink staging LDS traffic: %d vs %d", opt3.LDSInsts, opt2.LDSInsts)
	}
	if opt3.VMEMInsts >= opt2.VMEMInsts {
		t.Errorf("opt3 should shrink staging VMEM traffic: %d vs %d", opt3.VMEMInsts, opt2.VMEMInsts)
	}
	// opt4: the ladder's per-term LDS reads collapse.
	if opt4.LDSInsts >= opt3.LDSInsts/2 {
		t.Errorf("opt4 should collapse ladder LDS reads: %d vs %d", opt4.LDSInsts, opt3.LDSInsts)
	}
	// opt4 trades registers for occupancy: more VGPRs, one wave fewer.
	if opt4.VGPRs <= opt3.VGPRs {
		t.Error("opt4 should raise vector register pressure")
	}
	if opt4.Occupancy >= opt3.Occupancy {
		t.Error("opt4 should lose occupancy")
	}
}

// TestBitParallelRow pins the SWAR variant's compiled footprint relative
// to opt4: the word loop replaces the unrolled per-base ladder so the code
// shrinks and global-memory instructions thin out, while the in-flight
// word state (wide text/unknown pairs, five mask words, promoted
// shifted-window values) pushes vector-register demand past opt4's — the
// Table X trade-off taken one step further.
func TestBitParallelRow(t *testing.T) {
	spec := device.MI100()
	opt4 := ComparerMetrics(kernels.Opt4, spec, 23)
	bp := ComparerMetrics(kernels.BitParallel, spec, 23)
	if bp.CodeBytes >= opt4.CodeBytes {
		t.Errorf("bitparallel code %d not shorter than opt4's %d", bp.CodeBytes, opt4.CodeBytes)
	}
	if bp.VGPRs <= opt4.VGPRs {
		t.Errorf("bitparallel VGPRs %d not above opt4's %d", bp.VGPRs, opt4.VGPRs)
	}
	if bp.VMEMInsts >= opt4.VMEMInsts {
		t.Errorf("bitparallel VMEM insts %d not below opt4's %d", bp.VMEMInsts, opt4.VMEMInsts)
	}
	if bp.Occupancy > opt4.Occupancy {
		t.Errorf("bitparallel occupancy %d above opt4's %d despite higher register pressure",
			bp.Occupancy, opt4.Occupancy)
	}
	rows := ExtendedTableX(spec, 23)
	if len(rows) != len(kernels.AllVariants()) {
		t.Fatalf("ExtendedTableX returned %d rows", len(rows))
	}
	if rows[len(rows)-1].Variant != kernels.BitParallel {
		t.Errorf("last extended row is %s, want bitparallel", rows[len(rows)-1].Variant)
	}
	for i, v := range kernels.Variants() {
		if rows[i] != ComparerMetrics(v, spec, 23) {
			t.Errorf("extended row %d diverges from TableX", i)
		}
	}
}

// TestTableXStableAcrossDevices: the ISA metrics are a property of the
// compiled kernel, not the device (occupancy uses the same CDNA rule).
func TestTableXStableAcrossDevices(t *testing.T) {
	a := TableX(device.RadeonVII(), 23)
	b := TableX(device.MI100(), 23)
	for i := range a {
		if a[i].CodeBytes != b[i].CodeBytes || a[i].VGPRs != b[i].VGPRs || a[i].Occupancy != b[i].Occupancy {
			t.Errorf("variant %s differs across devices", a[i].Variant)
		}
	}
}

func TestCompileComparerDeterministic(t *testing.T) {
	p1 := CompileComparer(kernels.Opt3)
	p2 := CompileComparer(kernels.Opt3)
	if p1.CodeBytes() != p2.CodeBytes() || len(p1.Insts) != len(p2.Insts) {
		t.Error("compilation is not deterministic")
	}
}

// TestFinderMetrics checks the finder kernel's compiled footprint: it is
// far smaller and lighter-registered than any comparer variant and never
// bounds occupancy — consistent with §IV.B, where it contributes ~2% of
// kernel time.
func TestFinderMetrics(t *testing.T) {
	for _, spec := range device.All() {
		fm := FinderMetrics(spec, 23)
		base := ComparerMetrics(kernels.Base, spec, 23)
		if fm.CodeBytes >= base.CodeBytes/2 {
			t.Errorf("%s: finder code %d not much smaller than comparer %d",
				spec.Name, fm.CodeBytes, base.CodeBytes)
		}
		if fm.VGPRs >= base.VGPRs {
			t.Errorf("%s: finder VGPRs %d >= comparer %d", spec.Name, fm.VGPRs, base.VGPRs)
		}
		if fm.Occupancy != spec.MaxWavesPerSIMD {
			t.Errorf("%s: finder occupancy %d, want the maximum %d",
				spec.Name, fm.Occupancy, spec.MaxWavesPerSIMD)
		}
	}
}

func TestCompileFinderDeterministic(t *testing.T) {
	a, b := CompileFinder(), CompileFinder()
	if a.CodeBytes() != b.CodeBytes() || len(a.Insts) != len(b.Insts) {
		t.Error("finder compilation not deterministic")
	}
}

func TestListing(t *testing.T) {
	p := CompileComparer(kernels.Opt3)
	l := p.Listing()
	for _, part := range []string{"kernel comparer_opt3", ".loop_", ".endloop", "s_barrier", "global_atomic_inc"} {
		if !strings.Contains(l, part) {
			t.Errorf("listing missing %q", part)
		}
	}
	base := CompileComparer(kernels.Base)
	if !strings.Contains(base.Listing(), "alias-guarded reload") {
		t.Error("base listing should mark guarded reloads")
	}
	if strings.Contains(l, "alias-guarded reload") {
		t.Error("restrict-processed listing should have no guarded reloads")
	}
}

func TestSummary(t *testing.T) {
	s := CompileComparer(kernels.Base).Summary()
	for _, part := range []string{"B", "vmem=", "lds=", "valu="} {
		if !strings.Contains(s, part) {
			t.Errorf("summary %q missing %q", s, part)
		}
	}
}
