package isa

import (
	"fmt"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// emitFinder builds the instruction stream of the finder (search) kernel:
// the same leader-staged pattern tables and barrier as the comparer, then a
// short PAM ladder per strand (the search pattern has only a handful of
// non-N positions) and an atomic compaction of matching loci. The kernel is
// far smaller and lighter-registered than the comparer, which is why it
// never bounds occupancy and contributes ~2% of kernel time (§IV.B).
func emitFinder() *Program {
	b := newBuilder("finder")

	kernarg := b.s()
	b.salu("s_mov_kernarg", kernarg)
	ptrNames := []string{"chr", "pat", "pat_index", "loci", "flags", "count"}
	ptrs := make(map[string]Reg, len(ptrNames))
	for _, n := range ptrNames {
		ptrs[n] = b.sload("s_load_dwordx2 "+n, b.s(), kernarg)
	}
	sites := b.sload("s_load_dword sites", b.s(), kernarg)
	plen := b.sload("s_load_dword plen", b.s(), kernarg)

	i := b.valu("v_global_id", b.v())
	li := b.valu("v_sub_li", b.v(), i)
	residentV := []Reg{b.valu("v_mov_resident", b.v()), b.valu("v_mov_resident", b.v())}

	// Leader staging of the pattern tables (constant memory on this
	// kernel), moderately unrolled and pipelined.
	const prefetchUnroll, prefetchDepth = 12, 6
	leaderMask := b.salu("s_cmp_li_eq0", b.s(), li)
	b.branch("s_cbranch_not_leader", leaderMask)
	cnt := b.s()
	b.salu("s_mov_trip", cnt, plen)
	b.beginLoop()
	for g := 0; g < prefetchUnroll; g += prefetchDepth {
		type slot struct{ addrP, addrI, p, x Reg }
		depth := prefetchDepth
		if g+depth > prefetchUnroll {
			depth = prefetchUnroll - g
		}
		slots := make([]slot, depth)
		for d := range slots {
			ap := b.valu("v_addr_pat", b.v(), ptrs["pat"])
			ai := b.valu("v_addr_idx", b.v(), ptrs["pat_index"])
			slots[d] = slot{
				addrP: ap,
				addrI: ai,
				p:     b.sload("s_load_pat", b.v(), ap),
				x:     b.sload("s_load_idx", b.v(), ai),
			}
		}
		for _, s := range slots {
			b.dswrite("ds_write_b8", s.addrP, s.p)
			b.dswrite("ds_write_b32", s.addrI, s.x)
		}
	}
	b.endLoop(cnt)
	b.barrier()

	inRange := b.salu("s_cmp_lt_sites", b.s(), sites)
	b.branch("s_cbranch_out_of_range", inRange)

	// Two strand checks; the PAM ladder is unrolled over the few non-N
	// positions (2-3 for an NRG/NGG PAM).
	const pamUnroll = 3
	for half := 0; half < 2; half++ {
		suffix := fmt.Sprintf(" half%d", half)
		match := b.valu("v_mov_match"+suffix, b.v())
		for u := 0; u < pamUnroll; u++ {
			idxAddr := b.valu("v_addr_lidx"+suffix, b.v(), li)
			k := b.dsread("ds_read_b32 l_pat_index[j]"+suffix, b.v(), idxAddr)
			b.vcmp("v_cmp_k_neg1"+suffix, b.s(), k)
			b.branch("s_cbranch_end"+suffix, k)
			chrAddr := b.valu("v_addr_chr"+suffix, b.v(), i, k)
			b.valu("v_addc_chr"+suffix, chrAddr, chrAddr)
			chr := b.vload("global_load_ubyte chr"+suffix, b.v(), chrAddr, false)
			pat := b.dsread("ds_read_u8 l_pat[k]"+suffix, b.v(), k)
			// The PAM codes are few; the compiler emits a short ladder.
			for term := 0; term < 4; term++ {
				acc := b.vcmp("v_cmp_pat"+suffix, b.s(), pat)
				b.vcmp("v_cmp_chr"+suffix, acc, chr, acc)
				b.salu("s_or"+suffix, acc, acc)
			}
			b.valu("v_and_match"+suffix, match, match, chr)
		}
		b.vcmp("v_cmp_match"+suffix, b.s(), match)
		b.branch("s_cbranch_no_match"+suffix, match)
	}

	// Compaction: atomic slot then the loci and flag stores.
	entryAddr := b.valu("v_addr_count", b.v(), ptrs["count"])
	old := b.atomic("global_atomic_inc", b.v(), entryAddr)
	lociAddr := b.valu("v_addr_loci", b.v(), ptrs["loci"], old)
	b.valu("v_addc_loci", lociAddr, lociAddr)
	b.vstore("global_store_loci", lociAddr, i)
	flagAddr := b.valu("v_addr_flags", b.v(), ptrs["flags"], old)
	b.vstore("global_store_flags", flagAddr, old)

	uses := make([]Reg, 0, len(ptrNames)+len(residentV))
	for _, n := range ptrNames {
		uses = append(uses, ptrs[n])
	}
	uses = append(uses, residentV...)
	b.emit(&Inst{Name: "s_endpgm", Unit: BRANCH, Uses: uses})
	return b.prog()
}

// CompileFinder lowers the finder kernel (it has a single variant: the
// paper's optimizations target only the comparer hotspot). The result is
// memoized (see cache.go) and must be treated as read-only.
func CompileFinder() *Program {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return compileFinderLocked()
}

// FinderMetrics compiles the finder and reports its resource usage and
// occupancy for the device, with the LDS footprint of a plen-base pattern
// and the standard 256-item work-group.
func FinderMetrics(spec device.Spec, plen int) Metrics {
	return FinderMetricsAt(spec, plen, DefaultWorkGroupSize)
}

// FinderMetricsAt is FinderMetrics at an explicit work-group size,
// memoized per (spec, plen, wg).
func FinderMetricsAt(spec device.Spec, plen, wg int) Metrics {
	if wg <= 0 {
		wg = DefaultWorkGroupSize
	}
	key := finderMetricsKey{spec: spec, plen: plen, wg: wg}
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if m, ok := cache.finderMetrics[key]; ok {
		return m
	}
	p := compileFinderLocked()
	d := finderDemandLocked()
	occ := spec.Occupancy(device.KernelResources{
		VGPRs:         d.VGPRs,
		SGPRs:         d.SGPRs,
		LDSBytesPerWG: kernels.FinderLocalBytes(plen),
		WorkGroupSize: wg,
	})
	m := Metrics{
		Variant:   kernels.Base,
		CodeBytes: p.CodeBytes(),
		SGPRs:     d.SGPRs,
		VGPRs:     d.VGPRs,
		Occupancy: occ,
		LDSInsts:  p.CountUnit(LDS),
		VMEMInsts: p.CountUnit(VMEM),
	}
	cache.finderMetrics[key] = m
	return m
}
