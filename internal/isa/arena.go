package isa

import (
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// Arena claim overhead. The kernels now emit every entry through the
// page-based hit-buffer arena (internal/gpu/alloc) instead of a single
// atomic count: the claim sequence holds three more kernarg pointer pairs
// (group page table, page cursor, overflow counter) live in scalar
// registers, and keeps the claimed page, the slot offset and the composed
// slot address live in vector registers across the emission stores. The
// compiled Table X streams deliberately stay the paper's kernels — those
// rows reproduce measured hardware — so the arena variants are modeled as
// the same instruction mix plus this constant register overhead, and the
// occupancy the autotuner scores (internal/tune) is recomputed with it
// folded in. The claim adds no shared local memory.
const (
	// ArenaSGPRs is the scalar overhead: three 64-bit arena state pointers.
	ArenaSGPRs = 6
	// ArenaVGPRs is the vector overhead: page, slot offset, slot address.
	ArenaVGPRs = 3
)

// arenaOccupancy evaluates the occupancy rule with the arena claim's
// register overhead added to a kernel's compiled demand.
func arenaOccupancy(spec device.Spec, d RegDemand, ldsBytes, wg int) int {
	return spec.Occupancy(device.KernelResources{
		VGPRs:         d.VGPRs + ArenaVGPRs,
		SGPRs:         d.SGPRs + ArenaSGPRs,
		LDSBytesPerWG: ldsBytes,
		WorkGroupSize: wg,
	})
}

// FinderMetricsArenaAt is FinderMetricsAt with the arena claim's register
// overhead folded into the reported demand and occupancy — the launch
// context of the finder the engines actually run.
func FinderMetricsArenaAt(spec device.Spec, plen, wg int) Metrics {
	m := FinderMetricsAt(spec, plen, wg)
	m.SGPRs += ArenaSGPRs
	m.VGPRs += ArenaVGPRs
	cache.mu.Lock()
	d := finderDemandLocked()
	cache.mu.Unlock()
	if wg <= 0 {
		wg = DefaultWorkGroupSize
	}
	m.Occupancy = arenaOccupancy(spec, d, kernels.FinderLocalBytes(plen), wg)
	return m
}

// ComparerMetricsArenaAt is ComparerMetricsAt with the arena claim's
// register overhead folded into the reported demand and occupancy — the
// launch context of the comparer variants the engines actually run.
func ComparerMetricsArenaAt(v kernels.ComparerVariant, spec device.Spec, plen, wg int) Metrics {
	m := ComparerMetricsAt(v, spec, plen, wg)
	m.SGPRs += ArenaSGPRs
	m.VGPRs += ArenaVGPRs
	cache.mu.Lock()
	d := comparerDemandLocked(v)
	cache.mu.Unlock()
	if wg <= 0 {
		wg = DefaultWorkGroupSize
	}
	m.Occupancy = arenaOccupancy(spec, d, kernels.ComparerLocalBytes(plen), wg)
	return m
}
