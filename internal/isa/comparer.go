package isa

import (
	"fmt"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// emitCfg captures how the compiler lowers each comparer variant. The
// fields mirror the paper's optimizations: guarded reloads exist until
// __restrict (opt1) licenses their removal, loci/flag loads sit inside the
// comparison loop until they are registered (opt2), the pattern staging
// loop is a serialised leader loop until the fetch is cooperative (opt3),
// and shared-local reads repeat per ladder term until they are promoted to
// a register (opt4, which also deepens the load pipeline and with it the
// vector-register demand).
type emitCfg struct {
	coop           bool // cooperative prefetch (opt3+)
	prefetchUnroll int  // static unroll of the leader staging loop
	prefetchDepth  int  // staging load groups kept in flight
	ladderUnroll   int  // static unroll of the comparison loop
	ladderDepth    int  // comparison load groups kept in flight
	guardedFlag    bool // alias-guarded extra flag reload per half
	guardedChr     bool // alias-guarded chr reload per iteration
	guardedLoci    int  // alias-guarded loci reloads per unrolled block
	lociInLoop     bool // genuine loci load per iteration (removed at opt2)
	flagInHalf     bool // flag loaded per half (moved to prologue at opt2)
	dsPerTerms     int  // ladder terms served per LDS read (2 until opt4)
	promotedExtras int  // extra promoted values in flight per iteration (opt4)
	orFoldPer      int  // ladder terms per folded s_or (opt4 VOP3 folding)
	sgprResident   int  // resident scalar descriptors / saved-exec masks
	vgprResident   int  // resident vector state (id triple, scratch base)
	wordLadder     bool // SWAR word loop replaces the per-base ladder
}

// ladderTerms is the static length of the degenerate-base comparison ladder
// the compiler emits per guide position (the 13 conditions of Listing 1).
const ladderTerms = 13

func configFor(v kernels.ComparerVariant) emitCfg {
	cfg := emitCfg{
		prefetchUnroll: 23,
		prefetchDepth:  11,
		ladderUnroll:   8,
		ladderDepth:    4,
		dsPerTerms:     2,
		sgprResident:   5,
		vgprResident:   3,
	}
	switch v {
	case kernels.Base:
		cfg.guardedFlag = true
		cfg.guardedChr = true
		cfg.guardedLoci = 2
		cfg.lociInLoop = true
		cfg.flagInHalf = true
	case kernels.Opt1:
		// Same emission as base; EliminateGuardedReloads removes the
		// guarded loads afterwards.
		cfg.guardedFlag = true
		cfg.guardedChr = true
		cfg.guardedLoci = 2
		cfg.lociInLoop = true
		cfg.flagInHalf = true
	case kernels.Opt2:
		// loci[i] and flag[i] registered in the prologue.
	case kernels.Opt3:
		cfg.coop = true
		cfg.ladderDepth = 8
		cfg.sgprResident = 2
		cfg.vgprResident = 6
	case kernels.Opt4:
		cfg.coop = true
		cfg.ladderDepth = 8
		cfg.sgprResident = 2
		cfg.vgprResident = 8
		cfg.dsPerTerms = ladderTerms // one LDS read per iteration
		cfg.promotedExtras = 3
		cfg.orFoldPer = 6
	case kernels.BitParallel:
		// The SWAR word core: the per-base ladder collapses into a short
		// word loop (ladderUnroll/ladderDepth now count 32-base words), so
		// far less code is emitted, but each in-flight word holds two wide
		// loads, five mask words and the promoted shifted-window state —
		// register demand rises past opt4's.
		cfg.coop = true
		cfg.wordLadder = true
		cfg.ladderUnroll = 3
		cfg.ladderDepth = 3
		cfg.dsPerTerms = ladderTerms
		cfg.promotedExtras = 7
		cfg.sgprResident = 2
		cfg.vgprResident = 12
	}
	return cfg
}

// CompileComparer lowers a comparer variant to the pseudo-ISA and returns
// the program after the passes the variant enables. The result is memoized
// per variant (see cache.go) and must be treated as read-only.
func CompileComparer(v kernels.ComparerVariant) *Program {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return compileComparerLocked(v)
}

// emitComparer builds the instruction stream of Listing 1 under cfg.
func emitComparer(name string, cfg emitCfg) *Program {
	b := newBuilder(name)

	// Prologue: load kernel arguments. Nine buffer pointers plus the
	// scalar arguments of the kernel signature.
	kernarg := b.s()
	b.salu("s_mov_kernarg", kernarg)
	ptrNames := []string{"chr", "loci", "mm_loci", "comp", "comp_index", "flag", "mm_count", "direction", "entrycount"}
	ptrs := make(map[string]Reg, len(ptrNames))
	var vaddrs map[string][2]Reg
	if cfg.coop {
		vaddrs = make(map[string][2]Reg, len(ptrNames))
	}
	for _, n := range ptrNames {
		s := b.sload("s_load_dwordx2 "+n, b.s(), kernarg)
		if cfg.coop {
			// Cooperative addressing: per-lane 64-bit flat address pairs
			// are computed immediately and the scalar pointer dies here;
			// the pairs stay resident for the whole kernel.
			lo := b.valu("v_add_"+n+"_lo", b.v(), s)
			hi := b.valu("v_addc_"+n+"_hi", b.v(), s, lo)
			vaddrs[n] = [2]Reg{lo, hi}
		} else {
			ptrs[n] = s
		}
	}
	// Resident scalar state the linear model does not derive from the
	// instruction stream: buffer descriptors and saved-exec masks for the
	// divergent branch nest. They are defined here and alive to s_endpgm.
	residentS := make([]Reg, cfg.sgprResident)
	for k := range residentS {
		residentS[k] = b.salu("s_mov_resident", b.s())
	}
	// Resident vector state: the work-item id triple and scratch/flat
	// bases the ABI keeps live for the whole kernel.
	residentV := make([]Reg, cfg.vgprResident)
	for k := range residentV {
		residentV[k] = b.valu("v_mov_resident", b.v())
	}
	locicnt := b.sload("s_load_dword locicnt", b.s(), kernarg)
	threshold := b.sload("s_load_dword threshold", b.s(), kernarg)
	plen := b.sload("s_load_dword plen", b.s(), kernarg)

	// Work-item coordinates: i and li (L0-L1 of Listing 1).
	i := b.valu("v_global_id", b.v())
	li := b.valu("v_sub_li", b.v(), i)

	// Residency anchor for the coop addressing mode: the flat address
	// pairs stay live until the epilogue (they are used by the stores).
	useAll := func(regs map[string][2]Reg) []Reg {
		out := make([]Reg, 0, 2*len(regs))
		for _, n := range ptrNames {
			out = append(out, regs[n][0], regs[n][1])
		}
		return out
	}

	// Pattern staging to LDS (L2-L8): leader loop or cooperative loop.
	var locus, flag Reg
	if cfg.coop {
		stride := b.valu("v_stride", b.v(), li)
		cnt := b.s()
		b.salu("s_mov_trip", cnt, plen)
		b.beginLoop()
		addrC := b.valu("v_addr_comp", b.v(), stride)
		addrI := b.valu("v_addr_idx", b.v(), stride)
		c := b.vload("global_load_ubyte comp", b.v(), addrC, false)
		x := b.vload("global_load_dword comp_index", b.v(), addrI, false)
		b.dswrite("ds_write_b8", addrC, c)
		b.dswrite("ds_write_b32", addrI, x)
		b.valu("v_add_stride", stride, stride)
		b.endLoop(cnt)
	} else {
		leaderMask := b.salu("s_cmp_li_eq0", b.s(), li)
		b.branch("s_cbranch_not_leader", leaderMask)
		cnt := b.s()
		b.salu("s_mov_trip", cnt, plen)
		b.beginLoop()
		// Software-pipelined groups: prefetchDepth iterations' loads are
		// issued before their stores, holding their registers live
		// together.
		for g := 0; g < cfg.prefetchUnroll; g += cfg.prefetchDepth {
			type slot struct{ addrC, addrHi, addrI, c, x Reg }
			depth := cfg.prefetchDepth
			if g+depth > cfg.prefetchUnroll {
				depth = cfg.prefetchUnroll - g
			}
			slots := make([]slot, depth)
			for d := range slots {
				ac := b.valu("v_addr_comp", b.v(), ptrs["comp"])
				ah := b.valu("v_addc_comp", b.v(), ac)
				ai := b.valu("v_addr_idx", b.v(), ptrs["comp_index"])
				slots[d] = slot{
					addrC:  ac,
					addrHi: ah,
					addrI:  ai,
					c:      b.vload("global_load_ubyte comp", b.v(), ac, false),
					x:      b.vload("global_load_dword comp_index", b.v(), ai, false),
				}
			}
			for _, s := range slots {
				b.dswrite("ds_write_b8", s.addrC, s.c)
				b.dswrite("ds_write_b32", s.addrI, s.x)
				b.valu("v_nop_hi_use", s.addrHi, s.addrHi)
			}
		}
		b.endLoop(cnt)
	}
	b.barrier()

	// Bounds check (items padding the last group).
	inRange := b.salu("s_cmp_lt_locicnt", b.s(), locicnt)
	b.branch("s_cbranch_out_of_range", inRange)

	// Registered reads of opt2+: loci[i] and flag[i] read once per item,
	// scheduled after the staging barrier where they are first needed.
	if !cfg.flagInHalf {
		la := b.valu("v_addr_loci_i", b.v(), i)
		locus = b.vload("global_load_dword loci[i]", b.v(), la, false)
		fa := b.valu("v_addr_flag_i", b.v(), i)
		flag = b.vload("global_load_ubyte flag[i]", b.v(), fa, false)
	}

	// Two strand halves (L9-L24 and L26-L42).
	for half := 0; half < 2; half++ {
		suffix := fmt.Sprintf(" half%d", half)
		if cfg.flagInHalf {
			fa := b.valu("v_addr_flag_i"+suffix, b.v(), i)
			flag = b.vload("global_load_ubyte flag[i]"+suffix, b.v(), fa, false)
			if cfg.guardedFlag {
				// The second flag[i] == X read of the condition.
				b.vload("global_load_ubyte flag[i] reload"+suffix, b.v(), fa, true)
			}
		}
		cond := b.vcmp("v_cmp_flag"+suffix, b.s(), flag)
		b.branch("s_cbranch_skip_half"+suffix, cond)

		mm := b.valu("v_mov_mm0"+suffix, b.v()) // L10: lmm_count = 0
		trip := b.s()
		b.salu("s_mov_trip"+suffix, trip, plen)
		b.beginLoop()
		if cfg.wordLadder {
			emitWordLadder(b, cfg, suffix, mm, li, locus, threshold)
		}
		for g := 0; !cfg.wordLadder && g < cfg.ladderUnroll; g += cfg.ladderDepth {
			depth := cfg.ladderDepth
			if g+depth > cfg.ladderUnroll {
				depth = cfg.ladderUnroll - g
			}
			type slot struct {
				k, pat, chr, chr2 Reg
				extras            []Reg
			}
			slots := make([]slot, depth)
			// Load group: issue all loads for the next `depth` iterations.
			for d := range slots {
				idxAddr := b.valu("v_addr_lidx"+suffix, b.v(), li)
				k := b.dsread("ds_read_b32 l_comp_index[j]"+suffix, b.v(), idxAddr)
				b.vcmp("v_cmp_k_neg1"+suffix, b.s(), k)
				b.branch("s_cbranch_end"+suffix, k)

				if cfg.lociInLoop {
					lAddr := b.valu("v_addr_loci"+suffix, b.v(), i)
					b.valu("v_lshl_loci"+suffix, lAddr, lAddr)
					b.valu("v_addc_loci"+suffix, lAddr, lAddr)
					locus = b.vload("global_load_dword loci[i]"+suffix, b.v(), lAddr, false)
					b.emit(&Inst{Name: "s_waitcnt vmcnt", Unit: SYNC})
					if d < cfg.guardedLoci {
						b.vload("global_load_dword loci[i] reload"+suffix, b.v(), lAddr, true)
					}
				}

				base := locus
				chrAddr := b.valu("v_addr_chr"+suffix, b.v(), base, k)
				b.valu("v_addc_chr"+suffix, chrAddr, chrAddr)
				chr := b.vload("global_load_ubyte chr"+suffix, b.v(), chrAddr, false)
				chr2 := b.vload("global_load_ushort chr pair"+suffix, b.v(), chrAddr, false)
				patAddr := b.valu("v_addr_lcomp"+suffix, b.v(), k)
				var pat Reg
				var extras []Reg
				if cfg.dsPerTerms >= ladderTerms {
					pat = b.dsread("ds_read_u8 l_comp[k]"+suffix, b.v(), patAddr)
					for e := 0; e < cfg.promotedExtras; e++ {
						extras = append(extras, b.valu("v_mov_promoted"+suffix, b.v(), pat))
					}
				} else {
					pat = patAddr // ladder re-reads LDS itself
				}
				if cfg.guardedChr {
					b.vload("global_load_ubyte chr reload"+suffix, b.v(), chrAddr, true)
				}
				slots[d] = slot{k: k, pat: pat, chr: chr, chr2: chr2, extras: extras}
			}
			// Ladder group: evaluate the 13-way condition of L14/L31.
			for _, s := range slots {
				patVal := s.pat
				for term := 0; term < ladderTerms; term++ {
					if cfg.dsPerTerms < ladderTerms && term%cfg.dsPerTerms == 0 {
						patVal = b.dsread("ds_read_u8 l_comp[k] term"+suffix, b.v(), s.pat)
					}
					acc := b.vcmp("v_cmp_pat_code"+suffix, b.s(), patVal)
					if term%2 == 0 {
						// Two-base arms (R, M, K, ... compare the genome
						// byte against two codes).
						b.vcmp("v_cmp_chr_code"+suffix, acc, s.chr2, acc)
					}
					if cfg.orFoldPer == 0 || term%cfg.orFoldPer != 0 {
						b.salu("s_or_cond"+suffix, acc, acc)
					}
				}
				mmUses := append([]Reg{mm, s.chr}, s.extras...)
				b.valu("v_add_mm"+suffix, mm, mmUses...)
				cmpT := b.vcmp("v_cmp_mm_thresh"+suffix, b.s(), mm, threshold)
				b.branch("s_cbranch_break"+suffix, cmpT)
			}
		}
		b.endLoop(trip)

		// Store section (L19-L23): atomic slot then three stores.
		pass := b.vcmp("v_cmp_mm_le"+suffix, b.s(), mm, threshold)
		b.branch("s_cbranch_skip_store"+suffix, pass)
		var entryAddr Reg
		if cfg.coop {
			entryAddr = vaddrs["entrycount"][0]
		} else {
			entryAddr = b.valu("v_addr_entry"+suffix, b.v(), ptrs["entrycount"])
		}
		old := b.atomic("global_atomic_inc"+suffix, b.v(), entryAddr)
		storeTo := func(n string, val Reg) {
			var a Reg
			if cfg.coop {
				a = b.valu("v_addr_"+n+suffix, b.v(), vaddrs[n][0], vaddrs[n][1], old)
			} else {
				a = b.valu("v_addr_"+n+suffix, b.v(), ptrs[n], old)
			}
			b.valu("v_addc_"+n+suffix, a, a)
			b.vstore("global_store_"+n+suffix, a, val)
		}
		dir := b.valu("v_mov_dir"+suffix, b.v())
		storeTo("mm_count", mm)
		storeTo("direction", dir)
		if cfg.lociInLoop {
			// The base kernel reloads loci[i] once more for mm_loci[old].
			la := b.valu("v_addr_loci_store"+suffix, b.v(), i)
			locus = b.vload("global_load_dword loci[i] store"+suffix, b.v(), la, true)
		}
		storeTo("mm_loci", locus)
	}

	// Epilogue: the coop addressing pairs are used by the final stores;
	// s_endpgm.
	var uses []Reg
	if cfg.coop {
		uses = useAll(vaddrs)
	} else {
		for _, n := range ptrNames {
			uses = append(uses, ptrs[n])
		}
	}
	uses = append(uses, residentS...)
	uses = append(uses, residentV...)
	b.emit(&Inst{Name: "s_endpgm", Unit: BRANCH, Uses: uses})
	return b.prog()
}

// emitWordLadder emits the SWAR comparison loop of the bitparallel
// variant: each trip scores one 32-base pattern word with two wide global
// loads (the 2-bit packed text word and the unknown-lane word), five LDS
// mask reads and a fixed plane/fold/popcount ALU sequence, in place of 32
// trips through the per-base ladder. ladderUnroll/ladderDepth count words
// here; each in-flight word holds its loaded pair, the five mask words and
// the promoted shifted-window state live together, which is where the
// variant's extra register pressure comes from.
func emitWordLadder(b *builder, cfg emitCfg, suffix string, mm, li, locus, threshold Reg) {
	for g := 0; g < cfg.ladderUnroll; g += cfg.ladderDepth {
		depth := cfg.ladderDepth
		if g+depth > cfg.ladderUnroll {
			depth = cfg.ladderUnroll - g
		}
		type slot struct {
			text, unk Reg
			masks     [5]Reg
			extras    []Reg
		}
		slots := make([]slot, depth)
		// Load group: issue the wide text/unknown loads and the mask reads
		// for the next `depth` words together.
		for d := range slots {
			idxAddr := b.valu("v_addr_lidx"+suffix, b.v(), li)
			k := b.dsread("ds_read_b32 l_comp_index[j]"+suffix, b.v(), idxAddr)
			b.vcmp("v_cmp_k_neg1"+suffix, b.s(), k)
			b.branch("s_cbranch_end"+suffix, k)

			wordAddr := b.valu("v_addr_text_word"+suffix, b.v(), locus, k)
			b.valu("v_addc_text_word"+suffix, wordAddr, wordAddr)
			s := &slots[d]
			s.text = b.vload("global_load_dwordx2 text word"+suffix, b.v(), wordAddr, false)
			s.unk = b.vload("global_load_dwordx2 unknown word"+suffix, b.v(), wordAddr, false)
			maskAddr := b.valu("v_addr_masks"+suffix, b.v(), k)
			names := [5]string{"lanes", "acc_a", "acc_c", "acc_g", "acc_t"}
			for m := range s.masks {
				s.masks[m] = b.dsread("ds_read_b64 "+names[m]+suffix, b.v(), maskAddr)
			}
			// The unaligned window load keeps the neighbouring word and the
			// shift products promoted in registers across the score group.
			for e := 0; e < cfg.promotedExtras; e++ {
				s.extras = append(s.extras, b.valu("v_mov_promoted"+suffix, b.v(), s.text))
			}
		}
		// Score group: equality planes, mask folds, bad-lane combine and
		// popcount for each staged word.
		for _, s := range slots {
			hi := b.valu("v_lshr_hi"+suffix, b.v(), s.text)
			var planes [4]Reg
			for p := range planes {
				planes[p] = b.valu("v_and_plane"+suffix, b.v(), s.text, hi)
			}
			var matched Reg
			for p := range planes {
				fold := b.valu("v_and_fold"+suffix, b.v(), planes[p], s.masks[p+1])
				if p == 0 {
					matched = fold
				} else {
					matched = b.valu("v_or_fold"+suffix, b.v(), matched, fold)
				}
			}
			notM := b.valu("v_not_matched"+suffix, b.v(), matched)
			bad := b.valu("v_or_bad"+suffix, b.v(), notM, s.unk)
			bad = b.valu("v_and_lanes"+suffix, bad, bad, s.masks[0])
			cnt := b.valu("v_bcnt_u64"+suffix, b.v(), bad)
			uses := append([]Reg{mm, cnt}, s.extras...)
			b.valu("v_add_mm"+suffix, mm, uses...)
			cmpT := b.vcmp("v_cmp_mm_thresh"+suffix, b.s(), mm, threshold)
			b.branch("s_cbranch_break"+suffix, cmpT)
		}
	}
}

// Metrics are the Table X columns for one kernel variant.
type Metrics struct {
	Variant   kernels.ComparerVariant
	CodeBytes int
	SGPRs     int
	VGPRs     int
	Occupancy int // waves per SIMD on the given device
	LDSInsts  int
	VMEMInsts int
}

// ComparerMetrics compiles a variant and reports its Table X metrics for
// the device, using the kernel's LDS footprint for a guide of plen bases
// and the standard 256-item work-group.
func ComparerMetrics(v kernels.ComparerVariant, spec device.Spec, plen int) Metrics {
	return ComparerMetricsAt(v, spec, plen, DefaultWorkGroupSize)
}

// ComparerMetricsAt is ComparerMetrics at an explicit work-group size: the
// occupancy column is evaluated for wg-item groups instead of the standard
// 256. The autotuner scores candidate work-group sizes through this entry
// point; rows are memoized per (variant, spec, plen, wg).
func ComparerMetricsAt(v kernels.ComparerVariant, spec device.Spec, plen, wg int) Metrics {
	if wg <= 0 {
		wg = DefaultWorkGroupSize
	}
	key := comparerMetricsKey{variant: v, spec: spec, plen: plen, wg: wg}
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if m, ok := cache.comparerMetrics[key]; ok {
		return m
	}
	p := compileComparerLocked(v)
	d := comparerDemandLocked(v)
	occ := spec.Occupancy(device.KernelResources{
		VGPRs:         d.VGPRs,
		SGPRs:         d.SGPRs,
		LDSBytesPerWG: kernels.ComparerLocalBytes(plen),
		WorkGroupSize: wg,
	})
	m := Metrics{
		Variant:   v,
		CodeBytes: p.CodeBytes(),
		SGPRs:     d.SGPRs,
		VGPRs:     d.VGPRs,
		Occupancy: occ,
		LDSInsts:  p.CountUnit(LDS),
		VMEMInsts: p.CountUnit(VMEM),
	}
	cache.comparerMetrics[key] = m
	return m
}

// TableX returns the metrics for every variant in order, the full Table X.
func TableX(spec device.Spec, plen int) []Metrics {
	out := make([]Metrics, 0, len(kernels.Variants()))
	for _, v := range kernels.Variants() {
		out = append(out, ComparerMetrics(v, spec, plen))
	}
	return out
}

// ExtendedTableX is Table X with the repository's BitParallel row appended
// after the paper's five — the SWAR trade-off continued one step past opt4.
func ExtendedTableX(spec device.Spec, plen int) []Metrics {
	out := make([]Metrics, 0, len(kernels.AllVariants()))
	for _, v := range kernels.AllVariants() {
		out = append(out, ComparerMetrics(v, spec, plen))
	}
	return out
}
