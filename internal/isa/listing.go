package isa

import (
	"fmt"
	"strings"
)

// Listing renders the program as pseudo-assembly, one instruction per line
// with defs, uses and encoding sizes — the reproduction's equivalent of the
// disassembly the paper inspects to explain Table X. Loop regions are
// marked with labels and indentation.
func (p *Program) Listing() string {
	loopBegin := map[int][]int{}
	loopEnd := map[int][]int{}
	for li, lp := range p.Loops {
		loopBegin[lp[0]] = append(loopBegin[lp[0]], li)
		loopEnd[lp[1]] = append(loopEnd[lp[1]], li)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; kernel %s: %d instructions, %d bytes\n", p.Name, len(p.Insts), p.CodeBytes())
	depth := 0
	for idx, inst := range p.Insts {
		for range loopEnd[idx] {
			depth--
			fmt.Fprintf(&b, "%s.endloop\n", strings.Repeat("  ", 1+depth))
		}
		for _, li := range loopBegin[idx] {
			fmt.Fprintf(&b, "%s.loop_%d:\n", strings.Repeat("  ", 1+depth), li)
			depth++
		}
		indent := strings.Repeat("  ", 1+depth)
		fmt.Fprintf(&b, "%s%-44s", indent, inst.Name)
		if len(inst.Defs) > 0 {
			fmt.Fprintf(&b, " %v", inst.Defs)
		}
		if len(inst.Uses) > 0 {
			uses := inst.Uses
			if len(uses) > 6 {
				fmt.Fprintf(&b, " <- %v... (%d uses)", uses[:6], len(uses))
			} else {
				fmt.Fprintf(&b, " <- %v", uses)
			}
		}
		if inst.AliasGuarded {
			b.WriteString("  ; alias-guarded reload")
		}
		fmt.Fprintf(&b, "  ; %dB\n", inst.Bytes())
	}
	for range loopEnd[len(p.Insts)] {
		depth--
		fmt.Fprintf(&b, "%s.endloop\n", strings.Repeat("  ", 1+depth))
	}
	return b.String()
}

// Summary returns a one-line per-unit instruction census.
func (p *Program) Summary() string {
	units := []struct {
		u    Unit
		name string
	}{
		{SALU, "salu"}, {VALU, "valu"}, {SMEM, "smem"},
		{VMEM, "vmem"}, {LDS, "lds"}, {BRANCH, "branch"}, {SYNC, "sync"},
	}
	parts := make([]string, 0, len(units)+1)
	parts = append(parts, fmt.Sprintf("%dB", p.CodeBytes()))
	for _, u := range units {
		if n := p.CountUnit(u.u); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", u.name, n))
		}
	}
	return strings.Join(parts, " ")
}
