package isa

// builder provides emission helpers over a Program, including loop-region
// tracking for the liveness analysis.
type builder struct {
	p         *Program
	loopStack []int
}

func newBuilder(name string) *builder {
	return &builder{p: NewProgram(name)}
}

func (b *builder) s() Reg { return b.p.NewReg(Scalar) }
func (b *builder) v() Reg { return b.p.NewReg(Vector) }

func (b *builder) emit(i *Inst) { b.p.Append(i) }

// salu emits a scalar ALU instruction.
func (b *builder) salu(name string, def Reg, uses ...Reg) Reg {
	b.emit(&Inst{Name: name, Unit: SALU, Defs: []Reg{def}, Uses: uses})
	return def
}

// valu emits a vector ALU instruction.
func (b *builder) valu(name string, def Reg, uses ...Reg) Reg {
	b.emit(&Inst{Name: name, Unit: VALU, Defs: []Reg{def}, Uses: uses})
	return def
}

// vcmp emits a vector compare (writes a condition mask — scalar on GCN).
func (b *builder) vcmp(name string, def Reg, uses ...Reg) Reg {
	b.emit(&Inst{Name: name, Unit: VALU, Defs: []Reg{def}, Uses: uses})
	return def
}

// sload emits a scalar memory load (kernel arguments / descriptors).
func (b *builder) sload(name string, def Reg, addr Reg) Reg {
	b.emit(&Inst{Name: name, Unit: SMEM, Defs: []Reg{def}, Uses: []Reg{addr}, Space: ConstSpace, Addr: addr})
	return def
}

// vload emits a global-memory load.
func (b *builder) vload(name string, def Reg, addr Reg, aliasGuarded bool) Reg {
	b.emit(&Inst{
		Name: name, Unit: VMEM, Defs: []Reg{def}, Uses: []Reg{addr},
		Space: GlobalSpace, Addr: addr, AliasGuarded: aliasGuarded,
	})
	return def
}

// vstore emits a global-memory store.
func (b *builder) vstore(name string, addr Reg, val Reg) {
	b.emit(&Inst{
		Name: name, Unit: VMEM, Uses: []Reg{addr, val},
		Space: GlobalSpace, Addr: addr, IsStore: true,
	})
}

// dsread emits an LDS read.
func (b *builder) dsread(name string, def Reg, addr Reg) Reg {
	b.emit(&Inst{Name: name, Unit: LDS, Defs: []Reg{def}, Uses: []Reg{addr}, Space: LocalSpace, Addr: addr})
	return def
}

// dswrite emits an LDS write.
func (b *builder) dswrite(name string, addr Reg, val Reg) {
	b.emit(&Inst{Name: name, Unit: LDS, Uses: []Reg{addr, val}, Space: LocalSpace, Addr: addr, IsStore: true})
}

// atomic emits a global atomic read-modify-write.
func (b *builder) atomic(name string, def Reg, addr Reg) Reg {
	b.emit(&Inst{Name: name, Unit: VMEM, Defs: []Reg{def}, Uses: []Reg{addr}, Space: GlobalSpace, Addr: addr, IsStore: true})
	return def
}

// branch emits a conditional or unconditional branch.
func (b *builder) branch(name string, uses ...Reg) {
	b.emit(&Inst{Name: name, Unit: BRANCH, Uses: uses})
}

// barrier emits s_barrier preceded by the waitcnt GCN requires.
func (b *builder) barrier() {
	b.emit(&Inst{Name: "s_waitcnt", Unit: SYNC})
	b.emit(&Inst{Name: "s_barrier", Unit: SYNC})
}

// beginLoop opens a loop region.
func (b *builder) beginLoop() {
	b.loopStack = append(b.loopStack, len(b.p.Insts))
}

// endLoop closes the innermost loop region, emitting the backedge.
func (b *builder) endLoop(counter Reg) {
	b.branch("s_cbranch_loop", counter)
	begin := b.loopStack[len(b.loopStack)-1]
	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	b.p.Loops = append(b.p.Loops, [2]int{begin, len(b.p.Insts)})
}

func (b *builder) prog() *Program { return b.p }
