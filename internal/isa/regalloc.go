package isa

// Liveness and register-demand analysis: live intervals over the linear
// instruction stream, extended over loop regions, then a sweep for the peak
// number of simultaneously live registers per class. The peak plus a small
// ABI reserve is the register count the kernel needs — the quantity that
// bounds occupancy in Table X.

// interval is a live range [def, lastUse] in instruction indices.
type interval struct {
	reg      Reg
	def, end int
}

// liveIntervals computes one interval per virtual register, extending any
// interval that overlaps a loop region to span the whole region (a register
// live on entry to a loop iteration must survive every iteration).
func liveIntervals(p *Program) []interval {
	type key struct {
		c  RegClass
		id int
	}
	first := make(map[key]int)
	last := make(map[key]int)
	touch := func(r Reg, pos int) {
		k := key{r.Class, r.ID}
		if _, ok := first[k]; !ok {
			first[k] = pos
		}
		if pos > last[k] {
			last[k] = pos
		}
	}
	for pos, inst := range p.Insts {
		for _, r := range inst.Defs {
			touch(r, pos)
		}
		for _, r := range inst.Uses {
			touch(r, pos)
		}
	}
	out := make([]interval, 0, len(first))
	for k, d := range first {
		out = append(out, interval{reg: Reg{Class: k.c, ID: k.id}, def: d, end: last[k]})
	}
	// Loop extension, iterated to a fixed point so nested or adjacent
	// regions compose.
	for changed := true; changed; {
		changed = false
		for i := range out {
			for _, lp := range p.Loops {
				b, e := lp[0], lp[1]
				overlaps := out[i].def < e && out[i].end >= b
				if !overlaps {
					continue
				}
				if out[i].def > b {
					// Defined inside the loop: value must survive the
					// backedge only if also used before its def in a later
					// iteration; the linear model approximates this by
					// keeping the interval as-is.
					continue
				}
				if out[i].end < e-1 {
					out[i].end = e - 1
					changed = true
				}
			}
		}
	}
	return out
}

// abiReserve is the fixed register overhead of any kernel: on GCN, a few
// SGPRs hold the kernarg pointer, dispatch info and VCC, and a few VGPRs
// hold the work-item id triple.
const (
	sgprReserve = 4
	vgprReserve = 3
)

// RegDemand is the allocator's result for one kernel.
type RegDemand struct {
	SGPRs int
	VGPRs int
}

// Allocate computes the peak simultaneous liveness per class and returns
// the register demand including the ABI reserve.
func Allocate(p *Program) RegDemand {
	ivs := liveIntervals(p)
	peak := map[RegClass]int{}
	// Event sweep: +1 at def, -1 after end.
	type event struct {
		pos   int
		delta int
		class RegClass
	}
	var events []event
	for _, iv := range ivs {
		events = append(events, event{iv.def, 1, iv.reg.Class})
		events = append(events, event{iv.end + 1, -1, iv.reg.Class})
	}
	// Counting sort by position (positions are bounded by len(Insts)+1).
	n := len(p.Insts) + 2
	deltaAt := map[RegClass][]int{Scalar: make([]int, n), Vector: make([]int, n)}
	for _, e := range events {
		pos := e.pos
		if pos >= n {
			pos = n - 1
		}
		deltaAt[e.class][pos] += e.delta
	}
	for class, deltas := range deltaAt {
		live, max := 0, 0
		for _, d := range deltas {
			live += d
			if live > max {
				max = live
			}
		}
		peak[class] = max
	}
	return RegDemand{
		SGPRs: peak[Scalar] + sgprReserve,
		VGPRs: peak[Vector] + vgprReserve,
	}
}

// EliminateGuardedReloads is the effect of adding __restrict to the kernel's
// pointer arguments (opt1): loads the compiler emitted only to guard against
// possible aliasing become provably redundant and are removed, with uses of
// their results renamed to the original load's result. A store through the
// same address register between the original load and the reload still
// kills the original (the reload is then genuinely needed and kept).
func EliminateGuardedReloads(p *Program) *Program {
	out := NewProgram(p.Name + "+restrict")
	out.nextID = p.nextID

	type key struct {
		space MemSpace
		addr  Reg
	}
	avail := make(map[key]Reg) // address -> register holding the loaded value
	rename := make(map[Reg]Reg)
	renamed := func(r Reg) Reg {
		for {
			n, ok := rename[r]
			if !ok {
				return r
			}
			r = n
		}
	}

	removedBefore := make([]int, len(p.Insts)+1)
	removed := 0
	for idx, inst := range p.Insts {
		removedBefore[idx] = removed
		if inst.IsStore && inst.Space != NoSpace {
			// A store through this exact address invalidates the value.
			delete(avail, key{inst.Space, renamed(inst.Addr)})
		}
		if len(inst.Defs) == 1 && inst.Space != NoSpace && !inst.IsStore {
			k := key{inst.Space, renamed(inst.Addr)}
			if inst.AliasGuarded {
				if orig, ok := avail[k]; ok {
					rename[inst.Defs[0]] = orig
					removed++
					continue // drop the reload
				}
			}
			avail[k] = inst.Defs[0]
		}
		cp := *inst
		cp.Uses = append([]Reg(nil), inst.Uses...)
		for i := range cp.Uses {
			cp.Uses[i] = renamed(cp.Uses[i])
		}
		if cp.Space != NoSpace {
			cp.Addr = renamed(cp.Addr)
		}
		out.Append(&cp)
	}
	removedBefore[len(p.Insts)] = removed
	// Remap loop regions to the compacted index space.
	for _, lp := range p.Loops {
		out.Loops = append(out.Loops, [2]int{lp[0] - removedBefore[lp[0]], lp[1] - removedBefore[lp[1]]})
	}
	return out
}
