// Package pipeline is the shared streaming orchestrator behind every search
// engine: one copy of the request lifecycle — validate, compile the
// PatternPairs, walk the genome.Chunker plan, double-buffer chunk staging,
// render hits, and merge them into the deterministic output order —
// parameterized by a small Backend interface that the CPU scan and the two
// simulator host programs implement as thin adapters over their kernel
// launches. The paper's central artifact is one application expressed
// against two programming models with identical results; this package is
// that shape in the repo, so adding a backend never re-implements the host
// program.
//
// The schedule is a classic double buffer: a single stager goroutine stages
// chunk N+1 while a scan worker drives the backend's kernels over chunk N.
// Hits stream to the caller in chunk order as each chunk completes, so a
// search over a full assembly never materializes its whole result set.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
)

// Plan is a compiled request: the validated pattern and guide tables plus
// the chunker that walks the assembly. Chunks are never materialized here —
// the stager walks Chunker.Each so staging overlaps scanning.
type Plan struct {
	// Request is the validated originating request.
	Request *Request
	// Pattern is the compiled PAM scaffold (both strands).
	Pattern *kernels.PatternPair
	// Guides holds one compiled pair per request query, in query order.
	Guides []*kernels.PatternPair
	// Chunker stages the assembly within the request's chunk budget.
	Chunker *genome.Chunker
	// Artifact is the persistent genome artifact backing the assembly, or
	// nil for FASTA-loaded assemblies. Stream fills it from
	// Assembly.Artifact after compilation; backends that can consume the
	// resident word views and PAM shards (the CPU SWAR scan, and through it
	// every resilience fallback) read it here, so artifact awareness needs
	// no Backend interface change.
	Artifact *genome.Artifact
}

// Compile validates the request and compiles its pattern tables.
func Compile(req *Request) (*Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return compileValidated(req)
}

// compileValidated compiles an already-validated request, so a traced Stream
// can record validation and compilation as separate spans.
func compileValidated(req *Request) (*Plan, error) {
	pattern, err := kernels.NewPatternPair([]byte(req.Pattern))
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	guides := make([]*kernels.PatternPair, len(req.Queries))
	for i, q := range req.Queries {
		if guides[i], err = kernels.NewPatternPair([]byte(q.Guide)); err != nil {
			return nil, fmt.Errorf("search: query %d: %w", i, err)
		}
	}
	chunker := &genome.Chunker{ChunkBytes: req.chunkBytes(), PatternLen: pattern.PatternLen}
	// Surface chunker parameter errors (budget smaller than the pattern)
	// now rather than mid-stream: a walk over an empty assembly runs
	// exactly the parameter validation.
	if err := chunker.Each(&genome.Assembly{}, func(*genome.Chunk) error { return nil }); err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	return &Plan{Request: req, Pattern: pattern, Guides: guides, Chunker: chunker}, nil
}

// Staged is a backend's handle for one staged chunk. The pipeline treats it
// as opaque and hands it back to the same backend's scan methods.
type Staged any

// Backend executes the kernel side of the search for one engine. The
// pipeline calls Stage from a dedicated stager goroutine — possibly while a
// scan worker is inside Find or Compare for an earlier chunk — and the
// remaining methods from scan workers, never concurrently for the same
// handle.
//
// On the success path every staged chunk flows Stage → Find → Compare (per
// query, only when Find reported candidates) → Drain. On error or
// cancellation the pipeline stops calling scan methods; Close must then
// release whatever staged handles never reached Drain, so an aborted run
// cannot leak device buffers.
type Backend interface {
	// Stage uploads one chunk and returns the backend's handle for it.
	Stage(ctx context.Context, ch *genome.Chunk) (Staged, error)
	// Find runs the PAM prefilter (the finder kernel) over the staged
	// chunk and returns the number of surviving candidate sites.
	Find(ctx context.Context, st Staged) (int, error)
	// Compare runs the comparer kernel for query qi over the candidates,
	// accumulating raw entries in the handle.
	Compare(ctx context.Context, st Staged, qi int) error
	// Drain renders the accumulated entries into hits using the worker's
	// pooled renderer and releases the chunk's per-chunk resources.
	Drain(ctx context.Context, st Staged, r *SiteRenderer) ([]Hit, error)
	// Close releases everything the backend still holds: run-wide state
	// and any staged handles that never reached Drain. It is called
	// exactly once, after all pipeline goroutines have stopped.
	Close() error
}

// BatchComparer is an optional Backend capability: a backend that can run
// every query's comparer over a staged chunk in a single fused pass.
// When the backend implements it, the pipeline calls CompareAll once per
// chunk instead of looping Compare per query, letting the backend stage
// each candidate window once and evaluate all compiled patterns against it
// (the CPU SWAR path's multi-pattern batching). CompareAll must accumulate
// exactly the entries the per-query Compare loop would have; per-chunk
// hits are sorted afterwards, so entry order within the chunk is free.
type BatchComparer interface {
	CompareAll(ctx context.Context, st Staged) error
}

// An Executor is a pluggable chunk-execution topology. Given a compiled
// plan it owns everything between compilation and the emit callback:
// backend lifecycle, chunk scheduling across however many backends it
// manages, retry/failover policy, and reordering results into the
// ordered-emit contract (hits grouped by chunk in plan order, sorted within
// each chunk). The work-stealing multi-device scheduler in internal/sched
// is the canonical implementation; the built-in double-buffered and serial
// resilient topologies remain the single-backend defaults.
type Executor interface {
	Execute(ctx context.Context, plan *Plan, asm *genome.Assembly, emit func(Hit) error) error
}

// Pipeline drives one Backend over an assembly.
type Pipeline struct {
	// Open builds the backend for a compiled plan (device setup, program
	// build, pattern upload). It is called once per Stream.
	Open func(plan *Plan) (Backend, error)
	// Executor, when non-nil, replaces the built-in topologies entirely:
	// Stream validates and compiles the request, then delegates chunk
	// execution, backend lifecycle and ordered emission to it. Open,
	// ScanWorkers and Resilience are ignored in that mode (the executor
	// carries its own backends and policy).
	Executor Executor
	// ScanWorkers bounds the concurrent scan workers; values below 1 mean
	// one worker (the double-buffered schedule of the simulator engines).
	// The CPU engine raises it to scan chunks in parallel.
	ScanWorkers int
	// Resilience, when non-nil, switches Stream to the serial
	// fault-tolerant executor (see resilience.go): per-chunk retry with
	// backoff, watchdog deadlines, failover to a fallback backend, and
	// quarantine with a PartialError instead of aborting on the first
	// backend failure. ScanWorkers is ignored in that mode.
	Resilience *Resilience

	// Trace, when non-nil, records a span for every pipeline stage
	// (validate, compile, stage, find, compare, drain, emit) and every
	// resilience event (retry, backoff, watchdog kill, failover,
	// quarantine). Nil tracing costs one pointer check per call site.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives the pipeline's stage/scan latency
	// histograms, the staged-queue occupancy gauge and the chunk/hit
	// counters.
	Metrics *obs.Metrics
	// Track prefixes the trace rows this pipeline emits (usually the engine
	// name); empty means "pipeline".
	Track string
}

// track returns the base trace-track name.
func (p *Pipeline) track() string {
	if p.Track != "" {
		return p.Track
	}
	return "pipeline"
}

// observed reports whether any observability sink is attached; call sites
// use it to skip the time.Now() pair on the disabled path.
func (p *Pipeline) observed() bool {
	return p.Trace != nil || p.Metrics != nil
}

// Stream executes the request, calling emit sequentially for every hit.
// Hits arrive grouped by chunk in chunk order, sorted within each chunk, so
// the overall stream is deterministic. A cancelled context or an emit error
// aborts staging and in-flight dispatch and is returned. emit must not be
// nil.
func (p *Pipeline) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	var plan *Plan
	var err error
	if p.Trace != nil {
		t0 := time.Now()
		err = req.Validate()
		p.Trace.Complete(p.track(), "validate", -1, t0, time.Since(t0))
		if err != nil {
			return err
		}
		t0 = time.Now()
		plan, err = compileValidated(req)
		p.Trace.Complete(p.track(), "compile", -1, t0, time.Since(t0))
	} else {
		plan, err = Compile(req)
	}
	if err != nil {
		return err
	}
	plan.Artifact = asm.Artifact()
	if p.Executor != nil {
		return p.Executor.Execute(ctx, plan, asm, emit)
	}
	be, err := p.Open(plan)
	if err != nil {
		return err
	}
	var runErr error
	if p.Resilience != nil {
		runErr = p.runResilient(ctx, be, plan, asm, emit)
	} else {
		runErr = p.run(ctx, be, plan, asm, emit)
	}
	if cerr := be.Close(); runErr == nil {
		runErr = cerr
	}
	return runErr
}

// Collect executes the request and returns all hits in the deterministic
// output order. On error the partial results are dropped and nil is
// returned — except for a PartialError from the resilient executor, where
// the hits outside the quarantined chunks are returned alongside it.
func (p *Pipeline) Collect(ctx context.Context, asm *genome.Assembly, req *Request) ([]Hit, error) {
	var hits []Hit
	if err := p.Stream(ctx, asm, req, func(h Hit) error {
		hits = append(hits, h)
		return nil
	}); err != nil {
		var pe *PartialError
		if errors.As(err, &pe) {
			SortHits(hits)
			return hits, err
		}
		return nil, err
	}
	SortHits(hits)
	return hits, nil
}

// run owns the goroutine topology:
//
//	stager ──stagedCh──▶ scan workers ──results──▶ collector (caller)
//
// The stager walks the chunk plan, staging each chunk and handing it over;
// scan workers drive the backend kernels; the collector reorders finished
// chunks back into plan order and emits. The first error cancels the
// derived context, which stops the stager, aborts blocked sends, and makes
// in-flight scans fail fast at their next phase boundary.
func (p *Pipeline) run(ctx context.Context, be Backend, plan *Plan, asm *genome.Assembly, emit func(Hit) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.ScanWorkers
	if workers < 1 {
		workers = 1
	}

	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	type stagedChunk struct {
		index int
		st    Staged
	}
	type scannedChunk struct {
		index int
		hits  []Hit
	}
	// stagedCh is unbuffered on purpose: the stager completes Stage for
	// chunk N+1 and then blocks on the send while a scanner works chunk N
	// — exactly one chunk of prefetch. A deeper channel would hold more
	// device memory live without hiding any more latency.
	stagedCh := make(chan stagedChunk)
	results := make(chan scannedChunk, workers)

	observed := p.observed()
	var stagerWG sync.WaitGroup
	stagerWG.Add(1)
	go func() {
		defer stagerWG.Done()
		defer close(stagedCh)
		track := p.track() + "/stager"
		index := 0
		if err := plan.Chunker.Each(asm, func(ch *genome.Chunk) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			var st Staged
			var err error
			if observed {
				t0 := time.Now()
				st, err = be.Stage(ctx, ch)
				dur := time.Since(t0)
				p.Trace.Complete(track, "stage", index, t0, dur,
					obs.Attr{Key: "bytes", Value: strconv.Itoa(len(ch.Data))})
				p.Metrics.Observe(obs.MetricStageSeconds, dur.Seconds())
			} else {
				st, err = be.Stage(ctx, ch)
			}
			if err != nil {
				return err
			}
			select {
			case stagedCh <- stagedChunk{index: index, st: st}:
				p.Metrics.GaugeAdd(obs.MetricQueueOccupancy, 1)
				index++
				return nil
			case <-ctx.Done():
				// The handle never reaches a scanner; Close releases it.
				return ctx.Err()
			}
		}); err != nil {
			fail(err)
		}
	}()

	var scanWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		scanWG.Add(1)
		go func(w int) {
			defer scanWG.Done()
			track := p.track() + "/worker" + strconv.Itoa(w)
			r := &SiteRenderer{}
			for sc := range stagedCh {
				p.Metrics.GaugeAdd(obs.MetricQueueOccupancy, -1)
				var hits []Hit
				var err error
				if observed {
					t0 := time.Now()
					hits, err = p.scanOne(ctx, be, plan, sc.st, r, sc.index, track)
					dur := time.Since(t0)
					p.Trace.Complete(track, "scan", sc.index, t0, dur)
					p.Metrics.Observe(obs.MetricScanSeconds, dur.Seconds())
				} else {
					hits, err = p.scanOne(ctx, be, plan, sc.st, r, sc.index, track)
				}
				if err != nil {
					// Keep draining stagedCh so the stager is never
					// stranded on a send; after fail the scans below
					// short-circuit on the cancelled context and their
					// handles are released by Close.
					fail(err)
					continue
				}
				select {
				case results <- scannedChunk{index: sc.index, hits: hits}:
				case <-ctx.Done():
				}
			}
		}(w)
	}
	go func() {
		scanWG.Wait()
		close(results)
	}()

	// The collector runs on the caller's goroutine so emit is always
	// sequential, reordering out-of-order scans back into chunk order.
	collectTrack := p.track() + "/collect"
	pending := make(map[int][]Hit)
	next := 0
	emitting := true
	for res := range results {
		pending[res.index] = res.hits
		for {
			hits, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			chunk := next
			next++
			if !emitting {
				continue
			}
			var t0 time.Time
			if observed {
				t0 = time.Now()
			}
			for _, h := range hits {
				if err := ctx.Err(); err != nil {
					fail(err)
					emitting = false
					break
				}
				if err := emit(h); err != nil {
					fail(err)
					emitting = false
					break
				}
			}
			if observed {
				p.Trace.Complete(collectTrack, "emit", chunk, t0, time.Since(t0),
					obs.Attr{Key: "hits", Value: strconv.Itoa(len(hits))})
				p.Metrics.Count(obs.MetricHits, int64(len(hits)))
				p.Metrics.Count(obs.MetricPipelineChunks, 1)
			}
		}
	}
	stagerWG.Wait()
	return firstErr
}

// scanOne drives one staged chunk through the backend's kernel phases and
// returns its hits sorted. The context is checked at every phase boundary
// so cancellation takes effect within one kernel launch. chunk and track
// label the phase spans when tracing is on.
func (p *Pipeline) scanOne(ctx context.Context, be Backend, plan *Plan, st Staged, r *SiteRenderer, chunk int, track string) ([]Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	traced := p.Trace != nil
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	n, err := be.Find(ctx, st)
	if traced {
		p.Trace.Complete(track, "find", chunk, t0, time.Since(t0),
			obs.Attr{Key: "candidates", Value: strconv.Itoa(n)})
	}
	if err != nil {
		return nil, err
	}
	if n > 0 {
		if traced {
			t0 = time.Now()
		}
		if bc, ok := be.(BatchComparer); ok {
			err = bc.CompareAll(ctx, st)
		} else {
			for qi := range plan.Guides {
				if err = ctx.Err(); err != nil {
					break
				}
				if err = be.Compare(ctx, st, qi); err != nil {
					break
				}
			}
		}
		if traced {
			p.Trace.Complete(track, "compare", chunk, t0, time.Since(t0))
		}
		if err != nil {
			return nil, err
		}
	}
	if traced {
		t0 = time.Now()
	}
	hits, err := be.Drain(ctx, st, r)
	if traced {
		p.Trace.Complete(track, "drain", chunk, t0, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	SortHits(hits)
	return hits, nil
}
