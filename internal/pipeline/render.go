package pipeline

import (
	"cmp"
	"slices"

	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
)

// SiteRenderer renders reported sites into the upstream output convention,
// reusing one scratch buffer across hits. Each scan worker owns one
// renderer, so rendering a hit costs a single string allocation instead of
// an intermediate byte slice per hit. The zero value is ready to use; a
// renderer must not be shared between goroutines.
type SiteRenderer struct {
	buf []byte
}

// Render extracts the site sequence for output in guide orientation,
// lower-casing mismatched guide positions (the upstream output convention):
// forward sites compare the genomic window against the guide directly;
// reverse sites compare against the guide's reverse complement and are then
// reverse-complemented so the printed sequence aligns with the query.
func (r *SiteRenderer) Render(window []byte, guide *kernels.PatternPair, dir byte) string {
	if cap(r.buf) < len(window) {
		r.buf = make([]byte, len(window))
	}
	out := r.buf[:len(window)]
	offset := 0
	if dir == kernels.DirReverse {
		offset = guide.PatternLen
	}
	for i, b := range window {
		b &^= 0x20 // upper-case
		code := guide.Codes[offset+i]
		if code != 'N' && !genome.Matches(code, b) {
			b |= 0x20 // lower-case marks the mismatch
		}
		out[i] = b
	}
	if dir == kernels.DirReverse {
		genome.ReverseComplement(out) // case is preserved per code
	}
	return string(out)
}

// RenderSite is the one-shot convenience form of SiteRenderer.Render for
// callers outside the hot path.
func RenderSite(window []byte, guide *kernels.PatternPair, dir byte) string {
	var r SiteRenderer
	return r.Render(window, guide, dir)
}

// SortHits puts hits into the deterministic output order: by query, then
// sequence name, position and strand. The keys are unique across a search
// (chunk bodies partition the site starts), so the unstable sort still
// yields one canonical order.
func SortHits(hits []Hit) {
	slices.SortFunc(hits, func(a, b Hit) int {
		if c := cmp.Compare(a.QueryIndex, b.QueryIndex); c != 0 {
			return c
		}
		if c := cmp.Compare(a.SeqName, b.SeqName); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos, b.Pos); c != 0 {
			return c
		}
		return cmp.Compare(a.Dir, b.Dir)
	})
}
