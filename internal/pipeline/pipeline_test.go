package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"casoffinder/internal/genome"
)

func testAsm(seqLens ...int) *genome.Assembly {
	asm := &genome.Assembly{Name: "t"}
	for i, n := range seqLens {
		data := make([]byte, n)
		for j := range data {
			data[j] = 'A'
		}
		asm.Sequences = append(asm.Sequences, &genome.Sequence{
			Name: fmt.Sprintf("seq%d", i),
			Data: data,
		})
	}
	return asm
}

func testReq() *Request {
	return &Request{
		Pattern:    "NNNGG",
		Queries:    []Query{{Guide: "ACGNN", MaxMismatches: 1}},
		ChunkBytes: 32,
	}
}

func chunkKey(ch *genome.Chunk) string {
	return fmt.Sprintf("%s:%d", ch.SeqName, ch.Start)
}

// fakeStaged is the fake backend's per-chunk handle.
type fakeStaged struct {
	ch    *genome.Chunk
	index int
}

// fakeBackend fabricates one hit per chunk and accounts for every handle so
// tests can assert that nothing staged is ever leaked: at any quiescent
// point drained + liveAtClose must equal staged.
type fakeBackend struct {
	mu          sync.Mutex
	live        map[*fakeStaged]struct{}
	stageOrder  []string
	drained     int
	closed      int
	liveAtClose int

	stageN     atomic.Int64
	stageErrAt int // stage index that fails; -1 = never
	findHook   func(ctx context.Context, s *fakeStaged) error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{live: map[*fakeStaged]struct{}{}, stageErrAt: -1}
}

func (b *fakeBackend) Stage(ctx context.Context, ch *genome.Chunk) (Staged, error) {
	i := int(b.stageN.Add(1)) - 1
	if i == b.stageErrAt {
		return nil, errors.New("stage boom")
	}
	s := &fakeStaged{ch: ch, index: i}
	b.mu.Lock()
	b.live[s] = struct{}{}
	b.stageOrder = append(b.stageOrder, chunkKey(ch))
	b.mu.Unlock()
	return s, nil
}

func (b *fakeBackend) Find(ctx context.Context, st Staged) (int, error) {
	s := st.(*fakeStaged)
	if b.findHook != nil {
		if err := b.findHook(ctx, s); err != nil {
			return 0, err
		}
	}
	return 1, nil
}

func (b *fakeBackend) Compare(ctx context.Context, st Staged, qi int) error { return nil }

func (b *fakeBackend) Drain(ctx context.Context, st Staged, r *SiteRenderer) ([]Hit, error) {
	s := st.(*fakeStaged)
	b.mu.Lock()
	delete(b.live, s)
	b.drained++
	b.mu.Unlock()
	return []Hit{{SeqName: s.ch.SeqName, Pos: s.ch.Start, Dir: '+', Site: "AAA"}}, nil
}

func (b *fakeBackend) Close() error {
	b.mu.Lock()
	b.closed++
	b.liveAtClose += len(b.live)
	b.live = map[*fakeStaged]struct{}{}
	b.mu.Unlock()
	return nil
}

// checkAccounting asserts no staged handle escaped both Drain and Close.
func checkAccounting(t *testing.T, b *fakeBackend) {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	staged := int(b.stageN.Load())
	if b.stageErrAt >= 0 && staged > b.stageErrAt {
		staged-- // the failing Stage produced no handle
	}
	if b.closed != 1 {
		t.Errorf("Close called %d times, want 1", b.closed)
	}
	if b.drained+b.liveAtClose != staged {
		t.Errorf("handle leak: staged %d, drained %d, released at close %d",
			staged, b.drained, b.liveAtClose)
	}
}

func pipelineFor(b *fakeBackend, workers int) *Pipeline {
	return &Pipeline{
		Open:        func(*Plan) (Backend, error) { return b, nil },
		ScanWorkers: workers,
	}
}

// TestStreamEmitsInChunkOrder: with several scan workers racing, hits must
// still arrive grouped by chunk in plan order.
func TestStreamEmitsInChunkOrder(t *testing.T) {
	b := newFakeBackend()
	// Skew per-chunk scan latency so completion order scrambles.
	b.findHook = func(ctx context.Context, s *fakeStaged) error {
		time.Sleep(time.Duration((s.index%5)*300) * time.Microsecond)
		return nil
	}
	var got []string
	err := pipelineFor(b, 4).Stream(context.Background(), testAsm(500, 200), testReq(), func(h Hit) error {
		got = append(got, fmt.Sprintf("%s:%d", h.SeqName, h.Pos))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 10 {
		t.Fatalf("only %d chunks; fixture too small", len(got))
	}
	b.mu.Lock()
	want := append([]string(nil), b.stageOrder...)
	b.mu.Unlock()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("emission order diverges from chunk order:\n got %v\nwant %v", got, want)
	}
	checkAccounting(t, b)
}

// TestEmitErrorAborts: an emit error must stop staging, surface as the
// stream error, and leave no staged handle unreleased.
func TestEmitErrorAborts(t *testing.T) {
	b := newFakeBackend()
	b.findHook = func(ctx context.Context, s *fakeStaged) error {
		time.Sleep(time.Millisecond)
		return nil
	}
	sentinel := errors.New("emit failed")
	err := pipelineFor(b, 1).Stream(context.Background(), testAsm(2000), testReq(), func(h Hit) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	total := 0
	chunker := &genome.Chunker{ChunkBytes: 32, PatternLen: 5}
	chunker.Each(testAsm(2000), func(*genome.Chunk) error { total++; return nil })
	if n := int(b.stageN.Load()); n >= total {
		t.Errorf("staged all %d chunks despite abort", n)
	}
	checkAccounting(t, b)
}

// TestStageErrorReleasesHandles: a staging failure mid-plan must surface and
// the handles staged before it must be drained or released by Close.
func TestStageErrorReleasesHandles(t *testing.T) {
	b := newFakeBackend()
	b.stageErrAt = 3
	err := pipelineFor(b, 2).Stream(context.Background(), testAsm(2000), testReq(), func(Hit) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "stage boom") {
		t.Fatalf("err = %v, want the stage error", err)
	}
	checkAccounting(t, b)
}

// TestDoubleBuffering: with one scan worker, chunk N+1 must finish staging
// while chunk N is still being scanned — the pipeline's prefetch.
func TestDoubleBuffering(t *testing.T) {
	b := newFakeBackend()
	b.findHook = func(ctx context.Context, s *fakeStaged) error {
		if s.index != 0 {
			return nil
		}
		deadline := time.Now().Add(5 * time.Second)
		for b.stageN.Load() < 2 {
			if time.Now().After(deadline) {
				return errors.New("chunk 1 was not staged while chunk 0 scanned")
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	err := pipelineFor(b, 1).Stream(context.Background(), testAsm(300), testReq(), func(Hit) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, b)
}

// TestCancellation: cancelling the context mid-scan returns ctx.Err() and
// releases everything.
func TestCancellation(t *testing.T) {
	b := newFakeBackend()
	ctx, cancel := context.WithCancel(context.Background())
	b.findHook = func(ctx context.Context, s *fakeStaged) error {
		if s.index == 0 {
			cancel()
		}
		<-ctx.Done()
		return ctx.Err()
	}
	err := pipelineFor(b, 1).Stream(ctx, testAsm(2000), testReq(), func(Hit) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkAccounting(t, b)
}

// TestCollectDropsPartialOnError: Collect must not hand back partial hits.
func TestCollectDropsPartialOnError(t *testing.T) {
	b := newFakeBackend()
	b.stageErrAt = 5
	hits, err := pipelineFor(b, 2).Collect(context.Background(), testAsm(2000), testReq())
	if err == nil {
		t.Fatal("expected error")
	}
	if hits != nil {
		t.Errorf("partial hits returned: %d", len(hits))
	}
}

// TestCompileErrors: invalid requests and impossible chunk budgets fail
// before any backend is opened.
func TestCompileErrors(t *testing.T) {
	opened := 0
	p := &Pipeline{Open: func(*Plan) (Backend, error) {
		opened++
		return newFakeBackend(), nil
	}}
	bad := []*Request{
		{Pattern: "", Queries: []Query{{Guide: "NN"}}},
		{Pattern: "NNNGG", Queries: []Query{{Guide: "ACGNN"}}, ChunkBytes: 3},
	}
	for _, req := range bad {
		if err := p.Stream(context.Background(), testAsm(100), req, func(Hit) error { return nil }); err == nil {
			t.Errorf("request %+v accepted", req)
		} else if !strings.HasPrefix(err.Error(), "search: ") {
			t.Errorf("error %q lacks the search: prefix", err)
		}
	}
	if opened != 0 {
		t.Errorf("backend opened %d times for invalid requests", opened)
	}
}

// batchFakeBackend layers the BatchComparer capability over fakeBackend,
// counting the fused calls and flagging any per-query Compare call, which
// the pipeline must never make once the capability is present.
type batchFakeBackend struct {
	*fakeBackend
	batchCalls  atomic.Int64
	singleCalls atomic.Int64
}

func (b *batchFakeBackend) Compare(ctx context.Context, st Staged, qi int) error {
	b.singleCalls.Add(1)
	return nil
}

func (b *batchFakeBackend) CompareAll(ctx context.Context, st Staged) error {
	b.batchCalls.Add(1)
	return nil
}

// TestBatchComparerPreferred: a backend advertising CompareAll gets exactly
// one fused compare per chunk, even with several queries, and the per-query
// entry point is never used.
func TestBatchComparerPreferred(t *testing.T) {
	b := &batchFakeBackend{fakeBackend: newFakeBackend()}
	p := &Pipeline{
		Open:        func(*Plan) (Backend, error) { return b, nil },
		ScanWorkers: 2,
	}
	req := testReq()
	req.Queries = append(req.Queries, Query{Guide: "TTANN", MaxMismatches: 0})
	if err := p.Stream(context.Background(), testAsm(500), req, func(Hit) error { return nil }); err != nil {
		t.Fatal(err)
	}
	staged := b.stageN.Load()
	if staged == 0 {
		t.Fatal("nothing staged")
	}
	if got := b.batchCalls.Load(); got != staged {
		t.Errorf("CompareAll calls = %d, want one per %d chunks", got, staged)
	}
	if got := b.singleCalls.Load(); got != 0 {
		t.Errorf("per-query Compare called %d times despite BatchComparer", got)
	}
	checkAccounting(t, b.fakeBackend)
}
