package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
)

// flakyBackend layers a scripted per-chunk failure policy and the Releaser
// capability over fakeBackend. failFind receives the phase context, the
// chunk key and the 0-based attempt number for that chunk on this backend.
type flakyBackend struct {
	*fakeBackend
	mu       sync.Mutex
	attempts map[string]int
	released int
	failFind func(ctx context.Context, key string, attempt int) error
}

func newFlakyBackend() *flakyBackend {
	return &flakyBackend{fakeBackend: newFakeBackend(), attempts: map[string]int{}}
}

func (b *flakyBackend) Find(ctx context.Context, st Staged) (int, error) {
	s := st.(*fakeStaged)
	key := chunkKey(s.ch)
	b.mu.Lock()
	attempt := b.attempts[key]
	b.attempts[key] = attempt + 1
	b.mu.Unlock()
	if b.failFind != nil {
		if err := b.failFind(ctx, key, attempt); err != nil {
			return 0, err
		}
	}
	return b.fakeBackend.Find(ctx, st)
}

func (b *flakyBackend) Release(st Staged) {
	s := st.(*fakeStaged)
	b.fakeBackend.mu.Lock()
	delete(b.fakeBackend.live, s)
	b.fakeBackend.mu.Unlock()
	b.mu.Lock()
	b.released++
	b.mu.Unlock()
}

func (b *flakyBackend) attemptsFor(key string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempts[key]
}

// checkFlakyAccounting asserts every staged handle was drained, released
// after an abandoned attempt, or swept by Close.
func checkFlakyAccounting(t *testing.T, b *flakyBackend) {
	t.Helper()
	b.fakeBackend.mu.Lock()
	staged := int(b.stageN.Load())
	drained := b.drained
	atClose := b.liveAtClose
	closed := b.closed
	b.fakeBackend.mu.Unlock()
	b.mu.Lock()
	released := b.released
	b.mu.Unlock()
	if closed != 1 {
		t.Errorf("Close called %d times, want 1", closed)
	}
	if drained+released+atClose != staged {
		t.Errorf("handle leak: staged %d, drained %d, released %d, at close %d",
			staged, drained, released, atClose)
	}
}

func resilientPipeline(primary Backend, fallback Backend, res Resilience) *Pipeline {
	if fallback != nil {
		res.Fallback = func(*Plan) (Backend, error) { return fallback, nil }
	}
	return &Pipeline{
		Open:       func(*Plan) (Backend, error) { return primary, nil },
		Resilience: &res,
	}
}

// goldenStream runs the same request through a clean pipeline and returns
// the expected hit stream.
func goldenStream(t *testing.T, asm *genome.Assembly) []string {
	t.Helper()
	var want []string
	err := pipelineFor(newFakeBackend(), 1).Stream(context.Background(), asm, testReq(), func(h Hit) error {
		want = append(want, fmt.Sprintf("%s:%d", h.SeqName, h.Pos))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("golden stream too small: %v", want)
	}
	return want
}

func streamResilient(t *testing.T, p *Pipeline, asm *genome.Assembly) ([]string, error) {
	t.Helper()
	var got []string
	err := p.Stream(context.Background(), asm, testReq(), func(h Hit) error {
		got = append(got, fmt.Sprintf("%s:%d", h.SeqName, h.Pos))
		return nil
	})
	return got, err
}

// TestResilientRetryRecovers: a transient failure on one chunk's first
// attempt is retried on the primary and the full stream still comes out in
// order, without touching the fallback.
func TestResilientRetryRecovers(t *testing.T) {
	asm := testAsm(500)
	want := goldenStream(t, asm)

	b := newFlakyBackend()
	b.failFind = func(_ context.Context, key string, attempt int) error {
		if key == "seq0:28" && attempt == 0 {
			return fault.Errorf(fault.SiteCLEnqueue, fault.Transient, "scripted transient")
		}
		return nil
	}
	var rep *Report
	p := resilientPipeline(b, nil, Resilience{OnReport: func(r *Report) { rep = r }})
	got, err := streamResilient(t, p, asm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("degraded stream diverges:\n got %v\nwant %v", got, want)
	}
	if rep == nil || rep.Retries != 1 || rep.Failovers != 0 || len(rep.Quarantined) != 0 {
		t.Errorf("report = %+v, want exactly one retry", rep)
	}
	if rep.FallbackUsed {
		t.Error("fallback opened for a recoverable transient")
	}
	checkFlakyAccounting(t, b)
}

// TestResilientFailover: a chunk that exhausts its transient retries on the
// primary is re-staged on the fallback backend and its hits slot back into
// the ordered stream.
func TestResilientFailover(t *testing.T) {
	asm := testAsm(500)
	want := goldenStream(t, asm)

	b := newFlakyBackend()
	b.failFind = func(_ context.Context, key string, _ int) error {
		if key == "seq0:56" {
			return fault.Errorf(fault.SiteCLEnqueue, fault.Transient, "scripted persistent transient")
		}
		return nil
	}
	fb := newFakeBackend()
	var rep *Report
	p := resilientPipeline(b, fb, Resilience{MaxRetries: 2, OnReport: func(r *Report) { rep = r }})
	got, err := streamResilient(t, p, asm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("failover stream diverges:\n got %v\nwant %v", got, want)
	}
	if rep.Retries != 2 || rep.Failovers != 1 || !rep.FallbackUsed || len(rep.Quarantined) != 0 {
		t.Errorf("report = %+v, want 2 retries then 1 failover", rep)
	}
	if got := b.attemptsFor("seq0:56"); got != 3 {
		t.Errorf("primary attempts = %d, want 1 + 2 retries", got)
	}
	checkFlakyAccounting(t, b)
}

// TestOverflowRelaunches: an overflow-classed failure (a hit arena that was
// provisioned too small) relaunches on the primary under its own budget —
// no backoff, no transient retry consumed, no failover — and the stream
// still comes out complete and in order, with the relaunches counted as
// degradation.
func TestOverflowRelaunches(t *testing.T) {
	asm := testAsm(500)
	want := goldenStream(t, asm)

	b := newFlakyBackend()
	b.failFind = func(_ context.Context, key string, attempt int) error {
		if key == "seq0:28" && attempt < DefaultMaxOverflowRelaunches {
			return fault.Errorf(fault.SiteArena, fault.Overflow, "scripted arena exhaustion")
		}
		return nil
	}
	var rep *Report
	// MaxRetries 0: any consumed transient retry would break the chunk, so
	// success proves the overflow arm has its own budget.
	p := resilientPipeline(b, nil, Resilience{MaxRetries: -1, OnReport: func(r *Report) { rep = r }})
	got, err := streamResilient(t, p, asm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("relaunched stream diverges:\n got %v\nwant %v", got, want)
	}
	if rep == nil || rep.OverflowRelaunches != DefaultMaxOverflowRelaunches ||
		rep.Retries != 0 || rep.Failovers != 0 || len(rep.Quarantined) != 0 {
		t.Errorf("report = %+v, want exactly %d overflow relaunches and nothing else",
			rep, DefaultMaxOverflowRelaunches)
	}
	if !rep.Degraded() {
		t.Error("overflow relaunches must mark the run degraded")
	}
	if got := b.attemptsFor("seq0:28"); got != DefaultMaxOverflowRelaunches+1 {
		t.Errorf("primary attempts = %d, want 1 + %d relaunches", got, DefaultMaxOverflowRelaunches)
	}
	checkFlakyAccounting(t, b)
}

// TestOverflowBudgetExhausted: overflow past the relaunch budget is not
// retried forever — it fails over like any other persistent failure, so a
// livelocked allocator cannot wedge a chunk.
func TestOverflowBudgetExhausted(t *testing.T) {
	asm := testAsm(500)
	want := goldenStream(t, asm)

	b := newFlakyBackend()
	b.failFind = func(_ context.Context, key string, _ int) error {
		if key == "seq0:28" {
			return fault.Errorf(fault.SiteArena, fault.Overflow, "scripted persistent exhaustion")
		}
		return nil
	}
	fb := newFakeBackend()
	var rep *Report
	p := resilientPipeline(b, fb, Resilience{MaxRetries: -1, OnReport: func(r *Report) { rep = r }})
	got, err := streamResilient(t, p, asm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("failover stream diverges:\n got %v\nwant %v", got, want)
	}
	if rep.OverflowRelaunches != DefaultMaxOverflowRelaunches || rep.Failovers != 1 || !rep.FallbackUsed {
		t.Errorf("report = %+v, want %d relaunches then failover", rep, DefaultMaxOverflowRelaunches)
	}
	if got := b.attemptsFor("seq0:28"); got != DefaultMaxOverflowRelaunches+1 {
		t.Errorf("primary attempts = %d, want the relaunch budget and no transient retries", got)
	}
	checkFlakyAccounting(t, b)
}

// TestCorruptionSkipsRetry: a corruption-classed failure must never be
// retried on the backend that produced it — it goes straight to the
// fallback for re-verification.
func TestCorruptionSkipsRetry(t *testing.T) {
	asm := testAsm(500)
	want := goldenStream(t, asm)

	b := newFlakyBackend()
	b.failFind = func(_ context.Context, key string, _ int) error {
		if key == "seq0:28" {
			return fault.Errorf(fault.SiteReadback, fault.Corruption, "scripted corruption")
		}
		return nil
	}
	fb := newFakeBackend()
	var rep *Report
	p := resilientPipeline(b, fb, Resilience{MaxRetries: 5, OnReport: func(r *Report) { rep = r }})
	got, err := streamResilient(t, p, asm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("re-verified stream diverges:\n got %v\nwant %v", got, want)
	}
	if got := b.attemptsFor("seq0:28"); got != 1 {
		t.Errorf("corrupted chunk attempted %d times on the primary, want 1", got)
	}
	if rep.Retries != 0 || rep.Failovers != 1 {
		t.Errorf("report = %+v, want zero retries and one failover", rep)
	}
}

// TestResilientQuarantine: with no fallback, a persistently failing chunk is
// quarantined; every other chunk's hits are emitted and the run returns a
// structured PartialError naming the missing region.
func TestResilientQuarantine(t *testing.T) {
	asm := testAsm(500)
	want := goldenStream(t, asm)

	b := newFlakyBackend()
	b.failFind = func(_ context.Context, key string, _ int) error {
		if key == "seq0:28" {
			return fault.Errorf(fault.SiteCLDeviceLost, fault.Fatal, "scripted fatal")
		}
		return nil
	}
	var rep *Report
	p := resilientPipeline(b, nil, Resilience{OnReport: func(r *Report) { rep = r }})
	got, err := streamResilient(t, p, asm)

	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Report.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v, want one chunk", pe.Report.Quarantined)
	}
	q := pe.Report.Quarantined[0]
	if q.SeqName != "seq0" || q.Start != 28 || q.Attempts != 1 {
		t.Errorf("quarantine record = %+v", q)
	}
	if fault.ClassOf(q.Err) != fault.Fatal {
		t.Errorf("quarantine error class = %v, want fatal", fault.ClassOf(q.Err))
	}
	var wantDegraded []string
	for _, h := range want {
		if h != "seq0:28" {
			wantDegraded = append(wantDegraded, h)
		}
	}
	if strings.Join(got, ",") != strings.Join(wantDegraded, ",") {
		t.Errorf("degraded stream:\n got %v\nwant %v", got, wantDegraded)
	}
	if rep == nil || !rep.Degraded() {
		t.Errorf("report = %+v, want degraded", rep)
	}
	checkFlakyAccounting(t, b)
}

// TestCollectKeepsPartialHits: Collect returns the surviving hits alongside
// the PartialError, unlike other errors which drop everything.
func TestCollectKeepsPartialHits(t *testing.T) {
	asm := testAsm(500)
	b := newFlakyBackend()
	b.failFind = func(_ context.Context, key string, _ int) error {
		if key == "seq0:0" {
			return fault.Errorf(fault.SiteCLDeviceLost, fault.Fatal, "scripted fatal")
		}
		return nil
	}
	p := resilientPipeline(b, nil, Resilience{})
	hits, err := p.Collect(context.Background(), asm, testReq())
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(hits) == 0 {
		t.Error("partial hits dropped")
	}
}

// TestWatchdogReapsHang: a scan phase that parks on its context — the
// injected hung kernel — must be cancelled by the watchdog deadline,
// classified transient, and recovered by the retry, all well inside the
// test timeout.
func TestWatchdogReapsHang(t *testing.T) {
	asm := testAsm(500)
	want := goldenStream(t, asm)

	b := newFlakyBackend()
	b.failFind = func(ctx context.Context, key string, attempt int) error {
		if key == "seq0:84" && attempt == 0 {
			<-ctx.Done() // wedged kernel: only the watchdog can reap it
			return ctx.Err()
		}
		return nil
	}
	var rep *Report
	p := resilientPipeline(b, nil, Resilience{Watchdog: 25 * time.Millisecond, OnReport: func(r *Report) { rep = r }})
	start := time.Now()
	got, err := streamResilient(t, p, asm)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v; the watchdog did not reap the hang promptly", elapsed)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("stream diverges after watchdog recovery:\n got %v\nwant %v", got, want)
	}
	if rep.WatchdogKills != 1 || rep.Retries != 1 {
		t.Errorf("report = %+v, want one watchdog kill and one retry", rep)
	}
	checkFlakyAccounting(t, b)
}

// TestResilientEmitErrorAborts: an emit error still aborts the run
// immediately in resilient mode.
func TestResilientEmitErrorAborts(t *testing.T) {
	b := newFlakyBackend()
	sentinel := errors.New("emit failed")
	p := resilientPipeline(b, nil, Resilience{})
	err := p.Stream(context.Background(), testAsm(500), testReq(), func(Hit) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the emit error", err)
	}
}

// TestBackoffDeterministic: the retry schedule is a pure function of
// (seed, chunk, attempt), grows exponentially, and respects the cap.
func TestBackoffDeterministic(t *testing.T) {
	res := &Resilience{Seed: 42, BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond}
	for chunk := 0; chunk < 4; chunk++ {
		for attempt := 1; attempt <= 6; attempt++ {
			d1 := res.backoff(chunk, attempt)
			d2 := res.backoff(chunk, attempt)
			if d1 != d2 {
				t.Fatalf("backoff(%d,%d) nondeterministic: %v vs %v", chunk, attempt, d1, d2)
			}
			if d1 > res.BackoffMax {
				t.Errorf("backoff(%d,%d) = %v exceeds cap %v", chunk, attempt, d1, res.BackoffMax)
			}
			if d1 < res.BackoffBase/2 {
				t.Errorf("backoff(%d,%d) = %v below jittered floor", chunk, attempt, d1)
			}
		}
	}
	other := &Resilience{Seed: 43, BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond}
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if res.backoff(0, attempt) != other.backoff(0, attempt) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical backoff schedule")
	}
}
