// Resilient execution: the fault-tolerant chunk executor the pipeline
// switches to when a Resilience policy is configured. Where the default
// topology treats the first backend error as fatal to the whole run, the
// resilient executor treats errors as per-chunk events: transient failures
// are retried with capped exponential backoff, hung kernels are reaped by a
// per-phase watchdog deadline, and chunks that keep failing — or fail
// fatally, or return corrupted data — are re-staged on a fallback backend.
// Only a chunk that fails on the fallback too is quarantined; the run then
// completes with a structured PartialError instead of aborting.
//
// Determinism contract: the resilient executor runs strictly serially — one
// goroutine stages, scans and emits each chunk before touching the next.
// This deliberately gives up the double-buffered stage/scan overlap of the
// default topology, because overlapping enqueues would race the per-site
// fault-injection counters and make the injection schedule depend on thread
// interleaving. Serial execution makes the whole failure schedule, the
// retry/failover trace and the emitted hit stream a pure function of
// (request, assembly, fault seed), which is what lets a fault run be
// replayed byte-identically.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/obs"
)

// Default resilience parameters, used when the corresponding Resilience
// field is zero.
const (
	// DefaultMaxRetries is the per-chunk transient retry budget on the
	// primary backend.
	DefaultMaxRetries = 2
	// DefaultBackoffBase is the first retry delay.
	DefaultBackoffBase = 1 * time.Millisecond
	// DefaultBackoffMax caps the exponential backoff growth.
	DefaultBackoffMax = 50 * time.Millisecond
	// DefaultMaxOverflowRelaunches is the per-chunk budget for relaunching
	// after a fault.Overflow error escapes a backend. Backends grow their
	// hit-buffer arena and relaunch internally, so an escaped overflow means
	// the arena was exhausted at its worst-case layout — possible only under
	// corrupted arena readback, which a fresh attempt usually clears. The
	// budget is separate from the transient retry budget: an overflow
	// relaunch must not starve the retries a genuinely flaky device needs.
	DefaultMaxOverflowRelaunches = 2
)

// Resilience configures the fault-tolerant executor. Setting a non-nil
// Resilience on a Pipeline switches Stream from the concurrent
// double-buffered topology to the serial resilient one (see the package
// comment on determinism).
type Resilience struct {
	// MaxRetries is how many times a chunk is retried on the primary
	// backend after a transient failure before failing over. Zero means
	// DefaultMaxRetries; negative means no retries.
	MaxRetries int
	// Watchdog bounds every backend phase call (Stage, Find, Compare,
	// Drain). A phase that exceeds it — a hung simulated kernel — is
	// cancelled through its context and treated as a transient failure.
	// Zero disables the watchdog.
	Watchdog time.Duration
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between retries: attempt k waits base·2^k, capped at max, scaled by
	// a deterministic jitter in [0.5, 1.0). Zero values take the package
	// defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the backoff jitter so retry timing is reproducible.
	Seed uint64
	// Fallback opens the failover backend for a plan. It is called at
	// most once per Stream, lazily, the first time a chunk exhausts the
	// primary; the backend is closed with the run. A nil Fallback
	// disables failover: chunks that exhaust the primary are quarantined
	// directly.
	Fallback func(plan *Plan) (Backend, error)
	// OnReport, when set, receives the run's resilience report exactly
	// once, after the last chunk settles and before backends close.
	OnReport func(*Report)
}

func (r *Resilience) maxRetries() int {
	if r.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	if r.MaxRetries < 0 {
		return 0
	}
	return r.MaxRetries
}

func (r *Resilience) backoffBase() time.Duration {
	if r.BackoffBase <= 0 {
		return DefaultBackoffBase
	}
	return r.BackoffBase
}

func (r *Resilience) backoffMax() time.Duration {
	if r.BackoffMax <= 0 {
		return DefaultBackoffMax
	}
	return r.BackoffMax
}

// RetryBudget returns the effective per-chunk transient retry budget on the
// primary arm: MaxRetries with the documented zero/negative semantics
// resolved. Exported for executors outside this package (internal/sched)
// that run their own retry loop over Attempt.
func (r *Resilience) RetryBudget() int { return r.maxRetries() }

// RetryBackoff returns the deterministic delay before retry attempt
// (1-based) of the given chunk: capped exponential growth scaled by a
// jitter in [0.5, 1.0) derived from (Seed, chunk, attempt), so two runs
// with the same seed retry on the same schedule.
func (r *Resilience) RetryBackoff(chunk, attempt int) time.Duration {
	return r.backoff(chunk, attempt)
}

// backoff implements RetryBackoff.
func (r *Resilience) backoff(chunk, attempt int) time.Duration {
	d := r.backoffBase()
	max := r.backoffMax()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	j := fault.Jitter(r.Seed, uint64(chunk), uint64(attempt)) // [0.5, 1.0)
	return time.Duration(float64(d) * j)
}

// Report summarises the resilience events of one run. It is attached to a
// PartialError when chunks were quarantined and delivered through
// Resilience.OnReport in every case.
type Report struct {
	// Chunks is the number of chunks the plan produced.
	Chunks int
	// Retries counts primary-backend retry attempts across all chunks.
	Retries int64
	// OverflowRelaunches counts chunks relaunched on the primary after a
	// fault.Overflow error escaped the backend (an arena exhausted at its
	// worst-case layout, i.e. corrupted arena readback).
	OverflowRelaunches int64
	// Failovers counts chunks re-staged on the fallback backend.
	Failovers int64
	// WatchdogKills counts phases cancelled by the watchdog deadline.
	WatchdogKills int64
	// FallbackUsed reports whether the fallback backend was opened.
	FallbackUsed bool
	// Quarantined lists the chunks that failed on every arm, in chunk
	// order. Their hits are missing from the emitted stream.
	Quarantined []ChunkFailure
}

// Degraded reports whether the run deviated from the clean path at all.
func (r *Report) Degraded() bool {
	return r.Retries > 0 || r.OverflowRelaunches > 0 || r.Failovers > 0 ||
		r.WatchdogKills > 0 || len(r.Quarantined) > 0
}

// ChunkFailure records one quarantined chunk: which part of the assembly is
// missing from the results and why.
type ChunkFailure struct {
	// Index is the chunk's position in plan order.
	Index int
	// SeqName and Start locate the chunk in the assembly; Body is how
	// many site-start positions its loss removes from the search.
	SeqName string
	Start   int
	Body    int
	// Attempts is the total number of scan attempts across both arms.
	Attempts int
	// Err is the error that exhausted the last arm.
	Err error
}

func (f *ChunkFailure) String() string {
	return fmt.Sprintf("chunk %d (%s:%d, %d sites) after %d attempts: %v",
		f.Index, f.SeqName, f.Start, f.Body, f.Attempts, f.Err)
}

// PartialError is returned by Stream when the run completed but one or more
// chunks were quarantined: every hit outside the quarantined chunks was
// emitted in the deterministic order, and the report says exactly which
// genome regions are missing.
type PartialError struct {
	Report *Report
}

// Error implements error.
func (e *PartialError) Error() string {
	n := len(e.Report.Quarantined)
	return fmt.Sprintf("pipeline: partial results: %d of %d chunks quarantined", n, e.Report.Chunks)
}

// Releaser is an optional Backend capability: backends that can release the
// per-chunk resources of an abandoned staged handle implement it, so the
// resilient executor returns device memory as soon as a scan attempt is
// abandoned instead of holding every orphaned handle until Close.
type Releaser interface {
	Release(st Staged)
}

// runResilient is the serial fault-tolerant executor (see the package
// comment for the topology and determinism rationale). Hits are emitted in
// chunk order as each chunk settles; a context cancellation or emit error
// aborts the run, while chunk-level failures degrade it.
func (p *Pipeline) runResilient(ctx context.Context, be Backend, plan *Plan, asm *genome.Assembly, emit func(Hit) error) error {
	res := p.Resilience
	rep := &Report{}
	var fallback Backend
	defer func() {
		if res.OnReport != nil {
			res.OnReport(rep)
		}
	}()
	defer func() {
		if fallback != nil {
			fallback.Close()
		}
	}()

	// openFallback opens the failover backend on first use.
	openFallback := func() (Backend, error) {
		if fallback != nil {
			return fallback, nil
		}
		if res.Fallback == nil {
			return nil, nil
		}
		fb, err := res.Fallback(plan)
		if err != nil {
			return nil, fmt.Errorf("pipeline: opening fallback backend: %w", err)
		}
		fallback = fb
		rep.FallbackUsed = true
		return fb, nil
	}

	observed := p.observed()
	track := p.track() + "/resilient"
	r := &SiteRenderer{}
	index := 0
	err := plan.Chunker.Each(asm, func(ch *genome.Chunk) error {
		hits, cf, err := p.scanResilient(ctx, be, openFallback, plan, index, ch, r, rep)
		if err != nil {
			return err // cancellation: abort the walk
		}
		rep.Chunks++
		if cf != nil {
			p.Trace.Instant(track, "quarantine", index,
				obs.Attr{Key: "error", Value: cf.Err.Error()})
			rep.Quarantined = append(rep.Quarantined, *cf)
		} else {
			var t0 time.Time
			if observed {
				t0 = time.Now()
			}
			for _, h := range hits {
				if err := emit(h); err != nil {
					return err
				}
			}
			if observed {
				p.Trace.Complete(track, "emit", index, t0, time.Since(t0),
					obs.Attr{Key: "hits", Value: strconv.Itoa(len(hits))})
				p.Metrics.Count(obs.MetricHits, int64(len(hits)))
			}
		}
		p.Metrics.Count(obs.MetricPipelineChunks, 1)
		index++
		return nil
	})
	if err != nil {
		return err
	}
	if len(rep.Quarantined) > 0 {
		return &PartialError{Report: rep}
	}
	return nil
}

// scanResilient settles one chunk: primary attempts with transient retry,
// then a failover attempt on the fallback backend, then quarantine. The
// returned error is non-nil only for run-aborting conditions (context
// cancellation); chunk-level failures come back as a ChunkFailure.
func (p *Pipeline) scanResilient(ctx context.Context, primary Backend, openFallback func() (Backend, error), plan *Plan, index int, ch *genome.Chunk, r *SiteRenderer, rep *Report) ([]Hit, *ChunkFailure, error) {
	res := p.Resilience
	observed := p.observed()
	track := p.track() + "/resilient"
	attempts := 0
	var lastErr error

	// attempt runs one Stage→Drain pass on a backend, timing it for the
	// scan-latency histogram when observed.
	attempt := func(be Backend) ([]Hit, error) {
		if !observed {
			return p.attemptChunk(ctx, be, plan, index, ch, r, rep)
		}
		t0 := time.Now()
		hits, err := p.attemptChunk(ctx, be, plan, index, ch, r, rep)
		p.Metrics.Observe(obs.MetricScanSeconds, time.Since(t0).Seconds())
		return hits, err
	}

	// Primary arm: first attempt plus the transient retry budget. Overflow
	// errors relaunch on their own bounded budget without backoff or
	// consuming a transient retry — the arena state is rebuilt from scratch
	// each attempt, so there is nothing to wait out.
	overflows := 0
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		hits, err := attempt(primary)
		attempts++
		if err == nil {
			return hits, nil, nil
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		lastErr = err
		if fault.ClassOf(err) == fault.Overflow && overflows < DefaultMaxOverflowRelaunches {
			overflows++
			rep.OverflowRelaunches++
			p.Trace.Instant(track, "overflow-relaunch", index,
				obs.Attr{Key: "error", Value: err.Error()})
			try--
			continue
		}
		if fault.ClassOf(err) != fault.Transient || try >= res.maxRetries() {
			break // fatal, corrupted, or out of retries: fail over
		}
		rep.Retries++
		p.Trace.Instant(track, "retry", index,
			obs.Attr{Key: "try", Value: strconv.Itoa(try + 1)},
			obs.Attr{Key: "error", Value: err.Error()})
		delay := res.backoff(index, try+1)
		if observed {
			t0 := time.Now()
			err = sleepCtx(ctx, delay)
			p.Trace.Complete(track, "backoff", index, t0, time.Since(t0))
		} else {
			err = sleepCtx(ctx, delay)
		}
		if err != nil {
			return nil, nil, err
		}
	}

	// Failover arm: one attempt on the fallback backend.
	if fb, err := openFallback(); err != nil {
		lastErr = err
	} else if fb != nil {
		rep.Failovers++
		p.Trace.Instant(track, "failover", index,
			obs.Attr{Key: "error", Value: lastErr.Error()})
		hits, err := attempt(fb)
		attempts++
		if err == nil {
			return hits, nil, nil
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		lastErr = err
	}

	return nil, &ChunkFailure{
		Index:    index,
		SeqName:  ch.SeqName,
		Start:    ch.Start,
		Body:     ch.Body,
		Attempts: attempts,
		Err:      lastErr,
	}, nil
}

// attemptChunk runs one full scan attempt on one backend through Attempt,
// counting any watchdog kill into the run report.
func (p *Pipeline) attemptChunk(ctx context.Context, be Backend, plan *Plan, index int, ch *genome.Chunk, r *SiteRenderer, rep *Report) ([]Hit, error) {
	o := AttemptObs{Trace: p.Trace, Metrics: p.Metrics, Track: p.track() + "/resilient"}
	hits, err := Attempt(ctx, be, plan, index, ch, r, p.Resilience.Watchdog, o)
	if IsWatchdogKill(err) {
		rep.WatchdogKills++
	}
	return hits, err
}

// AttemptObs carries the observability sinks the phase spans and latency
// histograms of one Attempt land on. The zero value disables observation
// (the obs types are nil-safe).
type AttemptObs struct {
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	// Track names the trace track the phase spans are recorded on.
	Track string
}

// Attempt runs one full scan attempt — Stage through Drain — of one chunk
// on one backend: the shared building block under both the serial resilient
// executor and the multi-device scheduler (internal/sched). Each phase is
// bounded by the watchdog deadline (zero disables it): a phase that exceeds
// it — a hung simulated kernel — is cancelled through its context and comes
// back as a transient SiteWatchdog fault (IsWatchdogKill), with a
// "watchdog-kill" instant on the track; counting kills and classifying the
// error for retry is the caller's job. The staged handle is released (when
// the backend implements Releaser) if any later phase fails, so a retried
// chunk always re-stages fresh. Cancellation of the parent context passes
// through untouched.
func Attempt(ctx context.Context, be Backend, plan *Plan, index int, ch *genome.Chunk, r *SiteRenderer, watchdog time.Duration, o AttemptObs) (hits []Hit, err error) {
	observed := o.Trace != nil || o.Metrics != nil
	guard := func(ctx context.Context, name string, phase func(context.Context) error) error {
		pctx := ctx
		if watchdog > 0 {
			var cancel context.CancelFunc
			pctx, cancel = context.WithTimeout(ctx, watchdog)
			defer cancel()
		}
		var err error
		if observed {
			t0 := time.Now()
			err = phase(pctx)
			dur := time.Since(t0)
			o.Trace.Complete(o.Track, name, index, t0, dur)
			if name == "stage" {
				o.Metrics.Observe(obs.MetricStageSeconds, dur.Seconds())
			}
		} else {
			err = phase(pctx)
		}
		if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			o.Trace.Instant(o.Track, "watchdog-kill", index,
				obs.Attr{Key: "phase", Value: name})
			return fault.New(fault.SiteWatchdog, fault.Transient,
				fmt.Errorf("pipeline: watchdog deadline (%v) reaped phase: %w", watchdog, err))
		}
		return err
	}

	var st Staged
	err = guard(ctx, "stage", func(pctx context.Context) error {
		var serr error
		st, serr = be.Stage(pctx, ch)
		return serr
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			if rel, ok := be.(Releaser); ok {
				rel.Release(st)
			}
		}
	}()

	var n int
	err = guard(ctx, "find", func(pctx context.Context) error {
		var ferr error
		n, ferr = be.Find(pctx, st)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	if n > 0 {
		if bc, ok := be.(BatchComparer); ok {
			err = guard(ctx, "compare", func(pctx context.Context) error {
				return bc.CompareAll(pctx, st)
			})
			if err != nil {
				return nil, err
			}
		} else {
			for qi := range plan.Guides {
				err = guard(ctx, "compare", func(pctx context.Context) error {
					return be.Compare(pctx, st, qi)
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	err = guard(ctx, "drain", func(pctx context.Context) error {
		var derr error
		hits, derr = be.Drain(pctx, st, r)
		return derr
	})
	if err != nil {
		return nil, err
	}
	SortHits(hits)
	return hits, nil
}

// IsWatchdogKill reports whether err is a watchdog-synthesised kill from
// Attempt (a reaped phase rather than a backend failure).
func IsWatchdogKill(err error) bool {
	var fe *fault.Error
	return errors.As(err, &fe) && fe.Site == fault.SiteWatchdog
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
