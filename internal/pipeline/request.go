package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"casoffinder/internal/genome"
)

// Query is one guide sequence with its mismatch budget, as one line of the
// Cas-OFFinder input file.
type Query struct {
	// Guide is the query sequence, same length as the request pattern,
	// with N at the PAM positions (e.g. "GGCCGACCTGTCGCTGACGCNNN").
	Guide string
	// MaxMismatches is the reporting threshold for this guide.
	MaxMismatches int
}

// Request describes one search.
type Request struct {
	// Pattern is the PAM scaffold: N at guide positions, PAM code at PAM
	// positions (e.g. "NNNNNNNNNNNNNNNNNNNNNRG").
	Pattern string
	// Queries are the guides to compare at every PAM-compatible site.
	Queries []Query
	// ChunkBytes bounds the device memory used for one sequence chunk;
	// 0 selects a sensible default.
	ChunkBytes int
}

// DefaultChunkBytes bounds one staged chunk when the request does not say.
const DefaultChunkBytes = 1 << 20

// Hit is one reported off-target site. The JSON field names are the stable
// NDJSON wire contract shared by the server's hit stream and the CLI's
// -format json output; Dir is excluded from the default encoding and
// rendered as a one-character strand string by MarshalJSON instead (a bare
// byte would encode as its code point).
type Hit struct {
	// QueryIndex identifies the guide in the request.
	QueryIndex int `json:"query"`
	// SeqName is the chromosome/record name.
	SeqName string `json:"seq"`
	// Pos is the 0-based site start within the record.
	Pos int `json:"pos"`
	// Dir is '+' or '-'.
	Dir byte `json:"-"`
	// Mismatches is the number of mismatched guide bases.
	Mismatches int `json:"mismatches"`
	// Site is the genomic sequence at the site, with mismatched positions
	// in lower case (the upstream output convention).
	Site string `json:"site"`
}

// MarshalJSON encodes the hit with its strand as the string "+" or "-".
func (h Hit) MarshalJSON() ([]byte, error) {
	type bare Hit
	return json.Marshal(struct {
		bare
		Dir string `json:"dir"`
	}{bare(h), string(h.Dir)})
}

// UnmarshalJSON is the inverse of MarshalJSON. A strand string that is not
// exactly one character is rejected.
func (h *Hit) UnmarshalJSON(data []byte) error {
	type bare Hit
	var aux struct {
		bare
		Dir string `json:"dir"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if len(aux.Dir) != 1 {
		return fmt.Errorf("search: hit dir %q is not a single strand character", aux.Dir)
	}
	*h = Hit(aux.bare)
	h.Dir = aux.Dir[0]
	return nil
}

// String formats a hit like a Cas-OFFinder output line:
// guide-index, chromosome, position, site, strand, mismatches.
func (h Hit) String() string {
	return fmt.Sprintf("%d\t%s\t%d\t%s\t%c\t%d", h.QueryIndex, h.SeqName, h.Pos, h.Site, h.Dir, h.Mismatches)
}

// Validate checks the request. The error messages keep the "search:" prefix
// the public search package has always reported; that package aliases these
// types, so they remain its API.
func (r *Request) Validate() error {
	if len(r.Pattern) == 0 {
		return errors.New("search: empty pattern")
	}
	if err := genome.Validate([]byte(strings.ToUpper(r.Pattern))); err != nil {
		return fmt.Errorf("search: pattern: %w", err)
	}
	if len(r.Queries) == 0 {
		return errors.New("search: no queries")
	}
	for i, q := range r.Queries {
		if len(q.Guide) != len(r.Pattern) {
			return fmt.Errorf("search: query %d: guide length %d != pattern length %d",
				i, len(q.Guide), len(r.Pattern))
		}
		if err := genome.Validate([]byte(strings.ToUpper(q.Guide))); err != nil {
			return fmt.Errorf("search: query %d: %w", i, err)
		}
		if q.MaxMismatches < 0 {
			return fmt.Errorf("search: query %d: negative mismatch limit", i)
		}
	}
	if r.ChunkBytes < 0 {
		return errors.New("search: negative chunk size")
	}
	return nil
}

func (r *Request) chunkBytes() int {
	if r.ChunkBytes > 0 {
		return r.ChunkBytes
	}
	return DefaultChunkBytes
}
