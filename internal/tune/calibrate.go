package tune

// The online calibration pass: the model ranking can be wrong in ways a
// static table cannot correct (the paper's own Fig. 2 regression is a model
// surprise), so the top finalists each run one real comparer launch over a
// small deterministic synthetic chunk on a private simulated device, and
// the measured kernel cost — scaled to a full staged chunk — replaces the
// analytic comparer term for the re-rank. The finder and host terms stay
// analytic: the comparer is ~98% of kernel time (§IV.B), so it is the only
// term worth paying a launch for.
//
// Isolation contract: calibration builds its own gpu.Device from the bare
// spec — no fault plan, no tracer, no metrics registry — so it cannot fire
// the engine's seeded injector, shift Mark/LogSince deltas, or leak spans
// into the run's observability. Everything is seeded and deterministic, and
// every comparer variant computes identical hits by construction, so a
// calibrated engine's output stream stays byte-identical.

import (
	"fmt"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/alloc"
	"casoffinder/internal/kernels"
	"casoffinder/internal/timing"
)

const (
	// calibChunkBytes is the synthetic chunk each finalist measures on —
	// small enough that a full tuner pass stays well under one real chunk's
	// simulated work, large enough to exercise the ladder shapes.
	calibChunkBytes = 64 << 10
	// calibStride spaces the synthetic candidate loci so their density
	// matches timing.DefaultCandidateRate (1/20 of positions).
	calibStride = 20
	// calibWorkers bounds the private device's worker pool; the measured
	// Stats counters are worker-count independent.
	calibWorkers = 2
)

// calibWorkload is the deterministic synthetic chunk shared by every
// finalist of one Select call.
type calibWorkload struct {
	chr       []byte
	loci      []uint32
	flags     []byte
	guide     *kernels.PatternPair
	threshold uint16
}

// newCalibWorkload builds the chunk: seeded-LCG ACGT text, a candidate at
// every calibStride-th position on both strands, and an ACGT-cycle guide of
// the search's pattern length. The threshold admits the same early-exit mix
// a real low-mismatch search sees against random text.
func newCalibWorkload(plen int) (*calibWorkload, error) {
	chr := make([]byte, calibChunkBytes)
	x := uint32(0x9E3779B9)
	for i := range chr {
		x = x*1664525 + 1013904223
		chr[i] = "ACGT"[x>>30]
	}
	guideBases := make([]byte, plen)
	for i := range guideBases {
		guideBases[i] = "ACGT"[i%4]
	}
	guide, err := kernels.NewPatternPair(guideBases)
	if err != nil {
		return nil, fmt.Errorf("tune: calibration guide: %w", err)
	}
	w := &calibWorkload{chr: chr, guide: guide, threshold: uint16(plen / 6)}
	for p := 0; p+plen <= len(chr); p += calibStride {
		w.loci = append(w.loci, uint32(p))
		w.flags = append(w.flags, kernels.FlagBoth)
	}
	return w, nil
}

// calibrate measures the top finalists of d.Candidates and re-ranks. On
// return the measured finalists carry Candidate.Measured and d.Calibrated
// is set; the unmeasured tail keeps its model order behind them.
func calibrate(n normConfig, d *Decision) error {
	finalists := n.finalists
	if finalists > len(d.Candidates) {
		finalists = len(d.Candidates)
	}
	w, err := newCalibWorkload(n.plen)
	if err != nil {
		return err
	}
	dev := gpu.New(n.spec, gpu.WithWorkers(calibWorkers))
	for i := 0; i < finalists; i++ {
		sec, err := measure(dev, n, w, &d.Candidates[i])
		if err != nil {
			return err
		}
		d.Candidates[i].Measured = sec
	}
	d.Calibrated = true
	rank(d.Candidates[:finalists])
	return nil
}

// measure runs one finalist's comparer over the synthetic chunk and
// projects the measured launch to a full staged chunk: the analytic finder
// and host terms of the candidate's estimate, plus the measured comparer
// stats scaled to the full chunk's candidate count across all queries.
func measure(dev *gpu.Device, n normConfig, w *calibWorkload, c *Candidate) (float64, error) {
	plen := n.plen
	nCand := len(w.loci)
	wg := c.WGSize
	gws := (nCand + wg - 1) / wg * wg
	arena := alloc.NewHost(alloc.WorstCase(gws/wg, 2*wg))
	ca := &kernels.ComparerArgs{
		Chr:       w.chr,
		Loci:      w.loci,
		Flags:     w.flags,
		LociCount: uint32(nCand),
		Guide:     w.guide,
		Threshold: w.threshold,
		MMLoci:    make([]uint32, arena.Layout.Slots()),
		MMCount:   make([]uint16, arena.Layout.Slots()),
		Direction: make([]byte, arena.Layout.Slots()),
		Arena:     arena.Device(),
	}
	phases := kernels.ComparerPhases(c.Variant)
	stats, err := dev.Launch(gpu.LaunchSpec{
		Name:   kernels.ComparerKernelName(c.Variant),
		Global: gpu.R1(gws),
		Local:  gpu.R1(wg),
		Phases: func(g *gpu.Group) []gpu.WorkItemFunc {
			lComp := make([]byte, 2*plen)
			lIdx := make([]int32, 2*plen)
			return []gpu.WorkItemFunc{
				func(it *gpu.Item) { phases[0](it, ca, lComp, lIdx) },
				func(it *gpu.Item) { phases[1](it, ca, lComp, lIdx) },
			}
		},
	})
	if err != nil {
		return 0, fmt.Errorf("tune: calibration launch %s/wg=%d: %w", c.Variant, wg, err)
	}

	// Project to one full staged chunk: the estimate's candidate count per
	// query, times the query count, over the measured candidates.
	est := Estimate(n.spec, c.Variant, wg, plen, n.queries)
	fullCand := int64(timing.DefaultCandidateRate * float64(n.chunkBytes))
	if fullCand < 1 {
		fullCand = 1
	}
	factor := float64(fullCand) * float64(n.queries) / float64(nCand)
	scaled := timing.ScaleStats(*stats, factor)
	ccfg := est.Comparer
	ccfg.WaveSlots = timing.EffectiveWaves(n.spec, ccfg.OccupancyWaves, wg)
	finderSec, _, hostSec := est.Parts(n.chunkBytes)
	return finderSec + timing.KernelSeconds(ccfg, &scaled) + hostSec, nil
}
