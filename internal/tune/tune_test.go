package tune

import (
	"reflect"
	"testing"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/isa"
	"casoffinder/internal/kernels"
)

// TestSelectDeterministic: same spec and shape, same decision — both from
// the memoized path and from two independent scoring passes.
func TestSelectDeterministic(t *testing.T) {
	for _, spec := range device.All() {
		cfg := Config{Spec: spec}
		a, err := Select(cfg)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b, err := Select(cfg)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeated Select diverged:\n%+v\n%+v", spec.Name, a, b)
		}
		// Independent scoring passes must agree too — the cache only
		// memoizes what recomputation would reproduce.
		n, variants, wgs, err := normalize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := selectUncached(n, variants, wgs)
		if err != nil {
			t.Fatal(err)
		}
		d, err := selectUncached(n, variants, wgs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c, d) {
			t.Errorf("%s: uncached scoring not deterministic", spec.Name)
		}
	}
}

// TestSelectCacheIsolation: mutating a returned decision must not poison
// the cache.
func TestSelectCacheIsolation(t *testing.T) {
	cfg := Config{Spec: device.MI60()}
	a, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Variant = kernels.Base
	a.Candidates[0].Predicted = -1
	b, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Candidates[0].Predicted <= 0 || b.Variant == kernels.Base && a.WGSize != b.WGSize {
		t.Error("cached decision was mutated through a returned copy")
	}
}

// TestSelectMatchesExtendedTableX: on every device of Table VII the
// decision must be consistent with the ExtendedTableX occupancy story —
// at any fixed work-group size, a variant with more waves per SIMD (and
// the same synthetic traffic) never scores worse than one with fewer, so
// the winner carries the table's maximum occupancy and a cooperative
// fetch, and the register-heavy opt4/bitparallel rows never win the model
// pass (the Fig. 2 regression, reproduced as a selection).
func TestSelectMatchesExtendedTableX(t *testing.T) {
	for _, spec := range device.All() {
		d, err := Select(Config{Spec: spec})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if d.Device != spec.Name {
			t.Errorf("decision device %q, want %q", d.Device, spec.Name)
		}
		maxOcc := 0
		for _, c := range d.Candidates {
			if c.Occupancy > maxOcc {
				maxOcc = c.Occupancy
			}
		}
		best := d.Candidates[0]
		if best.Variant != d.Variant || best.WGSize != d.WGSize {
			t.Fatalf("%s: decision (%s, %d) is not the top candidate (%s, %d)",
				spec.Name, d.Variant, d.WGSize, best.Variant, best.WGSize)
		}
		if best.Occupancy != maxOcc {
			t.Errorf("%s: winner occupancy %d below the table maximum %d",
				spec.Name, best.Occupancy, maxOcc)
		}
		if !d.Variant.CooperativeFetch() {
			t.Errorf("%s: winner %s still stages through the group leader", spec.Name, d.Variant)
		}
		if d.Variant == kernels.Opt4 || d.Variant == kernels.BitParallel {
			t.Errorf("%s: register-pressure-penalised %s won the model pass", spec.Name, d.Variant)
		}
		// Pairwise: higher Table X occupancy at the same WG size never
		// predicts slower.
		cfg := Config{Spec: spec}
		for _, wg := range DefaultWGSizes() {
			for _, u := range kernels.AllVariants() {
				for _, v := range kernels.AllVariants() {
					uo := isa.ComparerMetricsAt(u, spec, 23, wg).Occupancy
					vo := isa.ComparerMetricsAt(v, spec, 23, wg).Occupancy
					if uo > vo && Predict(cfg, u, wg) >= Predict(cfg, v, wg) {
						t.Errorf("%s wg=%d: %s (occ %d) not predicted faster than %s (occ %d)",
							spec.Name, wg, u, uo, v, vo)
					}
				}
			}
		}
	}
}

// TestSelectRanksSorted: candidates come back best-first under Score.
func TestSelectRanksSorted(t *testing.T) {
	d, err := Select(Config{Spec: device.RadeonVII()})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kernels.AllVariants()) * len(DefaultWGSizes()); len(d.Candidates) != want {
		t.Fatalf("scored %d candidates, want %d", len(d.Candidates), want)
	}
	for i := 1; i < len(d.Candidates); i++ {
		if d.Candidates[i].Score() < d.Candidates[i-1].Score() {
			t.Fatalf("candidates not sorted at %d: %.6g < %.6g",
				i, d.Candidates[i].Score(), d.Candidates[i-1].Score())
		}
	}
}

// TestPredictMatchesCandidates: the exported fixed-variant scoring function
// agrees with what Select recorded.
func TestPredictMatchesCandidates(t *testing.T) {
	cfg := Config{Spec: device.MI100()}
	d, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Candidates {
		if got := Predict(cfg, c.Variant, c.WGSize); got != c.Predicted {
			t.Errorf("Predict(%s, %d) = %.9g, candidate recorded %.9g", c.Variant, c.WGSize, got, c.Predicted)
		}
	}
}

// TestCalibrationDeterministic: the measured pass is seeded and replayable;
// two full calibrations agree bit for bit.
func TestCalibrationDeterministic(t *testing.T) {
	cfg := Config{Spec: device.RadeonVII(), Calibrate: true}
	n, variants, wgs, err := normalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := selectUncached(n, variants, wgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := selectUncached(n, variants, wgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("calibration not deterministic:\n%+v\n%+v", a, b)
	}
	if !a.Calibrated || a.Measured <= 0 {
		t.Errorf("calibrated decision missing measurement: %+v", a)
	}
}

// TestCalibrationSeesRealTraffic: measuring every candidate, the launch
// counters expose what the analytic model cannot — the base kernel's
// alias-guarded reloads — so base must measure strictly slower than opt1
// at the same work-group size, and the global measured winner must be a
// cooperative-fetch variant.
func TestCalibrationSeesRealTraffic(t *testing.T) {
	cfg := Config{Spec: device.MI60(), Calibrate: true, Finalists: 1 << 10}
	d, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meas := make(map[[2]int]float64)
	for _, c := range d.Candidates {
		if c.Measured <= 0 {
			t.Fatalf("candidate (%s, %d) unmeasured despite full calibration", c.Variant, c.WGSize)
		}
		meas[[2]int{int(c.Variant), c.WGSize}] = c.Measured
	}
	for _, wg := range DefaultWGSizes() {
		base := meas[[2]int{int(kernels.Base), wg}]
		opt1 := meas[[2]int{int(kernels.Opt1), wg}]
		if !(base > opt1) {
			t.Errorf("wg=%d: base measured %.6g not above opt1 %.6g — guarded reloads invisible", wg, base, opt1)
		}
	}
	if !d.Variant.CooperativeFetch() {
		t.Errorf("measured winner %s is not a cooperative-fetch variant", d.Variant)
	}
	if d.Measured != d.Candidates[0].Measured {
		t.Errorf("decision measurement %.6g diverges from top candidate %.6g", d.Measured, d.Candidates[0].Measured)
	}
}

// TestSelectWithinBestFixed: the tuner's pick must score within 5% of the
// best fixed (variant, WG) pair on every device — trivially exact for the
// model pass (argmin), and required of the calibrated pass too, where only
// the finalists are re-measured.
func TestSelectWithinBestFixed(t *testing.T) {
	for _, spec := range device.All() {
		for _, calibrate := range []bool{false, true} {
			cfg := Config{Spec: spec, Calibrate: calibrate}
			d, err := Select(cfg)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			best := d.Candidates[0].Score()
			for _, c := range d.Candidates {
				if s := c.Score(); s < best {
					best = s
				}
			}
			if d.Candidates[0].Score() > best*1.05 {
				t.Errorf("%s calibrate=%v: selected %.6gs, best fixed %.6gs (>5%% off)",
					spec.Name, calibrate, d.Candidates[0].Score(), best)
			}
		}
	}
}

// TestSelectConfigErrors covers the rejection paths.
func TestSelectConfigErrors(t *testing.T) {
	if _, err := Select(Config{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Select(Config{Spec: device.MI60(), WGSizes: []int{-64}}); err == nil {
		t.Error("negative work-group size accepted")
	}
	if _, err := Select(Config{Spec: device.MI60(), WGSizes: []int{4096}}); err == nil {
		t.Error("work-group sizes beyond MaxWorkGroupSize should leave nothing to score")
	}
	if _, err := Select(Config{Spec: device.MI60(), Variants: []kernels.ComparerVariant{}}); err == nil {
		t.Error("empty variant list accepted")
	}
}

// TestSelectRespectsMaxWorkGroup: oversized candidate group sizes are
// skipped, not scored.
func TestSelectRespectsMaxWorkGroup(t *testing.T) {
	spec := device.MI60()
	spec.MaxWorkGroupSize = 128
	d, err := Select(Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Candidates {
		if c.WGSize > 128 {
			t.Errorf("candidate wg=%d beyond the device's 128 limit", c.WGSize)
		}
	}
}
