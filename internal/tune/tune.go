// Package tune is the occupancy-driven autotuner: it closes the loop the
// paper draws by hand between the Table X ISA statistics (code length,
// SGPR/VGPR pressure, occupancy) and the Table VIII/IX runtimes. At engine
// init it compiles every registered comparer variant for the target device
// spec through internal/isa, prices each (variant, work-group size)
// candidate with internal/timing's per-chunk roofline at the occupancy the
// variant achieves at that group size, and selects the argmin — per device,
// automatically, where the paper selects by hand per part.
//
// The model can be wrong in ways a static table cannot correct, so Select
// optionally runs a brief online calibration pass (Config.Calibrate): the
// top finalists each execute a real comparer launch over a small synthetic
// chunk on a private simulated device, and the finalists re-rank on the
// measured kernel cost projected to a full chunk. Calibration touches no
// engine state — no fault injector, no metrics registry — and is fully
// deterministic, so tuned runs keep the byte-identical hit-stream contract.
//
// Decisions are memoized per normalized Config: a MultiSYCL fleet with
// repeated device types resolves each type once, and repeated engine
// construction (tests, the service-to-be) does not re-score.
package tune

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/isa"
	"casoffinder/internal/kernels"
	"casoffinder/internal/timing"
)

// DefaultWGSizes are the work-group sizes the tuner scores when the caller
// does not restrict them: the OpenCL runtime's 64, the SYCL program's 256
// (§IV.A), and the neighbours that bracket the granularity trade-off.
func DefaultWGSizes() []int { return []int{64, 128, 256, 512} }

// DefaultFinalists is how many top-ranked candidates the calibration pass
// measures when Config.Finalists is unset.
const DefaultFinalists = 3

// defaultChunkBytes matches the pipeline's default staging budget.
const defaultChunkBytes = 1 << 20

// Config describes one tuning problem: a device and a search shape.
type Config struct {
	// Spec is the target device (required).
	Spec device.Spec
	// PatternLen is the search pattern length; non-positive means 23.
	PatternLen int
	// Queries is the guide count; non-positive means 1.
	Queries int
	// ChunkBytes is the staged chunk size the scores are evaluated at;
	// non-positive means the pipeline default (1 MiB).
	ChunkBytes int
	// Variants restricts the scored comparer variants; nil means every
	// registered variant (kernels.AllVariants).
	Variants []kernels.ComparerVariant
	// WGSizes restricts the scored work-group sizes; nil means
	// DefaultWGSizes. Sizes beyond the device's MaxWorkGroupSize are
	// skipped.
	WGSizes []int
	// Calibrate enables the online calibration pass over the finalists.
	Calibrate bool
	// Finalists is how many top candidates calibration measures;
	// non-positive means DefaultFinalists.
	Finalists int
}

// Candidate is one scored (variant, work-group size) pair.
type Candidate struct {
	Variant kernels.ComparerVariant
	WGSize  int
	// Occupancy is the comparer's Table X waves-per-SIMD at this WG size.
	Occupancy int
	// Predicted is the model-estimated seconds per staged chunk.
	Predicted float64
	// Measured is the calibrated seconds per staged chunk; zero when this
	// candidate was not measured.
	Measured float64
}

// Score is the value the tuner ranks by: the measured cost when the
// calibration pass produced one, the model prediction otherwise.
func (c Candidate) Score() float64 {
	if c.Measured > 0 {
		return c.Measured
	}
	return c.Predicted
}

// Decision is the tuner's result for one device: the selected kernel and
// the full scored field, best first, for observability and ablation.
type Decision struct {
	Device    string
	Variant   kernels.ComparerVariant
	WGSize    int
	Predicted float64
	// Measured is the winner's calibrated chunk cost (zero without
	// calibration).
	Measured float64
	// Calibrated reports whether the online pass ran; Candidates[i].Measured
	// is set on the measured finalists.
	Calibrated bool
	// Candidates holds every scored pair in final rank order.
	Candidates []Candidate
}

func (d *Decision) String() string {
	mode := "model"
	if d.Calibrated {
		mode = "calibrated"
	}
	return fmt.Sprintf("%s: %s wg=%d (%s, %.3gms/chunk, %d candidates)",
		d.Device, d.Variant, d.WGSize, mode, d.Predicted*1e3, len(d.Candidates))
}

// clone returns an independent copy so cached decisions stay immutable.
func (d *Decision) clone() *Decision {
	c := *d
	c.Candidates = append([]Candidate(nil), d.Candidates...)
	return &c
}

// normConfig is a Config with defaults applied — comparable, so it keys the
// decision cache.
type normConfig struct {
	spec       device.Spec
	plen       int
	queries    int
	chunkBytes int
	calibrate  bool
	finalists  int
	variants   string // canonical comma-joined names
	wgSizes    string // canonical comma-joined sizes
}

func normalize(cfg Config) (normConfig, []kernels.ComparerVariant, []int, error) {
	if cfg.Spec.Name == "" {
		return normConfig{}, nil, nil, fmt.Errorf("tune: empty device spec")
	}
	n := normConfig{
		spec:       cfg.Spec,
		plen:       cfg.PatternLen,
		queries:    cfg.Queries,
		chunkBytes: cfg.ChunkBytes,
		calibrate:  cfg.Calibrate,
		finalists:  cfg.Finalists,
	}
	if n.plen <= 0 {
		n.plen = 23
	}
	if n.queries <= 0 {
		n.queries = 1
	}
	if n.chunkBytes <= 0 {
		n.chunkBytes = defaultChunkBytes
	}
	if n.finalists <= 0 {
		n.finalists = DefaultFinalists
	}
	variants := cfg.Variants
	if variants == nil {
		variants = kernels.AllVariants()
	}
	if len(variants) == 0 {
		return normConfig{}, nil, nil, fmt.Errorf("tune: no comparer variants to score")
	}
	wgs := cfg.WGSizes
	if wgs == nil {
		wgs = DefaultWGSizes()
	}
	kept := make([]int, 0, len(wgs))
	for _, wg := range wgs {
		if wg <= 0 {
			return normConfig{}, nil, nil, fmt.Errorf("tune: invalid work-group size %d", wg)
		}
		if cfg.Spec.MaxWorkGroupSize > 0 && wg > cfg.Spec.MaxWorkGroupSize {
			continue
		}
		kept = append(kept, wg)
	}
	if len(kept) == 0 {
		return normConfig{}, nil, nil, fmt.Errorf("tune: no work-group size fits %s (max %d)",
			cfg.Spec.Name, cfg.Spec.MaxWorkGroupSize)
	}
	vNames := make([]string, len(variants))
	for i, v := range variants {
		vNames[i] = v.String()
	}
	wNames := make([]string, len(kept))
	for i, wg := range kept {
		wNames[i] = strconv.Itoa(wg)
	}
	n.variants = strings.Join(vNames, ",")
	n.wgSizes = strings.Join(wNames, ",")
	return n, variants, kept, nil
}

// decisions memoizes Select results per normalized config: same spec and
// search shape, same decision, computed once per process.
var decisions = struct {
	mu sync.Mutex
	m  map[normConfig]*Decision
}{m: make(map[normConfig]*Decision)}

// Estimate builds the per-chunk cost model for one fixed (variant, WG size)
// on a device — the same launch-context shape the MultiSYCL scheduler seeds
// its shard weights from, with the finder/comparer occupancy and register
// pressure compiled by internal/isa at the candidate work-group size.
func Estimate(spec device.Spec, v kernels.ComparerVariant, wg, plen, queries int) timing.ChunkEstimate {
	if plen <= 0 {
		plen = 23
	}
	if queries <= 0 {
		queries = 1
	}
	// The launch contexts are the arena-emitting kernels the engines run:
	// same instruction mix as the Table X rows, with the hit-buffer arena
	// claim's register overhead folded into occupancy and pressure
	// (isa.ArenaSGPRs/ArenaVGPRs). Candidate.Occupancy stays the paper's
	// Table X number; only the cost model sees the adjusted launch context.
	fm := isa.FinderMetricsArenaAt(spec, plen, wg)
	cm := isa.ComparerMetricsArenaAt(v, spec, plen, wg)
	return timing.ChunkEstimate{
		Finder: timing.KernelConfig{
			Spec:                spec,
			OccupancyWaves:      fm.Occupancy,
			VGPRs:               fm.VGPRs,
			WorkGroupSize:       wg,
			LeaderPrefetch:      true,
			PrefetchOpsPerGroup: 4 * plen,
			ScatterFactor:       0.02,
		},
		Comparer: timing.KernelConfig{
			Spec:                spec,
			OccupancyWaves:      cm.Occupancy,
			VGPRs:               cm.VGPRs,
			WorkGroupSize:       wg,
			LeaderPrefetch:      !v.CooperativeFetch(),
			PrefetchOpsPerGroup: 4 * plen,
			ScatterFactor:       1.0,
		},
		PatternLen: plen,
		Queries:    queries,
	}
}

// Predict returns the model-predicted seconds per chunk for one fixed
// (variant, WG size) under cfg — the tuner's scoring function, exposed for
// fixed-variant baselines in benchmarks and ablations.
func Predict(cfg Config, v kernels.ComparerVariant, wg int) float64 {
	n, _, _, err := normalize(cfg)
	if err != nil {
		return 0
	}
	return Estimate(n.spec, v, wg, n.plen, n.queries).Seconds(n.chunkBytes)
}

// Select scores every (variant, work-group size) candidate for cfg and
// returns the ranked decision. Results are memoized per normalized config;
// the returned Decision is the caller's to keep.
func Select(cfg Config) (*Decision, error) {
	n, variants, wgs, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	decisions.mu.Lock()
	if d, ok := decisions.m[n]; ok {
		decisions.mu.Unlock()
		return d.clone(), nil
	}
	decisions.mu.Unlock()

	// Score outside the lock: calibration launches kernels. A concurrent
	// duplicate computation is deterministic and therefore harmless.
	d, err := selectUncached(n, variants, wgs)
	if err != nil {
		return nil, err
	}
	decisions.mu.Lock()
	decisions.m[n] = d
	decisions.mu.Unlock()
	return d.clone(), nil
}

// rank orders candidates best-first, with a deterministic tiebreak: lower
// score, then the cumulative variant order, then smaller groups.
func rank(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		si, sj := cands[i].Score(), cands[j].Score()
		if si != sj {
			return si < sj
		}
		if cands[i].Variant != cands[j].Variant {
			return cands[i].Variant < cands[j].Variant
		}
		return cands[i].WGSize < cands[j].WGSize
	})
}

func selectUncached(n normConfig, variants []kernels.ComparerVariant, wgs []int) (*Decision, error) {
	cands := make([]Candidate, 0, len(variants)*len(wgs))
	for _, v := range variants {
		for _, wg := range wgs {
			cm := isa.ComparerMetricsAt(v, n.spec, n.plen, wg)
			cands = append(cands, Candidate{
				Variant:   v,
				WGSize:    wg,
				Occupancy: cm.Occupancy,
				Predicted: Estimate(n.spec, v, wg, n.plen, n.queries).Seconds(n.chunkBytes),
			})
		}
	}
	rank(cands)

	d := &Decision{Device: n.spec.Name, Candidates: cands}
	if n.calibrate {
		if err := calibrate(n, d); err != nil {
			return nil, err
		}
	}
	best := d.Candidates[0]
	d.Variant = best.Variant
	d.WGSize = best.WGSize
	d.Predicted = best.Predicted
	d.Measured = best.Measured
	return d, nil
}
