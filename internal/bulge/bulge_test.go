package bulge

import (
	"strings"
	"testing"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
	"casoffinder/internal/search"
)

func asmFrom(seqs ...string) *genome.Assembly {
	a := &genome.Assembly{Name: "t"}
	for i, s := range seqs {
		a.Sequences = append(a.Sequences, &genome.Sequence{
			Name: string(rune('a' + i)),
			Data: []byte(s),
		})
	}
	return a
}

func req(pattern, guide string, mm int) *search.Request {
	return &search.Request{
		Pattern: pattern,
		Queries: []search.Query{{Guide: guide, MaxMismatches: mm}},
	}
}

func TestLayoutOf(t *testing.T) {
	l, err := layoutOf("NNNNNGG", "GATTANN")
	if err != nil {
		t.Fatal(err)
	}
	if l.coreStart != 0 || l.coreEnd != 5 {
		t.Errorf("layout = %+v", l)
	}
	if _, err := layoutOf("NNNNN", "NNNNN"); err == nil {
		t.Error("all-N guide accepted")
	}
	if _, err := layoutOf("NNNNNNN", "GANNTAN"); err == nil {
		t.Error("non-contiguous core accepted")
	}
}

func TestExpandCounts(t *testing.T) {
	base := req("NNNNNNNGG", "GATTACANN", 1)
	ds, err := expand(base, Options{MaxDNABulge: 2, MaxRNABulge: 1})
	if err != nil {
		t.Fatal(err)
	}
	// plain + DNA sizes 1,2 + RNA size 1.
	if len(ds) != 4 {
		t.Fatalf("got %d derived searches, want 4", len(ds))
	}
	plain := ds[0]
	if plain.req.Pattern != "NNNNNNNGG" || len(plain.req.Queries) != 1 {
		t.Errorf("plain derived wrong: %+v", plain.req)
	}
	dna1 := ds[1]
	if len(dna1.req.Pattern) != 10 {
		t.Errorf("DNA bulge 1 pattern length = %d, want 10", len(dna1.req.Pattern))
	}
	// Core is 7 long: insertion positions 1..6 -> 6 variants.
	if len(dna1.req.Queries) != 6 {
		t.Errorf("DNA bulge 1 variants = %d, want 6", len(dna1.req.Queries))
	}
	for _, q := range dna1.req.Queries {
		if len(q.Guide) != 10 {
			t.Errorf("DNA variant guide %q has wrong length", q.Guide)
		}
		if strings.Count(q.Guide, "N") != 3 {
			t.Errorf("DNA variant guide %q should have 3 Ns", q.Guide)
		}
	}
	rna1 := ds[3]
	if len(rna1.req.Pattern) != 8 {
		t.Errorf("RNA bulge 1 pattern length = %d, want 8", len(rna1.req.Pattern))
	}
	for _, q := range rna1.req.Queries {
		if len(q.Guide) != 8 {
			t.Errorf("RNA variant guide %q has wrong length", q.Guide)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	base := req("NNNNNNNGG", "GATTACANN", 1)
	if _, err := expand(base, Options{MaxDNABulge: -1}); err == nil {
		t.Error("negative bulge accepted")
	}
	bad := req("NNNNNNNGG", "GANNACANN", 1) // split core
	if _, err := expand(bad, Options{MaxDNABulge: 1}); err == nil {
		t.Error("non-contiguous core accepted")
	}
}

func TestSearchPlainSitesStillFound(t *testing.T) {
	asm := asmFrom("ACCGATTACAGGTTT")
	hits, err := Search(&search.CPU{Workers: 2}, asm, req("NNNNNNNGG", "GATTACANN", 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].BulgeType != None || hits[0].Pos != 3 {
		t.Fatalf("hits = %+v", hits)
	}
}

// TestSearchDNABulge plants a site with one extra genomic base inside the
// guide match: GATT+X+ACA followed by GG. A plain search cannot find it; a
// DNA-bulge search must.
func TestSearchDNABulge(t *testing.T) {
	asm := asmFrom("CCCGATTGACAGGTTTT") // GATT g ACA GG at pos 3
	base := req("NNNNNNNGG", "GATTACANN", 0)

	plain, err := Search(&search.CPU{}, asm, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range plain {
		if h.BulgeType == None && h.Mismatches == 0 {
			t.Fatalf("plain search should not find the bulged site exactly: %+v", h)
		}
	}

	hits, err := Search(&search.CPU{}, asm, base, Options{MaxDNABulge: 1})
	if err != nil {
		t.Fatal(err)
	}
	var found *Hit
	for i := range hits {
		if hits[i].BulgeType == DNA && hits[i].Mismatches == 0 {
			found = &hits[i]
		}
	}
	if found == nil {
		t.Fatalf("DNA-bulge site not found; hits = %+v", hits)
	}
	if found.BulgeSize != 1 || found.Pos != 3 {
		t.Errorf("bulge hit = %+v", *found)
	}
}

// TestSearchRNABulge plants a site missing one guide base: GAT_ACA (T
// deleted) followed by GG.
func TestSearchRNABulge(t *testing.T) {
	asm := asmFrom("CCCGATACAGGTTTT") // GATACA GG: guide GATTACA minus one T
	base := req("NNNNNNNGG", "GATTACANN", 0)

	hits, err := Search(&search.CPU{}, asm, base, Options{MaxRNABulge: 1})
	if err != nil {
		t.Fatal(err)
	}
	var found *Hit
	for i := range hits {
		if hits[i].BulgeType == RNA && hits[i].Mismatches == 0 {
			found = &hits[i]
		}
	}
	if found == nil {
		t.Fatalf("RNA-bulge site not found; hits = %+v", hits)
	}
	if found.BulgeSize != 1 {
		t.Errorf("bulge hit = %+v", *found)
	}
}

// TestDedupPrefersSmallerBulge: a perfect plain site also matches many
// bulge variants; the merged output must report it once, as bulge-free.
func TestDedupPrefersSmallerBulge(t *testing.T) {
	asm := asmFrom("ACCGATTACAGGTTT")
	base := req("NNNNNNNGG", "GATTACANN", 1)
	hits, err := Search(&search.CPU{}, asm, base, Options{MaxDNABulge: 2, MaxRNABulge: 1})
	if err != nil {
		t.Fatal(err)
	}
	plainCount := 0
	for _, h := range hits {
		if h.Pos == 3 && h.Dir == '+' && h.BulgeType == None {
			plainCount++
		}
	}
	if plainCount != 1 {
		t.Errorf("perfect site reported %d times as bulge-free, want 1 (hits: %+v)", plainCount, hits)
	}
}

func TestSearchSortedAndEngines(t *testing.T) {
	asm := asmFrom("CCCGATTGACAGGTTTACCGATTACAGGTT")
	base := req("NNNNNNNGG", "GATTACANN", 1)
	hits, err := Search(&search.CPU{Workers: 2}, asm, base, Options{MaxDNABulge: 1, MaxRNABulge: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hits); i++ {
		a, b := hits[i-1], hits[i]
		if a.QueryIndex > b.QueryIndex ||
			(a.QueryIndex == b.QueryIndex && a.SeqName == b.SeqName && a.Pos > b.Pos) {
			t.Fatal("hits not sorted")
		}
	}
}

func TestSearchErrors(t *testing.T) {
	asm := asmFrom("ACGT")
	if _, err := Search(nil, asm, req("NGG", "ANN", 0), Options{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := Search(&search.CPU{}, asm, &search.Request{}, Options{}); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestTypeString(t *testing.T) {
	if None.String() != "none" || DNA.String() != "DNA" || RNA.String() != "RNA" {
		t.Error("Type strings wrong")
	}
}

func TestHitString(t *testing.T) {
	h := Hit{BulgeType: DNA, BulgeSize: 2, BulgePos: 5}
	h.SeqName = "chr1"
	if !strings.Contains(h.String(), "DNA:2@5") {
		t.Errorf("Hit.String = %q", h.String())
	}
	plain := Hit{}
	plain.SeqName = "chr1"
	if strings.Contains(plain.String(), "none") {
		t.Errorf("plain hit should not mention bulge: %q", plain.String())
	}
}

// TestSearchWithSimEngines: the bulge search composes with the simulator
// engines too, and all engines agree.
func TestSearchWithSimEngines(t *testing.T) {
	asm := asmFrom("CCCGATTGACAGGTTTACCGATTACAGGTTCCCGATACAGGTT")
	base := req("NNNNNNNGG", "GATTACANN", 1)
	opts := Options{MaxDNABulge: 1, MaxRNABulge: 1}
	want, err := Search(&search.CPU{}, asm, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no hits")
	}
	engines := []search.Engine{
		&search.SimCL{Device: gpu.New(device.MI60(), gpu.WithWorkers(2)), Variant: kernels.Base},
		&search.SimSYCL{Device: gpu.New(device.MI100(), gpu.WithWorkers(2)), Variant: kernels.Opt3, WorkGroupSize: 16},
	}
	for _, eng := range engines {
		got, err := Search(eng, asm, base, opts)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d hits, want %d", eng.Name(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: hit %d = %+v, want %+v", eng.Name(), i, got[i], want[i])
			}
		}
	}
}
