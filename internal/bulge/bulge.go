// Package bulge extends the off-target search with DNA- and RNA-bulge
// tolerance: the paper notes (§II.A) that Cas-OFFinder "can also predict
// off-target sites with deletions or insertions". A DNA bulge of size s is
// an off-target site carrying s extra genomic bases opposite the guide; an
// RNA bulge is a site missing s bases, leaving guide bases unpaired.
//
// The implementation follows the upstream cas-offinder-bulge strategy:
// each bulge size becomes one derived search whose pattern is lengthened
// (DNA bulge) or shortened (RNA bulge) and whose query set enumerates the
// possible bulge positions inside the guide core; results are merged,
// deduplicated and annotated with the bulge geometry.
package bulge

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"casoffinder/internal/genome"
	"casoffinder/internal/search"
)

// Type classifies a hit's bulge.
type Type int

// Bulge types.
const (
	// None marks a plain (bulge-free) off-target site.
	None Type = iota
	// DNA marks extra bases on the genomic side.
	DNA
	// RNA marks unpaired guide bases (missing genomic bases).
	RNA
)

func (t Type) String() string {
	switch t {
	case None:
		return "none"
	case DNA:
		return "DNA"
	case RNA:
		return "RNA"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Hit is an off-target site annotated with its bulge geometry.
type Hit struct {
	search.Hit
	// BulgeType is None, DNA or RNA.
	BulgeType Type
	// BulgeSize is the number of bulged bases (0 for None).
	BulgeSize int
	// BulgePos is the 0-based offset within the guide core after which the
	// bulge sits (meaningful only when BulgeType != None).
	BulgePos int
}

// Options bound the bulge search.
type Options struct {
	// MaxDNABulge is the largest DNA-bulge size to search (0 disables).
	MaxDNABulge int
	// MaxRNABulge is the largest RNA-bulge size to search (0 disables).
	MaxRNABulge int
}

// guideLayout splits a query guide into its contiguous core (the non-N
// prefix or suffix region aligned to the pattern's N region) and PAM
// placement.
type guideLayout struct {
	coreStart, coreEnd int // [coreStart, coreEnd) is the guide core
}

func layoutOf(pattern, guide string) (guideLayout, error) {
	// Guide core = positions where the guide is not N. It must be one
	// contiguous run for bulge enumeration to be well defined.
	start, end := -1, -1
	for i := 0; i < len(guide); i++ {
		if guide[i] != 'N' && guide[i] != 'n' {
			if start == -1 {
				start = i
			}
			end = i + 1
		}
	}
	if start == -1 {
		return guideLayout{}, errors.New("bulge: guide has no core (all N)")
	}
	for i := start; i < end; i++ {
		if guide[i] == 'N' || guide[i] == 'n' {
			return guideLayout{}, fmt.Errorf("bulge: guide core is not contiguous at position %d", i)
		}
	}
	return guideLayout{coreStart: start, coreEnd: end}, nil
}

// variantKey maps a derived query back to its origin.
type variantKey struct {
	origQuery int
	bulgeType Type
	size      int
	pos       int
}

// derived is one same-length search generated for a bulge size.
type derived struct {
	req  *search.Request
	keys []variantKey // parallel to req.Queries
}

// expand builds the derived searches for the base request under opts.
func expand(base *search.Request, opts Options) ([]derived, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxDNABulge < 0 || opts.MaxRNABulge < 0 {
		return nil, errors.New("bulge: negative bulge size")
	}
	layouts := make([]guideLayout, len(base.Queries))
	for i, q := range base.Queries {
		l, err := layoutOf(base.Pattern, q.Guide)
		if err != nil {
			return nil, fmt.Errorf("bulge: query %d: %w", i, err)
		}
		layouts[i] = l
	}

	var out []derived

	// Size 0: the plain search.
	plain := derived{req: &search.Request{
		Pattern:    base.Pattern,
		ChunkBytes: base.ChunkBytes,
	}}
	for i, q := range base.Queries {
		plain.req.Queries = append(plain.req.Queries, q)
		plain.keys = append(plain.keys, variantKey{origQuery: i, bulgeType: None})
	}
	out = append(out, plain)

	upper := strings.ToUpper(base.Pattern)

	// DNA bulges: insert s wildcard positions into both pattern and guide.
	// The pattern is N across the guide core, so every insertion position
	// yields the same pattern; the guides enumerate positions.
	for s := 1; s <= opts.MaxDNABulge; s++ {
		d := derived{req: &search.Request{ChunkBytes: base.ChunkBytes}}
		for qi, q := range base.Queries {
			l := layouts[qi]
			guide := strings.ToUpper(q.Guide)
			for pos := l.coreStart + 1; pos < l.coreEnd; pos++ {
				ng := guide[:pos] + strings.Repeat("N", s) + guide[pos:]
				d.req.Queries = append(d.req.Queries, search.Query{Guide: ng, MaxMismatches: q.MaxMismatches})
				d.keys = append(d.keys, variantKey{origQuery: qi, bulgeType: DNA, size: s, pos: pos - l.coreStart})
			}
		}
		if len(d.req.Queries) == 0 {
			continue
		}
		// Insert the N run anywhere inside the core of the pattern; the
		// core is all N there, so position 1 after the core start works
		// for every guide.
		l0 := layouts[0]
		d.req.Pattern = upper[:l0.coreStart+1] + strings.Repeat("N", s) + upper[l0.coreStart+1:]
		out = append(out, d)
	}

	// RNA bulges: delete s guide-core bases; the site is s bases shorter.
	for s := 1; s <= opts.MaxRNABulge; s++ {
		d := derived{req: &search.Request{ChunkBytes: base.ChunkBytes}}
		for qi, q := range base.Queries {
			l := layouts[qi]
			guide := strings.ToUpper(q.Guide)
			if l.coreEnd-l.coreStart <= s+1 {
				continue // core too short to lose s bases
			}
			seen := map[string]bool{}
			for pos := l.coreStart + 1; pos+s < l.coreEnd; pos++ {
				ng := guide[:pos] + guide[pos+s:]
				if seen[ng] {
					continue // identical deletion (repeat region)
				}
				seen[ng] = true
				d.req.Queries = append(d.req.Queries, search.Query{Guide: ng, MaxMismatches: q.MaxMismatches})
				d.keys = append(d.keys, variantKey{origQuery: qi, bulgeType: RNA, size: s, pos: pos - l.coreStart})
			}
		}
		if len(d.req.Queries) == 0 {
			continue
		}
		l0 := layouts[0]
		d.req.Pattern = upper[:l0.coreStart] + upper[l0.coreStart+s:]
		out = append(out, d)
	}
	return out, nil
}

// Search runs the bulge-tolerant search: the plain request plus one derived
// search per bulge size, merged into annotated, deduplicated hits sorted
// like search results. All queries of the base request must share one
// pattern layout (as in the Cas-OFFinder input format).
func Search(eng search.Engine, asm *genome.Assembly, base *search.Request, opts Options) ([]Hit, error) {
	if eng == nil {
		return nil, errors.New("bulge: nil engine")
	}
	deriveds, err := expand(base, opts)
	if err != nil {
		return nil, err
	}
	type dedupKey struct {
		query int
		seq   string
		pos   int
		dir   byte
		site  string
	}
	best := map[dedupKey]Hit{}
	for _, d := range deriveds {
		hits, err := eng.Run(asm, d.req)
		if err != nil {
			return nil, fmt.Errorf("bulge: derived search (pattern %q): %w", d.req.Pattern, err)
		}
		for _, h := range hits {
			key := d.keys[h.QueryIndex]
			bh := Hit{
				Hit:       h,
				BulgeType: key.bulgeType,
				BulgeSize: key.size,
				BulgePos:  key.pos,
			}
			bh.QueryIndex = key.origQuery
			dk := dedupKey{query: key.origQuery, seq: h.SeqName, pos: h.Pos, dir: h.Dir, site: h.Site}
			if prev, ok := best[dk]; ok && !betterThan(bh, prev) {
				continue
			}
			best[dk] = bh
		}
	}
	out := make([]Hit, 0, len(best))
	for _, h := range best {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.QueryIndex != b.QueryIndex {
			return a.QueryIndex < b.QueryIndex
		}
		if a.SeqName != b.SeqName {
			return a.SeqName < b.SeqName
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		if a.BulgeSize != b.BulgeSize {
			return a.BulgeSize < b.BulgeSize
		}
		if a.BulgeType != b.BulgeType {
			return a.BulgeType < b.BulgeType
		}
		if a.Mismatches != b.Mismatches {
			return a.Mismatches < b.Mismatches
		}
		if a.BulgePos != b.BulgePos {
			return a.BulgePos < b.BulgePos
		}
		return a.Site < b.Site
	})
	return out, nil
}

// betterThan prefers smaller bulges, then fewer mismatches.
func betterThan(a, b Hit) bool {
	if a.BulgeSize != b.BulgeSize {
		return a.BulgeSize < b.BulgeSize
	}
	return a.Mismatches < b.Mismatches
}

// String formats a hit like a cas-offinder-bulge output line.
func (h Hit) String() string {
	if h.BulgeType == None {
		return h.Hit.String()
	}
	return fmt.Sprintf("%s\t%s:%d@%d", h.Hit.String(), h.BulgeType, h.BulgeSize, h.BulgePos)
}
