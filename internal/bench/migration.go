package bench

import (
	"fmt"
	"strings"
)

// The paper's §III explains the migration through five side-by-side
// contrasts (Tables II-VI). RenderMigrationTables regenerates them with the
// reproduction's two live APIs in place of the C/C++ source: every row
// names the OpenCL call and the SYCL construct that replaced it, exactly as
// implemented (and unit-tested) in internal/opencl and internal/sycl.

// migrationRow is one contrasted pair.
type migrationRow struct {
	opencl string
	sycl   string
}

type migrationTable struct {
	title string
	rows  []migrationRow
}

func migrationTables() []migrationTable {
	return []migrationTable{
		{
			title: "Table II: memory management",
			rows: []migrationRow{
				{"d = clCreateBuffer(ctx, flags, BS, NULL, err)  -> opencl.CreateBuffer[T](ctx, flags, n, nil)",
					"buffer<T,D> d(WS)  -> sycl.NewBuffer[T](ws)"},
				{"d = clCreateBuffer(ctx, flags, BS, h, err)  -> opencl.CreateBuffer(ctx, flags|MemCopyHostPtr, n, host)",
					"buffer<T,D> d(h, WS)  -> sycl.NewBufferFrom(host)"},
				{"clReleaseMemObject(d)  -> Mem.Release (explicit, double release errors)",
					"handled by the runtime  -> Buffer.Destroy (waits, writes back, idempotent)"},
			},
		},
		{
			title: "Table III: data movement between host and device",
			rows: []migrationRow{
				{"clEnqueueReadBuffer(q, src, blocking, offset, cb, dst, ...)  -> opencl.EnqueueReadBuffer(q, src, true, off, n, dst)",
					"auto d = dst.get_access<sycl_read>(cgh, range, offset); cgh.copy(d, src)  -> sycl.AccessRange + sycl.CopyFromDevice"},
				{"clEnqueueWriteBuffer(q, dst, blocking, offset, cb, src, ...)  -> opencl.EnqueueWriteBuffer(q, dst, true, off, n, src)",
					"auto d = dst.get_access<sycl_write>(cgh, range, offset); cgh.copy(src, d)  -> sycl.AccessRange + sycl.CopyToDevice"},
			},
		},
		{
			title: "Table IV: coordinate index and barrier",
			rows: []migrationRow{
				{"get_global_id(0)  -> gpu.Item.GlobalID(0)", "item.get_global_id(0)  -> sycl.NDItem.GetGlobalID(0)"},
				{"get_group_id(0)  -> gpu.Item.GroupID(0)", "item.get_group(0)  -> sycl.NDItem.GetGroup(0)"},
				{"get_local_size(0)  -> gpu.Item.LocalRange(0)", "item.get_local_range(0)  -> sycl.NDItem.GetLocalRange(0)"},
				{"barrier(CLK_LOCAL_MEM_FENCE)  -> gpu.Item.Barrier()", "item.barrier(access::fence_space::local_space)  -> sycl.NDItem.Barrier(sycl.LocalSpace)"},
			},
		},
		{
			title: "Table V: atomic increment",
			rows: []migrationRow{
				{"#pragma OPENCL EXTENSION cl_khr_global_int32_base_atomics : enable; old = atomic_inc(var)  -> gpu.Item.AtomicIncUint32(&var)",
					"atomic_ref<T, relaxed, device, global_space> obj(val); obj.fetch_add(1)  -> sycl.AtomicInc(item, &val) / sycl.NewAtomicRef(...).FetchAdd(1)"},
			},
		},
		{
			title: "Table VI: executing the finder kernel",
			rows: []migrationRow{
				{"__kernel void finder(__global char* chr, __constant char* pat, ..., __local char* l_pat, __local int* l_pat_index)  -> kernels.Finder(it, args, lPat, lPatIndex)",
					"void finder(nd_item<1>& item, char* chr, char* pat, ...)  -> the same kernels.Finder body called from the lambda"},
				{"clSetKernelArg(k, 0, ...); clSetKernelArg(k, 1, ...); ...  -> Kernel.SetArg / Kernel.SetArgLocal per slot",
					"variables captured by the lambda  -> accessors and local accessors captured by the command-group closure"},
				{"clEnqueueNDRangeKernel(q, k, 1, NULL, gws, lws, ...)  -> CommandQueue.EnqueueNDRangeKernel(k, gws, lws)",
					"q.submit([&](handler& h){ h.parallel_for(nd_range<1>(gws, lws), [=](nd_item<1> it){ finder(it, ...); }); })  -> Queue.Submit + Handler.ParallelFor"},
			},
		},
	}
}

// RenderMigrationTables renders Tables II-VI as text.
func RenderMigrationTables() string {
	var b strings.Builder
	for _, t := range migrationTables() {
		fmt.Fprintf(&b, "%s\n", t.title)
		for _, r := range t.rows {
			fmt.Fprintf(&b, "  OpenCL: %s\n", r.opencl)
			fmt.Fprintf(&b, "  SYCL:   %s\n\n", r.sycl)
		}
	}
	return b.String()
}
