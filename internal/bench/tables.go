package bench

import (
	"fmt"
	"strings"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/isa"
	"casoffinder/internal/kernels"
	"casoffinder/internal/opencl"
	"casoffinder/internal/sycl"
)

// Table8Row is one device row of Table VIII: elapsed OpenCL vs SYCL time
// per dataset.
type Table8Row struct {
	Device  string
	Dataset string
	OpenCL  float64
	SYCL    float64
}

// Speedup returns the OpenCL/SYCL elapsed ratio.
func (r Table8Row) Speedup() float64 { return r.OpenCL / r.SYCL }

// Table8 measures every (device, dataset) cell of Table VIII with the
// baseline comparer.
func Table8(scaleBases int) ([]Table8Row, error) {
	var rows []Table8Row
	for _, wl := range Workloads(scaleBases) {
		for _, spec := range device.All() {
			ocl, err := Measure(spec, OpenCL, kernels.Base, wl)
			if err != nil {
				return nil, err
			}
			syc, err := Measure(spec, SYCL, kernels.Base, wl)
			if err != nil {
				return nil, err
			}
			if ocl.Hits != syc.Hits {
				return nil, fmt.Errorf("bench: %s/%s: OpenCL found %d hits, SYCL %d",
					spec.Name, wl.Name, ocl.Hits, syc.Hits)
			}
			rows = append(rows, Table8Row{
				Device:  spec.Name,
				Dataset: wl.Name,
				OpenCL:  ocl.ElapsedSeconds(),
				SYCL:    syc.ElapsedSeconds(),
			})
		}
	}
	return rows, nil
}

// Table9Row is one device row of Table IX: elapsed SYCL time with the
// baseline vs the optimized (opt3) comparer.
type Table9Row struct {
	Device  string
	Dataset string
	Base    float64
	Opt     float64
}

// Speedup returns the base/opt elapsed ratio.
func (r Table9Row) Speedup() float64 { return r.Base / r.Opt }

// Table9 measures every (device, dataset) cell of Table IX.
func Table9(scaleBases int) ([]Table9Row, error) {
	var rows []Table9Row
	for _, wl := range Workloads(scaleBases) {
		for _, spec := range device.All() {
			base, err := Measure(spec, SYCL, kernels.Base, wl)
			if err != nil {
				return nil, err
			}
			opt, err := Measure(spec, SYCL, kernels.Opt3, wl)
			if err != nil {
				return nil, err
			}
			if base.Hits != opt.Hits {
				return nil, fmt.Errorf("bench: %s/%s: base found %d hits, opt %d",
					spec.Name, wl.Name, base.Hits, opt.Hits)
			}
			rows = append(rows, Table9Row{
				Device:  spec.Name,
				Dataset: wl.Name,
				Base:    base.ElapsedSeconds(),
				Opt:     opt.ElapsedSeconds(),
			})
		}
	}
	return rows, nil
}

// Fig2Point is one bar of Fig. 2: the comparer kernel time for one
// (device, dataset, variant) combination.
type Fig2Point struct {
	Device  string
	Dataset string
	Variant kernels.ComparerVariant
	Seconds float64
}

// Fig2 measures the comparer kernel time for every optimization step on
// every device and dataset, the series of Fig. 2.
func Fig2(scaleBases int) ([]Fig2Point, error) {
	var points []Fig2Point
	for _, wl := range Workloads(scaleBases) {
		for _, spec := range device.All() {
			for _, v := range kernels.Variants() {
				m, err := Measure(spec, SYCL, v, wl)
				if err != nil {
					return nil, err
				}
				points = append(points, Fig2Point{
					Device:  spec.Name,
					Dataset: wl.Name,
					Variant: v,
					Seconds: m.ComparerSeconds,
				})
			}
		}
	}
	return points, nil
}

// RenderTable1 renders the Table I programming-step contrast from the two
// live frontends.
func RenderTable1() string {
	var b strings.Builder
	ocl := opencl.ProgrammingSteps()
	syc := sycl.ProgrammingSteps()
	fmt.Fprintf(&b, "Table I: programming steps — OpenCL (%d) vs SYCL (%d)\n", len(ocl), len(syc))
	n := len(ocl)
	if len(syc) > n {
		n = len(syc)
	}
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(ocl) {
			l = ocl[i]
		}
		if i < len(syc) {
			r = syc[i]
		}
		fmt.Fprintf(&b, "%2d  %-72s | %s\n", i+1, l, r)
	}
	return b.String()
}

// RenderTable7 renders the device registry as Table VII.
func RenderTable7() string {
	var b strings.Builder
	b.WriteString("Table VII: major specifications of the GPUs\n")
	fmt.Fprintf(&b, "%-7s %10s %10s %10s %7s %9s %12s\n",
		"Device", "Mem (GB)", "GPU (MHz)", "Mem (MHz)", "Cores", "L2 (MB)", "BW (GB/s)")
	for _, s := range device.All() {
		fmt.Fprintf(&b, "%-7s %10d %10d %10d %7d %9d %12.0f\n",
			s.Name, s.GlobalMemBytes>>30, s.GPUClockMHz, s.MemClockMHz,
			s.Cores, s.L2CacheBytes>>20, s.PeakBWGBs)
	}
	return b.String()
}

// RenderTable8 renders Table VIII rows.
func RenderTable8(rows []Table8Row) string {
	var b strings.Builder
	b.WriteString("Table VIII: elapsed time of the OpenCL and SYCL applications (projected seconds)\n")
	fmt.Fprintf(&b, "%-8s %-7s %9s %9s %9s\n", "Dataset", "Device", "OCL", "SYCL", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-7s %9.1f %9.1f %9.2f\n", r.Dataset, r.Device, r.OpenCL, r.SYCL, r.Speedup())
	}
	return b.String()
}

// RenderTable9 renders Table IX rows.
func RenderTable9(rows []Table9Row) string {
	var b strings.Builder
	b.WriteString("Table IX: elapsed time of the optimized SYCL application (projected seconds)\n")
	fmt.Fprintf(&b, "%-8s %-7s %9s %9s %9s\n", "Dataset", "Device", "base", "opt", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-7s %9.1f %9.1f %9.2f\n", r.Dataset, r.Device, r.Base, r.Opt, r.Speedup())
	}
	return b.String()
}

// RenderTable10 renders the ISA metrics of Table X.
func RenderTable10(spec device.Spec, plen int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table X: resource usage and occupancy of the comparer kernels (device %s)\n", spec.Name)
	fmt.Fprintf(&b, "%-12s %6s %6s %6s %6s %6s\n", "Metric", "base", "opt1", "opt2", "opt3", "opt4")
	rows := isa.TableX(spec, plen)
	cols := func(f func(isa.Metrics) int) []any {
		out := make([]any, 0, len(rows))
		for _, r := range rows {
			out = append(out, f(r))
		}
		return out
	}
	fmt.Fprintf(&b, "%-12s %6d %6d %6d %6d %6d\n", append([]any{"Code length"}, cols(func(m isa.Metrics) int { return m.CodeBytes })...)...)
	fmt.Fprintf(&b, "%-12s %6d %6d %6d %6d %6d\n", append([]any{"#SGPRs"}, cols(func(m isa.Metrics) int { return m.SGPRs })...)...)
	fmt.Fprintf(&b, "%-12s %6d %6d %6d %6d %6d\n", append([]any{"#VGPRs"}, cols(func(m isa.Metrics) int { return m.VGPRs })...)...)
	fmt.Fprintf(&b, "%-12s %6d %6d %6d %6d %6d\n", append([]any{"Occupancy"}, cols(func(m isa.Metrics) int { return m.Occupancy })...)...)
	b.WriteString("(paper's #SGPRs/#VGPRs rows are swapped relative to its prose; we report the corrected labels)\n")
	return b.String()
}

// RenderFig2 renders the Fig. 2 series as text bars grouped by dataset and
// device.
func RenderFig2(points []Fig2Point) string {
	var b strings.Builder
	b.WriteString("Fig. 2: comparer kernel time across optimizations (projected seconds)\n")
	byGroup := make(map[string][]Fig2Point)
	var order []string
	for _, p := range points {
		key := p.Dataset + " / " + p.Device
		if _, ok := byGroup[key]; !ok {
			order = append(order, key)
		}
		byGroup[key] = append(byGroup[key], p)
	}
	for _, key := range order {
		fmt.Fprintf(&b, "%s\n", key)
		group := byGroup[key]
		var max float64
		for _, p := range group {
			if p.Seconds > max {
				max = p.Seconds
			}
		}
		for _, p := range group {
			bar := int(p.Seconds / max * 48)
			fmt.Fprintf(&b, "  %-5s %7.1fs %s\n", p.Variant, p.Seconds, strings.Repeat("#", bar))
		}
	}
	return b.String()
}
