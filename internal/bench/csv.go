package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers for the measured artifacts, for plotting Table VIII/IX and
// Fig. 2 outside the text renderers.

// WriteTable8CSV writes Table VIII rows as CSV.
func WriteTable8CSV(w io.Writer, rows []Table8Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "device", "opencl_s", "sycl_s", "speedup"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset, r.Device,
			strconv.FormatFloat(r.OpenCL, 'f', 3, 64),
			strconv.FormatFloat(r.SYCL, 'f', 3, 64),
			strconv.FormatFloat(r.Speedup(), 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable9CSV writes Table IX rows as CSV.
func WriteTable9CSV(w io.Writer, rows []Table9Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "device", "base_s", "opt_s", "speedup"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset, r.Device,
			strconv.FormatFloat(r.Base, 'f', 3, 64),
			strconv.FormatFloat(r.Opt, 'f', 3, 64),
			strconv.FormatFloat(r.Speedup(), 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig2CSV writes Fig. 2 points as CSV.
func WriteFig2CSV(w io.Writer, points []Fig2Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "device", "variant", "seconds"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, p := range points {
		rec := []string{
			p.Dataset, p.Device, p.Variant.String(),
			strconv.FormatFloat(p.Seconds, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
