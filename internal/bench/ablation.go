package bench

import (
	"fmt"
	"strings"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/isa"
	"casoffinder/internal/kernels"
	"casoffinder/internal/search"
	"casoffinder/internal/timing"
)

// Ablation experiments for the design choices DESIGN.md calls out. They go
// beyond the paper's figures: the work-group-size sweep isolates the
// mechanism behind the Table VIII OpenCL/SYCL gap (the paper fixes SYCL at
// 256 and lets the OpenCL runtime choose), and the chunk-size sweep probes
// the host-pipeline trade-off behind the "chunks that can fit the memory of
// a heterogeneous device" design of §II.A.

// WGSweepPoint is the projected comparer kernel time for one work-group
// size.
type WGSweepPoint struct {
	Device        string
	WorkGroupSize int
	Seconds       float64
}

// WGSweep measures the baseline comparer under explicit work-group sizes on
// the SYCL engine, hg19 workload.
func WGSweep(scaleBases int, sizes []int) ([]WGSweepPoint, error) {
	wl := HG19Workload(scaleBases)
	asm, err := genome.Generate(wl.Profile)
	if err != nil {
		return nil, err
	}
	plen := len(wl.Request.Pattern)
	var points []WGSweepPoint
	for _, spec := range device.All() {
		cm := isa.ComparerMetrics(kernels.Base, spec, plen)
		for _, wg := range sizes {
			eng := &search.SimSYCL{Device: gpu.New(spec), Variant: kernels.Base, WorkGroupSize: wg}
			if _, err := eng.Run(asm, wl.Request); err != nil {
				return nil, fmt.Errorf("bench: wg sweep %d on %s: %w", wg, spec.Name, err)
			}
			p := eng.LastProfile()
			scale := float64(wl.Profile.FullScaleBases) / float64(wl.Profile.TotalBases)
			var sec float64
			for name, stats := range p.Kernels {
				if name == "finder" {
					continue
				}
				scaled := timing.ScaleStats(stats, scale)
				sec += timing.KernelSeconds(timing.KernelConfig{
					Spec:                spec,
					OccupancyWaves:      cm.Occupancy,
					VGPRs:               cm.VGPRs,
					WorkGroupSize:       wg,
					LeaderPrefetch:      true,
					PrefetchOpsPerGroup: 4 * plen,
					ScatterFactor:       1.0,
				}, &scaled)
			}
			points = append(points, WGSweepPoint{Device: spec.Name, WorkGroupSize: wg, Seconds: sec})
		}
	}
	return points, nil
}

// RenderWGSweep renders the sweep.
func RenderWGSweep(points []WGSweepPoint) string {
	var b strings.Builder
	b.WriteString("Ablation: comparer kernel time vs work-group size (baseline kernel, hg19)\n")
	fmt.Fprintf(&b, "%-7s %6s %10s\n", "Device", "WG", "seconds")
	for _, p := range points {
		fmt.Fprintf(&b, "%-7s %6d %10.2f\n", p.Device, p.WorkGroupSize, p.Seconds)
	}
	b.WriteString("(larger groups amortise the serialised leader staging: the Table VIII mechanism)\n")
	return b.String()
}

// ChunkSweepPoint is the projected host-side time for one chunk size.
type ChunkSweepPoint struct {
	ChunkBytes  int64
	Chunks      int
	HostSeconds float64
}

// ChunkSweep projects the host pipeline cost of scanning a full hg19-size
// assembly with different device chunk budgets.
func ChunkSweep(chunkSizes []int64) ([]ChunkSweepPoint, error) {
	profile := genome.HG19Like(1 << 20)
	plen := len(ExamplePattern)
	var totalW float64
	for _, c := range profile.Chromosomes {
		totalW += c.Weight
	}
	lens := make([]int, 0, len(profile.Chromosomes))
	for _, c := range profile.Chromosomes {
		lens = append(lens, int(float64(profile.FullScaleBases)*c.Weight/totalW))
	}
	var points []ChunkSweepPoint
	for _, cb := range chunkSizes {
		chunker := &genome.Chunker{ChunkBytes: int(cb), PatternLen: plen}
		n, err := chunker.CountChunks(lens)
		if err != nil {
			return nil, err
		}
		host := timing.HostSeconds(timing.HostCounters{
			BytesStaged: profile.FullScaleBases,
			BytesRead:   profile.FullScaleBases / 50,
			Chunks:      int64(n),
			Entries:     100_000,
		})
		points = append(points, ChunkSweepPoint{ChunkBytes: cb, Chunks: n, HostSeconds: host})
	}
	return points, nil
}

// RenderChunkSweep renders the sweep.
func RenderChunkSweep(points []ChunkSweepPoint) string {
	var b strings.Builder
	b.WriteString("Ablation: host pipeline cost vs device chunk size (hg19 full scale)\n")
	fmt.Fprintf(&b, "%12s %8s %10s\n", "chunk bytes", "chunks", "host sec")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %8d %10.2f\n", p.ChunkBytes, p.Chunks, p.HostSeconds)
	}
	return b.String()
}
