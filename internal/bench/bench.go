// Package bench is the experiment harness: it reruns the paper's evaluation
// (§IV) on the simulator and regenerates every table and figure — Table VIII
// (OpenCL vs SYCL elapsed time), Table IX (baseline vs optimized SYCL),
// Table X (ISA metrics) and Fig. 2 (comparer kernel time across the
// optimization ladder) — plus the environment tables I and VII.
//
// Measurements run the full functional pipeline on a scaled-down synthetic
// assembly (hg19-like / hg38-like profiles), then project the collected
// per-kernel access statistics to the full assembly size through the
// analytic timing model. Shapes (speedups, deltas, crossovers), not
// absolute seconds, are the reproduced quantity; EXPERIMENTS.md records
// both sides.
package bench

import (
	"fmt"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/isa"
	"casoffinder/internal/kernels"
	"casoffinder/internal/search"
	"casoffinder/internal/timing"
)

// API selects the host programming model of a measurement.
type API string

// The two applications of the paper.
const (
	OpenCL API = "OpenCL"
	SYCL   API = "SYCL"
)

// ExamplePattern and ExampleQueries reproduce the upstream example input
// (cas-offinder README, reference [17]): an SpCas9 NRG PAM scaffold and two
// 20-nt guides searched with up to 5 mismatches.
const ExamplePattern = "NNNNNNNNNNNNNNNNNNNNNRG"

// ExampleQueries returns the example guide queries.
func ExampleQueries() []search.Query {
	return []search.Query{
		{Guide: "GGCCGACCTGTCGCTGACGCNNN", MaxMismatches: 5},
		{Guide: "CGCCAGCGTCAGCGACAGGTNNN", MaxMismatches: 5},
	}
}

// Workload is one dataset of the evaluation.
type Workload struct {
	// Name labels the dataset ("hg19", "hg38").
	Name string
	// Profile generates the synthetic stand-in assembly.
	Profile genome.Profile
	// Request is the search input.
	Request *search.Request
}

// DefaultScaleBases is the generated assembly size measurements run on;
// statistics are projected to Profile.FullScaleBases.
const DefaultScaleBases = 1 << 20

// FullScaleChunkBytes is the chunk size the application would use against a
// full assembly on a real device (a fraction of device memory), used to
// project the host-side chunk count.
const FullScaleChunkBytes = 512 << 20

// HG19Workload returns the hg19 dataset at the given generated size.
func HG19Workload(scaleBases int) Workload {
	return Workload{
		Name:    "hg19",
		Profile: genome.HG19Like(scaleBases),
		Request: &search.Request{
			Pattern:    ExamplePattern,
			Queries:    ExampleQueries(),
			ChunkBytes: scaleBases / 4,
		},
	}
}

// HG38Workload returns the hg38 dataset at the given generated size.
func HG38Workload(scaleBases int) Workload {
	return Workload{
		Name:    "hg38",
		Profile: genome.HG38Like(scaleBases),
		Request: &search.Request{
			Pattern:    ExamplePattern,
			Queries:    ExampleQueries(),
			ChunkBytes: scaleBases / 4,
		},
	}
}

// Workloads returns both datasets of the evaluation.
func Workloads(scaleBases int) []Workload {
	return []Workload{HG19Workload(scaleBases), HG38Workload(scaleBases)}
}

// Measurement is the projected result of one (device, API, variant,
// dataset) cell.
type Measurement struct {
	Device  device.Spec
	API     API
	Variant kernels.ComparerVariant
	Dataset string

	// FinderSeconds and ComparerSeconds are the projected full-assembly
	// kernel times; HostSeconds the projected host-side time.
	FinderSeconds   float64
	ComparerSeconds float64
	HostSeconds     float64

	// FinderBreakdown and ComparerBreakdown expose the model terms behind
	// the kernel times.
	FinderBreakdown   timing.Breakdown
	ComparerBreakdown timing.Breakdown

	// Hits is the functional result count on the scaled assembly (engines
	// are verified elsewhere to agree; it is recorded for sanity).
	Hits int
}

// ElapsedSeconds is the projected end-to-end time (kernel + host), the
// quantity Tables VIII and IX report.
func (m Measurement) ElapsedSeconds() float64 {
	return m.FinderSeconds + m.ComparerSeconds + m.HostSeconds
}

// KernelSeconds is the total kernel time.
func (m Measurement) KernelSeconds() float64 { return m.FinderSeconds + m.ComparerSeconds }

// Measure runs the workload on the simulator with the given device, API
// and comparer variant, then projects to full assembly scale.
func Measure(spec device.Spec, api API, variant kernels.ComparerVariant, wl Workload) (*Measurement, error) {
	asm, err := genome.Generate(wl.Profile)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	dev := gpu.New(spec)

	var (
		eng  search.Engine
		prof func() *search.Profile
	)
	switch api {
	case OpenCL:
		e := &search.SimCL{Device: dev, Variant: variant}
		eng, prof = e, e.LastProfile
	case SYCL:
		e := &search.SimSYCL{Device: dev, Variant: variant}
		eng, prof = e, e.LastProfile
	default:
		return nil, fmt.Errorf("bench: unknown API %q", api)
	}

	hits, err := eng.Run(asm, wl.Request)
	if err != nil {
		return nil, fmt.Errorf("bench: %s on %s: %w", api, spec.Name, err)
	}
	p := prof()

	scale := float64(wl.Profile.FullScaleBases) / float64(wl.Profile.TotalBases)
	plen := len(wl.Request.Pattern)

	m := &Measurement{
		Device:  spec,
		API:     api,
		Variant: variant,
		Dataset: wl.Name,
		Hits:    len(hits),
	}

	cm := isa.ComparerMetrics(variant, spec, plen)
	fm := isa.FinderMetrics(spec, plen)
	for name, stats := range p.Kernels {
		scaled := timing.ScaleStats(stats, scale)
		wg := p.WorkGroupSizes[name]
		var cfg timing.KernelConfig
		if name == "finder" {
			cfg = timing.KernelConfig{
				Spec:                spec,
				OccupancyWaves:      fm.Occupancy,
				VGPRs:               fm.VGPRs,
				WorkGroupSize:       wg,
				LeaderPrefetch:      true,
				PrefetchOpsPerGroup: 4 * plen,
				ScatterFactor:       0.02, // coalesced sequential scan
			}
			m.FinderBreakdown = timing.KernelBreakdown(cfg, &scaled)
			m.FinderSeconds = m.FinderBreakdown.Total()
		} else {
			cfg = timing.KernelConfig{
				Spec:                spec,
				OccupancyWaves:      cm.Occupancy,
				VGPRs:               cm.VGPRs,
				WorkGroupSize:       wg,
				LeaderPrefetch:      !variant.CooperativeFetch(),
				PrefetchOpsPerGroup: 4 * plen,
				ScatterFactor:       1.0, // scattered candidate sites
			}
			bd := timing.KernelBreakdown(cfg, &scaled)
			m.ComparerBreakdown = bd
			m.ComparerSeconds += bd.Total()
		}
	}
	// Bytes and entries scale linearly with assembly size; the chunk count
	// does not — a full-scale run stages device-memory-sized chunks, so it
	// is recomputed from the full-scale chromosome lengths.
	host := timing.ScaleHost(timing.HostCounters{
		BytesStaged: p.BytesStaged,
		BytesRead:   p.BytesRead,
		Entries:     p.Entries,
	}, scale)
	fullChunks, err := fullScaleChunks(wl.Profile, plen)
	if err != nil {
		return nil, err
	}
	host.Chunks = int64(fullChunks)
	m.HostSeconds = timing.HostSeconds(host)
	return m, nil
}

// fullScaleChunks plans the chunking of the full-size assembly the profile
// models.
func fullScaleChunks(p genome.Profile, plen int) (int, error) {
	var totalW float64
	for _, c := range p.Chromosomes {
		totalW += c.Weight
	}
	lens := make([]int, 0, len(p.Chromosomes))
	for _, c := range p.Chromosomes {
		lens = append(lens, int(float64(p.FullScaleBases)*c.Weight/totalW))
	}
	chunker := &genome.Chunker{ChunkBytes: FullScaleChunkBytes, PatternLen: plen}
	return chunker.CountChunks(lens)
}
