package bench

import (
	"fmt"
	"strings"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// HotspotRow reproduces the profiling analysis of §IV.B for one (device,
// dataset) cell: how the projected elapsed time splits between the two
// kernels and the host, supporting the paper's observations that the
// comparer "accounts for approximately 98% of the total kernel execution
// time and 50% to 80% of the elapsed time".
type HotspotRow struct {
	Device  string
	Dataset string

	FinderSeconds   float64
	ComparerSeconds float64
	HostSeconds     float64
}

// Elapsed returns the total projected time.
func (r HotspotRow) Elapsed() float64 {
	return r.FinderSeconds + r.ComparerSeconds + r.HostSeconds
}

// ComparerShareOfKernels returns the comparer's fraction of kernel time.
func (r HotspotRow) ComparerShareOfKernels() float64 {
	return r.ComparerSeconds / (r.ComparerSeconds + r.FinderSeconds)
}

// KernelShareOfElapsed returns the kernels' fraction of elapsed time.
func (r HotspotRow) KernelShareOfElapsed() float64 {
	return (r.ComparerSeconds + r.FinderSeconds) / r.Elapsed()
}

// Hotspot profiles the baseline SYCL application on every device and
// dataset.
func Hotspot(scaleBases int) ([]HotspotRow, error) {
	var rows []HotspotRow
	for _, wl := range Workloads(scaleBases) {
		for _, spec := range device.All() {
			m, err := Measure(spec, SYCL, kernels.Base, wl)
			if err != nil {
				return nil, err
			}
			rows = append(rows, HotspotRow{
				Device:          spec.Name,
				Dataset:         wl.Name,
				FinderSeconds:   m.FinderSeconds,
				ComparerSeconds: m.ComparerSeconds,
				HostSeconds:     m.HostSeconds,
			})
		}
	}
	return rows, nil
}

// RenderHotspot renders the profiling summary.
func RenderHotspot(rows []HotspotRow) string {
	var b strings.Builder
	b.WriteString("Hotspot profile of the SYCL application (§IV.B; projected seconds)\n")
	fmt.Fprintf(&b, "%-8s %-7s %8s %9s %7s %8s %14s %14s\n",
		"Dataset", "Device", "finder", "comparer", "host", "elapsed", "cmp/kernels", "kernels/elapsed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-7s %8.2f %9.2f %7.2f %8.2f %13.1f%% %13.1f%%\n",
			r.Dataset, r.Device, r.FinderSeconds, r.ComparerSeconds, r.HostSeconds,
			r.Elapsed(), 100*r.ComparerShareOfKernels(), 100*r.KernelShareOfElapsed())
	}
	b.WriteString("(paper: comparer ~98% of kernel time; kernels 50-80% of elapsed)\n")
	return b.String()
}
