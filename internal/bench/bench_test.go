package bench

import (
	"strings"
	"testing"

	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// testScale keeps the functional runs small; every reproduced quantity is a
// ratio, so shapes are stable across scales.
const testScale = 1 << 17

func TestWorkloads(t *testing.T) {
	wls := Workloads(testScale)
	if len(wls) != 2 || wls[0].Name != "hg19" || wls[1].Name != "hg38" {
		t.Fatalf("Workloads = %+v", wls)
	}
	for _, wl := range wls {
		if err := wl.Request.Validate(); err != nil {
			t.Errorf("%s request invalid: %v", wl.Name, err)
		}
		if wl.Profile.TotalBases != testScale {
			t.Errorf("%s scale = %d", wl.Name, wl.Profile.TotalBases)
		}
	}
	if Workloads(testScale)[1].Profile.FullScaleBases <= Workloads(testScale)[0].Profile.FullScaleBases {
		t.Error("hg38 full scale should exceed hg19")
	}
}

func TestMeasureBasics(t *testing.T) {
	m, err := Measure(device.MI60(), SYCL, kernels.Base, HG19Workload(testScale))
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if m.ElapsedSeconds() <= 0 || m.ComparerSeconds <= 0 || m.FinderSeconds <= 0 || m.HostSeconds <= 0 {
		t.Fatalf("non-positive components: %+v", m)
	}
	if m.KernelSeconds() != m.FinderSeconds+m.ComparerSeconds {
		t.Error("KernelSeconds composition wrong")
	}
	// §IV.B: kernels are 50-80% of elapsed...
	frac := m.KernelSeconds() / m.ElapsedSeconds()
	if frac < 0.45 || frac > 0.85 {
		t.Errorf("kernel fraction of elapsed = %.2f, want ~0.5-0.8", frac)
	}
	// ...and the comparer dominates kernel time (~98% in the paper).
	if cf := m.ComparerSeconds / m.KernelSeconds(); cf < 0.85 {
		t.Errorf("comparer fraction of kernel time = %.2f, want >= 0.85", cf)
	}
}

func TestMeasureUnknownAPI(t *testing.T) {
	if _, err := Measure(device.MI60(), API("CUDA"), kernels.Base, HG19Workload(testScale)); err == nil {
		t.Error("unknown API accepted")
	}
}

// TestTable8Shape pins the Table VIII reproduction: SYCL at least matches
// OpenCL everywhere, with speedups inside the paper's [1.00, 1.19] band
// (plus slack), and hg38 slower than hg19 on every device.
func TestTable8Shape(t *testing.T) {
	rows, err := Table8(testScale)
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	elapsed := map[string]float64{}
	for _, r := range rows {
		sp := r.Speedup()
		if sp < 1.0 || sp > 1.25 {
			t.Errorf("%s/%s: speedup %.2f outside [1.00, 1.25]", r.Dataset, r.Device, sp)
		}
		if r.OpenCL <= 0 || r.SYCL <= 0 {
			t.Errorf("%s/%s: non-positive elapsed", r.Dataset, r.Device)
		}
		elapsed[r.Dataset+"/"+r.Device] = r.SYCL
	}
	for _, dev := range []string{"RVII", "MI60", "MI100"} {
		if elapsed["hg38/"+dev] <= elapsed["hg19/"+dev] {
			t.Errorf("%s: hg38 (%.1f) should be slower than hg19 (%.1f)",
				dev, elapsed["hg38/"+dev], elapsed["hg19/"+dev])
		}
	}
	// MI100 is the fastest device in the paper's Table VIII.
	if elapsed["hg19/MI100"] >= elapsed["hg19/RVII"] {
		t.Error("MI100 should beat RVII")
	}
}

// TestTable9Shape pins Table IX: the opt3 kernel cuts elapsed time by a
// speedup inside the paper's [1.09, 1.23] band (plus slack).
func TestTable9Shape(t *testing.T) {
	rows, err := Table9(testScale)
	if err != nil {
		t.Fatalf("Table9: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		sp := r.Speedup()
		if sp < 1.05 || sp > 1.3 {
			t.Errorf("%s/%s: opt speedup %.2f outside [1.05, 1.30]", r.Dataset, r.Device, sp)
		}
	}
}

// TestFig2Shape pins the optimization staircase of Fig. 2: kernel time
// falls monotonically from base to opt3 (cumulative 15-35% as in the
// paper's 21-28%), then opt4 regresses to ~2x opt3 despite its shorter
// code, driven by the occupancy loss.
func TestFig2Shape(t *testing.T) {
	points, err := Fig2(testScale)
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(points) != 2*3*5 {
		t.Fatalf("got %d points, want 30", len(points))
	}
	byGroup := map[string]map[kernels.ComparerVariant]float64{}
	for _, p := range points {
		key := p.Dataset + "/" + p.Device
		if byGroup[key] == nil {
			byGroup[key] = map[kernels.ComparerVariant]float64{}
		}
		byGroup[key][p.Variant] = p.Seconds
	}
	for key, g := range byGroup {
		if !(g[kernels.Base] > g[kernels.Opt1] && g[kernels.Opt1] > g[kernels.Opt2] && g[kernels.Opt2] > g[kernels.Opt3]) {
			t.Errorf("%s: staircase not monotone: base=%.2f opt1=%.2f opt2=%.2f opt3=%.2f",
				key, g[kernels.Base], g[kernels.Opt1], g[kernels.Opt2], g[kernels.Opt3])
		}
		cut := 1 - g[kernels.Opt3]/g[kernels.Base]
		if cut < 0.15 || cut > 0.35 {
			t.Errorf("%s: base->opt3 reduction %.1f%%, paper reports 21-28%%", key, cut*100)
		}
		reg := g[kernels.Opt4] / g[kernels.Opt3]
		if reg < 1.5 || reg > 2.5 {
			t.Errorf("%s: opt4 regression %.2fx, want ~2x", key, reg)
		}
	}
}

func TestRenderers(t *testing.T) {
	t1 := RenderTable1()
	if !strings.Contains(t1, "OpenCL (13) vs SYCL (8)") {
		t.Errorf("Table I header wrong:\n%s", t1)
	}
	t7 := RenderTable7()
	for _, part := range []string{"RVII", "MI60", "MI100", "1228"} {
		if !strings.Contains(t7, part) {
			t.Errorf("Table VII missing %q", part)
		}
	}
	t10 := RenderTable10(device.MI100(), len(ExamplePattern))
	for _, part := range []string{"Code length", "#SGPRs", "#VGPRs", "Occupancy", "opt4"} {
		if !strings.Contains(t10, part) {
			t.Errorf("Table X missing %q", part)
		}
	}
	rows, err := Table8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderTable8(rows); !strings.Contains(s, "speedup") {
		t.Error("Table VIII render missing speedup column")
	}
	rows9, err := Table9(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderTable9(rows9); !strings.Contains(s, "opt") {
		t.Error("Table IX render missing opt column")
	}
	points, err := Fig2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderFig2(points); !strings.Contains(s, "base") || !strings.Contains(s, "#") {
		t.Error("Fig2 render missing bars")
	}
}

func TestFullScaleChunks(t *testing.T) {
	n, err := fullScaleChunks(HG19Workload(testScale).Profile, len(ExamplePattern))
	if err != nil {
		t.Fatalf("fullScaleChunks: %v", err)
	}
	// ~3.1 GB in 512 MB chunks across 24 chromosomes: a handful of chunks,
	// far fewer than a linear projection of the scaled run would claim.
	if n < 6 || n > 40 {
		t.Errorf("full-scale chunks = %d, want O(10)", n)
	}
}

// TestHotspotShape pins the §IV.B profiling claims: the comparer dominates
// kernel time and the kernels dominate elapsed time.
func TestHotspotShape(t *testing.T) {
	rows, err := Hotspot(testScale)
	if err != nil {
		t.Fatalf("Hotspot: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if share := r.ComparerShareOfKernels(); share < 0.85 {
			t.Errorf("%s/%s: comparer share of kernel time %.2f, want >= 0.85 (paper ~0.98)",
				r.Dataset, r.Device, share)
		}
		if share := r.KernelShareOfElapsed(); share < 0.45 || share > 0.85 {
			t.Errorf("%s/%s: kernel share of elapsed %.2f, paper reports 0.5-0.8",
				r.Dataset, r.Device, share)
		}
	}
	if s := RenderHotspot(rows); !strings.Contains(s, "cmp/kernels") {
		t.Error("render missing header")
	}
}

// TestWGSweepShape: larger work-groups amortise the leader staging, so the
// comparer gets monotonically faster from 64 to 512 items per group.
func TestWGSweepShape(t *testing.T) {
	points, err := WGSweep(testScale, []int{64, 256})
	if err != nil {
		t.Fatalf("WGSweep: %v", err)
	}
	byDevice := map[string]map[int]float64{}
	for _, p := range points {
		if byDevice[p.Device] == nil {
			byDevice[p.Device] = map[int]float64{}
		}
		byDevice[p.Device][p.WorkGroupSize] = p.Seconds
	}
	for dev, m := range byDevice {
		if m[256] >= m[64] {
			t.Errorf("%s: wg 256 (%.2f) should beat wg 64 (%.2f)", dev, m[256], m[64])
		}
	}
	if s := RenderWGSweep(points); !strings.Contains(s, "WG") {
		t.Error("render missing header")
	}
}

// TestChunkSweepShape: host time falls (weakly) with larger chunks and the
// chunk count floors at one per chromosome.
func TestChunkSweepShape(t *testing.T) {
	points, err := ChunkSweep([]int64{1 << 20, 64 << 20, 2 << 30})
	if err != nil {
		t.Fatalf("ChunkSweep: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Chunks > points[i-1].Chunks {
			t.Error("chunk count should not grow with larger chunks")
		}
		if points[i].HostSeconds > points[i-1].HostSeconds+1e-9 {
			t.Error("host time should not grow with larger chunks")
		}
	}
	if points[2].Chunks < 24 {
		t.Errorf("chunk floor = %d, want >= one per chromosome", points[2].Chunks)
	}
	if s := RenderChunkSweep(points); !strings.Contains(s, "chunk bytes") {
		t.Error("render missing header")
	}
}

func TestRenderMigrationTables(t *testing.T) {
	s := RenderMigrationTables()
	for _, part := range []string{
		"Table II", "Table III", "Table IV", "Table V", "Table VI",
		"clCreateBuffer", "NewBufferFrom", "atomic_ref", "parallel_for",
		"Kernel.SetArg", "Handler.ParallelFor",
	} {
		if !strings.Contains(s, part) {
			t.Errorf("migration tables missing %q", part)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	rows8 := []Table8Row{{Dataset: "hg19", Device: "RVII", OpenCL: 54, SYCL: 48}}
	var b strings.Builder
	if err := WriteTable8CSV(&b, rows8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hg19,RVII,54.000,48.000,1.125") {
		t.Errorf("table8 csv = %q", b.String())
	}
	rows9 := []Table9Row{{Dataset: "hg38", Device: "MI60", Base: 63, Opt: 57}}
	b.Reset()
	if err := WriteTable9CSV(&b, rows9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hg38,MI60,63.000,57.000,1.105") {
		t.Errorf("table9 csv = %q", b.String())
	}
	points := []Fig2Point{{Dataset: "hg19", Device: "MI100", Variant: kernels.Opt4, Seconds: 21.1}}
	b.Reset()
	if err := WriteFig2CSV(&b, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hg19,MI100,opt4,21.100") {
		t.Errorf("fig2 csv = %q", b.String())
	}
}
