package search

import (
	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
	"casoffinder/internal/pipeline"
)

// rawHit is one comparer output entry before site rendering: the owning
// query, the chunk-local site position, the strand and the mismatch count.
// Every backend accumulates rawHits in its staged handle and lets
// drainEntries turn them into reported hits, so hit rendering exists in
// exactly one place.
type rawHit struct {
	qi  int
	pos int
	dir byte
	mm  int
}

// drainEntries renders raw comparer entries into reported hits using the
// scan worker's pooled site renderer.
func drainEntries(r *pipeline.SiteRenderer, ch *genome.Chunk, guides []*kernels.PatternPair, entries []rawHit) []Hit {
	if len(entries) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(entries))
	for _, e := range entries {
		g := guides[e.qi]
		window := ch.Data[e.pos : e.pos+g.PatternLen]
		hits = append(hits, Hit{
			QueryIndex: e.qi,
			SeqName:    ch.SeqName,
			Pos:        ch.Start + e.pos,
			Dir:        e.dir,
			Mismatches: e.mm,
			Site:       r.Render(window, g, e.dir),
		})
	}
	return hits
}

// closeErr folds a release error into the function error without masking
// an earlier one.
func closeErr(relErr error, err *error) {
	if relErr != nil && *err == nil {
		*err = relErr
	}
}
