package search

import (
	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
	"casoffinder/internal/pipeline"
)

// rawHit is one comparer output entry before site rendering: the owning
// query, the chunk-local site position, the strand and the mismatch count.
// Every backend accumulates rawHits in its staged handle and lets
// drainEntries turn them into reported hits, so hit rendering exists in
// exactly one place.
type rawHit struct {
	qi  int
	pos int
	dir byte
	mm  int
}

// drainEntries renders raw comparer entries into reported hits using the
// scan worker's pooled site renderer. Every entry is validated against the
// chunk geometry first: a locus outside the chunk window, an impossible
// strand byte or a mismatch count beyond the pattern length can only come
// from a damaged device-to-host readback, so the chunk is rejected with a
// corruption-classed error instead of a panic — the resilient pipeline then
// re-verifies it on the fallback backend. The injected corruption model
// flips MSBs (loud, always out of range); silently in-range corruption
// would need checksummed transfers, which is out of scope (DESIGN.md §9).
func drainEntries(r *pipeline.SiteRenderer, ch *genome.Chunk, guides []*kernels.PatternPair, entries []rawHit) ([]Hit, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	hits := make([]Hit, 0, len(entries))
	for _, e := range entries {
		if e.qi < 0 || e.qi >= len(guides) {
			return nil, fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: chunk %s:%d: entry query index %d out of %d", ch.SeqName, ch.Start, e.qi, len(guides))
		}
		g := guides[e.qi]
		if e.pos < 0 || e.pos+g.PatternLen > len(ch.Data) {
			return nil, fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: chunk %s:%d: entry locus %d outside the %d-byte window", ch.SeqName, ch.Start, e.pos, len(ch.Data))
		}
		if e.dir != kernels.DirForward && e.dir != kernels.DirReverse {
			return nil, fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: chunk %s:%d: entry strand %#x is neither forward nor reverse", ch.SeqName, ch.Start, e.dir)
		}
		if e.mm < 0 || e.mm > g.PatternLen {
			return nil, fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: chunk %s:%d: entry mismatch count %d exceeds the %d-base pattern", ch.SeqName, ch.Start, e.mm, g.PatternLen)
		}
		window := ch.Data[e.pos : e.pos+g.PatternLen]
		hits = append(hits, Hit{
			QueryIndex: e.qi,
			SeqName:    ch.SeqName,
			Pos:        ch.Start + e.pos,
			Dir:        e.dir,
			Mismatches: e.mm,
			Site:       r.Render(window, g, e.dir),
		})
	}
	return hits, nil
}

// closeErr folds a release error into the function error without masking
// an earlier one.
func closeErr(relErr error, err *error) {
	if relErr != nil && *err == nil {
		*err = relErr
	}
}

// resilienceFor adapts an engine-configured resilience policy for one run:
// it installs the CPU SWAR engine as the failover backend when none is set
// (its hit stream is byte-identical to the simulator engines', so a
// failed-over chunk preserves the golden output), and chains the run report
// into the engine's profile ahead of any caller-provided OnReport. A nil
// policy stays nil — the pipeline keeps its default fail-fast topology.
func resilienceFor(res *pipeline.Resilience, prof func() *Profile) *pipeline.Resilience {
	if res == nil {
		return nil
	}
	r := *res
	if r.Fallback == nil {
		r.Fallback = func(plan *pipeline.Plan) (pipeline.Backend, error) {
			return newCPUBackend(plan, &CPU{Packed: true}), nil
		}
	}
	user := res.OnReport
	r.OnReport = func(rep *pipeline.Report) {
		if p := prof(); p != nil {
			p.addResilience(rep)
		}
		if user != nil {
			user(rep)
		}
	}
	return &r
}
