package search

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
	"casoffinder/internal/pipeline"
)

// artifactAssembly round-trips asm through the persistent artifact codec —
// build, write, O(header) load — and returns the artifact-backed assembly,
// so every test below runs against bytes that actually crossed the disk
// format.
func artifactAssembly(t *testing.T, asm *genome.Assembly, pattern string) *genome.Assembly {
	t.Helper()
	art, err := BuildArtifact(asm, pattern)
	if err != nil {
		t.Fatalf("BuildArtifact: %v", err)
	}
	path := filepath.Join(t.TempDir(), "asm.cart")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := genome.LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	if err := loaded.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return loaded.Assembly()
}

// TestArtifactEquivalenceAllEngines pins the tentpole contract: an
// artifact-backed run is byte-identical to a FASTA-backed run on every
// engine — with PAM shards for the request's scaffold (the shard fast
// path), with shards for a different scaffold (resident views, prefilter
// recomputed) and with no shards at all.
func TestArtifactEquivalenceAllEngines(t *testing.T) {
	asm := testAssembly(t, 11, []int{3000, 1700, 950}, testSite)
	req := testRequest(2)
	req.Queries = append(req.Queries, Query{Guide: "GATTACAGTANN", MaxMismatches: 1})

	engines := []struct {
		name string
		eng  Engine
	}{
		{"cpu", &CPU{Workers: 2}},
		{"cpu-packed", &CPU{Workers: 2, Packed: true}},
		{"cpu-packed-nobatch", &CPU{Workers: 2, Packed: true, NoBatch: true}},
		{"cpu-packed-scalar", &CPU{Workers: 2, Packed: true, Scalar: true}},
		{"indexed", &Indexed{Workers: 2}},
		{"opencl", &SimCL{Device: gpu.New(device.MI60(), gpu.WithWorkers(2)), Variant: kernels.Base}},
		{"sycl", &SimSYCL{Device: gpu.New(device.MI100(), gpu.WithWorkers(2)), Variant: kernels.Opt3, WorkGroupSize: 64}},
		{"multisycl", &MultiSYCL{Devices: []*gpu.Device{gpu.New(device.MI60()), gpu.New(device.MI100())}, Variant: kernels.Base, WorkGroupSize: 64}},
	}
	arts := []struct {
		name string
		asm  *genome.Assembly
	}{
		{"pam-shards", artifactAssembly(t, asm, req.Pattern)},
		{"other-pattern", artifactAssembly(t, asm, "NNNNNNNNNNCC")},
		{"no-shards", artifactAssembly(t, asm, "")},
	}
	for _, e := range engines {
		want, err := e.eng.Run(asm, req)
		if err != nil {
			t.Fatalf("%s on FASTA assembly: %v", e.name, err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: fixture produced no hits", e.name)
		}
		for _, a := range arts {
			got, err := e.eng.Run(a.asm, req)
			if err != nil {
				t.Fatalf("%s on %s artifact: %v", e.name, a.name, err)
			}
			if !equalHits(got, want) {
				t.Errorf("%s on %s artifact: %d hits diverge from FASTA's %d", e.name, a.name, len(got), len(want))
			}
		}
	}
}

// TestArtifactShardMatchesScan pins the per-chunk identity the shard fast
// path rests on: the precomputed shard sliced to a chunk window equals a
// fresh SWAR prefilter over that chunk, candidate for candidate.
func TestArtifactShardMatchesScan(t *testing.T) {
	for _, seed := range []int64{5, 21} {
		asm := testAssembly(t, seed, []int{2000, 1100}, testSite)
		art, err := BuildArtifact(asm, testPattern)
		if err != nil {
			t.Fatal(err)
		}
		pair, err := kernels.NewPatternPair([]byte(testPattern))
		if err != nil {
			t.Fatal(err)
		}
		bp := CompileBitPattern(pair)
		chunker := &genome.Chunker{ChunkBytes: 300, PatternLen: pair.PatternLen}
		chunks := 0
		err = chunker.Each(asm, func(ch *genome.Chunk) error {
			chunks++
			var scan, shard scanScratch
			p, err := genome.Pack(ch.Data)
			if err != nil {
				return err
			}
			scan.findSWARCandidates(ch, p.WordView(nil), bp, 0)
			if err := shard.candidatesFromShard(ch, art.PAMRange(ch.SeqIndex, ch.Start, ch.Start+ch.Body)); err != nil {
				return err
			}
			if len(scan.cand) != len(shard.cand) {
				t.Fatalf("seed %d chunk %s:%d: scan %d candidates, shard %d", seed, ch.SeqName, ch.Start, len(scan.cand), len(shard.cand))
			}
			for i := range scan.cand {
				if scan.cand[i] != shard.cand[i] {
					t.Fatalf("seed %d chunk %s:%d candidate %d: scan %+v, shard %+v", seed, ch.SeqName, ch.Start, i, scan.cand[i], shard.cand[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if chunks < 4 {
			t.Fatalf("seed %d: only %d chunks", seed, chunks)
		}
	}
}

// badShardAssembly builds an artifact whose shard carries one hostile entry
// (the codec cannot produce it; a bit flip in a stored shard can).
func badShardAssembly(t *testing.T, asm *genome.Assembly, pattern string, plen int, entry uint64) *genome.Assembly {
	t.Helper()
	art, err := genome.BuildArtifact(asm, pattern, plen, func(si int, v *genome.WordView) []uint64 {
		if si == 0 {
			return []uint64{entry}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return art.Assembly()
}

// TestArtifactCorruptShardRejected: shard entries that violate the chunk or
// sequence geometry must reject the run with a corruption-classed error —
// never a panic, never a silent wrong answer.
func TestArtifactCorruptShardRejected(t *testing.T) {
	asm := testAssembly(t, 7, []int{900}, testSite)
	req := testRequest(2)
	plen := len(testPattern)

	isCorruption := func(err error) bool {
		var fe *fault.Error
		return errors.As(err, &fe) && fe.Class == fault.Corruption && fe.Site == fault.SiteArtifact
	}

	// Strand bits zeroed: selected by every consumer, impossible by
	// construction.
	zeroStrand := badShardAssembly(t, asm, req.Pattern, plen, 5<<2)
	if _, err := (&CPU{Packed: true}).Run(zeroStrand, req); !isCorruption(err) {
		t.Errorf("CPU on zero-strand shard: err = %v, want artifact corruption", err)
	}
	if _, err := (&Indexed{}).Run(zeroStrand, req); !isCorruption(err) {
		t.Errorf("Indexed on zero-strand shard: err = %v, want artifact corruption", err)
	}

	// A position whose window overruns the sequence end: the per-sequence
	// consumer must bounds-check before slicing.
	overrun := badShardAssembly(t, asm, req.Pattern, plen, uint64(900-1)<<2|genome.PAMFwd)
	if _, err := (&Indexed{}).Run(overrun, req); !isCorruption(err) {
		t.Errorf("Indexed on overrun shard: err = %v, want artifact corruption", err)
	}
}

// TestArtifactFaultFailover: a seeded fault run over an artifact-backed
// assembly still matches the clean FASTA run — the CPU failover backend
// consumes the same resident artifact through the plan seam.
func TestArtifactFaultFailover(t *testing.T) {
	asm := testAssembly(t, 13, []int{2200}, testSite)
	req := testRequest(2)
	want, err := (&CPU{Packed: true}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no hits")
	}
	dev := gpu.New(device.MI100(), gpu.WithWorkers(2))
	dev.SetFaults(fault.NewInjector(fault.Plan{Seed: 3, Rate: 0.2}))
	eng := &SimSYCL{
		Device: dev, Variant: kernels.Base, WorkGroupSize: 64,
		// The watchdog is part of the policy: an injected gpu.hang would
		// otherwise block the run forever.
		Resilience: &pipeline.Resilience{Seed: 3, Watchdog: 500 * time.Millisecond},
	}
	got, err := eng.Run(artifactAssembly(t, asm, req.Pattern), req)
	if err != nil {
		t.Fatalf("seeded fault run: %v", err)
	}
	if !equalHits(got, want) {
		t.Errorf("artifact-backed fault run diverged: %d hits vs %d", len(got), len(want))
	}
}

// TestBuildArtifactBadPattern: an uncompilable scaffold fails the build.
func TestBuildArtifactBadPattern(t *testing.T) {
	asm := testAssembly(t, 1, []int{200}, testSite)
	if _, err := BuildArtifact(asm, "NN!!NN"); err == nil {
		t.Error("BuildArtifact(bad pattern) = nil error")
	}
}
