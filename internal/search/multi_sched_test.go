package search

import (
	"testing"
	"time"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
)

// hetFleet builds the heterogeneous fleet of the paper's Table VII: one
// device of each spec.
func hetFleet() []*gpu.Device {
	return []*gpu.Device{
		gpu.New(device.RadeonVII(), gpu.WithWorkers(2)),
		gpu.New(device.MI60(), gpu.WithWorkers(2)),
		gpu.New(device.MI100(), gpu.WithWorkers(2)),
	}
}

func schedGolden(t *testing.T, asm *genome.Assembly, req *Request) []Hit {
	t.Helper()
	single := &SimSYCL{Device: gpu.New(device.MI60(), gpu.WithWorkers(2)), Variant: kernels.Base, WorkGroupSize: 64}
	want, err := single.Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no hits in test data")
	}
	return want
}

// TestMultiSYCLSchedStealsOnHeterogeneousFleet: on a mixed fleet the
// scheduler must account every chunk to some device and the merged profile
// must carry the per-device breakdown.
func TestMultiSYCLSchedStealsOnHeterogeneousFleet(t *testing.T) {
	asm := testAssembly(t, 21, []int{900, 700, 500, 300}, testSite)
	req := testRequest(2)
	req.ChunkBytes = 256
	multi := &MultiSYCL{Devices: hetFleet(), Variant: kernels.Base, WorkGroupSize: 64}
	got, err := multi.Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	want := schedGolden(t, asm, req)
	if !equalHits(got, want) {
		t.Fatalf("scheduler fleet: %d hits != single %d", len(got), len(want))
	}
	p := multi.LastProfile()
	if p.Evictions != 0 {
		t.Errorf("clean run evicted %d devices", p.Evictions)
	}
	total := 0
	for _, n := range p.DeviceChunks {
		total += n
	}
	if total == 0 || total != p.Chunks {
		t.Errorf("per-device chunk accounting %v does not cover the %d staged chunks", p.DeviceChunks, p.Chunks)
	}
}

// TestMultiSYCLStaticMatchesStealing: the static split and the stealing
// scheduler must produce byte-identical hits; only the schedule differs.
func TestMultiSYCLStaticMatchesStealing(t *testing.T) {
	asm := testAssembly(t, 22, []int{800, 600, 400}, testSite)
	req := testRequest(2)
	req.ChunkBytes = 256
	want := schedGolden(t, asm, req)

	static := &MultiSYCL{Devices: hetFleet(), Variant: kernels.Base, WorkGroupSize: 64, Static: true}
	got, err := static.Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalHits(got, want) {
		t.Errorf("static split: %d hits != single %d", len(got), len(want))
	}
	if p := static.LastProfile(); p.Steals != 0 {
		t.Errorf("static split stole %d times, want 0", p.Steals)
	}

	stealing := &MultiSYCL{Devices: hetFleet(), Variant: kernels.Base, WorkGroupSize: 64}
	got, err = stealing.Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalHits(got, want) {
		t.Errorf("stealing scheduler: %d hits != single %d", len(got), len(want))
	}
}

// TestMultiSYCLSchedEvictionKeepsHits: a device whose every launch fails is
// evicted; the survivors absorb its shard and the hit stream stays
// byte-identical to the clean single-device run.
func TestMultiSYCLSchedEvictionKeepsHits(t *testing.T) {
	asm := testAssembly(t, 23, []int{900, 600, 300}, testSite)
	req := testRequest(2)
	req.ChunkBytes = 256
	want := schedGolden(t, asm, req)

	devs := hetFleet()
	// Device 0 fails every kernel launch; retries are disabled so the
	// first failure evicts it.
	devs[0].SetFaults(fault.NewInjector(fault.Plan{Seed: 7, Rate: 1, Site: fault.SiteLaunch}))
	multi := &MultiSYCL{
		Devices: devs, Variant: kernels.Base, WorkGroupSize: 64,
		Resilience: &pipeline.Resilience{MaxRetries: -1, Seed: 7},
	}
	got, err := multi.Run(asm, req)
	if err != nil {
		t.Fatalf("eviction run: %v", err)
	}
	if !equalHits(got, want) {
		t.Fatalf("eviction run: %d hits != single %d", len(got), len(want))
	}
	p := multi.LastProfile()
	if p.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", p.Evictions)
	}
	if !p.Degraded() {
		t.Error("eviction run not marked degraded")
	}
	if p.Failovers != 0 {
		t.Errorf("failovers = %d, want 0 (survivors absorbed the shard)", p.Failovers)
	}
	if len(p.FaultLog) == 0 {
		t.Error("evicted device's fault events missing from the merged log")
	}
}

// TestMultiSYCLSchedAllEvictedFallsBack: when every device dies the
// stranded chunks drain through the CPU SWAR fallback and the output is
// still byte-identical.
func TestMultiSYCLSchedAllEvictedFallsBack(t *testing.T) {
	asm := testAssembly(t, 24, []int{700, 400}, testSite)
	req := testRequest(2)
	req.ChunkBytes = 256
	want := schedGolden(t, asm, req)

	devs := multiDevices(2)
	for i, d := range devs {
		d.SetFaults(fault.NewInjector(fault.Plan{Seed: uint64(40 + i), Rate: 1, Site: fault.SiteLaunch}))
	}
	multi := &MultiSYCL{
		Devices: devs, Variant: kernels.Base, WorkGroupSize: 64,
		Resilience: &pipeline.Resilience{MaxRetries: -1, Seed: 40},
	}
	got, err := multi.Run(asm, req)
	if err != nil {
		t.Fatalf("all-evicted run: %v", err)
	}
	if !equalHits(got, want) {
		t.Fatalf("all-evicted run: %d hits != single %d", len(got), len(want))
	}
	p := multi.LastProfile()
	if p.Evictions != int64(len(devs)) {
		t.Errorf("evictions = %d, want %d (whole fleet)", p.Evictions, len(devs))
	}
	if p.Failovers == 0 {
		t.Error("no failovers counted though every chunk drained through the fallback")
	}
}

// TestMultiSYCLSchedMetricsParity extends the metrics-profile agreement
// check to the scheduler: on a seeded fault run the -metrics counters —
// including the new steal and eviction series — must equal the merged
// profile's totals.
func TestMultiSYCLSchedMetricsParity(t *testing.T) {
	asm := testAssembly(t, 25, []int{900, 600, 400}, testSite)
	req := testRequest(2)
	req.ChunkBytes = 256

	m := obs.NewMetrics()
	devs := hetFleet()
	// One device fails every launch (guaranteed eviction), another is
	// moderately flaky (retries), so every scheduler counter moves.
	devs[0].SetFaults(fault.NewInjector(fault.Plan{Seed: 50, Rate: 1, Site: fault.SiteLaunch}))
	devs[1].SetFaults(fault.NewInjector(fault.Plan{Seed: 51, Rate: 0.2, Site: fault.SiteSYCLAsync}))
	multi := &MultiSYCL{
		Devices: devs, Variant: kernels.Base, WorkGroupSize: 64,
		Resilience: &pipeline.Resilience{
			MaxRetries: 2, Seed: 50,
			BackoffBase: time.Microsecond, BackoffMax: time.Microsecond,
			Watchdog: 500 * time.Millisecond,
		},
		Metrics: m,
	}
	if _, err := multi.Run(asm, req); err != nil {
		t.Fatalf("run: %v", err)
	}
	p := multi.LastProfile()
	if p.Evictions == 0 {
		t.Fatal("run evicted nothing; the parity check needs a degraded run")
	}
	snap := m.Snapshot()
	counters := map[string]int64{
		obs.MetricChunks:          int64(p.Chunks),
		obs.MetricStagedBytes:     p.BytesStaged,
		obs.MetricReadBytes:       p.BytesRead,
		obs.MetricCandidateSites:  p.CandidateSites,
		obs.MetricEntries:         p.Entries,
		obs.MetricRetries:         p.Retries,
		obs.MetricFailovers:       p.Failovers,
		obs.MetricWatchdogKills:   p.WatchdogKills,
		obs.MetricQuarantined:     int64(p.QuarantinedChunks),
		obs.MetricAsyncExceptions: p.AsyncExceptions,
		obs.MetricSteals:          p.Steals,
		obs.MetricEvictions:       p.Evictions,
	}
	for name, want := range counters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, profile says %d", name, got, want)
		}
	}
	for site, want := range p.Faults {
		series := obs.L(obs.MetricFaults, "site", string(site))
		if got := snap.Counters[series]; got != want {
			t.Errorf("counter %s = %d, profile says %d", series, got, want)
		}
	}
}
