package search

import (
	"context"
	"fmt"
	"sync"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/sycl"
	"casoffinder/internal/tune"
)

// SimSYCL runs the search as the migrated SYCL application (§III): a queue
// from a device selector, buffers with accessors, command groups with local
// accessors and parallel_for, and implicit buffer write-back. The kernels
// are the same bodies the OpenCL engine runs; the work-group size is 256
// for both kernels, as in the paper's SYCL program.
type SimSYCL struct {
	// Device is the simulated GPU to run on.
	Device *gpu.Device
	// Variant selects the comparer kernel.
	Variant kernels.ComparerVariant
	// WorkGroupSize overrides the launch local size; 0 means 256.
	WorkGroupSize int
	// Auto resolves Variant and WorkGroupSize through the occupancy
	// autotuner (internal/tune) for this device at Stream start: Variant is
	// ignored, and WorkGroupSize (when set) narrows the tuner to that local
	// size instead of overriding its choice. Calibrate additionally runs
	// the tuner's online measured pass. Output is byte-identical to any
	// fixed-variant run.
	Auto      bool
	Calibrate bool
	// Resilience, when set, runs the engine under the pipeline's
	// fault-tolerant executor: transient errors (including asynchronous
	// exceptions) retry with backoff, hung kernels are reaped by the
	// watchdog, and chunks the device cannot complete fail over to the
	// CPU SWAR engine (unless a custom Fallback is configured),
	// preserving the byte-identical hit stream.
	Resilience *pipeline.Resilience
	// Trace and Metrics, when set, observe the run: pipeline-stage and
	// kernel-launch spans, latency histograms and profile-mirroring
	// counters. Track overrides the trace row prefix (the engine name by
	// default); MultiSYCL sets it to tell its sub-engines apart.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	Track   string

	profile *Profile
	// tuned is the resolved autotuner decision for the current run; set by
	// Stream (or by MultiSYCL for its per-device shells) before any backend
	// opens, read-only while the run is live.
	tuned *tune.Decision
}

// DefaultSYCLWorkGroup is the local work size of the SYCL application:
// "the local work size (work-group size) is 256 for launching both SYCL
// kernels" (§IV.A).
const DefaultSYCLWorkGroup = 256

// Name implements Engine.
func (e *SimSYCL) Name() string { return "sycl-sim" }

func (e *SimSYCL) track() string {
	if e.Track != "" {
		return e.Track
	}
	return e.Name()
}

// LastProfile implements Profiler.
func (e *SimSYCL) LastProfile() *Profile { return e.profile }

// variant is the comparer the run actually launches: the tuner's selection
// when one was resolved, the configured Variant otherwise.
func (e *SimSYCL) variant() kernels.ComparerVariant {
	if e.tuned != nil {
		return e.tuned.Variant
	}
	return e.Variant
}

func (e *SimSYCL) wgSize() int {
	if e.tuned != nil {
		return e.tuned.WGSize
	}
	if e.WorkGroupSize > 0 {
		return e.WorkGroupSize
	}
	return DefaultSYCLWorkGroup
}

// Run implements Engine.
func (e *SimSYCL) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	return Collect(context.Background(), e, asm, req)
}

// Stream implements Engine by running the SYCL command groups behind the
// shared pipeline: one scan worker submits kernels while the stager
// creates the next chunk's buffers.
func (e *SimSYCL) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	// Resolve the tuner before the pipeline opens any backend; the decision
	// is read-only for the rest of the run.
	e.tuned = nil
	if e.Auto && e.Device != nil {
		d, err := autotuneDecision(e.Device, req, e.WorkGroupSize, e.Calibrate)
		if err != nil {
			return fmt.Errorf("search: %s: autotune: %w", e.Name(), err)
		}
		e.tuned = d
	}
	p := &pipeline.Pipeline{
		Open: func(plan *pipeline.Plan) (pipeline.Backend, error) {
			if e.Device == nil {
				return nil, fmt.Errorf("search: %s: nil device", e.Name())
			}
			return newSYCLBackend(e, plan)
		},
		ScanWorkers: 1,
		Resilience:  resilienceFor(e.Resilience, func() *Profile { return e.profile }),
		Trace:       e.Trace,
		Metrics:     e.Metrics,
		Track:       e.track(),
	}
	// Mark the injector before the run so only this run's fault delta is
	// folded into the profile — a reused engine must not re-count earlier
	// runs' faults.
	var mark int
	if e.Device != nil {
		e.Device.SetObs(e.Trace, e.Metrics, e.track()+"/gpu")
		mark = e.Device.Faults().Mark()
	}
	err := p.Stream(ctx, asm, req, emit)
	if e.Device != nil && e.profile != nil {
		e.profile.addFaults(e.Device.Faults().LogSince(mark))
	}
	return err
}

// destroyer is the common teardown face of sycl.Buffer[T] across element
// types, so one live set can hold them all.
type destroyer interface{ Destroy() error }

// syclBackend adapts the SYCL program to the pipeline Backend contract.
// Every buffer is tracked in the live set so Close can destroy whatever an
// aborted run left behind — a staging error can no longer leak simulator
// buffers.
type syclBackend struct {
	e    *SimSYCL
	plan *pipeline.Plan
	prof *Profile

	queue *sycl.Queue

	patBuf    *sycl.Buffer[byte]
	patIdxBuf *sycl.Buffer[int32]

	// mu guards live: the stager creates buffers while the scan worker
	// destroys others.
	mu   sync.Mutex
	live map[destroyer]struct{}
}

// track registers a freshly created buffer in the backend's live set.
func (b *syclBackend) track(d destroyer) {
	b.mu.Lock()
	b.live[d] = struct{}{}
	b.mu.Unlock()
}

// syclDestroy destroys a buffer and drops it from the live set, folding the
// error; nil buffers are ignored so error paths can destroy unconditionally.
func syclDestroy[T any](b *syclBackend, buf *sycl.Buffer[T], err *error) {
	if buf == nil {
		return
	}
	b.mu.Lock()
	delete(b.live, buf)
	b.mu.Unlock()
	closeErr(buf.Destroy(), err)
}

// newSYCLBackend builds the queue (steps 1-2 of the SYCL column) and the
// run-constant pattern tables; the scaffold goes behind the constant
// address space as in the paper's finder kernel.
func newSYCLBackend(e *SimSYCL, plan *pipeline.Plan) (_ *syclBackend, err error) {
	b := &syclBackend{e: e, plan: plan, prof: newProfile(e.Metrics), live: make(map[destroyer]struct{})}
	e.profile = b.prof
	if e.tuned != nil {
		b.prof.addTune(e.track(), e.tuned)
	}
	defer func() {
		if err != nil {
			b.Close()
		}
	}()
	if b.queue, err = sycl.NewQueue(sycl.GPUSelector{}, e.Device); err != nil {
		return nil, err
	}
	// The async handler is how the migrated program observes asynchronous
	// exceptions (§III): every delivery is counted in the profile; the
	// errors themselves still surface on the events the backend waits on.
	b.queue.SetAsyncHandler(func(*sycl.AsyncError) { b.prof.addAsync() })
	pattern := plan.Pattern
	if b.patBuf, err = sycl.NewConstantBuffer(pattern.Codes); err != nil {
		return nil, err
	}
	b.track(b.patBuf)
	if b.patIdxBuf, err = sycl.NewBufferFrom(pattern.Index); err != nil {
		return nil, err
	}
	b.track(b.patIdxBuf)
	b.prof.addStaged(int64(len(pattern.Codes) + 4*len(pattern.Index)))
	return b, nil
}

// Close implements pipeline.Backend: destroy every still-live buffer (the
// pattern tables plus whatever staged chunks never reached Drain), folding
// the first error.
func (b *syclBackend) Close() (err error) {
	b.mu.Lock()
	leaked := make([]destroyer, 0, len(b.live))
	for d := range b.live {
		leaked = append(leaked, d)
	}
	b.live = make(map[destroyer]struct{})
	b.mu.Unlock()
	for _, d := range leaked {
		closeErr(d.Destroy(), &err)
	}
	b.patBuf, b.patIdxBuf = nil, nil
	return err
}

// syclStaged is one chunk's device state: the buffers created at stage
// time, the comparer output buffers created once candidates are known, and
// the raw entries accumulated across guides.
type syclStaged struct {
	ch *genome.Chunk

	chrBuf   *sycl.Buffer[byte]
	lociBuf  *sycl.Buffer[uint32]
	flagsBuf *sycl.Buffer[byte]
	countBuf *sycl.Buffer[uint32]

	mmLociBuf  *sycl.Buffer[uint32]
	mmCountBuf *sycl.Buffer[uint16]
	dirBuf     *sycl.Buffer[byte]

	n       int
	entries []rawHit
}

// Stage implements pipeline.Backend: create the chunk's input and finder
// output buffers. The chunk is staged as-is: the kernels' IUPAC tables
// accept soft-masked lower-case bases, so no per-chunk upper-case copy is
// needed (site rendering normalizes case in the reported site). This runs
// on the stager goroutine while the scan worker submits kernels for the
// previous chunk; a mid-stage failure leaves the earlier buffers to Close.
func (b *syclBackend) Stage(ctx context.Context, ch *genome.Chunk) (pipeline.Staged, error) {
	s := &syclStaged{ch: ch}
	var err error
	if s.chrBuf, err = sycl.NewBufferFrom(ch.Data); err != nil {
		return nil, err
	}
	b.track(s.chrBuf)
	if s.lociBuf, err = sycl.NewBuffer[uint32](ch.Body); err != nil {
		return nil, err
	}
	b.track(s.lociBuf)
	if s.flagsBuf, err = sycl.NewBuffer[byte](ch.Body); err != nil {
		return nil, err
	}
	b.track(s.flagsBuf)
	if s.countBuf, err = sycl.NewBuffer[uint32](1); err != nil {
		return nil, err
	}
	b.track(s.countBuf)
	b.prof.addStagedChunk(int64(len(ch.Data)))
	return s, nil
}

// Find implements pipeline.Backend: submit the finder command group (local
// accessors, two phases) and read back the candidate count.
func (b *syclBackend) Find(ctx context.Context, st pipeline.Staged) (int, error) {
	s := st.(*syclStaged)
	plen := b.plan.Pattern.PatternLen
	sites := s.ch.Body
	wg := b.e.wgSize()

	gws := (sites + wg - 1) / wg * wg
	ev := b.queue.SubmitCtx(ctx, func(h *sycl.Handler) error {
		chrAcc, err := sycl.Access(h, s.chrBuf, sycl.Read)
		if err != nil {
			return err
		}
		patAcc, err := sycl.Access(h, b.patBuf, sycl.Read)
		if err != nil {
			return err
		}
		patIdxAcc, err := sycl.Access(h, b.patIdxBuf, sycl.Read)
		if err != nil {
			return err
		}
		lociAcc, err := sycl.Access(h, s.lociBuf, sycl.Write)
		if err != nil {
			return err
		}
		flagsAcc, err := sycl.Access(h, s.flagsBuf, sycl.Write)
		if err != nil {
			return err
		}
		countAcc, err := sycl.Access(h, s.countBuf, sycl.ReadWrite)
		if err != nil {
			return err
		}
		lPat, err := sycl.NewLocalAccessor[byte](h, 2*plen)
		if err != nil {
			return err
		}
		lPatIdx, err := sycl.NewLocalAccessor[int32](h, 2*plen)
		if err != nil {
			return err
		}
		fa := &kernels.FinderArgs{
			Chr: chrAcc.Slice(),
			Pattern: &kernels.PatternPair{
				Codes:      patAcc.Slice(),
				Index:      patIdxAcc.Slice(),
				PatternLen: plen,
			},
			Sites: sites,
			Loci:  lociAcc.Slice(),
			Flags: flagsAcc.Slice(),
			Count: &countAcc.Slice()[0],
		}
		return h.ParallelForPhases("finder", gpu.R1(gws), gpu.R1(wg), []func(it *sycl.NDItem){
			func(it *sycl.NDItem) { kernels.FinderStage(it.Item(), fa, lPat.Slice(it), lPatIdx.Slice(it)) },
			func(it *sycl.NDItem) { kernels.FinderScan(it.Item(), fa, lPat.Slice(it), lPatIdx.Slice(it)) },
		})
	})
	if err := ev.Wait(); err != nil {
		return 0, err
	}
	b.prof.addKernel("finder", ev.Stats(), wg)

	countHost, err := s.countBuf.Snapshot()
	if err != nil {
		return 0, err
	}
	s.n = int(countHost[0])
	// Validate before sizing the output buffers: a corrupted count readback
	// (MSB flip, ~2^31) would otherwise drive the allocations below.
	if s.n > sites {
		s.n = 0
		return 0, fault.Errorf(fault.SiteReadback, fault.Corruption,
			"search: %s: finder count %d exceeds the %d scanned sites", b.e.Name(), countHost[0], sites)
	}
	b.prof.addRead(4)
	b.prof.addCandidates(int64(s.n))
	if s.n == 0 {
		return 0, nil
	}

	// Comparer output buffers sized for both strands of every candidate.
	if s.mmLociBuf, err = sycl.NewBuffer[uint32](2 * s.n); err != nil {
		return 0, err
	}
	b.track(s.mmLociBuf)
	if s.mmCountBuf, err = sycl.NewBuffer[uint16](2 * s.n); err != nil {
		return 0, err
	}
	b.track(s.mmCountBuf)
	if s.dirBuf, err = sycl.NewBuffer[byte](2 * s.n); err != nil {
		return 0, err
	}
	b.track(s.dirBuf)
	return s.n, nil
}

// Compare implements pipeline.Backend: submit one guide's comparer command
// group and read back its entries. The transient guide buffers are
// destroyed here; an error leaves them to Close.
func (b *syclBackend) Compare(ctx context.Context, st pipeline.Staged, qi int) (err error) {
	s := st.(*syclStaged)
	g := b.plan.Guides[qi]
	q := b.plan.Request.Queries[qi]
	n := s.n
	wg := b.e.wgSize()

	compBuf, err := sycl.NewBufferFrom(g.Codes)
	if err != nil {
		return err
	}
	b.track(compBuf)
	defer syclDestroy(b, compBuf, &err)
	compIdxBuf, err := sycl.NewBufferFrom(g.Index)
	if err != nil {
		return err
	}
	b.track(compIdxBuf)
	defer syclDestroy(b, compIdxBuf, &err)
	entryBuf, err := sycl.NewBuffer[uint32](1)
	if err != nil {
		return err
	}
	b.track(entryBuf)
	defer syclDestroy(b, entryBuf, &err)
	b.prof.addStaged(int64(len(g.Codes)+4*len(g.Index)) + 4)

	phases := kernels.ComparerPhases(b.e.variant())
	name := kernels.ComparerKernelName(b.e.variant())
	cgws := (n + wg - 1) / wg * wg
	ev := b.queue.SubmitCtx(ctx, func(h *sycl.Handler) error {
		chrAcc, err := sycl.Access(h, s.chrBuf, sycl.Read)
		if err != nil {
			return err
		}
		lociAcc, err := sycl.Access(h, s.lociBuf, sycl.Read)
		if err != nil {
			return err
		}
		flagsAcc, err := sycl.Access(h, s.flagsBuf, sycl.Read)
		if err != nil {
			return err
		}
		compAcc, err := sycl.Access(h, compBuf, sycl.Read)
		if err != nil {
			return err
		}
		compIdxAcc, err := sycl.Access(h, compIdxBuf, sycl.Read)
		if err != nil {
			return err
		}
		mmLociAcc, err := sycl.Access(h, s.mmLociBuf, sycl.Write)
		if err != nil {
			return err
		}
		mmCountAcc, err := sycl.Access(h, s.mmCountBuf, sycl.Write)
		if err != nil {
			return err
		}
		dirAcc, err := sycl.Access(h, s.dirBuf, sycl.Write)
		if err != nil {
			return err
		}
		entryAcc, err := sycl.Access(h, entryBuf, sycl.ReadWrite)
		if err != nil {
			return err
		}
		lComp, err := sycl.NewLocalAccessor[byte](h, 2*g.PatternLen)
		if err != nil {
			return err
		}
		lCompIdx, err := sycl.NewLocalAccessor[int32](h, 2*g.PatternLen)
		if err != nil {
			return err
		}
		ca := &kernels.ComparerArgs{
			Chr:       chrAcc.Slice(),
			Loci:      lociAcc.Slice(),
			Flags:     flagsAcc.Slice(),
			LociCount: uint32(n),
			Guide: &kernels.PatternPair{
				Codes:      compAcc.Slice(),
				Index:      compIdxAcc.Slice(),
				PatternLen: g.PatternLen,
			},
			Threshold:  uint16(q.MaxMismatches),
			MMLoci:     mmLociAcc.Slice(),
			MMCount:    mmCountAcc.Slice(),
			Direction:  dirAcc.Slice(),
			EntryCount: &entryAcc.Slice()[0],
		}
		return h.ParallelForPhases(name, gpu.R1(cgws), gpu.R1(wg), []func(it *sycl.NDItem){
			func(it *sycl.NDItem) { phases[0](it.Item(), ca, lComp.Slice(it), lCompIdx.Slice(it)) },
			func(it *sycl.NDItem) { phases[1](it.Item(), ca, lComp.Slice(it), lCompIdx.Slice(it)) },
		})
	})
	if err := ev.Wait(); err != nil {
		return err
	}
	b.prof.addKernel(name, ev.Stats(), wg)

	entryHost, err := entryBuf.Snapshot()
	if err != nil {
		return err
	}
	cnt := int(entryHost[0])
	// Validate before reading cnt entries from the output snapshots: the
	// comparer writes at most two entries (one per strand) per candidate.
	if cnt > 2*s.n {
		return fault.Errorf(fault.SiteReadback, fault.Corruption,
			"search: %s: comparer entry count %d exceeds the %d possible entries", b.e.Name(), entryHost[0], 2*s.n)
	}
	b.prof.addRead(4)
	b.prof.addEntries(int64(cnt))
	if cnt == 0 {
		return nil
	}
	mmLoci, err := s.mmLociBuf.Snapshot()
	if err != nil {
		return err
	}
	mmCount, err := s.mmCountBuf.Snapshot()
	if err != nil {
		return err
	}
	dirs, err := s.dirBuf.Snapshot()
	if err != nil {
		return err
	}
	b.prof.addRead(int64(cnt * (4 + 2 + 1)))
	for i := 0; i < cnt; i++ {
		s.entries = append(s.entries, rawHit{qi: qi, pos: int(mmLoci[i]), dir: dirs[i], mm: int(mmCount[i])})
	}
	return nil
}

// Drain implements pipeline.Backend: render the accumulated entries and
// destroy the chunk's buffers. A corruption error keeps the buffers for
// Release or Close to destroy.
func (b *syclBackend) Drain(ctx context.Context, st pipeline.Staged, r *pipeline.SiteRenderer) ([]Hit, error) {
	s := st.(*syclStaged)
	hits, derr := drainEntries(r, s.ch, b.plan.Guides, s.entries)
	if derr != nil {
		return nil, derr
	}
	var err error
	syclDestroy(b, s.chrBuf, &err)
	syclDestroy(b, s.lociBuf, &err)
	syclDestroy(b, s.flagsBuf, &err)
	syclDestroy(b, s.countBuf, &err)
	syclDestroy(b, s.mmLociBuf, &err)
	syclDestroy(b, s.mmCountBuf, &err)
	syclDestroy(b, s.dirBuf, &err)
	if err != nil {
		return nil, err
	}
	return hits, nil
}

// Release implements pipeline.Releaser: destroy a staged chunk's buffers
// after a failed attempt so a retry can re-stage without leaking. Destroy
// errors are swallowed — Close sweeps whatever remains live.
func (b *syclBackend) Release(st pipeline.Staged) {
	s, ok := st.(*syclStaged)
	if !ok {
		return
	}
	var err error
	syclDestroy(b, s.chrBuf, &err)
	syclDestroy(b, s.lociBuf, &err)
	syclDestroy(b, s.flagsBuf, &err)
	syclDestroy(b, s.countBuf, &err)
	syclDestroy(b, s.mmLociBuf, &err)
	syclDestroy(b, s.mmCountBuf, &err)
	syclDestroy(b, s.dirBuf, &err)
}
