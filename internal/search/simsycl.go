package search

import (
	"context"
	"fmt"
	"sync"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/alloc"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/sycl"
	"casoffinder/internal/tune"
)

// SimSYCL runs the search as the migrated SYCL application (§III): a queue
// from a device selector, buffers with accessors, command groups with local
// accessors and parallel_for, and implicit buffer write-back. The kernels
// are the same bodies the OpenCL engine runs; the work-group size is 256
// for both kernels, as in the paper's SYCL program.
type SimSYCL struct {
	// Device is the simulated GPU to run on.
	Device *gpu.Device
	// Variant selects the comparer kernel.
	Variant kernels.ComparerVariant
	// WorkGroupSize overrides the launch local size; 0 means 256.
	WorkGroupSize int
	// Auto resolves Variant and WorkGroupSize through the occupancy
	// autotuner (internal/tune) for this device at Stream start: Variant is
	// ignored, and WorkGroupSize (when set) narrows the tuner to that local
	// size instead of overriding its choice. Calibrate additionally runs
	// the tuner's online measured pass. Output is byte-identical to any
	// fixed-variant run.
	Auto      bool
	Calibrate bool
	// WorstCaseArena pins every launch's hit-buffer arena to the worst-case
	// layout (one page per work-group) instead of sizing it from the
	// predicted hit density; see SimCL.WorstCaseArena.
	WorstCaseArena bool
	// Resilience, when set, runs the engine under the pipeline's
	// fault-tolerant executor: transient errors (including asynchronous
	// exceptions) retry with backoff, hung kernels are reaped by the
	// watchdog, and chunks the device cannot complete fail over to the
	// CPU SWAR engine (unless a custom Fallback is configured),
	// preserving the byte-identical hit stream.
	Resilience *pipeline.Resilience
	// Trace and Metrics, when set, observe the run: pipeline-stage and
	// kernel-launch spans, latency histograms and profile-mirroring
	// counters. Track overrides the trace row prefix (the engine name by
	// default); MultiSYCL sets it to tell its sub-engines apart.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	Track   string

	profile *Profile
	// tuned is the resolved autotuner decision for the current run; set by
	// Stream (or by MultiSYCL for its per-device shells) before any backend
	// opens, read-only while the run is live.
	tuned *tune.Decision
}

// DefaultSYCLWorkGroup is the local work size of the SYCL application:
// "the local work size (work-group size) is 256 for launching both SYCL
// kernels" (§IV.A).
const DefaultSYCLWorkGroup = 256

// Name implements Engine.
func (e *SimSYCL) Name() string { return "sycl-sim" }

func (e *SimSYCL) track() string {
	if e.Track != "" {
		return e.Track
	}
	return e.Name()
}

// LastProfile implements Profiler.
func (e *SimSYCL) LastProfile() *Profile { return e.profile }

// variant is the comparer the run actually launches: the tuner's selection
// when one was resolved, the configured Variant otherwise.
func (e *SimSYCL) variant() kernels.ComparerVariant {
	if e.tuned != nil {
		return e.tuned.Variant
	}
	return e.Variant
}

func (e *SimSYCL) wgSize() int {
	if e.tuned != nil {
		return e.tuned.WGSize
	}
	if e.WorkGroupSize > 0 {
		return e.WorkGroupSize
	}
	return DefaultSYCLWorkGroup
}

// Run implements Engine.
func (e *SimSYCL) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	return Collect(context.Background(), e, asm, req)
}

// Stream implements Engine by running the SYCL command groups behind the
// shared pipeline: one scan worker submits kernels while the stager
// creates the next chunk's buffers.
func (e *SimSYCL) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	// Resolve the tuner before the pipeline opens any backend; the decision
	// is read-only for the rest of the run.
	e.tuned = nil
	if e.Auto && e.Device != nil {
		d, err := autotuneDecision(e.Device, req, e.WorkGroupSize, e.Calibrate)
		if err != nil {
			return fmt.Errorf("search: %s: autotune: %w", e.Name(), err)
		}
		e.tuned = d
	}
	p := &pipeline.Pipeline{
		Open: func(plan *pipeline.Plan) (pipeline.Backend, error) {
			if e.Device == nil {
				return nil, fmt.Errorf("search: %s: nil device", e.Name())
			}
			return newSYCLBackend(e, plan)
		},
		ScanWorkers: 1,
		Resilience:  resilienceFor(e.Resilience, func() *Profile { return e.profile }),
		Trace:       e.Trace,
		Metrics:     e.Metrics,
		Track:       e.track(),
	}
	// Mark the injector before the run so only this run's fault delta is
	// folded into the profile — a reused engine must not re-count earlier
	// runs' faults.
	var mark int
	if e.Device != nil {
		e.Device.SetObs(e.Trace, e.Metrics, e.track()+"/gpu")
		mark = e.Device.Faults().Mark()
	}
	err := p.Stream(ctx, asm, req, emit)
	if e.Device != nil && e.profile != nil {
		e.profile.addFaults(e.Device.Faults().LogSince(mark))
	}
	return err
}

// destroyer is the common teardown face of sycl.Buffer[T] across element
// types, so one live set can hold them all.
type destroyer interface{ Destroy() error }

// syclBackend adapts the SYCL program to the pipeline Backend contract.
// Every buffer is tracked in the live set so Close can destroy whatever an
// aborted run left behind — a staging error can no longer leak simulator
// buffers.
type syclBackend struct {
	e    *SimSYCL
	plan *pipeline.Plan
	prof *Profile

	queue *sycl.Queue

	patBuf    *sycl.Buffer[byte]
	patIdxBuf *sycl.Buffer[int32]

	// finderPred and comparerPred carry the observed hit density across
	// chunks for arena provisioning; see the shared helpers in arena.go.
	finderPred   *alloc.Predictor
	comparerPred *alloc.Predictor

	// mu guards live: the stager creates buffers while the scan worker
	// destroys others.
	mu   sync.Mutex
	live map[destroyer]struct{}
}

// track registers a freshly created buffer in the backend's live set.
func (b *syclBackend) track(d destroyer) {
	b.mu.Lock()
	b.live[d] = struct{}{}
	b.mu.Unlock()
}

// syclDestroy destroys a buffer and drops it from the live set, folding the
// error; nil buffers are ignored so error paths can destroy unconditionally.
func syclDestroy[T any](b *syclBackend, buf *sycl.Buffer[T], err *error) {
	if buf == nil {
		return
	}
	b.mu.Lock()
	delete(b.live, buf)
	b.mu.Unlock()
	closeErr(buf.Destroy(), err)
}

// newSYCLBackend builds the queue (steps 1-2 of the SYCL column) and the
// run-constant pattern tables; the scaffold goes behind the constant
// address space as in the paper's finder kernel.
func newSYCLBackend(e *SimSYCL, plan *pipeline.Plan) (_ *syclBackend, err error) {
	b := &syclBackend{
		e: e, plan: plan, prof: newProfile(e.Metrics),
		finderPred:   newFinderPredictor(),
		comparerPred: newComparerPredictor(),
		live:         make(map[destroyer]struct{}),
	}
	e.profile = b.prof
	if e.tuned != nil {
		b.prof.addTune(e.track(), e.tuned)
	}
	defer func() {
		if err != nil {
			b.Close()
		}
	}()
	if b.queue, err = sycl.NewQueue(sycl.GPUSelector{}, e.Device); err != nil {
		return nil, err
	}
	// The async handler is how the migrated program observes asynchronous
	// exceptions (§III): every delivery is counted in the profile; the
	// errors themselves still surface on the events the backend waits on.
	b.queue.SetAsyncHandler(func(*sycl.AsyncError) { b.prof.addAsync() })
	pattern := plan.Pattern
	if b.patBuf, err = sycl.NewConstantBuffer(pattern.Codes); err != nil {
		return nil, err
	}
	b.track(b.patBuf)
	if b.patIdxBuf, err = sycl.NewBufferFrom(pattern.Index); err != nil {
		return nil, err
	}
	b.track(b.patIdxBuf)
	b.prof.addStaged(int64(len(pattern.Codes) + 4*len(pattern.Index)))
	return b, nil
}

// Close implements pipeline.Backend: destroy every still-live buffer (the
// pattern tables plus whatever staged chunks never reached Drain), folding
// the first error.
func (b *syclBackend) Close() (err error) {
	b.mu.Lock()
	leaked := make([]destroyer, 0, len(b.live))
	for d := range b.live {
		leaked = append(leaked, d)
	}
	b.live = make(map[destroyer]struct{})
	b.mu.Unlock()
	for _, d := range leaked {
		closeErr(d.Destroy(), &err)
	}
	b.patBuf, b.patIdxBuf = nil, nil
	return err
}

// syclArena is one launch's device-side arena state buffers.
type syclArena struct {
	layout alloc.Layout

	cursorBuf *sycl.Buffer[uint32]
	countBuf  *sycl.Buffer[uint32]
	pageBuf   *sycl.Buffer[uint32]
	ovfBuf    *sycl.Buffer[uint32]
}

// createArena allocates one launch's arena state buffers for the layout
// (cursor and counters zeroed, page table cleared to NoPage). On error the
// partial allocation is left to the caller's release/Close.
func (b *syclBackend) createArena(l alloc.Layout) (*syclArena, error) {
	a := &syclArena{layout: l}
	var err error
	if a.cursorBuf, err = sycl.NewBuffer[uint32](1); err != nil {
		return nil, err
	}
	b.track(a.cursorBuf)
	if a.countBuf, err = sycl.NewBuffer[uint32](l.Groups); err != nil {
		return nil, err
	}
	b.track(a.countBuf)
	if a.pageBuf, err = sycl.NewBufferFrom(alloc.UnsetPages(l.Groups)); err != nil {
		return nil, err
	}
	b.track(a.pageBuf)
	if a.ovfBuf, err = sycl.NewBuffer[uint32](1); err != nil {
		return nil, err
	}
	b.track(a.ovfBuf)
	b.prof.addStaged(l.MetaBytes())
	return a, nil
}

// release destroys the arena's state buffers.
func (a *syclArena) release(b *syclBackend) error {
	var err error
	syclDestroy(b, a.cursorBuf, &err)
	syclDestroy(b, a.countBuf, &err)
	syclDestroy(b, a.pageBuf, &err)
	syclDestroy(b, a.ovfBuf, &err)
	return err
}

// access binds the arena state into a command group, returning the
// kernel-visible alloc.Device over the accessor slices.
func (a *syclArena) access(h *sycl.Handler) (*alloc.Device, error) {
	cursorAcc, err := sycl.Access(h, a.cursorBuf, sycl.ReadWrite)
	if err != nil {
		return nil, err
	}
	countAcc, err := sycl.Access(h, a.countBuf, sycl.ReadWrite)
	if err != nil {
		return nil, err
	}
	pageAcc, err := sycl.Access(h, a.pageBuf, sycl.ReadWrite)
	if err != nil {
		return nil, err
	}
	ovfAcc, err := sycl.Access(h, a.ovfBuf, sycl.ReadWrite)
	if err != nil {
		return nil, err
	}
	return &alloc.Device{
		PageSlots: a.layout.PageSlots,
		Pages:     a.layout.Pages,
		Cursor:    &cursorAcc.Slice()[0],
		Count:     countAcc.Slice(),
		PageOf:    pageAcc.Slice(),
		Overflow:  &ovfAcc.Slice()[0],
	}, nil
}

// readArena snapshots the launch's arena state back. The overflow counter
// is read (and accounted) first: a non-zero value means the launch dropped
// entries and must be retried on a grown arena, returned as dropped with a
// nil geometry. A clean launch's claim state is then snapshotted and
// decoded — Decode rejects impossible state as fault.SiteArena corruption,
// after the readback bytes are already on the profile.
func (b *syclBackend) readArena(a *syclArena) (geo *alloc.Geometry, dropped uint32, err error) {
	ovf, err := a.ovfBuf.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	b.prof.addRead(4)
	if ovf[0] != 0 {
		return nil, ovf[0], nil
	}
	cursor, err := a.cursorBuf.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	count, err := a.countBuf.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	pageOf, err := a.pageBuf.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	b.prof.addRead(4 + 8*int64(a.layout.Groups))
	geo, err = alloc.Decode(cursor[0], count, pageOf, a.layout.PageSlots, a.layout.Pages)
	if err != nil {
		return nil, 0, err
	}
	return geo, 0, nil
}

// syclStaged is one chunk's state: the sequence buffer created at stage
// time, the device-side compacted candidate buffers the finder arena is
// drained into, and the raw entries accumulated across guides.
type syclStaged struct {
	ch *genome.Chunk

	chrBuf    *sycl.Buffer[byte]
	cLociBuf  *sycl.Buffer[uint32]
	cFlagsBuf *sycl.Buffer[byte]

	n       int
	entries []rawHit
}

// Stage implements pipeline.Backend: create the chunk's sequence buffer.
// The chunk is staged as-is: the kernels' IUPAC tables accept soft-masked
// lower-case bases, so no per-chunk upper-case copy is needed (site
// rendering normalizes case in the reported site). The finder's output no
// longer stages worst-case Body-sized buffers here — each Find attempt
// provisions an arena for the predicted density instead. This runs on the
// stager goroutine while the scan worker submits kernels for the previous
// chunk; a mid-stage failure leaves the earlier buffers to Close.
func (b *syclBackend) Stage(ctx context.Context, ch *genome.Chunk) (pipeline.Staged, error) {
	s := &syclStaged{ch: ch}
	var err error
	if s.chrBuf, err = sycl.NewBufferFrom(ch.Data); err != nil {
		return nil, err
	}
	b.track(s.chrBuf)
	b.prof.addStagedChunk(int64(len(ch.Data)))
	return s, nil
}

// Find implements pipeline.Backend: submit the finder command group (local
// accessors, two phases) with an arena provisioned for the predicted
// candidate density, grow and relaunch on overflow, then compact the
// claimed pages into the comparer's exact-size input with device-side copy
// command groups. Only the arena's claim state crosses back to the host;
// the candidates themselves never do.
func (b *syclBackend) Find(ctx context.Context, st pipeline.Staged) (int, error) {
	s := st.(*syclStaged)
	plen := b.plan.Pattern.PatternLen
	sites := s.ch.Body
	if sites == 0 {
		// A final chunk can own zero site starts (its body is shorter than
		// the pattern's overlap); there is nothing to scan, and a zero-sized
		// ND-range cannot be launched.
		return 0, nil
	}
	wg := b.e.wgSize()

	gws := (sites + wg - 1) / wg * wg
	layout := finderLayout(b.plan, b.finderPred, s.ch, gws/wg, wg, b.e.WorstCaseArena)

	for {
		lociBuf, err := sycl.NewBuffer[uint32](layout.Slots())
		if err != nil {
			return 0, err
		}
		b.track(lociBuf)
		flagsBuf, err := sycl.NewBuffer[byte](layout.Slots())
		if err != nil {
			return 0, err
		}
		b.track(flagsBuf)
		arena, err := b.createArena(layout)
		if err != nil {
			return 0, err
		}
		b.prof.addArena(layout.DataBytes(finderEntryBytes)+layout.MetaBytes(), 0)
		release := func() error {
			var err error
			syclDestroy(b, lociBuf, &err)
			syclDestroy(b, flagsBuf, &err)
			closeErr(arena.release(b), &err)
			return err
		}

		ev := b.queue.SubmitCtx(ctx, func(h *sycl.Handler) error {
			chrAcc, err := sycl.Access(h, s.chrBuf, sycl.Read)
			if err != nil {
				return err
			}
			patAcc, err := sycl.Access(h, b.patBuf, sycl.Read)
			if err != nil {
				return err
			}
			patIdxAcc, err := sycl.Access(h, b.patIdxBuf, sycl.Read)
			if err != nil {
				return err
			}
			lociAcc, err := sycl.Access(h, lociBuf, sycl.Write)
			if err != nil {
				return err
			}
			flagsAcc, err := sycl.Access(h, flagsBuf, sycl.Write)
			if err != nil {
				return err
			}
			arenaDev, err := arena.access(h)
			if err != nil {
				return err
			}
			lPat, err := sycl.NewLocalAccessor[byte](h, 2*plen)
			if err != nil {
				return err
			}
			lPatIdx, err := sycl.NewLocalAccessor[int32](h, 2*plen)
			if err != nil {
				return err
			}
			fa := &kernels.FinderArgs{
				Chr: chrAcc.Slice(),
				Pattern: &kernels.PatternPair{
					Codes:      patAcc.Slice(),
					Index:      patIdxAcc.Slice(),
					PatternLen: plen,
				},
				Sites: sites,
				Loci:  lociAcc.Slice(),
				Flags: flagsAcc.Slice(),
				Arena: arenaDev,
			}
			return h.ParallelForPhases("finder", gpu.R1(gws), gpu.R1(wg), []func(it *sycl.NDItem){
				func(it *sycl.NDItem) { kernels.FinderStage(it.Item(), fa, lPat.Slice(it), lPatIdx.Slice(it)) },
				func(it *sycl.NDItem) { kernels.FinderScan(it.Item(), fa, lPat.Slice(it), lPatIdx.Slice(it)) },
			})
		})
		if err := ev.Wait(); err != nil {
			return 0, err
		}
		b.prof.addKernel("finder", ev.Stats(), wg)

		geo, dropped, err := b.readArena(arena)
		if err != nil {
			return 0, err
		}
		if dropped > 0 {
			if err := release(); err != nil {
				return 0, err
			}
			grown, ok := alloc.Grow(layout)
			if !ok {
				return 0, fault.Errorf(fault.SiteArena, fault.Overflow,
					"search: %s: finder arena dropped %d entries at worst-case %v", b.e.Name(), dropped, layout)
			}
			layout = grown
			b.prof.addOverflowRetry()
			continue
		}
		b.prof.addArena(0, int64(geo.Claimed))

		s.n = geo.Total
		// The finder emits at most one entry per scanned site; a larger
		// total can only be corrupted arena state that slipped past Decode's
		// structural checks. Reject before sizing the gather on it — the
		// readback bytes are already on the profile.
		if s.n > sites {
			s.n = 0
			return 0, fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: %s: finder count %d exceeds the %d scanned sites", b.e.Name(), geo.Total, sites)
		}
		b.prof.addCandidates(int64(s.n))

		if s.n > 0 {
			// Compact the candidates into the comparer's exact-size input
			// with device-side copy command groups, one per claimed page: the
			// comparer indexes loci/flags densely in [0, n), so a
			// page-strided view would not do, and cgh.copy between ranged
			// accessors keeps the candidates off the host entirely — only
			// the arena's claim state is ever read back.
			if s.cLociBuf, err = sycl.NewBuffer[uint32](s.n); err != nil {
				return 0, err
			}
			b.track(s.cLociBuf)
			if s.cFlagsBuf, err = sycl.NewBuffer[byte](s.n); err != nil {
				return 0, err
			}
			b.track(s.cFlagsBuf)
			if err := copyPages(b.queue, lociBuf, s.cLociBuf, geo); err != nil {
				return 0, err
			}
			if err := copyPages(b.queue, flagsBuf, s.cFlagsBuf, geo); err != nil {
				return 0, err
			}
		}
		if err := release(); err != nil {
			return 0, err
		}
		b.finderPred.Observe(layout.Groups, geo.Claimed)
		break
	}
	return s.n, nil
}

// copyPages drains the claimed pages of a page-strided arena buffer into a
// compact destination with one device-side copy command group per page —
// cgh.copy(srcAccessor, dstAccessor) over ranged accessors. Each copy is
// waited on so the caller may destroy the source afterwards.
func copyPages[T any](q *sycl.Queue, src, dst *sycl.Buffer[T], geo *alloc.Geometry) error {
	pos := 0
	for p := 0; p < geo.Claimed; p++ {
		n := geo.Counts[p]
		base := p * geo.PageSlots
		at := pos
		ev := q.Submit(func(h *sycl.Handler) error {
			srcAcc, err := sycl.AccessRange(h, src, sycl.Read, n, base)
			if err != nil {
				return err
			}
			dstAcc, err := sycl.AccessRange(h, dst, sycl.Write, n, at)
			if err != nil {
				return err
			}
			return sycl.Copy(h, dstAcc, srcAcc)
		})
		if err := ev.Wait(); err != nil {
			return err
		}
		pos += n
	}
	return nil
}

// Compare implements pipeline.Backend: submit one guide's comparer command
// group with an arena provisioned for the predicted entry density (two
// slots per candidate in the worst case), grow and relaunch on overflow,
// and gather the entries with one ranged host accessor per claimed page.
// The transient guide buffers are destroyed here; an error leaves them to
// Close.
func (b *syclBackend) Compare(ctx context.Context, st pipeline.Staged, qi int) (err error) {
	s := st.(*syclStaged)
	g := b.plan.Guides[qi]
	q := b.plan.Request.Queries[qi]
	n := s.n
	wg := b.e.wgSize()

	compBuf, err := sycl.NewBufferFrom(g.Codes)
	if err != nil {
		return err
	}
	b.track(compBuf)
	defer syclDestroy(b, compBuf, &err)
	compIdxBuf, err := sycl.NewBufferFrom(g.Index)
	if err != nil {
		return err
	}
	b.track(compIdxBuf)
	defer syclDestroy(b, compIdxBuf, &err)
	b.prof.addStaged(int64(len(g.Codes) + 4*len(g.Index)))

	phases := kernels.ComparerPhases(b.e.variant())
	name := kernels.ComparerKernelName(b.e.variant())
	cgws := (n + wg - 1) / wg * wg
	layout := comparerLayout(b.comparerPred, cgws/wg, 2*wg, b.e.WorstCaseArena)

	for {
		mmLociBuf, err := sycl.NewBuffer[uint32](layout.Slots())
		if err != nil {
			return err
		}
		b.track(mmLociBuf)
		mmCountBuf, err := sycl.NewBuffer[uint16](layout.Slots())
		if err != nil {
			return err
		}
		b.track(mmCountBuf)
		dirBuf, err := sycl.NewBuffer[byte](layout.Slots())
		if err != nil {
			return err
		}
		b.track(dirBuf)
		arena, err := b.createArena(layout)
		if err != nil {
			return err
		}
		b.prof.addArena(layout.DataBytes(comparerEntryBytes)+layout.MetaBytes(), 0)
		release := func() error {
			var err error
			syclDestroy(b, mmLociBuf, &err)
			syclDestroy(b, mmCountBuf, &err)
			syclDestroy(b, dirBuf, &err)
			closeErr(arena.release(b), &err)
			return err
		}

		ev := b.queue.SubmitCtx(ctx, func(h *sycl.Handler) error {
			chrAcc, err := sycl.Access(h, s.chrBuf, sycl.Read)
			if err != nil {
				return err
			}
			lociAcc, err := sycl.Access(h, s.cLociBuf, sycl.Read)
			if err != nil {
				return err
			}
			flagsAcc, err := sycl.Access(h, s.cFlagsBuf, sycl.Read)
			if err != nil {
				return err
			}
			compAcc, err := sycl.Access(h, compBuf, sycl.Read)
			if err != nil {
				return err
			}
			compIdxAcc, err := sycl.Access(h, compIdxBuf, sycl.Read)
			if err != nil {
				return err
			}
			mmLociAcc, err := sycl.Access(h, mmLociBuf, sycl.Write)
			if err != nil {
				return err
			}
			mmCountAcc, err := sycl.Access(h, mmCountBuf, sycl.Write)
			if err != nil {
				return err
			}
			dirAcc, err := sycl.Access(h, dirBuf, sycl.Write)
			if err != nil {
				return err
			}
			arenaDev, err := arena.access(h)
			if err != nil {
				return err
			}
			lComp, err := sycl.NewLocalAccessor[byte](h, 2*g.PatternLen)
			if err != nil {
				return err
			}
			lCompIdx, err := sycl.NewLocalAccessor[int32](h, 2*g.PatternLen)
			if err != nil {
				return err
			}
			ca := &kernels.ComparerArgs{
				Chr:       chrAcc.Slice(),
				Loci:      lociAcc.Slice(),
				Flags:     flagsAcc.Slice(),
				LociCount: uint32(n),
				Guide: &kernels.PatternPair{
					Codes:      compAcc.Slice(),
					Index:      compIdxAcc.Slice(),
					PatternLen: g.PatternLen,
				},
				Threshold: uint16(q.MaxMismatches),
				MMLoci:    mmLociAcc.Slice(),
				MMCount:   mmCountAcc.Slice(),
				Direction: dirAcc.Slice(),
				Arena:     arenaDev,
			}
			return h.ParallelForPhases(name, gpu.R1(cgws), gpu.R1(wg), []func(it *sycl.NDItem){
				func(it *sycl.NDItem) { phases[0](it.Item(), ca, lComp.Slice(it), lCompIdx.Slice(it)) },
				func(it *sycl.NDItem) { phases[1](it.Item(), ca, lComp.Slice(it), lCompIdx.Slice(it)) },
			})
		})
		if err := ev.Wait(); err != nil {
			return err
		}
		b.prof.addKernel(name, ev.Stats(), wg)

		geo, dropped, err := b.readArena(arena)
		if err != nil {
			return err
		}
		if dropped > 0 {
			if err := release(); err != nil {
				return err
			}
			grown, ok := alloc.Grow(layout)
			if !ok {
				return fault.Errorf(fault.SiteArena, fault.Overflow,
					"search: %s: comparer arena dropped %d entries at worst-case %v", b.e.Name(), dropped, layout)
			}
			layout = grown
			b.prof.addOverflowRetry()
			continue
		}
		b.prof.addArena(0, int64(geo.Claimed))

		cnt := geo.Total
		// The comparer writes at most two entries (one per strand) per
		// candidate; a larger total can only be corrupted arena state.
		// Reject before sizing the gather on it — the readback bytes are
		// already on the profile.
		if cnt > 2*s.n {
			return fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: %s: comparer entry count %d exceeds the %d possible entries", b.e.Name(), cnt, 2*s.n)
		}
		b.prof.addEntries(int64(cnt))
		if cnt > 0 {
			// Ranged host accessors gather only each claimed page's valid
			// prefix: the readback traffic is cnt entries however sparsely
			// the pages are filled, just as the pre-arena host read exactly
			// the counted entries.
			mmLoci := make([]uint32, 0, cnt)
			mmCount := make([]uint16, 0, cnt)
			dirs := make([]byte, 0, cnt)
			for p := 0; p < geo.Claimed; p++ {
				n := geo.Counts[p]
				base := p * layout.PageSlots
				lo, err := mmLociBuf.SnapshotRange(base, n)
				if err != nil {
					return err
				}
				mc, err := mmCountBuf.SnapshotRange(base, n)
				if err != nil {
					return err
				}
				dir, err := dirBuf.SnapshotRange(base, n)
				if err != nil {
					return err
				}
				mmLoci = append(mmLoci, lo...)
				mmCount = append(mmCount, mc...)
				dirs = append(dirs, dir...)
			}
			b.prof.addRead(int64(comparerEntryBytes * cnt))
			for i := 0; i < cnt; i++ {
				s.entries = append(s.entries, rawHit{qi: qi, pos: int(mmLoci[i]), dir: dirs[i], mm: int(mmCount[i])})
			}
		}
		if err := release(); err != nil {
			return err
		}
		b.comparerPred.Observe(layout.Groups, geo.Claimed)
		break
	}
	return nil
}

// Drain implements pipeline.Backend: render the accumulated entries and
// destroy the chunk's buffers. A corruption error keeps the buffers for
// Release or Close to destroy.
func (b *syclBackend) Drain(ctx context.Context, st pipeline.Staged, r *pipeline.SiteRenderer) ([]Hit, error) {
	s := st.(*syclStaged)
	hits, derr := drainEntries(r, s.ch, b.plan.Guides, s.entries)
	if derr != nil {
		return nil, derr
	}
	var err error
	syclDestroy(b, s.chrBuf, &err)
	syclDestroy(b, s.cLociBuf, &err)
	syclDestroy(b, s.cFlagsBuf, &err)
	if err != nil {
		return nil, err
	}
	return hits, nil
}

// Release implements pipeline.Releaser: destroy a staged chunk's buffers
// after a failed attempt so a retry can re-stage without leaking. Destroy
// errors are swallowed — Close sweeps whatever remains live.
func (b *syclBackend) Release(st pipeline.Staged) {
	s, ok := st.(*syclStaged)
	if !ok {
		return
	}
	var err error
	syclDestroy(b, s.chrBuf, &err)
	syclDestroy(b, s.cLociBuf, &err)
	syclDestroy(b, s.cFlagsBuf, &err)
}
