package search

import (
	"fmt"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/kernels"
	"casoffinder/internal/sycl"
)

// SimSYCL runs the search as the migrated SYCL application (§III): a queue
// from a device selector, buffers with accessors, command groups with local
// accessors and parallel_for, and implicit buffer write-back. The kernels
// are the same bodies the OpenCL engine runs; the work-group size is 256
// for both kernels, as in the paper's SYCL program.
type SimSYCL struct {
	// Device is the simulated GPU to run on.
	Device *gpu.Device
	// Variant selects the comparer kernel.
	Variant kernels.ComparerVariant
	// WorkGroupSize overrides the launch local size; 0 means 256.
	WorkGroupSize int

	profile *Profile
}

// DefaultSYCLWorkGroup is the local work size of the SYCL application:
// "the local work size (work-group size) is 256 for launching both SYCL
// kernels" (§IV.A).
const DefaultSYCLWorkGroup = 256

// Name implements Engine.
func (e *SimSYCL) Name() string { return "sycl-sim" }

// LastProfile implements Profiler.
func (e *SimSYCL) LastProfile() *Profile { return e.profile }

func (e *SimSYCL) wgSize() int {
	if e.WorkGroupSize > 0 {
		return e.WorkGroupSize
	}
	return DefaultSYCLWorkGroup
}

// Run implements Engine.
func (e *SimSYCL) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if e.Device == nil {
		return nil, fmt.Errorf("search: %s: nil device", e.Name())
	}
	prof := newProfile()
	e.profile = prof

	pattern, err := kernels.NewPatternPair([]byte(req.Pattern))
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	guides := make([]*kernels.PatternPair, len(req.Queries))
	for i, q := range req.Queries {
		if guides[i], err = kernels.NewPatternPair([]byte(q.Guide)); err != nil {
			return nil, fmt.Errorf("search: query %d: %w", i, err)
		}
	}
	chunker := &genome.Chunker{ChunkBytes: req.chunkBytes(), PatternLen: pattern.PatternLen}
	chunks, err := chunker.Plan(asm)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}

	// Device selector and queue (steps 1-2 of the SYCL column).
	queue, err := sycl.NewQueue(sycl.GPUSelector{}, e.Device)
	if err != nil {
		return nil, err
	}

	// Pattern tables live for the whole run; the scaffold goes behind the
	// constant address space as in the paper's finder kernel.
	patBuf, err := sycl.NewConstantBuffer(pattern.Codes)
	if err != nil {
		return nil, err
	}
	defer patBuf.Destroy()
	patIdxBuf, err := sycl.NewBufferFrom(pattern.Index)
	if err != nil {
		return nil, err
	}
	defer patIdxBuf.Destroy()
	prof.BytesStaged += int64(len(pattern.Codes) + 4*len(pattern.Index))

	var hits []Hit
	for _, ch := range chunks {
		chHits, err := e.runChunk(queue, pattern, guides, req, ch, patBuf, patIdxBuf)
		if err != nil {
			return nil, err
		}
		hits = append(hits, chHits...)
	}
	sortHits(hits)
	return hits, nil
}

func (e *SimSYCL) runChunk(
	queue *sycl.Queue,
	pattern *kernels.PatternPair, guides []*kernels.PatternPair,
	req *Request, ch *genome.Chunk,
	patBuf *sycl.Buffer[byte], patIdxBuf *sycl.Buffer[int32],
) ([]Hit, error) {
	prof := e.profile
	plen := pattern.PatternLen
	// The chunk is staged as-is: the kernels' IUPAC tables accept
	// soft-masked lower-case bases, so no per-chunk upper-case copy is
	// needed (renderSite normalizes case in the reported site).
	data := ch.Data
	sites := ch.Body
	wg := e.wgSize()

	chrBuf, err := sycl.NewBufferFrom(data)
	if err != nil {
		return nil, err
	}
	defer chrBuf.Destroy()
	lociBuf, err := sycl.NewBuffer[uint32](sites)
	if err != nil {
		return nil, err
	}
	defer lociBuf.Destroy()
	flagsBuf, err := sycl.NewBuffer[byte](sites)
	if err != nil {
		return nil, err
	}
	defer flagsBuf.Destroy()
	countBuf, err := sycl.NewBuffer[uint32](1)
	if err != nil {
		return nil, err
	}
	defer countBuf.Destroy()
	prof.Chunks++
	prof.BytesStaged += int64(len(data))

	gws := (sites + wg - 1) / wg * wg
	ev := queue.Submit(func(h *sycl.Handler) error {
		chrAcc, err := sycl.Access(h, chrBuf, sycl.Read)
		if err != nil {
			return err
		}
		patAcc, err := sycl.Access(h, patBuf, sycl.Read)
		if err != nil {
			return err
		}
		patIdxAcc, err := sycl.Access(h, patIdxBuf, sycl.Read)
		if err != nil {
			return err
		}
		lociAcc, err := sycl.Access(h, lociBuf, sycl.Write)
		if err != nil {
			return err
		}
		flagsAcc, err := sycl.Access(h, flagsBuf, sycl.Write)
		if err != nil {
			return err
		}
		countAcc, err := sycl.Access(h, countBuf, sycl.ReadWrite)
		if err != nil {
			return err
		}
		lPat, err := sycl.NewLocalAccessor[byte](h, 2*plen)
		if err != nil {
			return err
		}
		lPatIdx, err := sycl.NewLocalAccessor[int32](h, 2*plen)
		if err != nil {
			return err
		}
		fa := &kernels.FinderArgs{
			Chr: chrAcc.Slice(),
			Pattern: &kernels.PatternPair{
				Codes:      patAcc.Slice(),
				Index:      patIdxAcc.Slice(),
				PatternLen: plen,
			},
			Sites: sites,
			Loci:  lociAcc.Slice(),
			Flags: flagsAcc.Slice(),
			Count: &countAcc.Slice()[0],
		}
		return h.ParallelForPhases("finder", gpu.R1(gws), gpu.R1(wg), []func(it *sycl.NDItem){
			func(it *sycl.NDItem) { kernels.FinderStage(it.Item(), fa, lPat.Slice(it), lPatIdx.Slice(it)) },
			func(it *sycl.NDItem) { kernels.FinderScan(it.Item(), fa, lPat.Slice(it), lPatIdx.Slice(it)) },
		})
	})
	if err := ev.Wait(); err != nil {
		return nil, err
	}
	prof.addKernel("finder", ev.Stats(), wg)

	countHost, err := countBuf.Snapshot()
	if err != nil {
		return nil, err
	}
	n := int(countHost[0])
	prof.BytesRead += 4
	prof.CandidateSites += int64(n)
	if n == 0 {
		return nil, nil
	}

	mmLociBuf, err := sycl.NewBuffer[uint32](2 * n)
	if err != nil {
		return nil, err
	}
	defer mmLociBuf.Destroy()
	mmCountBuf, err := sycl.NewBuffer[uint16](2 * n)
	if err != nil {
		return nil, err
	}
	defer mmCountBuf.Destroy()
	dirBuf, err := sycl.NewBuffer[byte](2 * n)
	if err != nil {
		return nil, err
	}
	defer dirBuf.Destroy()

	var hits []Hit
	for qi, g := range guides {
		qHits, err := e.runComparer(queue, ch, data, g, qi, req.Queries[qi], n,
			chrBuf, lociBuf, flagsBuf, mmLociBuf, mmCountBuf, dirBuf)
		if err != nil {
			return nil, err
		}
		hits = append(hits, qHits...)
	}
	return hits, nil
}

func (e *SimSYCL) runComparer(
	queue *sycl.Queue,
	ch *genome.Chunk, data []byte, g *kernels.PatternPair,
	qi int, q Query, n int,
	chrBuf *sycl.Buffer[byte], lociBuf *sycl.Buffer[uint32], flagsBuf *sycl.Buffer[byte],
	mmLociBuf *sycl.Buffer[uint32], mmCountBuf *sycl.Buffer[uint16], dirBuf *sycl.Buffer[byte],
) ([]Hit, error) {
	prof := e.profile
	wg := e.wgSize()
	compBuf, err := sycl.NewBufferFrom(g.Codes)
	if err != nil {
		return nil, err
	}
	defer compBuf.Destroy()
	compIdxBuf, err := sycl.NewBufferFrom(g.Index)
	if err != nil {
		return nil, err
	}
	defer compIdxBuf.Destroy()
	entryBuf, err := sycl.NewBuffer[uint32](1)
	if err != nil {
		return nil, err
	}
	defer entryBuf.Destroy()
	prof.BytesStaged += int64(len(g.Codes)+4*len(g.Index)) + 4

	phases := kernels.ComparerPhases(e.Variant)
	name := kernels.ComparerKernelName(e.Variant)
	cgws := (n + wg - 1) / wg * wg
	ev := queue.Submit(func(h *sycl.Handler) error {
		chrAcc, err := sycl.Access(h, chrBuf, sycl.Read)
		if err != nil {
			return err
		}
		lociAcc, err := sycl.Access(h, lociBuf, sycl.Read)
		if err != nil {
			return err
		}
		flagsAcc, err := sycl.Access(h, flagsBuf, sycl.Read)
		if err != nil {
			return err
		}
		compAcc, err := sycl.Access(h, compBuf, sycl.Read)
		if err != nil {
			return err
		}
		compIdxAcc, err := sycl.Access(h, compIdxBuf, sycl.Read)
		if err != nil {
			return err
		}
		mmLociAcc, err := sycl.Access(h, mmLociBuf, sycl.Write)
		if err != nil {
			return err
		}
		mmCountAcc, err := sycl.Access(h, mmCountBuf, sycl.Write)
		if err != nil {
			return err
		}
		dirAcc, err := sycl.Access(h, dirBuf, sycl.Write)
		if err != nil {
			return err
		}
		entryAcc, err := sycl.Access(h, entryBuf, sycl.ReadWrite)
		if err != nil {
			return err
		}
		lComp, err := sycl.NewLocalAccessor[byte](h, 2*g.PatternLen)
		if err != nil {
			return err
		}
		lCompIdx, err := sycl.NewLocalAccessor[int32](h, 2*g.PatternLen)
		if err != nil {
			return err
		}
		ca := &kernels.ComparerArgs{
			Chr:       chrAcc.Slice(),
			Loci:      lociAcc.Slice(),
			Flags:     flagsAcc.Slice(),
			LociCount: uint32(n),
			Guide: &kernels.PatternPair{
				Codes:      compAcc.Slice(),
				Index:      compIdxAcc.Slice(),
				PatternLen: g.PatternLen,
			},
			Threshold:  uint16(q.MaxMismatches),
			MMLoci:     mmLociAcc.Slice(),
			MMCount:    mmCountAcc.Slice(),
			Direction:  dirAcc.Slice(),
			EntryCount: &entryAcc.Slice()[0],
		}
		return h.ParallelForPhases(name, gpu.R1(cgws), gpu.R1(wg), []func(it *sycl.NDItem){
			func(it *sycl.NDItem) { phases[0](it.Item(), ca, lComp.Slice(it), lCompIdx.Slice(it)) },
			func(it *sycl.NDItem) { phases[1](it.Item(), ca, lComp.Slice(it), lCompIdx.Slice(it)) },
		})
	})
	if err := ev.Wait(); err != nil {
		return nil, err
	}
	prof.addKernel(name, ev.Stats(), wg)

	entries, err := entryBuf.Snapshot()
	if err != nil {
		return nil, err
	}
	cnt := int(entries[0])
	prof.BytesRead += 4
	prof.Entries += int64(cnt)
	if cnt == 0 {
		return nil, nil
	}
	mmLoci, err := mmLociBuf.Snapshot()
	if err != nil {
		return nil, err
	}
	mmCount, err := mmCountBuf.Snapshot()
	if err != nil {
		return nil, err
	}
	dirs, err := dirBuf.Snapshot()
	if err != nil {
		return nil, err
	}
	prof.BytesRead += int64(cnt * (4 + 2 + 1))

	hits := make([]Hit, 0, cnt)
	for i := 0; i < cnt; i++ {
		pos := int(mmLoci[i])
		window := data[pos : pos+g.PatternLen]
		hits = append(hits, Hit{
			QueryIndex: qi,
			SeqName:    ch.SeqName,
			Pos:        ch.Start + pos,
			Dir:        dirs[i],
			Mismatches: int(mmCount[i]),
			Site:       renderSite(window, g, dirs[i]),
		})
	}
	return hits, nil
}
