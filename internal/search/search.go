// Package search is the core library of the reproduction: the Cas-OFFinder
// off-target search pipeline (§II.A) behind a clean Go API. A Request names
// a PAM-scaffold pattern, one or more guide queries with per-guide mismatch
// limits, and the assembly to scan; an Engine executes it.
//
// Three engines are provided:
//
//   - CPU — a production goroutine-parallel implementation for real use;
//   - SimCL — the OpenCL-style host program over the device simulator,
//     mirroring the paper's original application (runtime-chosen work-group
//     size, explicit buffer management, 13-step lifecycle);
//   - SimSYCL — the migrated SYCL-style host program (buffers + accessors,
//     queue submissions, work-group size 256).
//
// All engines return identical, deterministically ordered results; the
// simulator engines additionally return a Profile with per-kernel access
// statistics for the paper's performance analysis.
package search

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
)

// Query is one guide sequence with its mismatch budget, as one line of the
// Cas-OFFinder input file.
type Query struct {
	// Guide is the query sequence, same length as the request pattern,
	// with N at the PAM positions (e.g. "GGCCGACCTGTCGCTGACGCNNN").
	Guide string
	// MaxMismatches is the reporting threshold for this guide.
	MaxMismatches int
}

// Request describes one search.
type Request struct {
	// Pattern is the PAM scaffold: N at guide positions, PAM code at PAM
	// positions (e.g. "NNNNNNNNNNNNNNNNNNNNNRG").
	Pattern string
	// Queries are the guides to compare at every PAM-compatible site.
	Queries []Query
	// ChunkBytes bounds the device memory used for one sequence chunk;
	// 0 selects a sensible default.
	ChunkBytes int
}

// DefaultChunkBytes bounds one staged chunk when the request does not say.
const DefaultChunkBytes = 1 << 20

// Hit is one reported off-target site.
type Hit struct {
	// QueryIndex identifies the guide in the request.
	QueryIndex int
	// SeqName is the chromosome/record name.
	SeqName string
	// Pos is the 0-based site start within the record.
	Pos int
	// Dir is '+' or '-'.
	Dir byte
	// Mismatches is the number of mismatched guide bases.
	Mismatches int
	// Site is the genomic sequence at the site, with mismatched positions
	// in lower case (the upstream output convention).
	Site string
}

// String formats a hit like a Cas-OFFinder output line:
// guide-index, chromosome, position, site, strand, mismatches.
func (h Hit) String() string {
	return fmt.Sprintf("%d\t%s\t%d\t%s\t%c\t%d", h.QueryIndex, h.SeqName, h.Pos, h.Site, h.Dir, h.Mismatches)
}

// Validate checks the request and returns the shared pattern length.
func (r *Request) Validate() error {
	if len(r.Pattern) == 0 {
		return errors.New("search: empty pattern")
	}
	if err := genome.Validate([]byte(strings.ToUpper(r.Pattern))); err != nil {
		return fmt.Errorf("search: pattern: %w", err)
	}
	if len(r.Queries) == 0 {
		return errors.New("search: no queries")
	}
	for i, q := range r.Queries {
		if len(q.Guide) != len(r.Pattern) {
			return fmt.Errorf("search: query %d: guide length %d != pattern length %d",
				i, len(q.Guide), len(r.Pattern))
		}
		if err := genome.Validate([]byte(strings.ToUpper(q.Guide))); err != nil {
			return fmt.Errorf("search: query %d: %w", i, err)
		}
		if q.MaxMismatches < 0 {
			return fmt.Errorf("search: query %d: negative mismatch limit", i)
		}
	}
	if r.ChunkBytes < 0 {
		return errors.New("search: negative chunk size")
	}
	return nil
}

func (r *Request) chunkBytes() int {
	if r.ChunkBytes > 0 {
		return r.ChunkBytes
	}
	return DefaultChunkBytes
}

// Engine executes a search over an assembly.
type Engine interface {
	// Name identifies the engine ("cpu", "opencl-sim", "sycl-sim").
	Name() string
	// Run executes the request and returns hits sorted by
	// (query, sequence, position, direction).
	Run(asm *genome.Assembly, req *Request) ([]Hit, error)
}

// sortHits puts hits into the deterministic output order.
func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.QueryIndex != b.QueryIndex {
			return a.QueryIndex < b.QueryIndex
		}
		if a.SeqName != b.SeqName {
			return a.SeqName < b.SeqName
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Dir < b.Dir
	})
}

// renderSite extracts the site sequence for output in guide orientation,
// lower-casing mismatched guide positions (the upstream output convention):
// forward sites compare the genomic window against the guide directly;
// reverse sites compare against the guide's reverse complement and are then
// reverse-complemented so the printed sequence aligns with the query.
func renderSite(window []byte, guide *kernels.PatternPair, dir byte) string {
	out := make([]byte, len(window))
	offset := 0
	if dir == kernels.DirReverse {
		offset = guide.PatternLen
	}
	for i, b := range window {
		b &^= 0x20 // upper-case
		code := guide.Codes[offset+i]
		if code != 'N' && !genome.Matches(code, b) {
			b |= 0x20 // lower-case marks the mismatch
		}
		out[i] = b
	}
	if dir == kernels.DirReverse {
		genome.ReverseComplement(out) // case is preserved per code
	}
	return string(out)
}
