// Package search is the core library of the reproduction: the Cas-OFFinder
// off-target search pipeline (§II.A) behind a clean Go API. A Request names
// a PAM-scaffold pattern, one or more guide queries with per-guide mismatch
// limits, and the assembly to scan; an Engine executes it.
//
// Three engines are provided:
//
//   - CPU — a production goroutine-parallel implementation for real use;
//   - SimCL — the OpenCL-style host program over the device simulator,
//     mirroring the paper's original application (runtime-chosen work-group
//     size, explicit buffer management, 13-step lifecycle);
//   - SimSYCL — the migrated SYCL-style host program (buffers + accessors,
//     queue submissions, work-group size 256).
//
// All engines are thin backend adapters over the shared streaming
// orchestrator in internal/pipeline: one copy of validation, chunk
// staging, hit rendering and sorting drives every backend's kernels. They
// return identical, deterministically ordered results; the simulator
// engines additionally return a Profile with per-kernel access statistics
// for the paper's performance analysis.
package search

import (
	"context"

	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
	"casoffinder/internal/pipeline"
)

// Query is one guide sequence with its mismatch budget, as one line of the
// Cas-OFFinder input file. It aliases the pipeline type so engines, the
// orchestrator and callers share one definition.
type Query = pipeline.Query

// Request describes one search.
type Request = pipeline.Request

// Hit is one reported off-target site.
type Hit = pipeline.Hit

// DefaultChunkBytes bounds one staged chunk when the request does not say.
const DefaultChunkBytes = pipeline.DefaultChunkBytes

// Engine executes a search over an assembly.
type Engine interface {
	// Name identifies the engine ("cpu", "opencl-sim", "sycl-sim").
	Name() string
	// Run executes the request and returns hits sorted by
	// (query, sequence, position, direction).
	Run(asm *genome.Assembly, req *Request) ([]Hit, error)
	// Stream executes the request, calling emit sequentially for every
	// hit as its chunk completes: hits arrive grouped by chunk in chunk
	// order, sorted within each chunk. A cancelled context or an emit
	// error aborts staging and in-flight dispatch and is returned.
	Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error
}

// Collect drains eng.Stream into the deterministic batch order Run
// promises; on error the partial hits are dropped and nil is returned.
// Engines implement Run with it.
func Collect(ctx context.Context, eng Engine, asm *genome.Assembly, req *Request) ([]Hit, error) {
	var hits []Hit
	if err := eng.Stream(ctx, asm, req, func(h Hit) error {
		hits = append(hits, h)
		return nil
	}); err != nil {
		return nil, err
	}
	sortHits(hits)
	return hits, nil
}

// sortHits puts hits into the deterministic output order.
func sortHits(hits []Hit) { pipeline.SortHits(hits) }

// renderSite is the one-shot site renderer; the streaming hot path uses the
// per-worker pipeline.SiteRenderer instead.
func renderSite(window []byte, guide *kernels.PatternPair, dir byte) string {
	return pipeline.RenderSite(window, guide, dir)
}
