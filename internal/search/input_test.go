package search

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseInputExample(t *testing.T) {
	in := `
# paper's example input ([17])
/var/chromosomes/human_hg38
NNNNNNNNNNNNNNNNNNNNNRG
GGCCGACCTGTCGCTGACGCNNN 5
CGCCAGCGTCAGCGACAGGTNNN 5
`
	parsed, err := ParseInput(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseInput: %v", err)
	}
	if parsed.GenomeDir != "/var/chromosomes/human_hg38" {
		t.Errorf("GenomeDir = %q", parsed.GenomeDir)
	}
	if parsed.Request.Pattern != "NNNNNNNNNNNNNNNNNNNNNRG" {
		t.Errorf("Pattern = %q", parsed.Request.Pattern)
	}
	if len(parsed.Request.Queries) != 2 {
		t.Fatalf("queries = %d", len(parsed.Request.Queries))
	}
	if parsed.Request.Queries[0].Guide != "GGCCGACCTGTCGCTGACGCNNN" || parsed.Request.Queries[0].MaxMismatches != 5 {
		t.Errorf("query 0 = %+v", parsed.Request.Queries[0])
	}
	if parsed.DNABulge != 0 || parsed.RNABulge != 0 {
		t.Error("bulge sizes should default to 0")
	}
}

func TestParseInputBulge(t *testing.T) {
	in := `genome.fa
NNNNNNNNNNNNNNNNNNNNNRG 2 1
GGCCGACCTGTCGCTGACGCNNN 4
`
	parsed, err := ParseInput(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseInput: %v", err)
	}
	if parsed.DNABulge != 2 || parsed.RNABulge != 1 {
		t.Errorf("bulge = %d/%d, want 2/1", parsed.DNABulge, parsed.RNABulge)
	}
}

func TestParseInputLowerCaseFolded(t *testing.T) {
	in := "g.fa\nnnnnnnngg\ngattacann 1\n"
	parsed, err := ParseInput(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseInput: %v", err)
	}
	if parsed.Request.Pattern != "NNNNNNNGG" || parsed.Request.Queries[0].Guide != "GATTACANN" {
		t.Errorf("case folding failed: %+v", parsed.Request)
	}
}

func TestParseInputErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"too short", "genome\nNGG\n"},
		{"bad mismatch", "g\nNNNGG\nACGTN x\n"},
		{"negative mismatch", "g\nNNNGG\nACGTN -1\n"},
		{"bad query fields", "g\nNNNGG\nACGTN\n"},
		{"bad pattern fields", "g\nNNNGG 1\nACGTN 2\n"},
		{"bad dna bulge", "g\nNNNGG x 1\nACGTN 2\n"},
		{"bad rna bulge", "g\nNNNGG 1 x\nACGTN 2\n"},
		{"length mismatch", "g\nNNNGG\nACGT 2\n"},
		{"invalid code", "g\nNNNG!\nACGTN 2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseInput(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ParseInput(%q) accepted", tt.in)
			}
		})
	}
}

func TestWriteHits(t *testing.T) {
	req := &Request{
		Pattern: "NNNNNNNGG",
		Queries: []Query{{Guide: "GATTACANN", MaxMismatches: 1}},
	}
	hits := []Hit{{
		QueryIndex: 0, SeqName: "chr1", Pos: 42, Dir: '+',
		Mismatches: 1, Site: "GATtACAGG",
	}}
	var buf bytes.Buffer
	if err := WriteHits(&buf, req, hits); err != nil {
		t.Fatal(err)
	}
	want := "GATTACANN\tchr1\t42\tGATtACAGG\t+\t1\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
}
