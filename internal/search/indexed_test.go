package search

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexedMatchesScan(t *testing.T) {
	asm := testAssembly(t, 13, []int{1500, 800, 200}, testSite)
	req := testRequest(1) // core 10 long, 2 segments of 5: below MinSeedLen 6
	req.Queries[0].MaxMismatches = 0
	want, err := (&CPU{}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no hits in test data")
	}
	got, err := (&Indexed{MinSeedLen: 5}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalHits(got, want) {
		t.Errorf("indexed hits %d != scan %d", len(got), len(want))
	}
}

// TestIndexedProperty: for random genomes, guides long enough to seed, the
// indexed engine is byte-identical to the scanning engine.
func TestIndexedProperty(t *testing.T) {
	const pattern = "NNNNNNNNNNNNNNNNNNNNNGG"
	const guide = "GATTACAGTACGATTACAGTANN"
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		asm := testAssembly(t, seed, []int{400 + rng.Intn(2000)}, "GATTACAGTACGATTACAGTAGG")
		req := &Request{
			Pattern: pattern,
			Queries: []Query{{Guide: guide, MaxMismatches: rng.Intn(3)}},
		}
		want, err := (&CPU{Workers: 2}).Run(asm, req)
		if err != nil {
			return false
		}
		got, err := (&Indexed{Workers: 2}).Run(asm, req)
		if err != nil {
			return false
		}
		return equalHits(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIndexedFallback: a query whose guide cannot be seeded (degenerate
// core) must still be answered, via the scanning fallback.
func TestIndexedFallback(t *testing.T) {
	asm := testAssembly(t, 3, []int{900}, testSite)
	req := &Request{
		Pattern: testPattern,
		Queries: []Query{
			{Guide: testGuide, MaxMismatches: 1},      // seedable only with tiny seeds -> fallback
			{Guide: "GATTRCAGTANN", MaxMismatches: 0}, // degenerate core -> fallback
		},
	}
	want, err := (&CPU{}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Indexed{}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalHits(got, want) {
		t.Errorf("fallback path diverges: %d vs %d hits", len(got), len(want))
	}
}

// TestIndexedMixedSeedAndFallback: seedable and unseedable queries in one
// request keep their indices.
func TestIndexedMixedSeedAndFallback(t *testing.T) {
	const site = "GATTACAGTACGATTACAGTAGG"
	asm := testAssembly(t, 31, []int{2000}, site)
	req := &Request{
		Pattern: "NNNNNNNNNNNNNNNNNNNNNGG",
		Queries: []Query{
			{Guide: "GATTACAGTACGATTACAGTANN", MaxMismatches: 1}, // seedable
			{Guide: "GATTRCAGTACGATTACAGTANN", MaxMismatches: 1}, // degenerate -> fallback
		},
	}
	want, err := (&CPU{}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Indexed{}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalHits(got, want) {
		t.Errorf("mixed request diverges: %d vs %d", len(got), len(want))
	}
}

func TestIndexedNAndSoftMask(t *testing.T) {
	// Seeds must not cross N runs; soft-masked sites must still be found.
	asm := testAssembly(t, 41, []int{600}, "gattacagtacgattacagtagg")
	req := &Request{
		Pattern: "NNNNNNNNNNNNNNNNNNNNNGG",
		Queries: []Query{{Guide: "GATTACAGTACGATTACAGTANN", MaxMismatches: 2}},
	}
	want, err := (&CPU{}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Indexed{}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalHits(got, want) {
		t.Errorf("N/soft-mask handling diverges: %d vs %d", len(got), len(want))
	}
}

func TestSegmentsOf(t *testing.T) {
	segs := segmentsOf(2, 22, 3) // 20 positions into 3 parts: 7, 7, 6
	want := [][2]int{{2, 9}, {9, 16}, {16, 22}}
	if len(segs) != len(want) {
		t.Fatalf("segs = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("seg %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

func TestKmerOf(t *testing.T) {
	v, ok := kmerOf([]byte("ACGT"))
	if !ok || v != 0b00011011 {
		t.Errorf("kmerOf(ACGT) = %b, %v", v, ok)
	}
	if _, ok := kmerOf([]byte("ACNT")); ok {
		t.Error("kmer with N accepted")
	}
}

func TestIndexedName(t *testing.T) {
	if (&Indexed{}).Name() != "cpu-indexed" {
		t.Error("name")
	}
}
