package search

import (
	"context"
	"fmt"
	"sync"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/opencl"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/tune"
)

// SimCL runs the search as the paper's original OpenCL application: the
// full 13-step host lifecycle over the device simulator, with the
// work-group size left to the runtime (the OpenCL-side condition of the
// Table VIII comparison) unless WorkGroupSize forces one.
type SimCL struct {
	// Device is the simulated GPU to run on.
	Device *gpu.Device
	// Variant selects the comparer kernel (Base unless exploring the
	// optimizations of §IV.B).
	Variant kernels.ComparerVariant
	// WorkGroupSize forces a local size; 0 lets the runtime choose, as the
	// upstream OpenCL host program does.
	WorkGroupSize int
	// Auto resolves Variant and WorkGroupSize through the occupancy
	// autotuner (internal/tune) for this device at Stream start: Variant is
	// ignored, and WorkGroupSize (when set) narrows the tuner to that local
	// size instead of overriding its choice. Calibrate additionally runs
	// the tuner's online measured pass. Output is byte-identical to any
	// fixed-variant run.
	Auto      bool
	Calibrate bool
	// Resilience, when set, runs the engine under the pipeline's
	// fault-tolerant executor: transient errors retry with backoff, hung
	// kernels are reaped by the watchdog, and chunks the device cannot
	// complete fail over to the CPU SWAR engine (unless a custom Fallback
	// is configured), preserving the byte-identical hit stream.
	Resilience *pipeline.Resilience
	// Trace and Metrics, when set, observe the run: pipeline-stage and
	// kernel-launch spans, latency histograms and profile-mirroring
	// counters. Track overrides the trace row prefix (the engine name by
	// default); MultiSYCL sets it to tell its sub-engines apart.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	Track   string

	profile *Profile
	// tuned is the resolved autotuner decision for the current run; set by
	// Stream before the backend opens, read-only while the run is live.
	tuned *tune.Decision
}

// Name implements Engine.
func (e *SimCL) Name() string { return "opencl-sim" }

func (e *SimCL) track() string {
	if e.Track != "" {
		return e.Track
	}
	return e.Name()
}

// LastProfile implements Profiler.
func (e *SimCL) LastProfile() *Profile { return e.profile }

// variant is the comparer the run actually builds: the tuner's selection
// when one was resolved, the configured Variant otherwise.
func (e *SimCL) variant() kernels.ComparerVariant {
	if e.tuned != nil {
		return e.tuned.Variant
	}
	return e.Variant
}

// wgSize is the enqueued local size: the tuner's selection when one was
// resolved, the forced WorkGroupSize otherwise — still 0 ("runtime's
// choice", the upstream OpenCL behaviour) when neither is set.
func (e *SimCL) wgSize() int {
	if e.tuned != nil {
		return e.tuned.WGSize
	}
	return e.WorkGroupSize
}

// Run implements Engine.
func (e *SimCL) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	return Collect(context.Background(), e, asm, req)
}

// Stream implements Engine by driving the two kernels through the OpenCL
// host API behind the shared pipeline: one scan worker owns the command
// queue while the stager creates the next chunk's buffers.
func (e *SimCL) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	// Resolve the tuner before the pipeline opens the backend; the decision
	// is read-only for the rest of the run.
	e.tuned = nil
	if e.Auto && e.Device != nil {
		d, err := autotuneDecision(e.Device, req, e.WorkGroupSize, e.Calibrate)
		if err != nil {
			return fmt.Errorf("search: %s: autotune: %w", e.Name(), err)
		}
		e.tuned = d
	}
	p := &pipeline.Pipeline{
		Open: func(plan *pipeline.Plan) (pipeline.Backend, error) {
			if e.Device == nil {
				return nil, fmt.Errorf("search: %s: nil device", e.Name())
			}
			return newCLBackend(e, plan)
		},
		ScanWorkers: 1,
		Resilience:  resilienceFor(e.Resilience, func() *Profile { return e.profile }),
		Trace:       e.Trace,
		Metrics:     e.Metrics,
		Track:       e.track(),
	}
	// Mark the injector before the run so only this run's fault delta is
	// folded into the profile — a reused engine must not re-count earlier
	// runs' faults.
	var mark int
	if e.Device != nil {
		e.Device.SetObs(e.Trace, e.Metrics, e.track()+"/gpu")
		mark = e.Device.Faults().Mark()
	}
	err := p.Stream(ctx, asm, req, emit)
	if e.Device != nil && e.profile != nil {
		e.profile.addFaults(e.Device.Faults().LogSince(mark))
	}
	return err
}

// clBackend adapts the OpenCL host program to the pipeline Backend
// contract. The run-wide objects (context, queue, program, kernels,
// pattern buffers) live for the whole stream; every buffer is tracked in
// the live set so Close can release whatever an aborted run left behind —
// a staging error can no longer leak simulator buffers.
type clBackend struct {
	e    *SimCL
	plan *pipeline.Plan
	prof *Profile

	ctx      *opencl.Context
	queue    *opencl.CommandQueue
	prog     *opencl.Program
	finder   *opencl.Kernel
	comparer *opencl.Kernel

	patBuf    *opencl.Mem
	patIdxBuf *opencl.Mem

	// mu guards live: the stager creates buffers while the scan worker
	// releases others.
	mu   sync.Mutex
	live map[*opencl.Mem]struct{}
}

// clCreate creates a buffer and registers it in the backend's live set.
func clCreate[T any](b *clBackend, flags opencl.MemFlags, n int, host []T) (*opencl.Mem, error) {
	m, err := opencl.CreateBuffer(b.ctx, flags, n, host)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.live[m] = struct{}{}
	b.mu.Unlock()
	return m, nil
}

// newCLBackend performs steps 1-8 of the host lifecycle (platform, device,
// context, queue, program, build, kernels) plus the run-constant pattern
// upload. On any failure the partially built state is torn down via Close.
func newCLBackend(e *SimCL, plan *pipeline.Plan) (_ *clBackend, err error) {
	b := &clBackend{e: e, plan: plan, prof: newProfile(e.Metrics), live: make(map[*opencl.Mem]struct{})}
	e.profile = b.prof
	if e.tuned != nil {
		b.prof.addTune(e.track(), e.tuned)
	}
	defer func() {
		if err != nil {
			b.Close()
		}
	}()

	// Steps 1-4: platform, device, context, queue.
	platform := opencl.NewPlatform("ROCm", "AMD", e.Device)
	devs, err := platform.GetDevices(opencl.DeviceTypeGPU)
	if err != nil {
		return nil, err
	}
	if b.ctx, err = opencl.CreateContext(devs...); err != nil {
		return nil, err
	}
	if b.queue, err = b.ctx.CreateCommandQueue(devs[0]); err != nil {
		return nil, err
	}

	// Steps 6-8: program and kernels.
	if b.prog, err = b.ctx.CreateProgramWithSource(kernels.CLSource()); err != nil {
		return nil, err
	}
	if err = b.prog.Build("-O3"); err != nil {
		return nil, err
	}
	if b.finder, err = b.prog.CreateKernel("finder"); err != nil {
		return nil, err
	}
	if b.comparer, err = b.prog.CreateKernel(kernels.ComparerKernelName(e.variant())); err != nil {
		return nil, err
	}

	// Step 5 (per-run constants): pattern tables.
	pattern := plan.Pattern
	if b.patBuf, err = clCreate(b, opencl.MemReadOnly|opencl.MemUseConstant|opencl.MemCopyHostPtr, len(pattern.Codes), pattern.Codes); err != nil {
		return nil, err
	}
	if b.patIdxBuf, err = clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(pattern.Index), pattern.Index); err != nil {
		return nil, err
	}
	b.prof.addStaged(int64(len(pattern.Codes) + 4*len(pattern.Index)))
	return b, nil
}

// releaseBuf releases a buffer and drops it from the live set; nil buffers
// are ignored so error paths can release unconditionally.
func (b *clBackend) releaseBuf(m *opencl.Mem) error {
	if m == nil {
		return nil
	}
	b.mu.Lock()
	delete(b.live, m)
	b.mu.Unlock()
	return m.Release()
}

// Close implements pipeline.Backend: release every still-live buffer (the
// pattern tables plus whatever staged chunks never reached Drain), then the
// kernels, program, queue and context, folding the first error.
func (b *clBackend) Close() (err error) {
	b.mu.Lock()
	leaked := make([]*opencl.Mem, 0, len(b.live))
	for m := range b.live {
		leaked = append(leaked, m)
	}
	b.live = make(map[*opencl.Mem]struct{})
	b.mu.Unlock()
	for _, m := range leaked {
		closeErr(m.Release(), &err)
	}
	b.patBuf, b.patIdxBuf = nil, nil
	if b.finder != nil {
		closeErr(b.finder.Release(), &err)
		b.finder = nil
	}
	if b.comparer != nil {
		closeErr(b.comparer.Release(), &err)
		b.comparer = nil
	}
	if b.prog != nil {
		closeErr(b.prog.Release(), &err)
		b.prog = nil
	}
	if b.queue != nil {
		closeErr(b.queue.Release(), &err)
		b.queue = nil
	}
	if b.ctx != nil {
		closeErr(b.ctx.Release(), &err)
		b.ctx = nil
	}
	return err
}

// clStaged is one chunk's device state: the per-chunk buffers created at
// stage time, the comparer output buffers created once candidates are
// known, and the raw entries accumulated across guides.
type clStaged struct {
	ch *genome.Chunk

	chrBuf, lociBuf, flagsBuf, countBuf     *opencl.Mem
	mmLociBuf, mmCountBuf, dirBuf, entryBuf *opencl.Mem

	n       int
	entries []rawHit
}

// Stage implements pipeline.Backend: create and fill the chunk's input and
// finder output buffers (step 9 of the host lifecycle). This runs on the
// stager goroutine while the scan worker drives kernels over the previous
// chunk; a mid-stage failure leaves the earlier buffers to Close.
func (b *clBackend) Stage(ctx context.Context, ch *genome.Chunk) (pipeline.Staged, error) {
	s := &clStaged{ch: ch}
	data := ch.Data
	sites := ch.Body
	var err error
	if s.chrBuf, err = clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(data), data); err != nil {
		return nil, err
	}
	if s.lociBuf, err = clCreate[uint32](b, opencl.MemReadWrite, sites, nil); err != nil {
		return nil, err
	}
	if s.flagsBuf, err = clCreate[byte](b, opencl.MemReadWrite, sites, nil); err != nil {
		return nil, err
	}
	if s.countBuf, err = clCreate[uint32](b, opencl.MemReadWrite, 1, nil); err != nil {
		return nil, err
	}
	b.prof.addStagedChunk(int64(len(data)))
	return s, nil
}

// Find implements pipeline.Backend: set the finder arguments, enqueue it
// over the padded site range and read back the candidate count and loci.
func (b *clBackend) Find(ctx context.Context, st pipeline.Staged) (int, error) {
	s := st.(*clStaged)
	plen := b.plan.Pattern.PatternLen
	sites := s.ch.Body

	finderArgs := []any{
		s.chrBuf, b.patBuf, b.patIdxBuf,
		int32(plen), uint32(sites),
		s.lociBuf, s.flagsBuf, s.countBuf,
	}
	for i, a := range finderArgs {
		if err := b.finder.SetArg(i, a); err != nil {
			return 0, err
		}
	}
	if err := b.finder.SetArgLocal(kernels.FinderArgLocalPat, 2*plen); err != nil {
		return 0, err
	}
	if err := b.finder.SetArgLocal(kernels.FinderArgLocalPatIndex, 4*2*plen); err != nil {
		return 0, err
	}

	wg := b.e.wgSize()
	pad := wg
	if pad <= 0 {
		pad = 64
	}
	gws := (sites + pad - 1) / pad * pad
	ev, err := b.queue.EnqueueNDRangeKernelCtx(ctx, b.finder, gws, wg)
	if err != nil {
		return 0, err
	}
	if err := ev.Wait(); err != nil {
		return 0, err
	}
	b.prof.addKernel("finder", ev.Stats(), gws/int(ev.Stats().WorkGroups))

	countHost := make([]uint32, 1)
	if _, err := opencl.EnqueueReadBuffer(b.queue, s.countBuf, true, 0, 1, countHost); err != nil {
		return 0, err
	}
	s.n = int(countHost[0])
	// Validate before sizing any allocation on it: a corrupted count
	// readback (MSB flip → ~2^31) must be rejected, not used to size the
	// loci read or the comparer output buffers.
	if s.n > sites {
		s.n = 0
		return 0, fault.Errorf(fault.SiteReadback, fault.Corruption,
			"search: %s: finder count %d exceeds the %d scanned sites", b.e.Name(), countHost[0], sites)
	}
	b.prof.addRead(4)
	b.prof.addCandidates(int64(s.n))
	if s.n == 0 {
		return 0, nil
	}
	lociHost := make([]uint32, s.n)
	if _, err := opencl.EnqueueReadBuffer(b.queue, s.lociBuf, true, 0, s.n, lociHost); err != nil {
		return 0, err
	}
	b.prof.addRead(int64(4 * s.n))

	// Comparer output buffers sized for both strands of every candidate.
	if s.mmLociBuf, err = clCreate[uint32](b, opencl.MemWriteOnly, 2*s.n, nil); err != nil {
		return 0, err
	}
	if s.mmCountBuf, err = clCreate[uint16](b, opencl.MemWriteOnly, 2*s.n, nil); err != nil {
		return 0, err
	}
	if s.dirBuf, err = clCreate[byte](b, opencl.MemWriteOnly, 2*s.n, nil); err != nil {
		return 0, err
	}
	if s.entryBuf, err = clCreate[uint32](b, opencl.MemReadWrite, 1, nil); err != nil {
		return 0, err
	}
	return s.n, nil
}

// Compare implements pipeline.Backend: upload one guide's tables, reset the
// entry counter, enqueue the comparer and read back its entries. The
// transient guide buffers are released here on success; an error leaves
// them to Close.
func (b *clBackend) Compare(ctx context.Context, st pipeline.Staged, qi int) error {
	s := st.(*clStaged)
	g := b.plan.Guides[qi]
	q := b.plan.Request.Queries[qi]

	compBuf, err := clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(g.Codes), g.Codes)
	if err != nil {
		return err
	}
	compIdxBuf, err := clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(g.Index), g.Index)
	if err != nil {
		return err
	}
	b.prof.addStaged(int64(len(g.Codes) + 4*len(g.Index)))

	if _, err := opencl.EnqueueWriteBuffer(b.queue, s.entryBuf, true, 0, 1, []uint32{0}); err != nil {
		return err
	}
	b.prof.addStaged(4)

	comparerArgs := []any{
		uint32(s.n), s.chrBuf, s.lociBuf, s.mmLociBuf,
		compBuf, compIdxBuf,
		int32(g.PatternLen), uint16(q.MaxMismatches),
		s.flagsBuf, s.mmCountBuf, s.dirBuf, s.entryBuf,
	}
	for i, a := range comparerArgs {
		if err := b.comparer.SetArg(i, a); err != nil {
			return err
		}
	}
	if err := b.comparer.SetArgLocal(kernels.ComparerArgLocalComp, 2*g.PatternLen); err != nil {
		return err
	}
	if err := b.comparer.SetArgLocal(kernels.ComparerArgLocalCompIndex, 4*2*g.PatternLen); err != nil {
		return err
	}
	wg := b.e.wgSize()
	pad := wg
	if pad <= 0 {
		pad = 64
	}
	cgws := (s.n + pad - 1) / pad * pad
	ev, err := b.queue.EnqueueNDRangeKernelCtx(ctx, b.comparer, cgws, wg)
	if err != nil {
		return err
	}
	if err := ev.Wait(); err != nil {
		return err
	}
	b.prof.addKernel(b.comparer.Name(), ev.Stats(), cgws/int(ev.Stats().WorkGroups))

	entryHost := make([]uint32, 1)
	if _, err := opencl.EnqueueReadBuffer(b.queue, s.entryBuf, true, 0, 1, entryHost); err != nil {
		return err
	}
	cnt := int(entryHost[0])
	// The comparer emits at most one entry per strand per candidate; a
	// larger count can only be a corrupted readback — reject it before
	// sizing the entry reads on it.
	if cnt > 2*s.n {
		return fault.Errorf(fault.SiteReadback, fault.Corruption,
			"search: %s: comparer entry count %d exceeds 2×%d candidates", b.e.Name(), cnt, s.n)
	}
	b.prof.addRead(4)
	b.prof.addEntries(int64(cnt))
	if cnt > 0 {
		mmLoci := make([]uint32, cnt)
		mmCount := make([]uint16, cnt)
		dirs := make([]byte, cnt)
		if _, err := opencl.EnqueueReadBuffer(b.queue, s.mmLociBuf, true, 0, cnt, mmLoci); err != nil {
			return err
		}
		if _, err := opencl.EnqueueReadBuffer(b.queue, s.mmCountBuf, true, 0, cnt, mmCount); err != nil {
			return err
		}
		if _, err := opencl.EnqueueReadBuffer(b.queue, s.dirBuf, true, 0, cnt, dirs); err != nil {
			return err
		}
		b.prof.addRead(int64(cnt * (4 + 2 + 1)))
		for i := 0; i < cnt; i++ {
			s.entries = append(s.entries, rawHit{qi: qi, pos: int(mmLoci[i]), dir: dirs[i], mm: int(mmCount[i])})
		}
	}
	if err := b.releaseBuf(compBuf); err != nil {
		return err
	}
	return b.releaseBuf(compIdxBuf)
}

// Drain implements pipeline.Backend: render the accumulated entries
// (rejecting corrupted readbacks) and release the chunk's buffers.
func (b *clBackend) Drain(ctx context.Context, st pipeline.Staged, r *pipeline.SiteRenderer) ([]Hit, error) {
	s := st.(*clStaged)
	hits, derr := drainEntries(r, s.ch, b.plan.Guides, s.entries)
	if derr != nil {
		// Corrupted entries: keep the buffers for Release/Close and hand
		// the corruption class to the resilient executor.
		return nil, derr
	}
	var err error
	for _, m := range []*opencl.Mem{
		s.chrBuf, s.lociBuf, s.flagsBuf, s.countBuf,
		s.mmLociBuf, s.mmCountBuf, s.dirBuf, s.entryBuf,
	} {
		closeErr(b.releaseBuf(m), &err)
	}
	if err != nil {
		return nil, err
	}
	return hits, nil
}

// Release implements pipeline.Releaser: free an abandoned staged handle's
// buffers as soon as the resilient executor gives up on an attempt, rather
// than holding them (against the device memory budget) until Close. A lost
// context makes the releases fail; Close's sweep stays the backstop.
func (b *clBackend) Release(st pipeline.Staged) {
	s, ok := st.(*clStaged)
	if !ok || s == nil {
		return
	}
	for _, m := range []*opencl.Mem{
		s.chrBuf, s.lociBuf, s.flagsBuf, s.countBuf,
		s.mmLociBuf, s.mmCountBuf, s.dirBuf, s.entryBuf,
	} {
		_ = b.releaseBuf(m) // best effort; Close sweeps leftovers
	}
}
