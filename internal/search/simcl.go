package search

import (
	"fmt"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/kernels"
	"casoffinder/internal/opencl"
)

// SimCL runs the search as the paper's original OpenCL application: the
// full 13-step host lifecycle over the device simulator, with the
// work-group size left to the runtime (the OpenCL-side condition of the
// Table VIII comparison) unless WorkGroupSize forces one.
type SimCL struct {
	// Device is the simulated GPU to run on.
	Device *gpu.Device
	// Variant selects the comparer kernel (Base unless exploring the
	// optimizations of §IV.B).
	Variant kernels.ComparerVariant
	// WorkGroupSize forces a local size; 0 lets the runtime choose, as the
	// upstream OpenCL host program does.
	WorkGroupSize int

	profile *Profile
}

// Name implements Engine.
func (e *SimCL) Name() string { return "opencl-sim" }

// LastProfile implements Profiler.
func (e *SimCL) LastProfile() *Profile { return e.profile }

// Run implements Engine by driving the two kernels chunk by chunk through
// the OpenCL host API.
func (e *SimCL) Run(asm *genome.Assembly, req *Request) (hits []Hit, err error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if e.Device == nil {
		return nil, fmt.Errorf("search: %s: nil device", e.Name())
	}
	prof := newProfile()
	e.profile = prof

	pattern, err := kernels.NewPatternPair([]byte(req.Pattern))
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	guides := make([]*kernels.PatternPair, len(req.Queries))
	for i, q := range req.Queries {
		if guides[i], err = kernels.NewPatternPair([]byte(q.Guide)); err != nil {
			return nil, fmt.Errorf("search: query %d: %w", i, err)
		}
	}
	plen := pattern.PatternLen
	chunker := &genome.Chunker{ChunkBytes: req.chunkBytes(), PatternLen: plen}
	chunks, err := chunker.Plan(asm)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}

	// Steps 1-4: platform, device, context, queue.
	platform := opencl.NewPlatform("ROCm", "AMD", e.Device)
	devs, err := platform.GetDevices(opencl.DeviceTypeGPU)
	if err != nil {
		return nil, err
	}
	ctx, err := opencl.CreateContext(devs...)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(ctx.Release(), &err) }()
	queue, err := ctx.CreateCommandQueue(devs[0])
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(queue.Release(), &err) }()

	// Steps 6-8: program and kernels.
	prog, err := ctx.CreateProgramWithSource(kernels.CLSource())
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(prog.Release(), &err) }()
	if err := prog.Build("-O3"); err != nil {
		return nil, err
	}
	finder, err := prog.CreateKernel("finder")
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(finder.Release(), &err) }()
	comparer, err := prog.CreateKernel(kernels.ComparerKernelName(e.Variant))
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(comparer.Release(), &err) }()

	// Step 5 (per-run constants): pattern tables.
	patBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemUseConstant|opencl.MemCopyHostPtr, len(pattern.Codes), pattern.Codes)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(patBuf.Release(), &err) }()
	patIdxBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(pattern.Index), pattern.Index)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(patIdxBuf.Release(), &err) }()
	prof.BytesStaged += int64(len(pattern.Codes) + 4*len(pattern.Index))

	for _, ch := range chunks {
		chHits, err := e.runChunk(ctx, queue, finder, comparer, pattern, guides, req, ch, patBuf, patIdxBuf)
		if err != nil {
			return nil, err
		}
		hits = append(hits, chHits...)
	}
	sortHits(hits)
	return hits, nil
}

// closeErr folds a release error into the function error without masking
// an earlier one.
func closeErr(relErr error, err *error) {
	if relErr != nil && *err == nil {
		*err = relErr
	}
}

func (e *SimCL) runChunk(
	ctx *opencl.Context, queue *opencl.CommandQueue,
	finder, comparer *opencl.Kernel,
	pattern *kernels.PatternPair, guides []*kernels.PatternPair,
	req *Request, ch *genome.Chunk,
	patBuf, patIdxBuf *opencl.Mem,
) (hits []Hit, err error) {
	prof := e.profile
	plen := pattern.PatternLen
	// The chunk is staged as-is: the kernels' IUPAC tables accept
	// soft-masked lower-case bases, so no per-chunk upper-case copy is
	// needed (renderSite normalizes case in the reported site).
	data := ch.Data
	sites := ch.Body

	chrBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(data), data)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(chrBuf.Release(), &err) }()
	lociBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, sites, nil)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(lociBuf.Release(), &err) }()
	flagsBuf, err := opencl.CreateBuffer[byte](ctx, opencl.MemReadWrite, sites, nil)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(flagsBuf.Release(), &err) }()
	countBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, 1, nil)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(countBuf.Release(), &err) }()
	prof.Chunks++
	prof.BytesStaged += int64(len(data))

	// Step 9: finder arguments.
	finderArgs := []any{
		chrBuf, patBuf, patIdxBuf,
		int32(plen), uint32(sites),
		lociBuf, flagsBuf, countBuf,
	}
	for i, a := range finderArgs {
		if err := finder.SetArg(i, a); err != nil {
			return nil, err
		}
	}
	if err := finder.SetArgLocal(kernels.FinderArgLocalPat, 2*plen); err != nil {
		return nil, err
	}
	if err := finder.SetArgLocal(kernels.FinderArgLocalPatIndex, 4*2*plen); err != nil {
		return nil, err
	}

	// Step 10: enqueue the finder over the padded site range.
	wg := e.WorkGroupSize
	pad := wg
	if pad <= 0 {
		pad = 64
	}
	gws := (sites + pad - 1) / pad * pad
	ev, err := queue.EnqueueNDRangeKernel(finder, gws, wg)
	if err != nil {
		return nil, err
	}
	if err := ev.Wait(); err != nil {
		return nil, err
	}
	prof.addKernel("finder", ev.Stats(), gws/int(ev.Stats().WorkGroups))

	// Step 11: read the candidate count and loci.
	countHost := make([]uint32, 1)
	if _, err := opencl.EnqueueReadBuffer(queue, countBuf, true, 0, 1, countHost); err != nil {
		return nil, err
	}
	n := int(countHost[0])
	prof.BytesRead += 4
	prof.CandidateSites += int64(n)
	if n == 0 {
		return nil, nil
	}
	lociHost := make([]uint32, n)
	if _, err := opencl.EnqueueReadBuffer(queue, lociBuf, true, 0, n, lociHost); err != nil {
		return nil, err
	}
	prof.BytesRead += int64(4 * n)

	// Comparer output buffers sized for both strands of every candidate.
	mmLociBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemWriteOnly, 2*n, nil)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(mmLociBuf.Release(), &err) }()
	mmCountBuf, err := opencl.CreateBuffer[uint16](ctx, opencl.MemWriteOnly, 2*n, nil)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(mmCountBuf.Release(), &err) }()
	dirBuf, err := opencl.CreateBuffer[byte](ctx, opencl.MemWriteOnly, 2*n, nil)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(dirBuf.Release(), &err) }()
	entryBuf, err := opencl.CreateBuffer[uint32](ctx, opencl.MemReadWrite, 1, nil)
	if err != nil {
		return nil, err
	}
	defer func() { closeErr(entryBuf.Release(), &err) }()

	for qi, g := range guides {
		compBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(g.Codes), g.Codes)
		if err != nil {
			return nil, err
		}
		compIdxBuf, err := opencl.CreateBuffer(ctx, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(g.Index), g.Index)
		if err != nil {
			closeErr(compBuf.Release(), &err)
			return nil, err
		}
		prof.BytesStaged += int64(len(g.Codes) + 4*len(g.Index))
		qHits, qErr := e.runComparer(queue, comparer, ch, data, g, qi, req.Queries[qi], n,
			chrBuf, lociBuf, flagsBuf, compBuf, compIdxBuf, mmLociBuf, mmCountBuf, dirBuf, entryBuf)
		closeErr(compBuf.Release(), &qErr)
		closeErr(compIdxBuf.Release(), &qErr)
		if qErr != nil {
			return nil, qErr
		}
		hits = append(hits, qHits...)
	}
	return hits, nil
}

func (e *SimCL) runComparer(
	queue *opencl.CommandQueue, comparer *opencl.Kernel,
	ch *genome.Chunk, data []byte, g *kernels.PatternPair,
	qi int, q Query, n int,
	chrBuf, lociBuf, flagsBuf, compBuf, compIdxBuf, mmLociBuf, mmCountBuf, dirBuf, entryBuf *opencl.Mem,
) ([]Hit, error) {
	prof := e.profile
	if _, err := opencl.EnqueueWriteBuffer(queue, entryBuf, true, 0, 1, []uint32{0}); err != nil {
		return nil, err
	}
	prof.BytesStaged += 4

	comparerArgs := []any{
		uint32(n), chrBuf, lociBuf, mmLociBuf,
		compBuf, compIdxBuf,
		int32(g.PatternLen), uint16(q.MaxMismatches),
		flagsBuf, mmCountBuf, dirBuf, entryBuf,
	}
	for i, a := range comparerArgs {
		if err := comparer.SetArg(i, a); err != nil {
			return nil, err
		}
	}
	if err := comparer.SetArgLocal(kernels.ComparerArgLocalComp, 2*g.PatternLen); err != nil {
		return nil, err
	}
	if err := comparer.SetArgLocal(kernels.ComparerArgLocalCompIndex, 4*2*g.PatternLen); err != nil {
		return nil, err
	}
	wg := e.WorkGroupSize
	pad := wg
	if pad <= 0 {
		pad = 64
	}
	cgws := (n + pad - 1) / pad * pad
	ev, err := queue.EnqueueNDRangeKernel(comparer, cgws, wg)
	if err != nil {
		return nil, err
	}
	if err := ev.Wait(); err != nil {
		return nil, err
	}
	prof.addKernel(comparer.Name(), ev.Stats(), cgws/int(ev.Stats().WorkGroups))

	entries := make([]uint32, 1)
	if _, err := opencl.EnqueueReadBuffer(queue, entryBuf, true, 0, 1, entries); err != nil {
		return nil, err
	}
	cnt := int(entries[0])
	prof.BytesRead += 4
	prof.Entries += int64(cnt)
	if cnt == 0 {
		return nil, nil
	}
	mmLoci := make([]uint32, cnt)
	mmCount := make([]uint16, cnt)
	dirs := make([]byte, cnt)
	if _, err := opencl.EnqueueReadBuffer(queue, mmLociBuf, true, 0, cnt, mmLoci); err != nil {
		return nil, err
	}
	if _, err := opencl.EnqueueReadBuffer(queue, mmCountBuf, true, 0, cnt, mmCount); err != nil {
		return nil, err
	}
	if _, err := opencl.EnqueueReadBuffer(queue, dirBuf, true, 0, cnt, dirs); err != nil {
		return nil, err
	}
	prof.BytesRead += int64(cnt * (4 + 2 + 1))

	hits := make([]Hit, 0, cnt)
	for i := 0; i < cnt; i++ {
		pos := int(mmLoci[i])
		window := data[pos : pos+g.PatternLen]
		hits = append(hits, Hit{
			QueryIndex: qi,
			SeqName:    ch.SeqName,
			Pos:        ch.Start + pos,
			Dir:        dirs[i],
			Mismatches: int(mmCount[i]),
			Site:       renderSite(window, g, dirs[i]),
		})
	}
	return hits, nil
}
