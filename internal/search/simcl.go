package search

import (
	"context"
	"fmt"
	"sync"

	"casoffinder/internal/fault"
	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/alloc"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/opencl"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/tune"
)

// SimCL runs the search as the paper's original OpenCL application: the
// full 13-step host lifecycle over the device simulator, with the
// work-group size left to the runtime (the OpenCL-side condition of the
// Table VIII comparison) unless WorkGroupSize forces one.
type SimCL struct {
	// Device is the simulated GPU to run on.
	Device *gpu.Device
	// Variant selects the comparer kernel (Base unless exploring the
	// optimizations of §IV.B).
	Variant kernels.ComparerVariant
	// WorkGroupSize forces a local size; 0 lets the runtime choose, as the
	// upstream OpenCL host program does.
	WorkGroupSize int
	// Auto resolves Variant and WorkGroupSize through the occupancy
	// autotuner (internal/tune) for this device at Stream start: Variant is
	// ignored, and WorkGroupSize (when set) narrows the tuner to that local
	// size instead of overriding its choice. Calibrate additionally runs
	// the tuner's online measured pass. Output is byte-identical to any
	// fixed-variant run.
	Auto      bool
	Calibrate bool
	// WorstCaseArena pins every launch's hit-buffer arena to the worst-case
	// layout (one page per work-group — the provisioning the pre-arena
	// backends effectively used) instead of sizing it from the predicted hit
	// density. The kernels and the hit stream are identical either way; only
	// the provisioned bytes differ, which is what the staged-bytes ablation
	// measures.
	WorstCaseArena bool
	// Resilience, when set, runs the engine under the pipeline's
	// fault-tolerant executor: transient errors retry with backoff, hung
	// kernels are reaped by the watchdog, and chunks the device cannot
	// complete fail over to the CPU SWAR engine (unless a custom Fallback
	// is configured), preserving the byte-identical hit stream.
	Resilience *pipeline.Resilience
	// Trace and Metrics, when set, observe the run: pipeline-stage and
	// kernel-launch spans, latency histograms and profile-mirroring
	// counters. Track overrides the trace row prefix (the engine name by
	// default); MultiSYCL sets it to tell its sub-engines apart.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	Track   string

	profile *Profile
	// tuned is the resolved autotuner decision for the current run; set by
	// Stream before the backend opens, read-only while the run is live.
	tuned *tune.Decision
}

// Name implements Engine.
func (e *SimCL) Name() string { return "opencl-sim" }

func (e *SimCL) track() string {
	if e.Track != "" {
		return e.Track
	}
	return e.Name()
}

// LastProfile implements Profiler.
func (e *SimCL) LastProfile() *Profile { return e.profile }

// variant is the comparer the run actually builds: the tuner's selection
// when one was resolved, the configured Variant otherwise.
func (e *SimCL) variant() kernels.ComparerVariant {
	if e.tuned != nil {
		return e.tuned.Variant
	}
	return e.Variant
}

// wgSize is the enqueued local size: the tuner's selection when one was
// resolved, the forced WorkGroupSize otherwise — still 0 ("runtime's
// choice", the upstream OpenCL behaviour) when neither is set.
func (e *SimCL) wgSize() int {
	if e.tuned != nil {
		return e.tuned.WGSize
	}
	return e.WorkGroupSize
}

// Run implements Engine.
func (e *SimCL) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	return Collect(context.Background(), e, asm, req)
}

// Stream implements Engine by driving the two kernels through the OpenCL
// host API behind the shared pipeline: one scan worker owns the command
// queue while the stager creates the next chunk's buffers.
func (e *SimCL) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	// Resolve the tuner before the pipeline opens the backend; the decision
	// is read-only for the rest of the run.
	e.tuned = nil
	if e.Auto && e.Device != nil {
		d, err := autotuneDecision(e.Device, req, e.WorkGroupSize, e.Calibrate)
		if err != nil {
			return fmt.Errorf("search: %s: autotune: %w", e.Name(), err)
		}
		e.tuned = d
	}
	p := &pipeline.Pipeline{
		Open: func(plan *pipeline.Plan) (pipeline.Backend, error) {
			if e.Device == nil {
				return nil, fmt.Errorf("search: %s: nil device", e.Name())
			}
			return newCLBackend(e, plan)
		},
		ScanWorkers: 1,
		Resilience:  resilienceFor(e.Resilience, func() *Profile { return e.profile }),
		Trace:       e.Trace,
		Metrics:     e.Metrics,
		Track:       e.track(),
	}
	// Mark the injector before the run so only this run's fault delta is
	// folded into the profile — a reused engine must not re-count earlier
	// runs' faults.
	var mark int
	if e.Device != nil {
		e.Device.SetObs(e.Trace, e.Metrics, e.track()+"/gpu")
		mark = e.Device.Faults().Mark()
	}
	err := p.Stream(ctx, asm, req, emit)
	if e.Device != nil && e.profile != nil {
		e.profile.addFaults(e.Device.Faults().LogSince(mark))
	}
	return err
}

// clBackend adapts the OpenCL host program to the pipeline Backend
// contract. The run-wide objects (context, queue, program, kernels,
// pattern buffers) live for the whole stream; every buffer is tracked in
// the live set so Close can release whatever an aborted run left behind —
// a staging error can no longer leak simulator buffers.
type clBackend struct {
	e    *SimCL
	plan *pipeline.Plan
	prof *Profile

	ctx      *opencl.Context
	queue    *opencl.CommandQueue
	prog     *opencl.Program
	finder   *opencl.Kernel
	comparer *opencl.Kernel

	patBuf    *opencl.Mem
	patIdxBuf *opencl.Mem

	// finderPred and comparerPred carry the observed hit density across
	// chunks; each launch's arena is provisioned from them unless the
	// artifact's PAM index gives an exact count or WorstCaseArena pins the
	// layout.
	finderPred   *alloc.Predictor
	comparerPred *alloc.Predictor

	// mu guards live: the stager creates buffers while the scan worker
	// releases others.
	mu   sync.Mutex
	live map[*opencl.Mem]struct{}
}

// clCreate creates a buffer and registers it in the backend's live set.
func clCreate[T any](b *clBackend, flags opencl.MemFlags, n int, host []T) (*opencl.Mem, error) {
	m, err := opencl.CreateBuffer(b.ctx, flags, n, host)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.live[m] = struct{}{}
	b.mu.Unlock()
	return m, nil
}

// newCLBackend performs steps 1-8 of the host lifecycle (platform, device,
// context, queue, program, build, kernels) plus the run-constant pattern
// upload. On any failure the partially built state is torn down via Close.
func newCLBackend(e *SimCL, plan *pipeline.Plan) (_ *clBackend, err error) {
	b := &clBackend{
		e: e, plan: plan, prof: newProfile(e.Metrics),
		finderPred:   newFinderPredictor(),
		comparerPred: newComparerPredictor(),
		live:         make(map[*opencl.Mem]struct{}),
	}
	e.profile = b.prof
	if e.tuned != nil {
		b.prof.addTune(e.track(), e.tuned)
	}
	defer func() {
		if err != nil {
			b.Close()
		}
	}()

	// Steps 1-4: platform, device, context, queue.
	platform := opencl.NewPlatform("ROCm", "AMD", e.Device)
	devs, err := platform.GetDevices(opencl.DeviceTypeGPU)
	if err != nil {
		return nil, err
	}
	if b.ctx, err = opencl.CreateContext(devs...); err != nil {
		return nil, err
	}
	if b.queue, err = b.ctx.CreateCommandQueue(devs[0]); err != nil {
		return nil, err
	}

	// Steps 6-8: program and kernels.
	if b.prog, err = b.ctx.CreateProgramWithSource(kernels.CLSource()); err != nil {
		return nil, err
	}
	if err = b.prog.Build("-O3"); err != nil {
		return nil, err
	}
	if b.finder, err = b.prog.CreateKernel("finder"); err != nil {
		return nil, err
	}
	if b.comparer, err = b.prog.CreateKernel(kernels.ComparerKernelName(e.variant())); err != nil {
		return nil, err
	}

	// Step 5 (per-run constants): pattern tables.
	pattern := plan.Pattern
	if b.patBuf, err = clCreate(b, opencl.MemReadOnly|opencl.MemUseConstant|opencl.MemCopyHostPtr, len(pattern.Codes), pattern.Codes); err != nil {
		return nil, err
	}
	if b.patIdxBuf, err = clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(pattern.Index), pattern.Index); err != nil {
		return nil, err
	}
	b.prof.addStaged(int64(len(pattern.Codes) + 4*len(pattern.Index)))
	return b, nil
}

// releaseBuf releases a buffer and drops it from the live set; nil buffers
// are ignored so error paths can release unconditionally.
func (b *clBackend) releaseBuf(m *opencl.Mem) error {
	if m == nil {
		return nil
	}
	b.mu.Lock()
	delete(b.live, m)
	b.mu.Unlock()
	return m.Release()
}

// Close implements pipeline.Backend: release every still-live buffer (the
// pattern tables plus whatever staged chunks never reached Drain), then the
// kernels, program, queue and context, folding the first error.
func (b *clBackend) Close() (err error) {
	b.mu.Lock()
	leaked := make([]*opencl.Mem, 0, len(b.live))
	for m := range b.live {
		leaked = append(leaked, m)
	}
	b.live = make(map[*opencl.Mem]struct{})
	b.mu.Unlock()
	for _, m := range leaked {
		closeErr(m.Release(), &err)
	}
	b.patBuf, b.patIdxBuf = nil, nil
	if b.finder != nil {
		closeErr(b.finder.Release(), &err)
		b.finder = nil
	}
	if b.comparer != nil {
		closeErr(b.comparer.Release(), &err)
		b.comparer = nil
	}
	if b.prog != nil {
		closeErr(b.prog.Release(), &err)
		b.prog = nil
	}
	if b.queue != nil {
		closeErr(b.queue.Release(), &err)
		b.queue = nil
	}
	if b.ctx != nil {
		closeErr(b.ctx.Release(), &err)
		b.ctx = nil
	}
	return err
}

// clArena is one launch's device-side arena state: the page cursor, the
// per-group emission counters and page table, and the overflow counter.
type clArena struct {
	layout alloc.Layout

	cursorBuf, countBuf, pageBuf, ovfBuf *opencl.Mem
}

// createArena allocates and initialises one launch's arena state buffers
// for the layout (cursor and counters zeroed, page table cleared to NoPage).
// On error the partial allocation is left to the caller's release/Close.
func (b *clBackend) createArena(l alloc.Layout) (*clArena, error) {
	a := &clArena{layout: l}
	var err error
	if a.cursorBuf, err = clCreate[uint32](b, opencl.MemReadWrite, 1, nil); err != nil {
		return nil, err
	}
	if a.countBuf, err = clCreate[uint32](b, opencl.MemReadWrite, l.Groups, nil); err != nil {
		return nil, err
	}
	if a.pageBuf, err = clCreate(b, opencl.MemReadWrite|opencl.MemCopyHostPtr, l.Groups, alloc.UnsetPages(l.Groups)); err != nil {
		return nil, err
	}
	if a.ovfBuf, err = clCreate[uint32](b, opencl.MemReadWrite, 1, nil); err != nil {
		return nil, err
	}
	b.prof.addStaged(l.MetaBytes())
	return a, nil
}

// release frees the arena's state buffers.
func (a *clArena) release(b *clBackend) error {
	var err error
	for _, m := range []*opencl.Mem{a.cursorBuf, a.countBuf, a.pageBuf, a.ovfBuf} {
		closeErr(b.releaseBuf(m), &err)
	}
	return err
}

// readArena reads the launch's arena state back. The overflow counter is
// read (and accounted) first: a non-zero value means the launch dropped
// entries and must be retried on a grown arena, returned as dropped with a
// nil geometry. A clean launch's claim state is then read and decoded —
// Decode rejects impossible state as fault.SiteArena corruption, after the
// readback bytes are already on the profile.
func (b *clBackend) readArena(a *clArena) (geo *alloc.Geometry, dropped uint32, err error) {
	ovf := make([]uint32, 1)
	if _, err := opencl.EnqueueReadBuffer(b.queue, a.ovfBuf, true, 0, 1, ovf); err != nil {
		return nil, 0, err
	}
	b.prof.addRead(4)
	if ovf[0] != 0 {
		return nil, ovf[0], nil
	}
	cursor := make([]uint32, 1)
	if _, err := opencl.EnqueueReadBuffer(b.queue, a.cursorBuf, true, 0, 1, cursor); err != nil {
		return nil, 0, err
	}
	count := make([]uint32, a.layout.Groups)
	if _, err := opencl.EnqueueReadBuffer(b.queue, a.countBuf, true, 0, len(count), count); err != nil {
		return nil, 0, err
	}
	pageOf := make([]uint32, a.layout.Groups)
	if _, err := opencl.EnqueueReadBuffer(b.queue, a.pageBuf, true, 0, len(pageOf), pageOf); err != nil {
		return nil, 0, err
	}
	b.prof.addRead(4 + 8*int64(a.layout.Groups))
	geo, err = alloc.Decode(cursor[0], count, pageOf, a.layout.PageSlots, a.layout.Pages)
	if err != nil {
		return nil, 0, err
	}
	return geo, 0, nil
}

// clStaged is one chunk's state: the sequence buffer created at stage time,
// the device-side compacted candidate buffers the finder arena is drained
// into, and the raw entries accumulated across guides.
type clStaged struct {
	ch *genome.Chunk

	chrBuf              *opencl.Mem
	cLociBuf, cFlagsBuf *opencl.Mem

	n       int
	entries []rawHit
}

// Stage implements pipeline.Backend: create and fill the chunk's sequence
// buffer (step 9 of the host lifecycle). The finder's output no longer
// stages worst-case sites-sized buffers here — each Find attempt provisions
// an arena for the predicted density instead. This runs on the stager
// goroutine while the scan worker drives kernels over the previous chunk.
func (b *clBackend) Stage(ctx context.Context, ch *genome.Chunk) (pipeline.Staged, error) {
	s := &clStaged{ch: ch}
	data := ch.Data
	var err error
	if s.chrBuf, err = clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(data), data); err != nil {
		return nil, err
	}
	b.prof.addStagedChunk(int64(len(data)))
	return s, nil
}

// Find implements pipeline.Backend: enqueue the finder over the padded site
// range with an arena provisioned for the predicted candidate density, grow
// and relaunch on overflow, then compact the claimed pages into the
// comparer's exact-size input with device-to-device copies. Only the arena's
// claim state crosses back to the host; the candidates themselves never do.
func (b *clBackend) Find(ctx context.Context, st pipeline.Staged) (int, error) {
	s := st.(*clStaged)
	plen := b.plan.Pattern.PatternLen
	sites := s.ch.Body
	if sites == 0 {
		// A final chunk can own zero site starts (its body is shorter than
		// the pattern's overlap); there is nothing to scan, and a zero-sized
		// ND-range cannot be enqueued.
		return 0, nil
	}

	wg := b.e.wgSize()
	pad := wg
	if pad <= 0 {
		pad = 64
	}
	// The padded global size makes the effective local size deterministic
	// even when wg=0 leaves the choice to the runtime (defaultLocalSize
	// picks the largest power of two dividing gws), so the group count —
	// and with it the arena's page tables — is known on the host.
	gws := (sites + pad - 1) / pad * pad
	layout := finderLayout(b.plan, b.finderPred, s.ch, gws/pad, pad, b.e.WorstCaseArena)

	for {
		lociBuf, err := clCreate[uint32](b, opencl.MemReadWrite, layout.Slots(), nil)
		if err != nil {
			return 0, err
		}
		flagsBuf, err := clCreate[byte](b, opencl.MemReadWrite, layout.Slots(), nil)
		if err != nil {
			return 0, err
		}
		arena, err := b.createArena(layout)
		if err != nil {
			return 0, err
		}
		b.prof.addArena(layout.DataBytes(finderEntryBytes)+layout.MetaBytes(), 0)
		release := func() error {
			var err error
			closeErr(b.releaseBuf(lociBuf), &err)
			closeErr(b.releaseBuf(flagsBuf), &err)
			closeErr(arena.release(b), &err)
			return err
		}

		finderArgs := []any{
			s.chrBuf, b.patBuf, b.patIdxBuf,
			int32(plen), uint32(sites),
			lociBuf, flagsBuf,
			int32(layout.PageSlots), int32(layout.Pages),
			arena.cursorBuf, arena.countBuf, arena.pageBuf, arena.ovfBuf,
		}
		for i, a := range finderArgs {
			if err := b.finder.SetArg(i, a); err != nil {
				return 0, err
			}
		}
		if err := b.finder.SetArgLocal(kernels.FinderArgLocalPat, 2*plen); err != nil {
			return 0, err
		}
		if err := b.finder.SetArgLocal(kernels.FinderArgLocalPatIndex, 4*2*plen); err != nil {
			return 0, err
		}

		ev, err := b.queue.EnqueueNDRangeKernelCtx(ctx, b.finder, gws, wg)
		if err != nil {
			return 0, err
		}
		if err := ev.Wait(); err != nil {
			return 0, err
		}
		b.prof.addKernel("finder", ev.Stats(), pad)

		geo, dropped, err := b.readArena(arena)
		if err != nil {
			return 0, err
		}
		if dropped > 0 {
			if err := release(); err != nil {
				return 0, err
			}
			grown, ok := alloc.Grow(layout)
			if !ok {
				return 0, fault.Errorf(fault.SiteArena, fault.Overflow,
					"search: %s: finder arena dropped %d entries at worst-case %v", b.e.Name(), dropped, layout)
			}
			layout = grown
			b.prof.addOverflowRetry()
			continue
		}
		b.prof.addArena(0, int64(geo.Claimed))

		s.n = geo.Total
		// The finder emits at most one entry per scanned site; a larger
		// total can only be corrupted arena state that slipped past Decode's
		// structural checks. Reject before sizing the gather on it — the
		// readback bytes are already on the profile.
		if s.n > sites {
			s.n = 0
			return 0, fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: %s: finder count %d exceeds the %d scanned sites", b.e.Name(), geo.Total, sites)
		}
		b.prof.addCandidates(int64(s.n))

		if s.n > 0 {
			// Compact the candidates into the comparer's exact-size input with
			// device-to-device copies, one per claimed page: the comparer
			// indexes loci/flags densely in [0, n), so a page-strided view
			// would not do, and an on-device compaction keeps the candidates
			// off the PCIe bus entirely — the host only ever reads the arena's
			// claim state.
			if s.cLociBuf, err = clCreate[uint32](b, opencl.MemReadWrite, s.n, nil); err != nil {
				return 0, err
			}
			if s.cFlagsBuf, err = clCreate[byte](b, opencl.MemReadWrite, s.n, nil); err != nil {
				return 0, err
			}
			pos := 0
			for p := 0; p < geo.Claimed; p++ {
				n := geo.Counts[p]
				if _, err := opencl.EnqueueCopyBuffer[uint32](b.queue, lociBuf, s.cLociBuf, p*layout.PageSlots, pos, n); err != nil {
					return 0, err
				}
				if _, err := opencl.EnqueueCopyBuffer[byte](b.queue, flagsBuf, s.cFlagsBuf, p*layout.PageSlots, pos, n); err != nil {
					return 0, err
				}
				pos += n
			}
		}
		if err := release(); err != nil {
			return 0, err
		}
		b.finderPred.Observe(layout.Groups, geo.Claimed)
		break
	}
	return s.n, nil
}

// Compare implements pipeline.Backend: upload one guide's tables, enqueue
// the comparer with an arena provisioned for the predicted entry density
// (two slots per candidate in the worst case), grow and relaunch on
// overflow, and gather the entries with one ranged read per claimed page.
// The transient guide buffers are released here on success; an error leaves
// them to Close.
func (b *clBackend) Compare(ctx context.Context, st pipeline.Staged, qi int) error {
	s := st.(*clStaged)
	g := b.plan.Guides[qi]
	q := b.plan.Request.Queries[qi]

	compBuf, err := clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(g.Codes), g.Codes)
	if err != nil {
		return err
	}
	compIdxBuf, err := clCreate(b, opencl.MemReadOnly|opencl.MemCopyHostPtr, len(g.Index), g.Index)
	if err != nil {
		return err
	}
	b.prof.addStaged(int64(len(g.Codes) + 4*len(g.Index)))

	wg := b.e.wgSize()
	pad := wg
	if pad <= 0 {
		pad = 64
	}
	cgws := (s.n + pad - 1) / pad * pad
	layout := comparerLayout(b.comparerPred, cgws/pad, 2*pad, b.e.WorstCaseArena)

	for {
		mmLociBuf, err := clCreate[uint32](b, opencl.MemWriteOnly, layout.Slots(), nil)
		if err != nil {
			return err
		}
		mmCountBuf, err := clCreate[uint16](b, opencl.MemWriteOnly, layout.Slots(), nil)
		if err != nil {
			return err
		}
		dirBuf, err := clCreate[byte](b, opencl.MemWriteOnly, layout.Slots(), nil)
		if err != nil {
			return err
		}
		arena, err := b.createArena(layout)
		if err != nil {
			return err
		}
		b.prof.addArena(layout.DataBytes(comparerEntryBytes)+layout.MetaBytes(), 0)
		release := func() error {
			var err error
			for _, m := range []*opencl.Mem{mmLociBuf, mmCountBuf, dirBuf} {
				closeErr(b.releaseBuf(m), &err)
			}
			closeErr(arena.release(b), &err)
			return err
		}

		comparerArgs := []any{
			uint32(s.n), s.chrBuf, s.cLociBuf, mmLociBuf,
			compBuf, compIdxBuf,
			int32(g.PatternLen), uint16(q.MaxMismatches),
			s.cFlagsBuf, mmCountBuf, dirBuf,
			int32(layout.PageSlots), int32(layout.Pages),
			arena.cursorBuf, arena.countBuf, arena.pageBuf, arena.ovfBuf,
		}
		for i, a := range comparerArgs {
			if err := b.comparer.SetArg(i, a); err != nil {
				return err
			}
		}
		if err := b.comparer.SetArgLocal(kernels.ComparerArgLocalComp, 2*g.PatternLen); err != nil {
			return err
		}
		if err := b.comparer.SetArgLocal(kernels.ComparerArgLocalCompIndex, 4*2*g.PatternLen); err != nil {
			return err
		}
		ev, err := b.queue.EnqueueNDRangeKernelCtx(ctx, b.comparer, cgws, wg)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		b.prof.addKernel(b.comparer.Name(), ev.Stats(), pad)

		geo, dropped, err := b.readArena(arena)
		if err != nil {
			return err
		}
		if dropped > 0 {
			if err := release(); err != nil {
				return err
			}
			grown, ok := alloc.Grow(layout)
			if !ok {
				return fault.Errorf(fault.SiteArena, fault.Overflow,
					"search: %s: comparer arena dropped %d entries at worst-case %v", b.e.Name(), dropped, layout)
			}
			layout = grown
			b.prof.addOverflowRetry()
			continue
		}
		b.prof.addArena(0, int64(geo.Claimed))

		cnt := geo.Total
		// The comparer emits at most one entry per strand per candidate; a
		// larger count can only be a corrupted readback — reject it before
		// sizing the entry gather on it. The readback bytes are already on
		// the profile.
		if cnt > 2*s.n {
			return fault.Errorf(fault.SiteReadback, fault.Corruption,
				"search: %s: comparer entry count %d exceeds 2×%d candidates", b.e.Name(), cnt, s.n)
		}
		b.prof.addEntries(int64(cnt))
		if cnt > 0 {
			// Ranged reads gather only each claimed page's valid prefix: the
			// readback traffic is cnt entries however sparsely the pages are
			// filled, just as the pre-arena host read exactly the counted
			// entries.
			mmLoci := make([]uint32, cnt)
			mmCount := make([]uint16, cnt)
			dirs := make([]byte, cnt)
			pos := 0
			for p := 0; p < geo.Claimed; p++ {
				n := geo.Counts[p]
				base := p * layout.PageSlots
				if _, err := opencl.EnqueueReadBuffer(b.queue, mmLociBuf, true, base, n, mmLoci[pos:]); err != nil {
					return err
				}
				if _, err := opencl.EnqueueReadBuffer(b.queue, mmCountBuf, true, base, n, mmCount[pos:]); err != nil {
					return err
				}
				if _, err := opencl.EnqueueReadBuffer(b.queue, dirBuf, true, base, n, dirs[pos:]); err != nil {
					return err
				}
				pos += n
			}
			b.prof.addRead(int64(comparerEntryBytes * cnt))
			for i := 0; i < cnt; i++ {
				s.entries = append(s.entries, rawHit{qi: qi, pos: int(mmLoci[i]), dir: dirs[i], mm: int(mmCount[i])})
			}
		}
		if err := release(); err != nil {
			return err
		}
		b.comparerPred.Observe(layout.Groups, geo.Claimed)
		break
	}
	if err := b.releaseBuf(compBuf); err != nil {
		return err
	}
	return b.releaseBuf(compIdxBuf)
}

// Drain implements pipeline.Backend: render the accumulated entries
// (rejecting corrupted readbacks) and release the chunk's buffers.
func (b *clBackend) Drain(ctx context.Context, st pipeline.Staged, r *pipeline.SiteRenderer) ([]Hit, error) {
	s := st.(*clStaged)
	hits, derr := drainEntries(r, s.ch, b.plan.Guides, s.entries)
	if derr != nil {
		// Corrupted entries: keep the buffers for Release/Close and hand
		// the corruption class to the resilient executor.
		return nil, derr
	}
	var err error
	for _, m := range []*opencl.Mem{s.chrBuf, s.cLociBuf, s.cFlagsBuf} {
		closeErr(b.releaseBuf(m), &err)
	}
	if err != nil {
		return nil, err
	}
	return hits, nil
}

// Release implements pipeline.Releaser: free an abandoned staged handle's
// buffers as soon as the resilient executor gives up on an attempt, rather
// than holding them (against the device memory budget) until Close. A lost
// context makes the releases fail; Close's sweep stays the backstop.
func (b *clBackend) Release(st pipeline.Staged) {
	s, ok := st.(*clStaged)
	if !ok || s == nil {
		return
	}
	for _, m := range []*opencl.Mem{s.chrBuf, s.cLociBuf, s.cFlagsBuf} {
		_ = b.releaseBuf(m) // best effort; Close sweeps leftovers
	}
}
