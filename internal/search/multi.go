package search

import (
	"context"
	"errors"
	"fmt"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
	"casoffinder/internal/sched"
	"casoffinder/internal/tune"
)

// MultiSYCL extends the SYCL application to several devices — the paper's
// stated limitation ("The SYCL application currently executes on a single
// GPU device", §IV.A) turned future work. The fleet runs behind the
// work-stealing scheduler (internal/sched): each device's deque is seeded
// with a cost-model-proportional shard of the chunk plan — the per-chunk
// estimate from internal/timing for the device's Table VII spec and the
// selected comparer variant — and idle devices steal half the tail of the
// most loaded deque, so a heterogeneous fleet stays busy end to end
// instead of waiting on its slowest member.
//
// Resilience is device-level: with a policy set, a chunk that exhausts its
// retries (or trips the watchdog, or returns corrupted data) evicts its
// device and the device's remaining work redistributes to the survivors;
// only a fully evicted fleet falls back to the CPU SWAR engine, chunk by
// chunk. Hits still flow through the pipeline's ordered-emit contract, so
// the stream is byte-identical to a single-device run regardless of which
// device ran which chunk.
type MultiSYCL struct {
	// Devices are the simulated GPUs to spread the search over.
	Devices []*gpu.Device
	// Variant selects the comparer kernel on every device.
	Variant kernels.ComparerVariant
	// WorkGroupSize overrides the launch local size (0 means 256).
	WorkGroupSize int
	// Auto resolves the comparer variant and work-group size per device
	// through the occupancy autotuner (internal/tune) at Stream start: a
	// heterogeneous fleet can run a different kernel on each member, and
	// the scheduler's shard weights are seeded from the tuned estimates.
	// Variant is ignored; WorkGroupSize (when set) narrows the tuner to
	// that local size. Calibrate additionally runs the tuner's online
	// measured pass per device type. Output stays byte-identical.
	Auto      bool
	Calibrate bool
	// WorstCaseArena pins every device's hit-buffer arenas to the
	// worst-case layout instead of density-driven provisioning; see
	// SimCL.WorstCaseArena.
	WorstCaseArena bool
	// Resilience, when set, is the fleet's device-level policy: per-chunk
	// transient retries on the owning device, then eviction; a fully
	// evicted fleet fails over to the CPU engine (unless a custom
	// Fallback is configured).
	Resilience *pipeline.Resilience
	// Static pins every chunk to its cost-model shard — no stealing, no
	// eviction, per-chunk failover — the pre-scheduler behaviour, kept
	// for comparison benchmarks.
	Static bool
	// Trace and Metrics, when set, are shared by every per-device
	// sub-engine: each device's spans land on its own "sycl-sim[i]"
	// track, scheduler events (steal, evict, failover) on the same
	// tracks, and the counters sum across devices in one registry.
	Trace   *obs.Tracer
	Metrics *obs.Metrics

	profile *Profile
}

// Name implements Engine.
func (e *MultiSYCL) Name() string { return "sycl-multi" }

// LastProfile implements Profiler: the merged profile of all devices, with
// the scheduler's steal/eviction accounting folded in.
func (e *MultiSYCL) LastProfile() *Profile { return e.profile }

// Run implements Engine.
func (e *MultiSYCL) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	return Collect(context.Background(), e, asm, req)
}

func (e *MultiSYCL) wgSize() int {
	if e.WorkGroupSize > 0 {
		return e.WorkGroupSize
	}
	return DefaultSYCLWorkGroup
}

// deviceWeights derives each device's scheduling weight from the timing
// model: the inverse of the estimated cost of one chunk on that device,
// with the finder/comparer launch contexts (occupancy, register pressure)
// built by the autotuner's cost model from internal/isa. When the tuner ran
// (tuned non-nil), each device is priced at its own selected (variant,
// work-group size) pair, so a heterogeneous fleet's shards reflect the
// kernels it will actually launch. A faster device gets a proportionally
// larger initial shard.
func (e *MultiSYCL) deviceWeights(req *Request, tuned []*tune.Decision) []float64 {
	plen := len(req.Pattern)
	chunkBytes := req.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = pipeline.DefaultChunkBytes
	}
	weights := make([]float64, len(e.Devices))
	for i, d := range e.Devices {
		v, wg := e.Variant, e.wgSize()
		if tuned != nil && tuned[i] != nil {
			v, wg = tuned[i].Variant, tuned[i].WGSize
		}
		est := tune.Estimate(d.Spec(), v, wg, plen, len(req.Queries))
		if sec := est.Seconds(chunkBytes); sec > 0 {
			weights[i] = 1 / sec
		}
	}
	return weights
}

// schedPolicy copies the engine policy for the scheduler, defaulting the
// fallback to the CPU SWAR engine (byte-identical hit stream, so a
// failed-over chunk preserves the golden output). Unlike resilienceFor it
// does not chain OnReport: the scheduler reports through sched.Report.
func (e *MultiSYCL) schedPolicy() *pipeline.Resilience {
	if e.Resilience == nil {
		return nil
	}
	r := *e.Resilience
	if r.Fallback == nil {
		r.Fallback = func(plan *pipeline.Plan) (pipeline.Backend, error) {
			return newCPUBackend(plan, &CPU{Packed: true}), nil
		}
	}
	return &r
}

// Stream implements Engine: compile once, then run the chunk plan across
// the fleet through the work-stealing executor. Hits are emitted in chunk
// order as chunks settle — the pipeline's ordered-emit contract — so the
// stream matches a single-device run byte for byte.
func (e *MultiSYCL) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if len(e.Devices) == 0 {
		return errors.New("search: sycl-multi: no devices")
	}
	for i, d := range e.Devices {
		if d == nil {
			return fmt.Errorf("search: sycl-multi: device %d is nil", i)
		}
	}

	// Resolve the tuner per device before seeding the fleet: repeated
	// device types hit the tune package's memoized decision, so an N-GPU
	// homogeneous fleet scores (and calibrates) once.
	var tuned []*tune.Decision
	if e.Auto {
		tuned = make([]*tune.Decision, len(e.Devices))
		for i, dev := range e.Devices {
			d, err := autotuneDecision(dev, req, e.WorkGroupSize, e.Calibrate)
			if err != nil {
				return fmt.Errorf("search: %s: autotune device %d: %w", e.Name(), i, err)
			}
			tuned[i] = d
		}
	}

	// One SimSYCL shell per device: the scheduler opens its syclBackend
	// (at most once per run), and the shell's profile collects what that
	// device did. Sub-engines share the run's tracer and metrics.
	subEngines := make([]*SimSYCL, len(e.Devices))
	marks := make([]int, len(e.Devices))
	fleet := make([]sched.Device, len(e.Devices))
	weights := e.deviceWeights(req, tuned)
	for i, dev := range e.Devices {
		sub := &SimSYCL{
			Device: dev, Variant: e.Variant, WorkGroupSize: e.WorkGroupSize,
			WorstCaseArena: e.WorstCaseArena,
			Trace:          e.Trace, Metrics: e.Metrics, Track: fmt.Sprintf("sycl-sim[%d]", i),
		}
		if tuned != nil {
			sub.Auto, sub.Calibrate, sub.tuned = true, e.Calibrate, tuned[i]
		}
		subEngines[i] = sub
		dev.SetObs(e.Trace, e.Metrics, sub.track()+"/gpu")
		// Mark each injector before the run so only this run's fault
		// delta is folded into the profile.
		marks[i] = dev.Faults().Mark()
		fleet[i] = sched.Device{
			Name:   sub.track(),
			Weight: weights[i],
			Open: func(plan *pipeline.Plan) (pipeline.Backend, error) {
				return newSYCLBackend(sub, plan)
			},
		}
	}

	var schedRep *sched.Report
	exec := &sched.Executor{
		Devices:  fleet,
		Policy:   e.schedPolicy(),
		Static:   e.Static,
		Trace:    e.Trace,
		Metrics:  e.Metrics,
		Track:    e.Name(),
		OnReport: func(rep *sched.Report) { schedRep = rep },
	}
	p := &pipeline.Pipeline{
		Executor: exec,
		Trace:    e.Trace,
		Metrics:  e.Metrics,
		Track:    e.Name(),
	}
	err := p.Stream(ctx, asm, req, emit)

	// Fold each device's fault delta into that device's own profile —
	// which carries the shared metrics registry, so MetricFaults stays in
	// step — then merge everything. The merged profile carries no
	// registry of its own: every count already streamed in live, and
	// folding again here would double-count.
	merged := newProfile(nil)
	for i, sub := range subEngines {
		prof := sub.LastProfile()
		if prof == nil {
			// The scheduler never opened this device (empty shard, no
			// steal); it cannot have fired faults either.
			continue
		}
		prof.addFaults(e.Devices[i].Faults().LogSince(marks[i]))
		merged.merge(prof)
	}
	if schedRep != nil {
		merged.addSched(schedRep)
	}
	e.profile = merged
	return err
}
