package search

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
)

// MultiSYCL extends the SYCL application to several devices — the paper's
// stated limitation ("The SYCL application currently executes on a single
// GPU device", §IV.A) turned future work. Sequences are distributed
// round-robin across one SimSYCL engine per device, engines run
// concurrently (each streaming through the shared pipeline), and hits
// merge into the usual deterministic order.
type MultiSYCL struct {
	// Devices are the simulated GPUs to spread the search over.
	Devices []*gpu.Device
	// Variant selects the comparer kernel on every device.
	Variant kernels.ComparerVariant
	// WorkGroupSize overrides the launch local size (0 means 256).
	WorkGroupSize int
	// Resilience, when set, is applied to every per-device sub-engine:
	// each device retries, reaps hangs and fails over to the CPU engine
	// independently, and the merged profile carries the combined counters.
	Resilience *pipeline.Resilience
	// Trace and Metrics, when set, are shared by every per-device
	// sub-engine: each device's spans land on its own "sycl-sim[i]" tracks
	// and the counters sum across devices in one registry.
	Trace   *obs.Tracer
	Metrics *obs.Metrics

	profile *Profile
}

// Name implements Engine.
func (e *MultiSYCL) Name() string { return "sycl-multi" }

// LastProfile implements Profiler: the merged profile of all devices.
func (e *MultiSYCL) LastProfile() *Profile { return e.profile }

// Run implements Engine.
func (e *MultiSYCL) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	return Collect(context.Background(), e, asm, req)
}

// Stream implements Engine. Hits can only be emitted once every device has
// finished (the merge is what makes the order deterministic), so this
// engine streams per-device internally and emits the merged result.
func (e *MultiSYCL) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if len(e.Devices) == 0 {
		return errors.New("search: sycl-multi: no devices")
	}
	for i, d := range e.Devices {
		if d == nil {
			return fmt.Errorf("search: sycl-multi: device %d is nil", i)
		}
	}

	// Partition sequences round-robin by descending length so device loads
	// balance even when chromosome sizes are skewed.
	parts := make([]*genome.Assembly, len(e.Devices))
	for i := range parts {
		parts[i] = &genome.Assembly{Name: fmt.Sprintf("%s.part%d", asm.Name, i)}
	}
	order := make([]int, len(asm.Sequences))
	for i := range order {
		order[i] = i
	}
	// Simple length-descending selection sort (sequence counts are small).
	for i := 0; i < len(order); i++ {
		maxAt := i
		for j := i + 1; j < len(order); j++ {
			if len(asm.Sequences[order[j]].Data) > len(asm.Sequences[order[maxAt]].Data) {
				maxAt = j
			}
		}
		order[i], order[maxAt] = order[maxAt], order[i]
	}
	for rank, si := range order {
		p := parts[rank%len(parts)]
		p.Sequences = append(p.Sequences, asm.Sequences[si])
	}

	subEngines := make([]*SimSYCL, len(e.Devices))
	results := make([][]Hit, len(e.Devices))
	errs := make([]error, len(e.Devices))
	var wg sync.WaitGroup
	for i, dev := range e.Devices {
		subEngines[i] = &SimSYCL{
			Device: dev, Variant: e.Variant, WorkGroupSize: e.WorkGroupSize, Resilience: e.Resilience,
			Trace: e.Trace, Metrics: e.Metrics, Track: fmt.Sprintf("sycl-sim[%d]", i),
		}
		if len(parts[i].Sequences) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Collect(ctx, subEngines[i], parts[i], req)
		}(i)
	}
	wg.Wait()

	// A device that quarantined chunks still produced exact hits for every
	// other chunk (Collect returns them alongside the PartialError), so
	// partial devices degrade the merged run instead of failing it; any
	// other error is fatal.
	var partial *pipeline.PartialError
	for i := range e.Devices {
		var pe *pipeline.PartialError
		if errs[i] != nil && !errors.As(errs[i], &pe) {
			return fmt.Errorf("search: sycl-multi device %d: %w", i, errs[i])
		}
		if pe != nil && partial == nil {
			partial = pe
		}
	}
	// The merged profile carries no metrics registry of its own: every
	// sub-profile already streamed its counts into the shared registry, so
	// folding them again here would double-count.
	merged := newProfile(nil)
	var hits []Hit
	for i := range e.Devices {
		hits = append(hits, results[i]...)
		if p := subEngines[i].LastProfile(); p != nil && len(parts[i].Sequences) > 0 {
			merged.merge(p)
		}
	}
	e.profile = merged
	sortHits(hits)
	for _, h := range hits {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := emit(h); err != nil {
			return err
		}
	}
	if partial != nil {
		return partial
	}
	return nil
}
