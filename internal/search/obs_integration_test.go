package search

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"casoffinder/internal/fault"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
)

// spanChunks collects the chunk indices of every span with the given name.
func spanChunks(spans []obs.Span, name string) map[int]bool {
	out := map[int]bool{}
	for _, s := range spans {
		if s.Name == name && s.Chunk >= 0 {
			out[s.Chunk] = true
		}
	}
	return out
}

// requireContiguous asserts the chunk set is exactly {0..n-1}.
func requireContiguous(t *testing.T, name string, got map[int]bool, n int) {
	t.Helper()
	if len(got) != n {
		t.Errorf("%q spans cover %d chunks, want %d", name, len(got), n)
	}
	for i := 0; i < n; i++ {
		if !got[i] {
			t.Errorf("no %q span for chunk %d", name, i)
		}
	}
}

// TestTraceCoversResilientRun drives the resilient executor under seeded
// transient faults and checks the acceptance shape of the trace: stage,
// launch, drain and emit spans for every chunk, retry instants matching the
// profile, and a Chrome dump that parses as JSON.
func TestTraceCoversResilientRun(t *testing.T) {
	asm := testAssembly(t, 11, []int{700, 450, 90}, testSite)
	req := testRequest(2)
	plan := fault.Plan{Seed: 5, Rate: 0.4, Site: fault.SiteCLEnqueue}
	dev := gpu.New(device.MI100(), gpu.WithWorkers(4))
	dev.SetFaults(fault.NewInjector(plan))
	tr := obs.NewTracer()
	m := obs.NewMetrics()
	eng := &SimCL{
		Device: dev, Variant: kernels.Base,
		Resilience: &pipeline.Resilience{Seed: plan.Seed},
		Trace:      tr, Metrics: m,
	}
	hits, err := eng.Run(asm, req)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits; test data is too sparse")
	}
	p := eng.LastProfile()
	if p.Retries == 0 {
		t.Fatal("no retries; raise the fault rate for the trace to cover the retry path")
	}

	spans := tr.Spans()
	chunks := int(m.Snapshot().Counters[obs.MetricPipelineChunks])
	if chunks < 2 {
		t.Fatalf("only %d pipeline chunks; ChunkBytes should force several", chunks)
	}
	requireContiguous(t, "stage", spanChunks(spans, "stage"), chunks)
	requireContiguous(t, "drain", spanChunks(spans, "drain"), chunks)
	requireContiguous(t, "emit", spanChunks(spans, "emit"), chunks)

	var launches, retries int
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "launch:") {
			launches++
			if !strings.HasSuffix(s.Track, "/gpu") {
				t.Errorf("launch span on track %q, want a /gpu device track", s.Track)
			}
		}
		if s.Name == "retry" {
			if !s.Instant {
				t.Errorf("retry span not an instant: %+v", s)
			}
			retries++
		}
	}
	if launches == 0 {
		t.Error("no kernel launch spans recorded")
	}
	if int64(retries) != p.Retries {
		t.Errorf("%d retry instants, profile says %d retries", retries, p.Retries)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Errorf("trace has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
}

// TestTraceCoversConcurrentPipeline checks the double-buffered topology: the
// stager, per-worker and collector tracks each carry their phase spans for
// every chunk, the queue-occupancy gauge drains back to zero, and the hits
// counter matches the emitted stream.
func TestTraceCoversConcurrentPipeline(t *testing.T) {
	asm := testAssembly(t, 11, []int{700, 450, 90}, testSite)
	req := testRequest(2)
	tr := obs.NewTracer()
	m := obs.NewMetrics()
	eng := &CPU{Workers: 3, Trace: tr, Metrics: m}
	var hits []Hit
	err := eng.Stream(context.Background(), asm, req, func(h Hit) error {
		hits = append(hits, h)
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}

	spans := tr.Spans()
	snap := m.Snapshot()
	chunks := int(snap.Counters[obs.MetricPipelineChunks])
	if chunks < 2 {
		t.Fatalf("only %d pipeline chunks; ChunkBytes should force several", chunks)
	}
	for _, name := range []string{"stage", "find", "compare", "drain", "emit"} {
		requireContiguous(t, name, spanChunks(spans, name), chunks)
	}
	for _, s := range spans {
		switch s.Name {
		case "validate", "compile":
			if s.Chunk != -1 {
				t.Errorf("%s span bound to chunk %d, want run-level -1", s.Name, s.Chunk)
			}
		case "stage":
			if !strings.HasSuffix(s.Track, "/stager") {
				t.Errorf("stage span on track %q, want the stager track", s.Track)
			}
		case "scan":
			if !strings.Contains(s.Track, "/worker") {
				t.Errorf("scan span on track %q, want a worker track", s.Track)
			}
		}
	}
	if got := snap.Gauges[obs.MetricQueueOccupancy]; got != 0 {
		t.Errorf("queue occupancy gauge = %g after the run, want 0", got)
	}
	if got := snap.Counters[obs.MetricHits]; got != int64(len(hits)) {
		t.Errorf("hits counter = %d, stream emitted %d", got, len(hits))
	}
	if snap.Histograms[obs.MetricStageSeconds].Count == 0 || snap.Histograms[obs.MetricScanSeconds].Count == 0 {
		t.Error("stage/scan latency histograms missing")
	}
}
