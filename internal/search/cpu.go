package search

import (
	"fmt"
	"runtime"
	"sync"

	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
)

// CPU is the production engine: a goroutine-parallel scan over genome
// chunks with no device simulation. It is the engine a downstream user
// would run; the simulator engines exist to reproduce the paper.
type CPU struct {
	// Workers bounds the concurrent chunk scanners; 0 means NumCPU.
	Workers int
	// Packed scans chunks in the 2-bit packed format (the upstream
	// optimization noted in the paper's related work [21]); results are
	// byte-identical to the default path.
	Packed bool
}

// Name implements Engine.
func (c *CPU) Name() string { return "cpu" }

// Run implements Engine.
func (c *CPU) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	pattern, err := kernels.NewPatternPair([]byte(req.Pattern))
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	guides := make([]*kernels.PatternPair, len(req.Queries))
	for i, q := range req.Queries {
		if guides[i], err = kernels.NewPatternPair([]byte(q.Guide)); err != nil {
			return nil, fmt.Errorf("search: query %d: %w", i, err)
		}
	}
	chunker := &genome.Chunker{ChunkBytes: req.chunkBytes(), PatternLen: pattern.PatternLen}
	chunks, err := chunker.Plan(asm)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}

	var (
		packedPattern *maskedPattern
		packedGuides  []*maskedPattern
	)
	if c.Packed {
		packedPattern = newMaskedPattern(pattern)
		packedGuides = make([]*maskedPattern, len(guides))
		for i, g := range guides {
			packedGuides[i] = newMaskedPattern(g)
		}
	}

	perChunk := make([][]Hit, len(chunks))
	var (
		wg      sync.WaitGroup
		scanErr error
		errOnce sync.Once
	)
	work := make(chan int)
	stop := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			scanErr = err
			close(stop)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one scratch whose candidate buffer is
			// reused across its chunks.
			var sc scanScratch
			for {
				select {
				case <-stop:
					return
				case ci, ok := <-work:
					if !ok {
						return
					}
					var (
						hits []Hit
						err  error
					)
					if c.Packed {
						hits, err = scanChunkPacked(chunks[ci], packedPattern, packedGuides, req.Queries)
					} else {
						hits, err = sc.scanChunk(chunks[ci], pattern, guides, req.Queries)
					}
					if err != nil {
						fail(err)
						return
					}
					perChunk[ci] = hits
				}
			}
		}()
	}
dispatch:
	for ci := range chunks {
		// Stop handing out chunks as soon as any worker fails.
		select {
		case work <- ci:
		case <-stop:
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	if scanErr != nil {
		return nil, scanErr
	}

	var all []Hit
	for _, hits := range perChunk {
		all = append(all, hits...)
	}
	sortHits(all)
	return all, nil
}

// Strand-survival bits recorded by the PAM prefilter.
const (
	strandFwd = 1 << iota
	strandRev
)

// candidate is a position that survived the PAM prefilter, tagged with the
// strands on which the scaffold matched.
type candidate struct {
	pos    int
	strand uint8
}

// scanScratch holds per-worker buffers reused across chunks so the scan
// allocates nothing per position.
type scanScratch struct {
	cand []candidate
}

// scanChunk finds every hit whose site start lies in the chunk body. Like
// the simulated GPU pipeline it runs in two phases: a PAM-prefilter pass
// over every position that compacts the (rare) scaffold matches into the
// pooled candidate buffer, then guide comparison only at those candidates.
// The chunk is scanned in place: the IUPAC tables accept soft-masked
// lower-case bases, and renderSite normalizes case in the reported site.
func (sc *scanScratch) scanChunk(ch *genome.Chunk, pattern *kernels.PatternPair, guides []*kernels.PatternPair, queries []Query) ([]Hit, error) {
	data := ch.Data
	plen := pattern.PatternLen

	// Phase 1: PAM prefilter (the finder kernel's role).
	cand := sc.cand[:0]
	for pos := 0; pos < ch.Body; pos++ {
		window := data[pos : pos+plen]
		var strand uint8
		if windowMatches(window, pattern, 0) {
			strand |= strandFwd
		}
		if windowMatches(window, pattern, plen) {
			strand |= strandRev
		}
		if strand != 0 {
			cand = append(cand, candidate{pos: pos, strand: strand})
		}
	}
	sc.cand = cand

	// Phase 2: guide comparison at the surviving candidates only (the
	// comparer kernel's role).
	var hits []Hit
	for _, cd := range cand {
		window := data[cd.pos : cd.pos+plen]
		for qi, g := range guides {
			limit := queries[qi].MaxMismatches
			if cd.strand&strandFwd != 0 {
				if mm, ok := countMismatches(window, g, 0, limit); ok {
					hits = append(hits, Hit{
						QueryIndex: qi,
						SeqName:    ch.SeqName,
						Pos:        ch.Start + cd.pos,
						Dir:        kernels.DirForward,
						Mismatches: mm,
						Site:       renderSite(window, g, kernels.DirForward),
					})
				}
			}
			if cd.strand&strandRev != 0 {
				if mm, ok := countMismatches(window, g, plen, limit); ok {
					hits = append(hits, Hit{
						QueryIndex: qi,
						SeqName:    ch.SeqName,
						Pos:        ch.Start + cd.pos,
						Dir:        kernels.DirReverse,
						Mismatches: mm,
						Site:       renderSite(window, g, kernels.DirReverse),
					})
				}
			}
		}
	}
	return hits, nil
}

// scanChunk is the single-shot wrapper used by tests and one-off callers;
// workers hold a scanScratch instead so the candidate buffer is pooled.
func scanChunk(ch *genome.Chunk, pattern *kernels.PatternPair, guides []*kernels.PatternPair, queries []Query) ([]Hit, error) {
	var sc scanScratch
	return sc.scanChunk(ch, pattern, guides, queries)
}

// windowMatches tests the PAM scaffold at the given strand offset.
func windowMatches(window []byte, p *kernels.PatternPair, offset int) bool {
	for j := 0; j < p.PatternLen; j++ {
		k := p.Index[offset+j]
		if k == -1 {
			break
		}
		if !genome.Matches(p.Codes[offset+int(k)], window[k]) {
			return false
		}
	}
	return true
}

// countMismatches counts mismatching guide positions at the strand offset,
// giving up past the limit.
func countMismatches(window []byte, g *kernels.PatternPair, offset, limit int) (int, bool) {
	mm := 0
	for j := 0; j < g.PatternLen; j++ {
		k := g.Index[offset+j]
		if k == -1 {
			break
		}
		if !genome.Matches(g.Codes[offset+int(k)], window[k]) {
			mm++
			if mm > limit {
				return mm, false
			}
		}
	}
	return mm, true
}
