package search

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
	"casoffinder/internal/obs"
	"casoffinder/internal/pipeline"
)

// CPU is the production engine: a goroutine-parallel scan over genome
// chunks with no device simulation. It is the engine a downstream user
// would run; the simulator engines exist to reproduce the paper.
type CPU struct {
	// Workers bounds the concurrent chunk scanners; 0 means NumCPU.
	Workers int
	// Packed scans chunks in the 2-bit packed format (the upstream
	// optimization noted in the paper's related work [21]) using the SWAR
	// word-parallel core — 32 bases per uint64 load — with all guides
	// batched into one pass per chunk; results are byte-identical to the
	// default path.
	Packed bool
	// Scalar forces the per-base packed compare (the pre-SWAR reference
	// path kept for equivalence testing and ablation). Only meaningful
	// with Packed.
	Scalar bool
	// NoBatch keeps the SWAR core but disables multi-pattern batching,
	// comparing guides one pipeline Compare call at a time — the ablation
	// arm of BenchmarkMultiPatternBatch. Only meaningful with Packed.
	NoBatch bool
	// Trace and Metrics, when set, record pipeline spans and counters for
	// the run; nil leaves the hot path untouched.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	// Track overrides the trace track prefix (default the engine name).
	Track string
}

// Name implements Engine.
func (c *CPU) Name() string { return "cpu" }

func (c *CPU) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// Run implements Engine.
func (c *CPU) Run(asm *genome.Assembly, req *Request) ([]Hit, error) {
	return Collect(context.Background(), c, asm, req)
}

// Stream implements Engine by running the shared pipeline over the in-place
// chunk scan, one scan worker per configured CPU.
func (c *CPU) Stream(ctx context.Context, asm *genome.Assembly, req *Request, emit func(Hit) error) error {
	track := c.Track
	if track == "" {
		track = c.Name()
	}
	p := &pipeline.Pipeline{
		Open: func(plan *pipeline.Plan) (pipeline.Backend, error) {
			return newCPUBackend(plan, c), nil
		},
		ScanWorkers: c.workers(),
		Trace:       c.Trace,
		Metrics:     c.Metrics,
		Track:       track,
	}
	return p.Stream(ctx, asm, req, emit)
}

// cpuBackend adapts the goroutine scan to the pipeline Backend contract.
// Staging is free (chunks are scanned in place), so the pipeline's scan
// workers carry all the parallelism.
type cpuBackend struct {
	plan   *pipeline.Plan
	packed bool
	scalar bool
	// shards is set when the plan's artifact carries PAM shards built for
	// this request's scaffold: Find then skips the prefilter scan entirely
	// and slices the chunk's candidates out of the precomputed index.
	shards bool
	// Scalar packed-path pattern tables, compiled once per run.
	packedPattern *maskedPattern
	packedGuides  []*maskedPattern
	// SWAR-path compiled patterns.
	bitPattern *BitPattern
	bitGuides  []*BitPattern
	// scratch pools one scanScratch per concurrent scan so the hot loops
	// allocate nothing per chunk.
	scratch sync.Pool
}

// newCPUBackend builds the backend for the engine's configuration. The
// default packed configuration returns the batching wrapper, which the
// pipeline detects (via its BatchComparer interface) to fuse all guides
// into one pass over each chunk's cached window words.
func newCPUBackend(plan *pipeline.Plan, c *CPU) pipeline.Backend {
	b := &cpuBackend{plan: plan, packed: c.Packed, scalar: c.Scalar}
	if plan.Artifact != nil {
		b.shards = plan.Artifact.HasPAMIndex(plan.Request.Pattern)
	}
	b.scratch.New = func() any { return new(scanScratch) }
	switch {
	case c.Packed && c.Scalar:
		b.packedPattern = newMaskedPattern(plan.Pattern)
		b.packedGuides = make([]*maskedPattern, len(plan.Guides))
		for i, g := range plan.Guides {
			b.packedGuides[i] = newMaskedPattern(g)
		}
	case c.Packed:
		b.bitPattern = CompileBitPattern(plan.Pattern)
		b.bitGuides = make([]*BitPattern, len(plan.Guides))
		for i, g := range plan.Guides {
			b.bitGuides[i] = CompileBitPattern(g)
		}
		if !c.NoBatch {
			return &batchedCPUBackend{b}
		}
	}
	return b
}

// cpuStaged is the CPU's staged-chunk handle: the chunk itself plus the
// pooled scratch claimed in Find and returned in Drain.
type cpuStaged struct {
	ch     *genome.Chunk
	sc     *scanScratch
	packed *genome.Packed
	view   *genome.WordView
	// base maps chunk-local positions into view's coordinates: ch.Start
	// when view is an artifact's resident whole-sequence view, 0 when it
	// was repacked from the chunk bytes.
	base int
}

// artifactView returns the resident whole-sequence word view covering ch
// when the plan's artifact has one, or nil to fall back to repacking. The
// guard re-derives the match (sequence identity and bounds) from the chunk
// itself, so a chunk from any other assembly simply takes the repack path.
func (b *cpuBackend) artifactView(ch *genome.Chunk) *genome.WordView {
	art := b.plan.Artifact
	if art == nil || ch.SeqIndex < 0 || ch.SeqIndex >= art.SeqCount() {
		return nil
	}
	if art.SeqName(ch.SeqIndex) != ch.SeqName || ch.Start+len(ch.Data) > art.SeqLen(ch.SeqIndex) {
		return nil
	}
	return art.View(ch.SeqIndex)
}

// Stage implements pipeline.Backend. The CPU scans chunks in place, so
// staging only wraps the chunk.
func (b *cpuBackend) Stage(ctx context.Context, ch *genome.Chunk) (pipeline.Staged, error) {
	return &cpuStaged{ch: ch}, nil
}

// Find implements pipeline.Backend: the PAM prefilter into the pooled
// candidate buffer (the finder kernel's role). The packed path packs the
// chunk here, in the scan worker, so packing parallelizes across chunks.
func (b *cpuBackend) Find(ctx context.Context, st pipeline.Staged) (int, error) {
	s := st.(*cpuStaged)
	s.sc = b.scratch.Get().(*scanScratch)
	switch {
	case b.packed && !b.scalar:
		// The SWAR path prefers the artifact's resident whole-sequence
		// view: no per-chunk Repack/WordView rebuild, and with matching
		// PAM shards no prefilter scan at all.
		if av := b.artifactView(s.ch); av != nil {
			s.view, s.base = av, s.ch.Start
			if b.shards {
				shard := b.plan.Artifact.PAMRange(s.ch.SeqIndex, s.ch.Start, s.ch.Start+s.ch.Body)
				if err := s.sc.candidatesFromShard(s.ch, shard); err != nil {
					return 0, err
				}
				break
			}
			s.sc.findSWARCandidates(s.ch, s.view, b.bitPattern, s.base)
			break
		}
		if err := s.sc.packed.Repack(s.ch.Data); err != nil {
			return 0, fmt.Errorf("search: packing chunk at %s:%d: %w", s.ch.SeqName, s.ch.Start, err)
		}
		s.packed = &s.sc.packed
		s.sc.view = s.packed.WordView(s.sc.view)
		s.view, s.base = s.sc.view, 0
		s.sc.findSWARCandidates(s.ch, s.view, b.bitPattern, 0)
	case b.packed:
		if err := s.sc.packed.Repack(s.ch.Data); err != nil {
			return 0, fmt.Errorf("search: packing chunk at %s:%d: %w", s.ch.SeqName, s.ch.Start, err)
		}
		s.packed = &s.sc.packed
		s.sc.findPackedCandidates(s.ch, s.packed, b.packedPattern)
	default:
		s.sc.findCandidates(s.ch, b.plan.Pattern)
	}
	return len(s.sc.cand), nil
}

// Compare implements pipeline.Backend: one guide over the surviving
// candidates (the comparer kernel's role).
func (b *cpuBackend) Compare(ctx context.Context, st pipeline.Staged, qi int) error {
	s := st.(*cpuStaged)
	limit := b.plan.Request.Queries[qi].MaxMismatches
	switch {
	case b.packed && !b.scalar:
		s.sc.compareSWAR(s.view, b.bitGuides[qi], qi, limit, s.base)
	case b.packed:
		s.sc.comparePacked(s.packed, b.packedGuides[qi], qi, limit)
	default:
		s.sc.compare(s.ch.Data, b.plan.Guides[qi], qi, limit)
	}
	return nil
}

// batchedCPUBackend is the default packed backend: it layers the pipeline's
// optional BatchComparer capability over cpuBackend, fusing all guides into
// one candidate-major pass that stages each window's words once.
type batchedCPUBackend struct {
	*cpuBackend
}

// CompareAll implements pipeline.BatchComparer: for every surviving
// candidate the window words are fetched once into pooled scratch, then
// every guide's compiled pattern runs against the cached words
// (pattern-major inner loop) — one genome pass per chunk instead of one
// per guide.
func (b *batchedCPUBackend) CompareAll(ctx context.Context, st pipeline.Staged) error {
	s := st.(*cpuStaged)
	sc := s.sc
	words := b.bitPattern.words
	plen := b.plan.Pattern.PatternLen
	if cap(sc.winText) < words {
		sc.winText = make([]uint64, words)
		sc.winUnk = make([]uint64, words)
	}
	text, unk := sc.winText[:words], sc.winUnk[:words]
	queries := b.plan.Request.Queries
	for _, cd := range sc.cand {
		for w := 0; w < words; w++ {
			text[w], unk[w] = s.view.Window(s.base + cd.pos + 32*w)
		}
		for qi, g := range b.bitGuides {
			limit := queries[qi].MaxMismatches
			if cd.strand&strandFwd != 0 {
				if mm, ok := g.MismatchesWords(text, unk, 0, limit); ok {
					sc.entries = append(sc.entries, rawHit{qi: qi, pos: cd.pos, dir: kernels.DirForward, mm: mm})
				}
			}
			if cd.strand&strandRev != 0 {
				if mm, ok := g.MismatchesWords(text, unk, plen, limit); ok {
					sc.entries = append(sc.entries, rawHit{qi: qi, pos: cd.pos, dir: kernels.DirReverse, mm: mm})
				}
			}
		}
	}
	return nil
}

// Drain implements pipeline.Backend: render the accumulated entries and
// return the scratch to the pool.
func (b *cpuBackend) Drain(ctx context.Context, st pipeline.Staged, r *pipeline.SiteRenderer) ([]Hit, error) {
	s := st.(*cpuStaged)
	hits, err := drainEntries(r, s.ch, b.plan.Guides, s.sc.entries)
	s.sc.entries = s.sc.entries[:0]
	b.scratch.Put(s.sc)
	s.sc, s.packed, s.view = nil, nil, nil
	return hits, err
}

// Release implements pipeline.Releaser: return an abandoned handle's
// scratch to the pool so a retried or failed-over chunk does not strand it.
func (b *cpuBackend) Release(st pipeline.Staged) {
	s, ok := st.(*cpuStaged)
	if !ok || s == nil || s.sc == nil {
		return
	}
	s.sc.entries = s.sc.entries[:0]
	b.scratch.Put(s.sc)
	s.sc, s.packed, s.view = nil, nil, nil
}

// Close implements pipeline.Backend; the CPU holds no run-wide resources.
func (b *cpuBackend) Close() error { return nil }

// Strand-survival bits recorded by the PAM prefilter.
const (
	strandFwd = 1 << iota
	strandRev
)

// candidate is a position that survived the PAM prefilter, tagged with the
// strands on which the scaffold matched.
type candidate struct {
	pos    int
	strand uint8
}

// scanScratch holds per-worker buffers reused across chunks so the scan
// allocates nothing per position: candidate and entry accumulators, the
// packed chunk and its word view (rebuilt in place each chunk), and the
// cached window words of the batched compare.
type scanScratch struct {
	cand    []candidate
	entries []rawHit
	packed  genome.Packed
	view    *genome.WordView
	winText []uint64
	winUnk  []uint64
}

// findCandidates runs the PAM prefilter over the chunk body (the finder
// kernel's role), compacting the (rare) scaffold matches into the pooled
// candidate buffer. The chunk is scanned in place: the IUPAC tables accept
// soft-masked lower-case bases, and site rendering normalizes case.
func (sc *scanScratch) findCandidates(ch *genome.Chunk, pattern *kernels.PatternPair) {
	data := ch.Data
	plen := pattern.PatternLen
	cand := sc.cand[:0]
	for pos := 0; pos < ch.Body; pos++ {
		window := data[pos : pos+plen]
		var strand uint8
		if windowMatches(window, pattern, 0) {
			strand |= strandFwd
		}
		if windowMatches(window, pattern, plen) {
			strand |= strandRev
		}
		if strand != 0 {
			cand = append(cand, candidate{pos: pos, strand: strand})
		}
	}
	sc.cand = cand
}

// compare tests one guide at every surviving candidate (the comparer
// kernel's role), appending raw entries for the drain phase to render.
func (sc *scanScratch) compare(data []byte, g *kernels.PatternPair, qi, limit int) {
	plen := g.PatternLen
	for _, cd := range sc.cand {
		window := data[cd.pos : cd.pos+plen]
		if cd.strand&strandFwd != 0 {
			if mm, ok := countMismatches(window, g, 0, limit); ok {
				sc.entries = append(sc.entries, rawHit{qi: qi, pos: cd.pos, dir: kernels.DirForward, mm: mm})
			}
		}
		if cd.strand&strandRev != 0 {
			if mm, ok := countMismatches(window, g, plen, limit); ok {
				sc.entries = append(sc.entries, rawHit{qi: qi, pos: cd.pos, dir: kernels.DirReverse, mm: mm})
			}
		}
	}
}

// scanChunk is the fused single-call scan over one chunk — the PAM
// prefilter followed by every guide at every candidate, rendering hits
// as it goes. The engine streams through the pipeline phases instead;
// this form remains the reference the equivalence tests pin (its hit
// order is the seed scan's: position-major, then query, then strand).
func (sc *scanScratch) scanChunk(ch *genome.Chunk, pattern *kernels.PatternPair, guides []*kernels.PatternPair, queries []Query) ([]Hit, error) {
	sc.findCandidates(ch, pattern)
	data := ch.Data
	plen := pattern.PatternLen
	var hits []Hit
	for _, cd := range sc.cand {
		window := data[cd.pos : cd.pos+plen]
		for qi, g := range guides {
			limit := queries[qi].MaxMismatches
			if cd.strand&strandFwd != 0 {
				if mm, ok := countMismatches(window, g, 0, limit); ok {
					hits = append(hits, Hit{
						QueryIndex: qi,
						SeqName:    ch.SeqName,
						Pos:        ch.Start + cd.pos,
						Dir:        kernels.DirForward,
						Mismatches: mm,
						Site:       renderSite(window, g, kernels.DirForward),
					})
				}
			}
			if cd.strand&strandRev != 0 {
				if mm, ok := countMismatches(window, g, plen, limit); ok {
					hits = append(hits, Hit{
						QueryIndex: qi,
						SeqName:    ch.SeqName,
						Pos:        ch.Start + cd.pos,
						Dir:        kernels.DirReverse,
						Mismatches: mm,
						Site:       renderSite(window, g, kernels.DirReverse),
					})
				}
			}
		}
	}
	return hits, nil
}

// windowMatches tests the PAM scaffold at the given strand offset.
func windowMatches(window []byte, p *kernels.PatternPair, offset int) bool {
	for j := 0; j < p.PatternLen; j++ {
		k := p.Index[offset+j]
		if k == -1 {
			break
		}
		if !genome.Matches(p.Codes[offset+int(k)], window[k]) {
			return false
		}
	}
	return true
}

// countMismatches counts mismatching guide positions at the strand offset,
// giving up past the limit.
func countMismatches(window []byte, g *kernels.PatternPair, offset, limit int) (int, bool) {
	mm := 0
	for j := 0; j < g.PatternLen; j++ {
		k := g.Index[offset+j]
		if k == -1 {
			break
		}
		if !genome.Matches(g.Codes[offset+int(k)], window[k]) {
			mm++
			if mm > limit {
				return mm, false
			}
		}
	}
	return mm, true
}
