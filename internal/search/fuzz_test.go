package search

import (
	"strings"
	"testing"
)

// FuzzParseInput checks the input-file parser never panics and that every
// accepted input yields a validated request.
func FuzzParseInput(f *testing.F) {
	f.Add("genome\nNNNGG\nACGTN 2\n")
	f.Add("g\nNNNGG 1 1\nACGTN 2\nTTTTN 0\n")
	f.Add("# comment\ng\nNGG\nANN 0\n")
	f.Add("")
	f.Add("g\nNNNGG x\nACGTN 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := ParseInput(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := parsed.Request.Validate(); err != nil {
			t.Fatalf("accepted input has invalid request: %v", err)
		}
		if parsed.GenomeDir == "" {
			t.Fatal("accepted input has empty genome dir")
		}
		if parsed.DNABulge < 0 || parsed.RNABulge < 0 {
			t.Fatal("negative bulge size accepted")
		}
	})
}
