package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

func multiDevices(n int) []*gpu.Device {
	specs := device.All()
	out := make([]*gpu.Device, n)
	for i := range out {
		out[i] = gpu.New(specs[i%len(specs)], gpu.WithWorkers(2))
	}
	return out
}

// TestMultiSYCLMatchesSingle: distributing across devices must not change
// results.
func TestMultiSYCLMatchesSingle(t *testing.T) {
	asm := testAssembly(t, 77, []int{900, 500, 300, 120, 60}, testSite)
	req := testRequest(2)
	single := &SimSYCL{Device: gpu.New(device.MI60(), gpu.WithWorkers(2)), Variant: kernels.Base, WorkGroupSize: 64}
	want, err := single.Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no hits in test data")
	}
	for _, n := range []int{1, 2, 3} {
		multi := &MultiSYCL{Devices: multiDevices(n), Variant: kernels.Base, WorkGroupSize: 64}
		got, err := multi.Run(asm, req)
		if err != nil {
			t.Fatalf("%d devices: %v", n, err)
		}
		if !equalHits(got, want) {
			t.Errorf("%d devices: %d hits != single %d", n, len(got), len(want))
		}
	}
}

// TestMultiSYCLProperty: random assemblies, multi == single for random
// device counts.
func TestMultiSYCLProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nseq := 1 + rng.Intn(5)
		lens := make([]int, nseq)
		for i := range lens {
			lens[i] = 80 + rng.Intn(500)
		}
		asm := testAssembly(t, seed, lens, testSite)
		req := testRequest(rng.Intn(3))
		req.ChunkBytes = 128 + rng.Intn(256)
		single := &SimSYCL{Device: gpu.New(device.RadeonVII(), gpu.WithWorkers(2)), Variant: kernels.Opt2, WorkGroupSize: 32}
		want, err := single.Run(asm, req)
		if err != nil {
			return false
		}
		multi := &MultiSYCL{Devices: multiDevices(1 + rng.Intn(3)), Variant: kernels.Opt2, WorkGroupSize: 32}
		got, err := multi.Run(asm, req)
		if err != nil {
			return false
		}
		return equalHits(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMultiSYCLProfileMerged(t *testing.T) {
	asm := testAssembly(t, 9, []int{1000, 700, 500}, testSite)
	req := testRequest(2)
	req.ChunkBytes = 300
	multi := &MultiSYCL{Devices: multiDevices(2), Variant: kernels.Base, WorkGroupSize: 64}
	if _, err := multi.Run(asm, req); err != nil {
		t.Fatal(err)
	}
	p := multi.LastProfile()
	if p == nil {
		t.Fatal("no merged profile")
	}
	// Every chunk of every sequence must be accounted for exactly once.
	single := &SimSYCL{Device: gpu.New(device.MI60(), gpu.WithWorkers(2)), Variant: kernels.Base, WorkGroupSize: 64}
	if _, err := single.Run(asm, req); err != nil {
		t.Fatal(err)
	}
	sp := single.LastProfile()
	if p.Chunks != sp.Chunks {
		t.Errorf("merged chunks = %d, single = %d", p.Chunks, sp.Chunks)
	}
	if p.CandidateSites != sp.CandidateSites || p.Entries != sp.Entries {
		t.Errorf("merged counters diverge: %+v vs %+v", p, sp)
	}
	if p.Kernels["finder"].WorkItems == 0 {
		t.Error("merged finder stats empty")
	}
}

func TestMultiSYCLErrors(t *testing.T) {
	asm := testAssembly(t, 1, []int{200}, testSite)
	req := testRequest(1)
	if _, err := (&MultiSYCL{}).Run(asm, req); err == nil {
		t.Error("no devices accepted")
	}
	if _, err := (&MultiSYCL{Devices: []*gpu.Device{nil}}).Run(asm, req); err == nil {
		t.Error("nil device accepted")
	}
	bad := &MultiSYCL{Devices: multiDevices(1)}
	if _, err := bad.Run(asm, &Request{}); err == nil {
		t.Error("invalid request accepted")
	}
}

// TestMultiSYCLMoreDevicesThanSequences: extra devices idle without error.
func TestMultiSYCLMoreDevicesThanSequences(t *testing.T) {
	asm := testAssembly(t, 3, []int{400}, testSite)
	req := testRequest(1)
	multi := &MultiSYCL{Devices: multiDevices(4), Variant: kernels.Base, WorkGroupSize: 64}
	single := &SimSYCL{Device: gpu.New(device.MI100(), gpu.WithWorkers(2)), Variant: kernels.Base, WorkGroupSize: 64}
	got, err := multi.Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalHits(got, want) {
		t.Error("idle devices changed results")
	}
}
