package search

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"casoffinder/internal/genome"
	"casoffinder/internal/gpu"
	"casoffinder/internal/gpu/device"
	"casoffinder/internal/kernels"
)

// TestSWARPathsEquivalence: the byte path, the batched SWAR path, the
// unbatched SWAR path and the per-base scalar packed reference all return
// byte-identical hits on randomized genomes.
func TestSWARPathsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		asm := testAssembly(t, seed, []int{300 + rng.Intn(500), 40 + rng.Intn(100)}, testSite)
		req := &Request{
			Pattern: testPattern,
			Queries: []Query{
				{Guide: testGuide, MaxMismatches: rng.Intn(4)},
				{Guide: "GACCACAGTANN", MaxMismatches: rng.Intn(6)},
			},
			ChunkBytes: 100 + rng.Intn(400),
		}
		want, err := (&CPU{Workers: 2}).Run(asm, req)
		if err != nil {
			return false
		}
		for _, eng := range []*CPU{
			{Workers: 2, Packed: true},
			{Workers: 2, Packed: true, NoBatch: true},
			{Workers: 2, Packed: true, Scalar: true},
		} {
			got, err := eng.Run(asm, req)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if !equalHits(got, want) {
				t.Logf("seed %d: packed=%v scalar=%v nobatch=%v diverged (%d vs %d hits)",
					seed, eng.Packed, eng.Scalar, eng.NoBatch, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSWARFinderMatchesScalar: the 32-wide MatchLanes prefilter selects
// exactly the candidates (positions and strand bits) of the per-base
// packed finder, including at chunk-body tails that are not a multiple
// of 32.
func TestSWARFinderMatchesScalar(t *testing.T) {
	pair, err := kernels.NewPatternPair([]byte(testPattern))
	if err != nil {
		t.Fatal(err)
	}
	bp := CompileBitPattern(pair)
	mp := newMaskedPattern(pair)
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{12, 40, 63, 64, 65, 200, 333} {
		data := make([]byte, n)
		alphabet := []byte("ACGTN")
		for i := range data {
			if rng.Intn(4) == 0 {
				data[i] = testSite[rng.Intn(len(testSite))]
			} else {
				data[i] = alphabet[rng.Intn(len(alphabet))]
			}
		}
		body := n - pair.PatternLen + 1
		if body <= 0 {
			continue
		}
		ch := &genome.Chunk{SeqName: "s", Data: data, Body: body}
		packed, err := genome.Pack(data)
		if err != nil {
			t.Fatal(err)
		}
		var a, b scanScratch
		a.findPackedCandidates(ch, packed, mp)
		b.findSWARCandidates(ch, packed.WordView(nil), bp, 0)
		if len(a.cand) != len(b.cand) {
			t.Fatalf("n=%d: scalar found %d candidates, SWAR %d", n, len(a.cand), len(b.cand))
		}
		for i := range a.cand {
			if a.cand[i] != b.cand[i] {
				t.Fatalf("n=%d candidate %d: scalar %+v, SWAR %+v", n, i, a.cand[i], b.cand[i])
			}
		}
	}
}

// TestBatchedMatchesPerPattern: for every engine, one multi-query run must
// equal the merge of per-query Stream passes — the batched multi-pattern
// scan cannot change any single pattern's hits.
func TestBatchedMatchesPerPattern(t *testing.T) {
	asm := testAssembly(t, 53, []int{700, 450, 90}, testSite)
	req := &Request{
		Pattern: testPattern,
		Queries: []Query{
			{Guide: testGuide, MaxMismatches: 2},
			{Guide: "GACCACAGTANN", MaxMismatches: 4},
			{Guide: "TTTTACAGTANN", MaxMismatches: 3},
			{Guide: "GATTACAGTCNN", MaxMismatches: 1},
		},
		ChunkBytes: 300,
	}
	allEngines := append(streamEngines(t),
		&MultiSYCL{
			Devices: []*gpu.Device{gpu.New(device.MI60(), gpu.WithWorkers(2)), gpu.New(device.MI100(), gpu.WithWorkers(2))},
			Variant: kernels.Opt2,
		},
	)
	for _, eng := range allEngines {
		t.Run(eng.Name(), func(t *testing.T) {
			batched, err := eng.Run(asm, req)
			if err != nil {
				t.Fatal(err)
			}
			if len(batched) == 0 {
				t.Fatal("no hits; fixture too sparse")
			}
			var merged []Hit
			for qi, q := range req.Queries {
				sub := &Request{Pattern: req.Pattern, Queries: []Query{q}, ChunkBytes: req.ChunkBytes}
				err := eng.Stream(context.Background(), asm, sub, func(h Hit) error {
					h.QueryIndex = qi
					merged = append(merged, h)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			sortHits(merged)
			if !equalHits(batched, merged) {
				t.Errorf("multi-query run != merged per-query streams (%d vs %d hits)", len(batched), len(merged))
			}
		})
	}
}

// TestBitParallelSimEngines: both simulator frontends run the SWAR comparer
// variant end to end and agree exactly with the CPU engine — the same
// optimization modeled on the simulated device and executed on the host.
func TestBitParallelSimEngines(t *testing.T) {
	asm := testAssembly(t, 61, []int{700, 450, 90}, testSite)
	req := testRequest(2)
	want, err := (&CPU{Workers: 2, Packed: true}).Run(asm, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no hits; fixture too sparse")
	}
	sims := []Engine{
		&SimCL{Device: gpu.New(device.MI60(), gpu.WithWorkers(4)), Variant: kernels.BitParallel},
		&SimSYCL{Device: gpu.New(device.MI100(), gpu.WithWorkers(4)), Variant: kernels.BitParallel, WorkGroupSize: 64},
	}
	for _, eng := range sims {
		got, err := eng.Run(asm, req)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if !equalHits(got, want) {
			t.Errorf("%s with bitparallel comparer diverged (%d vs %d hits)", eng.Name(), len(got), len(want))
		}
	}
}

// FuzzSWARMismatch: on arbitrary IUPAC patterns and sequences the SWAR
// mismatch count, the per-base scalar packed count and the byte-path count
// agree exactly, for every strand half and limit.
func FuzzSWARMismatch(f *testing.F) {
	f.Add([]byte("NNNNNNNNNNGG"), []byte("GATTACAGTAGGACGTACGTNNRYacgt"), 0)
	f.Add([]byte("GANNTTNRYNGG"), []byte("gattacagtaggACGTACGT"), 3)
	f.Add([]byte("NGG"), []byte("AGGTGGNGGRGG"), 1)
	f.Fuzz(func(t *testing.T, pattern, seq []byte, limit int) {
		pair, err := kernels.NewPatternPair(pattern)
		if err != nil {
			return
		}
		packed, err := genome.Pack(seq)
		if err != nil {
			return
		}
		plen := pair.PatternLen
		if len(seq) < plen {
			return
		}
		if limit < 0 {
			limit = -limit
		}
		limit %= plen + 2
		bp := CompileBitPattern(pair)
		v := packed.WordView(nil)
		upper := genome.Upper(seq)
		for pos := 0; pos+plen <= len(seq); pos++ {
			for _, offset := range []int{0, plen} {
				mm, ok := bp.Mismatches(v, pos, offset, limit)
				smm, sok := bp.ScalarMismatches(packed, pos, offset, limit)
				bmm, bok := countMismatches(upper[pos:pos+plen], pair, offset, limit)
				if ok != sok || ok != bok {
					t.Fatalf("pos %d offset %d: pass/fail diverges: SWAR %v, scalar %v, byte %v",
						pos, offset, ok, sok, bok)
				}
				if ok {
					// Counts are exact only on the pass side; the rejecting
					// paths stop at different points past the limit (the
					// SWAR core counts a whole word at a time).
					if mm != smm || mm != bmm {
						t.Fatalf("pos %d offset %d: SWAR %d != scalar %d / byte %d mismatches",
							pos, offset, mm, smm, bmm)
					}
				} else if mm <= limit {
					t.Fatalf("pos %d offset %d: rejected with mm %d <= limit %d", pos, offset, mm, limit)
				}
			}
		}
	})
}
