package search

import (
	"fmt"

	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
)

// The packed scan path implements the "2-bit sequence format" optimization
// the paper's related-work section attributes to the upstream authors [21]:
// chunk sequences are packed four bases per byte with an unknown-position
// bitmap, and pattern matching tests the 2-bit code against a precomputed
// 4-bit IUPAC mask per pattern position instead of byte tables. Enable it
// with CPU{Packed: true}; the ablation benchmark BenchmarkCPUPackedVsBytes
// compares the two paths.

// maskedPattern is a PatternPair with per-position IUPAC masks aligned to
// Codes, for 2-bit comparison.
type maskedPattern struct {
	pair  *kernels.PatternPair
	masks []genome.Mask // parallel to pair.Codes
}

func newMaskedPattern(pair *kernels.PatternPair) *maskedPattern {
	masks := make([]genome.Mask, len(pair.Codes))
	for i, c := range pair.Codes {
		masks[i] = genome.MaskOf(c)
	}
	return &maskedPattern{pair: pair, masks: masks}
}

// matchesAt tests whether the packed window starting at pos matches the
// strand half selected by offset: every indexed position's 2-bit code must
// be concrete and inside the pattern mask.
func (m *maskedPattern) matchesAt(p *genome.Packed, pos, offset int) bool {
	for j := 0; j < m.pair.PatternLen; j++ {
		k := m.pair.Index[offset+j]
		if k == -1 {
			break
		}
		code, known := p.Code(pos + int(k))
		if !known || m.masks[offset+int(k)]&(1<<code) == 0 {
			return false
		}
	}
	return true
}

// mismatchesAt counts mismatching indexed positions at the strand offset,
// giving up past the limit.
func (m *maskedPattern) mismatchesAt(p *genome.Packed, pos, offset, limit int) (int, bool) {
	mm := 0
	for j := 0; j < m.pair.PatternLen; j++ {
		k := m.pair.Index[offset+j]
		if k == -1 {
			break
		}
		code, known := p.Code(pos + int(k))
		if !known || m.masks[offset+int(k)]&(1<<code) == 0 {
			mm++
			if mm > limit {
				return mm, false
			}
		}
	}
	return mm, true
}

// scanChunkPacked is the packed-path equivalent of scanChunk. The chunk is
// packed once (quartering the working set of the inner loop); site
// rendering still uses the original bytes so results are byte-identical to
// the unpacked path.
func scanChunkPacked(ch *genome.Chunk, pattern *maskedPattern, guides []*maskedPattern, queries []Query) ([]Hit, error) {
	// Pack folds soft-masked lower-case itself and renderSite normalizes
	// case in the reported site, so no upper-case copy is needed.
	data := ch.Data
	packed, err := genome.Pack(data)
	if err != nil {
		return nil, fmt.Errorf("search: packing chunk at %s:%d: %w", ch.SeqName, ch.Start, err)
	}
	plen := pattern.pair.PatternLen
	var hits []Hit
	for pos := 0; pos < ch.Body; pos++ {
		fwd := pattern.matchesAt(packed, pos, 0)
		rev := pattern.matchesAt(packed, pos, plen)
		if !fwd && !rev {
			continue
		}
		window := data[pos : pos+plen]
		for qi, g := range guides {
			limit := queries[qi].MaxMismatches
			if fwd {
				if mm, ok := g.mismatchesAt(packed, pos, 0, limit); ok {
					hits = append(hits, Hit{
						QueryIndex: qi,
						SeqName:    ch.SeqName,
						Pos:        ch.Start + pos,
						Dir:        kernels.DirForward,
						Mismatches: mm,
						Site:       renderSite(window, g.pair, kernels.DirForward),
					})
				}
			}
			if rev {
				if mm, ok := g.mismatchesAt(packed, pos, plen, limit); ok {
					hits = append(hits, Hit{
						QueryIndex: qi,
						SeqName:    ch.SeqName,
						Pos:        ch.Start + pos,
						Dir:        kernels.DirReverse,
						Mismatches: mm,
						Site:       renderSite(window, g.pair, kernels.DirReverse),
					})
				}
			}
		}
	}
	return hits, nil
}
