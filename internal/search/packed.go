package search

import (
	"casoffinder/internal/genome"
	"casoffinder/internal/kernels"
)

// The packed scan path implements the "2-bit sequence format" optimization
// the paper's related-work section attributes to the upstream authors [21]:
// chunk sequences are packed four bases per byte with an unknown-position
// bitmap, and pattern matching tests the 2-bit code against a precomputed
// 4-bit IUPAC mask per pattern position instead of byte tables. Enable it
// with CPU{Packed: true}; the ablation benchmark BenchmarkCPUPackedVsBytes
// compares the two paths.

// maskedPattern is a PatternPair with per-position IUPAC masks aligned to
// Codes, for 2-bit comparison.
type maskedPattern struct {
	pair  *kernels.PatternPair
	masks []genome.Mask // parallel to pair.Codes
}

func newMaskedPattern(pair *kernels.PatternPair) *maskedPattern {
	masks := make([]genome.Mask, len(pair.Codes))
	for i, c := range pair.Codes {
		masks[i] = genome.MaskOf(c)
	}
	return &maskedPattern{pair: pair, masks: masks}
}

// matchesAt tests whether the packed window starting at pos matches the
// strand half selected by offset: every indexed position's 2-bit code must
// be concrete and inside the pattern mask.
func (m *maskedPattern) matchesAt(p *genome.Packed, pos, offset int) bool {
	for j := 0; j < m.pair.PatternLen; j++ {
		k := m.pair.Index[offset+j]
		if k == -1 {
			break
		}
		code, known := p.Code(pos + int(k))
		if !known || m.masks[offset+int(k)]&(1<<code) == 0 {
			return false
		}
	}
	return true
}

// mismatchesAt counts mismatching indexed positions at the strand offset,
// giving up past the limit.
func (m *maskedPattern) mismatchesAt(p *genome.Packed, pos, offset, limit int) (int, bool) {
	mm := 0
	for j := 0; j < m.pair.PatternLen; j++ {
		k := m.pair.Index[offset+j]
		if k == -1 {
			break
		}
		code, known := p.Code(pos + int(k))
		if !known || m.masks[offset+int(k)]&(1<<code) == 0 {
			mm++
			if mm > limit {
				return mm, false
			}
		}
	}
	return mm, true
}

// findPackedCandidates is the packed-path PAM prefilter: the chunk was
// packed once in Find (quartering the working set of the inner loop), and
// the scaffold is tested against the 4-bit masks per position. Site
// rendering still uses the original bytes so results are byte-identical to
// the unpacked path.
func (sc *scanScratch) findPackedCandidates(ch *genome.Chunk, packed *genome.Packed, pattern *maskedPattern) {
	plen := pattern.pair.PatternLen
	cand := sc.cand[:0]
	for pos := 0; pos < ch.Body; pos++ {
		var strand uint8
		if pattern.matchesAt(packed, pos, 0) {
			strand |= strandFwd
		}
		if pattern.matchesAt(packed, pos, plen) {
			strand |= strandRev
		}
		if strand != 0 {
			cand = append(cand, candidate{pos: pos, strand: strand})
		}
	}
	sc.cand = cand
}

// comparePacked tests one guide's masks at every surviving candidate,
// appending raw entries for the drain phase to render.
func (sc *scanScratch) comparePacked(packed *genome.Packed, g *maskedPattern, qi, limit int) {
	plen := g.pair.PatternLen
	for _, cd := range sc.cand {
		if cd.strand&strandFwd != 0 {
			if mm, ok := g.mismatchesAt(packed, cd.pos, 0, limit); ok {
				sc.entries = append(sc.entries, rawHit{qi: qi, pos: cd.pos, dir: kernels.DirForward, mm: mm})
			}
		}
		if cd.strand&strandRev != 0 {
			if mm, ok := g.mismatchesAt(packed, cd.pos, plen, limit); ok {
				sc.entries = append(sc.entries, rawHit{qi: qi, pos: cd.pos, dir: kernels.DirReverse, mm: mm})
			}
		}
	}
}
