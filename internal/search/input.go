package search

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Input is a parsed Cas-OFFinder input file:
//
//	/path/to/genome_dir            <- genome directory or FASTA file
//	NNNNNNNNNNNNNNNNNNNNNRG [d r]  <- PAM scaffold, optional bulge sizes
//	GGCCGACCTGTCGCTGACGCNNN 5      <- guide and mismatch limit, repeated
//
// matching the example the paper's evaluation uses (reference [17]). The
// optional second and third fields of the pattern line give the DNA and RNA
// bulge sizes of the cas-offinder-bulge extension.
type Input struct {
	// GenomeDir is the directory (or single FASTA file) to scan.
	GenomeDir string
	// Request is the parsed search request.
	Request Request
	// DNABulge and RNABulge are the optional bulge sizes (0 when absent).
	DNABulge int
	RNABulge int
}

// ParseInput reads an input file.
func ParseInput(r io.Reader) (*Input, error) {
	sc := bufio.NewScanner(r)
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("search: reading input: %w", err)
	}
	if len(lines) < 3 {
		return nil, fmt.Errorf("search: input needs a genome path, a pattern and at least one query (got %d lines)", len(lines))
	}

	in := &Input{GenomeDir: lines[0]}

	patFields := strings.Fields(lines[1])
	in.Request.Pattern = strings.ToUpper(patFields[0])
	switch len(patFields) {
	case 1:
	case 3:
		d, err := strconv.Atoi(patFields[1])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("search: invalid DNA bulge size %q", patFields[1])
		}
		rn, err := strconv.Atoi(patFields[2])
		if err != nil || rn < 0 {
			return nil, fmt.Errorf("search: invalid RNA bulge size %q", patFields[2])
		}
		in.DNABulge, in.RNABulge = d, rn
	default:
		return nil, fmt.Errorf("search: pattern line must be PATTERN or PATTERN DNABULGE RNABULGE, got %q", lines[1])
	}

	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("search: query line must be GUIDE MISMATCHES, got %q", line)
		}
		mm, err := strconv.Atoi(fields[1])
		if err != nil || mm < 0 {
			return nil, fmt.Errorf("search: invalid mismatch count %q", fields[1])
		}
		in.Request.Queries = append(in.Request.Queries, Query{
			Guide:         strings.ToUpper(fields[0]),
			MaxMismatches: mm,
		})
	}
	if err := in.Request.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// WriteHit writes one hit in the upstream output format: guide sequence,
// chromosome, position, site (mismatches lower-case), strand, mismatch
// count.
func WriteHit(w io.Writer, req *Request, h Hit) error {
	guide := req.Queries[h.QueryIndex].Guide
	if _, err := fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%c\t%d\n",
		guide, h.SeqName, h.Pos, h.Site, h.Dir, h.Mismatches); err != nil {
		return fmt.Errorf("search: writing output: %w", err)
	}
	return nil
}

// WriteHitJSON writes one hit as a single NDJSON line: the hit's stable
// JSON fields (see pipeline.Hit) preceded by the resolved guide sequence, so
// a consumer never needs the request to interpret a line. It is the shared
// wire encoder of casoffinderd's streaming responses and the CLI's
// -format json output.
func WriteHitJSON(w io.Writer, req *Request, h Hit) error {
	rec := struct {
		Guide      string `json:"guide"`
		Query      int    `json:"query"`
		Seq        string `json:"seq"`
		Pos        int    `json:"pos"`
		Dir        string `json:"dir"`
		Mismatches int    `json:"mismatches"`
		Site       string `json:"site"`
	}{
		Guide:      req.Queries[h.QueryIndex].Guide,
		Query:      h.QueryIndex,
		Seq:        h.SeqName,
		Pos:        h.Pos,
		Dir:        string(h.Dir),
		Mismatches: h.Mismatches,
		Site:       h.Site,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("search: encoding hit: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("search: writing output: %w", err)
	}
	return nil
}

// WriteHits writes hits in the upstream output format, one line per hit.
func WriteHits(w io.Writer, req *Request, hits []Hit) error {
	bw := bufio.NewWriter(w)
	for _, h := range hits {
		if err := WriteHit(bw, req, h); err != nil {
			return err
		}
	}
	return bw.Flush()
}
